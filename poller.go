package tscclock

import (
	"context"
	"errors"
	"net"
	"os"
	"time"
)

// Poller implements the controlled-emission extension the paper sketches
// in Section 2.3: when the synchronizer owns the packet schedule (rather
// than piggybacking on an existing NTP daemon's flow), it can poll fast
// while information is scarce and back off once calibrated, optimizing
// both convergence and server load.
//
// Policy: start at Min; after warmup, double the interval on every
// quiet, good-quality exchange up to Max; fall back toward Min when the
// engine signals trouble (poor quality, sanity triggers, a detected
// level shift or server change) so fresh information arrives when it is
// worth the most.
//
// Exchange errors are handled asymmetrically, and by kind. A timeout —
// the request went out and nothing came back — looks like ordinary
// packet loss, so the first few consecutive timeouts retry at Min
// (after a single loss, fresh evidence is worth the most, exactly as
// after an engine event) before persistent failure backs off
// exponentially toward Max. A hard error — resolution failure, refused
// connection, unreachable network — is not packet loss: polling faster
// cannot help, so it skips the fast retries and backs off immediately,
// which keeps a decommissioned or misconfigured server from being
// hammered at the fast rate even briefly. Any successful exchange
// resets the failure count. The zero value is not usable; use
// NewPoller.
type Poller struct {
	min, max time.Duration
	current  time.Duration
	failures int // consecutive exchange errors observed
}

// failFastRetries is the number of consecutive exchange timeouts
// retried at the fast Min rate before the poller starts backing off: a
// lone loss (or two) is ordinary packet loss and worth chasing, a
// longer run means the server is down and polling faster will not
// bring it back.
const failFastRetries = 2

// isTimeout classifies an exchange error: true for a timed-out wait
// (indistinguishable from packet loss, worth a fast retry), false for
// a hard failure (resolution, refusal, unreachability — retrying fast
// gains nothing).
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// NewPoller constructs a poller bounded by [min, max]. Defaults when
// zero: min 16 s, max 1024 s (the standard NTP polling range extended
// one notch below the 64 s default, as the paper's dense traces use).
func NewPoller(min, max time.Duration) *Poller {
	if min <= 0 {
		min = 16 * time.Second
	}
	if max <= 0 {
		max = 1024 * time.Second
	}
	if max < min {
		max = min
	}
	return &Poller{min: min, max: max, current: min}
}

// Interval returns the currently recommended polling interval.
func (p *Poller) Interval() time.Duration { return p.current }

// Observe updates the recommendation from the latest exchange outcome
// and returns the interval to wait before the next poll. A nil receiver
// is not valid.
func (p *Poller) Observe(st Status, exchangeErr error) time.Duration {
	if exchangeErr == nil {
		p.failures = 0
	}
	switch {
	case exchangeErr != nil:
		// Timeouts retry at the fast rate while the failure looks like
		// transient loss, then back off exponentially — a dead server
		// yields no information at any polling rate, and the engine
		// coasts regardless. Hard errors burn the fast-retry budget at
		// once: the failure is structural, not lost packets.
		p.failures++
		if !isTimeout(exchangeErr) && p.failures <= failFastRetries {
			p.failures = failFastRetries + 1
		}
		if p.failures <= failFastRetries {
			p.current = p.min
		} else {
			p.current *= 2
			if p.current > p.max {
				p.current = p.max
			}
		}
	case st.Warmup:
		p.current = p.min
	case st.UpwardShiftDetected, st.OffsetSanity, st.PoorQuality, st.ServerChanged:
		// Something changed or data quality collapsed: gather evidence
		// quickly (re-detection windows are packet-count based, so a
		// faster poll shortens them in wall-clock terms).
		p.current = p.min
	default:
		p.current *= 2
		if p.current > p.max {
			p.current = p.max
		}
	}
	if p.current < p.min {
		p.current = p.min
	}
	return p.current
}

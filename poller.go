package tscclock

import "time"

// Poller implements the controlled-emission extension the paper sketches
// in Section 2.3: when the synchronizer owns the packet schedule (rather
// than piggybacking on an existing NTP daemon's flow), it can poll fast
// while information is scarce and back off once calibrated, optimizing
// both convergence and server load.
//
// Policy: start at Min; after warmup, double the interval on every
// quiet, good-quality exchange up to Max; fall back toward Min when the
// engine signals trouble (poor quality, sanity triggers, a detected
// level shift or server change) so fresh information arrives when it is
// worth the most. The zero value is not usable; use NewPoller.
type Poller struct {
	min, max time.Duration
	current  time.Duration
}

// NewPoller constructs a poller bounded by [min, max]. Defaults when
// zero: min 16 s, max 1024 s (the standard NTP polling range extended
// one notch below the 64 s default, as the paper's dense traces use).
func NewPoller(min, max time.Duration) *Poller {
	if min <= 0 {
		min = 16 * time.Second
	}
	if max <= 0 {
		max = 1024 * time.Second
	}
	if max < min {
		max = min
	}
	return &Poller{min: min, max: max, current: min}
}

// Interval returns the currently recommended polling interval.
func (p *Poller) Interval() time.Duration { return p.current }

// Observe updates the recommendation from the latest exchange outcome
// and returns the interval to wait before the next poll. A nil receiver
// is not valid.
func (p *Poller) Observe(st Status, exchangeErr error) time.Duration {
	switch {
	case exchangeErr != nil:
		// Loss or timeout: retry at the fast rate; the engine coasts.
		p.current = p.min
	case st.Warmup:
		p.current = p.min
	case st.UpwardShiftDetected, st.OffsetSanity, st.PoorQuality, st.ServerChanged:
		// Something changed or data quality collapsed: gather evidence
		// quickly (re-detection windows are packet-count based, so a
		// faster poll shortens them in wall-clock terms).
		p.current = p.min
	default:
		p.current *= 2
		if p.current > p.max {
			p.current = p.max
		}
	}
	if p.current < p.min {
		p.current = p.min
	}
	return p.current
}

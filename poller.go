package tscclock

import "time"

// Poller implements the controlled-emission extension the paper sketches
// in Section 2.3: when the synchronizer owns the packet schedule (rather
// than piggybacking on an existing NTP daemon's flow), it can poll fast
// while information is scarce and back off once calibrated, optimizing
// both convergence and server load.
//
// Policy: start at Min; after warmup, double the interval on every
// quiet, good-quality exchange up to Max; fall back toward Min when the
// engine signals trouble (poor quality, sanity triggers, a detected
// level shift or server change) so fresh information arrives when it is
// worth the most.
//
// Exchange errors are handled asymmetrically: the first few consecutive
// failures retry at Min — after a single loss, fresh evidence is worth
// the most, exactly as after an engine event — but persistent failure
// backs off exponentially toward Max, so an unreachable or
// decommissioned server is not hammered at the fast rate forever. Any
// successful exchange resets the failure count. The zero value is not
// usable; use NewPoller.
type Poller struct {
	min, max time.Duration
	current  time.Duration
	failures int // consecutive exchange errors observed
}

// failFastRetries is the number of consecutive exchange failures
// retried at the fast Min rate before the poller starts backing off: a
// lone loss (or two) is ordinary packet loss and worth chasing, a
// longer run means the server is down and polling faster will not
// bring it back.
const failFastRetries = 2

// NewPoller constructs a poller bounded by [min, max]. Defaults when
// zero: min 16 s, max 1024 s (the standard NTP polling range extended
// one notch below the 64 s default, as the paper's dense traces use).
func NewPoller(min, max time.Duration) *Poller {
	if min <= 0 {
		min = 16 * time.Second
	}
	if max <= 0 {
		max = 1024 * time.Second
	}
	if max < min {
		max = min
	}
	return &Poller{min: min, max: max, current: min}
}

// Interval returns the currently recommended polling interval.
func (p *Poller) Interval() time.Duration { return p.current }

// Observe updates the recommendation from the latest exchange outcome
// and returns the interval to wait before the next poll. A nil receiver
// is not valid.
func (p *Poller) Observe(st Status, exchangeErr error) time.Duration {
	if exchangeErr == nil {
		p.failures = 0
	}
	switch {
	case exchangeErr != nil:
		// Loss or timeout: retry at the fast rate while the failure
		// looks transient, then back off exponentially — a dead server
		// yields no information at any polling rate, and the engine
		// coasts regardless.
		p.failures++
		if p.failures <= failFastRetries {
			p.current = p.min
		} else {
			p.current *= 2
			if p.current > p.max {
				p.current = p.max
			}
		}
	case st.Warmup:
		p.current = p.min
	case st.UpwardShiftDetected, st.OffsetSanity, st.PoorQuality, st.ServerChanged:
		// Something changed or data quality collapsed: gather evidence
		// quickly (re-detection windows are packet-count based, so a
		// faster poll shortens them in wall-clock terms).
		p.current = p.min
	default:
		p.current *= 2
		if p.current > p.max {
			p.current = p.max
		}
	}
	if p.current < p.min {
		p.current = p.min
	}
	return p.current
}

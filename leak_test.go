package tscclock

import (
	"context"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/ntp"
)

// settleGoroutines waits for the runtime to drop back to at most base
// goroutines: teardown is asynchronous, so a leak check must retry
// before declaring the survivors leaked.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d running, base %d\n%s", n, base, buf[:m])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startSilentServer binds a UDP socket that never answers: an upstream
// in a total outage. Requests vanish; clients time out.
func startSilentServer(t *testing.T) net.Addr {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	return pc.LocalAddr()
}

// TestLiveRunCloseLeaksNothing: cancelling Run and closing a Live
// leaves no polling goroutine behind.
func TestLiveRunCloseLeaksNothing(t *testing.T) {
	base := runtime.NumGoroutine()
	addr := startServer(t)
	l, err := DialLive(LiveOptions{Server: addr.String(), Poll: 20 * time.Millisecond, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.Run(ctx, nil) }()
	time.Sleep(60 * time.Millisecond)
	cancel()
	<-done
	l.Close()
	settleGoroutines(t, base+1) // startServer's Serve goroutine persists until cleanup
}

// TestMultiLiveCloseDuringOutage: closing a MultiLive while every
// upstream is dark — pollers blocked mid-exchange on sockets that will
// never answer — must unblock the reads, stop the re-dial loops, and
// leave no goroutine behind. This is the shutdown path of a relay
// being restarted during a total upstream outage.
func TestMultiLiveCloseDuringOutage(t *testing.T) {
	base := runtime.NumGoroutine()
	servers := []string{
		startSilentServer(t).String(),
		startSilentServer(t).String(),
		startSilentServer(t).String(),
	}
	m, err := DialMultiLive(MultiLiveOptions{
		Servers: servers,
		Poll:    20 * time.Millisecond,
		Timeout: 30 * time.Second, // reads park until Close unblocks them
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- m.Run(ctx, nil) }()
	// Let every poller get into (or past) a blocked exchange.
	time.Sleep(100 * time.Millisecond)
	cancel()
	if err := m.Close(); err != nil {
		t.Errorf("Close during outage: %v", err)
	}
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Run did not drain after cancel+Close during an outage")
	}
	settleGoroutines(t, base)
}

// TestRelayCloseLeaksNothing drives the full relay pipeline — upstream
// stratum-1 server, MultiLive ensemble, sharded downstream serving, a
// downstream client — then tears it all down and requires every
// goroutine gone.
func TestRelayCloseLeaksNothing(t *testing.T) {
	base := runtime.NumGoroutine()

	up := startServer(t)
	m, err := DialMultiLive(MultiLiveOptions{
		Servers: []string{up.String(), up.String()},
		Poll:    20 * time.Millisecond,
		Timeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- m.Run(ctx, nil) }()

	srv, err := ntp.NewServer(ntp.ServerConfig{Sample: m.ServerSample(ntp.RefIDFromString("TSCC"))})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := srv.ListenShards("udp", "127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- sh.Serve(ctx) }()

	conn, err := net.Dial("udp", sh.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	counter, _ := ntp.MonotonicCounter()
	cl := ntp.NewClient(conn, counter, 2*time.Second)
	if _, err := cl.Exchange(); err != nil {
		t.Fatalf("downstream exchange: %v", err)
	}
	conn.Close()

	cancel()
	m.Close()
	for _, ch := range []chan error{runDone, serveDone} {
		select {
		case <-ch:
		case <-time.After(3 * time.Second):
			t.Fatal("pipeline did not drain after cancellation")
		}
	}
	settleGoroutines(t, base+1) // startServer's Serve goroutine persists until cleanup
}

// TestStartupWithUnreachableServerStillSyncs pins the dial-tolerance
// acceptance criterion: one unreachable server at startup must not
// prevent the client from synchronizing off the reachable ones.
func TestStartupWithUnreachableServerStillSyncs(t *testing.T) {
	good := startServer(t)
	m, err := DialMultiLive(MultiLiveOptions{
		Servers: []string{good.String(), "unreachable.invalid:123"},
		Poll:    10 * time.Millisecond,
		Timeout: time.Second,
	})
	if err != nil {
		t.Fatalf("dial with one unreachable server: %v", err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	synced := make(chan struct{})
	var once sync.Once
	go m.Run(ctx, func(k int, st EnsembleStatus, err error) {
		if err == nil && m.Ensemble().Readout().Synced() {
			once.Do(func() { close(synced) })
		}
	})
	select {
	case <-synced:
	case <-ctx.Done():
		t.Fatal("never synchronized with one upstream unreachable")
	}
	if d := m.Now().Sub(time.Now()); d > 50*time.Millisecond || d < -50*time.Millisecond {
		t.Errorf("Now() differs from OS clock by %v", d)
	}
	ups := m.UpstreamStates()
	if ups[1].Connected || ups[1].DialFailures == 0 {
		t.Errorf("unreachable slot = %+v, want disconnected with dial failures", ups[1])
	}
}

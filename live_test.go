package tscclock

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/ntp"
)

// startServer runs a local stratum-1 NTP server for live tests.
func startServer(t *testing.T) net.Addr {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ntp.NewServer(ntp.ServerConfig{Clock: ntp.SystemServerClock()})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(pc)
	t.Cleanup(func() { pc.Close() })
	return pc.LocalAddr()
}

func TestDialLiveValidation(t *testing.T) {
	if _, err := DialLive(LiveOptions{}); err == nil {
		t.Error("missing server accepted")
	}
}

func TestLiveStep(t *testing.T) {
	addr := startServer(t)
	l, err := DialLive(LiveOptions{Server: addr.String(), Poll: 50 * time.Millisecond,
		Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for i := 0; i < 5; i++ {
		st, err := l.Step()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if st.RTT <= 0 || st.RTT > 1 {
			t.Errorf("loopback RTT %v implausible", st.RTT)
		}
	}
	if got := l.Clock().Exchanges(); got != 5 {
		t.Errorf("exchanges = %d", got)
	}
	// Against the OS-clock server on loopback the absolute clock must
	// land within milliseconds of the OS clock immediately.
	if d := l.Now().Sub(time.Now()); d > 50*time.Millisecond || d < -50*time.Millisecond {
		t.Errorf("Now() differs from OS clock by %v", d)
	}
	if a, b := l.Counter(), l.Counter(); b < a {
		t.Error("raw counter not monotone")
	}
}

func TestLiveRunCancel(t *testing.T) {
	addr := startServer(t)
	l, err := DialLive(LiveOptions{Server: addr.String(), Poll: 20 * time.Millisecond,
		Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	steps := 0
	err = l.Run(ctx, func(st Status, err error) {
		if err == nil {
			steps++
		}
	})
	if err != context.DeadlineExceeded {
		t.Errorf("Run returned %v", err)
	}
	if steps < 2 {
		t.Errorf("only %d successful steps before cancel", steps)
	}
}

func TestLiveStepAgainstDeadServer(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := pc.LocalAddr().String()
	pc.Close()
	l, err := DialLive(LiveOptions{Server: addr, Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Step(); err == nil {
		t.Error("step against dead server succeeded")
	}
	// Nothing must have been fed to the clock.
	if got := l.Clock().Exchanges(); got != 0 {
		t.Errorf("exchanges = %d after failed step", got)
	}
}

package tscclock

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/ntp"
)

// LiveOptions configures a live UDP synchronizer.
type LiveOptions struct {
	// Server is the NTP server address ("host:123").
	Server string
	// Poll is the polling interval. Default: 64 s. Be conservative:
	// public stratum-1 servers must not be overloaded.
	Poll time.Duration
	// Timeout bounds each exchange. Default: 4 s.
	Timeout time.Duration
	// Clock carries the calibration options. NominalPeriod defaults to
	// 1 ns (the monotonic counter's resolution); PollPeriod is derived
	// from Poll.
	Clock Options
	// NoKernelStamps disables kernel SO_TIMESTAMPING on the client
	// socket. By default (Linux, UDP) every exchange stamps Ta from the
	// kernel's error-queue transmit stamp and Tf from the RX cmsg
	// arrival stamp, falling back per-stamp to userspace readings —
	// strictly less host noise, counted in StampStats. Set this to keep
	// the historical pure-userspace stamping.
	NoKernelStamps bool
}

// Live runs the full TSC-NTP pipeline against a real NTP server over
// UDP: raw monotonic counter stamps on the host side, standard NTP
// packets on the wire, and the robust calibration algorithms in between.
type Live struct {
	clock   *Clock
	client  *ntp.Client
	conn    net.Conn
	counter ntp.Counter
	period  float64 // the counter's nominal period (s/cycle)
	poll    time.Duration
}

// DialLive connects to the server and prepares the synchronizer. Call
// Step for single exchanges or Run for a polling loop.
func DialLive(opts LiveOptions) (*Live, error) {
	if opts.Server == "" {
		return nil, fmt.Errorf("tscclock: LiveOptions.Server is required")
	}
	poll := opts.Poll
	if poll <= 0 {
		poll = 64 * time.Second
	}
	counter, period := ntp.MonotonicCounter()
	clockOpts := opts.Clock
	if clockOpts.NominalPeriod == 0 {
		clockOpts.NominalPeriod = period
	}
	if clockOpts.PollPeriod == 0 {
		clockOpts.PollPeriod = poll.Seconds()
	}
	clock, err := New(clockOpts)
	if err != nil {
		return nil, err
	}
	conn, err := net.Dial("udp", opts.Server)
	if err != nil {
		return nil, fmt.Errorf("tscclock: dial %s: %w", opts.Server, err)
	}
	client := ntp.NewClient(conn, counter, opts.Timeout)
	if !opts.NoKernelStamps {
		client.EnableKernelStamps(clockOpts.NominalPeriod)
	}
	return &Live{
		clock:   clock,
		client:  client,
		conn:    conn,
		counter: counter,
		period:  clockOpts.NominalPeriod,
		poll:    poll,
	}, nil
}

// Clock returns the underlying calibrated clock.
func (l *Live) Clock() *Clock { return l.clock }

// Counter reads the raw host counter, for timestamping events that will
// later be converted with the calibrated clock.
func (l *Live) Counter() uint64 { return l.counter() }

// StampStats returns the client's kernel-stamp coverage and measured
// kernel-vs-userspace stamp deltas (all zeros when kernel stamping is
// off or unsupported).
func (l *Live) StampStats() ntp.ClientStampStats { return l.client.StampStats() }

// Step performs one NTP exchange and feeds it to the clock, including
// the server's identity for server-change detection. A failed exchange
// (timeout, loss) returns an error and feeds nothing — exactly the
// lost-packet behaviour the algorithms are designed for.
func (l *Live) Step() (Status, error) {
	raw, err := l.client.Exchange()
	if err != nil {
		return Status{}, err
	}
	return l.clock.ProcessNTPExchangeFrom(raw.Ta, raw.Tf, raw.Tb, raw.Te, raw.RefID, raw.Stratum)
}

// Run polls until the context is cancelled. Exchange failures are
// tolerated silently (the clock coasts on its calibration); persistent
// protocol errors are only surfaced through OnStep if installed.
func (l *Live) Run(ctx context.Context, onStep func(Status, error)) error {
	ticker := time.NewTicker(l.poll)
	defer ticker.Stop()
	for {
		st, err := l.Step()
		if onStep != nil {
			onStep(st, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// RunAdaptive polls with intervals recommended by the Poller: fast
// during warmup and after disturbances, backing off to the poller's
// maximum once calibrated (the paper's controlled-emission extension).
func (l *Live) RunAdaptive(ctx context.Context, p *Poller, onStep func(Status, error)) error {
	if p == nil {
		p = NewPoller(0, l.poll)
	}
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
		st, err := l.Step()
		if onStep != nil {
			onStep(st, err)
		}
		timer.Reset(p.Observe(st, err))
	}
}

// Now reads the absolute clock as a wall-clock time, resolving the NTP
// era with the system clock as pivot. Lock-free, like all clock reads.
//
//repro:readpath
func (l *Live) Now() time.Time {
	sec := l.clock.AbsoluteTime(l.counter())
	return ntp.Time64FromSeconds(sec).Time(time.Now())
}

// ServerSample returns an ntp.SampleClock that stamps downstream NTP
// replies from this synchronized clock: the single-upstream relay
// adapter. Each sample is a pure function of the latest published
// readout — safe to call from every serving shard concurrently, with
// no lock shared with the polling loop. While the clock is still in
// warmup — or the upstream itself advertises an unsynchronized chain
// (stratum ≥ 15) — the sample advertises LeapNotSynced/stratum 16 so
// clients reject it; once calibrated it advertises the upstream
// server's stratum + 1, the minimum path RTT as root delay, and a
// dispersion grown from the readout's staleness at the standard
// 15 PPM rate.
//
//repro:readpath
func (l *Live) ServerSample(refID uint32) ntp.SampleClock {
	precision := ntp.PrecisionFromPeriod(l.period)
	return func() ntp.ClockSample {
		T := l.counter()
		r := l.clock.Readout()
		s := ntp.ClockSample{
			Time:      ntp.Time64FromSeconds(r.AbsoluteTime(T)),
			RefID:     refID,
			Precision: precision,
		}
		// Unsynced also when the upstream itself advertises stratum
		// ≥ 15: a calibrated clock hanging off an unsynchronized chain
		// must propagate that condition, not mask it as stratum 2.
		upstreamDead := r.IdentKnown && r.Ident.Stratum >= ntp.StratumUnsynced-1
		if !r.HaveTheta || r.Warmup || upstreamDead {
			s.Leap = ntp.LeapNotSynced
			s.Stratum = ntp.StratumUnsynced
			return s
		}
		s.Leap = ntp.LeapNone
		s.Stratum = 2 // identity unknown (simulated feeds): assume stratum-1 upstream
		if r.IdentKnown && r.Ident.Stratum > 0 {
			s.Stratum = r.Ident.Stratum + 1
		}
		s.RootDelay = ntp.Short32FromSeconds(r.RTTHat)
		s.RootDisp = ntp.Short32FromSeconds(r.RTTHat/2 + ntp.DispersionRate*r.Age(T))
		return s
	}
}

// Close releases the UDP socket.
func (l *Live) Close() error { return l.conn.Close() }

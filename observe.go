package tscclock

// Production observability for the relay: NewRelayMetrics wires a
// metrics.Registry to every layer of cmd/ntpserver — serving counters,
// shard supervisor restarts, the abuse limiter, and in relay mode the
// ensemble's ladder state, health summary, per-server trust diagnostics
// and upstream connection slots — and NewObservabilityMux serves it
// alongside the /healthz and /readyz probes. Everything is sampled at
// scrape time from the same lock-free surfaces the stats log lines use
// (Server.Stats, Shards.Stats, the published readout), so a scrape
// never touches the packet hot path.

import (
	"net/http"
	"sync"

	"repro/internal/metrics"
	"repro/internal/ntp"
	"repro/internal/ratelimit"
)

// RelayMetricsConfig names the layers NewRelayMetrics instruments. Any
// nil field is simply skipped, so the same constructor covers the
// stratum-1 server (no Multi), an unlimited deployment (no Limit), and
// the full relay.
type RelayMetricsConfig struct {
	// Server provides the per-packet serving counters.
	Server *ntp.Server
	// Shards provides the shard supervisor's restart tally.
	Shards *ntp.Shards
	// Multi provides the ensemble readout, ladder state and upstream
	// connection slots (relay mode).
	Multi *MultiLive
	// Limit provides the abuse limiter's table occupancy and fail-open
	// counter (denials themselves are counted by Server).
	Limit *ratelimit.Limiter
}

// NewRelayMetrics builds the relay's metric registry. Cumulative
// sources (Server.Stats, dial counts) are folded into counter families
// on scrape, so scrapes observe monotonic counters; instantaneous
// state (ladder rung, weights, corrections) lands in gauges. The
// registry is ready for NewObservabilityMux or metrics.Registry.Handler.
func NewRelayMetrics(cfg RelayMetricsConfig) *metrics.Registry {
	reg := metrics.NewRegistry()
	// fold turns a cumulative external uint64 into a counter update:
	// add the delta since the previous scrape. Guarded by foldMu so
	// concurrent scrapes never double-count a delta.
	var foldMu sync.Mutex
	fold := func(c *metrics.Counter) func(uint64) {
		var last uint64
		return func(cur uint64) {
			if cur > last {
				c.Add(cur - last)
				last = cur
			}
		}
	}

	if srv := cfg.Server; srv != nil {
		requests := fold(reg.Counter("ntp_requests_total", "Datagrams received on the serving sockets."))
		replies := fold(reg.Counter("ntp_replies_total", "Server-mode replies sent."))
		dropped := reg.CounterVec("ntp_dropped_total", "Datagrams dropped before a reply, by reason.", "reason")
		short := fold(dropped.With("short"))
		malformed := fold(dropped.With("malformed"))
		nonClient := fold(dropped.With("nonclient"))
		rateLimited := fold(reg.Counter("ntp_rate_limited_total", "Requests dropped by the per-prefix token bucket."))
		writeErrors := fold(reg.Counter("ntp_write_errors_total", "Reply writes that failed."))
		recvCalls := fold(reg.Counter("ntp_recv_syscalls_total", "Receive syscalls issued by the serving loops (recvmmsg drains a whole batch per call)."))
		sendCalls := fold(reg.Counter("ntp_send_syscalls_total", "Send syscalls issued by the serving loops (sendmmsg answers a whole batch per call)."))
		kernelRx := fold(reg.Counter("ntp_kernel_rx_stamps_total", "Batched datagrams carrying a usable kernel SO_TIMESTAMPING RX timestamp."))
		kernelRxMissing := fold(reg.Counter("ntp_kernel_rx_missing_total", "Batched datagrams served without a usable kernel RX timestamp."))
		kernelTx := fold(reg.Counter("ntp_kernel_tx_stamps_total", "Replies whose kernel TX stamp came back on the error queue and correlated to a recorded send."))
		kernelTxMissing := fold(reg.Counter("ntp_kernel_tx_missing_total", "Error-queue entries without a usable, correlatable TX stamp."))
		stampClamped := fold(reg.Counter("ntp_stamp_clamped_total", "Kernel timestamps (RX and TX) rejected or clipped by the shared trust clamp — a rising value means the host clock is stepping."))
		txDwell := reg.Histogram("ntp_tx_dwell_seconds", "Measured userspace-to-kernel TX dwell per stamped reply.", ntp.TxDwellBounds[:]...)
		reg.GaugeFunc("ntp_tx_dwell_ewma_seconds", "Current TX dwell EWMA: the forward-dating the serving loop applies to Transmit when -txstamp is on (before the clamp).", func() float64 {
			return srv.Stats().TxDwellEWMA.Seconds()
		})
		// The TX dwell histogram folds per scrape: ntp.Stats carries
		// cumulative-per-bucket counts, so the per-bucket increments are
		// double deltas (across buckets, then across scrapes).
		var lastTxBuckets [len(ntp.TxDwellBounds) + 1]uint64
		var lastTxSum float64
		// The average receive batch depth per syscall is the lever the
		// batched loop exists to pull; near 1.0 it means the socket
		// never builds queue depth and the loop degenerates to
		// per-packet cost.
		reg.GaugeFunc("ntp_rx_batch_avg", "Mean datagrams drained per receive syscall since start.", func() float64 {
			st := srv.Stats()
			if st.RecvCalls == 0 {
				return 0
			}
			return float64(st.Requests) / float64(st.RecvCalls)
		})
		reg.OnScrape(func() {
			st := srv.Stats()
			foldMu.Lock()
			defer foldMu.Unlock()
			requests(st.Requests)
			replies(st.Replied)
			short(st.Short)
			malformed(st.Malformed)
			nonClient(st.NonClient)
			rateLimited(st.RateLimited)
			writeErrors(st.WriteErrors)
			recvCalls(st.RecvCalls)
			sendCalls(st.SendCalls)
			kernelRx(st.KernelRx)
			kernelRxMissing(st.KernelRxMissing)
			kernelTx(st.KernelTx)
			kernelTxMissing(st.KernelTxMissing)
			stampClamped(st.StampClamped)
			var prev uint64
			for i := range st.TxDwell {
				per := st.TxDwell[i] - prev
				prev = st.TxDwell[i]
				if per > lastTxBuckets[i] {
					txDwell.AddBucket(i, per-lastTxBuckets[i])
					lastTxBuckets[i] = per
				}
			}
			if st.TxDwellSum > lastTxSum {
				txDwell.AddSum(st.TxDwellSum - lastTxSum)
				lastTxSum = st.TxDwellSum
			}
		})
	}

	if sh := cfg.Shards; sh != nil {
		restarts := fold(reg.Counter("ntp_shard_restarts_total", "Serving-loop failures recovered by the shard supervisor."))
		reg.GaugeFunc("ntp_shards", "Serving shards on the listen address.", func() float64 {
			return float64(sh.Size())
		})
		reg.OnScrape(func() {
			var n uint64
			for _, s := range sh.Stats() {
				n += s.Restarts
			}
			foldMu.Lock()
			defer foldMu.Unlock()
			restarts(n)
		})
	}

	if l := cfg.Limit; l != nil {
		reg.GaugeFunc("ratelimit_tracked_prefixes", "Client prefixes with a live token bucket.", func() float64 {
			return float64(l.Len())
		})
		untracked := fold(reg.Counter("ratelimit_untracked_total", "Requests admitted without tracking because the bucket table was full (fail open)."))
		reg.OnScrape(func() {
			foldMu.Lock()
			defer foldMu.Unlock()
			untracked(l.Untracked())
		})
	}

	if ml := cfg.Multi; ml != nil {
		reg.GaugeFunc("tscclock_ladder_state", "Degradation-ladder state read at scrape time (0 unsynced, 1 holdover, 2 degraded, 3 synced).", func() float64 {
			return float64(ml.ens.State(ml.counter()))
		})
		reg.GaugeFunc("tscclock_ready", "1 while the ladder is at DEGRADED or better (the /readyz predicate).", func() float64 {
			if ml.Ready() {
				return 1
			}
			return 0
		})
		exchanges := fold(reg.Counter("tscclock_exchanges_total", "Upstream NTP exchanges fed to the ensemble."))
		voting := reg.Gauge("tscclock_voting_servers", "Servers backing the combined vote.")
		falsetickers := reg.Gauge("tscclock_falsetickers", "Ready servers voted out by interval intersection.")
		stratum := reg.Gauge("tscclock_health_stratum", "Advertised upstream stratum of the voting set.")
		errScale := reg.Gauge("tscclock_health_err_scale_seconds", "Widest voting error scale (root-dispersion base).")

		serverLabel := []string{"server"}
		weight := reg.GaugeVec("tscclock_server_weight", "Normalized combining weight per upstream.", serverLabel...)
		asymHint := reg.GaugeVec("tscclock_server_asymmetry_seconds", "Signed asymmetry hint against the selected-set midpoint.", serverLabel...)
		asymCorr := reg.GaugeVec("tscclock_server_asym_correction_seconds", "Applied damped path-asymmetry correction.", serverLabel...)
		selected := reg.GaugeVec("tscclock_server_selected", "1 while the upstream is in the truechimer set.", serverLabel...)
		penalty := reg.GaugeVec("tscclock_server_penalty_seconds", "Decaying trust penalty per upstream.", serverLabel...)
		connected := reg.GaugeVec("tscclock_upstream_connected", "1 while the upstream slot holds a socket.", serverLabel...)
		dials := reg.CounterVec("tscclock_upstream_dials_total", "Successful upstream dials (beyond 1 per slot: reconnections).", serverLabel...)
		dialFailures := reg.CounterVec("tscclock_upstream_dial_failures_total", "Failed upstream dial attempts.", serverLabel...)
		kernelTa := reg.CounterVec("tscclock_upstream_kernel_ta_total", "Exchanges whose client send stamp (Ta) came from the kernel error-queue TX stamp.", serverLabel...)
		kernelTf := reg.CounterVec("tscclock_upstream_kernel_tf_total", "Exchanges whose client receive stamp (Tf) came from the kernel RX cmsg stamp.", serverLabel...)
		stampMisses := reg.CounterVec("tscclock_upstream_stamp_misses_total", "Per-stamp fallbacks to userspace readings on successful exchanges.", serverLabel...)
		taDelta := reg.GaugeVec("tscclock_upstream_ta_delta_seconds", "EWMA of the kernel-vs-userspace send-stamp delta: the client-side TX stamping noise shed by kernel timestamps.", serverLabel...)
		tfDelta := reg.GaugeVec("tscclock_upstream_tf_delta_seconds", "EWMA of the kernel-vs-userspace receive-stamp delta: the client-side RX stamping noise shed by kernel timestamps.", serverLabel...)

		// Resolve the per-server cells once: server count is fixed for
		// the life of a MultiLive.
		n := len(ml.ups)
		type serverCells struct {
			weight, asymHint, asymCorr, selected, penalty, connected *metrics.Gauge
			taDelta, tfDelta                                         *metrics.Gauge
			dials, dialFailures                                      func(uint64)
			kernelTa, kernelTf, stampMisses                          func(uint64)
		}
		cells := make([]serverCells, n)
		for k := 0; k < n; k++ {
			lv := itoa(k)
			cells[k] = serverCells{
				weight:       weight.With(lv),
				asymHint:     asymHint.With(lv),
				asymCorr:     asymCorr.With(lv),
				selected:     selected.With(lv),
				penalty:      penalty.With(lv),
				connected:    connected.With(lv),
				taDelta:      taDelta.With(lv),
				tfDelta:      tfDelta.With(lv),
				dials:        fold(dials.With(lv)),
				dialFailures: fold(dialFailures.With(lv)),
				kernelTa:     fold(kernelTa.With(lv)),
				kernelTf:     fold(kernelTf.With(lv)),
				stampMisses:  fold(stampMisses.With(lv)),
			}
		}
		reg.OnScrape(func() {
			r := ml.ens.Readout()
			voting.Set(float64(r.VotingCount))
			falsetickers.Set(float64(r.Falsetickers))
			stratum.Set(float64(r.Health.Stratum))
			errScale.Set(r.Health.ErrScale)
			states := r.ServerStates()
			ups := ml.UpstreamStates()
			foldMu.Lock()
			exchanges(uint64(r.Exchanges))
			for k := range cells {
				if k < len(states) {
					st := states[k]
					cells[k].weight.Set(st.Weight)
					cells[k].asymHint.Set(st.AsymmetryHint)
					cells[k].asymCorr.Set(st.AsymCorrection)
					cells[k].penalty.Set(st.Penalty)
					if st.Selected {
						cells[k].selected.Set(1)
					} else {
						cells[k].selected.Set(0)
					}
				}
				if k < len(ups) {
					if ups[k].Connected {
						cells[k].connected.Set(1)
					} else {
						cells[k].connected.Set(0)
					}
					cells[k].dials(ups[k].Dials)
					cells[k].dialFailures(ups[k].DialFailures)
					cells[k].kernelTa(ups[k].KernelTa)
					cells[k].kernelTf(ups[k].KernelTf)
					cells[k].stampMisses(ups[k].StampMisses)
					cells[k].taDelta.Set(ups[k].TaDelta)
					cells[k].tfDelta.Set(ups[k].TfDelta)
				}
			}
			foldMu.Unlock()
		})
	}
	return reg
}

// itoa is a minimal non-negative integer formatter for label values
// (avoids strconv in a file otherwise free of it — and the zero case).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// NewObservabilityMux assembles the relay's sidecar HTTP surface:
//
//   - /metrics: the registry in Prometheus text exposition format;
//   - /healthz: liveness — 200 while the process can answer HTTP at
//     all (a relay in HOLDOVER is alive, just not preferable);
//   - /readyz: readiness — 200 while ready() holds (the relay wires
//     MultiLive.Ready: ladder at DEGRADED or better), 503 otherwise,
//     so load balancers drain replicas that lost their upstream vote
//     without killing them.
//
// ready may be nil (a stratum-1 server stamping from the OS clock is
// always ready). The mux is served on a separate listener from the NTP
// shards: observability must not share fate with the packet path.
func NewObservabilityMux(reg *metrics.Registry, ready func() bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready == nil || ready() {
			w.Write([]byte("ready\n"))
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("not ready\n"))
	})
	return mux
}

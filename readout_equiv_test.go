package tscclock

// Golden equivalence of the lock-free public read path against the
// writer-side combiner on full sim scenarios: the public wrappers read
// through published readouts now, and every answer must match what the
// pre-refactor mutex path — a locked call into the internal writer-side
// methods — would have returned at the same instant.

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/timebase"
)

// TestEnsembleReadoutEquivalenceSim runs a multi-server sim scenario —
// and the colluding-minority selection scenario — through the public
// Ensemble and compares every lock-free read against the internal
// writer-path methods after each exchange.
func TestEnsembleReadoutEquivalenceSim(t *testing.T) {
	if testing.Short() {
		t.Skip("full sim traces")
	}
	scenarios := map[string]sim.MultiScenario{
		"ensemble3": sim.NewMultiScenario(sim.MachineRoom,
			[]sim.ServerSpec{sim.ServerLoc(), sim.ServerInt(), sim.ServerInt()},
			16, 6*timebase.Hour, 42),
		"colluding": sim.NewColludingScenario(sim.MachineRoom, 1.5*timebase.Millisecond,
			16, 6*timebase.Hour, 43),
	}
	for name, sc := range scenarios {
		t.Run(name, func(t *testing.T) {
			tr, err := sim.GenerateMulti(sc)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewEnsemble(EnsembleOptions{
				Servers: len(sc.Servers),
				Clock:   Options{NominalPeriod: 1.0 / 548655270, PollPeriod: 16},
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, ex := range tr.Completed() {
				if _, err := e.ProcessNTPExchange(ex.Server, ex.Ta, ex.Tf, ex.Tb, ex.Te); err != nil {
					t.Fatal(err)
				}
				// Public lock-free reads vs the internal writer path
				// (what the mutex wrappers called before the refactor).
				for _, T := range []uint64{ex.Tf, ex.Tf + 500000} {
					if got, want := e.AbsoluteTime(T), e.ens.AbsoluteTime(T); got != want {
						t.Fatalf("exchange %d: AbsoluteTime(%d): public %v, writer path %v", i, T, got, want)
					}
				}
				if got, want := e.Period(), e.ens.RateHat(); got != want {
					t.Fatalf("exchange %d: Period: public %v, writer path %v", i, got, want)
				}
				if got, want := e.Between(ex.Ta, ex.Tf), e.ens.DifferenceSpan(ex.Ta, ex.Tf); got != want {
					t.Fatalf("exchange %d: Between: public %v, writer path %v", i, got, want)
				}
				if got, want := e.Exchanges(), e.ens.Exchanges(); got != want {
					t.Fatalf("exchange %d: Exchanges: public %d, writer path %d", i, got, want)
				}
				if i%50 == 0 { // the heavier diagnostic reads, sampled
					ws, wWant := e.Weights(), e.ens.Weights()
					for k := range ws {
						if ws[k] != wWant[k] {
							t.Fatalf("exchange %d: Weights[%d]: public %v, writer path %v", i, k, ws[k], wWant[k])
						}
					}
					st, stWant := e.ServerStates(), e.ens.ServerStates()
					for k := range st {
						if st[k] != stWant[k] {
							t.Fatalf("exchange %d: ServerStates[%d]: public %+v, writer path %+v", i, k, st[k], stWant[k])
						}
					}
					snap := e.ens.TakeSnapshot(ex.Tf)
					if got := e.Readout().Agreement(ex.Tf); got != snap.Agreement {
						t.Fatalf("exchange %d: Agreement: readout %d, snapshot %d", i, got, snap.Agreement)
					}
				}
			}
		})
	}
}

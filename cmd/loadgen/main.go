// Command loadgen is a closed-loop NTP load generator: the measuring
// half of the batched serving work. It drives a server with N
// concurrent flows, each keeping a bounded window of client-mode
// requests in flight over its own UDP socket (so a kernel with
// SO_REUSEPORT spreads flows across serving shards), matches every
// reply to its request through the echoed Transmit/Origin cookie, and
// reports the achieved closed-loop rate plus request latency
// quantiles computed with internal/stats — so "requests/s" claims
// about the serving path are measured numbers, not extrapolations.
//
// Two load modes:
//
//   - saturation (default, -rate 0): every flow keeps its full window
//     outstanding at all times; the achieved rate is the server's
//     closed-loop capacity at that concurrency.
//   - target rate (-rate R): sends are paced to R requests/s across
//     all flows (each flow paces at R/N), still bounded by the
//     window; the latency quantiles then characterize the server at
//     that operating point rather than at saturation.
//
// -selftest serves the load from an in-process stratum-1 server on a
// loopback socket and asserts that replies flow, which gives CI a
// hermetic smoke test of the whole batched serving + load path:
//
//	loadgen -selftest -duration 2s -flows 4
//	loadgen -target 127.0.0.1:1123 -flows 8 -window 16 -duration 10s
//	loadgen -target 127.0.0.1:1123 -rate 50000 -duration 30s
//
// Each flow counts sends, replies, timeouts and mismatched replies;
// the exit status is non-zero if no replies arrived at all (the smoke
// criterion) or any flow failed outright.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/ntp"
	"repro/internal/stats"
)

func main() {
	var (
		target   = flag.String("target", "", "server UDP address to load (required unless -selftest)")
		selftest = flag.Bool("selftest", false, "serve from an in-process stratum-1 server on loopback and load that")
		flows    = flag.Int("flows", 8, "concurrent closed-loop flows, one socket each")
		window   = flag.Int("window", 16, "requests in flight per flow")
		rate     = flag.Float64("rate", 0, "total target request rate across all flows in req/s (0 = saturation)")
		duration = flag.Duration("duration", 5*time.Second, "measurement length")
		timeout  = flag.Duration("timeout", time.Second, "per-read reply timeout (a timed-out slot is resent)")
		batch    = flag.Int("batch", 0, "selftest server's syscall batch size (0 = default 32, 1 = per-packet loop)")
		txstamp  = flag.Bool("txstamp", false, "selftest server arms kernel TX error-queue stamps and forward-dates Transmit")
	)
	flag.Parse()
	if *flows < 1 || *window < 1 || *window > 255 {
		log.Fatal("loadgen: need -flows >= 1 and 1 <= -window <= 255")
	}

	addr := *target
	var srv *ntp.Server
	if *selftest {
		if addr != "" {
			log.Fatal("loadgen: -selftest and -target are mutually exclusive")
		}
		var stop func()
		var err error
		srv, addr, stop, err = startSelftestServer(*batch, *txstamp)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		fmt.Printf("selftest server on %s\n", addr)
	}
	if addr == "" {
		log.Fatal("loadgen: -target is required (or use -selftest)")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	results := make([]flowResult, *flows)
	var wg sync.WaitGroup
	start := time.Now()
	for f := 0; f < *flows; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			results[f] = runFlow(ctx, addr, *window, *rate/float64(*flows), *timeout)
		}(f)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var sent, recv, timeouts, mismatched, kstamped uint64
	var lat, klat, kdelta []float64
	failed := false
	for f, r := range results {
		if r.err != nil {
			log.Printf("flow %d: %v", f, r.err)
			failed = true
			continue
		}
		sent += r.sent
		recv += r.recv
		timeouts += r.timeouts
		mismatched += r.mismatched
		kstamped += r.kstamped
		lat = append(lat, r.latencies...)
		klat = append(klat, r.klat...)
		kdelta = append(kdelta, r.kdelta...)
	}

	mode := fmt.Sprintf("saturation, %d flows x window %d", *flows, *window)
	if *rate > 0 {
		mode = fmt.Sprintf("target %.0f req/s, %d flows x window %d", *rate, *flows, *window)
	}
	fmt.Printf("loadgen: %s against %s for %v\n", mode, addr, elapsed.Round(time.Millisecond))
	fmt.Printf("  sent %d, replies %d (%.1f%%), timeouts %d, mismatched %d\n",
		sent, recv, 100*float64(recv)/max1(float64(sent)), timeouts, mismatched)
	fmt.Printf("  closed-loop rate: %.0f replies/s\n", float64(recv)/elapsed.Seconds())
	if len(lat) > 0 {
		q := stats.NewSorted(lat).Quantiles(0, 50, 90, 99, 99.9, 100)
		fmt.Printf("  latency: min %s  p50 %s  p90 %s  p99 %s  p99.9 %s  max %s  (%d samples)\n",
			us(q[0]), us(q[1]), us(q[2]), us(q[3]), us(q[4]), us(q[5]), len(lat))
	}
	if len(klat) > 0 {
		// The kernel-RX-stamp latency excludes the reply's dwell in the
		// client's socket buffer and the wakeup; the delta line IS that
		// excluded dwell — the stamping noise a userspace-stamped client
		// folds into every measured RTT.
		q := stats.NewSorted(klat).Quantiles(50, 90, 99)
		d := stats.NewSorted(kdelta).Quantiles(50, 90, 99)
		fmt.Printf("  kernel-rx latency: p50 %s  p90 %s  p99 %s  (%d/%d replies stamped)\n",
			us(q[0]), us(q[1]), us(q[2]), kstamped, recv)
		fmt.Printf("  kernel-vs-userspace rx delta: p50 %s  p90 %s  p99 %s\n",
			us(d[0]), us(d[1]), us(d[2]))
	}
	if srv != nil {
		st := srv.Stats()
		fmt.Printf("  server: %d replies, %.3g syscalls/reply, kernel rx stamps %d/%d\n",
			st.Replied, float64(st.RecvCalls+st.SendCalls)/max1(float64(st.Replied)),
			st.KernelRx, st.KernelRx+st.KernelRxMissing)
		if st.KernelTx+st.KernelTxMissing > 0 {
			fmt.Printf("  server: kernel tx stamps %d/%d, tx dwell ewma %v, clamped %d\n",
				st.KernelTx, st.KernelTx+st.KernelTxMissing, st.TxDwellEWMA, st.StampClamped)
		}
	}
	if recv == 0 {
		log.Fatal("loadgen: no replies received")
	}
	if failed {
		os.Exit(1)
	}
}

func max1(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}

// us renders a latency in seconds as microseconds.
func us(sec float64) string { return fmt.Sprintf("%.1fµs", sec*1e6) }

// startSelftestServer boots a single-shard stratum-1 server on an
// ephemeral loopback socket, returning the server (for its counters),
// its address, and a stop function that drains the serve goroutine.
func startSelftestServer(batch int, txstamp bool) (*ntp.Server, string, func(), error) {
	srv, err := ntp.NewServer(ntp.ServerConfig{Clock: ntp.SystemServerClock(), Batch: batch, TxStamp: txstamp})
	if err != nil {
		return nil, "", nil, err
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(pc)
	}()
	stop := func() {
		pc.Close()
		<-done
	}
	return srv, pc.LocalAddr().String(), stop, nil
}

// flowResult is one flow's tally.
type flowResult struct {
	sent       uint64
	recv       uint64
	timeouts   uint64
	mismatched uint64
	kstamped   uint64
	latencies  []float64 // seconds, send→userspace read
	klat       []float64 // seconds, send→kernel RX stamp
	kdelta     []float64 // seconds, kernel RX stamp→userspace read
	err        error
}

// latencyCap bounds the per-flow latency sample memory (~8 MB per flow
// at 1M float64s); past it, samples beyond the cap are dropped — the
// quantiles of the first million exchanges are plenty.
const latencyCap = 1 << 20

// seqCookie builds the request's Transmit cookie for in-flight slot
// matching: a fixed tag, the slot, and a per-slot generation so a
// stale reply (from a resent slot's earlier incarnation) is not
// mistaken for the current one. The server echoes Transmit verbatim
// into Origin.
func seqCookie(slot, gen uint32) ntp.Time64 {
	return ntp.Time64(uint64(0x4c47)<<48 | uint64(gen&0xffffff)<<8 | uint64(slot&0xff))
}

// runFlow drives one socket's load loop. A slot stack tracks the free
// window positions; a send fires whenever a slot is free and the
// pacing clock allows (always, in saturation mode), and reads run
// between sends with a deadline capped at the next send instant — so
// pacing never delays reads, which would smear client-side socket
// buffer dwell into the measured latency. The pacing clock keeps no
// backlog: a stall does not produce a catch-up burst, which would turn
// the latency tail into an artifact of the generator.
func runFlow(ctx context.Context, addr string, window int, perFlowRate float64, timeout time.Duration) flowResult {
	var r flowResult
	conn, err := net.Dial("udp", addr)
	if err != nil {
		r.err = err
		return r
	}
	defer conn.Close()
	// Kernel RX stamps on the measuring socket, where the platform has
	// them: latency to the kernel stamp excludes client-side buffer
	// dwell, and stamp→read gives the kernel-vs-userspace delta.
	uc, _ := conn.(*net.UDPConn)
	kstamps := uc != nil && ntp.EnableRxTimestamping(uc)
	var oob [128]byte

	var interval time.Duration
	if perFlowRate > 0 {
		interval = time.Duration(float64(time.Second) / perFlowRate)
	}

	sendAt := make([]time.Time, window) // send stamp per slot
	gen := make([]uint32, window)       // current generation per slot
	free := make([]int, window)         // stack of free slots
	for i := range free {
		free[i] = i
	}
	next := time.Now()      // earliest paced send instant
	lastReply := time.Now() // guards the all-outstanding-lost declaration

	send := func() error {
		slot := free[len(free)-1]
		free = free[:len(free)-1]
		gen[slot]++
		req := ntp.Packet{Version: 4, Mode: ntp.ModeClient, Poll: 6,
			Transmit: seqCookie(uint32(slot), gen[slot])}
		wire := req.Marshal()
		sendAt[slot] = time.Now()
		if _, err := conn.Write(wire[:]); err != nil {
			return err
		}
		r.sent++
		if interval > 0 {
			next = sendAt[slot].Add(interval)
		}
		return nil
	}

	var rbuf [512]byte
	var resp ntp.Packet
	for {
		running := ctx.Err() == nil
		if !running && len(free) == window {
			break // nothing outstanding, run over
		}
		// Send while allowed: a free slot and (paced mode) a due clock.
		for running && len(free) > 0 && !time.Now().Before(next) {
			if err := send(); err != nil {
				r.err = err
				return r
			}
		}
		if len(free) == window {
			// Paced mode, nothing in flight: sleep to the next send.
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			continue
		}
		// Read with a deadline that never overruns the next paced send
		// (so pacing stays accurate) nor the reply timeout.
		deadline := time.Now().Add(timeout)
		if running && interval > 0 && len(free) > 0 && next.Before(deadline) {
			deadline = next
		}
		if ctxd, ok := ctx.Deadline(); ok && ctxd.Add(timeout).Before(deadline) {
			deadline = ctxd.Add(timeout) // drain phase: bounded overrun
		}
		conn.SetReadDeadline(deadline)
		var n, oobn int
		if kstamps {
			n, oobn, _, _, err = uc.ReadMsgUDP(rbuf[:], oob[:])
		} else {
			n, err = conn.Read(rbuf[:])
		}
		now := time.Now()
		if err != nil {
			if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
				if !running {
					r.timeouts += uint64(window - len(free))
					break // drain phase over; whatever is left is lost
				}
				if now.Sub(lastReply) >= timeout && len(free) < window {
					// A full quiet timeout with requests in flight:
					// declare them lost (kernel drop under pressure);
					// the generation bump disowns any late replies and
					// the send loop refills the window.
					r.timeouts += uint64(window - len(free))
					free = free[:0]
					for i := 0; i < window; i++ {
						free = append(free, i)
					}
					lastReply = now
				}
				continue
			}
			r.err = err
			return r
		}
		if resp.Unmarshal(rbuf[:n]) != nil || resp.Mode != ntp.ModeServer {
			r.mismatched++
			continue
		}
		slot := int(uint64(resp.Origin) & 0xff)
		if uint64(resp.Origin)>>48 != 0x4c47 || slot >= window ||
			resp.Origin != seqCookie(uint32(slot), gen[slot]) {
			r.mismatched++ // stale generation or foreign traffic
			continue
		}
		r.recv++
		lastReply = now
		if len(r.latencies) < latencyCap {
			r.latencies = append(r.latencies, now.Sub(sendAt[slot]).Seconds())
		}
		if kstamps && oobn > 0 {
			if krx, ok := ntp.RxTimestampFromOOB(oob[:oobn]); ok {
				r.kstamped++
				if len(r.klat) < latencyCap {
					r.klat = append(r.klat, krx.Sub(sendAt[slot]).Seconds())
					r.kdelta = append(r.kdelta, now.Sub(krx).Seconds())
				}
			}
		}
		free = append(free, slot)
	}
	return r
}

// Command tscd is the TSC-NTP synchronizer daemon. It runs the robust
// calibration pipeline in one of two modes:
//
//	-mode live  (default): poll a real NTP server over UDP, stamping
//	            with the host's raw monotonic counter;
//	-mode sim:  replay a simulated scenario (environment x server) and
//	            report accuracy against the simulation's ground truth —
//	            useful to explore the algorithms without a network.
//
// Usage:
//
//	tscd -mode live -server 127.0.0.1:1123 -poll 16s
//	tscd -mode sim -env MR -srv ServerInt -days 1 -poll 16s
//	tscd -mode replay -trace mrint.tsctrc
//
// Replay mode consumes captures produced by cmd/tracegen (or any tool
// writing the internal/capture format) and scores the estimator against
// the recorded reference stamps, mirroring the paper's offline
// post-processing workflow.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"time"

	tscclock "repro"
	"repro/internal/capture"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timebase"
)

func main() {
	var (
		mode   = flag.String("mode", "live", "live or sim")
		server = flag.String("server", "127.0.0.1:1123", "NTP server (live mode)")
		poll   = flag.Duration("poll", 64*time.Second, "polling interval")
		local  = flag.Bool("localrate", false, "enable the local-rate refinement")

		env  = flag.String("env", "MR", "sim environment: Lab or MR")
		srv  = flag.String("srv", "ServerInt", "sim server: ServerLoc, ServerInt, ServerExt")
		days = flag.Float64("days", 1, "sim duration in days")
		seed = flag.Uint64("seed", 1, "sim seed")

		traceFile = flag.String("trace", "", "capture file (replay mode)")
	)
	flag.Parse()

	switch *mode {
	case "live":
		runLive(*server, *poll, *local)
	case "sim":
		runSim(*env, *srv, *days, poll.Seconds(), *seed, *local)
	case "replay":
		runReplay(*traceFile, *local)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

// runReplay feeds a saved capture through the estimator and scores it
// against the recorded DAG reference stamps.
func runReplay(path string, local bool) {
	meta, recs, err := capture.LoadAll(path)
	if err != nil {
		log.Fatal(err)
	}
	clock, err := tscclock.New(tscclock.Options{
		NominalPeriod: 1 / meta.NominalHz,
		PollPeriod:    meta.PollPeriod,
		UseLocalRate:  local,
	})
	if err != nil {
		log.Fatal(err)
	}
	var errs []float64
	fed, lost := 0, 0
	for _, r := range recs {
		if r.Lost {
			lost++
			continue
		}
		if _, err := clock.ProcessNTPExchange(r.Ta, r.Tf, r.Tb, r.Te); err != nil {
			log.Fatal(err)
		}
		fed++
		if r.TrueTf > timebase.Hour {
			errs = append(errs, clock.AbsoluteTime(r.Tf)-r.Tg)
		}
	}
	fmt.Printf("replayed %q (%s): %d exchanges fed, %d lost\n", path, meta.Name, fed, lost)
	if len(errs) == 0 {
		fmt.Println("trace too short to score (needs > 1 h)")
		return
	}
	fn := stats.FiveNumOf(errs)
	fmt.Printf("absolute clock error vs recorded reference:\n")
	fmt.Printf("  median %s, IQR %s\n",
		timebase.FormatDuration(stats.Median(errs)), timebase.FormatDuration(stats.IQR(errs)))
	fmt.Printf("  p01 %s  p25 %s  p50 %s  p75 %s  p99 %s\n",
		timebase.FormatDuration(fn.P01), timebase.FormatDuration(fn.P25),
		timebase.FormatDuration(fn.P50), timebase.FormatDuration(fn.P75),
		timebase.FormatDuration(fn.P99))
}

func runLive(server string, poll time.Duration, local bool) {
	live, err := tscclock.DialLive(tscclock.LiveOptions{
		Server: server,
		Poll:   poll,
		Clock:  tscclock.Options{UseLocalRate: local},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer live.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("synchronizing against %s every %v (ctrl-c to stop)\n", server, poll)
	err = live.Run(ctx, func(st tscclock.Status, err error) {
		if err != nil {
			fmt.Printf("%s exchange failed: %v\n", time.Now().Format(time.TimeOnly), err)
			return
		}
		fmt.Printf("%s rtt=%-10s offset=%-12s minRTT=%-10s absolute=%s\n",
			time.Now().Format(time.TimeOnly),
			timebase.FormatDuration(st.RTT),
			timebase.FormatDuration(st.Offset),
			timebase.FormatDuration(st.MinRTT),
			live.Now().Format(time.RFC3339Nano))
	})
	if err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
}

func runSim(env, srv string, days, poll float64, seed uint64, local bool) {
	var e sim.Environment
	switch env {
	case "Lab":
		e = sim.Laboratory
	case "MR":
		e = sim.MachineRoom
	default:
		log.Fatalf("unknown environment %q (Lab or MR)", env)
	}
	var spec sim.ServerSpec
	switch srv {
	case "ServerLoc":
		spec = sim.ServerLoc()
	case "ServerInt":
		spec = sim.ServerInt()
	case "ServerExt":
		spec = sim.ServerExt()
	default:
		log.Fatalf("unknown server %q", srv)
	}

	scenario := sim.NewScenario(e, spec, poll, days*timebase.Day, seed)
	tr, err := sim.Generate(scenario)
	if err != nil {
		log.Fatal(err)
	}
	clock, err := tscclock.New(tscclock.Options{
		NominalPeriod: 1 / scenario.Oscillator.NominalHz,
		PollPeriod:    poll,
		UseLocalRate:  local,
	})
	if err != nil {
		log.Fatal(err)
	}

	var errs []float64
	for _, ex := range tr.Completed() {
		if _, err := clock.ProcessNTPExchange(ex.Ta, ex.Tf, ex.Tb, ex.Te); err != nil {
			log.Fatal(err)
		}
		if ex.TrueTf > timebase.Hour {
			errs = append(errs, clock.AbsoluteTime(ex.Tf)-ex.Tg)
		}
	}

	rateErr := timebase.PPM(clock.Period()/tr.Osc.MeanPeriod() - 1)
	fmt.Printf("scenario %s: %.1f days at poll %.0fs (%d exchanges, %d lost)\n",
		scenario.Name, days, poll, len(tr.Exchanges), tr.LossCount())
	fmt.Printf("rate error:      %+.4f PPM\n", rateErr)
	fmt.Printf("absolute clock:  median err %s, IQR %s, |median| %s\n",
		timebase.FormatDuration(stats.Median(errs)),
		timebase.FormatDuration(stats.IQR(errs)),
		timebase.FormatDuration(math.Abs(stats.Median(errs))))
	fn := stats.FiveNumOf(errs)
	fmt.Printf("percentiles:     p01 %s  p25 %s  p50 %s  p75 %s  p99 %s\n",
		timebase.FormatDuration(fn.P01), timebase.FormatDuration(fn.P25),
		timebase.FormatDuration(fn.P50), timebase.FormatDuration(fn.P75),
		timebase.FormatDuration(fn.P99))
}

// Command experiments regenerates the tables and figures of the paper's
// evaluation. Each experiment prints the rows/series the paper reports
// plus shape checks (who wins, by what factor, where crossovers fall).
//
// Usage:
//
//	experiments -list
//	experiments -run fig12
//	experiments -run all -quick -out artifacts/
//	experiments -run longrun -days 28 -out artifacts/
//	experiments -perf
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/render"
)

func main() {
	var (
		run   = flag.String("run", "all", "experiment id to run, or 'all'")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		quick = flag.Bool("quick", false, "shrink trace durations ~8x")
		seed  = flag.Uint64("seed", 0, "override the deterministic seed (0 = default)")
		out   = flag.String("out", "", "directory for TSV artifacts (optional)")
		plot  = flag.Bool("plot", false, "draw figure series as terminal charts")
		perf  = flag.Bool("perf", false, "measure engine packet throughput and exit")
		days  = flag.Float64("days", 0, "longrun trace length in days (0 = default 21; streams at constant memory)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-9s %s\n", id, experiments.Title(id))
		}
		return
	}
	if *perf {
		runPerf()
		return
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick, OutputDir: *out, LongRunDays: *days}
	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}

	failed := 0
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		if *plot {
			printPlots(rep)
		}
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
		if !rep.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) had failing checks\n", failed)
		os.Exit(2)
	}
}

// runPerf is the operator-facing twin of core's BenchmarkProcess: it
// streams one million synthetic exchanges through a fresh engine per
// window configuration and reports wall-clock per-packet cost and
// sustainable packets/second — the number that sizes a fleet (how many
// polling clients one core of the sync tier can absorb).
func runPerf() {
	const n = 1_000_000
	const p = 2e-9
	ins := core.SynthTrace(n)

	configs := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"default", nil},
		{"nShift=1024", func(c *core.Config) { c.ShiftWindow = 1024 * 16 }},
		{"nShift=16384", func(c *core.Config) { c.ShiftWindow = 16384 * 16 }},
	}
	for _, tc := range configs {
		cfg := core.DefaultConfig(p, 16)
		if tc.mutate != nil {
			tc.mutate(&cfg)
		}
		s, err := core.NewSync(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perf: %v\n", err)
			os.Exit(1)
		}
		start := time.Now()
		for _, in := range ins {
			if _, err := s.Process(in); err != nil {
				fmt.Fprintf(os.Stderr, "perf: %v\n", err)
				os.Exit(1)
			}
		}
		el := time.Since(start)
		fmt.Printf("%-14s %d packets in %6.2fs  %7.0f ns/packet  %10.0f packets/s\n",
			tc.name, n, el.Seconds(), float64(el.Nanoseconds())/n, n/el.Seconds())
	}
}

// printPlots renders every recorded series table of a report. Stability
// curves get log-log axes; histogram tables get bars; everything else a
// linear chart, downsampled by the renderer's grid.
func printPlots(rep *experiments.Report) {
	names := make([]string, 0, len(rep.Tables))
	for name := range rep.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tab := rep.Tables[name]
		title := fmt.Sprintf("%s / %s", rep.ID, name)
		var chart string
		var err error
		switch {
		case strings.HasPrefix(name, "hist"):
			chart, err = render.Histogram(tab, title, 50)
		case rep.ID == "fig3":
			chart, err = render.Chart(tab, title, render.Options{LogX: true, LogY: true})
		default:
			chart, err = render.Chart(tab, title, render.Options{})
		}
		if err != nil {
			fmt.Printf("(plot %s: %v)\n", name, err)
			continue
		}
		fmt.Println(chart)
	}
}

// Command tracegen generates simulated exchange traces and saves them in
// the binary capture format, for offline replay through the estimators
// (see cmd/tscd -mode replay). This mirrors the paper's methodology:
// collect raw timestamp data continuously, post-process repeatedly.
//
// Usage:
//
//	tracegen -env MR -srv ServerInt -days 21 -poll 16 -seed 7 -o mrint.tsctrc
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/capture"
	"repro/internal/sim"
	"repro/internal/timebase"
)

func main() {
	var (
		env  = flag.String("env", "MR", "environment: Lab or MR")
		srv  = flag.String("srv", "ServerInt", "server: ServerLoc, ServerInt, ServerExt")
		days = flag.Float64("days", 1, "duration in days")
		poll = flag.Float64("poll", 16, "polling period in seconds")
		seed = flag.Uint64("seed", 1, "deterministic seed")
		loss = flag.Float64("loss", 0.0015, "per-exchange loss probability")
		out  = flag.String("o", "trace.tsctrc", "output file")
	)
	flag.Parse()

	var e sim.Environment
	switch *env {
	case "Lab":
		e = sim.Laboratory
	case "MR":
		e = sim.MachineRoom
	default:
		log.Fatalf("unknown environment %q", *env)
	}
	var spec sim.ServerSpec
	switch *srv {
	case "ServerLoc":
		spec = sim.ServerLoc()
	case "ServerInt":
		spec = sim.ServerInt()
	case "ServerExt":
		spec = sim.ServerExt()
	default:
		log.Fatalf("unknown server %q", *srv)
	}

	sc := sim.NewScenario(e, spec, *poll, *days*timebase.Day, *seed)
	sc.LossProb = *loss
	tr, err := sim.Generate(sc)
	if err != nil {
		log.Fatal(err)
	}
	n, err := capture.SaveTrace(*out, tr, fmt.Sprintf("tracegen %s %gd poll %gs", sc.Name, *days, *poll))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d exchanges (%d lost) to %s\n", n, tr.LossCount(), *out)
}

// Command tracegen generates simulated exchange traces and saves them in
// the binary capture format, for offline replay through the estimators
// (see cmd/tscd -mode replay). This mirrors the paper's methodology:
// collect raw timestamp data continuously, post-process repeatedly.
//
// Generation is streamed: exchanges go from the pull-based scenario
// stream straight to the capture writer, one record at a time, so a
// multi-week (-days 21 and beyond) trace writes in constant memory —
// wall-clock and disk are the only resources that scale with length.
//
// With -servers N > 1 a multi-server scenario is generated (one host
// oscillator polling N servers of the given class over independent
// paths) and one capture file is written per server, suffixed .s0, .s1,
// …, so ensemble experiments replay from disk exactly like
// single-server ones.
//
// Usage:
//
//	tracegen -env MR -srv ServerInt -days 21 -poll 16 -seed 7 -o mrint.tsctrc
//	tracegen -servers 3 -days 7 -o ensemble.tsctrc
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"strings"

	"repro/internal/capture"
	"repro/internal/sim"
	"repro/internal/timebase"
)

func main() {
	var (
		env     = flag.String("env", "MR", "environment: Lab or MR")
		srv     = flag.String("srv", "ServerInt", "server: ServerLoc, ServerInt, ServerExt")
		days    = flag.Float64("days", 1, "duration in days")
		poll    = flag.Float64("poll", 16, "polling period in seconds")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
		loss    = flag.Float64("loss", 0.0015, "per-exchange loss probability")
		servers = flag.Int("servers", 1, "number of upstream servers (1 = single capture, N>1 = one capture per server)")
		out     = flag.String("o", "trace.tsctrc", "output file (multi-server runs insert .sK before the extension)")
	)
	flag.Parse()

	var e sim.Environment
	switch *env {
	case "Lab":
		e = sim.Laboratory
	case "MR":
		e = sim.MachineRoom
	default:
		log.Fatalf("unknown environment %q", *env)
	}
	var spec sim.ServerSpec
	switch *srv {
	case "ServerLoc":
		spec = sim.ServerLoc()
	case "ServerInt":
		spec = sim.ServerInt()
	case "ServerExt":
		spec = sim.ServerExt()
	default:
		log.Fatalf("unknown server %q", *srv)
	}
	if *servers < 1 {
		log.Fatalf("-servers must be >= 1, got %d", *servers)
	}

	if *servers == 1 {
		if err := genSingle(e, spec, *poll, *days, *seed, *loss, *out); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := genMulti(e, spec, *servers, *poll, *days, *seed, *loss, *out); err != nil {
		log.Fatal(err)
	}
}

// genSingle streams a single-server scenario to one capture file.
func genSingle(env sim.Environment, spec sim.ServerSpec, poll, days float64, seed uint64, loss float64, out string) error {
	sc := sim.NewScenario(env, spec, poll, days*timebase.Day, seed)
	sc.LossProb = loss
	st, err := sim.NewStream(sc)
	if err != nil {
		return err
	}
	st.SetTrim(true)
	w, err := capture.CreateFile(out, captureMeta(sc.Name, poll, sc.Duration, seed,
		sc.Oscillator.NominalHz, days))
	if err != nil {
		return err
	}
	lost := 0
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		if e.Lost {
			lost++
		}
		if err := w.WriteExchange(e); err != nil {
			w.Close()
			return err
		}
	}
	n := w.Count()
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d exchanges (%d lost) to %s\n", n, lost, out)
	return nil
}

// genMulti streams a multi-server scenario, demultiplexing the merged
// emission order into one capture file per server.
func genMulti(env sim.Environment, spec sim.ServerSpec, nSrv int, poll, days float64, seed uint64, loss float64, out string) error {
	specs := make([]sim.ServerSpec, nSrv)
	for k := range specs {
		specs[k] = spec
	}
	sc := sim.NewMultiScenario(env, specs, poll, days*timebase.Day, seed)
	sc.LossProb = loss
	st, err := sim.NewMultiStream(sc)
	if err != nil {
		return err
	}
	st.SetTrim(true)

	writers := make([]*capture.Writer, nSrv)
	paths := make([]string, nSrv)
	closeAll := func() {
		for _, w := range writers {
			if w != nil {
				w.Close()
			}
		}
	}
	for k := range writers {
		paths[k] = serverPath(out, k)
		writers[k], err = capture.CreateFile(paths[k],
			captureMeta(fmt.Sprintf("%s/s%d", sc.Name, k), poll, sc.Duration, seed,
				sc.Oscillator.NominalHz, days))
		if err != nil {
			closeAll()
			return err
		}
	}
	lost := make([]int, nSrv)
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		if e.Lost {
			lost[e.Server]++
		}
		if err := writers[e.Server].WriteExchange(e.Exchange); err != nil {
			closeAll()
			return err
		}
	}
	for k, w := range writers {
		n := w.Count()
		if err := w.Close(); err != nil {
			return err
		}
		fmt.Printf("server %d: wrote %d exchanges (%d lost) to %s\n", k, n, lost[k], paths[k])
	}
	return nil
}

// captureMeta assembles the standard capture header.
func captureMeta(name string, poll, duration float64, seed uint64, nominalHz, days float64) capture.Meta {
	return capture.Meta{
		Name:       name,
		PollPeriod: poll,
		Duration:   duration,
		Seed:       seed,
		NominalHz:  nominalHz,
		Comment:    fmt.Sprintf("tracegen %s %gd poll %gs", name, days, poll),
	}
}

// serverPath inserts .sK before the output extension: ensemble.tsctrc
// becomes ensemble.s0.tsctrc.
func serverPath(out string, k int) string {
	ext := filepath.Ext(out)
	return fmt.Sprintf("%s.s%d%s", strings.TrimSuffix(out, ext), k, ext)
}

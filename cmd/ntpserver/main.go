// Command ntpserver runs the bundled NTP server in one of two modes:
//
//   - stratum-1 (default): stamp requests from the OS clock, as a
//     simple reference server for this repository's synchronizer and
//     ordinary NTP clients;
//   - stratum-2 relay (-upstream): synchronize the robust ensemble
//     clock against two or more upstream NTP servers over UDP
//     (MultiLive: per-server engines, trust scoring, interval
//     selection, weighted-median combining) and serve the combined
//     clock downstream, with the advertised stratum, leap, root delay
//     and root dispersion derived from the ensemble's published
//     health.
//
// Serving fans out across -shards sockets on one address
// (SO_REUSEPORT on Linux, shared-socket readers elsewhere); every
// shard stamps from the lock-free published readout, so reply
// throughput scales across cores without contending with the upstream
// pollers. SIGINT/SIGTERM close the listeners, drain the shards, and
// print final counters, so the relay runs cleanly under a supervisor.
//
// -http starts the observability sidecar on a separate TCP listener:
// /metrics (Prometheus text exposition of the serving counters, abuse
// limiter and ensemble health), /healthz (liveness) and /readyz
// (readiness: the ensemble's degradation ladder at DEGRADED or
// better). -limit arms the per-client-prefix token-bucket limiter on
// the packet path.
//
// Usage:
//
//	ntpserver -listen 127.0.0.1:1123 -refid GPS
//	ntpserver -listen :1123 -shards 4 \
//	    -upstream time1.example:123,time2.example:123,time3.example:123 \
//	    -http 127.0.0.1:9123 -limit 64
//
// (Binding the privileged default port 123 requires root.)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	tscclock "repro"
	"repro/internal/ntp"
	"repro/internal/ratelimit"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:1123", "UDP address to listen on")
		refid    = flag.String("refid", "", `reference identifier to advertise (default "GPS", or "TSCC" in relay mode)`)
		shards   = flag.Int("shards", runtime.GOMAXPROCS(0), "serving sockets/readers on the listen address")
		upstream = flag.String("upstream", "", "comma-separated upstream NTP servers; enables stratum-2 relay mode")
		poll     = flag.Duration("poll", 64*time.Second, "upstream polling interval floor (relay mode)")
		stats    = flag.Duration("stats", time.Minute, "period of the serving-counter log lines (0 disables)")
		httpAddr = flag.String("http", "", "TCP address for the /metrics, /healthz and /readyz observability endpoints (empty disables)")
		limit    = flag.Float64("limit", 0, "per-client-prefix (/24, /48) request budget in req/s, burst 2x (0 disables)")
		batch    = flag.Int("batch", 0, "serving syscall batch size on Linux (0 = default 32, 1 = per-packet loop)")
		txstamp  = flag.Bool("txstamp", false, "arm kernel TX error-queue timestamps and forward-date Transmit by the measured send dwell (Linux batched path)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		srv    *ntp.Server
		ml     *tscclock.MultiLive
		sample ntp.SampleClock
		err    error
	)
	var lim *ratelimit.Limiter
	if *limit > 0 {
		lim = ratelimit.New(ratelimit.Config{Rate: *limit, Burst: 2 * *limit})
	}
	var servers []string
	for _, s := range strings.Split(*upstream, ",") {
		if s = strings.TrimSpace(s); s != "" {
			servers = append(servers, s)
		}
	}
	if len(servers) > 0 {
		if *refid == "" {
			*refid = "TSCC"
		}
		ml, err = tscclock.DialMultiLive(tscclock.MultiLiveOptions{
			Servers: servers,
			Poll:    *poll,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer ml.Close()
		go func() {
			// Exchange failures are tolerated (the clock coasts); the
			// pollers run until shutdown.
			_ = ml.Run(ctx, nil)
		}()
		sample = ml.ServerSample(ntp.RefIDFromString(*refid))
		srv, err = ntp.NewServer(ntp.ServerConfig{Sample: sample, Limit: lim, Batch: *batch, TxStamp: *txstamp})
		if err != nil {
			log.Fatal(err)
		}
	} else {
		if *refid == "" {
			*refid = "GPS"
		}
		srv, err = ntp.NewServer(ntp.ServerConfig{
			Clock:   ntp.SystemServerClock(),
			RefID:   ntp.RefIDFromString(*refid),
			Limit:   lim,
			Batch:   *batch,
			TxStamp: *txstamp,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	sh, err := srv.ListenShards("udp", *listen, *shards)
	if err != nil {
		log.Fatal(err)
	}
	mode := "stratum-1 (OS clock)"
	if ml != nil {
		mode = fmt.Sprintf("stratum-2 relay (%d upstreams, poll %v)", len(servers), *poll)
	}
	reuse := "shared socket"
	if sh.ReusePort() {
		reuse = "SO_REUSEPORT"
	}
	fmt.Printf("ntpserver %s (refid %s) on %s, %d shards (%s)\n",
		mode, *refid, sh.Addr(), sh.Size(), reuse)

	// Observability sidecar: a separate TCP listener so a scrape storm
	// or probe misconfiguration cannot share fate with the UDP packet
	// path. Binding errors are config errors — fail fast.
	if *httpAddr != "" {
		reg := tscclock.NewRelayMetrics(tscclock.RelayMetricsConfig{
			Server: srv, Shards: sh, Multi: ml, Limit: lim,
		})
		var ready func() bool
		if ml != nil {
			ready = ml.Ready
		}
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		fmt.Printf("observability on http://%s (/metrics /healthz /readyz)\n", ln.Addr())
		go func() {
			hs := &http.Server{Handler: tscclock.NewObservabilityMux(reg, ready)}
			if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed && ctx.Err() == nil {
				log.Printf("observability server: %v", err)
			}
		}()
	}

	if *stats > 0 {
		go logStats(ctx, srv, sh, ml, sample, *stats)
	}

	err = sh.Serve(ctx)
	// Drained: report the final counters before exiting.
	fmt.Printf("shutdown: %s\n", statsLine(srv, sh, ml, sample))
	if err != nil {
		log.Fatal(err)
	}
}

// logStats prints one counter line per period until the context ends.
func logStats(ctx context.Context, srv *ntp.Server, sh *ntp.Shards, ml *tscclock.MultiLive, sample ntp.SampleClock, period time.Duration) {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			log.Print(statsLine(srv, sh, ml, sample))
		}
	}
}

// statsLine renders the serving counters, the shard supervisor's
// restart tally, and in relay mode the ensemble's health — its
// degradation-ladder state and upstream connectivity included — read
// through the same sample the shards serve from, all lock-free.
func statsLine(srv *ntp.Server, sh *ntp.Shards, ml *tscclock.MultiLive, sample ntp.SampleClock) string {
	st := srv.Stats()
	line := fmt.Sprintf("served %d/%d requests (dropped %d: %d short, %d malformed, %d non-client; %d rate-limited; %d write errors)",
		st.Replied, st.Requests, st.Dropped(), st.Short, st.Malformed, st.NonClient, st.RateLimited, st.WriteErrors)
	if st.Replied > 0 {
		line += fmt.Sprintf("; %.3g syscalls/reply", float64(st.RecvCalls+st.SendCalls)/float64(st.Replied))
	}
	if st.KernelRx+st.KernelRxMissing > 0 {
		line += fmt.Sprintf("; kernel rx stamps %d/%d", st.KernelRx, st.KernelRx+st.KernelRxMissing)
	}
	if st.KernelTx+st.KernelTxMissing > 0 {
		line += fmt.Sprintf("; kernel tx stamps %d/%d, tx dwell ewma %v, clamped %d",
			st.KernelTx, st.KernelTx+st.KernelTxMissing, st.TxDwellEWMA, st.StampClamped)
	}
	var restarts uint64
	var lastErr error
	for _, s := range sh.Stats() {
		restarts += s.Restarts
		if s.LastError != nil {
			lastErr = s.LastError
		}
	}
	if restarts > 0 {
		line += fmt.Sprintf("; %d shard restarts (last: %v)", restarts, lastErr)
	}
	if ml != nil {
		r := ml.Ensemble().Readout()
		line += fmt.Sprintf("; upstream: %s, %d voting, %d exchanges, %d/%d ready, %d selected, %d falsetickers, stratum %d",
			r.State(ml.Counter()), r.VotingCount, r.Exchanges, r.ReadyCount, len(r.Servers),
			r.SelectedCount, r.Falsetickers, sample().Stratum)
		connected, redials, dialFails := 0, uint64(0), uint64(0)
		for _, up := range ml.UpstreamStates() {
			if up.Connected {
				connected++
			}
			if up.Dials > 1 {
				redials += up.Dials - 1
			}
			dialFails += up.DialFailures
		}
		line += fmt.Sprintf("; conns: %d/%d up, %d redials, %d dial failures",
			connected, len(ml.UpstreamStates()), redials, dialFails)
	}
	return line
}

// Command ntpserver runs the bundled minimal stratum-1 NTP server,
// stamping requests from the OS clock. It answers standard client-mode
// NTP packets, so both this repository's synchronizer and ordinary NTP
// clients can use it.
//
// Usage:
//
//	ntpserver -listen 127.0.0.1:1123 -refid GPS
//
// (Binding the privileged default port 123 requires root.)
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"repro/internal/ntp"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:1123", "UDP address to listen on")
		refid  = flag.String("refid", "GPS", "reference identifier to advertise")
	)
	flag.Parse()

	pc, err := net.ListenPacket("udp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := ntp.NewServer(ntp.ServerConfig{
		Clock: ntp.SystemServerClock(),
		RefID: ntp.RefIDFromString(*refid),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stratum-1 NTP server (refid %s) listening on %s\n", *refid, pc.LocalAddr())
	if err := srv.Serve(pc); err != nil {
		log.Fatal(err)
	}
}

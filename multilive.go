package tscclock

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ensemble"
	"repro/internal/ntp"
)

// MultiLiveOptions configures a live multi-server synchronizer.
type MultiLiveOptions struct {
	// Servers are the upstream NTP server addresses ("host:123"). At
	// least one is required; three or more is what makes the ensemble's
	// majority vote meaningful.
	Servers []string
	// Poll is the per-server polling interval floor. Default: 64 s. The
	// aggregate request rate is Servers/Poll, so raise Poll when polling
	// many public servers.
	Poll time.Duration
	// MaxPoll bounds the per-server adaptive backoff. Default: 16×Poll
	// (capped at 1024 s).
	MaxPoll time.Duration
	// Timeout bounds each exchange. Default: 4 s.
	Timeout time.Duration
	// Clock carries the per-server calibration options, as LiveOptions
	// does for Live; NominalPeriod and PollPeriod take the same
	// defaults.
	Clock Options

	// NoKernelStamps disables kernel SO_TIMESTAMPING on the upstream
	// sockets (see LiveOptions.NoKernelStamps). Off by default: every
	// dialed UDP upstream gets kernel TX/RX stamps with per-exchange
	// userspace fallback, and the per-server deltas surface in
	// UpstreamStates and the relay metrics.
	NoKernelStamps bool

	// MinServers is the dial-time quorum: DialMultiLive succeeds when at
	// least this many servers are reachable, and the rest start in a
	// reconnecting state — re-dialed (with fresh name resolution) on
	// their polling schedule under the adaptive backoff. Default: 1, so
	// a single unreachable server never prevents the client from
	// syncing off the others.
	MinServers int
	// StrictDial restores the historical fail-closed dial: any
	// unreachable server aborts the whole dial and releases
	// already-open sockets. For deployments that prefer a hard error
	// over a quietly smaller ensemble.
	StrictDial bool

	// Ensemble trust and selection tuning; zero values take the
	// defaults (see EnsembleOptions).
	PenaltyDecay     float64
	ErrAlpha         float64
	AgreementFactor  float64
	ReadmitAfter     int
	DisableSelection bool

	// Path-asymmetry correction (see EnsembleOptions.AsymCorrection);
	// off by default.
	AsymCorrection bool
	AsymAlpha      float64
	AsymClampFrac  float64

	// Degradation-ladder tuning; zero values take the defaults (see
	// EnsembleOptions).
	MinVotingSynced int
	RecoverAfter    int
	StaleAfterPolls int
	HoldoverAfter   time.Duration
	UnsyncedAfter   time.Duration
}

// upstream is one server's connection slot. The slot owns the (re)dial
// lifecycle: a nil client means disconnected, and the next Step dials
// anew — re-resolving the name, so a server that moved comes back. The
// mutex guards the slot only; exchanges run outside it so a slow server
// never blocks another slot's reconnect.
type upstream struct {
	addr string

	mu           sync.Mutex
	conn         net.Conn
	client       *ntp.Client
	consecFails  int
	dials        uint64
	dialFailures uint64

	// Kernel-stamp view of this slot, updated outside the mutex from
	// the polling goroutine via the client's own atomic counters and
	// folded into UpstreamStates under mu. kernelTa/kernelTf/stampMiss
	// aggregate across redials (the client's counters reset with each
	// fresh socket).
	kernelTa  uint64
	kernelTf  uint64
	stampMiss uint64
	taDelta   float64 // EWMA of the kernel-vs-userspace Ta delta (s)
	tfDelta   float64 // EWMA of the kernel-vs-userspace Tf delta (s)
}

// noteStamps folds one successful exchange's kernel-stamp outcome into
// the slot's aggregate view (alpha-1/8 EWMAs, seeded on first sample).
func (up *upstream) noteStamps(raw ntp.RawExchange) {
	up.mu.Lock()
	defer up.mu.Unlock()
	if raw.KernelTa {
		up.kernelTa++
		if up.taDelta == 0 {
			up.taDelta = raw.TaDelta
		} else {
			up.taDelta += (raw.TaDelta - up.taDelta) / 8
		}
	} else {
		up.stampMiss++
	}
	if raw.KernelTf {
		up.kernelTf++
		if up.tfDelta == 0 {
			up.tfDelta = raw.TfDelta
		} else {
			up.tfDelta += (raw.TfDelta - up.tfDelta) / 8
		}
	} else {
		up.stampMiss++
	}
}

// redialAfterFailures is how many consecutive exchange failures on a
// live socket force a fresh dial: the socket may be fine while the
// route or the resolved address is not, and re-resolution is the only
// way back from a server migration.
const redialAfterFailures = 8

// MultiLive is the multi-server counterpart of Live: the full pipeline
// against several NTP servers over UDP, one engine per server sharing a
// single host counter, combined by the ensemble's weighted-median
// agreement. Per-server polling schedules are staggered so exchanges
// interleave instead of bursting, and each server backs off
// independently with its own adaptive Poller. Unreachable servers —
// at dial time or later — do not fail the client: their slots keep
// re-dialing under the poller's capped exponential backoff while the
// ensemble's degradation ladder reports how much of the vote remains.
type MultiLive struct {
	ens     *Ensemble
	ups     []*upstream
	pollers []*Poller
	counter ntp.Counter
	period  float64 // the counter's nominal period (s/cycle)
	poll    time.Duration
	timeout time.Duration
	dial    func(string) (net.Conn, error)
	kstamps bool // arm kernel stamps on dialed upstream sockets
	closed  atomic.Bool
}

// DialMultiLive connects to every server and prepares the synchronizer.
// Call Step for single exchanges or Run for the staggered polling
// loops. Unreachable servers are tolerated as long as MinServers
// (default 1) can be reached — they start reconnecting in the
// background; set StrictDial to fail closed instead.
func DialMultiLive(opts MultiLiveOptions) (*MultiLive, error) {
	return dialMultiLive(opts, func(addr string) (net.Conn, error) {
		return net.Dial("udp", addr)
	})
}

// dialMultiLive is DialMultiLive with an injectable dial function, so
// tests can observe socket release, reconnection and Close aggregation
// without the network.
func dialMultiLive(opts MultiLiveOptions, dial func(string) (net.Conn, error)) (*MultiLive, error) {
	if len(opts.Servers) == 0 {
		return nil, fmt.Errorf("tscclock: MultiLiveOptions.Servers is required")
	}
	minServers := opts.MinServers
	if minServers == 0 {
		minServers = 1
	}
	if minServers < 0 || minServers > len(opts.Servers) {
		return nil, fmt.Errorf("tscclock: MinServers %d outside [1,%d]", minServers, len(opts.Servers))
	}
	poll := opts.Poll
	if poll <= 0 {
		poll = 64 * time.Second
	}
	maxPoll := opts.MaxPoll
	if maxPoll <= 0 {
		maxPoll = 16 * poll
		if maxPoll > 1024*time.Second {
			maxPoll = 1024 * time.Second
		}
	}
	counter, period := ntp.MonotonicCounter()
	clockOpts := opts.Clock
	if clockOpts.NominalPeriod == 0 {
		clockOpts.NominalPeriod = period
	}
	if clockOpts.PollPeriod == 0 {
		clockOpts.PollPeriod = poll.Seconds()
	}
	ens, err := NewEnsemble(EnsembleOptions{
		Servers:          len(opts.Servers),
		Clock:            clockOpts,
		PenaltyDecay:     opts.PenaltyDecay,
		ErrAlpha:         opts.ErrAlpha,
		AgreementFactor:  opts.AgreementFactor,
		ReadmitAfter:     opts.ReadmitAfter,
		DisableSelection: opts.DisableSelection,
		AsymCorrection:   opts.AsymCorrection,
		AsymAlpha:        opts.AsymAlpha,
		AsymClampFrac:    opts.AsymClampFrac,
		MinVotingSynced:  opts.MinVotingSynced,
		RecoverAfter:     opts.RecoverAfter,
		StaleAfterPolls:  opts.StaleAfterPolls,
		HoldoverAfter:    opts.HoldoverAfter,
		UnsyncedAfter:    opts.UnsyncedAfter,
	})
	if err != nil {
		return nil, err
	}
	m := &MultiLive{
		ens:     ens,
		counter: counter,
		period:  clockOpts.NominalPeriod,
		poll:    poll,
		timeout: opts.Timeout,
		dial:    dial,
		kstamps: !opts.NoKernelStamps,
	}
	connected := 0
	var firstErr error
	for _, addr := range opts.Servers {
		up := &upstream{addr: addr}
		conn, err := dial(addr)
		switch {
		case err == nil:
			up.conn = conn
			up.client = ntp.NewClient(conn, counter, opts.Timeout)
			if m.kstamps {
				up.client.EnableKernelStamps(m.period)
			}
			up.dials++
			connected++
		default:
			up.dialFailures++
			if firstErr == nil {
				firstErr = fmt.Errorf("tscclock: dial %s: %w", addr, err)
			}
		}
		m.ups = append(m.ups, up)
		m.pollers = append(m.pollers, NewPoller(poll, maxPoll))
		if err != nil && opts.StrictDial {
			m.Close()
			return nil, firstErr
		}
	}
	if connected < minServers {
		m.Close()
		return nil, fmt.Errorf("tscclock: %d of %d servers reachable, need %d: %w",
			connected, len(opts.Servers), minServers, firstErr)
	}
	return m, nil
}

// Ensemble returns the underlying combined clock.
func (m *MultiLive) Ensemble() *Ensemble { return m.ens }

// Counter reads the shared raw host counter.
func (m *MultiLive) Counter() uint64 { return m.counter() }

// ensureClient returns server k's client, dialing (and thereby
// re-resolving) on demand when the slot is disconnected.
func (m *MultiLive) ensureClient(up *upstream) (*ntp.Client, error) {
	up.mu.Lock()
	defer up.mu.Unlock()
	if up.client != nil {
		return up.client, nil
	}
	if m.closed.Load() {
		return nil, net.ErrClosed
	}
	conn, err := m.dial(up.addr)
	if err != nil {
		up.dialFailures++
		return nil, fmt.Errorf("tscclock: dial %s: %w", up.addr, err)
	}
	if m.closed.Load() {
		conn.Close()
		return nil, net.ErrClosed
	}
	up.conn = conn
	up.client = ntp.NewClient(conn, m.counter, m.timeout)
	if m.kstamps {
		up.client.EnableKernelStamps(m.period)
	}
	up.dials++
	up.consecFails = 0
	return up.client, nil
}

// observeExchange tracks consecutive failures per slot and tears the
// socket down after redialAfterFailures of them, so the next Step dials
// fresh.
func (m *MultiLive) observeExchange(up *upstream, err error) {
	up.mu.Lock()
	defer up.mu.Unlock()
	if err == nil {
		up.consecFails = 0
		return
	}
	up.consecFails++
	if up.consecFails >= redialAfterFailures && up.conn != nil && !m.closed.Load() {
		up.conn.Close()
		up.conn, up.client = nil, nil
		up.consecFails = 0
	}
}

// Step performs one NTP exchange with server k and feeds it to the
// ensemble, including the server's identity. A failed exchange — or a
// failed re-dial of a disconnected slot — returns an error and feeds
// nothing: the engine coasts, and the degradation ladder accounts for
// the missing vote.
func (m *MultiLive) Step(k int) (EnsembleStatus, error) {
	if k < 0 || k >= len(m.ups) {
		return EnsembleStatus{}, fmt.Errorf("tscclock: server %d out of range [0,%d)", k, len(m.ups))
	}
	client, err := m.ensureClient(m.ups[k])
	if err != nil {
		return EnsembleStatus{}, err
	}
	raw, err := client.Exchange()
	m.observeExchange(m.ups[k], err)
	if err != nil {
		return EnsembleStatus{}, err
	}
	if m.kstamps {
		m.ups[k].noteStamps(raw)
	}
	return m.ens.ProcessNTPExchangeFrom(k, raw.Ta, raw.Tf, raw.Tb, raw.Te, raw.RefID, raw.Stratum)
}

// UpstreamState is the connection view of one server slot.
type UpstreamState struct {
	// Addr is the configured server address.
	Addr string
	// Connected reports whether the slot currently holds a socket; a
	// disconnected slot re-dials on its next scheduled poll.
	Connected bool
	// Dials counts successful dials (> 1 means reconnections) and
	// DialFailures failed attempts.
	Dials        uint64
	DialFailures uint64
	// ConsecutiveFailures counts exchange failures since the last
	// success on the current socket; at redialAfterFailures the socket
	// is torn down for a fresh dial.
	ConsecutiveFailures int

	// KernelTa and KernelTf count exchanges whose client send/receive
	// stamps came from kernel SO_TIMESTAMPING (aggregated across
	// redials); StampMisses counts per-stamp fallbacks to userspace
	// readings. TaDelta and TfDelta are EWMAs of the measured
	// kernel-vs-userspace stamp deltas in seconds — the client-side
	// stamping noise shed by kernel timestamps, per server.
	KernelTa    uint64
	KernelTf    uint64
	StampMisses uint64
	TaDelta     float64
	TfDelta     float64
}

// UpstreamStates returns the connection view of every server slot, in
// server order.
func (m *MultiLive) UpstreamStates() []UpstreamState {
	out := make([]UpstreamState, len(m.ups))
	for k, up := range m.ups {
		up.mu.Lock()
		out[k] = UpstreamState{
			Addr:                up.addr,
			Connected:           up.client != nil,
			Dials:               up.dials,
			DialFailures:        up.dialFailures,
			ConsecutiveFailures: up.consecFails,
			KernelTa:            up.kernelTa,
			KernelTf:            up.kernelTf,
			StampMisses:         up.stampMiss,
			TaDelta:             up.taDelta,
			TfDelta:             up.tfDelta,
		}
		up.mu.Unlock()
	}
	return out
}

// Run polls every server until the context is cancelled, one goroutine
// per server. Server k's first poll is delayed by k·Poll/N, staggering
// the schedules so the combined clock receives a steady interleaved
// stream rather than synchronized bursts; after that each server paces
// itself with its own adaptive Poller (fast during warmup and after
// disturbances, backed off to MaxPoll once calibrated — including
// re-dial attempts of unreachable servers, which are hard errors and
// back off immediately). onStep, when installed, is called after every
// attempt from the polling goroutines (serialize any shared state it
// touches).
func (m *MultiLive) Run(ctx context.Context, onStep func(server int, st EnsembleStatus, err error)) error {
	var wg sync.WaitGroup
	for k := range m.ups {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			stagger := time.Duration(k) * m.poll / time.Duration(len(m.ups))
			timer := time.NewTimer(stagger)
			defer timer.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-timer.C:
				}
				st, err := m.Step(k)
				if onStep != nil {
					onStep(k, st, err)
				}
				timer.Reset(m.pollers[k].Observe(st.Status, err))
			}
		}(k)
	}
	wg.Wait()
	return ctx.Err()
}

// Now reads the combined absolute clock as a wall-clock time, resolving
// the NTP era with the system clock as pivot. Lock-free, like all
// ensemble reads.
//
//repro:readpath
func (m *MultiLive) Now() time.Time {
	sec := m.ens.AbsoluteTime(m.counter())
	return ntp.Time64FromSeconds(sec).Time(time.Now())
}

// ServerSample returns an ntp.SampleClock that stamps downstream NTP
// replies from the combined ensemble clock: the stratum-2 relay
// adapter of cmd/ntpserver. Every sample is a pure function of the
// latest published combined readout, so the serving shards stamp
// concurrently with the upstream pollers without sharing a lock.
//
// Advertised health walks the ensemble's degradation ladder:
//
//   - UNSYNCED (never calibrated, every identified voting upstream on a
//     dead chain, or held over past the staleness cap):
//     LeapNotSynced/stratum 16 — clients must reject the relay;
//   - SYNCED and DEGRADED: stratum = 1 + the best voting upstream's
//     (2 when identities are unknown), root delay = the lowest voting
//     minimum path RTT, dispersion = the widest voting error scale
//     grown by the readout staleness at the standard 15 PPM rate;
//   - HOLDOVER: the same frozen health summary, with the dispersion
//     growing at the frozen p̂ drift bound if that exceeds 15 PPM — a
//     relay that lost its upstreams advertises an honestly growing
//     error bound instead of a stale confident one.
//
//repro:readpath
func (m *MultiLive) ServerSample(refID uint32) ntp.SampleClock {
	precision := ntp.PrecisionFromPeriod(m.period)
	return func() ntp.ClockSample {
		T := m.counter()
		r := m.ens.Readout()
		s := ntp.ClockSample{
			Time:      ntp.Time64FromSeconds(r.AbsoluteTime(T)),
			RefID:     refID,
			Precision: precision,
		}
		state := r.State(T)
		h := r.Health
		if state == ensemble.StateUnsynced || !r.Synced() ||
			h.AllDeadChain || h.Stratum == 0 || h.Stratum >= ntp.StratumUnsynced {
			s.Leap = ntp.LeapNotSynced
			s.Stratum = ntp.StratumUnsynced
			return s
		}
		s.Leap = ntp.LeapNone
		s.Stratum = h.Stratum
		s.RootDelay = ntp.Short32FromSeconds(h.RootDelay)
		rate := ntp.DispersionRate
		if state == ensemble.StateHoldover && h.DriftBound > rate {
			rate = h.DriftBound
		}
		s.RootDisp = ntp.Short32FromSeconds(h.ErrScale + rate*r.Age(T))
		return s
	}
}

// Ready reports whether the combined clock currently meets the serving
// bar: the degradation ladder (read at the current counter value, so
// staleness capping applies) at DEGRADED or better. This is the
// predicate behind the relay's /readyz endpoint — a relay in HOLDOVER
// or UNSYNCED keeps answering NTP with honest dispersion/leap bits, but
// a load balancer should prefer replicas that still hold a live vote.
//
//repro:readpath
func (m *MultiLive) Ready() bool {
	return m.ens.State(m.counter()) >= ensemble.StateDegraded
}

// Close releases every UDP socket and stops future re-dials.
func (m *MultiLive) Close() error {
	m.closed.Store(true)
	var first error
	for _, up := range m.ups {
		up.mu.Lock()
		if up.conn != nil {
			if err := up.conn.Close(); err != nil && first == nil {
				first = err
			}
			up.conn, up.client = nil, nil
		}
		up.mu.Unlock()
	}
	return first
}

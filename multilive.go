package tscclock

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/ntp"
)

// MultiLiveOptions configures a live multi-server synchronizer.
type MultiLiveOptions struct {
	// Servers are the upstream NTP server addresses ("host:123"). At
	// least one is required; three or more is what makes the ensemble's
	// majority vote meaningful.
	Servers []string
	// Poll is the per-server polling interval floor. Default: 64 s. The
	// aggregate request rate is Servers/Poll, so raise Poll when polling
	// many public servers.
	Poll time.Duration
	// MaxPoll bounds the per-server adaptive backoff. Default: 16×Poll
	// (capped at 1024 s).
	MaxPoll time.Duration
	// Timeout bounds each exchange. Default: 4 s.
	Timeout time.Duration
	// Clock carries the per-server calibration options, as LiveOptions
	// does for Live; NominalPeriod and PollPeriod take the same
	// defaults.
	Clock Options
	// Ensemble trust and selection tuning; zero values take the
	// defaults (see EnsembleOptions).
	PenaltyDecay     float64
	ErrAlpha         float64
	AgreementFactor  float64
	ReadmitAfter     int
	DisableSelection bool
}

// MultiLive is the multi-server counterpart of Live: the full pipeline
// against several NTP servers over UDP, one engine per server sharing a
// single host counter, combined by the ensemble's weighted-median
// agreement. Per-server polling schedules are staggered so exchanges
// interleave instead of bursting, and each server backs off
// independently with its own adaptive Poller.
type MultiLive struct {
	ens     *Ensemble
	conns   []net.Conn
	clients []*ntp.Client
	pollers []*Poller
	counter ntp.Counter
	period  float64 // the counter's nominal period (s/cycle)
	poll    time.Duration
}

// DialMultiLive connects to every server and prepares the synchronizer.
// Call Step for single exchanges or Run for the staggered polling
// loops. Dialing fails closed: if any server address is unreachable the
// whole dial fails and already-open sockets are released.
func DialMultiLive(opts MultiLiveOptions) (*MultiLive, error) {
	return dialMultiLive(opts, func(addr string) (net.Conn, error) {
		return net.Dial("udp", addr)
	})
}

// dialMultiLive is DialMultiLive with an injectable dial function, so
// tests can observe the fail-closed socket release and exercise Close
// aggregation without the network.
func dialMultiLive(opts MultiLiveOptions, dial func(string) (net.Conn, error)) (*MultiLive, error) {
	if len(opts.Servers) == 0 {
		return nil, fmt.Errorf("tscclock: MultiLiveOptions.Servers is required")
	}
	poll := opts.Poll
	if poll <= 0 {
		poll = 64 * time.Second
	}
	maxPoll := opts.MaxPoll
	if maxPoll <= 0 {
		maxPoll = 16 * poll
		if maxPoll > 1024*time.Second {
			maxPoll = 1024 * time.Second
		}
	}
	counter, period := ntp.MonotonicCounter()
	clockOpts := opts.Clock
	if clockOpts.NominalPeriod == 0 {
		clockOpts.NominalPeriod = period
	}
	if clockOpts.PollPeriod == 0 {
		clockOpts.PollPeriod = poll.Seconds()
	}
	ens, err := NewEnsemble(EnsembleOptions{
		Servers:          len(opts.Servers),
		Clock:            clockOpts,
		PenaltyDecay:     opts.PenaltyDecay,
		ErrAlpha:         opts.ErrAlpha,
		AgreementFactor:  opts.AgreementFactor,
		ReadmitAfter:     opts.ReadmitAfter,
		DisableSelection: opts.DisableSelection,
	})
	if err != nil {
		return nil, err
	}
	m := &MultiLive{
		ens:     ens,
		counter: counter,
		period:  clockOpts.NominalPeriod,
		poll:    poll,
	}
	for _, addr := range opts.Servers {
		conn, err := dial(addr)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("tscclock: dial %s: %w", addr, err)
		}
		m.conns = append(m.conns, conn)
		m.clients = append(m.clients, ntp.NewClient(conn, counter, opts.Timeout))
		m.pollers = append(m.pollers, NewPoller(poll, maxPoll))
	}
	return m, nil
}

// Ensemble returns the underlying combined clock.
func (m *MultiLive) Ensemble() *Ensemble { return m.ens }

// Counter reads the shared raw host counter.
func (m *MultiLive) Counter() uint64 { return m.counter() }

// Step performs one NTP exchange with server k and feeds it to the
// ensemble, including the server's identity. A failed exchange returns
// an error and feeds nothing — the engine coasts, as designed.
func (m *MultiLive) Step(k int) (EnsembleStatus, error) {
	if k < 0 || k >= len(m.clients) {
		return EnsembleStatus{}, fmt.Errorf("tscclock: server %d out of range [0,%d)", k, len(m.clients))
	}
	raw, err := m.clients[k].Exchange()
	if err != nil {
		return EnsembleStatus{}, err
	}
	return m.ens.ProcessNTPExchangeFrom(k, raw.Ta, raw.Tf, raw.Tb, raw.Te, raw.RefID, raw.Stratum)
}

// Run polls every server until the context is cancelled, one goroutine
// per server. Server k's first poll is delayed by k·Poll/N, staggering
// the schedules so the combined clock receives a steady interleaved
// stream rather than synchronized bursts; after that each server paces
// itself with its own adaptive Poller (fast during warmup and after
// disturbances, backed off to MaxPoll once calibrated). onStep, when
// installed, is called after every attempt from the polling goroutines
// (serialize any shared state it touches).
func (m *MultiLive) Run(ctx context.Context, onStep func(server int, st EnsembleStatus, err error)) error {
	var wg sync.WaitGroup
	for k := range m.clients {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			stagger := time.Duration(k) * m.poll / time.Duration(len(m.clients))
			timer := time.NewTimer(stagger)
			defer timer.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-timer.C:
				}
				st, err := m.Step(k)
				if onStep != nil {
					onStep(k, st, err)
				}
				timer.Reset(m.pollers[k].Observe(st.Status, err))
			}
		}(k)
	}
	wg.Wait()
	return ctx.Err()
}

// Now reads the combined absolute clock as a wall-clock time, resolving
// the NTP era with the system clock as pivot. Lock-free, like all
// ensemble reads.
func (m *MultiLive) Now() time.Time {
	sec := m.ens.AbsoluteTime(m.counter())
	return ntp.Time64FromSeconds(sec).Time(time.Now())
}

// ServerSample returns an ntp.SampleClock that stamps downstream NTP
// replies from the combined ensemble clock: the stratum-2 relay
// adapter of cmd/ntpserver. Every sample is a pure function of the
// latest published combined readout, so the serving shards stamp
// concurrently with the upstream pollers without sharing a lock.
//
// Advertised health derives from the ensemble's published state:
// LeapNotSynced/stratum 16 until the combine is calibrated (Synced);
// then stratum = 1 + the lowest stratum among the voting upstream
// servers (the selected set — or every ready server during the
// documented mass-eviction transient; identities ride in on the NTP
// payloads, and upstreams advertising stratum ≥ 15 — their own chain
// unsynchronized — cannot lower the advertised stratum: if every
// identified voting upstream is in that state, the relay re-advertises
// unsynchronized rather than masking it), root delay = the lowest
// voting minimum path RTT, and root
// dispersion = the widest voting server's error scale grown by the
// readout staleness at the standard 15 PPM rate — so a relay that has
// lost its upstreams advertises an honestly growing error bound
// instead of a stale confident one.
func (m *MultiLive) ServerSample(refID uint32) ntp.SampleClock {
	precision := ntp.PrecisionFromPeriod(m.period)
	return func() ntp.ClockSample {
		T := m.counter()
		r := m.ens.Readout()
		s := ntp.ClockSample{
			Time:      ntp.Time64FromSeconds(r.AbsoluteTime(T)),
			RefID:     refID,
			Precision: precision,
		}
		if !r.Synced() {
			s.Leap = ntp.LeapNotSynced
			s.Stratum = ntp.StratumUnsynced
			return s
		}
		minStratum := uint8(0)
		anyIdent := false
		minRTT, maxErr := 0.0, 0.0
		haveRTT := false
		for k := range r.Servers {
			sr := &r.Servers[k]
			if sr.Weight <= 0 {
				continue
			}
			c := sr.Clock
			if c.IdentKnown {
				anyIdent = true
				// Strata ≥ 15 mean the upstream's own chain is dead;
				// such a server cannot lower our advertised stratum.
				if c.Ident.Stratum > 0 && c.Ident.Stratum < ntp.StratumUnsynced-1 &&
					(minStratum == 0 || c.Ident.Stratum < minStratum) {
					minStratum = c.Ident.Stratum
				}
			}
			if !haveRTT || c.RTTHat < minRTT {
				minRTT, haveRTT = c.RTTHat, true
			}
			if sr.ErrScale > maxErr {
				maxErr = sr.ErrScale
			}
		}
		switch {
		case minStratum > 0:
			s.Stratum = minStratum + 1
		case anyIdent:
			// Every identified voting upstream advertises an
			// unsynchronized chain: propagate the condition instead of
			// masking it behind a confident stratum 2.
			s.Leap = ntp.LeapNotSynced
			s.Stratum = ntp.StratumUnsynced
			return s
		default:
			s.Stratum = 2 // identities unknown (simulated feeds)
		}
		s.Leap = ntp.LeapNone
		if haveRTT {
			s.RootDelay = ntp.Short32FromSeconds(minRTT)
		}
		s.RootDisp = ntp.Short32FromSeconds(maxErr + ntp.DispersionRate*r.Age(T))
		return s
	}
}

// Close releases every UDP socket.
func (m *MultiLive) Close() error {
	var first error
	for _, c := range m.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

# Developer entry points. Everything here is stdlib + toolchain only;
# CI (.github/workflows/ci.yml) runs the same commands.

GO ?= go

.PHONY: all build test race lint reprolint fmt bench bench-json clean

all: lint test build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint is the consolidated static gate: vet, formatting, and the
# repo's own reprolint analyzer suite (see internal/analysis — the
# //repro: directives and what each analyzer enforces).
lint: reprolint
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

reprolint:
	$(GO) run ./tools/reprolint ./...

fmt:
	gofmt -w .

bench:
	$(GO) test ./internal/core/ -run xxx -bench BenchmarkProcess -benchtime 1000x -benchmem
	$(GO) test ./internal/ensemble/ -run xxx -bench BenchmarkEnsemble -benchtime 10x -benchmem

# bench-json snapshots the serving-path benchmarks (ns/op, allocs/op,
# syscalls/reply, kernel stamp coverage) into BENCH_<date>.json via
# tools/benchjson, so perf claims are diffable data.
bench-json:
	$(GO) test ./internal/ntp/ -run xxx -bench BenchmarkServeLoopback -benchmem | $(GO) run ./tools/benchjson

clean:
	$(GO) clean ./...

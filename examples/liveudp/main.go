// Live UDP synchronization: the full pipeline end to end on a real
// socket. The program starts the bundled stratum-1 NTP server on
// loopback (stamping from the OS clock), then runs the TSC-NTP
// synchronizer against it with raw monotonic counter stamps, printing
// the state after each exchange.
//
// Point -server at a real stratum-1 server on your network to calibrate
// against it instead (keep the polling period conservative; public
// servers must not be hammered).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	tscclock "repro"
	"repro/internal/ntp"
	"repro/internal/timebase"
)

func main() {
	var (
		server = flag.String("server", "", "NTP server address (default: bundled loopback server)")
		poll   = flag.Duration("poll", time.Second, "polling interval")
		count  = flag.Int("count", 10, "number of exchanges")
	)
	flag.Parse()

	addr := *server
	if addr == "" {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer pc.Close()
		srv, err := ntp.NewServer(ntp.ServerConfig{Clock: ntp.SystemServerClock()})
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve(pc)
		addr = pc.LocalAddr().String()
		fmt.Println("started bundled stratum-1 server on", addr)
	}

	live, err := tscclock.DialLive(tscclock.LiveOptions{
		Server:  addr,
		Poll:    *poll,
		Timeout: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer live.Close()

	fmt.Printf("%-4s %-12s %-14s %-12s %s\n", "i", "RTT", "offset est", "min RTT", "clock vs OS")
	for i := 0; i < *count; i++ {
		st, err := live.Step()
		if err != nil {
			fmt.Printf("%-4d exchange failed: %v (clock coasts on calibration)\n", i, err)
		} else {
			diff := live.Now().Sub(time.Now())
			fmt.Printf("%-4d %-12s %-14s %-12s %v\n", i,
				timebase.FormatDuration(st.RTT),
				timebase.FormatDuration(st.Offset),
				timebase.FormatDuration(st.MinRTT), diff)
		}
		time.Sleep(*poll)
	}

	fmt.Printf("\nabsolute time now: %s\n", live.Now().Format(time.RFC3339Nano))
	fmt.Println("exchanges processed:", live.Clock().Exchanges())
}

// Stratum-2 relay end to end on loopback: the complete serving-layer
// data flow of cmd/ntpserver, self-contained on one machine.
//
// The program starts three bundled stratum-1 NTP servers on loopback
// (stamping from the OS clock), synchronizes a MultiLive ensemble
// against them (one calibration engine per upstream, trust-weighted
// interval-selected combining), then serves the combined clock
// downstream from sharded listeners — every shard stamping replies
// from the lock-free published readout — and finally queries its own
// relay like any NTP client would, printing the advertised stratum,
// leap and root dispersion as they change from "unsynchronized" to
// calibrated.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	tscclock "repro"
	"repro/internal/ntp"
	"repro/internal/timebase"
)

func startUpstream() (net.Addr, func(), error) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	srv, err := ntp.NewServer(ntp.ServerConfig{Clock: ntp.SystemServerClock()})
	if err != nil {
		pc.Close()
		return nil, nil, err
	}
	go srv.Serve(pc)
	return pc.LocalAddr(), func() { pc.Close() }, nil
}

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Three upstream stratum-1 servers on loopback.
	var addrs []string
	for i := 0; i < 3; i++ {
		addr, stop, err := startUpstream()
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		addrs = append(addrs, addr.String())
	}
	fmt.Println("upstream stratum-1 servers:", addrs)

	// The ensemble synchronizer polling them.
	ml, err := tscclock.DialMultiLive(tscclock.MultiLiveOptions{
		Servers: addrs,
		Poll:    100 * time.Millisecond, // loopback demo; be slower on real networks
		Timeout: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ml.Close()
	go ml.Run(ctx, nil)

	// The downstream serving layer: 4 shards on one address, stamping
	// from the ensemble's published readout.
	srv, err := ntp.NewServer(ntp.ServerConfig{
		Sample: ml.ServerSample(ntp.RefIDFromString("TSCC")),
	})
	if err != nil {
		log.Fatal(err)
	}
	sh, err := srv.ListenShards("udp", "127.0.0.1:0", 4)
	if err != nil {
		log.Fatal(err)
	}
	go sh.Serve(ctx)
	fmt.Printf("relay serving on %s (%d shards)\n\n", sh.Addr(), sh.Size())

	// Query our own relay as an ordinary NTP client while the upstream
	// calibration warms up and graduates.
	conn, err := net.Dial("udp", sh.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	fmt.Printf("%-4s %-10s %-8s %-10s %-12s %s\n", "i", "leap", "stratum", "refid", "rootdisp", "relay vs OS clock")
	for i := 0; i < 12; i++ {
		reply := query(conn)
		diff := reply.Transmit.Time(time.Now()).Sub(time.Now())
		leap := "none"
		if reply.Leap == ntp.LeapNotSynced {
			leap = "unsynced"
		}
		fmt.Printf("%-4d %-10s %-8d %-10s %-12s %v\n", i, leap, reply.Stratum,
			reply.RefIDString(), timebase.FormatDuration(reply.RootDisp.Seconds()), diff)
		time.Sleep(500 * time.Millisecond)
	}

	st := srv.Stats()
	r := ml.Ensemble().Readout()
	fmt.Printf("\nserved %d requests; upstream: %d exchanges, %d/%d selected, synced=%v\n",
		st.Replied, r.Exchanges, r.SelectedCount, len(r.Servers), r.Synced())
}

// query performs one raw client exchange and returns the reply packet.
func query(conn net.Conn) ntp.Packet {
	req := ntp.Packet{Version: 4, Mode: ntp.ModeClient, Transmit: ntp.Time64FromTime(time.Now())}
	wire := req.Marshal()
	if _, err := conn.Write(wire[:]); err != nil {
		log.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var buf [512]byte
	n, err := conn.Read(buf[:])
	if err != nil {
		log.Fatal(err)
	}
	var resp ntp.Packet
	if err := resp.Unmarshal(buf[:n]); err != nil {
		log.Fatal(err)
	}
	return resp
}

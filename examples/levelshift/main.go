// Level-shift robustness demo (the paper's Section 6.2 / Figure 11c-d):
// a route change moves the path's minimum delay mid-run. Downward shifts
// are absorbed instantly (congestion cannot fake them); upward shifts
// are indistinguishable from congestion at small scales and are detected
// only after sustained evidence over the window T_s, after which the
// filter re-bases and estimation continues.
//
// The program injects one of each, prints the detector's behaviour, and
// shows the offset error before and after, including the unavoidable
// jump by half the asymmetry change when the shift is one-directional.
package main

import (
	"fmt"
	"log"

	tscclock "repro"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timebase"
)

func main() {
	const poll = 16.0
	dur := 3 * timebase.Day
	upAt, downAt := 1*timebase.Day, 2*timebase.Day

	scenario := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), poll, dur, 5)
	// Upward: +0.9 ms in the forward direction only (asymmetry changes).
	scenario.Server.Forward.Shifts = []netem.Shift{{At: upAt, Delta: 0.9 * timebase.Millisecond}}
	// Downward: −0.3 ms in both directions (asymmetry preserved).
	scenario.Server.Forward.Shifts = append(scenario.Server.Forward.Shifts,
		netem.Shift{At: downAt, Delta: -0.3 * timebase.Millisecond})
	scenario.Server.Backward.Shifts = []netem.Shift{{At: downAt, Delta: -0.3 * timebase.Millisecond}}

	tr, err := sim.Generate(scenario)
	if err != nil {
		log.Fatal(err)
	}
	clock, err := tscclock.New(tscclock.Options{NominalPeriod: 1.0 / 548655270, PollPeriod: poll})
	if err != nil {
		log.Fatal(err)
	}

	var phase1, phase2, phase3 []float64 // offset error per epoch
	for _, e := range tr.Completed() {
		st, err := clock.ProcessNTPExchange(e.Ta, e.Tf, e.Tb, e.Te)
		if err != nil {
			log.Fatal(err)
		}
		if st.UpwardShiftDetected {
			fmt.Printf("upward shift detected at t=%s (shift injected at %s, detection window Ts=%s)\n",
				timebase.FormatDuration(e.TrueTf), timebase.FormatDuration(upAt),
				timebase.FormatDuration(2500))
		}
		// Absolute clock error against the DAG reference (positive =
		// clock reads ahead of true time).
		errNow := clock.AbsoluteTime(e.Tf) - e.Tg
		switch {
		case e.TrueTf > 6*timebase.Hour && e.TrueTf < upAt:
			phase1 = append(phase1, errNow)
		case e.TrueTf > upAt+3*timebase.Hour && e.TrueTf < downAt:
			phase2 = append(phase2, errNow)
		case e.TrueTf > downAt+3*timebase.Hour:
			phase3 = append(phase3, errNow)
		}
	}

	fmt.Printf("\nfinal min-RTT estimate: %s (true: %s)\n",
		timebase.FormatDuration(clock.MinRTT()),
		timebase.FormatDuration(scenario.Server.MinRTT()+0.9*timebase.Millisecond-0.6*timebase.Millisecond))

	report := func(name string, errs []float64) {
		fmt.Printf("%-28s median %-10s IQR %s\n", name,
			timebase.FormatDuration(stats.Median(errs)),
			timebase.FormatDuration(stats.IQR(errs)))
	}
	report("before shifts:", phase1)
	report("after upward (+0.9ms fwd):", phase2)
	report("after symmetric downward:", phase3)

	fmt.Println("\nthe one-way upward shift moves the median by ≈ Δshift/2 = 450µs — the")
	fmt.Println("fundamental asymmetry ambiguity, not an estimation failure; the")
	fmt.Println("symmetric downward shift leaves accuracy untouched and needs no action")
}

// One-way delay measurement: the motivating workload of the paper's
// introduction (network measurement with commodity PCs, RIPE-NCC-style,
// without GPS hardware).
//
// Measuring one-way delay requires an *absolute* clock: the sender
// stamps departure with its clock, the receiver stamps arrival with its
// own, and any offset error lands directly in the measured delay. The
// paper's point is that the calibrated TSC-NTP absolute clock is
// accurate enough (tens of µs) for this, whereas time *differences*
// (inter-arrivals, jitter) should use the difference clock, which is
// better still.
//
// This example calibrates a receiver clock on a simulated environment,
// then measures the one-way delays of a synthetic probe stream crossing
// a noisy path, and compares against ground truth — separating the
// delay error (absolute clock) from the jitter error (difference clock).
package main

import (
	"fmt"
	"log"

	tscclock "repro"
	"repro/internal/netem"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timebase"
)

func main() {
	// Calibrate the receiver's clock over half a day of NTP exchanges.
	scenario := sim.NewScenario(sim.MachineRoom, sim.ServerLoc(), 16, 12*timebase.Hour, 7)
	tr, err := sim.Generate(scenario)
	if err != nil {
		log.Fatal(err)
	}
	clock, err := tscclock.New(tscclock.Options{NominalPeriod: 1.0 / 548655270, PollPeriod: 16})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range tr.Completed() {
		if _, err := clock.ProcessNTPExchange(e.Ta, e.Tf, e.Tb, e.Te); err != nil {
			log.Fatal(err)
		}
	}

	// A probe stream crosses an independent path to this receiver. The
	// sender is ideal (GPS-stamped departures); the receiver stamps
	// arrivals with its raw counter and converts with its clock.
	path, err := netem.NewPath(netem.PathConfig{
		MinDelay:            4200 * timebase.Microsecond,
		BaseQueueMean:       60 * timebase.Microsecond,
		DiurnalAmplitude:    0.3,
		EpisodeMeanGap:      20 * timebase.Minute,
		EpisodeMeanDuration: 2 * timebase.Minute,
		EpisodeScale:        1.2 * timebase.Millisecond,
		EpisodeShape:        1.6,
	}, rng.New(99))
	if err != nil {
		log.Fatal(err)
	}

	const probes = 2000
	var delayErrs, jitterErrs []float64
	base := 11 * timebase.Hour
	var prevMeasured, prevTrue float64
	for i := 0; i < probes; i++ {
		depart := base + float64(i)*0.05 // 20 probes/s
		trueDelay := path.Delay(depart)
		arrive := depart + trueDelay

		counter := tr.Osc.ReadTSC(arrive)
		measuredArrival := clock.AbsoluteTime(counter)
		measuredDelay := measuredArrival - depart
		delayErrs = append(delayErrs, measuredDelay-trueDelay)

		// Delay variation between consecutive probes: a pure time
		// difference, measured with the difference clock.
		if i > 0 {
			prevCounter := tr.Osc.ReadTSC(prevTrue)
			dv := clock.Between(prevCounter, counter) - 0.05 // minus send spacing
			trueDV := arrive - prevTrue - 0.05
			jitterErrs = append(jitterErrs, dv-trueDV)
		}
		prevMeasured, prevTrue = measuredDelay, arrive
	}
	_ = prevMeasured

	fmt.Printf("probes: %d over %s, true min delay %s\n",
		probes, timebase.FormatDuration(probes*0.05),
		timebase.FormatDuration(4200*timebase.Microsecond))
	fmt.Printf("one-way delay error (absolute clock):  median %s, IQR %s\n",
		timebase.FormatDuration(stats.Median(delayErrs)),
		timebase.FormatDuration(stats.IQR(delayErrs)))
	fmt.Printf("delay-variation error (difference clock): median %s, IQR %s\n",
		timebase.FormatDuration(stats.Median(jitterErrs)),
		timebase.FormatDuration(stats.IQR(jitterErrs)))
	fmt.Println("\nthe absolute clock puts one-way delays within tens of µs;")
	fmt.Println("the difference clock resolves jitter at sub-µs level — no GPS needed")
}

// Ensemble: calibrate a multi-server clock against three simulated
// stratum-1 servers, break one of them, and watch the ensemble outvote
// it.
//
// One host (one oscillator) polls three ServerInt-class servers on
// staggered 16 s schedules. Halfway through the day, server 2's clock
// goes wrong by 1.5 ms and stays wrong. A single-server clock pointed
// at server 2 eventually swallows the error (its sanity envelope must
// reopen, or real route changes would lock it out forever); the
// ensemble never follows, because the interval-intersection selection
// stage classifies the faulty server a falseticker — zero vote — and
// the weighted median runs over the two healthy servers that agree.
package main

import (
	"fmt"
	"log"
	"math"

	tscclock "repro"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/timebase"
)

func main() {
	const faulty = 2
	faultAt := 12 * timebase.Hour

	servers := []sim.ServerSpec{sim.ServerInt(), sim.ServerInt(), sim.ServerInt()}
	servers[faulty].Server.Faults = []netem.FaultWindow{
		{From: faultAt, To: timebase.Day + 1, Offset: 1.5 * timebase.Millisecond},
	}
	tr, err := sim.GenerateMulti(sim.NewMultiScenario(sim.MachineRoom, servers, 16, timebase.Day, 1))
	if err != nil {
		log.Fatal(err)
	}

	ens, err := tscclock.NewEnsemble(tscclock.EnsembleOptions{
		Servers: 3,
		Clock: tscclock.Options{
			NominalPeriod: 1.0 / 548655270,
			PollPeriod:    16,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("three %s-class servers; server %d faulty (+1.5 ms) from %s\n\n",
		servers[0].Name, faulty, timebase.FormatDuration(faultAt))
	fmt.Printf("%-8s %-12s %-22s %-10s %s\n", "elapsed", "ens err", "weights", "agreement", "falsetickers")

	next := timebase.Hour
	var lastErr float64
	for _, e := range tr.Completed() {
		st, err := ens.ProcessNTPExchange(e.Server, e.Ta, e.Tf, e.Tb, e.Te)
		if err != nil {
			log.Fatal(err)
		}
		lastErr = ens.AbsoluteTime(e.Tf) - e.Tg
		if e.TrueTf >= next {
			ws := ens.Weights()
			fmt.Printf("%-8s %-12s [%.2f %.2f %.2f]       %d/3        %d\n",
				timebase.FormatDuration(e.TrueTf), timebase.FormatDuration(lastErr),
				ws[0], ws[1], ws[2], st.Agreement, st.Falsetickers)
			next *= 2
		}
	}

	fmt.Printf("\nfinal combined clock error: %s (the faulty server is %s off)\n",
		timebase.FormatDuration(lastErr), timebase.FormatDuration(1.5*timebase.Millisecond))
	if math.Abs(lastErr) > 200*timebase.Microsecond {
		log.Fatal("ensemble failed to contain the faulty server")
	}
	fmt.Println("outvoted: the combined clock never followed the faulty majority-of-one")
}

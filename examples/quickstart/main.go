// Quickstart: calibrate a TSC-NTP clock on a simulated host-server
// environment and watch rate and offset converge.
//
// The setup is the paper's "MR-Int" workhorse: a machine-room host
// polling an organization-internal stratum-1 server every 16 s. The
// program feeds one day of NTP exchanges to the public tscclock API and
// prints the synchronization state as it evolves, then reads both clocks
// (difference and absolute) and compares them against the simulation's
// ground truth.
package main

import (
	"fmt"
	"log"
	"math"

	tscclock "repro"
	"repro/internal/sim"
	"repro/internal/timebase"
)

func main() {
	// One day of simulated exchanges: machine room, ServerInt, 16 s.
	scenario := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, timebase.Day, 1)
	tr, err := sim.Generate(scenario)
	if err != nil {
		log.Fatal(err)
	}

	clock, err := tscclock.New(tscclock.Options{
		NominalPeriod: 1.0 / 548655270, // the CPU's advertised frequency
		PollPeriod:    16,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("calibrating against", scenario.Server.Name,
		"(min RTT", timebase.FormatDuration(scenario.Server.MinRTT()), ")")
	fmt.Printf("%-8s %-12s %-12s %-12s %-10s\n",
		"elapsed", "rate err", "offset est", "min RTT", "state")

	next := 60.0
	var last tscclock.Status
	for _, e := range tr.Completed() {
		st, err := clock.ProcessNTPExchange(e.Ta, e.Tf, e.Tb, e.Te)
		if err != nil {
			log.Fatal(err)
		}
		last = st
		if e.TrueTf >= next {
			state := "tracking"
			if st.Warmup {
				state = "warmup"
			}
			rateErr := timebase.PPM(st.Period/tr.Osc.MeanPeriod() - 1)
			fmt.Printf("%-8s %+9.4fppm %-12s %-12s %-10s\n",
				timebase.FormatDuration(e.TrueTf), rateErr,
				timebase.FormatDuration(st.Offset),
				timebase.FormatDuration(st.MinRTT), state)
			next *= 4
		}
	}
	_ = last

	// Read the clocks and compare with ground truth.
	t1, t2 := 23*timebase.Hour, 23*timebase.Hour+120
	c1, c2 := tr.Osc.ReadTSC(t1), tr.Osc.ReadTSC(t2)

	span := clock.Between(c1, c2)
	fmt.Printf("\ndifference clock: 120 s interval measured as %.9f s (error %s)\n",
		span, timebase.FormatDuration(span-(t2-t1)))

	abs := clock.AbsoluteTime(c2)
	fmt.Printf("absolute clock:   true time %.6f read as %.6f (error %s)\n",
		t2, abs, timebase.FormatDuration(abs-t2))

	if math.Abs(abs-t2) > timebase.Millisecond {
		log.Fatal("absolute clock failed to converge")
	}
	fmt.Println("\nsynchronized: rate to ~0.02 PPM, offset to tens of µs, using NTP only")
}

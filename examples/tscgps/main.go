// TSC-GPS: the paper's conclusion proposes that GPS-equipped measurement
// boxes (like RIPE NCC's test-traffic network) replace their SW-GPS
// disciplined clocks with a TSC-GPS clock — the same counter-based clock
// calibrated from the local pulse-per-second reference with the same
// robust filtering principles as the TSC-NTP clock.
//
// This example calibrates both clocks on the same simulated host — one
// from the GPS PPS, one from NTP exchanges — and compares their absolute
// accuracy, showing the ~30x gap between local-reference (sub-µs..µs)
// and network (tens of µs) synchronization that the paper quantifies.
package main

import (
	"fmt"
	"log"
	"math"

	tscclock "repro"
	"repro/internal/netem"
	"repro/internal/pps"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timebase"
)

func main() {
	// One simulated host in the machine room. The NTP path uses the
	// organization-internal server; the PPS path uses a roof-mounted GPS
	// receiver with 100 ns pulse jitter, captured through the same
	// interrupt-latency process as NTP receive stamps.
	scenario := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, 2*timebase.Hour, 11)
	tr, err := sim.Generate(scenario)
	if err != nil {
		log.Fatal(err)
	}

	// TSC-NTP clock.
	ntpClock, err := tscclock.New(tscclock.Options{
		NominalPeriod: 1 / scenario.Oscillator.NominalHz,
		PollPeriod:    16,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range tr.Completed() {
		if _, err := ntpClock.ProcessNTPExchange(e.Ta, e.Tf, e.Tb, e.Te); err != nil {
			log.Fatal(err)
		}
	}

	// TSC-GPS clock on the same oscillator.
	gpsSrc, err := pps.NewSource(tr.Osc, netem.DefaultHostStamp(), 100*timebase.Nanosecond, 12)
	if err != nil {
		log.Fatal(err)
	}
	gpsClock, err := pps.NewSync(pps.DefaultConfig(1 / scenario.Oscillator.NominalHz))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < int(2*timebase.Hour)-5; i++ {
		c, sec := gpsSrc.Pulse()
		if _, err := gpsClock.ProcessPulse(c, sec); err != nil {
			log.Fatal(err)
		}
	}

	// Compare absolute accuracy over the last stretch of the run.
	var ntpErrs, gpsErrs []float64
	for tt := 1.8 * timebase.Hour; tt < 1.99*timebase.Hour; tt += 10 {
		counter := tr.Osc.ReadTSC(tt)
		ntpErrs = append(ntpErrs, math.Abs(ntpClock.AbsoluteTime(counter)-tt))
		gpsErrs = append(gpsErrs, math.Abs(gpsClock.AbsoluteTime(counter)-tt))
	}

	fmt.Println("absolute clock error over the final 12 minutes (same host, same oscillator):")
	fmt.Printf("  TSC-NTP (ServerInt, 0.89ms RTT): median %s, worst %s\n",
		timebase.FormatDuration(stats.Median(ntpErrs)),
		timebase.FormatDuration(stats.Percentile(ntpErrs, 100)))
	fmt.Printf("  TSC-GPS (local PPS reference):   median %s, worst %s\n",
		timebase.FormatDuration(stats.Median(gpsErrs)),
		timebase.FormatDuration(stats.Percentile(gpsErrs, 100)))
	fmt.Printf("\nratio: %.0fx — the cost of synchronizing across a network instead of\n",
		stats.Median(ntpErrs)/stats.Median(gpsErrs))
	fmt.Println("a roof antenna; the paper's argument is that tens of µs is already")
	fmt.Println("sufficient for most measurement work, at a fraction of the deployment cost")
}

package tscclock

// The serving-layer end-to-end test: the complete stratum-2 relay data
// flow of cmd/ntpserver on loopback — upstream stratum-1 servers →
// MultiLive ensemble synchronization → sharded downstream serving from
// the published readout → a real NTP client query against the shard
// listeners. CI's serving job runs this under -race: the upstream
// pollers write (publish readouts) while the shards read them
// concurrently for every reply.

import (
	"context"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/ensemble"
	"repro/internal/ntp"
	"repro/internal/ratelimit"
)

// queryRelay performs one raw client-mode exchange against addr.
func queryRelay(t *testing.T, addr net.Addr) ntp.Packet {
	t.Helper()
	conn, err := net.Dial("udp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := ntp.Packet{Version: 4, Mode: ntp.ModeClient, Transmit: ntp.Time64FromTime(time.Now())}
	wire := req.Marshal()
	if _, err := conn.Write(wire[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var buf [512]byte
	n, err := conn.Read(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	var resp ntp.Packet
	if err := resp.Unmarshal(buf[:n]); err != nil {
		t.Fatal(err)
	}
	return resp
}

// startServerAtStratum runs a loopback NTP server advertising the
// given stratum (e.g. 16: a server whose own chain is unsynchronized
// but which still answers with plausible stamps).
func startServerAtStratum(t *testing.T, stratum uint8) net.Addr {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ntp.NewServer(ntp.ServerConfig{Clock: ntp.SystemServerClock(), Stratum: stratum})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(pc)
	t.Cleanup(func() { pc.Close() })
	return pc.LocalAddr()
}

// TestRelayPropagatesUnsyncedUpstream: upstreams that answer with
// plausible stamps but advertise stratum 16 (their own chain is dead)
// must not be re-served as a confident stratum 2 — the relay has to
// propagate the unsynchronized condition, for both the single-clock
// and the ensemble adapters.
func TestRelayPropagatesUnsyncedUpstream(t *testing.T) {
	deadA := startServerAtStratum(t, ntp.StratumUnsynced)
	deadB := startServerAtStratum(t, ntp.StratumUnsynced)

	l, err := DialLive(LiveOptions{Server: deadA.String(), Poll: 20 * time.Millisecond, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 40; i++ { // well past the 32-sample warmup
		if _, err := l.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if s := l.ServerSample(ntp.RefIDFromString("TSCC"))(); s.Leap != ntp.LeapNotSynced || s.Stratum != ntp.StratumUnsynced {
		t.Errorf("Live behind a stratum-16 upstream advertises leap=%d stratum=%d, want unsynced", s.Leap, s.Stratum)
	}

	m, err := DialMultiLive(MultiLiveOptions{
		Servers: []string{deadA.String(), deadB.String()},
		Poll:    20 * time.Millisecond,
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 40; i++ {
		for k := 0; k < 2; k++ {
			if _, err := m.Step(k); err != nil {
				t.Fatalf("server %d step %d: %v", k, i, err)
			}
		}
	}
	if !m.Ensemble().Readout().Synced() {
		t.Fatal("ensemble did not calibrate (test harness lost its teeth)")
	}
	if s := m.ServerSample(ntp.RefIDFromString("TSCC"))(); s.Leap != ntp.LeapNotSynced || s.Stratum != ntp.StratumUnsynced {
		t.Errorf("relay behind stratum-16 upstreams advertises leap=%d stratum=%d, want unsynced", s.Leap, s.Stratum)
	}
}

// fetch performs one GET against the observability mux under test and
// returns the status code and body.
func fetch(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// parseExposition is a minimal Prometheus text-format validator: every
// line is a comment or `name[{labels}] value`, HELP/TYPE precede their
// family's samples, and the named series are present. It returns the
// sample lines keyed by series name (labels stripped).
func parseExposition(t *testing.T, body string) map[string]bool {
	t.Helper()
	seen := map[string]bool{}
	typed := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: blank line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# ") {
			f := strings.Fields(line)
			if len(f) < 3 || (f[1] != "HELP" && f[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if f[1] == "TYPE" {
				typed[f[2]] = true
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		series, value := line[:sp], line[sp+1:]
		if value == "" {
			t.Fatalf("line %d: empty value in %q", ln+1, line)
		}
		name := series
		if br := strings.IndexByte(series, '{'); br >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated label set in %q", ln+1, line)
			}
			name = series[:br]
		}
		if !typed[name] {
			// Histogram families type the base name while their samples
			// carry the conventional suffixes.
			base := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if s, ok := strings.CutSuffix(name, suf); ok {
					base = s
					break
				}
			}
			if !typed[base] {
				t.Fatalf("line %d: sample %q precedes its # TYPE", ln+1, name)
			}
		}
		seen[name] = true
	}
	return seen
}

// TestRelayHealthEndpoints: the observability sidecar against a live
// relay — /readyz tracks the degradation ladder (UNSYNCED not ready →
// SYNCED ready → HOLDOVER not ready once the upstreams go quiet),
// /healthz stays 200 throughout, and /metrics serves a parseable
// exposition while the shards answer NTP concurrently.
func TestRelayHealthEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second loopback relay test")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	upstreams := []string{startServer(t).String(), startServer(t).String()}
	ml, err := DialMultiLive(MultiLiveOptions{
		Servers: upstreams,
		Poll:    25 * time.Millisecond,
		Timeout: 2 * time.Second,
		// Short staleness caps so the ladder visibly decays within the
		// test: no combine for 300 ms reads as HOLDOVER.
		HoldoverAfter: 300 * time.Millisecond,
		UnsyncedAfter: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ml.Close()

	limit := ratelimit.New(ratelimit.Config{})
	srv, err := ntp.NewServer(ntp.ServerConfig{
		Sample: ml.ServerSample(ntp.RefIDFromString("TSCC")),
		Limit:  limit,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := srv.ListenShards("udp", "127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- sh.Serve(ctx) }()
	defer func() { cancel(); <-served }()

	reg := NewRelayMetrics(RelayMetricsConfig{Server: srv, Shards: sh, Multi: ml, Limit: limit})
	ts := httptest.NewServer(NewObservabilityMux(reg, ml.Ready))
	defer ts.Close()

	// Before any upstream sync: alive, not ready.
	if code, _ := fetch(t, ts, "/healthz"); code != 200 {
		t.Fatalf("/healthz before sync = %d, want 200", code)
	}
	if code, _ := fetch(t, ts, "/readyz"); code != 503 {
		t.Fatalf("/readyz before sync = %d, want 503 (ladder UNSYNCED)", code)
	}

	// Sync the ensemble; readiness must flip on.
	pollDone := make(chan struct{})
	pollCtx, stopPolling := context.WithCancel(ctx)
	go func() { defer close(pollDone); ml.Run(pollCtx, nil) }()
	deadline := time.Now().Add(30 * time.Second)
	for !ml.Ready() {
		if time.Now().After(deadline) {
			t.Fatalf("relay never became ready: state %v", ml.Ensemble().State(ml.Counter()))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code, body := fetch(t, ts, "/readyz"); code != 200 {
		t.Fatalf("/readyz after sync = %d (%q), want 200", code, body)
	}

	// A live NTP query through the shards, then a scrape: the metrics
	// must parse and reflect the traffic just served.
	queryRelay(t, sh.Addr())
	code, body := fetch(t, ts, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	seen := parseExposition(t, body)
	for _, want := range []string{
		"ntp_requests_total", "ntp_replies_total", "ntp_dropped_total",
		"ntp_rate_limited_total", "ntp_shards",
		"ratelimit_tracked_prefixes",
		"tscclock_ladder_state", "tscclock_ready", "tscclock_exchanges_total",
		"tscclock_server_weight", "tscclock_server_asym_correction_seconds",
		"tscclock_upstream_connected",
	} {
		if !seen[want] {
			t.Errorf("/metrics missing series %s", want)
		}
	}
	if !strings.Contains(body, "tscclock_ready 1\n") {
		t.Errorf("scrape while ready lacks tscclock_ready 1:\n%s", body)
	}

	// Silence the upstream pollers: past HoldoverAfter the published
	// readout reads as HOLDOVER and readiness must flip off — while
	// liveness stays up (the relay still answers, with honest bits).
	stopPolling()
	<-pollDone
	notReadyBy := time.Now().Add(5 * time.Second)
	for {
		if code, _ := fetch(t, ts, "/readyz"); code == 503 {
			break
		}
		if time.Now().After(notReadyBy) {
			t.Fatalf("/readyz still ready %v after polling stopped (state %v)",
				5*time.Second, ml.Ensemble().State(ml.Counter()))
		}
		time.Sleep(25 * time.Millisecond)
	}
	if st := ml.Ensemble().State(ml.Counter()); st != ensemble.StateHoldover {
		t.Errorf("ladder state after quiet period = %v, want %v", st, ensemble.StateHoldover)
	}
	if code, _ := fetch(t, ts, "/healthz"); code != 200 {
		t.Errorf("/healthz during holdover != 200")
	}
	if !strings.Contains(fetchBody(t, ts, "/metrics"), "tscclock_ready 0\n") {
		t.Errorf("scrape during holdover lacks tscclock_ready 0")
	}
}

func fetchBody(t *testing.T, ts *httptest.Server, path string) string {
	t.Helper()
	_, body := fetch(t, ts, path)
	return body
}

func TestRelayEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second loopback relay test")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Two upstream stratum-1 servers (the issue's minimum for a
	// meaningful combine; three makes the majority vote stronger).
	upstreams := []string{startServer(t).String(), startServer(t).String()}

	ml, err := DialMultiLive(MultiLiveOptions{
		Servers: upstreams,
		Poll:    25 * time.Millisecond, // loopback: graduate warmup fast
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ml.Close()

	// Downstream serving: 4 shards stamping from the published readout.
	srv, err := ntp.NewServer(ntp.ServerConfig{
		Sample: ml.ServerSample(ntp.RefIDFromString("TSCC")),
	})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := srv.ListenShards("udp", "127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- sh.Serve(ctx) }()

	// Before any upstream sync the relay must answer — NTP stays up —
	// but advertise itself unsynchronized so clients reject it.
	pre := queryRelay(t, sh.Addr())
	if pre.Leap != ntp.LeapNotSynced || pre.Stratum != ntp.StratumUnsynced {
		t.Errorf("unsynced relay advertised leap=%d stratum=%d, want %d/%d",
			pre.Leap, pre.Stratum, ntp.LeapNotSynced, ntp.StratumUnsynced)
	}

	// Start the upstream pollers and wait for the combine to calibrate.
	go ml.Run(ctx, nil)
	deadline := time.Now().Add(30 * time.Second)
	for !ml.Ensemble().Readout().Synced() {
		if time.Now().After(deadline) {
			r := ml.Ensemble().Readout()
			t.Fatalf("ensemble never synced: %d exchanges, %d ready", r.Exchanges, r.ReadyCount)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A real NTP query against the shard listeners: stratum and leap
	// must now derive from ensemble health (upstreams are stratum 1 →
	// the relay serves stratum 2), and the transmitted time must track
	// the OS clock the upstreams stamp from.
	resp := queryRelay(t, sh.Addr())
	if resp.Leap != ntp.LeapNone {
		t.Errorf("synced relay leap = %d, want %d", resp.Leap, ntp.LeapNone)
	}
	if resp.Stratum != 2 {
		t.Errorf("synced relay stratum = %d, want 2", resp.Stratum)
	}
	if resp.RefID != ntp.RefIDFromString("TSCC") {
		t.Errorf("refid = %x", resp.RefID)
	}
	if d := resp.Transmit.Time(time.Now()).Sub(time.Now()); d > 50*time.Millisecond || d < -50*time.Millisecond {
		t.Errorf("relay time differs from OS clock by %v", d)
	}
	if disp := resp.RootDisp.Seconds(); disp <= 0 || disp > 0.1 {
		t.Errorf("root dispersion %v implausible for a loopback relay", disp)
	}

	// Also sync a full client clock against our own relay: the relay
	// round-trips the whole pipeline (counter stamps → calibration →
	// serving), so a downstream Live must calibrate against it too.
	dl, err := DialLive(LiveOptions{Server: sh.Addr().String(), Poll: 25 * time.Millisecond, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer dl.Close()
	for i := 0; i < 5; i++ {
		if _, err := dl.Step(); err != nil {
			t.Fatalf("downstream step %d: %v", i, err)
		}
	}
	if d := dl.Now().Sub(time.Now()); d > 100*time.Millisecond || d < -100*time.Millisecond {
		t.Errorf("downstream client differs from OS clock by %v", d)
	}

	// Graceful shutdown: cancel drains the shards cleanly.
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve after cancel = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("shards did not drain after cancellation")
	}
	st := srv.Stats()
	if st.Replied < 7 { // 2 raw queries + 5 client steps
		t.Errorf("Replied = %d, want ≥ 7", st.Replied)
	}
}

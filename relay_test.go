package tscclock

// The serving-layer end-to-end test: the complete stratum-2 relay data
// flow of cmd/ntpserver on loopback — upstream stratum-1 servers →
// MultiLive ensemble synchronization → sharded downstream serving from
// the published readout → a real NTP client query against the shard
// listeners. CI's serving job runs this under -race: the upstream
// pollers write (publish readouts) while the shards read them
// concurrently for every reply.

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/ntp"
)

// queryRelay performs one raw client-mode exchange against addr.
func queryRelay(t *testing.T, addr net.Addr) ntp.Packet {
	t.Helper()
	conn, err := net.Dial("udp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := ntp.Packet{Version: 4, Mode: ntp.ModeClient, Transmit: ntp.Time64FromTime(time.Now())}
	wire := req.Marshal()
	if _, err := conn.Write(wire[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var buf [512]byte
	n, err := conn.Read(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	var resp ntp.Packet
	if err := resp.Unmarshal(buf[:n]); err != nil {
		t.Fatal(err)
	}
	return resp
}

// startServerAtStratum runs a loopback NTP server advertising the
// given stratum (e.g. 16: a server whose own chain is unsynchronized
// but which still answers with plausible stamps).
func startServerAtStratum(t *testing.T, stratum uint8) net.Addr {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ntp.NewServer(ntp.ServerConfig{Clock: ntp.SystemServerClock(), Stratum: stratum})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(pc)
	t.Cleanup(func() { pc.Close() })
	return pc.LocalAddr()
}

// TestRelayPropagatesUnsyncedUpstream: upstreams that answer with
// plausible stamps but advertise stratum 16 (their own chain is dead)
// must not be re-served as a confident stratum 2 — the relay has to
// propagate the unsynchronized condition, for both the single-clock
// and the ensemble adapters.
func TestRelayPropagatesUnsyncedUpstream(t *testing.T) {
	deadA := startServerAtStratum(t, ntp.StratumUnsynced)
	deadB := startServerAtStratum(t, ntp.StratumUnsynced)

	l, err := DialLive(LiveOptions{Server: deadA.String(), Poll: 20 * time.Millisecond, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 40; i++ { // well past the 32-sample warmup
		if _, err := l.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if s := l.ServerSample(ntp.RefIDFromString("TSCC"))(); s.Leap != ntp.LeapNotSynced || s.Stratum != ntp.StratumUnsynced {
		t.Errorf("Live behind a stratum-16 upstream advertises leap=%d stratum=%d, want unsynced", s.Leap, s.Stratum)
	}

	m, err := DialMultiLive(MultiLiveOptions{
		Servers: []string{deadA.String(), deadB.String()},
		Poll:    20 * time.Millisecond,
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 40; i++ {
		for k := 0; k < 2; k++ {
			if _, err := m.Step(k); err != nil {
				t.Fatalf("server %d step %d: %v", k, i, err)
			}
		}
	}
	if !m.Ensemble().Readout().Synced() {
		t.Fatal("ensemble did not calibrate (test harness lost its teeth)")
	}
	if s := m.ServerSample(ntp.RefIDFromString("TSCC"))(); s.Leap != ntp.LeapNotSynced || s.Stratum != ntp.StratumUnsynced {
		t.Errorf("relay behind stratum-16 upstreams advertises leap=%d stratum=%d, want unsynced", s.Leap, s.Stratum)
	}
}

func TestRelayEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second loopback relay test")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Two upstream stratum-1 servers (the issue's minimum for a
	// meaningful combine; three makes the majority vote stronger).
	upstreams := []string{startServer(t).String(), startServer(t).String()}

	ml, err := DialMultiLive(MultiLiveOptions{
		Servers: upstreams,
		Poll:    25 * time.Millisecond, // loopback: graduate warmup fast
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ml.Close()

	// Downstream serving: 4 shards stamping from the published readout.
	srv, err := ntp.NewServer(ntp.ServerConfig{
		Sample: ml.ServerSample(ntp.RefIDFromString("TSCC")),
	})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := srv.ListenShards("udp", "127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- sh.Serve(ctx) }()

	// Before any upstream sync the relay must answer — NTP stays up —
	// but advertise itself unsynchronized so clients reject it.
	pre := queryRelay(t, sh.Addr())
	if pre.Leap != ntp.LeapNotSynced || pre.Stratum != ntp.StratumUnsynced {
		t.Errorf("unsynced relay advertised leap=%d stratum=%d, want %d/%d",
			pre.Leap, pre.Stratum, ntp.LeapNotSynced, ntp.StratumUnsynced)
	}

	// Start the upstream pollers and wait for the combine to calibrate.
	go ml.Run(ctx, nil)
	deadline := time.Now().Add(30 * time.Second)
	for !ml.Ensemble().Readout().Synced() {
		if time.Now().After(deadline) {
			r := ml.Ensemble().Readout()
			t.Fatalf("ensemble never synced: %d exchanges, %d ready", r.Exchanges, r.ReadyCount)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A real NTP query against the shard listeners: stratum and leap
	// must now derive from ensemble health (upstreams are stratum 1 →
	// the relay serves stratum 2), and the transmitted time must track
	// the OS clock the upstreams stamp from.
	resp := queryRelay(t, sh.Addr())
	if resp.Leap != ntp.LeapNone {
		t.Errorf("synced relay leap = %d, want %d", resp.Leap, ntp.LeapNone)
	}
	if resp.Stratum != 2 {
		t.Errorf("synced relay stratum = %d, want 2", resp.Stratum)
	}
	if resp.RefID != ntp.RefIDFromString("TSCC") {
		t.Errorf("refid = %x", resp.RefID)
	}
	if d := resp.Transmit.Time(time.Now()).Sub(time.Now()); d > 50*time.Millisecond || d < -50*time.Millisecond {
		t.Errorf("relay time differs from OS clock by %v", d)
	}
	if disp := resp.RootDisp.Seconds(); disp <= 0 || disp > 0.1 {
		t.Errorf("root dispersion %v implausible for a loopback relay", disp)
	}

	// Also sync a full client clock against our own relay: the relay
	// round-trips the whole pipeline (counter stamps → calibration →
	// serving), so a downstream Live must calibrate against it too.
	dl, err := DialLive(LiveOptions{Server: sh.Addr().String(), Poll: 25 * time.Millisecond, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer dl.Close()
	for i := 0; i < 5; i++ {
		if _, err := dl.Step(); err != nil {
			t.Fatalf("downstream step %d: %v", i, err)
		}
	}
	if d := dl.Now().Sub(time.Now()); d > 100*time.Millisecond || d < -100*time.Millisecond {
		t.Errorf("downstream client differs from OS clock by %v", d)
	}

	// Graceful shutdown: cancel drains the shards cleanly.
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve after cancel = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("shards did not drain after cancellation")
	}
	st := srv.Stats()
	if st.Replied < 7 { // 2 raw queries + 5 client steps
		t.Errorf("Replied = %d, want ≥ 7", st.Replied)
	}
}

package tscclock

// Reader/writer stress tests for the lock-free read path, designed for
// the race detector (CI's race job runs them with -race): many
// goroutines read Clock and Ensemble while packets are processed,
// asserting that reads are monotone-consistent with the published
// readouts and never observe a torn combine.

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/ensemble"
)

// TestClockConcurrentReads: readers race the synchronization feed on a
// Clock. Every read must come from some published readout — counts
// monotone, clock parameters self-consistent — and a held readout must
// be frozen.
func TestClockConcurrentReads(t *testing.T) {
	c, err := New(Options{NominalPeriod: 2e-9, PollPeriod: 16})
	if err != nil {
		t.Fatal(err)
	}
	ins := core.SynthTrace(4000)
	var stop atomic.Bool
	var wg sync.WaitGroup

	const readers = 8
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastCount := 0
			for i := 0; !stop.Load(); i++ {
				r := c.Readout()
				// Monotone: published counts never run backwards.
				if r.Count < lastCount {
					t.Errorf("readout count went backwards: %d after %d", r.Count, lastCount)
					return
				}
				lastCount = r.Count
				// Torn-snapshot detection: reads through the public
				// methods and through the held readout must agree when
				// the readout has not been superseded — but we can only
				// assert on the held snapshot itself, which must be
				// internally consistent: AbsoluteTime decomposes into
				// the published affine clock minus the predicted offset.
				T := r.LastTf + uint64(i%1000)
				abs := r.AbsoluteTime(T)
				want := float64(T)*r.P + r.K - r.ThetaAt(T)
				if abs != want {
					t.Errorf("torn readout: AbsoluteTime %v != decomposition %v", abs, want)
					return
				}
				if r.HaveTheta && math.Abs(r.Theta) > 1 {
					t.Errorf("implausible published θ̂ %v", r.Theta)
					return
				}
				// Exercise every public read concurrently with writes.
				_ = c.AbsoluteTime(T)
				_ = c.Between(T, T+5000)
				_ = c.Period()
				_, _ = c.Offset()
				_ = c.MinRTT()
				_ = c.Exchanges()
			}
		}()
	}

	for _, in := range ins {
		if _, err := c.ProcessNTPExchange(in.Ta, in.Tf, in.Tb, in.Te); err != nil {
			t.Error(err)
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	if got := c.Exchanges(); got != len(ins) {
		t.Errorf("Exchanges = %d, want %d", got, len(ins))
	}
}

// checkCombinedReadout asserts one combined readout is not torn: the
// counts agree with the flags, the weights are normalized, and the
// combined values lie within the envelope of the per-server values
// they claim to combine.
func checkCombinedReadout(t *testing.T, r *ensemble.Readout, servers int) bool {
	t.Helper()
	if len(r.Servers) != servers {
		t.Errorf("readout has %d servers, want %d", len(r.Servers), servers)
		return false
	}
	sel, nFalse, total, sum := 0, 0, 0, 0.0
	for k := range r.Servers {
		sr := &r.Servers[k]
		if sr.Selected {
			sel++
		}
		if sr.Falseticker {
			nFalse++
		}
		total += sr.Exchanges
		sum += sr.Weight
	}
	if sel != r.SelectedCount || nFalse != r.Falsetickers {
		t.Errorf("torn combine: flags count (%d,%d) vs published (%d,%d)",
			sel, nFalse, r.SelectedCount, r.Falsetickers)
		return false
	}
	if total != r.Exchanges {
		t.Errorf("torn combine: per-server exchanges sum %d vs published %d", total, r.Exchanges)
		return false
	}
	if sum != 0 && math.Abs(sum-1) > 1e-9 {
		t.Errorf("torn combine: weights sum to %v", sum)
		return false
	}
	// The combined rate and absolute time are weighted medians: they
	// must lie within the min..max envelope of the positive-weight
	// servers' own values from this same snapshot.
	lo, hi := math.Inf(1), math.Inf(-1)
	any := false
	T := r.LastTf + 5000
	aLo, aHi := math.Inf(1), math.Inf(-1)
	for k := range r.Servers {
		sr := &r.Servers[k]
		if sr.Weight <= 0 {
			continue
		}
		any = true
		lo = math.Min(lo, sr.Clock.P)
		hi = math.Max(hi, sr.Clock.P)
		a := sr.Clock.AbsoluteTime(T)
		aLo = math.Min(aLo, a)
		aHi = math.Max(aHi, a)
	}
	if any {
		if r.Rate < lo || r.Rate > hi {
			t.Errorf("torn combine: rate %v outside its servers' envelope [%v,%v]", r.Rate, lo, hi)
			return false
		}
		if abs := r.AbsoluteTime(T); abs < aLo || abs > aHi {
			t.Errorf("torn combine: absolute time %v outside [%v,%v]", abs, aLo, aHi)
			return false
		}
	}
	return true
}

// TestEnsembleConcurrentReads: readers race the exchange feed on an
// Ensemble while one server is faulty — weights, selection and
// falseticker state churn mid-run — and no read may observe a torn
// combine.
func TestEnsembleConcurrentReads(t *testing.T) {
	const servers = 3
	e, err := NewEnsemble(EnsembleOptions{
		Servers: servers,
		Clock:   Options{NominalPeriod: 2e-9, PollPeriod: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup

	const readers = 8
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastEx := 0
			for !stop.Load() {
				r := e.Readout()
				if r.Exchanges < lastEx {
					t.Errorf("combined exchange count went backwards: %d after %d", r.Exchanges, lastEx)
					return
				}
				lastEx = r.Exchanges
				if !checkCombinedReadout(t, r, servers) {
					return
				}
				// Exercise every public read concurrently with writes.
				T := r.LastTf + 1000
				_ = e.AbsoluteTime(T)
				_ = e.Between(T, T+5000)
				_ = e.Period()
				_ = e.Weights()
				_ = e.ServerStates()
				_ = e.Exchanges()
			}
		}()
	}

	// Feed staggered exchanges; server 2 turns faulty halfway so the
	// selection state (the torn-combine hazard) churns under load.
	const p = 2e-9
	const rtt = 400e-6
	rounds := 300
	for i := 0; i < rounds; i++ {
		for k := 0; k < servers; k++ {
			now := float64(i)*16 + float64(k)*16/float64(servers) + 1
			off := 0.0
			if k == 2 && i >= rounds/2 {
				off = 5e-3
			}
			if _, err := e.ProcessNTPExchange(k,
				uint64(now/p), uint64((now+rtt)/p),
				now+rtt/2+off, now+rtt/2+20e-6+off); err != nil {
				t.Error(err)
				i = rounds
				break
			}
		}
	}
	stop.Store(true)
	wg.Wait()

	r := e.Readout()
	if r.Exchanges != servers*rounds {
		t.Errorf("Exchanges = %d, want %d", r.Exchanges, servers*rounds)
	}
	if r.Falsetickers != 1 {
		t.Errorf("Falsetickers = %d, want 1 (server 2 faulty)", r.Falsetickers)
	}
}

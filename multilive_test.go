package tscclock

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

func TestDialMultiLiveValidation(t *testing.T) {
	if _, err := DialMultiLive(MultiLiveOptions{}); err == nil {
		t.Error("missing servers accepted")
	}
	if _, err := DialMultiLive(MultiLiveOptions{
		Servers:    []string{"a:123"},
		MinServers: 2,
	}); err == nil {
		t.Error("MinServers above server count accepted")
	}
	if _, err := DialMultiLive(MultiLiveOptions{
		Servers:    []string{"a:123"},
		MinServers: -1,
	}); err == nil {
		t.Error("negative MinServers accepted")
	}
}

func TestMultiLiveStep(t *testing.T) {
	addrs := []string{startServer(t).String(), startServer(t).String(), startServer(t).String()}
	m, err := DialMultiLive(MultiLiveOptions{
		Servers: addrs,
		Poll:    50 * time.Millisecond,
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	for i := 0; i < 4; i++ {
		for k := range addrs {
			st, err := m.Step(k)
			if err != nil {
				t.Fatalf("server %d step %d: %v", k, i, err)
			}
			if st.Server != k {
				t.Errorf("status names server %d, want %d", st.Server, k)
			}
			if st.RTT <= 0 || st.RTT > 1 {
				t.Errorf("loopback RTT %v implausible", st.RTT)
			}
		}
	}
	if _, err := m.Step(99); err == nil {
		t.Error("out-of-range step accepted")
	}
	if got := m.Ensemble().Exchanges(); got != 12 {
		t.Errorf("exchanges = %d, want 12", got)
	}
	// All three upstream servers stamp from the same OS clock, so the
	// combined absolute clock must land within milliseconds immediately.
	if d := m.Now().Sub(time.Now()); d > 50*time.Millisecond || d < -50*time.Millisecond {
		t.Errorf("Now() differs from OS clock by %v", d)
	}
	if a, b := m.Counter(), m.Counter(); b < a {
		t.Error("counter not monotonic")
	}
}

func TestMultiLiveRunStaggered(t *testing.T) {
	addrs := []string{startServer(t).String(), startServer(t).String(), startServer(t).String()}
	m, err := DialMultiLive(MultiLiveOptions{
		Servers: addrs,
		Poll:    30 * time.Millisecond,
		Timeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	var mu sync.Mutex
	steps := map[int]int{}
	err = m.Run(ctx, func(k int, st EnsembleStatus, err error) {
		if err != nil {
			return
		}
		mu.Lock()
		steps[k]++
		mu.Unlock()
	})
	if err != context.DeadlineExceeded {
		t.Errorf("Run returned %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for k := range addrs {
		if steps[k] < 2 {
			t.Errorf("server %d only made %d successful steps", k, steps[k])
		}
	}
}

// TestDialMultiLiveStrictFailsClosed: StrictDial restores the
// historical contract that any unreachable server aborts the dial.
func TestDialMultiLiveStrictFailsClosed(t *testing.T) {
	good := startServer(t).String()
	if _, err := DialMultiLive(MultiLiveOptions{
		Servers:    []string{good, "bad host name without port"},
		StrictDial: true,
	}); err == nil {
		t.Error("unreachable server accepted under StrictDial")
	}
}

// TestDialMultiLiveToleratesUnreachable: by default one dead server no
// longer prevents the client from syncing off the others — its slot
// starts disconnected and keeps re-dialing.
func TestDialMultiLiveToleratesUnreachable(t *testing.T) {
	good := startServer(t).String()
	m, err := DialMultiLive(MultiLiveOptions{
		Servers: []string{good, "bad host name without port"},
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("tolerant dial failed: %v", err)
	}
	defer m.Close()
	if _, err := m.Step(0); err != nil {
		t.Fatalf("reachable server step: %v", err)
	}
	if _, err := m.Step(1); err == nil {
		t.Error("step against unresolvable address succeeded")
	}
	ups := m.UpstreamStates()
	if !ups[0].Connected || ups[0].Dials != 1 {
		t.Errorf("slot 0 = %+v, want connected after 1 dial", ups[0])
	}
	if ups[1].Connected || ups[1].DialFailures < 2 {
		t.Errorf("slot 1 = %+v, want disconnected with ≥2 dial failures", ups[1])
	}
}

// trackedConn is a no-network net.Conn stub recording Close calls and
// optionally failing them.
type trackedConn struct {
	closed   int
	closeErr error
}

func (c *trackedConn) Read([]byte) (int, error)  { return 0, errors.New("stub") }
func (c *trackedConn) Write([]byte) (int, error) { return 0, errors.New("stub") }
func (c *trackedConn) Close() error {
	c.closed++
	return c.closeErr
}
func (c *trackedConn) LocalAddr() net.Addr              { return nil }
func (c *trackedConn) RemoteAddr() net.Addr             { return nil }
func (c *trackedConn) SetDeadline(time.Time) error      { return nil }
func (c *trackedConn) SetReadDeadline(time.Time) error  { return nil }
func (c *trackedConn) SetWriteDeadline(time.Time) error { return nil }

// dialTracked returns a dial function handing out the given conns in
// order, failing on a nil entry.
func dialTracked(conns []*trackedConn) func(string) (net.Conn, error) {
	i := 0
	return func(addr string) (net.Conn, error) {
		c := conns[i]
		i++
		if c == nil {
			return nil, errors.New("dial " + addr + ": unreachable")
		}
		return c, nil
	}
}

// TestDialMultiLiveReleasesPriorConns pins the documented fail-closed
// contract under StrictDial: when a later address fails to dial, every
// already-open socket is closed before the error returns.
func TestDialMultiLiveReleasesPriorConns(t *testing.T) {
	conns := []*trackedConn{{}, {}, nil}
	m, err := dialMultiLive(MultiLiveOptions{
		Servers:    []string{"a:123", "b:123", "c:123"},
		StrictDial: true,
	}, dialTracked(conns))
	if err == nil {
		t.Fatal("failed dial accepted")
	}
	if m != nil {
		t.Fatal("failed dial returned a synchronizer")
	}
	for i, c := range conns[:2] {
		if c.closed != 1 {
			t.Errorf("prior conn %d closed %d times, want 1", i, c.closed)
		}
	}
}

// TestDialMultiLiveQuorum: MinServers gates the tolerant dial — below
// the quorum the dial fails and releases what it opened.
func TestDialMultiLiveQuorum(t *testing.T) {
	conns := []*trackedConn{{}, nil, nil}
	m, err := dialMultiLive(MultiLiveOptions{
		Servers:    []string{"a:123", "b:123", "c:123"},
		MinServers: 2,
	}, dialTracked(conns))
	if err == nil {
		t.Fatal("dial below quorum accepted")
	}
	if m != nil {
		t.Fatal("failed dial returned a synchronizer")
	}
	if conns[0].closed != 1 {
		t.Errorf("opened conn closed %d times, want 1", conns[0].closed)
	}
}

// TestMultiLiveStepRedialsDisconnected: a slot whose dial failed at
// start is re-dialed (with fresh resolution) by the next Step, and a
// slot that accumulates redialAfterFailures exchange failures tears its
// socket down for the same treatment.
func TestMultiLiveStepRedialsDisconnected(t *testing.T) {
	var mu sync.Mutex
	dials := 0
	conns := []*trackedConn{}
	dial := func(addr string) (net.Conn, error) {
		mu.Lock()
		defer mu.Unlock()
		dials++
		if dials == 1 {
			return nil, errors.New("dial " + addr + ": unreachable")
		}
		c := &trackedConn{}
		conns = append(conns, c)
		return c, nil
	}
	m, err := dialMultiLive(MultiLiveOptions{
		Servers: []string{"a:123", "b:123"},
	}, dial)
	if err != nil {
		t.Fatalf("tolerant dial failed: %v", err)
	}
	defer m.Close()
	if ups := m.UpstreamStates(); ups[0].Connected {
		t.Fatal("slot connected despite failed dial")
	}
	// The next Step re-dials; the stub conn then fails the exchange.
	if _, err := m.Step(0); err == nil {
		t.Fatal("exchange over stub conn succeeded")
	}
	ups := m.UpstreamStates()
	if !ups[0].Connected || ups[0].Dials != 1 || ups[0].DialFailures != 1 {
		t.Fatalf("slot after redial = %+v, want connected, 1 dial, 1 failure", ups[0])
	}
	// Exhaust the failure budget on the live socket: the slot must tear
	// it down and dial a fresh one on the following Step. conns[1] is
	// slot 0's socket (conns[0] went to slot 1 at dial time).
	for i := ups[0].ConsecutiveFailures; i < redialAfterFailures; i++ {
		m.Step(0)
	}
	if ups := m.UpstreamStates(); ups[0].Connected {
		t.Fatal("socket survived the consecutive-failure budget")
	}
	if conns[1].closed != 1 {
		t.Fatalf("worn-out conn closed %d times, want 1", conns[1].closed)
	}
	m.Step(0)
	ups = m.UpstreamStates()
	if !ups[0].Connected || ups[0].Dials != 2 {
		t.Fatalf("slot after second redial = %+v, want connected after 2 dials", ups[0])
	}
}

// TestMultiLiveCloseAggregates: Close closes every socket even when
// some fail, and reports the first error.
func TestMultiLiveCloseAggregates(t *testing.T) {
	errA, errB := errors.New("close A"), errors.New("close B")
	conns := []*trackedConn{{closeErr: errA}, {}, {closeErr: errB}}
	m, err := dialMultiLive(MultiLiveOptions{
		Servers: []string{"a:123", "b:123", "c:123"},
	}, dialTracked(conns))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Close(); got != errA {
		t.Errorf("Close = %v, want first error %v", got, errA)
	}
	for i, c := range conns {
		if c.closed != 1 {
			t.Errorf("conn %d closed %d times, want 1", i, c.closed)
		}
	}
}

// TestMultiLiveStepOutOfRange: both ends of the index range are
// rejected without touching any socket.
func TestMultiLiveStepOutOfRange(t *testing.T) {
	conns := []*trackedConn{{}, {}}
	m, err := dialMultiLive(MultiLiveOptions{
		Servers: []string{"a:123", "b:123"},
	}, dialTracked(conns))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Step(-1); err == nil {
		t.Error("negative server index accepted")
	}
	if _, err := m.Step(2); err == nil {
		t.Error("server index past the end accepted")
	}
}

package tscclock

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestDialMultiLiveValidation(t *testing.T) {
	if _, err := DialMultiLive(MultiLiveOptions{}); err == nil {
		t.Error("missing servers accepted")
	}
}

func TestMultiLiveStep(t *testing.T) {
	addrs := []string{startServer(t).String(), startServer(t).String(), startServer(t).String()}
	m, err := DialMultiLive(MultiLiveOptions{
		Servers: addrs,
		Poll:    50 * time.Millisecond,
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	for i := 0; i < 4; i++ {
		for k := range addrs {
			st, err := m.Step(k)
			if err != nil {
				t.Fatalf("server %d step %d: %v", k, i, err)
			}
			if st.Server != k {
				t.Errorf("status names server %d, want %d", st.Server, k)
			}
			if st.RTT <= 0 || st.RTT > 1 {
				t.Errorf("loopback RTT %v implausible", st.RTT)
			}
		}
	}
	if _, err := m.Step(99); err == nil {
		t.Error("out-of-range step accepted")
	}
	if got := m.Ensemble().Exchanges(); got != 12 {
		t.Errorf("exchanges = %d, want 12", got)
	}
	// All three upstream servers stamp from the same OS clock, so the
	// combined absolute clock must land within milliseconds immediately.
	if d := m.Now().Sub(time.Now()); d > 50*time.Millisecond || d < -50*time.Millisecond {
		t.Errorf("Now() differs from OS clock by %v", d)
	}
	if a, b := m.Counter(), m.Counter(); b < a {
		t.Error("counter not monotonic")
	}
}

func TestMultiLiveRunStaggered(t *testing.T) {
	addrs := []string{startServer(t).String(), startServer(t).String(), startServer(t).String()}
	m, err := DialMultiLive(MultiLiveOptions{
		Servers: addrs,
		Poll:    30 * time.Millisecond,
		Timeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	var mu sync.Mutex
	steps := map[int]int{}
	err = m.Run(ctx, func(k int, st EnsembleStatus, err error) {
		if err != nil {
			return
		}
		mu.Lock()
		steps[k]++
		mu.Unlock()
	})
	if err != context.DeadlineExceeded {
		t.Errorf("Run returned %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for k := range addrs {
		if steps[k] < 2 {
			t.Errorf("server %d only made %d successful steps", k, steps[k])
		}
	}
}

func TestDialMultiLiveFailsClosed(t *testing.T) {
	good := startServer(t).String()
	if _, err := DialMultiLive(MultiLiveOptions{
		Servers: []string{good, "bad host name without port"},
	}); err == nil {
		t.Error("unreachable server accepted")
	}
}

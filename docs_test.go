package tscclock

// Documentation checks, run in CI's docs job: every relative link in
// the top-level markdown files must resolve, and every package must
// carry a package doc comment so `go doc` reads as a tour.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// slugify approximates GitHub's heading-anchor slugs.
func slugify(heading string) string {
	s := strings.ToLower(strings.TrimSpace(heading))
	s = strings.ReplaceAll(s, " ", "-")
	return regexp.MustCompile(`[^a-z0-9\-_]`).ReplaceAllString(s, "")
}

// anchorsOf collects the heading anchors of a markdown file.
func anchorsOf(t *testing.T, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	anchors := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "```") {
			inFence = !inFence
			continue
		}
		if !inFence && strings.HasPrefix(line, "#") {
			anchors[slugify(strings.TrimLeft(line, "# "))] = true
		}
	}
	return anchors
}

// TestDocLinks verifies every relative link in the markdown files this
// repository maintains: linked files must exist, and anchors must match
// a heading. SNIPPETS.md and PAPERS.md are excluded — they are
// retrieved reference artifacts carrying links from their source
// repositories. External links (http/https/mailto) are deliberately
// not fetched — the check must work offline and in CI.
func TestDocLinks(t *testing.T) {
	mds := []string{"README.md", "ARCHITECTURE.md", "PERF.md", "ROADMAP.md", "CHANGES.md", "PAPER.md"}
	for _, md := range mds {
		if _, err := os.Stat(md); err != nil {
			t.Errorf("required doc %s missing: %v", md, err)
			continue
		}
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") ||
				strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, frag, hasFrag := strings.Cut(target, "#")
			if path == "" { // same-file anchor
				if hasFrag && !anchorsOf(t, md)[frag] {
					t.Errorf("%s: broken anchor link %q", md, target)
				}
				continue
			}
			if _, err := os.Stat(filepath.FromSlash(path)); err != nil {
				t.Errorf("%s: broken link %q: %v", md, target, err)
				continue
			}
			if hasFrag && strings.HasSuffix(path, ".md") && !anchorsOf(t, path)[frag] {
				t.Errorf("%s: link %q points to a missing heading", md, target)
			}
		}
	}
}

// TestPackageDocs requires a package doc comment ("// Package <name>
// ...") in every internal package, the root package, and every command
// ("// Command <name> ..."), so the godoc output tours the repository.
func TestPackageDocs(t *testing.T) {
	hasDoc := func(dir, prefix string) bool {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			if strings.HasSuffix(f, "_test.go") {
				continue
			}
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			for _, line := range strings.Split(string(data), "\n") {
				if strings.HasPrefix(line, prefix) {
					return true
				}
			}
		}
		return false
	}

	if !hasDoc(".", "// Package tscclock ") {
		t.Error("root package is missing its package doc comment")
	}
	for _, root := range []struct{ glob, kind string }{
		{"internal/*", "Package"},
		{"cmd/*", "Command"},
	} {
		dirs, err := filepath.Glob(root.glob)
		if err != nil {
			t.Fatal(err)
		}
		if len(dirs) == 0 {
			t.Fatalf("no directories match %s", root.glob)
		}
		for _, dir := range dirs {
			name := filepath.Base(dir)
			if !hasDoc(dir, "// "+root.kind+" "+name+" ") {
				t.Errorf("%s is missing a %q doc comment", dir, "// "+root.kind+" "+name)
			}
		}
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one reprolint check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis so the checks could migrate onto the
// official driver if the dependency ever becomes available; reprolint
// carries its own stdlib-only runner instead (see doc.go).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("wallclock").
	Name string
	// Doc is the one-paragraph description the CLI prints for -list.
	Doc string
	// Waiver is the waiver directive suffix honored by this analyzer
	// ("wallclock-ok"); empty means findings cannot be waived.
	Waiver string
	// Run reports this analyzer's findings for one package.
	Run func(*Pass)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Dirs is this package's directive index.
	Dirs *Directives
	// Global is the cross-package directive registry.
	Global *Registry

	diags *[]Diagnostic
}

// Reportf records a finding at pos. Waivers are applied by the runner,
// not here, so analyzers stay oblivious to suppression.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		dirs:     p.Dirs,
		waiver:   p.Analyzer.Waiver,
	})
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string

	dirs   *Directives
	waiver string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the full reprolint analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{Wallclock, HotPathAlloc, LockFreeRead, AtomicPub}
}

// Run executes the analyzers over every loaded package, applies
// waivers, and returns the surviving diagnostics sorted by position.
// A waiver with an empty reason does not suppress anything — it is
// converted into its own diagnostic instead, so every suppression in
// the tree documents why.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	reg := NewRegistry(pkgs)
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				Dirs:     pkg.Dirs,
				Global:   reg,
				diags:    &raw,
			}
			a.Run(pass)
		}
	}

	var out []Diagnostic
	for _, d := range raw {
		if d.waiver != "" && d.dirs != nil {
			if w := d.dirs.lookupWaiver(d.Pos, d.waiver); w != nil {
				w.used = true
				if w.reason == "" {
					out = append(out, Diagnostic{
						Pos:      d.Pos,
						Analyzer: d.Analyzer,
						Message:  fmt.Sprintf("//repro:%s waiver is missing a reason (waived: %s)", d.waiver, d.Message),
					})
				}
				continue
			}
		}
		out = append(out, d)
	}

	// An unused waiver is stale armor: the construct it excused is gone
	// (or never matched), and leaving it around invites cargo-culting.
	// Only kinds whose analyzer actually ran are judged — a partial run
	// (one analyzer over a fixture) says nothing about the others'
	// waivers.
	ranKinds := map[string]bool{}
	for _, a := range analyzers {
		if a.Waiver != "" {
			ranKinds[a.Waiver] = true
		}
	}
	for _, pkg := range pkgs {
		for key, w := range pkg.Dirs.waivers {
			if !w.used && ranKinds[key.kind] {
				out = append(out, Diagnostic{
					Pos:      pkg.Fset.Position(w.pos),
					Analyzer: "reprolint",
					Message:  fmt.Sprintf("unused //repro:%s waiver (nothing on this or the next line triggers it)", key.kind),
				})
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Message < out[j].Message
	})
	return out
}

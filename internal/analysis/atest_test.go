package analysis

import (
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The fixture harness is a stdlib-only analogue of
// golang.org/x/tools/go/analysis/analysistest: each directory under
// testdata/src/<name> is one package; lines carry expectations as
//
//	expr // want "regexp" "another regexp"
//
// and the test fails on any unmatched expectation or unexpected
// diagnostic. Fixtures import only the standard library, so the source
// importer resolves them offline.

// loadFixture parses and type-checks testdata/src/<name> into a
// *Package the runner accepts.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	build.Default.CgoEnabled = false
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", name)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", name, err)
	}
	return &Package{
		Dir:        dir,
		ImportPath: name,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
		Dirs:       parseDirectives(fset, files, info),
	}
}

// want is one expectation: a diagnostic on a line whose message
// matches the regexp.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// Expectations may be backquoted (the natural form for regexps) or
// double-quoted.
var wantRE = regexp.MustCompile("`([^`]*)`" + `|"((?:[^"\\]|\\.)*)"`)

// collectWants extracts // want expectations from the fixture comments.
func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Both comment forms carry expectations; the block form
				// exists for lines whose trailing position is already taken
				// by a //repro: directive (stale-waiver fixtures).
				raw := c.Text
				if strings.HasPrefix(raw, "/*") {
					raw = "// " + strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(raw, "/*"), "*/"))
				}
				text, ok := strings.CutPrefix(raw, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: malformed // want comment (no quoted regexps)", pos.Filename, pos.Line)
				}
				for _, m := range ms {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, expr, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// runFixture runs the analyzers over the fixture and checks the
// diagnostics against the // want expectations, both ways.
func runFixture(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	pkg := loadFixture(t, name)
	wants := collectWants(t, pkg)
	diags := Run([]*Package{pkg}, analyzers)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestWallclockFixture(t *testing.T)    { runFixture(t, "wallclock", Wallclock) }
func TestHotPathAllocFixture(t *testing.T) { runFixture(t, "hotpathalloc", HotPathAlloc) }
func TestLockFreeReadFixture(t *testing.T) { runFixture(t, "lockfreeread", LockFreeRead) }
func TestAtomicPubFixture(t *testing.T)    { runFixture(t, "atomicpub", AtomicPub) }

// TestWallclockIgnoresUnannotatedPackages: the same forbidden calls in
// a package without //repro:deterministic produce nothing.
func TestWallclockIgnoresUnannotatedPackages(t *testing.T) {
	runFixture(t, "notdeterministic", Wallclock)
}

// TestFixturesListAnalyzers keeps All() and the fixture set in sync: a
// new analyzer must arrive with a fixture.
func TestFixturesListAnalyzers(t *testing.T) {
	fixtures := map[string]bool{}
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		fixtures[e.Name()] = true
	}
	var missing []string
	for _, a := range All() {
		if !fixtures[a.Name] {
			missing = append(missing, a.Name)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Errorf("analyzers without a testdata/src fixture: %s", strings.Join(missing, ", "))
	}
}

package analysis

import (
	"testing"
)

// TestReprolintRepoClean runs the full analyzer suite over the whole
// module and fails on any finding: the reprolint gate, enforced by the
// ordinary test run so a bare `go test ./...` already rejects a
// wall-clock read in a deterministic package or an unwaived hot-path
// allocation — CI wiring is a second line, not the only one.
func TestReprolintRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short runs")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages — the module walk is broken", len(pkgs))
	}
	diags := Run(pkgs, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("fix the construct, or waive it with a reasoned //repro:<kind>-ok comment (see internal/analysis/doc.go)")
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Directive names. Func/type directives must be the whole comment line
// (after the optional reason for waivers); the "//repro:" prefix with
// no space mirrors the //go: directive convention, which also keeps
// directives out of rendered godoc.
const (
	dirPrefix        = "//repro:"
	DirDeterministic = "deterministic"
	DirHotpath       = "hotpath"
	DirReadpath      = "readpath"
	DirImmutable     = "immutable"
	DirBuilder       = "builder"
)

// waiverKey locates one waiver: a file line plus the waiver directive
// kind ("alloc-ok", "wallclock-ok", ...).
type waiverKey struct {
	file string
	line int
	kind string
}

// waiver is one parsed waiver comment.
type waiver struct {
	pos    token.Pos
	reason string
	used   bool
}

// Directives is the per-package directive index: which functions and
// types carry which annotations, plus every waiver comment by line.
type Directives struct {
	// Deterministic reports whether the package doc comment (of any
	// file) carries //repro:deterministic.
	Deterministic bool
	// DeterministicPos is where the package directive was written (for
	// diagnostics that reference it).
	DeterministicPos token.Pos

	// Funcs maps a declared function object to its directive set
	// (hotpath, readpath, builder).
	Funcs map[*types.Func]map[string]bool

	// Immutable holds the type names declared //repro:immutable.
	Immutable map[*types.TypeName]bool

	waivers map[waiverKey]*waiver
}

// FuncHas reports whether fn carries the directive dir.
func (d *Directives) FuncHas(fn *types.Func, dir string) bool {
	return d.Funcs[fn][dir]
}

// parseDirective splits one comment line into a directive name and its
// trailing argument text. ok is false when the line is not a directive:
// the line must begin exactly with "//repro:".
func parseDirective(text string) (name, arg string, ok bool) {
	if !strings.HasPrefix(text, dirPrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, dirPrefix)
	name, arg, _ = strings.Cut(rest, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", "", false
	}
	return name, strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(arg), ":")), true
}

// groupDirectives yields the directives contained in a comment group.
func groupDirectives(g *ast.CommentGroup) map[string]bool {
	if g == nil {
		return nil
	}
	var out map[string]bool
	for _, c := range g.List {
		if name, _, ok := parseDirective(c.Text); ok {
			if out == nil {
				out = map[string]bool{}
			}
			out[name] = true
		}
	}
	return out
}

// parseDirectives builds the directive index for one type-checked
// package.
func parseDirectives(fset *token.FileSet, files []*ast.File, info *types.Info) *Directives {
	d := &Directives{
		Funcs:     map[*types.Func]map[string]bool{},
		Immutable: map[*types.TypeName]bool{},
		waivers:   map[waiverKey]*waiver{},
	}
	for _, f := range files {
		// Package directive: in the doc comment, or in any detached
		// comment group above the package clause (a directive separated
		// from the doc by a blank line still counts).
		pkgGroups := []*ast.CommentGroup{f.Doc}
		for _, g := range f.Comments {
			if g.End() < f.Package {
				pkgGroups = append(pkgGroups, g)
			}
		}
		for _, g := range pkgGroups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				if name, _, ok := parseDirective(c.Text); ok && name == DirDeterministic {
					d.Deterministic = true
					d.DeterministicPos = c.Pos()
				}
			}
		}

		// Waivers: every "-ok" directive anywhere in the file, keyed by
		// its line so a diagnostic on the same or the following line can
		// claim it.
		for _, g := range f.Comments {
			for _, c := range g.List {
				name, arg, ok := parseDirective(c.Text)
				if !ok || !strings.HasSuffix(name, "-ok") {
					continue
				}
				pos := fset.Position(c.Pos())
				d.waivers[waiverKey{pos.Filename, pos.Line, name}] = &waiver{pos: c.Pos(), reason: arg}
			}
		}

		// Function and type directives, from declaration doc comments.
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				dirs := groupDirectives(decl.Doc)
				if len(dirs) == 0 {
					continue
				}
				if fn, ok := info.Defs[decl.Name].(*types.Func); ok {
					d.Funcs[fn] = dirs
				}
			case *ast.GenDecl:
				declDirs := groupDirectives(decl.Doc)
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					dirs := map[string]bool{}
					for k := range declDirs {
						dirs[k] = true
					}
					for k := range groupDirectives(ts.Doc) {
						dirs[k] = true
					}
					for k := range groupDirectives(ts.Comment) {
						dirs[k] = true
					}
					if dirs[DirImmutable] {
						if tn, ok := info.Defs[ts.Name].(*types.TypeName); ok {
							d.Immutable[tn] = true
						}
					}
				}
			}
		}
	}
	return d
}

// lookupWaiver finds a waiver of the given kind covering a diagnostic
// at pos: on the same line (trailing comment) or the line directly
// above (full-line comment).
func (d *Directives) lookupWaiver(pos token.Position, kind string) *waiver {
	if w, ok := d.waivers[waiverKey{pos.Filename, pos.Line, kind}]; ok {
		return w
	}
	if w, ok := d.waivers[waiverKey{pos.Filename, pos.Line - 1, kind}]; ok {
		return w
	}
	return nil
}

// Registry is the cross-package directive view built from every loaded
// package before analyzers run: the atomicpub analyzer needs to know
// that repro/internal/core.Readout is immutable while it analyzes
// repro/internal/ensemble.
type Registry struct {
	immutable map[string]bool // "pkgpath.TypeName"
}

// NewRegistry indexes the directives of a load result.
func NewRegistry(pkgs []*Package) *Registry {
	r := &Registry{immutable: map[string]bool{}}
	for _, p := range pkgs {
		for tn := range p.Dirs.Immutable {
			r.immutable[tn.Pkg().Path()+"."+tn.Name()] = true
		}
	}
	return r
}

// IsImmutable reports whether the named type carries //repro:immutable
// in any loaded package.
func (r *Registry) IsImmutable(named *types.Named) bool {
	if named == nil {
		return false
	}
	tn := named.Obj()
	if tn == nil || tn.Pkg() == nil {
		return false
	}
	return r.immutable[tn.Pkg().Path()+"."+tn.Name()]
}

// Package atomicpub is the atomicpub analyzer fixture: an immutable
// snapshot type, its sanctioned builder, and the mutation shapes the
// analyzer must catch — or leave alone.
package atomicpub

// Snap is a published read snapshot.
//
//repro:immutable
type Snap struct {
	A  int
	Xs []int
}

var current *Snap

// build fills a fresh snapshot before publication.
//
//repro:builder
func build(a int, xs []int) *Snap {
	s := &Snap{}
	s.A = a
	s.Xs = xs
	return s
}

// MutateField writes a published snapshot through a pointer.
func MutateField(p *Snap) {
	p.A = 1 // want `write to field A of immutable type Snap`
}

// MutateElem writes into a snapshot's slice field.
func MutateElem(p *Snap) {
	p.Xs[0] = 1 // want `write to field Xs of immutable type Snap`
}

// MutateWhole overwrites the pointed-to snapshot wholesale.
func MutateWhole(p *Snap) {
	*p = Snap{} // want `write through \*Snap pointer`
}

// MutateGlobal writes a snapshot held in package-level storage.
func MutateGlobal() {
	current.A++ // want `write to field A of immutable type Snap`
}

// CopyAndEdit edits a value-typed private copy: exactly what
// immutability buys, not a finding.
func CopyAndEdit(p *Snap) int {
	s := *p
	s.A = 2
	return s.A
}

// Waived proves a reasoned waiver suppresses the finding.
func Waived(p *Snap) {
	//repro:mutate-ok fixture: single-owner snapshot recycled before publication, guarded by the builder epoch
	p.A = 3
}

// Package notdeterministic is the wallclock negative fixture: identical
// wall-clock reads in a package WITHOUT //repro:deterministic produce
// no findings — the analyzer is opt-in per package, not global.
package notdeterministic

import (
	"math/rand"
	"time"
)

// Boundary code owns the real clock; nothing here is flagged.
func Boundary() float64 {
	t := time.Now()
	time.Sleep(time.Microsecond)
	return time.Since(t).Seconds() + rand.Float64()
}

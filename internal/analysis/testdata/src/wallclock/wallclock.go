// Package wallclock is the wallclock analyzer fixture: a package
// declared deterministic that reaches for ambient time and randomness.
//
//repro:deterministic
package wallclock

import (
	"math/rand"
	"time"
)

// Bad reaches for every class of forbidden nondeterminism.
func Bad() float64 {
	t := time.Now()       // want `time\.Now in deterministic package .*take the instant as an input`
	time.Sleep(time.Hour) // want `time\.Sleep in deterministic package .*simulation schedule`
	d := time.Since(t)    // want `time\.Since in deterministic package`
	u := rand.Float64()   // want `math/rand\.Float64 in deterministic package`
	rand.Shuffle(1, nil)  // want `math/rand\.Shuffle in deterministic package`
	_ = time.NewTicker(d) // want `time\.NewTicker in deterministic package`
	var tm *time.Timer    // want `use of time\.Timer in deterministic package`
	_ = tm
	return u + d.Seconds()
}

// Explicit sources threaded through inputs are the sanctioned pattern:
// none of this is flagged.
func Good(src *rand.Rand, nowNs int64) float64 {
	return src.Float64() + float64(nowNs)
}

// Waived keeps one excused wall-clock read, with the reason recorded.
func Waived() time.Time {
	//repro:wallclock-ok fixture: boundary code stamping a log record, not an algorithm input
	return time.Now()
}

// WaivedNoReason shows that a bare waiver does not suppress silently.
func WaivedNoReason() time.Time {
	//repro:wallclock-ok
	return time.Now() // want `waiver is missing a reason`
}

// The excused construct below the waiver is gone: the waiver itself is
// flagged as stale.
func Stale() int {
	/* want `unused //repro:wallclock-ok waiver` */ //repro:wallclock-ok nothing here needs excusing anymore
	return 0
}

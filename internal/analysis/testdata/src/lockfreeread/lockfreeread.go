// Package lockfreeread is the lockfreeread analyzer fixture: annotated
// read paths reaching for every forbidden synchronization class, plus
// the permitted atomic loads and unannotated writer-side code.
package lockfreeread

import (
	"sync"
	"sync/atomic"
)

var reads int

type state struct {
	mu  sync.Mutex
	seq atomic.Uint64
	ch  chan int
	n   int
}

// Read is the annotated entry point.
//
//repro:readpath
func (s *state) Read() int {
	s.mu.Lock()  // want `sync\.Mutex\.Lock call \(read paths are lock-free\)`
	s.n = 1      // want `write to receiver state`
	s.ch <- 1    // want `channel send`
	<-s.ch       // want `channel receive`
	reads++      // want `write to package-level state`
	s.seq.Add(1) // want `atomic\.Uint64\.Add mutates shared state`
	go s.drain() // want `go statement`
	_ = s.seq.Load()
	return s.n + s.locked()
}

// locked is unannotated but reached from Read by a direct static call.
func (s *state) locked() int {
	s.mu.Lock()         // want `sync\.Mutex\.Lock call .*reached from //repro:readpath Read`
	defer s.mu.Unlock() // want `sync\.Mutex\.Unlock call .*reached from //repro:readpath Read`
	return s.n
}

// ReadWaived proves a reasoned waiver suppresses the finding.
//
//repro:readpath
func (s *state) ReadWaived() uint64 {
	//repro:readpath-ok fixture: monotonic read-side sequence bump, wait-free and writer-invisible
	return s.seq.Add(0)
}

// drain is the writer side: unannotated, free to block.
func (s *state) drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for range s.ch {
	}
}

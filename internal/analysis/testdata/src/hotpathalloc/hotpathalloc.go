// Package hotpathalloc is the hotpathalloc analyzer fixture: one
// annotated hot function exercising each allocation class, one helper
// reached by propagation, and cold code that stays unflagged.
package hotpathalloc

import "fmt"

type point struct{ x, y int }

var sink any

func takesAny(v any) { sink = v }

// Hot is the annotated entry point.
//
//repro:hotpath
func Hot(xs []int, a, b string) int {
	s := make([]int, 4)          // want `make allocates in hot path`
	xs = append(xs, 1)           // want `append may grow its backing array`
	_ = []int{1, 2}              // want `slice literal allocates`
	p := &point{x: 1}            // want `&composite literal allocates`
	_ = fmt.Sprintf("%d", p.x)   // want `fmt\.Sprintf allocates`
	c := a + b                   // want `string concatenation allocates`
	takesAny(42)                 // want `argument boxed into interface parameter`
	f := func() int { return 1 } // want `func literal may be heap-allocated`
	helper()
	return len(s) + len(c) + f()
}

// helper is unannotated but reached from Hot by a direct static call,
// so its allocation is charged to the hot path.
func helper() []byte {
	return make([]byte, 8) // want `make allocates in hot path .*reached from //repro:hotpath Hot`
}

// HotWaived proves a reasoned waiver suppresses the finding.
//
//repro:hotpath
func HotWaived(buf []byte) []byte {
	//repro:alloc-ok fixture: caller guarantees capacity, asserted by an AllocsPerRun gate
	return append(buf, 0)
}

// Cold is unannotated and unreachable from any hot root: allocations
// here are nobody's business.
func Cold() []int {
	return make([]int, 1024)
}

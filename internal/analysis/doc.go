// Package analysis implements reprolint: four static analyzers that
// mechanically enforce the invariants the clock's robustness argument
// rests on. Seven PRs in, properties like "the engine never reads the
// wall clock", "the packet path does not allocate", and "a published
// readout is never mutated" were guaranteed only by convention plus a
// handful of point tests (TestReadPathZeroAlloc, the race suites) that
// cover specific call sites. reprolint turns them into lint-time
// failures over the whole codebase, so the guarantee no longer depends
// on remembering to write the right test for each new call site.
//
// The suite is driven by directive comments. A directive is a comment
// line that begins exactly with "//repro:" (no space, mirroring the
// //go: convention); prose that merely mentions a directive mid-line
// is never a directive.
//
// Package directive (in the package doc comment of any file):
//
//	//repro:deterministic
//
// marks every file of the package as wall-clock-free: the wallclock
// analyzer forbids time.Now/Since/Until, sleeps, timers, tickers, the
// global math/rand generators and crypto/rand. Simulated time comes in
// through inputs; randomness through an explicitly seeded source.
//
// Function directives (in the doc comment of a func/method):
//
//	//repro:hotpath
//
// marks a per-packet function. The hotpathalloc analyzer flags
// allocation-inducing constructs (append, make, new, slice/map
// literals, &composite literals, fmt calls, string concatenation,
// interface boxing, escaping closures, go statements, string<->[]byte
// conversions) in the function and in every same-package function it
// statically calls, transitively.
//
//	//repro:readpath
//
// marks a lock-free read function: a pure function of a published
// snapshot. The lockfreeread analyzer forbids sync lock acquisition,
// channel operations, goroutine spawns, atomic mutations (anything but
// Load), and writes to receiver or package-level state — again
// including same-package static callees.
//
// Type directive (on a type declaration):
//
//	//repro:immutable
//
// marks a publish-then-never-mutate snapshot type. The atomicpub
// analyzer flags every write to a field of such a type (directly,
// through pointers, or into elements of its slice fields) anywhere in
// the module, except inside functions annotated
//
//	//repro:builder
//
// — the constructor/builder set that fills a snapshot before it is
// published.
//
// Waivers. Every analyzer honors a line waiver that must carry a
// reason:
//
//	//repro:wallclock-ok <reason>   (wallclock)
//	//repro:alloc-ok <reason>       (hotpathalloc)
//	//repro:readpath-ok <reason>    (lockfreeread)
//	//repro:mutate-ok <reason>      (atomicpub)
//
// placed at the end of the offending line or on the line directly
// above it. A waiver with no reason is itself reported: the point of a
// waiver is to put the justification in the diff.
//
// The analyzers are deliberately conservative approximations. They see
// direct static calls only (calls through function values, interfaces,
// or other packages are out of scope), and hotpathalloc flags
// constructs that MAY allocate (an append into preallocated capacity
// is flagged and waived with the reason explaining the capacity
// argument). The runtime tests the analyzers back — the AllocsPerRun
// gates, the race suites — stay in place; reprolint is the static,
// whole-codebase layer above them.
//
// Everything here is stdlib-only: the loader parses and type-checks
// the module with go/parser and go/types using the source importer, so
// neither the module nor the tools need golang.org/x/tools.
package analysis

package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicPub enforces publish-then-never-mutate on types declared
// //repro:immutable (the core and ensemble Readout snapshots and their
// publication-slab slots). The race detector only catches a
// mutate-after-publish when a test happens to interleave a reader with
// the write; this analyzer rejects the write itself: any assignment to
// a field of an immutable type — directly, through a pointer, or into
// an element of one of its slice fields — anywhere in the module,
// unless the enclosing function is annotated //repro:builder (the
// constructor set that fills a snapshot before the atomic store makes
// it visible). Writes into a value-typed local copy are fine: copying
// a snapshot and editing the copy is exactly what immutability buys.
var AtomicPub = &Analyzer{
	Name:   "atomicpub",
	Doc:    "forbid field writes to //repro:immutable snapshot types outside //repro:builder functions",
	Waiver: "mutate-ok",
	Run:    runAtomicPub,
}

func runAtomicPub(pass *Pass) {
	decls := funcDecls(pass)
	for fn, fd := range decls {
		if pass.Dirs.FuncHas(fn, DirBuilder) {
			continue
		}
		fnName := fn.Name()
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkImmutableWrite(pass, lhs, fnName)
				}
			case *ast.IncDecStmt:
				checkImmutableWrite(pass, n.X, fnName)
			}
			return true
		})
	}
}

// checkImmutableWrite reports a diagnostic when lhs writes into shared
// storage belonging to an //repro:immutable type.
func checkImmutableWrite(pass *Pass, lhs ast.Expr, fnName string) {
	// Walk outward-in: at each step, a write through the outer
	// expression is a write into whatever the inner expression holds,
	// so the first immutable owner found on a shared step is the
	// violated type.
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			// Field write: the owner is the (pointer-free) type of x.X.
			sel, ok := pass.Info.Selections[x]
			if ok && sel.Kind() == types.FieldVal {
				ownerT := pass.Info.TypeOf(x.X)
				owner, viaPtr := derefNamed(ownerT)
				if pass.Global.IsImmutable(owner) && (viaPtr || sharedLvalue(pass, x.X)) {
					pass.Reportf(lhs.Pos(),
						"write to field %s of immutable type %s outside a //repro:builder function (mutate-after-publish hazard, //repro:immutable)",
						x.Sel.Name, owner.Obj().Name())
					return
				}
			}
			e = x.X
		case *ast.StarExpr:
			// *p = v: overwriting the pointed-to immutable value whole.
			// The operand's type is the pointer; derefNamed crosses it.
			if owner, viaPtr := derefNamed(pass.Info.TypeOf(x.X)); viaPtr && pass.Global.IsImmutable(owner) {
				pass.Reportf(lhs.Pos(),
					"write through *%s pointer outside a //repro:builder function (mutate-after-publish hazard, //repro:immutable)",
					owner.Obj().Name())
				return
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return
		}
	}
}

// derefNamed unwraps one level of pointer and returns the named type
// beneath, with viaPtr reporting whether a pointer was crossed.
func derefNamed(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	viaPtr := false
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
		viaPtr = true
	}
	n, _ := t.(*types.Named)
	return n, viaPtr
}

// sharedLvalue reports whether evaluating e reaches storage shared
// beyond a local value: a value-typed local (or value receiver) is a
// private copy, anything reached through a pointer, slice, map, or a
// package-level variable is shared.
func sharedLvalue(pass *Pass, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			obj, _ := pass.Info.Uses[x].(*types.Var)
			return obj != nil && obj.Parent() == pass.Pkg.Scope()
		case *ast.StarExpr:
			return true
		case *ast.SelectorExpr:
			if t := pass.Info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Pointer); ok {
					return true
				}
			}
			e = x.X
		case *ast.IndexExpr:
			if t := pass.Info.TypeOf(x.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Pointer:
					return true
				}
			}
			e = x.X
		default:
			return true
		}
	}
}

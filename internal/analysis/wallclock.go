package analysis

import (
	"go/types"
)

// wallclockForbidden lists the nondeterminism sources the wallclock
// analyzer rejects in //repro:deterministic packages, by package path
// and object name ("*" forbids the whole package). Each entry carries
// the remedy the diagnostic suggests.
var wallclockForbidden = map[string]map[string]string{
	"time": {
		"Now":       "take the instant as an input (counter value or timebase seconds)",
		"Since":     "difference two injected instants instead",
		"Until":     "difference two injected instants instead",
		"Sleep":     "model waiting in the simulation schedule",
		"After":     "model waiting in the simulation schedule",
		"AfterFunc": "model waiting in the simulation schedule",
		"Tick":      "drive iteration from the exchange schedule",
		"NewTimer":  "drive iteration from the exchange schedule",
		"NewTicker": "drive iteration from the exchange schedule",
		"Timer":     "drive iteration from the exchange schedule",
		"Ticker":    "drive iteration from the exchange schedule",
	},
	// The global generators share process-wide, seed-by-default state;
	// deterministic code draws from an explicitly seeded rand.New /
	// internal/rng source threaded through its inputs.
	"math/rand": {
		"Seed": "seed an explicit rand.New source instead", "Int": "", "Intn": "", "Int31": "", "Int31n": "",
		"Int63": "", "Int63n": "", "Uint32": "", "Uint64": "", "Float32": "", "Float64": "",
		"ExpFloat64": "", "NormFloat64": "", "Perm": "", "Shuffle": "", "Read": "",
	},
	"math/rand/v2": {
		"Int": "", "IntN": "", "Int32": "", "Int32N": "", "Int64": "", "Int64N": "",
		"Uint": "", "UintN": "", "Uint32": "", "Uint32N": "", "Uint64": "", "Uint64N": "",
		"Float32": "", "Float64": "", "ExpFloat64": "", "NormFloat64": "", "Perm": "", "Shuffle": "", "N": "",
	},
	"crypto/rand": {"*": "deterministic code has no business with an entropy source"},
}

// Wallclock forbids wall-clock reads, timers, and ambient randomness in
// packages declared //repro:deterministic. The engine's replayability
// argument — same exchange trace in, bit-identical filtering out —
// holds only while every quantity the filters consume arrives through
// their inputs; one time.Now in a quality heuristic silently breaks
// golden-trace equivalence in a way no fixed-seed test can catch.
var Wallclock = &Analyzer{
	Name:   "wallclock",
	Doc:    "forbid time.Now/timers/ambient randomness in //repro:deterministic packages",
	Waiver: "wallclock-ok",
	Run:    runWallclock,
}

func runWallclock(pass *Pass) {
	if !pass.Dirs.Deterministic {
		return
	}
	for id, obj := range pass.Info.Uses {
		pkg := obj.Pkg()
		if pkg == nil {
			continue
		}
		byName, ok := wallclockForbidden[pkg.Path()]
		if !ok {
			continue
		}
		// Methods are exempt: the forbidden set is the package-level API
		// (ambient clock, shared global generator). A method call like
		// src.Float64() on an explicitly seeded *rand.Rand threaded
		// through the inputs is exactly the sanctioned pattern.
		if fn, isFunc := obj.(*types.Func); isFunc {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				continue
			}
		}
		remedy, hit := byName[obj.Name()]
		if !hit {
			remedy, hit = byName["*"]
			if !hit {
				continue
			}
		}
		// Only flag value/function uses and type uses, not e.g. the
		// import spec itself (those come through Implicits/Defs, not
		// Uses, so Uses is already the right set).
		msg := pkg.Path() + "." + obj.Name() + " in deterministic package (//repro:deterministic)"
		if _, isType := obj.(*types.TypeName); isType {
			msg = "use of " + msg
		}
		if remedy != "" {
			msg += ": " + remedy
		}
		pass.Reportf(id.Pos(), "%s", msg)
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc flags allocation-inducing constructs in //repro:hotpath
// functions and their same-package static callees. The zero-alloc
// guarantee of the per-packet path was previously backed only by
// testing.AllocsPerRun gates over specific entry points; this analyzer
// makes the property visible at every call site the moment it is
// written, including helpers a test never reaches. Findings mean "MAY
// allocate": an append into capacity the caller proved is waived with
// //repro:alloc-ok and the proof in the reason.
var HotPathAlloc = &Analyzer{
	Name:   "hotpathalloc",
	Doc:    "flag allocation-inducing constructs in //repro:hotpath functions and their intra-package callees",
	Waiver: "alloc-ok",
	Run:    runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) {
	hot := propagate(pass, DirHotpath)
	for _, fn := range hot {
		checkHotBody(pass, fn)
	}
}

func checkHotBody(pass *Pass, fn annotated) {
	suffix := fn.viaSuffix(DirHotpath)
	// Immediately-invoked func literals do not escape; collect them so
	// the FuncLit case below can skip them (their bodies are still
	// scanned).
	invoked := map[*ast.FuncLit]bool{}
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				invoked[lit] = true
			}
		}
		return true
	})

	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s in hot path (//repro:hotpath)%s", what, suffix)
	}

	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, n, report)
		case *ast.CompositeLit:
			switch pass.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pass.Info.Types[n]; ok && tv.Value == nil {
					if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
						report(n.Pos(), "string concatenation allocates")
					}
				}
			}
		case *ast.FuncLit:
			if !invoked[n] {
				report(n.Pos(), "func literal may be heap-allocated (escaping closure)")
			}
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
		}
		return true
	})
}

// checkHotCall classifies one call expression: allocating builtins,
// allocating conversions, fmt, and interface boxing of arguments.
func checkHotCall(pass *Pass, call *ast.CallExpr, report func(token.Pos, string)) {
	fun := ast.Unparen(call.Fun)

	// Conversions: T(x).
	if tv, ok := pass.Info.Types[fun]; ok && tv.IsType() {
		target := tv.Type
		src := pass.Info.TypeOf(call.Args[0])
		if types.IsInterface(target.Underlying()) && src != nil && !types.IsInterface(src.Underlying()) {
			report(call.Pos(), "conversion to interface boxes the value (may allocate)")
			return
		}
		if convAllocates(target, src) {
			report(call.Pos(), "string/byte-slice conversion allocates")
		}
		return
	}

	// Builtins.
	var calleeID *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		calleeID = f
	case *ast.SelectorExpr:
		calleeID = f.Sel
	}
	if calleeID != nil {
		if b, ok := pass.Info.Uses[calleeID].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				report(call.Pos(), "append may grow its backing array")
			case "new":
				report(call.Pos(), "new allocates")
			case "make":
				report(call.Pos(), "make allocates")
			}
			return
		}
		if obj := pass.Info.Uses[calleeID]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			report(call.Pos(), "fmt."+obj.Name()+" allocates (formats through interfaces)")
			return
		}
	}

	// Interface boxing at the call boundary: a concrete argument bound
	// to an interface parameter is boxed. fmt is caught above; this
	// catches everything else (sort.Interface shims, error wrapping,
	// logging) that smuggles an allocation into the packet path.
	sig, ok := pass.Info.TypeOf(fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				if i == params.Len()-1 {
					pt = params.At(params.Len() - 1).Type()
				}
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := pass.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if basic, ok := at.Underlying().(*types.Basic); ok && basic.Kind() == types.UntypedNil {
			continue
		}
		report(arg.Pos(), "argument boxed into interface parameter (may allocate)")
	}
}

// convAllocates reports whether a conversion from src to target copies
// its backing storage: string <-> []byte / []rune.
func convAllocates(target, src types.Type) bool {
	if src == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		e, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
			e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	return (isStr(target) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(target) && isStr(src))
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockFreeRead enforces the published-snapshot contract in
// //repro:readpath functions and their same-package static callees: a
// read is a pure function of a loaded readout. No lock may be
// acquired (a reader must never block the writer or another reader),
// no channel touched, no goroutine spawned, and no receiver or global
// state written — the only synchronization a read path is allowed is
// an atomic Load. This is the PR 4 invariant ("reads take no mutex,
// perturb nothing") as a whole-package check instead of a per-call-site
// race test.
var LockFreeRead = &Analyzer{
	Name:   "lockfreeread",
	Doc:    "forbid locks, channel ops, goroutines, atomic mutations, and state writes in //repro:readpath functions",
	Waiver: "readpath-ok",
	Run:    runLockFreeRead,
}

// syncBlocking lists the sync types whose methods a read path must not
// call. sync.Pool is included: Get/Put mutate shared state and may
// allocate; a read path wanting scratch uses the stack.
var syncBlocking = map[string]bool{
	"Mutex": true, "RWMutex": true, "Once": true, "WaitGroup": true,
	"Cond": true, "Map": true, "Pool": true,
}

func runLockFreeRead(pass *Pass) {
	read := propagate(pass, DirReadpath)
	for _, fn := range read {
		checkReadBody(pass, fn)
	}
}

func checkReadBody(pass *Pass, fn annotated) {
	suffix := fn.viaSuffix(DirReadpath)
	recv := receiverObj(pass, fn.decl)

	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s in lock-free read path (//repro:readpath)%s", what, suffix)
	}

	checkWrite := func(lhs ast.Expr) {
		root, shared := lvalueRoot(pass, lhs)
		if root == nil {
			return
		}
		obj, _ := pass.Info.Uses[root].(*types.Var)
		if obj == nil {
			return
		}
		switch {
		case recv != nil && obj == recv && shared:
			report(lhs.Pos(), "write to receiver state")
		case obj.Parent() == pass.Pkg.Scope():
			report(lhs.Pos(), "write to package-level state")
		}
	}

	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			report(n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			report(n.Pos(), "select statement")
		case *ast.GoStmt:
			report(n.Pos(), "go statement")
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(n.X)
		case *ast.CallExpr:
			checkReadCall(pass, n, report)
		}
		return true
	})
}

// checkReadCall flags blocking-sync method calls and atomic mutations.
func checkReadCall(pass *Pass, call *ast.CallExpr, report func(token.Pos, string)) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
		if b.Name() == "close" {
			report(call.Pos(), "close of channel")
		}
		return
	}
	callee, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || callee.Pkg() == nil {
		return
	}
	switch callee.Pkg().Path() {
	case "sync":
		recv := callee.Type().(*types.Signature).Recv()
		if recv == nil {
			// sync.OnceFunc and friends return closures; calling the
			// constructor in a read path is already suspicious enough.
			report(call.Pos(), "sync."+callee.Name()+" call")
			return
		}
		name := namedTypeName(recv.Type())
		if syncBlocking[name] {
			report(call.Pos(), "sync."+name+"."+callee.Name()+" call (read paths are lock-free)")
		}
	case "sync/atomic":
		// Load and Loadable accessors are the one permitted class;
		// every mutation (Store, Add, Swap, CompareAndSwap, Or, And)
		// makes a "read" visible to other readers and races the writer.
		if strings.HasPrefix(callee.Name(), "Load") {
			return
		}
		recv := callee.Type().(*types.Signature).Recv()
		where := "sync/atomic." + callee.Name()
		if recv != nil {
			where = "atomic." + namedTypeName(recv.Type()) + "." + callee.Name()
		}
		report(call.Pos(), where+" mutates shared state")
	}
}

// namedTypeName unwraps pointers and generic instantiation down to the
// receiver's type name.
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// lvalueRoot walks an assignment target down to its base identifier,
// reporting whether the write lands in storage shared beyond the
// identifier's own value: any step through a pointer dereference,
// slice/map element, or field selector on a pointer means writing
// through the base perturbs state others can see. A plain `x = v` or a
// write into a value-typed local struct stays private (shared=false).
func lvalueRoot(pass *Pass, e ast.Expr) (root *ast.Ident, shared bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			return x, shared
		case *ast.StarExpr:
			shared = true
			e = x.X
		case *ast.SelectorExpr:
			if t := pass.Info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Pointer); ok {
					shared = true
				}
			}
			e = x.X
		case *ast.IndexExpr:
			if t := pass.Info.TypeOf(x.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Pointer:
					shared = true
				}
			}
			e = x.X
		default:
			return nil, shared
		}
	}
}

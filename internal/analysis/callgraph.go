package analysis

import (
	"go/ast"
	"go/types"
)

// funcDecls maps every function and method declared in the package to
// its syntax.
func funcDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// annotated is one function in the propagated annotation set: the
// function itself plus the root annotation it inherits from (empty via
// for the directly annotated roots).
type annotated struct {
	decl *ast.FuncDecl
	via  string // root function name, "" when directly annotated
}

// propagate computes the transitive closure of the directly annotated
// roots over direct static intra-package calls: if a hot function
// calls a same-package helper by name, the helper runs on the hot path
// too and inherits the annotation. Calls through function values,
// interfaces, or into other packages are invisible here — the
// conservative, syntactic contract documented in doc.go.
func propagate(pass *Pass, directive string) map[*types.Func]annotated {
	decls := funcDecls(pass)
	set := map[*types.Func]annotated{}
	var queue []*types.Func
	for fn := range decls {
		if pass.Dirs.FuncHas(fn, directive) {
			set[fn] = annotated{decl: decls[fn]}
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		root := set[fn].via
		if root == "" {
			root = fn.Name()
		}
		ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
			// A go statement's callee runs on its own goroutine, not on
			// this function's path; the spawn itself is what the hotpath
			// and readpath analyzers flag.
			if _, isGo := n.(*ast.GoStmt); isGo {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			default:
				return true
			}
			callee, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || callee.Pkg() != pass.Pkg {
				return true
			}
			// Calls to methods of instantiated generics resolve to the
			// instantiation's object; the declaration map is keyed by the
			// generic origin.
			callee = callee.Origin()
			decl, ok := decls[callee]
			if !ok {
				return true
			}
			if _, done := set[callee]; done {
				return true
			}
			set[callee] = annotated{decl: decl, via: root}
			queue = append(queue, callee)
			return true
		})
	}
	return set
}

// viaSuffix renders the inherited-annotation suffix for diagnostics in
// propagated callees.
func (a annotated) viaSuffix(directive string) string {
	if a.via == "" {
		return ""
	}
	return " (reached from //repro:" + directive + " " + a.via + ")"
}

// receiverObj returns the declared receiver variable of a method, or
// nil for plain functions and anonymous receivers.
func receiverObj(pass *Pass, fd *ast.FuncDecl) *types.Var {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := pass.Info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return v
}

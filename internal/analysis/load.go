package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked, directive-indexed package.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	Dirs       *Directives
}

// chainImporter resolves module-internal imports from the packages this
// load has already type-checked (so every package in the module is
// checked exactly once, in dependency order) and everything else —
// the standard library — through the stdlib source importer.
type chainImporter struct {
	loaded   map[string]*types.Package
	fallback types.ImporterFrom
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.loaded[path]; ok {
		return p, nil
	}
	return c.fallback.ImportFrom(path, dir, mode)
}

// Load parses, type-checks, and directive-indexes the packages matched
// by patterns ("./...", "dir/...", or plain directories, resolved
// relative to dir; an empty dir means the working directory). It finds
// the enclosing module root by walking up to go.mod, analyzes only
// non-test files of the current build configuration, and skips
// testdata and hidden directories exactly like the go tool.
func Load(dir string, patterns []string) ([]*Package, error) {
	// Analyze the pure-Go shape of the tree: the module itself has no
	// cgo, and source-importing cgo-tainted stdlib dependencies (net)
	// is neither possible nor needed.
	build.Default.CgoEnabled = false

	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}

	dirs, err := expandPatterns(abs, root, patterns)
	if err != nil {
		return nil, err
	}

	// Survey build metadata first: import paths and the intra-module
	// dependency edges that drive the type-checking order.
	type meta struct {
		dir        string
		importPath string
		goFiles    []string
		imports    []string
	}
	byPath := map[string]*meta{}
	var order []string
	for _, d := range dirs {
		bp, err := build.ImportDir(d, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			if _, ok := err.(*build.MultiplePackageError); ok {
				return nil, fmt.Errorf("reprolint: %w", err)
			}
			return nil, fmt.Errorf("reprolint: %s: %w", d, err)
		}
		if len(bp.GoFiles) == 0 {
			continue
		}
		ip, err := importPathFor(root, modPath, d)
		if err != nil {
			return nil, err
		}
		byPath[ip] = &meta{dir: d, importPath: ip, goFiles: bp.GoFiles, imports: bp.Imports}
		order = append(order, ip)
	}
	sort.Strings(order)

	// Topological sort over intra-module imports. Imports that point
	// inside the module but outside the pattern set are loaded too:
	// type-checking needs them, and directives anywhere in the module
	// must be visible (an immutable type is immutable even when only
	// its mutator's package was asked for).
	for i := 0; i < len(order); i++ {
		m := byPath[order[i]]
		for _, imp := range m.imports {
			if !inModule(imp, modPath) || byPath[imp] != nil {
				continue
			}
			d := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(imp, modPath), "/")))
			bp, err := build.ImportDir(d, 0)
			if err != nil {
				return nil, fmt.Errorf("reprolint: resolving %s: %w", imp, err)
			}
			byPath[imp] = &meta{dir: d, importPath: imp, goFiles: bp.GoFiles, imports: bp.Imports}
			order = append(order, imp)
		}
	}

	var sorted []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(ip string) error {
		switch state[ip] {
		case 1:
			return fmt.Errorf("reprolint: import cycle through %s", ip)
		case 2:
			return nil
		}
		state[ip] = 1
		m := byPath[ip]
		deps := append([]string(nil), m.imports...)
		sort.Strings(deps)
		for _, imp := range deps {
			if inModule(imp, modPath) && byPath[imp] != nil {
				if err := visit(imp); err != nil {
					return err
				}
			}
		}
		state[ip] = 2
		sorted = append(sorted, ip)
		return nil
	}
	for _, ip := range order {
		if err := visit(ip); err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	imp := &chainImporter{
		loaded:   map[string]*types.Package{},
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}

	var pkgs []*Package
	for _, ip := range sorted {
		m := byPath[ip]
		var files []*ast.File
		for _, name := range m.goFiles {
			f, err := parser.ParseFile(fset, filepath.Join(m.dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(ip, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("reprolint: type-checking %s: %w", ip, err)
		}
		imp.loaded[ip] = tpkg
		pkgs = append(pkgs, &Package{
			Dir:        m.dir,
			ImportPath: ip,
			Fset:       fset,
			Files:      files,
			Pkg:        tpkg,
			Info:       info,
			Dirs:       parseDirectives(fset, files, info),
		})
	}
	return pkgs, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("reprolint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("reprolint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// inModule reports whether the import path lies inside the module.
func inModule(importPath, modPath string) bool {
	return importPath == modPath || strings.HasPrefix(importPath, modPath+"/")
}

// importPathFor maps a directory inside the module root to its import
// path.
func importPathFor(root, modPath, dir string) (string, error) {
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("reprolint: %s is outside module root %s", dir, root)
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}

// expandPatterns resolves the CLI patterns to candidate directories.
func expandPatterns(base, root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var out []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat = "./..."
		}
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		d := pat
		if !filepath.IsAbs(d) {
			d = filepath.Join(base, d)
		}
		if !recursive {
			add(d)
			continue
		}
		err := filepath.WalkDir(d, func(path string, entry os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !entry.IsDir() {
				return nil
			}
			name := entry.Name()
			// The go tool's pattern rules: testdata, dot, and underscore
			// directories never match "...".
			if path != d && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

package allan

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// syntheticSeries builds an irregular clock-error series: near-uniform
// poll times with jitter, errors carrying drift, a sinusoid and noise —
// the shape of a detrended offset series.
func syntheticSeries(n int, seed uint64) (ts, xs []float64) {
	src := rng.New(seed)
	t := 0.0
	for i := 0; i < n; i++ {
		t += 16 * (1 + 0.02*(src.Float64()-0.5))
		ts = append(ts, t)
		xs = append(xs, 1e-7*t+2e-5*math.Sin(t/900)+src.Normal(0, 5e-6))
	}
	return ts, xs
}

// TestResamplerBitIdenticalToBatch: the streaming resampler must emit
// exactly the batch Resample output, sample for sample.
func TestResamplerBitIdenticalToBatch(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
		tau0 float64
	}{
		{"dense", 5000, 16},
		{"coarse", 5000, 61.7},
		{"fine", 300, 4.3},
		{"two-points", 2, 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ts, xs := syntheticSeries(tc.n, 7)
			want, err := Resample(ts, xs, tc.tau0)
			if err != nil {
				t.Fatal(err)
			}
			var got []float64
			r, err := NewResampler(tc.tau0, func(v float64) error {
				got = append(got, v)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range ts {
				if err := r.Push(ts[i], xs[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := r.Finish(); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("streaming emitted %d samples, batch %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("sample %d differs: %v vs %v", i, got[i], want[i])
				}
			}
			if r.Emitted() != len(want) {
				t.Errorf("Emitted() = %d, want %d", r.Emitted(), len(want))
			}
		})
	}
}

func TestResamplerErrors(t *testing.T) {
	if _, err := NewResampler(0, func(float64) error { return nil }); err == nil {
		t.Error("zero spacing accepted")
	}
	if _, err := NewResampler(1, nil); err == nil {
		t.Error("nil sink accepted")
	}
	r, _ := NewResampler(1, func(float64) error { return nil })
	if err := r.Finish(); err == nil {
		t.Error("Finish with no points accepted")
	}
	if err := r.Push(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Push(1, 0); err == nil {
		t.Error("non-increasing time accepted")
	}
	if err := r.Finish(); err == nil {
		t.Error("Finish with one point accepted")
	}
}

// TestFoldBitIdenticalToBatchCurve: folding a uniform series must
// reproduce the batch Curve on the same grid, bit for bit.
func TestFoldBitIdenticalToBatchCurve(t *testing.T) {
	src := rng.New(3)
	x := make([]float64, 4000)
	for i := range x {
		x[i] = 1e-7*float64(i) + src.Normal(0, 3e-6)
	}
	const tau0, perDecade = 16.0, 4

	want, err := Curve(x, tau0, perDecade)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := CurveGrid(len(x), perDecade)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFold(tau0, ms)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		f.Add(v)
	}
	got := f.Points()
	if len(got) != len(want) {
		t.Fatalf("fold has %d points, batch %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d differs:\n fold  %+v\n batch %+v", i, got[i], want[i])
		}
	}
	if f.N() != len(x) {
		t.Errorf("N = %d, want %d", f.N(), len(x))
	}
}

// TestFoldMemoryBounded: the ring is sized by the largest scale, not
// the series length.
func TestFoldMemoryBounded(t *testing.T) {
	f, err := NewFold(16, []int{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(f.ring); n != 201 {
		t.Fatalf("ring holds %d samples, want 2·100+1", n)
	}
	src := rng.New(9)
	for i := 0; i < 100000; i++ {
		f.Add(src.Normal(0, 1))
	}
	if n := len(f.ring); n != 201 {
		t.Fatalf("ring grew to %d", n)
	}
	for _, p := range f.Points() {
		if p.Deviation <= 0 || math.IsNaN(p.Deviation) {
			t.Fatalf("bad deviation %+v", p)
		}
	}
}

// TestStreamedPipelineEndToEnd: irregular series → streaming resampler
// feeding a fold directly must equal batch Resample + Curve.
func TestStreamedPipelineEndToEnd(t *testing.T) {
	ts, xs := syntheticSeries(6000, 21)
	const tau0, perDecade = 16.0, 4

	uniform, err := Resample(ts, xs, tau0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Curve(uniform, tau0, perDecade)
	if err != nil {
		t.Fatal(err)
	}

	// The streaming side sizes the grid from the sample count implied
	// by the time span, as the experiment harness does.
	n := int((ts[len(ts)-1]-ts[0])/tau0) + 1
	ms, err := CurveGrid(n, perDecade)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFold(tau0, ms)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResampler(tau0, func(v float64) error { f.Add(v); return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := range ts {
		if err := r.Push(ts[i], xs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if f.N() != len(uniform) {
		t.Fatalf("fold consumed %d samples, batch resample produced %d", f.N(), len(uniform))
	}
	got := f.Points()
	if len(got) != len(want) {
		t.Fatalf("fold has %d points, batch %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d differs:\n fold  %+v\n batch %+v", i, got[i], want[i])
		}
	}
}

func TestFoldValidation(t *testing.T) {
	if _, err := NewFold(0, []int{1}); err == nil {
		t.Error("zero spacing accepted")
	}
	if _, err := NewFold(16, nil); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := NewFold(16, []int{0}); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := CurveGrid(2, 4); err == nil {
		t.Error("too-short series accepted")
	}
	if _, err := CurveGrid(100, 0); err == nil {
		t.Error("perDecade=0 accepted")
	}
}

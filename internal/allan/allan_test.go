package allan

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestDeviationErrors(t *testing.T) {
	x := make([]float64, 10)
	if _, err := Deviation(x, 0, 1); err == nil {
		t.Error("zero spacing accepted")
	}
	if _, err := Deviation(x, 1, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Deviation(x, 1, 5); err == nil {
		t.Error("series too short accepted")
	}
	if _, err := Deviation(x, 1, 4); err != nil {
		t.Errorf("valid call rejected: %v", err)
	}
}

func TestWhitePhaseNoiseScaling(t *testing.T) {
	// For white phase noise of std σ_x, the Allan deviation scales as
	// sqrt(3)·σ_x/τ — the 1/τ zone of the paper's Figure 3.
	src := rng.New(1)
	const sigma = 10e-6
	const tau0 = 16.0
	x := make([]float64, 200000)
	for i := range x {
		x[i] = src.Normal(0, sigma)
	}
	for _, m := range []int{1, 4, 16, 64} {
		p, err := Deviation(x, tau0, m)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Sqrt(3) * sigma / p.Tau
		if ratio := p.Deviation / want; ratio < 0.9 || ratio > 1.1 {
			t.Errorf("m=%d: deviation %v, want ~%v (ratio %v)", m, p.Deviation, want, ratio)
		}
	}
}

func TestConstantSkewInvisible(t *testing.T) {
	// A pure linear trend (constant skew) contributes nothing to the
	// Allan deviation: second differences of a line vanish.
	x := make([]float64, 1000)
	for i := range x {
		x[i] = 5e-5 * float64(i) // 50 PPM at tau0=1
	}
	p, err := Deviation(x, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Deviation > 1e-15 {
		t.Errorf("linear trend produced deviation %v", p.Deviation)
	}
}

func TestRandomWalkFrequencyScaling(t *testing.T) {
	// For random-walk frequency noise the Allan deviation grows ~ √τ.
	src := rng.New(2)
	const tau0 = 1.0
	n := 100000
	x := make([]float64, n)
	freq := 0.0
	phase := 0.0
	for i := range x {
		freq += src.Normal(0, 1e-9)
		phase += freq * tau0
		x[i] = phase
	}
	p1, err := Deviation(x, tau0, 8)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Deviation(x, tau0, 128)
	if err != nil {
		t.Fatal(err)
	}
	ratio := p2.Deviation / p1.Deviation
	want := math.Sqrt(128.0 / 8.0)
	if ratio < want/1.6 || ratio > want*1.6 {
		t.Errorf("RW freq scaling ratio %v, want ~%v", ratio, want)
	}
}

func TestSinusoidPeak(t *testing.T) {
	// Sinusoidal frequency wander of amplitude A peaks in Allan
	// deviation near τ = P/2 at a level comparable to A.
	const amp = 1e-7
	const period = 4096.0
	const tau0 = 16.0
	n := 40000
	x := make([]float64, n)
	for i := range x {
		tt := float64(i) * tau0
		// phase error = integral of A·sin(2πt/P)
		x[i] = amp * period / (2 * math.Pi) * (1 - math.Cos(2*math.Pi*tt/period))
	}
	atPeak, err := Deviation(x, tau0, int(period/2/tau0))
	if err != nil {
		t.Fatal(err)
	}
	if atPeak.Deviation < amp/3 || atPeak.Deviation > amp*1.5 {
		t.Errorf("sinusoid peak deviation %v, want within [A/3, 1.5A] of A=%v", atPeak.Deviation, amp)
	}
	farAbove, err := Deviation(x, tau0, int(8*period/tau0))
	if err != nil {
		t.Fatal(err)
	}
	if farAbove.Deviation > atPeak.Deviation/3 {
		t.Errorf("deviation %v at 8P not well below peak %v", farAbove.Deviation, atPeak.Deviation)
	}
}

func TestCurveGrid(t *testing.T) {
	x := make([]float64, 1000)
	src := rng.New(3)
	for i := range x {
		x[i] = src.Normal(0, 1e-6)
	}
	pts, err := Curve(x, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 8 {
		t.Fatalf("curve has only %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Tau <= pts[i-1].Tau {
			t.Fatalf("curve taus not increasing: %v after %v", pts[i].Tau, pts[i-1].Tau)
		}
	}
	if pts[0].Tau != 16 {
		t.Errorf("first tau = %v, want 16", pts[0].Tau)
	}
}

func TestResample(t *testing.T) {
	ts := []float64{0, 1, 2.5, 4}
	xs := []float64{0, 10, 25, 40} // linear in t: x = 10t
	out, err := Resample(ts, xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range out {
		tt := 0.5 * float64(k)
		if math.Abs(v-10*tt) > 1e-9 {
			t.Errorf("resampled[%d] = %v, want %v", k, v, 10*tt)
		}
	}
	if _, err := Resample([]float64{0, 0}, []float64{1, 2}, 1); err == nil {
		t.Error("non-increasing times accepted")
	}
	if _, err := Resample([]float64{0}, []float64{1}, 1); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := Resample(ts, xs[:3], 1); err == nil {
		t.Error("length mismatch accepted")
	}
}

func BenchmarkCurve(b *testing.B) {
	src := rng.New(1)
	x := make([]float64, 40000)
	for i := range x {
		x[i] = src.Normal(0, 1e-6)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Curve(x, 16, 4); err != nil {
			b.Fatal(err)
		}
	}
}

package allan

// Online Allan estimation: the streaming half of the package. The batch
// Deviation/Curve/Resample need the full uniform series resident; the
// Resampler and Fold here consume one sample at a time and agree with
// the batch results bit for bit (stream_test.go pins it). Memory is
// O(2·mMax) — set by the largest averaging scale requested, independent
// of trace length — so a multi-week stability analysis holds a few
// thousand floats instead of the series.

import (
	"fmt"
	"math"
)

// Resampler converts an irregularly sampled error series into a
// uniform one incrementally, emitting each uniform sample to the sink
// as soon as its bracketing input points exist. It reproduces the batch
// Resample exactly: the same interval selection, the same interpolation
// arithmetic, including the final-interval clamp for the rounding case
// where the last uniform time lands past the last input.
type Resampler struct {
	tau0 float64
	sink func(float64) error

	n            int     // input points pushed
	t0           float64 // first input time
	paT, paX     float64 // second-to-last input point
	pbT, pbX     float64 // last input point
	k            int     // next uniform index to emit
	totalEmitted int
}

// NewResampler returns a resampler with the given uniform spacing,
// delivering samples to sink in order.
func NewResampler(tau0 float64, sink func(float64) error) (*Resampler, error) {
	if tau0 <= 0 {
		return nil, fmt.Errorf("allan: non-positive spacing")
	}
	if sink == nil {
		return nil, fmt.Errorf("allan: nil sink")
	}
	return &Resampler{tau0: tau0, sink: sink}, nil
}

// Push feeds the next input point. Times must be strictly increasing.
func (r *Resampler) Push(t, x float64) error {
	if r.n > 0 && t <= r.pbT {
		return fmt.Errorf("allan: times not strictly increasing at point %d", r.n)
	}
	if r.n == 0 {
		r.t0, r.pbT, r.pbX = t, t, x
		r.n = 1
		return nil
	}
	// Emit every uniform sample bracketed by (pb, the new point): the
	// batch walk selects exactly the first input at or past each
	// uniform time as the interval's right endpoint.
	aT, aX := r.pbT, r.pbX
	for {
		u := r.t0 + float64(r.k)*r.tau0
		if u > t {
			break
		}
		w := (u - aT) / (t - aT)
		if w < 0 {
			w = 0
		}
		if err := r.sink(aX*(1-w) + x*w); err != nil {
			return err
		}
		r.k++
		r.totalEmitted++
	}
	r.paT, r.paX = aT, aX
	r.pbT, r.pbX = t, x
	r.n++
	return nil
}

// Finish flushes the rounding tail: the batch resampler emits
// n = (tLast−t0)/τ0 + 1 samples, and floating-point truncation can
// leave the last one just past the final input point, interpolated in
// the final interval with the weight clamped to 1. It returns an error
// when fewer than two points were pushed, like the batch Resample.
func (r *Resampler) Finish() error {
	if r.n < 2 {
		return fmt.Errorf("allan: need at least 2 samples")
	}
	total := int((r.pbT-r.t0)/r.tau0) + 1
	for ; r.k < total; r.k++ {
		u := r.t0 + float64(r.k)*r.tau0
		w := (u - r.paT) / (r.pbT - r.paT)
		if w < 0 {
			w = 0
		}
		if w > 1 {
			w = 1
		}
		if err := r.sink(r.paX*(1-w) + r.pbX*w); err != nil {
			return err
		}
		r.totalEmitted++
	}
	return nil
}

// Emitted returns the number of uniform samples delivered so far.
func (r *Resampler) Emitted() int { return r.totalEmitted }

// Fold accumulates the overlapping Allan deviation of a uniformly
// sampled series at a fixed grid of scales, one sample at a time. For
// each scale m it maintains the running sum of squared second
// differences (x_{k+2m} − 2x_{k+m} + x_k)², added in the same order as
// the batch Deviation, so the results are bit-identical. The ring of
// recent samples is sized by the largest m — the memory ceiling is
// 2·mMax+1 floats regardless of how many samples are folded.
type Fold struct {
	tau0 float64
	ms   []int
	acc  []float64
	cnt  []int

	ring []float64
	n    int // samples folded
}

// NewFold returns a fold over the given scales m (in samples); the
// Allan scale of entry i is τ = ms[i]·tau0.
func NewFold(tau0 float64, ms []int) (*Fold, error) {
	if tau0 <= 0 {
		return nil, fmt.Errorf("allan: non-positive sample spacing")
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("allan: no scales")
	}
	maxM := 0
	for _, m := range ms {
		if m < 1 {
			return nil, fmt.Errorf("allan: m must be >= 1, got %d", m)
		}
		if m > maxM {
			maxM = m
		}
	}
	return &Fold{
		tau0: tau0,
		ms:   append([]int(nil), ms...),
		acc:  make([]float64, len(ms)),
		cnt:  make([]int, len(ms)),
		ring: make([]float64, 2*maxM+1),
	}, nil
}

// Add folds one uniform sample.
func (f *Fold) Add(x float64) {
	f.ring[f.n%len(f.ring)] = x
	for i, m := range f.ms {
		if f.n < 2*m {
			continue
		}
		d := x - 2*f.ring[(f.n-m)%len(f.ring)] + f.ring[(f.n-2*m)%len(f.ring)]
		f.acc[i] += d * d
		f.cnt[i]++
	}
	f.n++
}

// N returns the number of samples folded.
func (f *Fold) N() int { return f.n }

// Points returns the current Allan curve: one Point per scale that has
// accumulated at least one squared difference, in grid order, agreeing
// bit for bit with the batch Deviation over the same samples.
func (f *Fold) Points() []Point {
	var pts []Point
	for i, m := range f.ms {
		if f.cnt[i] < 1 {
			continue
		}
		tau := float64(m) * f.tau0
		av := f.acc[i] / (2 * float64(f.cnt[i]) * tau * tau)
		pts = append(pts, Point{Tau: tau, Deviation: math.Sqrt(av), N: f.cnt[i]})
	}
	return pts
}

// CurveGrid returns the scale grid the batch Curve evaluates for a
// series of nSamples uniform samples: a logarithmic ladder with the
// given points per decade, capped at the largest supported m. Streaming
// callers that know the sample count up front (duration/τ0, as the
// experiment harness does) get a curve on exactly the batch grid.
func CurveGrid(nSamples, perDecade int) ([]int, error) {
	if perDecade < 1 {
		return nil, fmt.Errorf("allan: perDecade must be >= 1")
	}
	maxM := (nSamples - 1) / 2
	if maxM < 1 {
		return nil, fmt.Errorf("allan: series too short (%d samples)", nSamples)
	}
	var ms []int
	seen := map[int]bool{}
	for e := 0.0; ; e += 1.0 / float64(perDecade) {
		m := int(math.Pow(10, e) + 0.5)
		if m > maxM {
			break
		}
		if seen[m] {
			continue
		}
		seen[m] = true
		ms = append(ms, m)
	}
	return ms, nil
}

// Package allan implements Allan variance estimation, the traditional
// characterization of oscillator stability used in the paper's Section 3
// (Figure 3) to identify the SKM scale τ* and the 0.1 PPM stability
// bound. The Allan deviation at scale τ is interpreted as the typical
// size of the rate error y_τ(t) measured over intervals of length τ
// (equation 4); it is essentially a Haar wavelet spectral analysis.
//
//repro:deterministic
package allan

import (
	"fmt"
	"math"
)

// Point is one (τ, deviation) sample of a stability curve.
type Point struct {
	Tau       float64 // averaging scale, seconds
	Deviation float64 // Allan deviation of y_τ (dimensionless rate error)
	N         int     // number of squared differences averaged
}

// Deviation computes the overlapping Allan deviation of a uniformly
// sampled clock error series x (seconds), with sample spacing tau0, at
// scale τ = m·tau0:
//
//	σ²_y(τ) = < (x_{k+2m} − 2 x_{k+m} + x_k)² > / (2 τ²)
//
// It returns an error if the series is too short for the requested m.
func Deviation(x []float64, tau0 float64, m int) (Point, error) {
	if tau0 <= 0 {
		return Point{}, fmt.Errorf("allan: non-positive sample spacing")
	}
	if m < 1 {
		return Point{}, fmt.Errorf("allan: m must be >= 1")
	}
	n := len(x) - 2*m
	if n < 1 {
		return Point{}, fmt.Errorf("allan: series of %d too short for m=%d", len(x), m)
	}
	tau := float64(m) * tau0
	var acc float64
	for k := 0; k < n; k++ {
		d := x[k+2*m] - 2*x[k+m] + x[k]
		acc += d * d
	}
	av := acc / (2 * float64(n) * tau * tau)
	return Point{Tau: tau, Deviation: math.Sqrt(av), N: n}, nil
}

// Curve computes the Allan deviation over a logarithmic grid of scales
// from tau0 up to the largest m the series supports, with the given
// number of points per decade (4 is typical for stability plots). The
// grid is exactly CurveGrid's — streaming folds sized from the sample
// count land on the identical scales.
func Curve(x []float64, tau0 float64, perDecade int) ([]Point, error) {
	ms, err := CurveGrid(len(x), perDecade)
	if err != nil {
		return nil, err
	}
	pts := make([]Point, 0, len(ms))
	for _, m := range ms {
		p, err := Deviation(x, tau0, m)
		if err != nil {
			return nil, err
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// Resample converts an irregularly sampled error series (times ts,
// values xs) into a uniform series with spacing tau0 by linear
// interpolation. Times must be strictly increasing. The paper's traces
// are near-uniform (one sample per NTP poll) so the interpolation error
// is negligible at the scales of interest.
func Resample(ts, xs []float64, tau0 float64) ([]float64, error) {
	if len(ts) != len(xs) {
		return nil, fmt.Errorf("allan: length mismatch %d vs %d", len(ts), len(xs))
	}
	if len(ts) < 2 {
		return nil, fmt.Errorf("allan: need at least 2 samples")
	}
	if tau0 <= 0 {
		return nil, fmt.Errorf("allan: non-positive spacing")
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			return nil, fmt.Errorf("allan: times not strictly increasing at %d", i)
		}
	}
	n := int((ts[len(ts)-1]-ts[0])/tau0) + 1
	out := make([]float64, 0, n)
	j := 0
	for k := 0; k < n; k++ {
		t := ts[0] + float64(k)*tau0
		for j+1 < len(ts)-1 && ts[j+1] < t {
			j++
		}
		span := ts[j+1] - ts[j]
		w := (t - ts[j]) / span
		if w < 0 {
			w = 0
		}
		if w > 1 {
			w = 1
		}
		out = append(out, xs[j]*(1-w)+xs[j+1]*w)
	}
	return out, nil
}

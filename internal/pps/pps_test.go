package pps

import (
	"math"
	"testing"

	"repro/internal/netem"
	"repro/internal/oscillator"
	"repro/internal/timebase"
)

func TestValidate(t *testing.T) {
	if _, err := NewSync(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := NewSync(Config{PHatInit: 1e-9, Window: 2, Warmup: 2}); err == nil {
		t.Error("tiny window accepted")
	}
	if _, err := NewSync(DefaultConfig(1e-9)); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// calibrate runs n pulses through a fresh engine on a machine-room
// oscillator and returns the engine plus the oscillator.
func calibrate(t *testing.T, n int, seed uint64) (*Sync, *oscillator.Oscillator) {
	t.Helper()
	osc, err := oscillator.New(oscillator.MachineRoom(), seed)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(osc, netem.DefaultHostStamp(), 100*timebase.Nanosecond, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSync(DefaultConfig(1 / osc.Config().NominalHz))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		c, sec := src.Pulse()
		if _, err := s.ProcessPulse(c, sec); err != nil {
			t.Fatal(err)
		}
	}
	return s, osc
}

func TestRateConvergence(t *testing.T) {
	s, osc := calibrate(t, 3600, 21) // one hour of pulses
	p, _ := s.Clock()
	if e := math.Abs(timebase.PPM(p/osc.MeanPeriod() - 1)); e > 0.05 {
		t.Errorf("rate error %v PPM after 1h of PPS", e)
	}
}

func TestSubMicrosecondOffset(t *testing.T) {
	s, osc := calibrate(t, 1800, 22)
	// Read the absolute clock at an arbitrary instant and compare with
	// truth; sub-5µs expected (bounded by the base capture latency).
	tt := 1700.0
	got := s.AbsoluteTime(osc.ReadTSC(tt))
	if d := math.Abs(got - tt); d > 5*timebase.Microsecond {
		t.Errorf("TSC-GPS absolute error %v, want sub-5µs", d)
	}
}

func TestBeatsNTPScaleAccuracy(t *testing.T) {
	// The TSC-GPS clock must land well under the ~30 µs TSC-NTP regime
	// when read near the calibration window (reading far in the past
	// extrapolates against oscillator wander, as for any clock).
	s, osc := calibrate(t, 3600, 23)
	var worst float64
	for _, tt := range []float64{3520, 3550, 3575, 3595} {
		if d := math.Abs(s.AbsoluteTime(osc.ReadTSC(tt)) - tt); d > worst {
			worst = d
		}
	}
	if worst > 10*timebase.Microsecond {
		t.Errorf("worst TSC-GPS error %v", worst)
	}
}

func TestPulseOrderEnforced(t *testing.T) {
	s, err := NewSync(DefaultConfig(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ProcessPulse(1_000_000_000, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ProcessPulse(999_999_999, 2); err == nil {
		t.Error("out-of-order pulse accepted")
	}
}

func TestMissedPulsesTolerated(t *testing.T) {
	osc, err := oscillator.New(oscillator.MachineRoom(), 31)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(osc, netem.DefaultHostStamp(), 100*timebase.Nanosecond, 32)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSync(DefaultConfig(1 / osc.Config().NominalHz))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1200; i++ {
		c, sec := src.Pulse()
		if i%3 == 1 || (i > 600 && i < 700) { // heavy loss incl. a gap
			continue
		}
		if _, err := s.ProcessPulse(c, sec); err != nil {
			t.Fatal(err)
		}
	}
	tt := 1150.0
	if d := math.Abs(s.AbsoluteTime(osc.ReadTSC(tt)) - tt); d > 10*timebase.Microsecond {
		t.Errorf("error %v under pulse loss", d)
	}
}

func TestResidualNonNegativeAfterSettle(t *testing.T) {
	osc, err := oscillator.New(oscillator.MachineRoom(), 41)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(osc, netem.DefaultHostStamp(), 100*timebase.Nanosecond, 42)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSync(DefaultConfig(1 / osc.Config().NominalHz))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		c, sec := src.Pulse()
		res, err := s.ProcessPulse(c, sec)
		if err != nil {
			t.Fatal(err)
		}
		// After settling, residuals (relative to θ̂, the window minimum)
		// are capture latencies: non-negative up to reference jitter.
		if i > 200 && res.Residual-res.Theta < -2*timebase.Microsecond {
			t.Fatalf("pulse %d: residual %v below window minimum %v", i, res.Residual, res.Theta)
		}
	}
}

func BenchmarkProcessPulse(b *testing.B) {
	osc, err := oscillator.New(oscillator.MachineRoom(), 1)
	if err != nil {
		b.Fatal(err)
	}
	src, err := NewSource(osc, netem.DefaultHostStamp(), 100*timebase.Nanosecond, 2)
	if err != nil {
		b.Fatal(err)
	}
	type pulseRec struct {
		c uint64
		s float64
	}
	pulses := make([]pulseRec, 10000)
	for i := range pulses {
		c, sec := src.Pulse()
		pulses[i] = pulseRec{c, sec}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSync(DefaultConfig(1 / osc.Config().NominalHz))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pulses {
			if _, err := s.ProcessPulse(p.c, p.s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Package pps implements the "TSC-GPS" clock of the paper's conclusion:
// the same counter-based clock, calibrated from a locally attached
// pulse-per-second (PPS) reference instead of NTP packets. The RIPE NCC
// test-traffic boxes discipline their software clocks from GPS; the
// paper proposes replacing that SW-GPS arrangement with a TSC-GPS clock
// built on the same filtering principles as the TSC-NTP one:
//
//   - each pulse yields a (counter stamp, true second) pair, where the
//     stamp trails the pulse by a non-negative capture latency
//     (interrupt latency, like NTP receive stamps);
//   - rate comes from minimum-latency pulse pairs with a growing
//     baseline, exactly the paper's E*-filtered pair estimator;
//   - offset comes from the minimum residual over a window — latency is
//     one-sided, so the smallest observed residual is the least
//     contaminated, with no path-asymmetry ambiguity at all.
//
// With a ~100 ns reference and µs-scale capture latency, the TSC-GPS
// clock reaches sub-µs offsets — the "GPS-like" target the paper's
// remote synchronization approaches within a factor of ~30.
package pps

import (
	"fmt"
	"math"

	"repro/internal/netem"
	"repro/internal/oscillator"
	"repro/internal/rng"
)

// Config parameterizes the PPS calibration.
type Config struct {
	// PHatInit is the a-priori counter period (seconds per cycle).
	PHatInit float64
	// Window is the number of recent pulses retained for offset
	// estimation and local minimum tracking. Default 128.
	Window int
	// Warmup is the number of pulses before estimates are trusted.
	// Default 8.
	Warmup int
}

// DefaultConfig returns defaults for a given nominal period.
func DefaultConfig(pHatInit float64) Config {
	return Config{PHatInit: pHatInit, Window: 128, Warmup: 8}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case !(c.PHatInit > 0):
		return fmt.Errorf("pps: PHatInit must be positive")
	case c.Window < 4:
		return fmt.Errorf("pps: Window must be >= 4")
	case c.Warmup < 2:
		return fmt.Errorf("pps: Warmup must be >= 2")
	}
	return nil
}

// pulse is one captured PPS event.
type pulse struct {
	counter uint64
	second  float64
}

// Result reports the calibration state after one pulse.
type Result struct {
	// PHat is the rate estimate (seconds per cycle).
	PHat float64
	// Theta is the offset estimate of the uncorrected clock
	// C(T) = PHat·T + C at the latest pulse.
	Theta float64
	// Residual is this pulse's capture latency proxy (s).
	Residual float64
	// Warmup reports whether estimates are still settling.
	Warmup bool
}

// Sync is the TSC-GPS calibration engine. Not safe for concurrent use.
type Sync struct {
	cfg Config

	first   pulse
	have    bool
	pairJ   pulse
	p       float64
	c       float64
	history []pulse
	count   int
	theta   float64
}

// NewSync constructs an engine.
func NewSync(cfg Config) (*Sync, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Sync{cfg: cfg, p: cfg.PHatInit}, nil
}

// Clock returns the uncorrected clock definition C(T) = p·T + c.
func (s *Sync) Clock() (p, c float64) { return s.p, s.c }

// AbsoluteTime reads the offset-corrected clock at a counter value.
func (s *Sync) AbsoluteTime(counter uint64) float64 {
	return float64(counter)*s.p + s.c - s.theta
}

// residual computes the capture-latency proxy of a pulse under the
// current clock: C(stamp) − trueSecond. Latency is non-negative, so the
// minimum residual over a window is the offset estimate.
func (s *Sync) residual(pl pulse) float64 {
	return float64(pl.counter)*s.p + s.c - pl.second
}

// ProcessPulse ingests one captured pulse: the raw counter stamp and the
// true-time second it marks. Pulses must arrive in order; missed pulses
// are simply absent (loss-robust by construction, like the NTP path).
func (s *Sync) ProcessPulse(counter uint64, second float64) (Result, error) {
	if s.have && counter <= s.history[len(s.history)-1].counter {
		return Result{}, fmt.Errorf("pps: pulse out of order")
	}
	pl := pulse{counter: counter, second: second}
	s.count++

	if !s.have {
		s.have = true
		s.first = pl
		s.pairJ = pl
		s.c = second - float64(counter)*s.p // align C at the first pulse
		s.history = append(s.history, pl)
		s.theta = 0
		return Result{PHat: s.p, Theta: 0, Warmup: true}, nil
	}

	// Rate: pair the new pulse against the lowest-residual early pulse
	// (the paper's growing-baseline estimator; with one-sided noise the
	// best far anchor is the minimum-residual one).
	if s.count > 2 {
		best := s.pairJ
		// Re-anchor j to the minimum-residual pulse in the first quarter
		// of everything seen so far (bounded by the retained window).
		q := len(s.history) / 4
		if q < 1 {
			q = 1
		}
		for _, cand := range s.history[:q] {
			if s.residual(cand) < s.residual(best) {
				best = cand
			}
		}
		s.pairJ = best
	}
	if pl.counter > s.pairJ.counter && pl.second > s.pairJ.second {
		pNew := (pl.second - s.pairJ.second) / float64(pl.counter-s.pairJ.counter)
		if pNew > 0 && !math.IsInf(pNew, 0) {
			// Clock continuity on rate update, as in the NTP engine.
			s.c += float64(pl.counter) * (s.p - pNew)
			s.p = pNew
		}
	}

	s.history = append(s.history, pl)
	if len(s.history) > s.cfg.Window {
		s.history = append(s.history[:0:0], s.history[len(s.history)-s.cfg.Window:]...)
	}

	// Offset: minimum residual over the window.
	minRes := math.Inf(1)
	for _, h := range s.history {
		if r := s.residual(h); r < minRes {
			minRes = r
		}
	}
	s.theta = minRes

	return Result{
		PHat:     s.p,
		Theta:    s.theta,
		Residual: s.residual(pl),
		Warmup:   s.count <= s.cfg.Warmup,
	}, nil
}

// Source models a GPS-disciplined PPS reference as captured by the host:
// the receiver emits a pulse at each true second with ~100 ns jitter,
// and the host stamps it with its counter after an interrupt latency
// drawn from the same end-system model as NTP receive stamps.
type Source struct {
	osc    *oscillator.Oscillator
	host   *netem.HostStamp
	src    *rng.Source
	jitter float64
	next   int
}

// NewSource builds a pulse source on an oscillator realization.
func NewSource(osc *oscillator.Oscillator, hostCfg netem.HostStampConfig, jitter float64, seed uint64) (*Source, error) {
	r := rng.New(seed)
	host, err := netem.NewHostStamp(hostCfg, r.Split())
	if err != nil {
		return nil, err
	}
	return &Source{osc: osc, host: host, src: r, jitter: jitter, next: 1}, nil
}

// Pulse returns the next pulse: the true second it marks and the host
// counter stamp that captured it.
func (g *Source) Pulse() (counter uint64, second float64) {
	second = float64(g.next)
	g.next++
	at := second + g.src.Normal(0, g.jitter)
	if at < 0 {
		at = 0
	}
	return g.osc.ReadTSC(at + g.host.RecvLag()), second
}

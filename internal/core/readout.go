package core

// The published readout: the lock-free read side of the engine.
//
// The clock is read far more often than it is written — one Process
// call per poll period (tens of seconds on the live path) against
// arbitrarily many AbsoluteTime/DifferenceSpan reads per second — so
// the read state is split out into a small immutable value that
// Process publishes through an atomic pointer after every packet.
// Readers load the pointer once and evaluate pure functions of the
// snapshot; they never touch the engine's mutable filtering state, so
// reads are safe under unbounded concurrency, never block the writer,
// and never observe a half-updated clock (a torn p̂/K̂ pair would step
// the absolute clock; the snapshot swap is all-or-nothing).

import "sync/atomic"

// Readout is an immutable snapshot of everything a clock read needs:
// the affine counter→time parameters (p̂, K̂, the θ̂ anchor), the local
// rate used for linear offset prediction, and the quality/status
// fields a consumer needs to judge the reading. Values are plain —
// copying a Readout is safe and cheap, and all methods are pure
// functions, so a Readout obtained once keeps answering consistently
// even while the engine processes further packets.
//
//repro:immutable
type Readout struct {
	// P and K define the uncorrected clock C(T) = P·T + K (seconds on
	// the server timescale at counter value T).
	P float64
	K float64

	// Theta is the offset estimate θ̂ made at counter value ThetaTf;
	// HaveTheta reports whether any estimate exists yet (it does from
	// the first processed packet onward).
	Theta     float64
	ThetaTf   uint64
	HaveTheta bool

	// PLocal is the quasi-local rate estimate p̂_l and PLocalValid its
	// freshness flag; UseLocalRate mirrors the engine configuration.
	// Offset reads apply linear prediction only when all three align,
	// exactly as the engine does.
	PLocal       float64
	PLocalValid  bool
	UseLocalRate bool

	// Quality and status.
	PQuality float64 // estimated relative error bound of P
	RTTHat   float64 // current minimum-RTT estimate r̂ (s)
	Count    int     // packets processed when this readout was published
	Warmup   bool    // the engine was still in warmup

	// LastTf is the host counter value of the most recent processed
	// exchange: the staleness anchor. Age converts it to seconds.
	LastTf uint64

	// Ident is the last observed server identity (zero when none was
	// ever observed; see IdentKnown).
	Ident      Identity
	IdentKnown bool
}

// ClockAt evaluates the uncorrected clock C(T) = P·T + K.
//
//repro:readpath
func (r *Readout) ClockAt(T uint64) float64 { return float64(T)*r.P + r.K }

// ThetaAt extrapolates the offset estimate to counter value T, using
// the local rate linear prediction when it is valid (equation 23).
// This mirrors Sync.ThetaAt exactly.
//
//repro:readpath
func (r *Readout) ThetaAt(T uint64) float64 {
	if !r.HaveTheta {
		return 0
	}
	if r.UseLocalRate && r.PLocalValid && r.P > 0 {
		gl := r.PLocal/r.P - 1
		return r.Theta - gl*spanSeconds(r.ThetaTf, T, r.P)
	}
	return r.Theta
}

// AbsoluteTime reads the absolute (offset-corrected) clock
// Ca(T) = C(T) − θ̂(T) at counter value T (equation 7).
//
//repro:readpath
func (r *Readout) AbsoluteTime(T uint64) float64 {
	return r.ClockAt(T) - r.ThetaAt(T)
}

// DifferenceSpan measures the interval between two counter readings
// with the difference clock Cd (equation 6): smooth, driven only by P.
//
//repro:readpath
func (r *Readout) DifferenceSpan(T1, T2 uint64) float64 {
	return spanSeconds(T1, T2, r.P)
}

// Age returns the seconds elapsed (per the difference clock) since the
// exchange this readout was published from — the staleness bound a
// consumer should weigh a reading by. Before the first exchange it
// measures from the counter origin.
//
//repro:readpath
func (r *Readout) Age(T uint64) float64 { return spanSeconds(r.LastTf, T, r.P) }

// readout builds the current read snapshot from the engine state.
func (s *Sync) readout() Readout {
	var lastTf uint64
	if s.hist.Len() > 0 {
		lastTf = s.hist.Back().tf
	}
	return Readout{
		P:            s.p,
		K:            s.c,
		Theta:        s.theta,
		ThetaTf:      s.thetaTf,
		HaveTheta:    s.haveTh,
		PLocal:       s.pl,
		PLocalValid:  s.plValid,
		UseLocalRate: s.cfg.UseLocalRate,
		PQuality:     s.pQual,
		RTTHat:       s.rHat,
		Count:        s.count,
		Warmup:       s.count <= s.nWarm,
		LastTf:       lastTf,
		Ident:        s.ident,
		IdentKnown:   s.identKnown,
	}
}

// publish makes the current engine state visible to lock-free readers.
// Called after every mutation (Process, ObserveIdentity re-base).
func (s *Sync) publish() {
	s.pub.Store(s.readout())
}

// Readout returns the most recently published read snapshot. It is
// safe to call from any goroutine at any time, including concurrently
// with Process: the returned value is immutable. It is never nil — a
// pre-first-packet readout (nominal rate, no offset) is published at
// construction.
//
//repro:readpath
func (s *Sync) Readout() *Readout { return s.pub.Load() }

// pubSlabSize is how many publication slots one slab allocation hands
// out. Each published readout must live in its own never-reused slot
// (readers may hold the pointer indefinitely), so publication cannot be
// allocation-free — but carving slots out of a block cuts the write
// path from one heap allocation per packet to one per pubSlabSize
// packets. The trade: a reader pinning one old readout keeps its whole
// slab (≈ pubSlabSize·sizeof(Readout) ≈ 34 KiB) reachable.
const pubSlabSize = 256

// pubState is the atomic publication slot plus the writer-owned slab
// the slots are carved from, split into its own type solely so sync.go
// stays focused on the algorithms. Store is called only by the writer
// (under the engine's external serialization); Load is wait-free from
// any goroutine.
type pubState struct {
	p    atomic.Pointer[Readout]
	slab []Readout
}

// Load returns the latest published snapshot.
//
//repro:readpath
func (ps *pubState) Load() *Readout { return ps.p.Load() }

// Store copies r into a fresh never-reused slot and publishes it.
//
//repro:builder
func (ps *pubState) Store(r Readout) {
	if len(ps.slab) == 0 {
		//repro:alloc-ok amortized slab refill: one allocation per pubSlabSize publishes, the documented publication cost (PERF.md)
		ps.slab = make([]Readout, pubSlabSize)
	}
	slot := &ps.slab[0]
	ps.slab = ps.slab[1:]
	*slot = r
	ps.p.Store(slot)
}

package core

import "math"

// expNeg returns exp(-x) for x >= 0, accurate to ~1.5e-13 relative
// error.
//
// The offset filter evaluates one Gaussian weight exp(-(E^T/E)²) per
// surviving window record per packet, which makes the exponential the
// single hottest operation in the engine (≈45% of Process time with
// math.Exp). This implementation is the standard table-driven scheme:
//
//	exp(-x) = 2^(-k/256) · exp(-r),  k = round(x·256/ln2),
//	                                 r = x − k·(ln2/256), |r| ≤ ln2/512
//
// with 2^(-k/256) split into a 256-entry mantissa table of 2^(-j/256)
// and a 1024-entry exact power-of-two table, and exp(-r) a degree-3
// polynomial in Estrin form (|r| ≤ 0.00136 keeps the truncation error
// r⁴/24 below 1.4e-13 relative). The rounding to k uses the
// shift-by-1.5·2^52 trick, which yields both the integer (in the low
// mantissa bits) and its float64 value (by subtracting the shift back)
// without int↔float conversion instructions. Unlike math.Exp the whole
// evaluation needs no division and no special-case branches on the hot
// path, and its short dependency chains pipeline well across loop
// iterations.
//
// The weighted offset estimate tolerates far larger weight errors than
// this: a relative weight error η moves the weighted mean by at most
// η·spread(θ) ≈ 1.4e-13 · (a few ms in any realistic window) — well
// under the engine's 1e-12 equivalence budget against the math.Exp
// reference (see TestGoldenEquivalence, which observes ~1e-16 in
// practice because the per-weight errors largely cancel in the
// weighted mean).
//
// offsetScan and offsetScanGl inline this function's body by hand: the
// call is most of the loop cost and the function exceeds the
// compiler's inlining budget. Keep them in lockstep.
func expNeg(x float64) float64 {
	if x > 680 {
		// exp(-680) ≈ 5e-296: zero for every caller's purpose, and
		// stopping here bounds the scale-table index.
		return 0
	}
	if !(x >= 0) {
		// Negative or NaN: out of the hot path's domain, delegate.
		return math.Exp(-x)
	}
	t := x*invLn2x256 + expShift
	k := int(int32(math.Float64bits(t)))
	kf := t - expShift
	// Cody–Waite two-term reduction: ln2Hi256's mantissa has enough
	// trailing zeros that kf*ln2Hi256 is exact for k < 2^19.
	r := (x - kf*ln2Hi256) - kf*ln2Lo256
	// exp(-r) = 1 − r + r²/2 − r³/6 in Estrin form, |r| ≤ ln2/512.
	r2 := r * r
	q := (1 - r) + r2*(0.5-r*(1.0/6))
	return expNegTab[k&255] * expScaleTab[(k>>8)&1023] * q
}

const (
	invLn2x256 = 256 / math.Ln2 // 3.6932993046757463e+02
	// ln2/256 split so the high part times any |k| < 2^19 is exact:
	// ln2Hi256 = Ln2Hi/256 with Ln2Hi's low 32 mantissa bits zero.
	ln2Hi256 = 6.93147180369123816490e-01 / 256
	ln2Lo256 = 1.90821492927058770002e-10 / 256
	// expShift: adding it forces a float64's low mantissa bits to hold
	// round-to-nearest(x) for 0 ≤ x < 2^31.
	expShift = 1.5 * (1 << 52)
)

// expNegTab[j] = 2^(-j/256), j = 0..255.
var expNegTab = func() (t [256]float64) {
	for j := range t {
		t[j] = math.Exp2(-float64(j) / 256)
	}
	return
}()

// expScaleTab[j] = 2^(-j): the exponent part of the reduction. Sized
// and masked to 1024 so the compiler drops the bounds check; entries
// past the x ≤ 680 guard (k>>8 ≤ 981) are never read.
var expScaleTab = func() (t [1024]float64) {
	for j := range t {
		t[j] = math.Exp2(-float64(j))
	}
	return
}()

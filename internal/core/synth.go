package core

import (
	"repro/internal/rng"
	"repro/internal/timebase"
)

// SynthTrace generates a deterministic stream of n plausible NTP
// exchanges directly (no simulator): fixed 16 s polling of a 500 MHz
// counter against a server 300 µs away, exponential queueing noise,
// and a 2% fraction of congested packets with a Pareto tail — enough
// traffic realism to exercise the filter's accept/reject paths
// without the cost of the full end-system model.
//
// It is the single source of the throughput-measurement workload:
// BenchmarkProcess (bench_test.go) and `cmd/experiments -perf` both
// consume it, so their ns/packet numbers stay comparable.
func SynthTrace(n int) []Input {
	src := rng.New(99)
	const p = 2e-9
	ins := make([]Input, 0, n)
	counter := uint64(1000)
	serverT := 1000.0
	for i := 0; i < n; i++ {
		gap := 16.0
		counter += uint64(gap / p)
		serverT += gap
		rtt := 300*timebase.Microsecond + src.Exponential(60*timebase.Microsecond)
		if src.Bool(0.02) {
			rtt += src.Pareto(timebase.Millisecond, 1.5)
		}
		ta := counter
		tf := ta + uint64(rtt/p)
		tb := serverT + rtt/2
		te := tb + 20*timebase.Microsecond
		ins = append(ins, Input{Ta: ta, Tf: tf, Tb: tb, Te: te})
		counter = tf
	}
	return ins
}

package core

import (
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/timebase"
)

// TestReadoutEquivalence pins the tentpole contract of the published
// read path: every read the engine answers directly (the pre-refactor
// mutex path of the public wrappers) must be answered bit-identically
// by the latest published Readout, after every packet, including
// local-rate prediction, identity re-bases, and warmup.
func TestReadoutEquivalence(t *testing.T) {
	for _, local := range []bool{false, true} {
		cfg := DefaultConfig(2e-9, 16)
		cfg.UseLocalRate = local
		s, err := NewSync(cfg)
		if err != nil {
			t.Fatal(err)
		}

		// Pre-first-packet readout: defined, nominal rate, no offset.
		r := s.Readout()
		if r == nil {
			t.Fatal("no readout published at construction")
		}
		if r.Count != 0 || r.HaveTheta || r.P != cfg.PHatInit {
			t.Fatalf("initial readout = %+v", r)
		}
		if got, want := r.AbsoluteTime(12345), s.AbsoluteTime(12345); got != want {
			t.Fatalf("initial AbsoluteTime: readout %v, engine %v", got, want)
		}

		ins := SynthTrace(3000)
		for i, in := range ins {
			if _, err := s.Process(in); err != nil {
				t.Fatal(err)
			}
			if i%5 == 0 {
				// Exercise the identity path too: a change at i==1500
				// re-bases the RTT filter and must republish.
				id := Identity{RefID: 0xc0a80101, Stratum: 1}
				if i >= 1500 {
					id.RefID = 0xc0a80202
				}
				s.ObserveIdentity(id)
			}
			r := s.Readout()
			if r.Count != s.Count() {
				t.Fatalf("packet %d: readout count %d, engine %d", i, r.Count, s.Count())
			}
			if r.RTTHat != s.RTTHat() {
				t.Fatalf("packet %d: readout r̂ %v, engine %v", i, r.RTTHat, s.RTTHat())
			}
			if th, ok := s.Theta(); r.Theta != th || r.HaveTheta != ok {
				t.Fatalf("packet %d: readout θ̂ (%v,%v), engine (%v,%v)", i, r.Theta, r.HaveTheta, th, ok)
			}
			p, c := s.Clock()
			if r.P != p || r.K != c {
				t.Fatalf("packet %d: readout clock (%v,%v), engine (%v,%v)", i, r.P, r.K, p, c)
			}
			for _, T := range []uint64{in.Tf, in.Tf + 1, in.Tf + uint64(100/r.P)} {
				if got, want := r.AbsoluteTime(T), s.AbsoluteTime(T); got != want {
					t.Fatalf("packet %d: AbsoluteTime(%d): readout %v, engine %v", i, T, got, want)
				}
				if got, want := r.ThetaAt(T), s.ThetaAt(T); got != want {
					t.Fatalf("packet %d: ThetaAt(%d): readout %v, engine %v", i, T, got, want)
				}
			}
			if got, want := r.DifferenceSpan(in.Ta, in.Tf), s.DifferenceSpan(in.Ta, in.Tf); got != want {
				t.Fatalf("packet %d: DifferenceSpan: readout %v, engine %v", i, got, want)
			}
			if r.LastTf != in.Tf {
				t.Fatalf("packet %d: staleness anchor %d, want %d", i, r.LastTf, in.Tf)
			}
		}
	}
}

// TestReadoutEquivalenceSimScenarios runs the golden sim scenarios'
// shapes — steady state, an upward level shift, and the local-rate
// refinement — and checks after every packet that the published
// readout reads are identical to the engine's direct reads (the
// pre-refactor mutex path evaluated exactly these).
func TestReadoutEquivalenceSimScenarios(t *testing.T) {
	scenarios := map[string]func() sim.Scenario{
		"steady": func() sim.Scenario {
			return sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, 6*timebase.Hour, 1001)
		},
		"levelshift": func() sim.Scenario {
			sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, 6*timebase.Hour, 1003)
			sc.Server.Forward.Shifts = []netem.Shift{{At: 3 * timebase.Hour, Delta: 0.9 * timebase.Millisecond}}
			return sc
		},
	}
	for name, mk := range scenarios {
		for _, local := range []bool{false, true} {
			t.Run(name, func(t *testing.T) {
				tr, err := sim.Generate(mk())
				if err != nil {
					t.Fatal(err)
				}
				cfg := DefaultConfig(1.0/548655270, 16)
				cfg.UseLocalRate = local
				s, err := NewSync(cfg)
				if err != nil {
					t.Fatal(err)
				}
				for i, e := range tr.Completed() {
					if _, err := s.Process(Input{Ta: e.Ta, Tf: e.Tf, Tb: e.Tb, Te: e.Te}); err != nil {
						t.Fatal(err)
					}
					r := s.Readout()
					for _, T := range []uint64{e.Tf, e.Tf + uint64(8/r.P)} {
						if got, want := r.AbsoluteTime(T), s.AbsoluteTime(T); got != want {
							t.Fatalf("packet %d: AbsoluteTime(%d): readout %v, engine %v", i, T, got, want)
						}
					}
					if got, want := r.DifferenceSpan(e.Ta, e.Tf), s.DifferenceSpan(e.Ta, e.Tf); got != want {
						t.Fatalf("packet %d: DifferenceSpan: readout %v, engine %v", i, got, want)
					}
					if r.RTTHat != s.RTTHat() || r.Count != s.Count() {
						t.Fatalf("packet %d: readout (r̂ %v, n %d) vs engine (%v, %d)",
							i, r.RTTHat, r.Count, s.RTTHat(), s.Count())
					}
				}
			})
		}
	}
}

// TestReadoutImmutable: a readout held across further Process calls
// keeps answering from its own snapshot — the engine moving on must not
// change an already-obtained reading.
func TestReadoutImmutable(t *testing.T) {
	s, err := NewSync(DefaultConfig(2e-9, 16))
	if err != nil {
		t.Fatal(err)
	}
	ins := SynthTrace(600)
	for _, in := range ins[:300] {
		if _, err := s.Process(in); err != nil {
			t.Fatal(err)
		}
	}
	r := s.Readout()
	T := ins[299].Tf + 1000
	before := r.AbsoluteTime(T)
	for _, in := range ins[300:] {
		if _, err := s.Process(in); err != nil {
			t.Fatal(err)
		}
	}
	if after := r.AbsoluteTime(T); after != before {
		t.Fatalf("held readout changed its answer: %v -> %v", before, after)
	}
	if s.Readout() == r {
		t.Fatal("publication did not swap the snapshot pointer")
	}
}

// TestReadoutAge: the staleness bound grows with the counter at the
// difference-clock rate.
func TestReadoutAge(t *testing.T) {
	s, err := NewSync(DefaultConfig(2e-9, 16))
	if err != nil {
		t.Fatal(err)
	}
	ins := SynthTrace(40)
	for _, in := range ins {
		if _, err := s.Process(in); err != nil {
			t.Fatal(err)
		}
	}
	r := s.Readout()
	T := r.LastTf + uint64(10/r.P) // ~10 s later
	if age := r.Age(T); age < 9.9*0.99 || age > 10.1 {
		t.Fatalf("Age after ~10 s = %v", age)
	}
	if age := r.Age(r.LastTf); age != 0 {
		t.Fatalf("Age at the anchor = %v", age)
	}
}

package core

import "math"

// updateOffset runs the four-stage offset algorithm of Section 5.3 at the
// arrival of the current packet, with the warmup and lost-packet
// refinements of Section 6.1:
//
//	(i)   total per-packet error E^T_i = E_i + ε·age_i
//	(ii)  quality weights w_i = exp(−(E^T_i/E)²) over the τ′ window
//	(iii) weighted combination, optionally with local-rate linear
//	      prediction; fallback to the last estimate when quality is
//	      extremely poor (min E^T > E**)
//	(iv)  sanity check: successive estimates may not differ by more than
//	      E_s, otherwise the previous value is duplicated
func (s *Sync) updateOffset(rec *record, res *Result) {
	e := s.cfg.E()
	if s.count <= s.nWarm {
		e *= s.cfg.WarmupEInflation
	}
	eStarStar := s.cfg.EStarStarFactor * e

	n := len(s.hist)
	start := n - s.nOff
	if start < 0 {
		start = 0
	}
	win := s.hist[start:]

	// Local-rate residual for linear prediction (equation 21): the
	// estimate of the rate error of C(t) relative to true time.
	gl := 0.0
	useGl := s.cfg.UseLocalRate && s.plValid && s.pl > 0 && s.p > 0
	if useGl {
		gl = s.pl/s.p - 1
	}

	// Stage (i)+(ii): total errors and weights.
	now := rec.tf
	minET := math.Inf(1)
	sumW, sumWTheta := 0.0, 0.0
	for idx := range win {
		r := &win[idx]
		age := spanSeconds(r.tf, now, s.p)
		et := r.pointErr + s.cfg.AgingRate*age
		if et < minET {
			minET = et
		}
		w := math.Exp(-(et / e) * (et / e))
		pred := r.theta
		if useGl {
			pred -= gl * age
		}
		sumW += w
		sumWTheta += w * pred
	}

	var cand float64
	switch {
	case !s.haveTh:
		// First packet: the estimate is the naive one; with the clock
		// aligned to the server at the first exchange this is the
		// paper's "first estimate is just the server timestamp".
		cand = rec.theta
	case minET > eStarStar || sumW == 0:
		res.PoorQuality = true
		prevAge := spanSeconds(s.thetaTf, now, s.p)
		prevPred := s.theta
		if useGl {
			prevPred -= gl * prevAge
		}
		gapped := false
		if n >= 2 {
			gapped = spanSeconds(s.hist[n-2].tf, now, s.p) > s.cfg.LocalRateWindow/2
		}
		if gapped {
			// After a long outage the stored window is stale: blend the
			// new naive estimate (weighted by its point error) with the
			// aged previous estimate, to let fresh data in quickly.
			wNew := math.Exp(-(rec.pointErr / e) * (rec.pointErr / e))
			agedErr := s.thetaErr + s.cfg.AgingRate*prevAge
			wOld := math.Exp(-(agedErr / e) * (agedErr / e))
			if wNew+wOld > 0 {
				cand = (wNew*rec.theta + wOld*prevPred) / (wNew + wOld)
			} else {
				cand = prevPred
			}
			s.thetaErr = math.Min(rec.pointErr, agedErr)
		} else {
			cand = prevPred
			s.thetaErr += s.cfg.AgingRate * prevAge
		}
	default:
		cand = sumWTheta / sumW
		s.thetaErr = minET
	}

	// Stage (iv): sanity check. The threshold is orders of magnitude
	// above any physical inter-packet offset increment; it exists to
	// bound damage from events like wrong server timestamps, never to
	// tune performance (which would risk lock-out). It ages at the
	// clock's rate uncertainty so that legitimate drift accumulated
	// since the last trusted estimate is never rejected: the hardware
	// stability bound once p̂ is calibrated, or the current pair quality
	// bound while it is still worse than that (early life, where C(t)
	// genuinely drifts at multiple PPM). Aging is also what re-admits
	// fresh data after a period of rejection, preventing permanent
	// lock-out. During warmup the check is off entirely — the paper's
	// warmup trusts nothing and locks nothing.
	rateUnc := s.cfg.HardwareRateBound
	if s.havePair && s.pQual > rateUnc {
		rateUnc = s.pQual
	}
	limit := s.cfg.OffsetSanity + rateUnc*spanSeconds(s.thetaTf, now, s.p)
	if s.haveTh && s.count > s.nWarm && math.Abs(cand-s.theta) > limit {
		res.OffsetSanityTriggered = true
		cand = s.theta // duplicate the most recent trusted value
	} else {
		s.thetaTf = now
	}

	s.theta = cand
	s.haveTh = true
}

package core

import (
	"math"
	"sort"
)

// weightCutoffBase is the quality-width multiple beyond which a
// record's Gaussian weight is treated as zero in the offset filter:
// E^T > 9·E gives w < exp(−81) ≈ 7e-36, at least twenty orders of
// magnitude under any surviving weight whenever the filter is not in
// its poor-quality fallback (min E^T ≤ E** means the best weight is at
// least exp(−36)), so skipping these records moves θ̂ by far less than
// the engine's 1e-12 equivalence budget. The effective cutoff is
// max(weightCutoffBase, EStarStarFactor)·E so that the E** fallback
// decision and the stored min E^T stay bit-identical to the full scan:
// every record skipped for weight purposes still lies strictly above
// the fallback threshold.
const weightCutoffBase = 9

// updateOffset runs the four-stage offset algorithm of Section 5.3 at the
// arrival of the current packet, with the warmup and lost-packet
// refinements of Section 6.1:
//
//	(i)   total per-packet error E^T_i = E_i + ε·age_i
//	(ii)  quality weights w_i = exp(−(E^T_i/E)²) over the τ′ window
//	(iii) weighted combination, optionally with local-rate linear
//	      prediction; fallback to the last estimate when quality is
//	      extremely poor (min E^T > E**)
//	(iv)  sanity check: successive estimates may not differ by more than
//	      E_s, otherwise the previous value is duplicated
//
// This is the engine's only per-packet loop. It is bounded by the
// number of records whose aging term alone stays under the weight
// cutoff: point errors are non-negative, so E^T_i ≥ ε·age_i, and ages
// increase monotonically toward the old end of the window — records
// beyond the age horizon (cutoff/ε seconds) are located by binary
// search and never touched. Each surviving record costs one fused
// table-driven exponential (expNeg) instead of a math.Exp call.
func (s *Sync) updateOffset(rec *record, res *Result) {
	e := s.cfg.E()
	if s.count <= s.nWarm {
		e *= s.cfg.WarmupEInflation
	}
	eStarStar := s.cfg.EStarStarFactor * e
	cutoff := weightCutoffBase * e
	if eStarStar > cutoff {
		cutoff = eStarStar
	}
	// Validate bounds EStarStarFactor below 26, so cutoff < 26·E and
	// the scan's exponential argument stays inside its reduction range
	// ((E^T/E)² < 676); the scans also carry their own argument guard
	// for defense in depth.

	n := s.hist.Len()
	start := n - s.nOff
	if start < 0 {
		start = 0
	}
	now := rec.tf
	fnow := float64(now)
	p := s.p
	eps := s.cfg.AgingRate
	epsP := eps * p

	// Age horizon: skip the contiguous old prefix whose aging term
	// alone exceeds the cutoff (E^T ≥ ε·age there, so none of it can
	// contribute weight, and none of it can hold min E^T when the
	// fallback decision is in play). Ages decrease with position, so
	// the boundary is found by binary search; for the paper's window
	// settings the horizon is far wider than τ′ and this never fires.
	if epsP*(fnow-s.scan.At(start).ftf) > cutoff {
		lim := n - 1 - start
		//repro:alloc-ok cold branch (the horizon never binds at paper window settings) and sort.Search does not retain f, so the closure stays on the stack; BenchmarkProcess asserts 0 allocs/op
		start += sort.Search(lim, func(i int) bool {
			return epsP*(fnow-s.scan.At(start+i).ftf) <= cutoff
		})
	}

	// Local-rate residual for linear prediction (equation 21): the
	// estimate of the rate error of C(t) relative to true time.
	gl := 0.0
	useGl := s.cfg.UseLocalRate && s.plValid && s.pl > 0 && s.p > 0
	if useGl {
		gl = s.pl/s.p - 1
	}

	// Stage (i)+(ii): total errors and weights, oldest to newest (the
	// same summation order as the direct implementation).
	invE := 1 / e
	minET := math.Inf(1)
	sumW, sumWTheta := 0.0, 0.0
	winA, winB := s.scan.Slices(start, n)
	if useGl {
		minET, sumW, sumWTheta = offsetScanGl(winA, fnow, p, eps, invE, cutoff, gl)
		if len(winB) > 0 {
			m, w2, t2 := offsetScanGl(winB, fnow, p, eps, invE, cutoff, gl)
			if m < minET {
				minET = m
			}
			sumW += w2
			sumWTheta += t2
		}
	} else {
		minET, sumW, sumWTheta = offsetScan(winA, fnow, epsP, invE, cutoff)
		if len(winB) > 0 {
			m, w2, t2 := offsetScan(winB, fnow, epsP, invE, cutoff)
			if m < minET {
				minET = m
			}
			sumW += w2
			sumWTheta += t2
		}
	}

	var cand float64
	switch {
	case !s.haveTh:
		// First packet: the estimate is the naive one; with the clock
		// aligned to the server at the first exchange this is the
		// paper's "first estimate is just the server timestamp".
		cand = rec.theta
	case minET > eStarStar || sumW == 0:
		res.PoorQuality = true
		prevAge := spanSeconds(s.thetaTf, now, s.p)
		prevPred := s.theta
		if useGl {
			prevPred -= gl * prevAge
		}
		gapped := false
		if n >= 2 {
			gapped = spanSeconds(s.hist.At(n-2).tf, now, s.p) > s.cfg.LocalRateWindow/2
		}
		if gapped {
			// After a long outage the stored window is stale: blend the
			// new naive estimate (weighted by its point error) with the
			// aged previous estimate, to let fresh data in quickly.
			wNew := math.Exp(-(rec.pointErr / e) * (rec.pointErr / e))
			agedErr := s.thetaErr + s.cfg.AgingRate*prevAge
			wOld := math.Exp(-(agedErr / e) * (agedErr / e))
			if wNew+wOld > 0 {
				cand = (wNew*rec.theta + wOld*prevPred) / (wNew + wOld)
			} else {
				cand = prevPred
			}
			s.thetaErr = math.Min(rec.pointErr, agedErr)
		} else {
			cand = prevPred
			s.thetaErr += s.cfg.AgingRate * prevAge
		}
	default:
		cand = sumWTheta / sumW
		s.thetaErr = minET
	}

	// Stage (iv): sanity check. The threshold is orders of magnitude
	// above any physical inter-packet offset increment; it exists to
	// bound damage from events like wrong server timestamps, never to
	// tune performance (which would risk lock-out). It ages at the
	// clock's rate uncertainty so that legitimate drift accumulated
	// since the last trusted estimate is never rejected: the hardware
	// stability bound once p̂ is calibrated, or the current pair quality
	// bound while it is still worse than that (early life, where C(t)
	// genuinely drifts at multiple PPM). Aging is also what re-admits
	// fresh data after a period of rejection, preventing permanent
	// lock-out. During warmup the check is off entirely — the paper's
	// warmup trusts nothing and locks nothing.
	rateUnc := s.cfg.HardwareRateBound
	if s.havePair && s.pQual > rateUnc {
		rateUnc = s.pQual
	}
	limit := s.cfg.OffsetSanity + rateUnc*spanSeconds(s.thetaTf, now, s.p)
	if s.haveTh && s.count > s.nWarm && math.Abs(cand-s.theta) > limit {
		res.OffsetSanityTriggered = true
		cand = s.theta // duplicate the most recent trusted value
	} else {
		s.thetaTf = now
	}

	s.theta = cand
	s.haveTh = true
}

// offsetScan is stages (i)+(ii) over one contiguous window segment:
// total errors E^T = E_i + ε·age, the running minimum, and the
// weighted sums with w = exp(−(E^T/E)²). Records beyond the weight
// cutoff contribute to the minimum but not to the sums (their weights
// are below exp(−81); see weightCutoffBase).
//
// This is the engine's hottest loop, so the Gaussian weight is the
// expNeg scheme from expneg.go spelled out inline — the function
// exceeds the compiler's inlining budget and a call per record is most
// of the loop's cost — with the domain guard reduced to one clamp:
// (E^T/E)² is non-negative by construction and below 676 whenever the
// cutoff test passes and point errors are non-negative (Validate
// bounds EStarStarFactor under 26); the clamp to 676 makes an
// invariant breach yield weight ≈ 0 instead of a wrapped table index.
// The loop is two-way
// unrolled with independent accumulator pairs so consecutive records'
// exponential chains overlap (the evaluation is latency-bound
// otherwise), and it is kept free of receiver field accesses so every
// loop-invariant stays in a register.
//
// ε·age is computed as (ε·p)·(float64(Tf_now) − float64(Tf_i)) with
// the product ε·p folded once per scan; this differs from the
// reference's ε·((Tf_now − Tf_i)·p) by a couple of roundings, ~1e-19 s
// on E^T — invisible at the 1e-12 equivalence budget.
func offsetScan(win []scanRec, fnow, epsP, invE, cutoff float64) (minET, sumW, sumWTheta float64) {
	minET = math.Inf(1)
	var sw0, st0, sw1, st1 float64
	n := len(win)
	i := 0
	for ; i+1 < n; i += 2 {
		pair := win[i : i+2 : i+2] // one bounds check for the pair
		r0, r1 := &pair[0], &pair[1]
		et0 := r0.pointErr + epsP*(fnow-r0.ftf)
		et1 := r1.pointErr + epsP*(fnow-r1.ftf)
		minET = min(minET, et0)
		minET = min(minET, et1)
		if et0 <= cutoff {
			x := et0 * invE
			arg := x * x
			if arg >= 676 {
				arg = 676 // defense: weight 0 to scan precision either way
			}
			t := arg*invLn2x256 + expShift
			k := int(int32(math.Float64bits(t)))
			kf := t - expShift
			rr := (arg - kf*ln2Hi256) - kf*ln2Lo256
			r2 := rr * rr
			q := (1 - rr) + r2*(0.5-rr*(1.0/6))
			w := expNegTab[k&255] * expScaleTab[(k>>8)&1023] * q
			sw0 += w
			st0 += w * r0.theta
		}
		if et1 <= cutoff {
			x := et1 * invE
			arg := x * x
			if arg >= 676 {
				arg = 676 // defense: weight 0 to scan precision either way
			}
			t := arg*invLn2x256 + expShift
			k := int(int32(math.Float64bits(t)))
			kf := t - expShift
			rr := (arg - kf*ln2Hi256) - kf*ln2Lo256
			r2 := rr * rr
			q := (1 - rr) + r2*(0.5-rr*(1.0/6))
			w := expNegTab[k&255] * expScaleTab[(k>>8)&1023] * q
			sw1 += w
			st1 += w * r1.theta
		}
	}
	for ; i < n; i++ {
		r := &win[i]
		et := r.pointErr + epsP*(fnow-r.ftf)
		minET = min(minET, et)
		if et <= cutoff {
			x := et * invE
			arg := x * x
			if arg >= 676 {
				arg = 676
			}
			t := arg*invLn2x256 + expShift
			k := int(int32(math.Float64bits(t)))
			kf := t - expShift
			rr := (arg - kf*ln2Hi256) - kf*ln2Lo256
			r2 := rr * rr
			q := (1 - rr) + r2*(0.5-rr*(1.0/6))
			w := expNegTab[k&255] * expScaleTab[(k>>8)&1023] * q
			sw0 += w
			st0 += w * r.theta
		}
	}
	return minET, sw0 + sw1, st0 + st1
}

// offsetScanGl is offsetScan with the local-rate linear prediction of
// equation (21) applied to each record's contribution: the θ_i are
// extrapolated by −γ_l·age before weighting. Kept as a separate
// specialization so the common path (local rate disabled or not yet
// valid) pays nothing for the extra multiply-adds, and written without
// the unroll: the refinement path is already the expensive
// configuration and profits more from simplicity. The same 676
// argument clamp as offsetScan bounds the exponential here.
func offsetScanGl(win []scanRec, fnow, p, eps, invE, cutoff, gl float64) (minET, sumW, sumWTheta float64) {
	minET = math.Inf(1)
	for idx := range win {
		r := &win[idx]
		age := (fnow - r.ftf) * p
		et := r.pointErr + eps*age
		minET = min(minET, et)
		if et > cutoff {
			continue
		}
		x := et * invE
		arg := x * x
		if arg >= 676 {
			arg = 676
		}
		t := arg*invLn2x256 + expShift
		k := int(int32(math.Float64bits(t)))
		kf := t - expShift
		rr := (arg - kf*ln2Hi256) - kf*ln2Lo256
		r2 := rr * rr
		q := (1 - rr) + r2*(0.5-rr*(1.0/6))
		w := expNegTab[k&255] * expScaleTab[(k>>8)&1023] * q
		sumW += w
		sumWTheta += w * (r.theta - gl*age)
	}
	return minET, sumW, sumWTheta
}

package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/timebase"
)

// synthExchanges builds a syntactically valid exchange sequence from
// arbitrary fuzz material: monotone counter stamps, loosely plausible
// server stamps. The values can be wildly wrong (that is the point);
// only the structural preconditions of Process are enforced.
func synthExchanges(seed uint64, n int) []Input {
	src := rng.New(seed)
	const p = 2e-9 // 500 MHz
	ins := make([]Input, 0, n)
	counter := uint64(1000)
	serverT := 1000.0
	for i := 0; i < n; i++ {
		gap := 1 + src.Float64()*30 // 1-31 s between exchanges
		counter += uint64(gap / p)
		serverT += gap

		rtt := 100e-6 + src.Exponential(300e-6)
		if src.Bool(0.02) {
			rtt += src.Pareto(5e-3, 1.5) // gross congestion
		}
		ta := counter
		tf := ta + uint64(rtt/p)

		tb := serverT + rtt/3 + src.Normal(0, 50e-6)
		te := tb + 20e-6 + src.Exponential(10e-6)
		if src.Bool(0.01) {
			// Corrupt server stamps outright (faulty server).
			off := src.Normal(0, 0.5)
			tb += off
			te += off
		}
		ins = append(ins, Input{Ta: ta, Tf: tf, Tb: tb, Te: te})
		counter = tf
	}
	return ins
}

// TestPropertyEngineTotal runs the engine over adversarial exchange
// sequences and asserts its unconditional invariants:
//
//  1. Process never errors on structurally valid input and never panics;
//  2. the rate estimate stays positive and finite;
//  3. r̂ is never above the smallest RTT seen since the last upward
//     shift re-base (within float tolerance);
//  4. offset estimates never jump by more than the aged sanity bound;
//  5. the clock definition (p, c) always evaluates finitely.
func TestPropertyEngineTotal(t *testing.T) {
	f := func(seed uint64) bool {
		ins := synthExchanges(seed, 400)
		cfg := DefaultConfig(2e-9, 16)
		s, err := NewSync(cfg)
		if err != nil {
			t.Fatal(err)
		}
		prevTheta := math.NaN()
		lastChangeTf := uint64(0) // counter at the last accepted θ̂ update
		maxQualSince := 0.0
		for _, in := range ins {
			res, err := s.Process(in)
			if err != nil {
				t.Logf("unexpected Process error: %v", err)
				return false
			}
			if !(res.PHat > 0) || math.IsInf(res.PHat, 0) {
				t.Logf("bad rate estimate %v", res.PHat)
				return false
			}
			if res.RTTHat > res.RTT+1e-12 && !res.UpwardShiftDetected {
				t.Logf("r̂ %v above observed RTT %v", res.RTTHat, res.RTT)
				return false
			}
			if res.PQuality > maxQualSince {
				maxQualSince = res.PQuality
			}
			if !math.IsNaN(prevTheta) && !res.Warmup && res.ThetaHat != prevTheta {
				// The sanity contract: an accepted update differs from
				// the previous trusted estimate by at most E_s plus the
				// rate uncertainty integrated since that estimate.
				age := float64(in.Tf-lastChangeTf) * res.PHat
				bound := 1.01 * (cfg.OffsetSanity + (maxQualSince+cfg.HardwareRateBound)*age)
				if d := math.Abs(res.ThetaHat - prevTheta); d > bound {
					t.Logf("offset jumped %v > bound %v (age %v)", d, bound, age)
					return false
				}
			}
			if !math.IsNaN(prevTheta) && res.ThetaHat != prevTheta || math.IsNaN(prevTheta) {
				lastChangeTf = in.Tf
				maxQualSince = res.PQuality
			}
			if math.IsNaN(res.ClockP) || math.IsNaN(res.ClockC) {
				t.Log("clock definition NaN")
				return false
			}
			prevTheta = res.ThetaHat
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDifferenceClockLinear: the difference clock is exactly
// linear in the counter — offset corrections never leak into it.
func TestPropertyDifferenceClockLinear(t *testing.T) {
	ins := synthExchanges(7, 300)
	s, err := NewSync(DefaultConfig(2e-9, 16))
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range ins {
		if _, err := s.Process(in); err != nil {
			t.Fatal(err)
		}
	}
	f := func(a, b, c uint64) bool {
		// Additivity: span(a,b) + span(b,c) == span(a,c) exactly up to
		// float rounding.
		ab := s.DifferenceSpan(a, b)
		bc := s.DifferenceSpan(b, c)
		ac := s.DifferenceSpan(a, c)
		return math.Abs(ab+bc-ac) <= 1e-9*(math.Abs(ab)+math.Abs(bc)+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyAbsoluteMinusDifference: Ca differs from the raw clock by
// exactly the (extrapolated) offset estimate — equation (7).
func TestPropertyAbsoluteMinusDifference(t *testing.T) {
	ins := synthExchanges(9, 200)
	s, err := NewSync(DefaultConfig(2e-9, 16))
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range ins {
		if _, err := s.Process(in); err != nil {
			t.Fatal(err)
		}
	}
	p, c := s.Clock()
	f := func(counter uint64) bool {
		want := float64(counter)*p + c - s.ThetaAt(counter)
		got := s.AbsoluteTime(counter)
		return math.Abs(got-want) <= 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestExtremeServerCorruption: hours of completely garbage server
// stamps must not destroy the clock rate.
func TestExtremeServerCorruption(t *testing.T) {
	src := rng.New(11)
	const p = 2e-9
	cfg := DefaultConfig(p, 16)
	s, err := NewSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counter := uint64(1000)
	serverT := 0.0
	var lastGoodP float64
	for i := 0; i < 3000; i++ {
		counter += uint64(16 / p)
		serverT += 16
		rtt := 300e-6 + src.Exponential(50e-6)
		ta := counter
		tf := ta + uint64(rtt/p)
		tb := serverT + rtt/3
		te := tb + 20e-6
		if i > 1000 && i < 2000 {
			// Server goes insane for ~4.5 hours.
			tb += src.Normal(0, 10)
			te = tb + 20e-6
		}
		res, err := s.Process(Input{Ta: ta, Tf: tf, Tb: tb, Te: te})
		if err != nil {
			t.Fatal(err)
		}
		if i == 999 {
			lastGoodP = res.PHat
		}
		counter = tf
	}
	final, _ := s.Clock()
	if rel := math.Abs(final/lastGoodP - 1); rel > timebase.FromPPM(1) {
		t.Errorf("rate moved %v PPM through server insanity", timebase.PPM(rel))
	}
}

// TestDuplicateTimestampsRejected: identical or regressing counter
// values must be refused, never corrupting state.
func TestDuplicateTimestampsRejected(t *testing.T) {
	s, err := NewSync(DefaultConfig(2e-9, 16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(Input{Ta: 100, Tf: 200, Tb: 1, Te: 1.0001}); err != nil {
		t.Fatal(err)
	}
	before, _ := s.Clock()
	if _, err := s.Process(Input{Ta: 150, Tf: 200, Tb: 2, Te: 2.0001}); err == nil {
		t.Error("duplicate Tf accepted")
	}
	after, _ := s.Clock()
	if before != after {
		t.Error("rejected input mutated clock state")
	}
}

// TestWindowSlideKeepsEstimates: sliding the top window must not move
// the clock discontinuously.
func TestWindowSlideKeepsEstimates(t *testing.T) {
	cfg := DefaultConfig(2e-9, 16)
	cfg.TopWindow = 64 * 16 // tiny top window: slides often
	cfg.WarmupSamples = 8
	cfg.OffsetWindow = 8 * 16
	cfg.ShiftWindow = 16 * 16
	cfg.LocalRateWindow = 16 * 16
	s, err := NewSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(13)
	const p = 2e-9
	counter := uint64(1000)
	serverT := 0.0
	var prev float64
	havePrev := false
	for i := 0; i < 1000; i++ {
		counter += uint64(16 / p)
		serverT += 16
		rtt := 300e-6 + src.Exponential(50e-6)
		ta := counter
		tf := ta + uint64(rtt/p)
		res, err := s.Process(Input{Ta: ta, Tf: tf, Tb: serverT + rtt/3, Te: serverT + rtt/3 + 20e-6})
		if err != nil {
			t.Fatal(err)
		}
		read := float64(tf)*res.ClockP + res.ClockC
		if havePrev {
			// Clock reads advance by ~16 s between packets regardless of
			// window slides.
			if d := read - prev; d < 10 || d > 40 {
				t.Fatalf("clock read jumped by %v s at packet %d", d, i)
			}
		}
		prev, havePrev = read, true
		counter = tf
	}
}

package core

// Server-change detection — the extension the paper sketches in
// Section 2.3: "server identity information which we plan to use as part
// of route change (level shift) detection in the future".
//
// The NTP payload carries the server's stratum and reference identifier.
// A change in either is explicit evidence that the packets now traverse
// a different server (DNS pool rotation, failover), after which the old
// minimum RTT r̂ is meaningless: unlike congestion-ambiguous upward level
// shifts, the filter can re-base immediately instead of waiting out the
// detection window T_s.

// Identity is the server identity data of one exchange. Zero values
// mean "unknown" and disable the check for that exchange.
type Identity struct {
	RefID   uint32
	Stratum uint8
}

// valid reports whether the identity carries usable information.
func (id Identity) valid() bool { return id.RefID != 0 && id.Stratum != 0 }

// ObserveIdentity feeds the server identity seen on the most recent
// exchange. It must be called after Process for that exchange. It
// returns true when a server change was detected and the minimum-RTT
// filter was re-based.
//
// Reaction on change: r̂ restarts from the RTT of the current exchange,
// point errors of the history are reassessed against it (they will be
// re-tightened as new minima arrive), and the rate pair's quality is
// recomputed. The rate and offset estimates themselves are kept — the
// "local clock is good" principle: they remain valid until contradicted
// by data, and the sanity checks bound any damage if the new server's
// asymmetry differs.
func (s *Sync) ObserveIdentity(id Identity) bool {
	if !id.valid() {
		return false
	}
	if !s.identKnown {
		s.ident = id
		s.identKnown = true
		s.publish()
		return false
	}
	if id == s.ident {
		return false
	}
	s.ident = id
	if s.hist.Len() == 0 {
		s.publish()
		return true
	}
	// Re-base the minimum from the current packet only. The r̂ deque is
	// left untouched: the re-base is recorded in lastShiftSeq alone,
	// and every consumer reads the deque through a suffix query that
	// respects it (r̂ at slides) or deliberately ignores it (the
	// level-shift window r̂_l, which keeps spanning pre-rebase packets
	// for the next T_s packets, exactly like the reference's plain
	// window scan — see TestGoldenIdentityRebaseCongestion).
	last := s.hist.Back()
	s.rHat = last.rtt
	s.lastShiftSeq = last.seq
	last.pointErr = 0
	s.scan.Back().pointErr = 0
	// The re-base revised a point error the local-rate argmin trackers
	// already cached (the newest record is always in the near window).
	s.rebuildLocalMinima()
	if s.havePair {
		if _, qual, ok := s.pairEstimate(&s.pairJ, &s.pairI); ok {
			s.pQual = qual
		}
	}
	s.publish()
	return true
}

// CurrentIdentity returns the last observed server identity.
func (s *Sync) CurrentIdentity() (Identity, bool) { return s.ident, s.identKnown }

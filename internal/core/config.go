// Package core implements the paper's primary contribution: the robust
// rate and offset synchronization algorithms for the TSC-NTP clock
// (Sections 5 and 6 of Veitch, Babu & Pásztor, IMC 2004).
//
// The engine consumes, packet by packet, the raw four-tuple of an NTP
// exchange — host counter stamps Ta, Tf and server stamps Tb, Te — and
// maintains:
//
//   - p̂(t), the robust global rate estimate (period of one counter cycle)
//     built from low point-error packet pairs with an ever-growing
//     baseline, bounded error 2E*/Δ(t);
//   - p̂_l(t), the quasi-local rate over a τ̄ = 5τ* window, quality-gated
//     and sanity-checked against the 0.1 PPM hardware bound;
//   - θ̂(t), the offset of the uncorrected clock C(t) = p̂·TSC + C,
//     estimated by a quality-weighted window of per-packet naive
//     estimates, with aging, poor-quality fallback, and a 1 ms sanity
//     check;
//   - r̂(t) and r̂_l(t), global and windowed minimum RTT trackers that
//     drive the point-error filter and the level-shift detector.
//
// Everything is calibrated in units of the host timestamping error
// δ = 15 µs and grounded in the two hardware constants the paper
// measures: the SKM scale τ* ≈ 1000 s and the 0.1 PPM stability bound.
//
//repro:deterministic
package core

import (
	"fmt"

	"repro/internal/timebase"
)

// Config carries every parameter of the synchronization algorithms. The
// zero value is not usable; start from DefaultConfig.
type Config struct {
	// PHatInit is the a-priori counter period (seconds per cycle), e.g.
	// the nominal value from the CPU specification. Its error (typically
	// tens of PPM) only matters during the first few packets.
	PHatInit float64

	// PollPeriod is the nominal NTP polling period in seconds. Windows
	// are nominally time intervals but, following Section 6.1 ("Lost
	// Packets"), are maintained as fixed packet counts derived from it.
	PollPeriod float64

	// Delta is δ, the maximum host timestamping error; the unit in which
	// all quality thresholds are calibrated. Paper value: 15 µs.
	Delta float64

	// TauStar is τ*, the SKM scale: the largest time scale over which
	// the simple skew model holds. Paper value: 1000 s.
	TauStar float64

	// EStarFactor sets E* = EStarFactor·δ, the point-error acceptance
	// threshold for global rate pairs. Paper explores 20 and 5.
	EStarFactor float64

	// UseLocalRate enables the quasi-local rate refinement p̂_l and its
	// use in offset linear prediction (equations 21/23).
	UseLocalRate bool
	// LocalRateWindow is τ̄, the effective width of the local rate
	// estimation window. Paper value: 5τ*.
	LocalRateWindow float64
	// LocalRateW is W, the near/far sub-window divisor: near width
	// τ̄/W, far width 2τ̄/W. Paper value: 30.
	LocalRateW int
	// LocalRateQuality is γ*, the target quality bound for accepting a
	// local rate candidate. Paper value: 0.05 PPM.
	LocalRateQuality float64
	// RateSanity bounds the relative change between successive local
	// rate estimates. Paper value: 3e-7 (a multiple of the 0.1 PPM
	// hardware bound).
	RateSanity float64

	// OffsetWindow is τ′, the SKM-related window of past packets used in
	// the weighted offset estimate. Paper default: τ* (sensitivity
	// explored over [τ*/16, 4τ*]).
	OffsetWindow float64
	// EFactor sets E = EFactor·δ, the width of the quality weighting
	// w_i = exp(−(E_i^T/E)²). Paper value: 4.
	EFactor float64
	// AgingRate is ε, the residual-rate error used to age point errors:
	// E_i^T = E_i + ε·age. Paper value: 0.02 PPM.
	AgingRate float64
	// EStarStarFactor sets E** = EStarStarFactor·E, the total-error
	// level beyond which the weighted estimate is abandoned for the
	// last-good fallback. Paper value: 6.
	EStarStarFactor float64
	// OffsetSanity is E_s, the threshold on successive offset estimate
	// increments beyond which the previous value is duplicated. It must
	// be set far above any physical increment. Paper value: 1 ms.
	//
	// The effective threshold between an estimate made at counter time
	// T1 and a candidate at T2 is E_s + HardwareRateBound·(T2−T1): over
	// long gaps (Figure 11a recovers from 3.8 days of no data) the clock
	// can legitimately have drifted by far more than E_s, and a fixed
	// threshold would cause exactly the lock-out the paper warns about.
	OffsetSanity float64
	// HardwareRateBound is the global clock stability bound used to age
	// the sanity threshold. Paper hardware characterization: 0.1 PPM.
	HardwareRateBound float64

	// TopWindow is T, the top-level sliding history window, updated in
	// half-window steps. Paper value: 1 week.
	TopWindow float64

	// WarmupSamples is T_w, the number of packets during which point
	// errors are not yet trusted: the rate estimator runs its growing
	// near/far scheme and the offset quality width is inflated.
	WarmupSamples int
	// WarmupEInflation multiplies E during warmup.
	WarmupEInflation float64

	// ShiftWindow is T_s, the width of the local minimum window used for
	// upward level-shift detection. Paper value: τ̄/2.
	ShiftWindow float64
	// ShiftThresholdFactor: an upward shift is declared when
	// r̂_l − r̂ > ShiftThresholdFactor·E. Paper value: 4.
	ShiftThresholdFactor float64
}

// DefaultConfig returns the paper's parameter set for a given counter
// period estimate and polling period.
func DefaultConfig(pHatInit, poll float64) Config {
	tauStar := 1000.0
	tauBar := 5 * tauStar
	return Config{
		PHatInit:             pHatInit,
		PollPeriod:           poll,
		Delta:                15 * timebase.Microsecond,
		TauStar:              tauStar,
		EStarFactor:          20,
		UseLocalRate:         false,
		LocalRateWindow:      tauBar,
		LocalRateW:           30,
		LocalRateQuality:     timebase.FromPPM(0.05),
		RateSanity:           3e-7,
		OffsetWindow:         tauStar,
		EFactor:              4,
		AgingRate:            timebase.FromPPM(0.02),
		EStarStarFactor:      6,
		OffsetSanity:         timebase.Millisecond,
		HardwareRateBound:    timebase.FromPPM(0.1),
		TopWindow:            timebase.Week,
		WarmupSamples:        32,
		WarmupEInflation:     3,
		ShiftWindow:          tauBar / 2,
		ShiftThresholdFactor: 4,
	}
}

// EStar returns the rate acceptance threshold E* in seconds.
func (c Config) EStar() float64 { return c.EStarFactor * c.Delta }

// E returns the offset quality width E in seconds.
func (c Config) E() float64 { return c.EFactor * c.Delta }

// EStarStar returns the poor-quality fallback level E** in seconds.
func (c Config) EStarStar() float64 { return c.EStarStarFactor * c.E() }

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case !(c.PHatInit > 0):
		return fmt.Errorf("core: PHatInit must be positive")
	case !(c.PollPeriod > 0):
		return fmt.Errorf("core: PollPeriod must be positive")
	case !(c.Delta > 0):
		return fmt.Errorf("core: Delta must be positive")
	case !(c.TauStar > 0):
		return fmt.Errorf("core: TauStar must be positive")
	case !(c.EStarFactor > 0):
		return fmt.Errorf("core: EStarFactor must be positive")
	case c.UseLocalRate && c.LocalRateW < 3:
		return fmt.Errorf("core: LocalRateW must be >= 3")
	case c.UseLocalRate && !(c.LocalRateWindow > 0):
		return fmt.Errorf("core: LocalRateWindow must be positive")
	case !(c.OffsetWindow > 0):
		return fmt.Errorf("core: OffsetWindow must be positive")
	case !(c.EFactor > 0):
		return fmt.Errorf("core: EFactor must be positive")
	case c.AgingRate < 0:
		return fmt.Errorf("core: AgingRate must be non-negative")
	case !(c.EStarStarFactor > 1):
		return fmt.Errorf("core: EStarStarFactor must exceed 1")
	case !(c.EStarStarFactor < 26):
		// Beyond 26 the fallback would be gated on Gaussian weights
		// below exp(−26²) ≈ 2.5e-294 — numerically meaningless, and
		// outside the offset scan's exactness envelope (offset.go).
		return fmt.Errorf("core: EStarStarFactor must be below 26")
	case !(c.OffsetSanity > 0):
		return fmt.Errorf("core: OffsetSanity must be positive")
	case c.HardwareRateBound < 0:
		return fmt.Errorf("core: HardwareRateBound must be non-negative")
	case !(c.TopWindow > 0):
		return fmt.Errorf("core: TopWindow must be positive")
	case c.WarmupSamples < 2:
		return fmt.Errorf("core: WarmupSamples must be >= 2")
	case !(c.WarmupEInflation >= 1):
		return fmt.Errorf("core: WarmupEInflation must be >= 1")
	case !(c.ShiftWindow > 0):
		return fmt.Errorf("core: ShiftWindow must be positive")
	case !(c.ShiftThresholdFactor > 0):
		return fmt.Errorf("core: ShiftThresholdFactor must be positive")
	}
	// Window consistency: the top window must dominate all others.
	if c.TopWindow < 2*c.ShiftWindow || c.TopWindow < 2*c.LocalRateWindow || c.TopWindow < 2*c.OffsetWindow {
		return fmt.Errorf("core: TopWindow must be at least twice every sub-window")
	}
	return nil
}

// packets converts a nominal window duration into a packet count,
// clamped to at least 1 (Section 6.1: windows are maintained as fixed
// numbers of packets computed from the polling period).
func (c Config) packets(window float64) int {
	n := int(window/c.PollPeriod + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

package core

import "math"

// pairEstimate computes the paired rate estimate of equation (17),
// averaged over the forward and backward directions, together with its
// quality bound (E_i+E_j)/Δ(t). ok is false when the pair is degenerate.
func (s *Sync) pairEstimate(j, i *record) (p float64, quality float64, ok bool) {
	if i.seq == j.seq || i.ta <= j.ta || i.tf <= j.tf {
		return 0, 0, false
	}
	fwd := (i.tb - j.tb) / float64(i.ta-j.ta)
	back := (i.te - j.te) / float64(i.tf-j.tf)
	p = (fwd + back) / 2
	if !(p > 0) || math.IsInf(p, 0) || math.IsNaN(p) {
		return 0, 0, false
	}
	span := float64(i.tf-j.tf) * s.p
	quality = ((i.rtt - s.rHat) + (j.rtt - s.rHat)) / span
	return p, quality, true
}

// updateRate advances the global rate estimate p̂ for the new record.
//
// During warmup (the first T_w packets) a growing near/far scheme is
// used: the best packet from the oldest quarter of history is paired with
// the best from the newest quarter, exploiting the growing Δ(t) while
// managing delay errors; the first estimate is the naive p̂_{2,1}.
//
// After warmup the paired estimator of Section 5.2 runs: j is the first
// packet with point error below E*, i advances to every accepted packet,
// and the estimate error is bounded by 2E*/Δ(t).
func (s *Sync) updateRate(rec *record, res *Result) {
	if s.count <= 1 {
		return // single packet: stay on PHatInit
	}

	if s.count <= s.nWarm {
		s.warmupRate(rec, res)
		return
	}

	eStar := s.cfg.EStar()
	if rec.rtt-s.rHat > eStar {
		return // rejected: estimate simply persists (robustness by design)
	}
	res.Accepted = true

	if !s.havePair {
		// Find j: the first history packet currently within E*.
		for idx := 0; idx < s.hist.Len(); idx++ {
			cand := s.hist.At(idx)
			if cand.rtt-s.rHat <= eStar && cand.tf < rec.tf {
				s.pairJ = *cand
				s.havePair = true
				break
			}
		}
		if !s.havePair {
			// No prior acceptable packet: this one becomes j and waits.
			s.pairJ = *rec
			s.havePair = true
			return
		}
	}

	pNew, qual, ok := s.pairEstimate(&s.pairJ, rec)
	if !ok {
		return
	}
	// Rate sanity: the hardware cannot jump. Two estimates with quality
	// bounds q_old and q_new may legitimately differ by q_old + q_new
	// plus the stability allowance; anything larger means corrupt input
	// — e.g. faulty server timestamps, which pass the RTT filter
	// unscathed because server stamp errors cancel in host-measured
	// RTTs — and the previous estimate is kept (Section 5.2's principle
	// applied to p̂ as well as p̂_l).
	if allowed := s.pQual + qual + s.cfg.RateSanity; math.Abs(pNew/s.p-1) > allowed {
		res.RateSanityTriggered = true
		return
	}
	s.pairI = *rec
	s.setRate(pNew, rec.tf)
	s.pQual = qual
	res.RateUpdated = true
}

// warmupRate implements the growing near/far warmup scheme.
func (s *Sync) warmupRate(rec *record, res *Result) {
	n := s.hist.Len() // history before this record
	w := n / 4
	if w < 1 {
		w = 1
	}
	// Far window: the first w packets; near window: the last w packets
	// of history plus the current record. Select the lowest point error
	// (relative to the current r̂) in each. With fewer than w history
	// packets the near window is clamped to the whole history.
	bestFar, bestNear := -1, -1
	bestFarErr, bestNearErr := math.Inf(1), math.Inf(1)
	for idx := 0; idx < w && idx < n; idx++ {
		if e := s.hist.At(idx).rtt - s.rHat; e < bestFarErr {
			bestFarErr = e
			bestFar = idx
		}
	}
	nearStart := n - w
	if nearStart < 0 {
		nearStart = 0
	}
	for idx := nearStart; idx < n; idx++ {
		if e := s.hist.At(idx).rtt - s.rHat; e < bestNearErr {
			bestNearErr = e
			bestNear = idx
		}
	}
	near := rec
	if cur := rec.rtt - s.rHat; cur > bestNearErr && bestNear >= 0 {
		near = s.hist.At(bestNear)
	}
	if bestFar < 0 {
		return
	}
	far := s.hist.At(bestFar)
	if far.seq == near.seq {
		return
	}
	pNew, qual, ok := s.pairEstimate(far, near)
	if !ok {
		return
	}
	s.pairJ, s.pairI = *far, *near
	s.havePair = true
	s.setRate(pNew, rec.tf)
	s.pQual = qual
	res.RateUpdated = true
	res.Accepted = true
}

// pushLocalMinima feeds the just-pushed record into the near/far argmin
// trackers behind updateLocalRate. The near window is the trailing
// nLocalNear records, so the new record enters immediately; the far
// window [seq−nLocalWin+1, seq−nLocalWin+nLocalFar] lags the newest
// record, so the record entering it now is an older one, located in the
// ring by sequence number (seqs are contiguous: every processed packet
// gets the next one). Amortized O(1) per packet.
func (s *Sync) pushLocalMinima(rec *record) {
	s.nearMin.Push(rec.seq, rec.pointErr)
	s.nearMin.EvictBefore(rec.seq - s.nLocalNear + 1)

	frontSeq := s.hist.Front().seq
	winStart := rec.seq - s.nLocalWin + 1
	target := winStart + s.nLocalFar - 1
	for ; s.farNext <= target; s.farNext++ {
		if s.farNext < frontSeq {
			// The record left the ring before its push turn (slides that
			// retain less than a full local window). Skipping it is safe:
			// frontSeq only grows and updateLocalRate activates only once
			// the whole window is retained (winStart ≥ frontSeq), so a
			// skipped record can never be inside an active far window.
			continue
		}
		h := s.hist.At(s.farNext - frontSeq)
		s.farMin.Push(h.seq, h.pointErr)
	}
	s.farMin.EvictBefore(winStart)
}

// rebuildLocalMinima reloads both argmin trackers from live history
// values. Called after point-error revisions (upward level shift,
// server identity re-base), which rewrite values the deques may have
// cached; O(window) on rare events only.
func (s *Sync) rebuildLocalMinima() {
	if !s.cfg.UseLocalRate || s.hist.Len() == 0 {
		return
	}
	s.nearMin.Reset()
	s.farMin.Reset()
	backSeq := s.hist.Back().seq
	frontSeq := s.hist.Front().seq

	lo := maxInt(frontSeq, backSeq-s.nLocalNear+1)
	for seq := lo; seq <= backSeq; seq++ {
		s.nearMin.Push(seq, s.hist.At(seq-frontSeq).pointErr)
	}

	winStart := backSeq - s.nLocalWin + 1
	hi := winStart + s.nLocalFar - 1
	for seq := maxInt(frontSeq, winStart); seq <= hi && seq <= backSeq; seq++ {
		s.farMin.Push(seq, s.hist.At(seq-frontSeq).pointErr)
	}
	if hi+1 > s.farNext {
		s.farNext = hi + 1
	}
}

// updateLocalRate advances the quasi-local rate p̂_l of Section 5.2: a
// window of effective width τ̄ ending at the current packet is divided
// into near (τ̄/W), central, and far (2τ̄/W) sub-windows; the best
// packet of the near and far sub-windows forms a candidate; candidates
// are accepted only under the target quality γ* and a sanity bound on
// the relative change. The two sub-window minima come from the argmin
// trackers maintained by pushLocalMinima (ROADMAP: this was the last
// O(window)-per-packet scan outside the offset filter), selecting the
// oldest record of minimal point error exactly like the scans they
// replace.
func (s *Sync) updateLocalRate(res *Result) {
	if !s.cfg.UseLocalRate {
		return
	}
	// Refinement only: activated once a full window is available after
	// warmup (Section 6.1).
	if s.count <= s.nWarm+s.nLocalWin || s.hist.Len() < s.nLocalWin {
		return
	}

	// Time-scale control guard (Section 6.1, "Lost Packets"): if the gap
	// to the previous packet is too large the local rate is out of date.
	n := s.hist.Len()
	if n >= 2 {
		gap := spanSeconds(s.hist.At(n-2).tf, s.hist.At(n-1).tf, s.p)
		if gap > s.cfg.LocalRateWindow/2 {
			s.plValid = false
			return
		}
	}

	frontSeq := s.hist.Front().seq
	jSeq, okJ := s.farMin.MinSeq()
	iSeq, okI := s.nearMin.MinSeq()
	if !okJ || !okI {
		return // defensive: cannot happen once the window is full
	}
	j := s.hist.At(jSeq - frontSeq)
	i := s.hist.At(iSeq - frontSeq)

	pCand, qual, ok := s.pairEstimate(j, i)
	if !ok {
		return
	}

	prev := s.pl
	if prev == 0 {
		prev = s.p
	}
	switch {
	case qual > s.cfg.LocalRateQuality:
		// Conservative: quality insufficient, duplicate the previous
		// value (p̂_l(t_k) = p̂_l(t_{k-1})).
		s.pl = prev
	case math.Abs(pCand/prev-1) > s.cfg.RateSanity:
		// Sanity check: the hardware cannot change rate this fast, no
		// matter what the data says (e.g. faulty server timestamps).
		s.pl = prev
		res.RateSanityTriggered = true
	default:
		s.pl = pCand
	}
	s.plValid = true
}

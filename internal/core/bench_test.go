package core

import "testing"

// benchTraceLen is the synthetic trace length for the throughput
// suite: long enough that the engine's top window slides dozens of
// times at the default configuration, so the amortized costs of
// sliding, r̂ re-derivation and pair revalidation are all inside the
// measurement. The trace itself comes from SynthTrace (synth.go),
// shared with `cmd/experiments -perf`.
const benchTraceLen = 1_000_000

var benchTrace []Input // lazily built, shared across sub-benchmarks

// BenchmarkProcess measures steady-state per-packet engine throughput
// over a 1M-packet synthetic trace at several window configurations
// (all windows are durations; packet counts follow from the 16 s
// poll). The nShift=1024/nOff=16 row pairs the large shift window with
// the paper's τ′ = τ*/4 offset-window sensitivity setting, isolating
// the cost of minimum tracking from the cost of the weighted offset
// scan. Run with -benchmem: steady state must stay at 0 allocs/op (the
// only byte counts are the ring growth during the first top window,
// amortized over the full trace).
func BenchmarkProcess(b *testing.B) {
	if benchTrace == nil {
		benchTrace = SynthTrace(benchTraceLen)
	}
	tau := 1000.0 // τ*, the default OffsetWindow
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"window=default", nil},
		{"window=nShift1024", func(c *Config) { c.ShiftWindow = 1024 * 16 }},
		{"window=nShift1024_nOff16", func(c *Config) {
			c.ShiftWindow = 1024 * 16
			c.OffsetWindow = tau / 4
		}},
		{"window=nShift4096", func(c *Config) { c.ShiftWindow = 4096 * 16 }},
		{"window=nShift16384", func(c *Config) { c.ShiftWindow = 16384 * 16 }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			cfg := DefaultConfig(2e-9, 16)
			if tc.mutate != nil {
				tc.mutate(&cfg)
			}
			s, err := NewSync(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % len(benchTrace)
				if j == 0 && i > 0 {
					// The trace wrapped: counters would regress, so
					// restart the engine outside the timer.
					b.StopTimer()
					s, err = NewSync(cfg)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				if _, err := s.Process(benchTrace[j]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProcessLocalRate is the default window configuration with
// the quasi-local rate refinement enabled: the offset scan takes the
// linear-prediction path (offsetScanGl) and the near/far sub-window
// selection runs every packet.
func BenchmarkProcessLocalRate(b *testing.B) {
	if benchTrace == nil {
		benchTrace = SynthTrace(benchTraceLen)
	}
	cfg := DefaultConfig(2e-9, 16)
	cfg.UseLocalRate = true
	s, err := NewSync(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(benchTrace)
		if j == 0 && i > 0 {
			b.StopTimer()
			s, err = NewSync(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if _, err := s.Process(benchTrace[j]); err != nil {
			b.Fatal(err)
		}
	}
}

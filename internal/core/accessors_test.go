package core

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/timebase"
)

func TestAccessors(t *testing.T) {
	cfg := DefaultConfig(2e-9, 16)
	s, err := NewSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Config(); got.PollPeriod != 16 || got.Delta != cfg.Delta {
		t.Errorf("Config() = %+v", got)
	}
	if s.Count() != 0 {
		t.Errorf("Count before feed = %d", s.Count())
	}
	if _, ok := s.Theta(); ok {
		t.Error("Theta available before any packet")
	}
	if got := s.ThetaAt(12345); got != 0 {
		t.Errorf("ThetaAt before any packet = %v, want 0", got)
	}
	if !math.IsInf(s.RTTHat(), 1) {
		t.Errorf("RTTHat before feed = %v, want +Inf", s.RTTHat())
	}

	if _, err := s.Process(Input{Ta: 1000, Tf: 201000, Tb: 5, Te: 5.0001}); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 1 {
		t.Errorf("Count = %d", s.Count())
	}
	if _, ok := s.Theta(); !ok {
		t.Error("Theta unavailable after first packet")
	}
}

// TestThetaAtLinearPrediction: with the local rate valid, ThetaAt must
// extrapolate linearly per equation (23): the predicted offset moves by
// −γ_l per second of difference-clock time.
func TestThetaAtLinearPrediction(t *testing.T) {
	cfg := DefaultConfig(2e-9, 16)
	cfg.UseLocalRate = true
	// Shrink windows so the refinement activates quickly.
	cfg.LocalRateWindow = 40 * 16
	cfg.ShiftWindow = 20 * 16
	cfg.TopWindow = 2000 * 16
	cfg.WarmupSamples = 8
	s, err := NewSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	const p = 2e-9
	counter := uint64(1000)
	serverT := 0.0
	var lastTf uint64
	sawValid := false
	for i := 0; i < 400; i++ {
		counter += uint64(16 / p)
		serverT += 16
		rtt := 300e-6 + src.Exponential(30e-6)
		ta := counter
		tf := ta + uint64(rtt/p)
		res, err := s.Process(Input{Ta: ta, Tf: tf, Tb: serverT + rtt/3, Te: serverT + rtt/3 + 20e-6})
		if err != nil {
			t.Fatal(err)
		}
		if res.PLocalValid {
			sawValid = true
		}
		lastTf = tf
	}
	if !sawValid {
		t.Fatal("local rate never became valid")
	}

	base := s.ThetaAt(lastTf)
	later := s.ThetaAt(lastTf + uint64(100/p)) // 100 s later
	pHat, _ := s.Clock()
	_ = pHat
	// The prediction slope must match −γ_l = −(p_l/p̂ − 1).
	theta0, _ := s.Theta()
	_ = theta0
	slope := (later - base) / 100
	// γ_l is tiny here (clean feed): slope must be bounded by ~1 PPM and
	// exactly linear (midpoint check).
	mid := s.ThetaAt(lastTf + uint64(50/p))
	if d := math.Abs(mid - (base+later)/2); d > 1e-12 {
		t.Errorf("prediction not linear: midpoint off by %v", d)
	}
	if math.Abs(slope) > timebase.FromPPM(1) {
		t.Errorf("prediction slope %v implausible", slope)
	}
}

package core

import (
	"math"
	"sort"
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/timebase"
)

// runTrace feeds every completed exchange of a trace through a fresh
// engine and returns the per-packet results alongside the exchanges.
func runTrace(t testing.TB, tr *sim.Trace, cfg Config) ([]Result, []sim.Exchange) {
	t.Helper()
	s, err := NewSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex := tr.Completed()
	results := make([]Result, 0, len(ex))
	for _, e := range ex {
		res, err := s.Process(Input{Ta: e.Ta, Tf: e.Tf, Tb: e.Tb, Te: e.Te})
		if err != nil {
			t.Fatalf("Process(seq %d): %v", e.Seq, err)
		}
		results = append(results, res)
	}
	return results, ex
}

// offsetErrors computes θ̂ − θ_g for every packet: the absolute clock
// error against the DAG reference (θ_g = C(Tf) − Tg under the clock the
// engine was using at that packet).
func offsetErrors(results []Result, ex []sim.Exchange) []float64 {
	errs := make([]float64, len(results))
	for k, res := range results {
		thetaG := float64(ex[k].Tf)*res.ClockP + res.ClockC - ex[k].Tg
		errs[k] = res.ThetaHat - thetaG
	}
	return errs
}

func mrIntTrace(t testing.TB, dur float64, seed uint64) *sim.Trace {
	t.Helper()
	tr, err := sim.Generate(sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, dur, seed))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func defaultCfg() Config {
	// Nominal period deliberately ~49 PPM off the true mean period, as a
	// real nominal frequency would be.
	return DefaultConfig(1.0/548655270, 16)
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero config accepted")
	}
	good := defaultCfg()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.PHatInit = 0 },
		func(c *Config) { c.PollPeriod = -1 },
		func(c *Config) { c.Delta = 0 },
		func(c *Config) { c.EStarFactor = 0 },
		func(c *Config) { c.OffsetSanity = 0 },
		func(c *Config) { c.EStarStarFactor = 1 },
		func(c *Config) { c.EStarStarFactor = 26 },
		func(c *Config) { c.WarmupSamples = 1 },
		func(c *Config) { c.TopWindow = c.OffsetWindow },
		func(c *Config) { c.UseLocalRate = true; c.LocalRateW = 2 },
	}
	for i, mutate := range cases {
		c := defaultCfg()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestProcessRejectsBadInput(t *testing.T) {
	s, err := NewSync(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(Input{Ta: 100, Tf: 100, Tb: 1, Te: 1}); err == nil {
		t.Error("non-increasing counter stamps accepted")
	}
	if _, err := s.Process(Input{Ta: 100, Tf: 200, Tb: 1, Te: 1.1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(Input{Ta: 150, Tf: 180, Tb: 2, Te: 2.1}); err == nil {
		t.Error("out-of-order exchange accepted")
	}
}

func TestRateConvergence(t *testing.T) {
	tr := mrIntTrace(t, timebase.Day, 42)
	results, ex := runTrace(t, tr, defaultCfg())

	// After a few hours the global rate estimate must be within 0.1 PPM
	// of the oracle average rate (Figure 7's bound), and stay there.
	trueP := tr.Osc.MeanPeriod()
	for k, res := range results {
		if ex[k].TrueTf < 4*timebase.Hour {
			continue
		}
		errPPM := timebase.PPM(res.PHat/trueP - 1)
		if math.Abs(errPPM) > 0.1 {
			t.Fatalf("packet %d (t=%.0fs): rate error %v PPM exceeds 0.1",
				k, ex[k].TrueTf, errPPM)
		}
	}
}

func TestRateErrorShrinks(t *testing.T) {
	tr := mrIntTrace(t, timebase.Day, 43)
	results, ex := runTrace(t, tr, defaultCfg())
	trueP := tr.Osc.MeanPeriod()

	errAt := func(hour float64) float64 {
		for k := range results {
			if ex[k].TrueTf >= hour*timebase.Hour {
				return math.Abs(results[k].PHat/trueP - 1)
			}
		}
		t.Fatalf("no packet after hour %v", hour)
		return 0
	}
	early, late := errAt(1), errAt(20)
	if late > early && late > timebase.FromPPM(0.05) {
		t.Errorf("rate error grew: %v PPM at 1h vs %v PPM at 20h",
			timebase.PPM(early), timebase.PPM(late))
	}
}

func TestOffsetAccuracy(t *testing.T) {
	tr := mrIntTrace(t, 2*timebase.Day, 44)
	results, ex := runTrace(t, tr, defaultCfg())
	errs := offsetErrors(results, ex)

	// Discard warmup plus the first hour, then check median magnitude
	// and IQR against the paper's ~30 µs / ~15 µs scale (we allow 2-3x).
	var tail []float64
	for k, e := range errs {
		if ex[k].TrueTf > timebase.Hour {
			tail = append(tail, e)
		}
	}
	sort.Float64s(tail)
	med := tail[len(tail)/2]
	iqr := tail[3*len(tail)/4] - tail[len(tail)/4]
	if math.Abs(med) > 100*timebase.Microsecond {
		t.Errorf("median offset error %v, want within 100 µs", med)
	}
	if iqr > 100*timebase.Microsecond {
		t.Errorf("offset error IQR %v, want under 100 µs", iqr)
	}
	// The median must reflect the −Δ/2 asymmetry ambiguity: negative.
	if med > 10*timebase.Microsecond {
		t.Errorf("median offset error %v, expected negative (−Δ/2 ≈ −25 µs)", med)
	}
}

func TestOffsetBeatNaive(t *testing.T) {
	tr := mrIntTrace(t, timebase.Day, 45)
	results, ex := runTrace(t, tr, defaultCfg())
	errs := offsetErrors(results, ex)

	var algAbs, naiveAbs []float64
	for k, res := range results {
		if ex[k].TrueTf < timebase.Hour {
			continue
		}
		thetaG := float64(ex[k].Tf)*res.ClockP + res.ClockC - ex[k].Tg
		algAbs = append(algAbs, math.Abs(errs[k]))
		naiveAbs = append(naiveAbs, math.Abs(res.ThetaNaive-thetaG))
	}
	sort.Float64s(algAbs)
	sort.Float64s(naiveAbs)
	// Compare 90th percentiles: the filter must crush the delay noise.
	a90 := algAbs[len(algAbs)*9/10]
	n90 := naiveAbs[len(naiveAbs)*9/10]
	if a90 >= n90 {
		t.Errorf("filtered 90th pct %v not better than naive %v", a90, n90)
	}
}

func TestOffsetSanityOnServerFault(t *testing.T) {
	sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, 12*timebase.Hour, 46)
	sc.Server.Server.Faults = []netem.FaultWindow{
		{From: 6 * timebase.Hour, To: 6*timebase.Hour + 5*timebase.Minute, Offset: 150 * timebase.Millisecond},
	}
	tr, err := sim.Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	results, ex := runTrace(t, tr, defaultCfg())

	triggered := false
	errs := offsetErrors(results, ex)
	for k, res := range results {
		if res.OffsetSanityTriggered {
			triggered = true
		}
		// Damage must stay bounded to a few times the sanity threshold
		// (paper: "limited the damage to a millisecond or less") even
		// though the faulty stamps are 150 ms wrong.
		if ex[k].TrueTf > timebase.Hour && math.Abs(errs[k]) > 4*timebase.Millisecond {
			t.Fatalf("packet %d: offset error %v despite sanity check", k, errs[k])
		}
	}
	if !triggered {
		t.Error("150 ms server fault never triggered the offset sanity check")
	}
	// Long after the fault the estimate must have healed.
	if tail := errs[len(errs)-1]; math.Abs(tail) > 300*timebase.Microsecond {
		t.Errorf("offset error %v at end of trace, fault damage not healed", tail)
	}
}

func TestUpwardShiftDetected(t *testing.T) {
	sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, timebase.Day, 47)
	shiftAt := 12 * timebase.Hour
	sc.Server.Forward.Shifts = []netem.Shift{{At: shiftAt, Delta: 0.9 * timebase.Millisecond}}
	tr, err := sim.Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	results, ex := runTrace(t, tr, defaultCfg())

	detectedAt := -1.0
	for k, res := range results {
		if res.UpwardShiftDetected {
			detectedAt = ex[k].TrueTf
			break
		}
	}
	if detectedAt < 0 {
		t.Fatal("permanent 0.9 ms upward shift never detected")
	}
	if detectedAt < shiftAt {
		t.Fatalf("shift detected at %v before it happened at %v", detectedAt, shiftAt)
	}
	// Detection happens roughly one shift window after the event.
	cfg := defaultCfg()
	if lag := detectedAt - shiftAt; lag > 1.5*cfg.ShiftWindow {
		t.Errorf("detection lag %v exceeds 1.5·Ts = %v", lag, 1.5*cfg.ShiftWindow)
	}
	// After detection, r̂ must track the new minimum.
	last := results[len(results)-1]
	newMin := tr.Scenario.Server.MinRTT() + 0.9*timebase.Millisecond
	if math.Abs(last.RTTHat-newMin) > 100*timebase.Microsecond {
		t.Errorf("final r̂ = %v, want ~%v", last.RTTHat, newMin)
	}
}

func TestDownwardShiftAbsorbed(t *testing.T) {
	sc := sim.NewScenario(sim.MachineRoom, sim.ServerExt(), 64, timebase.Day, 48)
	shiftAt := 12 * timebase.Hour
	// Symmetric downward shift: Δ unchanged, like Figure 11d.
	sc.Server.Forward.Shifts = []netem.Shift{{At: shiftAt, Delta: -0.18 * timebase.Millisecond}}
	sc.Server.Backward.Shifts = []netem.Shift{{At: shiftAt, Delta: -0.18 * timebase.Millisecond}}
	tr, err := sim.Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	results, ex := runTrace(t, tr, defaultCfg())

	// r̂ must drop promptly after the shift (within ~an hour of packets).
	for k, res := range results {
		if ex[k].TrueTf > shiftAt+2*timebase.Hour {
			want := tr.Scenario.Server.MinRTT() - 0.36*timebase.Millisecond
			if res.RTTHat > want+200*timebase.Microsecond {
				t.Errorf("r̂ = %v at t=%v, want near %v", res.RTTHat, ex[k].TrueTf, want)
			}
			break
		}
	}
	// No upward shift may be reported for a downward event.
	for _, res := range results {
		if res.UpwardShiftDetected {
			t.Error("downward shift misreported as upward")
			break
		}
	}
}

func TestGapRecovery(t *testing.T) {
	sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, 2*timebase.Day, 49)
	sc.Gaps = []sim.Gap{{From: 10 * timebase.Hour, To: 34 * timebase.Hour}} // 24 h outage
	tr, err := sim.Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	results, ex := runTrace(t, tr, defaultCfg())
	errs := offsetErrors(results, ex)

	// Within 30 minutes of data after the gap the offset error must be
	// back to the tens-of-µs regime.
	for k := range results {
		if ex[k].TrueTf > 34*timebase.Hour+30*timebase.Minute {
			if math.Abs(errs[k]) > 200*timebase.Microsecond {
				t.Errorf("offset error %v shortly after 24 h gap", errs[k])
			}
			break
		}
	}
	// The rate estimate remains valid across the gap.
	trueP := tr.Osc.MeanPeriod()
	last := results[len(results)-1]
	if e := timebase.PPM(last.PHat/trueP - 1); math.Abs(e) > 0.1 {
		t.Errorf("rate error %v PPM after gap", e)
	}
}

func TestLocalRateRefinement(t *testing.T) {
	tr := mrIntTrace(t, timebase.Day, 50)
	cfg := defaultCfg()
	cfg.UseLocalRate = true
	results, ex := runTrace(t, tr, cfg)

	sawValid := false
	for k, res := range results {
		if !res.PLocalValid {
			continue
		}
		sawValid = true
		// The local rate must track the oracle rate over the local
		// window to within ~the quality target plus hardware bound.
		t2 := ex[k].TrueTf
		t1 := t2 - cfg.LocalRateWindow
		if t1 < 0 {
			continue
		}
		oracle := 1 / ((1 + tr.Osc.AverageRateError(t1, t2)) * tr.Osc.Config().NominalHz)
		if e := math.Abs(timebase.PPM(res.PLocal/oracle - 1)); e > 0.15 {
			t.Fatalf("packet %d: local rate error %v PPM", k, e)
		}
	}
	if !sawValid {
		t.Fatal("local rate never became valid over a full day")
	}
}

func TestOffsetIncrementsBounded(t *testing.T) {
	// Invariant (stage iv): successive offset estimates never differ by
	// more than E_s, no matter what the data does.
	sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, timebase.Day, 51)
	sc.Server.Server.Faults = []netem.FaultWindow{
		{From: 6 * timebase.Hour, To: 7 * timebase.Hour, Offset: -2},
		{From: 18 * timebase.Hour, To: 18.2 * timebase.Hour, Offset: 0.4},
	}
	tr, err := sim.Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultCfg()
	results, _ := runTrace(t, tr, cfg)
	for k := 1; k < len(results); k++ {
		d := math.Abs(results[k].ThetaHat - results[k-1].ThetaHat)
		// The aged threshold can exceed E_s after long rejection spells
		// (the longest fault here is one hour: +0.36 ms of aging).
		if d > 2*cfg.OffsetSanity {
			t.Fatalf("offset increment %v exceeds aged sanity bound at packet %d", d, k)
		}
	}
}

func TestClockContinuityAcrossRateUpdates(t *testing.T) {
	// When p̂ changes, the redefined clock must agree with the old one at
	// the update instant (Section 6.1, Clock Offset Consistency).
	tr := mrIntTrace(t, 6*timebase.Hour, 52)
	s, err := NewSync(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	var prevP, prevC float64
	var prevSet bool
	for _, e := range tr.Completed() {
		res, err := s.Process(Input{Ta: e.Ta, Tf: e.Tf, Tb: e.Tb, Te: e.Te})
		if err != nil {
			t.Fatal(err)
		}
		if prevSet && res.RateUpdated {
			oldRead := float64(e.Tf)*prevP + prevC
			newRead := float64(e.Tf)*res.ClockP + res.ClockC
			if d := math.Abs(newRead - oldRead); d > timebase.Microsecond {
				t.Fatalf("clock jumped %v at rate update (packet %d)", d, res.Seq)
			}
		}
		prevP, prevC, prevSet = res.ClockP, res.ClockC, true
	}
}

func TestDifferenceClockAccuracy(t *testing.T) {
	// Measuring a sub-τ* interval with the difference clock must be
	// accurate to well under a µs once calibrated (Section 5.2: "the
	// same order of magnitude as a GPS synchronized software clock").
	tr := mrIntTrace(t, 6*timebase.Hour, 53)
	s, err := NewSync(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	ex := tr.Completed()
	for _, e := range ex {
		if _, err := s.Process(Input{Ta: e.Ta, Tf: e.Tf, Tb: e.Tb, Te: e.Te}); err != nil {
			t.Fatal(err)
		}
	}
	// Use oracle counter readings 100 s apart at the end of the trace.
	t1, t2 := 5.9*timebase.Hour, 5.9*timebase.Hour+100
	c1, c2 := tr.Osc.ReadTSC(t1), tr.Osc.ReadTSC(t2)
	got := s.DifferenceSpan(c1, c2)
	// 3 µs over 100 s is 0.03 PPM, the hardware-bound regime.
	if d := math.Abs(got - (t2 - t1)); d > 3*timebase.Microsecond {
		t.Errorf("difference clock error %v over 100 s", d)
	}
}

func TestAbsoluteClockTracksTruth(t *testing.T) {
	tr := mrIntTrace(t, timebase.Day, 54)
	s, err := NewSync(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Completed() {
		if _, err := s.Process(Input{Ta: e.Ta, Tf: e.Tf, Tb: e.Tb, Te: e.Te}); err != nil {
			t.Fatal(err)
		}
	}
	tt := 23.5 * timebase.Hour
	counter := tr.Osc.ReadTSC(tt)
	got := s.AbsoluteTime(counter)
	if d := math.Abs(got - tt); d > 150*timebase.Microsecond {
		t.Errorf("absolute clock error %v at end of day", d)
	}
}

func TestNaiveRatePair(t *testing.T) {
	p := 2e-9
	j := Input{Ta: 1000, Tf: 2000, Tb: 10, Te: 10.00001}
	i := Input{Ta: 1000 + 500_000_000, Tf: 2000 + 500_000_000,
		Tb: 10 + 1, Te: 10.00001 + 1}
	fwd, back, avg, err := NaiveRatePair(j, i)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{fwd, back, avg} {
		if math.Abs(v-p) > 1e-18 {
			t.Errorf("pair estimate %v, want %v", v, p)
		}
	}
	if _, _, _, err := NaiveRatePair(i, j); err == nil {
		t.Error("reversed pair accepted")
	}
}

func TestNaiveTheta(t *testing.T) {
	// Build an exchange with known offset: clock reads 0.5 s ahead.
	p, c := 1e-9, 0.5
	in := Input{Ta: 1_000_000_000, Tf: 1_002_000_000, Tb: 1.0009, Te: 1.0011}
	// C(Ta) = 1.5, C(Tf) = 1.502; midpoint 1.501; server midpoint 1.001.
	got := NaiveTheta(in, p, c)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("NaiveTheta = %v, want 0.5", got)
	}
	if got := RTT(in, p); math.Abs(got-2e-3) > 1e-15 {
		t.Errorf("RTT = %v", got)
	}
	if got := ServerDelay(in); math.Abs(got-0.0002) > 1e-12 {
		t.Errorf("ServerDelay = %v", got)
	}
}

func TestRunUnderHighLoss(t *testing.T) {
	sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, timebase.Day, 55)
	sc.LossProb = 0.3
	tr, err := sim.Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	results, ex := runTrace(t, tr, defaultCfg())
	errs := offsetErrors(results, ex)
	var tail []float64
	for k, e := range errs {
		if ex[k].TrueTf > 2*timebase.Hour {
			tail = append(tail, math.Abs(e))
		}
	}
	sort.Float64s(tail)
	if med := tail[len(tail)/2]; med > 150*timebase.Microsecond {
		t.Errorf("median |offset error| %v under 30%% loss", med)
	}
}

// BenchmarkProcessSimTrace runs the engine over a full simulated day
// (the original end-to-end benchmark; the windowed throughput suite
// over 1M-packet synthetic traces lives in bench_test.go as
// BenchmarkProcess).
func BenchmarkProcessSimTrace(b *testing.B) {
	tr := mrIntTrace(b, timebase.Day, 1)
	ex := tr.Completed()
	inputs := make([]Input, len(ex))
	for i, e := range ex {
		inputs[i] = Input{Ta: e.Ta, Tf: e.Tf, Tb: e.Tb, Te: e.Te}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSync(defaultCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, in := range inputs {
			if _, err := s.Process(in); err != nil {
				b.Fatal(err)
			}
		}
	}
}

package core

import (
	"fmt"
	"math"
)

// NaiveRatePair computes the naive per-pair rate estimates of equation
// (17) from two exchanges j (earlier) and i (later): the forward-path
// estimate (Tb differences over Ta differences), the backward-path
// estimate (Te over Tf), and their average. These are the estimators of
// Figure 5, accurate only when queueing is small relative to the baseline
// Δ(TSC).
func NaiveRatePair(j, i Input) (fwd, back, avg float64, err error) {
	if i.Ta <= j.Ta || i.Tf <= j.Tf {
		return 0, 0, 0, fmt.Errorf("core: pair not increasing")
	}
	fwd = (i.Tb - j.Tb) / float64(i.Ta-j.Ta)
	back = (i.Te - j.Te) / float64(i.Tf-j.Tf)
	avg = (fwd + back) / 2
	if math.IsNaN(avg) || math.IsInf(avg, 0) || avg <= 0 {
		return 0, 0, 0, fmt.Errorf("core: degenerate pair estimate")
	}
	return fwd, back, avg, nil
}

// NaiveTheta computes the naive per-packet offset estimate of equation
// (19) for an exchange under the clock C(T) = p·T + c:
//
//	θ̂_i = (C(Ta)+C(Tf))/2 − (Tb+Te)/2
//
// It implicitly assumes a symmetric path (Δ = 0) and carries the raw
// network noise (q← − q→)/2 that Figure 6 exhibits.
func NaiveTheta(in Input, p, c float64) float64 {
	ca := float64(in.Ta)*p + c
	cf := float64(in.Tf)*p + c
	return (ca+cf)/2 - (in.Tb+in.Te)/2
}

// RTT computes the measured round-trip time of an exchange under period
// estimate p. Because both stamps come from the same counter, no offset
// knowledge is needed — the foundation of the RTT-based filtering
// approach (Section 5.1).
func RTT(in Input, p float64) float64 {
	return float64(in.Tf-in.Ta) * p
}

// ServerDelay computes the server turnaround d^ = Te − Tb, a time
// difference measured by the single (synchronized) server clock.
func ServerDelay(in Input) float64 { return in.Te - in.Tb }

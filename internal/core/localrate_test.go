package core

import (
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/timebase"
)

// scanLocalMinima is the direct O(window) implementation the argmin
// trackers replaced: the oldest record of minimal point error in the
// far sub-window [n−nLocalWin, n−nLocalWin+nLocalFar) and in the near
// sub-window [n−nLocalNear, n). Kept test-only as the equivalence
// oracle for pushLocalMinima/rebuildLocalMinima.
func (s *Sync) scanLocalMinima() (jSeq, iSeq int) {
	n := s.hist.Len()
	bestOf := func(i, j int) int {
		best := s.hist.At(i)
		for idx := i + 1; idx < j; idx++ {
			if r := s.hist.At(idx); r.pointErr < best.pointErr {
				best = r
			}
		}
		return best.seq
	}
	winStart := n - s.nLocalWin
	return bestOf(winStart, winStart+s.nLocalFar), bestOf(n-s.nLocalNear, n)
}

// TestLocalRateMinimaEquivalence drives the engine over traces that hit
// every revision path — upward level shifts, server identity re-bases,
// top-window slides — and asserts after every packet that the argmin
// trackers select exactly the records the direct sub-window scans
// would, including tie resolution (point-error ties at 0 are common:
// every record arriving at the current minimum RTT has one).
func TestLocalRateMinimaEquivalence(t *testing.T) {
	scenarios := []struct {
		name    string
		mutate  func(*sim.Scenario)
		identAt int
	}{
		{name: "steady"},
		{
			name: "upward-shift",
			mutate: func(sc *sim.Scenario) {
				sc.Server.Forward.Shifts = []netem.Shift{
					{At: 6 * timebase.Hour, Delta: 0.9 * timebase.Millisecond},
					{At: 14 * timebase.Hour, Delta: 1.3 * timebase.Millisecond},
				}
			},
		},
		{name: "identity-rebase", identAt: 1500},
		{
			name: "loss-and-gap",
			mutate: func(sc *sim.Scenario) {
				sc.LossProb = 0.2
				sc.Gaps = []sim.Gap{{From: 10 * timebase.Hour, To: 11 * timebase.Hour}}
			},
		},
	}

	for _, v := range scenarios {
		t.Run(v.name, func(t *testing.T) {
			sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, timebase.Day, 77)
			if v.mutate != nil {
				v.mutate(&sc)
			}
			tr, err := sim.Generate(sc)
			if err != nil {
				t.Fatal(err)
			}

			cfg := DefaultConfig(1.0/548655270, 16)
			cfg.UseLocalRate = true
			// Small windows force frequent slides and wide shift revisions.
			cfg.TopWindow = 1600 * 16
			cfg.ShiftWindow = 800 * 16
			cfg.LocalRateWindow = 5000
			s, err := NewSync(cfg)
			if err != nil {
				t.Fatal(err)
			}

			active := 0
			for k, ex := range tr.Completed() {
				if _, err := s.Process(Input{Ta: ex.Ta, Tf: ex.Tf, Tb: ex.Tb, Te: ex.Te}); err != nil {
					t.Fatalf("packet %d: %v", k, err)
				}
				if v.identAt > 0 {
					id := Identity{RefID: 0xC0A80101, Stratum: 1}
					if k >= v.identAt {
						id = Identity{RefID: 0xC0A80202, Stratum: 1}
					}
					s.ObserveIdentity(id)
				}
				if s.count <= s.nWarm+s.nLocalWin || s.hist.Len() < s.nLocalWin {
					continue
				}
				active++
				wantJ, wantI := s.scanLocalMinima()
				gotJ, okJ := s.farMin.MinSeq()
				gotI, okI := s.nearMin.MinSeq()
				if !okJ || !okI {
					t.Fatalf("packet %d: tracker empty (far ok=%v, near ok=%v)", k, okJ, okI)
				}
				if gotJ != wantJ || gotI != wantI {
					t.Fatalf("packet %d: tracker picked (far %d, near %d), scan picked (far %d, near %d)",
						k, gotJ, gotI, wantJ, wantI)
				}
			}
			if active < 100 {
				t.Fatalf("only %d active local-rate packets; test lost its teeth", active)
			}
		})
	}
}

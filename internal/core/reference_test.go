package core

import (
	"fmt"
	"math"
)

// refSync is the seed implementation of the engine, kept verbatim as
// the executable specification for TestGoldenEquivalence: plain slice
// history recopied at every slide, O(T_s) minimum scans per packet, and
// math.Exp weights. Algorithmically it IS the paper's engine; the
// production Sync must reproduce its outputs to within 1e-12 while
// doing amortized O(1) work per packet.
//
// Do not "fix" or optimize this type: its value is being the naive,
// obviously-correct rendition of Sections 5 and 6.
type refSync struct {
	cfg Config

	nOff, nLocalWin, nLocalNear, nLocalFar, nShift, nTop, nWarm int

	hist  []record
	count int

	p        float64
	c        float64
	pairJ    record
	pairI    record
	havePair bool
	pQual    float64

	rHat         float64
	lastShiftSeq int

	pl      float64
	plValid bool

	theta    float64
	thetaTf  uint64
	thetaErr float64
	haveTh   bool

	ident      Identity
	identKnown bool
}

func newRefSync(cfg Config) (*refSync, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &refSync{
		cfg:    cfg,
		nOff:   cfg.packets(cfg.OffsetWindow),
		nShift: cfg.packets(cfg.ShiftWindow),
		nTop:   cfg.packets(cfg.TopWindow),
		nWarm:  cfg.WarmupSamples,
		p:      cfg.PHatInit,
		rHat:   math.Inf(1),
	}
	if cfg.UseLocalRate {
		s.nLocalWin = cfg.packets(cfg.LocalRateWindow)
		s.nLocalNear = maxInt(1, s.nLocalWin/cfg.LocalRateW)
		s.nLocalFar = maxInt(1, 2*s.nLocalWin/cfg.LocalRateW)
	}
	if s.nTop < 2*s.nWarm {
		s.nTop = 2 * s.nWarm
	}
	return s, nil
}

func (s *refSync) clockRead(T uint64) float64 { return float64(T)*s.p + s.c }

func (s *refSync) Process(in Input) (Result, error) {
	if in.Tf <= in.Ta {
		return Result{}, fmt.Errorf("core: counter stamps not increasing (Ta=%d, Tf=%d)", in.Ta, in.Tf)
	}
	if len(s.hist) > 0 && in.Tf <= s.hist[len(s.hist)-1].tf {
		return Result{}, fmt.Errorf("core: exchange out of order (Tf=%d after %d)", in.Tf, s.hist[len(s.hist)-1].tf)
	}

	seq := s.count
	s.count++
	res := Result{Seq: seq, Warmup: seq < s.nWarm}

	rec := record{seq: seq, ta: in.Ta, tf: in.Tf, tb: in.Tb, te: in.Te}
	rec.rtt = spanSeconds(in.Ta, in.Tf, s.p)

	if rec.rtt < s.rHat {
		s.rHat = rec.rtt
	}
	rec.pointErr = rec.rtt - s.rHat

	if seq == 0 {
		s.c = in.Tb - float64(in.Ta)*s.p
	}

	s.updateRate(&rec, &res)

	rec.theta = s.naiveTheta(rec)
	res.ThetaNaive = rec.theta

	s.hist = append(s.hist, rec)

	s.detectUpwardShift(&res)
	s.updateLocalRate(&res)
	s.updateOffset(&rec, &res)
	s.slideTopWindow()

	res.PHat = s.p
	res.PQuality = s.pQual
	res.PLocal = s.pl
	res.PLocalValid = s.plValid
	res.ClockP, res.ClockC = s.p, s.c
	res.RTT = rec.rtt
	res.RTTHat = s.rHat
	res.PointError = s.hist[len(s.hist)-1].pointErr
	res.ThetaHat = s.theta
	return res, nil
}

func (s *refSync) naiveTheta(rec record) float64 {
	return (s.clockRead(rec.ta)+s.clockRead(rec.tf))/2 - (rec.tb+rec.te)/2
}

func (s *refSync) setRate(pNew float64, at uint64) {
	if pNew == s.p {
		return
	}
	s.c += float64(at) * (s.p - pNew)
	s.p = pNew
}

func (s *refSync) slideTopWindow() {
	if len(s.hist) < s.nTop {
		return
	}
	drop := s.nTop / 2
	s.hist = append(s.hist[:0:0], s.hist[drop:]...)

	s.recomputeRHat()

	if !s.havePair || s.pairI.seq <= s.pairJ.seq || s.pairJ.seq >= s.hist[0].seq {
		return
	}
	eStar := s.cfg.EStar()
	var newJ *record
	for idx := range s.hist {
		cand := &s.hist[idx]
		if cand.seq >= s.pairI.seq {
			break
		}
		if cand.rtt-s.rHat <= eStar {
			newJ = cand
			break
		}
	}
	if newJ == nil {
		best := math.Inf(1)
		for idx := range s.hist {
			cand := &s.hist[idx]
			if cand.seq >= s.pairI.seq {
				break
			}
			if e := cand.rtt - s.rHat; e < best {
				best = e
				newJ = cand
			}
		}
	}
	if newJ == nil {
		return
	}
	pNew, qual, ok := s.pairEstimate(*newJ, s.pairI)
	s.pairJ = *newJ
	if ok && qual < s.pQual {
		s.setRate(pNew, s.hist[len(s.hist)-1].tf)
		s.pQual = qual
	}
}

func (s *refSync) recomputeRHat() {
	m := math.Inf(1)
	for idx := range s.hist {
		rec := &s.hist[idx]
		if rec.seq < s.lastShiftSeq {
			continue
		}
		if rec.rtt < m {
			m = rec.rtt
		}
	}
	if !math.IsInf(m, 1) {
		s.rHat = m
	}
}

func (s *refSync) detectUpwardShift(res *Result) {
	if len(s.hist) < s.nShift || s.count <= s.nWarm {
		return
	}
	start := len(s.hist) - s.nShift
	rl := math.Inf(1)
	for idx := start; idx < len(s.hist); idx++ {
		if s.hist[idx].rtt < rl {
			rl = s.hist[idx].rtt
		}
	}
	if rl-s.rHat > s.cfg.ShiftThresholdFactor*s.cfg.E() {
		s.rHat = rl
		s.lastShiftSeq = s.hist[start].seq
		for idx := start; idx < len(s.hist); idx++ {
			s.hist[idx].pointErr = s.hist[idx].rtt - s.rHat
		}
		if s.havePair {
			if _, qual, ok := s.pairEstimate(s.pairJ, s.pairI); ok {
				s.pQual = qual
			}
		}
		res.UpwardShiftDetected = true
	}
}

func (s *refSync) pairEstimate(j, i record) (p float64, quality float64, ok bool) {
	if i.seq == j.seq || i.ta <= j.ta || i.tf <= j.tf {
		return 0, 0, false
	}
	fwd := (i.tb - j.tb) / float64(i.ta-j.ta)
	back := (i.te - j.te) / float64(i.tf-j.tf)
	p = (fwd + back) / 2
	if !(p > 0) || math.IsInf(p, 0) || math.IsNaN(p) {
		return 0, 0, false
	}
	span := float64(i.tf-j.tf) * s.p
	quality = ((i.rtt - s.rHat) + (j.rtt - s.rHat)) / span
	return p, quality, true
}

func (s *refSync) updateRate(rec *record, res *Result) {
	if s.count <= 1 {
		return
	}

	if s.count <= s.nWarm {
		s.warmupRate(rec, res)
		return
	}

	eStar := s.cfg.EStar()
	if rec.rtt-s.rHat > eStar {
		return
	}
	res.Accepted = true

	if !s.havePair {
		for idx := range s.hist {
			cand := s.hist[idx]
			if cand.rtt-s.rHat <= eStar && cand.tf < rec.tf {
				s.pairJ = cand
				s.havePair = true
				break
			}
		}
		if !s.havePair {
			s.pairJ = *rec
			s.havePair = true
			return
		}
	}

	pNew, qual, ok := s.pairEstimate(s.pairJ, *rec)
	if !ok {
		return
	}
	if allowed := s.pQual + qual + s.cfg.RateSanity; math.Abs(pNew/s.p-1) > allowed {
		res.RateSanityTriggered = true
		return
	}
	s.pairI = *rec
	s.setRate(pNew, rec.tf)
	s.pQual = qual
	res.RateUpdated = true
}

func (s *refSync) warmupRate(rec *record, res *Result) {
	n := len(s.hist)
	w := n / 4
	if w < 1 {
		w = 1
	}
	bestFar, bestNear := -1, -1
	bestFarErr, bestNearErr := math.Inf(1), math.Inf(1)
	for idx := 0; idx < w && idx < n; idx++ {
		if e := s.hist[idx].rtt - s.rHat; e < bestFarErr {
			bestFarErr = e
			bestFar = idx
		}
	}
	for idx := n - w; idx < n; idx++ {
		if idx < 0 {
			continue
		}
		if e := s.hist[idx].rtt - s.rHat; e < bestNearErr {
			bestNearErr = e
			bestNear = idx
		}
	}
	nearRec := *rec
	if cur := rec.rtt - s.rHat; cur > bestNearErr && bestNear >= 0 {
		nearRec = s.hist[bestNear]
	}
	if bestFar < 0 {
		return
	}
	farRec := s.hist[bestFar]
	if farRec.seq == nearRec.seq {
		return
	}
	pNew, qual, ok := s.pairEstimate(farRec, nearRec)
	if !ok {
		return
	}
	s.pairJ, s.pairI = farRec, nearRec
	s.havePair = true
	s.setRate(pNew, rec.tf)
	s.pQual = qual
	res.RateUpdated = true
	res.Accepted = true
}

func (s *refSync) updateLocalRate(res *Result) {
	if !s.cfg.UseLocalRate {
		return
	}
	if s.count <= s.nWarm+s.nLocalWin || len(s.hist) < s.nLocalWin {
		return
	}

	n := len(s.hist)
	if n >= 2 {
		gap := spanSeconds(s.hist[n-2].tf, s.hist[n-1].tf, s.p)
		if gap > s.cfg.LocalRateWindow/2 {
			s.plValid = false
			return
		}
	}

	win := s.hist[n-s.nLocalWin:]
	far := win[:s.nLocalFar]
	near := win[len(win)-s.nLocalNear:]

	bestOf := func(rs []record) record {
		best := rs[0]
		for _, r := range rs[1:] {
			if r.pointErr < best.pointErr {
				best = r
			}
		}
		return best
	}
	j, i := bestOf(far), bestOf(near)

	pCand, qual, ok := s.pairEstimate(j, i)
	if !ok {
		return
	}

	prev := s.pl
	if prev == 0 {
		prev = s.p
	}
	switch {
	case qual > s.cfg.LocalRateQuality:
		s.pl = prev
	case math.Abs(pCand/prev-1) > s.cfg.RateSanity:
		s.pl = prev
		res.RateSanityTriggered = true
	default:
		s.pl = pCand
	}
	s.plValid = true
}

func (s *refSync) updateOffset(rec *record, res *Result) {
	e := s.cfg.E()
	if s.count <= s.nWarm {
		e *= s.cfg.WarmupEInflation
	}
	eStarStar := s.cfg.EStarStarFactor * e

	n := len(s.hist)
	start := n - s.nOff
	if start < 0 {
		start = 0
	}
	win := s.hist[start:]

	gl := 0.0
	useGl := s.cfg.UseLocalRate && s.plValid && s.pl > 0 && s.p > 0
	if useGl {
		gl = s.pl/s.p - 1
	}

	now := rec.tf
	minET := math.Inf(1)
	sumW, sumWTheta := 0.0, 0.0
	for idx := range win {
		r := &win[idx]
		age := spanSeconds(r.tf, now, s.p)
		et := r.pointErr + s.cfg.AgingRate*age
		if et < minET {
			minET = et
		}
		w := math.Exp(-(et / e) * (et / e))
		pred := r.theta
		if useGl {
			pred -= gl * age
		}
		sumW += w
		sumWTheta += w * pred
	}

	var cand float64
	switch {
	case !s.haveTh:
		cand = rec.theta
	case minET > eStarStar || sumW == 0:
		res.PoorQuality = true
		prevAge := spanSeconds(s.thetaTf, now, s.p)
		prevPred := s.theta
		if useGl {
			prevPred -= gl * prevAge
		}
		gapped := false
		if n >= 2 {
			gapped = spanSeconds(s.hist[n-2].tf, now, s.p) > s.cfg.LocalRateWindow/2
		}
		if gapped {
			wNew := math.Exp(-(rec.pointErr / e) * (rec.pointErr / e))
			agedErr := s.thetaErr + s.cfg.AgingRate*prevAge
			wOld := math.Exp(-(agedErr / e) * (agedErr / e))
			if wNew+wOld > 0 {
				cand = (wNew*rec.theta + wOld*prevPred) / (wNew + wOld)
			} else {
				cand = prevPred
			}
			s.thetaErr = math.Min(rec.pointErr, agedErr)
		} else {
			cand = prevPred
			s.thetaErr += s.cfg.AgingRate * prevAge
		}
	default:
		cand = sumWTheta / sumW
		s.thetaErr = minET
	}

	rateUnc := s.cfg.HardwareRateBound
	if s.havePair && s.pQual > rateUnc {
		rateUnc = s.pQual
	}
	limit := s.cfg.OffsetSanity + rateUnc*spanSeconds(s.thetaTf, now, s.p)
	if s.haveTh && s.count > s.nWarm && math.Abs(cand-s.theta) > limit {
		res.OffsetSanityTriggered = true
		cand = s.theta
	} else {
		s.thetaTf = now
	}

	s.theta = cand
	s.haveTh = true
}

func (s *refSync) ObserveIdentity(id Identity) bool {
	if !id.valid() {
		return false
	}
	if !s.identKnown {
		s.ident = id
		s.identKnown = true
		return false
	}
	if id == s.ident {
		return false
	}
	s.ident = id
	if len(s.hist) == 0 {
		return true
	}
	last := &s.hist[len(s.hist)-1]
	s.rHat = last.rtt
	s.lastShiftSeq = last.seq
	last.pointErr = 0
	if s.havePair {
		if _, qual, ok := s.pairEstimate(s.pairJ, s.pairI); ok {
			s.pQual = qual
		}
	}
	return true
}

package core

import (
	"math"
	"testing"

	"repro/internal/netem"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/timebase"
)

// TestGoldenEquivalence runs the optimized engine and the seed
// reference engine (reference_test.go) over simulated scenarios and
// demands per-packet agreement:
//
//   - PHat, PQuality, RTT, RTTHat, PointError, ThetaNaive and every
//     boolean flag must be bit-identical — the ring buffer, the minimum
//     deques, and the pair bookkeeping perform the exact same float
//     operations as the seed's scans, just without the rescanning;
//   - ThetaHat may differ by at most 1e-12 (in practice ~1e-16): the
//     only sources of divergence are expNeg vs math.Exp (≤ ~1e-15
//     relative per weight) and the dropped sub-exp(−81) weights beyond
//     the cutoff.
//
// The scenario set exercises every code path whose data layer changed:
// steady state, warmup, top-window slides (small TopWindow), upward
// level shifts, server faults (sanity + poor-quality fallbacks), long
// outage gaps (gapped fallback), packet loss, the local-rate
// refinement, and server identity re-bases.
// TestGoldenIdentityRebaseCongestion pins the subtlest interaction of
// the deque-based minimum tracking: after a server identity re-base,
// the level-shift window still spans pre-rebase packets for the next
// T_s packets, so a congestion burst right after the change must NOT
// trigger an upward-shift detection until the window has fully rolled
// past the re-base point — exactly as the reference's plain window
// scan behaves. (An earlier draft evicted the r̂ deque at the re-base,
// which made the optimized engine fire the detector T_s−1 packets
// early under this trace shape.)
func TestGoldenIdentityRebaseCongestion(t *testing.T) {
	cfg := defaultCfg()
	cfg.TopWindow = 256 * 16
	cfg.ShiftWindow = 32 * 16
	cfg.OffsetWindow = 16 * 16
	cfg.LocalRateWindow = 64 * 16
	cfg.WarmupSamples = 8

	opt, err := NewSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := newRefSync(cfg)
	if err != nil {
		t.Fatal(err)
	}

	src := rng.New(77)
	const p = 2e-9
	counter := uint64(1000)
	serverT := 0.0
	sawShift := false
	for i := 0; i < 400; i++ {
		counter += uint64(16 / p)
		serverT += 16
		rtt := 300e-6 + src.Exponential(20e-6)
		if i > 100 && i <= 160 {
			rtt += 1.3e-3 // sustained congestion right after the re-base
		}
		ta := counter
		tf := ta + uint64(rtt/p)
		in := Input{Ta: ta, Tf: tf, Tb: serverT + rtt/3, Te: serverT + rtt/3 + 20e-6}
		ro, err := opt.Process(in)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := ref.Process(in)
		if err != nil {
			t.Fatal(err)
		}
		counter = tf

		id := Identity{RefID: 1, Stratum: 1}
		if i >= 100 {
			id = Identity{RefID: 2, Stratum: 2}
		}
		if got, want := opt.ObserveIdentity(id), ref.ObserveIdentity(id); got != want {
			t.Fatalf("packet %d: ObserveIdentity %v, reference %v", i, got, want)
		}

		if ro.UpwardShiftDetected != rr.UpwardShiftDetected {
			t.Fatalf("packet %d: UpwardShiftDetected = %v, reference %v",
				i, ro.UpwardShiftDetected, rr.UpwardShiftDetected)
		}
		if ro.RTTHat != rr.RTTHat || ro.PointError != rr.PointError || ro.PHat != rr.PHat {
			t.Fatalf("packet %d: RTTHat/PointError/PHat diverged: (%v,%v,%v) vs (%v,%v,%v)",
				i, ro.RTTHat, ro.PointError, ro.PHat, rr.RTTHat, rr.PointError, rr.PHat)
		}
		if d := math.Abs(ro.ThetaHat - rr.ThetaHat); d > 1e-12 {
			t.Fatalf("packet %d: ThetaHat Δ %g > 1e-12", i, d)
		}
		sawShift = sawShift || rr.UpwardShiftDetected
	}
	if !sawShift {
		t.Fatal("trace never triggered the upward-shift detector; test lost its teeth")
	}
}

func TestGoldenEquivalence(t *testing.T) {
	type variant struct {
		name     string
		scenario func() sim.Scenario
		cfg      func() Config
		identAt  int // ObserveIdentity change at this seq (0 = never)
	}

	smallWindows := func() Config {
		cfg := defaultCfg()
		cfg.TopWindow = 1600 * 16 // nTop = 1600: slides every 800 packets
		cfg.ShiftWindow = 800 * 16
		cfg.LocalRateWindow = 5000
		cfg.OffsetWindow = 1000
		return cfg
	}

	variants := []variant{
		{
			name: "machineroom-serverint-default",
			scenario: func() sim.Scenario {
				return sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, 2*timebase.Day, 1001)
			},
			cfg: defaultCfg,
		},
		{
			name: "small-topwindow-slides",
			scenario: func() sim.Scenario {
				return sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, 2*timebase.Day, 1002)
			},
			cfg: smallWindows,
		},
		{
			name: "upward-shift",
			scenario: func() sim.Scenario {
				sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, timebase.Day, 1003)
				sc.Server.Forward.Shifts = []netem.Shift{{At: 8 * timebase.Hour, Delta: 0.9 * timebase.Millisecond}}
				return sc
			},
			cfg: smallWindows,
		},
		{
			name: "server-fault-localrate",
			scenario: func() sim.Scenario {
				sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, timebase.Day, 1004)
				sc.Server.Server.Faults = []netem.FaultWindow{
					{From: 6 * timebase.Hour, To: 6*timebase.Hour + 20*timebase.Minute, Offset: 150 * timebase.Millisecond},
				}
				return sc
			},
			cfg: func() Config {
				cfg := smallWindows()
				cfg.UseLocalRate = true
				return cfg
			},
		},
		{
			// Exercises rebuildLocalMinima: the shift revision rewrites
			// point errors cached in the near/far argmin deques (with
			// smallWindows, nShift=800 spans the whole local window).
			name: "upward-shift-localrate",
			scenario: func() sim.Scenario {
				sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, timebase.Day, 1008)
				sc.Server.Forward.Shifts = []netem.Shift{{At: 8 * timebase.Hour, Delta: 0.9 * timebase.Millisecond}}
				return sc
			},
			cfg: func() Config {
				cfg := smallWindows()
				cfg.UseLocalRate = true
				return cfg
			},
		},
		{
			name: "identity-rebase-localrate",
			scenario: func() sim.Scenario {
				return sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, timebase.Day, 1009)
			},
			cfg: func() Config {
				cfg := smallWindows()
				cfg.UseLocalRate = true
				return cfg
			},
			identAt: 2000,
		},
		{
			name: "outage-gap",
			scenario: func() sim.Scenario {
				sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, timebase.Day, 1005)
				sc.Gaps = []sim.Gap{{From: 8 * timebase.Hour, To: 16 * timebase.Hour}}
				return sc
			},
			cfg: defaultCfg,
		},
		{
			name: "high-loss",
			scenario: func() sim.Scenario {
				sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, timebase.Day, 1006)
				sc.LossProb = 0.3
				return sc
			},
			cfg: smallWindows,
		},
		{
			name: "identity-rebase",
			scenario: func() sim.Scenario {
				return sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, timebase.Day, 1007)
			},
			cfg:     smallWindows,
			identAt: 2000,
		},
	}

	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			tr, err := sim.Generate(v.scenario())
			if err != nil {
				t.Fatal(err)
			}
			cfg := v.cfg()
			opt, err := NewSync(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := newRefSync(cfg)
			if err != nil {
				t.Fatal(err)
			}

			var worstTheta float64
			sawSlide, sawShift, sawPoor := false, false, false
			for k, ex := range tr.Completed() {
				in := Input{Ta: ex.Ta, Tf: ex.Tf, Tb: ex.Tb, Te: ex.Te}
				ro, err := opt.Process(in)
				if err != nil {
					t.Fatalf("packet %d: optimized: %v", k, err)
				}
				rr, err := ref.Process(in)
				if err != nil {
					t.Fatalf("packet %d: reference: %v", k, err)
				}
				if v.identAt > 0 {
					id := Identity{RefID: 0xC0A80101, Stratum: 1}
					if k >= v.identAt {
						id = Identity{RefID: 0xC0A80202, Stratum: 2}
					}
					if got, want := opt.ObserveIdentity(id), ref.ObserveIdentity(id); got != want {
						t.Fatalf("packet %d: ObserveIdentity %v vs reference %v", k, got, want)
					}
				}

				exact := []struct {
					name      string
					got, want float64
				}{
					{"PHat", ro.PHat, rr.PHat},
					{"PQuality", ro.PQuality, rr.PQuality},
					{"PLocal", ro.PLocal, rr.PLocal},
					{"ClockC", ro.ClockC, rr.ClockC},
					{"RTT", ro.RTT, rr.RTT},
					{"RTTHat", ro.RTTHat, rr.RTTHat},
					{"PointError", ro.PointError, rr.PointError},
					{"ThetaNaive", ro.ThetaNaive, rr.ThetaNaive},
				}
				for _, c := range exact {
					if c.got != c.want {
						t.Fatalf("packet %d: %s = %v, reference %v (Δ %g)",
							k, c.name, c.got, c.want, c.got-c.want)
					}
				}
				flags := []struct {
					name      string
					got, want bool
				}{
					{"Accepted", ro.Accepted, rr.Accepted},
					{"RateUpdated", ro.RateUpdated, rr.RateUpdated},
					{"PLocalValid", ro.PLocalValid, rr.PLocalValid},
					{"PoorQuality", ro.PoorQuality, rr.PoorQuality},
					{"UpwardShiftDetected", ro.UpwardShiftDetected, rr.UpwardShiftDetected},
					{"OffsetSanityTriggered", ro.OffsetSanityTriggered, rr.OffsetSanityTriggered},
					{"RateSanityTriggered", ro.RateSanityTriggered, rr.RateSanityTriggered},
					{"Warmup", ro.Warmup, rr.Warmup},
				}
				for _, c := range flags {
					if c.got != c.want {
						t.Fatalf("packet %d: flag %s = %v, reference %v", k, c.name, c.got, c.want)
					}
				}
				if d := math.Abs(ro.ThetaHat - rr.ThetaHat); d > 1e-12 {
					t.Fatalf("packet %d: ThetaHat = %v, reference %v (Δ %g > 1e-12)",
						k, ro.ThetaHat, rr.ThetaHat, d)
				} else if d > worstTheta {
					worstTheta = d
				}
				sawSlide = sawSlide || len(ref.hist) <= ref.nTop/2+1 && k > ref.nTop
				sawShift = sawShift || rr.UpwardShiftDetected
				sawPoor = sawPoor || rr.PoorQuality
			}
			t.Logf("%s: %d packets, worst |ΔThetaHat| = %.3g (slide=%v shift=%v poor=%v)",
				v.name, len(tr.Completed()), worstTheta, sawSlide, sawShift, sawPoor)
		})
	}
}

package core

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// feedClean drives n clean synthetic exchanges through the engine and
// returns the per-packet results.
func feedClean(t testing.TB, s *Sync, n int, seed uint64) []Result {
	t.Helper()
	src := rng.New(seed)
	const p = 2e-9
	counter := uint64(1000)
	serverT := 0.0
	results := make([]Result, 0, n)
	for i := 0; i < n; i++ {
		counter += uint64(16 / p)
		serverT += 16
		rtt := 300e-6 + src.Exponential(50e-6)
		ta := counter
		tf := ta + uint64(rtt/p)
		res, err := s.Process(Input{Ta: ta, Tf: tf, Tb: serverT + rtt/3, Te: serverT + rtt/3 + 20e-6})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
		counter = tf
	}
	return results
}

// TestWarmupRateSmallHistory exercises the near/far warmup scheme in
// its smallest configurations: the first packets after seq 0, where
// the quarter-width sub-windows clamp to single packets and the near
// window start must clamp to the history head (the guard that
// rate.go's explicit nearStart clamp replaces — the seed code carried
// an unreachable `idx < 0` continue inside the scan loop instead).
func TestWarmupRateSmallHistory(t *testing.T) {
	s, err := NewSync(DefaultConfig(2e-9, 16))
	if err != nil {
		t.Fatal(err)
	}
	results := feedClean(t, s, 6, 21)

	// Packet 0 cannot estimate; packet 1 must produce the naive pair
	// estimate p̂_{2,1} (the paper's first warmup estimate).
	if results[0].RateUpdated {
		t.Error("rate updated on the very first packet")
	}
	if !results[1].RateUpdated {
		t.Error("no rate estimate from the second packet")
	}
	for k, res := range results[1:] {
		if !(res.PHat > 0) || math.IsInf(res.PHat, 0) {
			t.Fatalf("packet %d: bad warmup rate %v", k+1, res.PHat)
		}
		// The synthetic counter runs at exactly 2e-9 s/cycle with small
		// delay noise; even the earliest pair cannot be off by 1%.
		if rel := math.Abs(res.PHat/2e-9 - 1); rel > 0.01 {
			t.Fatalf("packet %d: warmup rate off by %v", k+1, rel)
		}
	}
}

// TestWarmupRateEmptyHistory calls the warmup estimator white-box with
// no history at all: the clamp must hold (no panic, no pair) even
// though Process can never reach this state (count <= 1 returns
// early).
func TestWarmupRateEmptyHistory(t *testing.T) {
	s, err := NewSync(DefaultConfig(2e-9, 16))
	if err != nil {
		t.Fatal(err)
	}
	rec := record{seq: 0, ta: 1000, tf: 2000, tb: 1, te: 1.0001, rtt: 2e-6}
	var res Result
	s.warmupRate(&rec, &res) // must not panic on n = 0
	if s.havePair || res.RateUpdated {
		t.Error("warmup with empty history fabricated a pair")
	}
}

// TestSlidePairReplacement drives the engine far past the top window
// so that the rate pair's older packet (j) is evicted by slides, and
// asserts the seed's replacement contract: after every slide the pair
// has in-window provenance (j's sequence number at or after the
// retained head, and still older than i) and the pair quality never
// worsens across the slide itself.
func TestSlidePairReplacement(t *testing.T) {
	cfg := DefaultConfig(2e-9, 16)
	cfg.TopWindow = 64 * 16 // tiny top window: slides every 32 packets
	cfg.WarmupSamples = 8
	cfg.OffsetWindow = 8 * 16
	cfg.ShiftWindow = 16 * 16
	cfg.LocalRateWindow = 16 * 16
	// At these degenerate window sizes the default hardware-scale rate
	// sanity can lock the pair permanently (the i packet then also
	// leaves the window and no replacement candidate remains — the
	// stale pair persists by design). Loosen it so rate updates keep
	// flowing and the replacement path is what this test exercises.
	cfg.RateSanity = 1e-5
	s, err := NewSync(cfg)
	if err != nil {
		t.Fatal(err)
	}

	slides, replaced := 0, 0
	src := rng.New(31)
	const p = 2e-9
	counter := uint64(1000)
	serverT := 0.0
	for i := 0; i < 1000; i++ {
		counter += uint64(16 / p)
		serverT += 16
		rtt := 300e-6 + src.Exponential(50e-6)

		preFront := -1
		preQual := math.Inf(1)
		willSlide := s.hist.Len() == s.nTop-1 // this Process call will slide
		if willSlide {
			preFront = s.hist.Front().seq
			preQual = s.pQual
			// Congest the sliding packet so the rate filter rejects it:
			// pQual then cannot change before slideTopWindow runs, and
			// the pre/post comparison isolates the slide itself.
			rtt += 5e-3
		}
		ta := counter
		tf := ta + uint64(rtt/p)
		res, err := s.Process(Input{Ta: ta, Tf: tf, Tb: serverT + rtt/3, Te: serverT + rtt/3 + 20e-6})
		if err != nil {
			t.Fatal(err)
		}
		counter = tf

		if willSlide {
			slides++
			if s.hist.Front().seq <= preFront {
				t.Fatalf("packet %d: top window did not slide", i)
			}
			if !s.havePair {
				t.Fatalf("packet %d: pair lost across slide", i)
			}
			// Replacement contract: when the evicted j still has a
			// possible successor (some retained packet older than i),
			// the new j must have in-window provenance. When i itself
			// left the window there is no candidate and the stale pair
			// persists as a long-baseline anchor — allowed by design.
			if s.pairI.seq > s.hist.Front().seq {
				if s.pairJ.seq < s.hist.Front().seq {
					t.Fatalf("packet %d: pair j (seq %d) evicted but not replaced (front seq %d)",
						i, s.pairJ.seq, s.hist.Front().seq)
				}
				replaced++
			}
			if s.pairJ.seq >= s.pairI.seq {
				t.Fatalf("packet %d: pair order violated after slide (j %d >= i %d)",
					i, s.pairJ.seq, s.pairI.seq)
			}
			// The slide may only keep or improve the pair quality: the
			// replacement adopts a new rate only when its bound beats
			// the pre-slide one. (The congested packet above guarantees
			// no rate update intervened in this Process call.)
			if s.pQual > preQual {
				t.Fatalf("packet %d: pQual worsened across slide (%v -> %v)",
					i, preQual, s.pQual)
			}
			_ = res
		}
	}
	if slides < 20 {
		t.Fatalf("only %d slides exercised, want >= 20", slides)
	}
	if replaced < 20 {
		t.Fatalf("only %d slides exercised the pair replacement, want >= 20", replaced)
	}
}

package core

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// TestExpNegAccuracy sweeps the full domain the engine can produce
// ((E^T/E)² up to the weight cutoff squared, plus far beyond) and
// requires ~5e-13 relative agreement with math.Exp (the degree-3
// reduction polynomial truncates at r⁴/24 ≈ 1.4e-13): comfortably
// tighter than what the engine's 1e-12 equivalence budget needs from
// individual weights.
func TestExpNegAccuracy(t *testing.T) {
	checkRel := func(x float64) {
		t.Helper()
		want := math.Exp(-x)
		got := expNeg(x)
		if want == 0 {
			if got != 0 {
				t.Fatalf("expNeg(%g) = %g, want 0", x, got)
			}
			return
		}
		if rel := math.Abs(got/want - 1); rel > 5e-13 {
			t.Fatalf("expNeg(%g) = %g, want %g (rel err %g)", x, got, want, rel)
		}
	}
	// Dense sweep over the hot range [0, 85] (cutoff factor 9 squared
	// is 81) and sparser over the extended range.
	for x := 0.0; x <= 85; x += 0.0009765625 {
		checkRel(x)
	}
	for x := 85.0; x <= 670; x += 0.125 {
		checkRel(x)
	}
	// Random fuzz including subnormal-adjacent magnitudes of x.
	src := rng.New(17)
	for i := 0; i < 200000; i++ {
		checkRel(src.Float64() * 85)
	}
}

func TestExpNegEdgeCases(t *testing.T) {
	if got := expNeg(0); got != 1 {
		t.Errorf("expNeg(0) = %g, want 1", got)
	}
	if got := expNeg(700); got != 0 {
		t.Errorf("expNeg(700) = %g, want hard 0 past the underflow guard", got)
	}
	if got := expNeg(1e300); got != 0 {
		t.Errorf("expNeg(1e300) = %g, want 0", got)
	}
	// Out-of-domain inputs fall back to math.Exp rather than garbage.
	if got, want := expNeg(-2), math.Exp(2); got != want {
		t.Errorf("expNeg(-2) = %g, want %g", got, want)
	}
	if got := expNeg(math.NaN()); !math.IsNaN(got) {
		t.Errorf("expNeg(NaN) = %g, want NaN", got)
	}
	// Tiny arguments: the polynomial path must stay exact-ish at 1.
	for _, x := range []float64{1e-300, 1e-18, 1e-9, 2.7e-3} {
		want := math.Exp(-x)
		if got := expNeg(x); math.Abs(got/want-1) > 5e-13 {
			t.Errorf("expNeg(%g) = %.17g, want %.17g", x, got, want)
		}
	}
}

func BenchmarkExpNeg(b *testing.B) {
	xs := make([]float64, 1024)
	src := rng.New(3)
	for i := range xs {
		xs[i] = src.Float64() * 81
	}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += expNeg(xs[i&1023])
	}
	_ = sink
}

func BenchmarkMathExp(b *testing.B) {
	xs := make([]float64, 1024)
	src := rng.New(3)
	for i := range xs {
		xs[i] = src.Float64() * 81
	}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += math.Exp(-xs[i&1023])
	}
	_ = sink
}

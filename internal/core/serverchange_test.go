package core

import (
	"testing"

	"repro/internal/rng"
)

// feedSteady feeds n clean exchanges with the given minimum RTT and
// returns the engine.
func feedSteady(t *testing.T, s *Sync, src *rng.Source, n int, minRTT float64,
	counter *uint64, serverT *float64) {
	t.Helper()
	const p = 2e-9
	for i := 0; i < n; i++ {
		*counter += uint64(16 / p)
		*serverT += 16
		rtt := minRTT + src.Exponential(30e-6)
		ta := *counter
		tf := ta + uint64(rtt/p)
		if _, err := s.Process(Input{Ta: ta, Tf: tf, Tb: *serverT + rtt/3,
			Te: *serverT + rtt/3 + 20e-6}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestObserveIdentityNoChange(t *testing.T) {
	s, err := NewSync(DefaultConfig(2e-9, 16))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	counter, serverT := uint64(1000), 0.0
	feedSteady(t, s, src, 10, 400e-6, &counter, &serverT)

	id := Identity{RefID: 0x47505300, Stratum: 1} // "GPS"
	if s.ObserveIdentity(id) {
		t.Error("first identity observation reported as change")
	}
	if s.ObserveIdentity(id) {
		t.Error("unchanged identity reported as change")
	}
	got, ok := s.CurrentIdentity()
	if !ok || got != id {
		t.Errorf("CurrentIdentity = %+v/%v", got, ok)
	}
}

func TestObserveIdentityInvalidIgnored(t *testing.T) {
	s, err := NewSync(DefaultConfig(2e-9, 16))
	if err != nil {
		t.Fatal(err)
	}
	if s.ObserveIdentity(Identity{}) {
		t.Error("zero identity reported as change")
	}
	if _, ok := s.CurrentIdentity(); ok {
		t.Error("zero identity stored")
	}
}

func TestObserveIdentityRebasesMinimum(t *testing.T) {
	s, err := NewSync(DefaultConfig(2e-9, 16))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(2)
	counter, serverT := uint64(1000), 0.0

	// Old server: 400 µs minimum.
	feedSteady(t, s, src, 200, 400e-6, &counter, &serverT)
	s.ObserveIdentity(Identity{RefID: 1, Stratum: 1})
	oldRHat := s.RTTHat()
	if oldRHat > 450e-6 {
		t.Fatalf("old r̂ = %v", oldRHat)
	}

	// New server appears with a HIGHER minimum (900 µs): without the
	// identity signal this would take a full shift window to detect.
	feedSteady(t, s, src, 1, 900e-6, &counter, &serverT)
	if !s.ObserveIdentity(Identity{RefID: 2, Stratum: 1}) {
		t.Fatal("server change not detected")
	}
	if got := s.RTTHat(); got < 850e-6 {
		t.Errorf("r̂ = %v after server change, want re-based to ~900µs", got)
	}

	// Estimation continues normally against the new server.
	feedSteady(t, s, src, 100, 900e-6, &counter, &serverT)
	if got := s.RTTHat(); got < 850e-6 || got > 950e-6 {
		t.Errorf("r̂ = %v tracking new server", got)
	}
	// The rate estimate must have survived the change.
	p, _ := s.Clock()
	if rel := p/2e-9 - 1; rel > 1e-5 || rel < -1e-5 {
		t.Errorf("rate estimate %v disturbed by server change", p)
	}
}

func TestObserveIdentityStratumChange(t *testing.T) {
	s, err := NewSync(DefaultConfig(2e-9, 16))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	counter, serverT := uint64(1000), 0.0
	feedSteady(t, s, src, 50, 400e-6, &counter, &serverT)
	s.ObserveIdentity(Identity{RefID: 9, Stratum: 1})
	if !s.ObserveIdentity(Identity{RefID: 9, Stratum: 2}) {
		t.Error("stratum change not detected")
	}
}

package core

import (
	"fmt"
	"math"

	"repro/internal/window"
)

// Input is the raw data of one completed NTP exchange: everything the
// algorithms are allowed to see.
type Input struct {
	Ta, Tf uint64  // host counter stamps (send, receive)
	Tb, Te float64 // server stamps in seconds (receive, transmit)
}

// Result reports the synchronization state after processing one packet.
type Result struct {
	// Seq is the 0-based index of the processed packet.
	Seq int

	// PHat is the current global rate estimate (seconds per cycle) and
	// PQuality its estimated error bound (dimensionless).
	PHat     float64
	PQuality float64

	// PLocal is the current quasi-local rate estimate and PLocalValid
	// whether it is fresh enough to use (always false when the local
	// rate refinement is disabled).
	PLocal      float64
	PLocalValid bool

	// ThetaHat is the current estimate of the offset of the uncorrected
	// clock C(t), evaluated at this packet's arrival.
	ThetaHat float64
	// ThetaNaive is this packet's naive per-packet offset estimate
	// (equation 19), the raw material of the filter.
	ThetaNaive float64

	// ClockP and ClockC define the uncorrected clock in force after this
	// packet: C(T) = ClockP·T + ClockC.
	ClockP, ClockC float64

	// RTT is this packet's measured round-trip time, RTTHat the current
	// minimum estimate r̂, and PointError E_i = RTT − r̂ (after any
	// level-shift revision).
	RTT, RTTHat, PointError float64

	// Accepted reports whether the packet was accepted into the global
	// rate pair; RateUpdated whether p̂ changed.
	Accepted    bool
	RateUpdated bool

	// Quality flags.
	OffsetSanityTriggered bool // the E_s check duplicated the previous θ̂
	RateSanityTriggered   bool // the local-rate sanity duplicated p̂_l
	PoorQuality           bool // the E** fallback was used
	UpwardShiftDetected   bool // an upward level shift was detected now
	Warmup                bool // packet processed during warmup
}

// scanRec is the offset filter's view of a record, kept in a parallel
// ring: the weighted scan of updateOffset touches only these three
// fields, and packing them in 24 bytes (instead of striding across
// 64-byte records) cuts the scan's cache traffic by more than half.
// The ftf field is float64(tf); the one extra rounding against the
// reference's float64(now−tf) perturbs E^T by ~1e-19 s, invisible at
// the engine's 1e-12 equivalence budget.
type scanRec struct {
	ftf      float64
	pointErr float64
	theta    float64
}

// record is the per-packet history entry kept inside the top window.
type record struct {
	seq    int
	ta, tf uint64
	tb, te float64
	rtt    float64 // seconds, measured with p̂ at arrival
	// pointErr is E_i relative to the r̂ in force at arrival, revised
	// backwards when an upward level shift is detected (Section 6.2).
	// It is never negative: r̂ is at or below the record's own RTT when
	// the value is assigned, both at arrival and at revisions.
	pointErr float64
	theta    float64 // naive offset estimate θ̂_i (equation 19)
}

// Sync is the synchronization engine. Feed it completed exchanges in
// arrival order with Process; lost packets are simply never fed
// (Section 6.1: "any lost packets are simply excluded from the
// analysis"). Sync is not safe for concurrent use.
//
// Every per-packet operation is amortized O(1) in the window sizes:
// history lives in a ring buffer that slides without copying, and the
// two windowed minima the filters need — r̂ over the retained history
// and r̂_l over the shift window T_s — come from monotonic-deque
// trackers instead of per-packet scans. The only remaining per-packet
// loop is the offset filter's weighted combination, which is O(active
// offset window) by definition of the estimator (each in-window record
// contributes an age-dependent weight that changes every packet).
type Sync struct {
	cfg Config

	// Window sizes in packets.
	nOff, nLocalWin, nLocalNear, nLocalFar, nShift, nTop, nWarm int

	hist  window.Ring[record]
	scan  window.Ring[scanRec] // parallel to hist; see scanRec
	count int                  // total packets processed

	// Global rate state: the pair (j, i) and the clock C(T) = p·T + c.
	p        float64
	c        float64
	pairJ    record
	pairI    record
	havePair bool
	pQual    float64

	// Minimum RTT tracking. rHat caches the front of rMin, the deque
	// tracking the minimum over retained history at or after the last
	// upward shift point; r̂_l over the trailing T_s window comes from
	// the same deque via SuffixMin (the shift window always nests
	// inside the r̂ window, sharing its leading edge).
	rHat         float64
	rMin         window.MinTracker
	lastShiftSeq int // first seq at/after the most recent upward shift

	// Local rate state. The near and far sub-window argmin trackers
	// replace the per-packet O(τ̄/W) scans of updateLocalRate: both
	// windows slide forward by exactly one record per packet, so each is
	// a monotonic-deque sliding-window minimum keyed by record seq, with
	// the oldest-tie policy matching the scans' first-of-equal selection.
	// The far window lags the newest record by nLocalWin−nLocalFar
	// packets, so records enter it delayed, tracked by farNext.
	// Point-error REVISIONS (upward shift, identity re-base) rebuild
	// both trackers, since they rewrite values cached in the deques.
	pl      float64
	plValid bool
	nearMin window.MinTracker
	farMin  window.MinTracker
	farNext int

	// Offset state: the last estimate, where it was made, and its
	// estimated error (for the gap fallback of Section 6.1).
	theta    float64
	thetaTf  uint64
	thetaErr float64
	haveTh   bool

	// Server identity tracking (ObserveIdentity).
	ident      Identity
	identKnown bool

	// pub is the atomically published read snapshot (see readout.go):
	// the lock-free read side. Only the writer stores; readers load.
	pub pubState
}

// NewSync constructs an engine from a validated config.
func NewSync(cfg Config) (*Sync, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sync{
		cfg:    cfg,
		nOff:   cfg.packets(cfg.OffsetWindow),
		nShift: cfg.packets(cfg.ShiftWindow),
		nTop:   cfg.packets(cfg.TopWindow),
		nWarm:  cfg.WarmupSamples,
		p:      cfg.PHatInit,
		rHat:   math.Inf(1),
	}
	if cfg.UseLocalRate {
		s.nLocalWin = cfg.packets(cfg.LocalRateWindow)
		s.nLocalNear = maxInt(1, s.nLocalWin/cfg.LocalRateW)
		s.nLocalFar = maxInt(1, 2*s.nLocalWin/cfg.LocalRateW)
		s.nearMin.KeepOldestTies = true
		s.farMin.KeepOldestTies = true
	}
	if s.nTop < 2*s.nWarm {
		s.nTop = 2 * s.nWarm
	}
	s.publish()
	return s, nil
}

// Config returns the engine's configuration.
func (s *Sync) Config() Config { return s.cfg }

// Clock returns the current uncorrected clock definition
// C(T) = p·T + c.
func (s *Sync) Clock() (p, c float64) { return s.p, s.c }

// clockRead evaluates the uncorrected clock at counter value T.
func (s *Sync) clockRead(T uint64) float64 { return float64(T)*s.p + s.c }

// Theta returns the most recent offset estimate and whether one exists.
func (s *Sync) Theta() (float64, bool) { return s.theta, s.haveTh }

// ThetaAt extrapolates the offset estimate to counter value T, using the
// local rate linear prediction when it is valid (equation 23).
func (s *Sync) ThetaAt(T uint64) float64 {
	if !s.haveTh {
		return 0
	}
	if s.cfg.UseLocalRate && s.plValid && s.p > 0 {
		gl := s.pl/s.p - 1
		return s.theta - gl*spanSeconds(s.thetaTf, T, s.p)
	}
	return s.theta
}

// AbsoluteTime reads the absolute (offset-corrected) clock
// Ca(T) = C(T) − θ̂ at counter value T (equation 7).
func (s *Sync) AbsoluteTime(T uint64) float64 {
	return s.clockRead(T) - s.ThetaAt(T)
}

// DifferenceSpan measures the interval between two counter readings with
// the difference clock Cd (equation 6): smooth, driven only by p̂.
func (s *Sync) DifferenceSpan(T1, T2 uint64) float64 {
	return spanSeconds(T1, T2, s.p)
}

// RTTHat returns the current minimum-RTT estimate r̂.
func (s *Sync) RTTHat() float64 { return s.rHat }

// Count returns the number of packets processed.
func (s *Sync) Count() int { return s.count }

// spanSeconds converts a counter span to seconds, preserving sign.
func spanSeconds(from, to uint64, p float64) float64 {
	if to >= from {
		return float64(to-from) * p
	}
	return -float64(from-to) * p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Process ingests one completed exchange and returns the updated state.
// Exchanges must be fed in arrival order.
//
//repro:hotpath
func (s *Sync) Process(in Input) (Result, error) {
	if in.Tf <= in.Ta {
		//repro:alloc-ok rejected-input error path: allocates only for exchanges the engine refuses to process
		return Result{}, fmt.Errorf("core: counter stamps not increasing (Ta=%d, Tf=%d)", in.Ta, in.Tf)
	}
	if s.hist.Len() > 0 && in.Tf <= s.hist.Back().tf {
		//repro:alloc-ok rejected-input error path: allocates only for exchanges the engine refuses to process
		return Result{}, fmt.Errorf("core: exchange out of order (Tf=%d after %d)", in.Tf, s.hist.Back().tf)
	}

	seq := s.count
	s.count++
	res := Result{Seq: seq, Warmup: seq < s.nWarm}

	rec := record{seq: seq, ta: in.Ta, tf: in.Tf, tb: in.Tb, te: in.Te}
	rec.rtt = spanSeconds(in.Ta, in.Tf, s.p)

	// Minimum RTT: downward movements are unambiguous (congestion cannot
	// lower the minimum) and take effect immediately. The tracker sees
	// every sample; its window trails by eviction only.
	if rec.rtt < s.rHat {
		s.rHat = rec.rtt
	}
	s.rMin.Push(seq, rec.rtt)
	rec.pointErr = rec.rtt - s.rHat

	if seq == 0 {
		// Align the clock origin with the server: C(Ta,1) = Tb,1. The
		// first offset estimate is then the naive one, which equation
		// (19) makes ≈ −r/2 + noise relative to this alignment.
		s.c = in.Tb - float64(in.Ta)*s.p
	}

	// Global rate synchronization (warmup scheme, then the paired
	// estimator of Section 5.2).
	s.updateRate(&rec, &res)

	// The naive offset estimate uses the clock in force after the rate
	// update so that filtering and estimation stay decoupled.
	rec.theta = s.naiveTheta(rec)
	res.ThetaNaive = rec.theta

	*s.hist.PushSlot() = rec
	sc := s.scan.PushSlot()
	sc.ftf = float64(in.Tf)
	sc.pointErr = rec.pointErr
	sc.theta = rec.theta
	if s.cfg.UseLocalRate {
		s.pushLocalMinima(&rec)
	}

	// Upward level-shift detection (Section 6.2) may revise recent point
	// errors, so run it before the offset filter consumes them.
	s.detectUpwardShift(&res)

	// Local rate refinement.
	s.updateLocalRate(&res)

	// Offset estimation (Section 5.3 with the Section 6.1 additions).
	s.updateOffset(&rec, &res)

	// Top-level window maintenance.
	s.slideTopWindow()

	res.PHat = s.p
	res.PQuality = s.pQual
	res.PLocal = s.pl
	res.PLocalValid = s.plValid
	res.ClockP, res.ClockC = s.p, s.c
	res.RTT = rec.rtt
	res.RTTHat = s.rHat
	res.PointError = s.hist.Back().pointErr
	res.ThetaHat = s.theta
	s.publish()
	return res, nil
}

// naiveTheta computes equation (19) for a record with the current clock:
// θ̂_i = (C(Ta)+C(Tf))/2 − (Tb+Te)/2.
func (s *Sync) naiveTheta(rec record) float64 {
	return (s.clockRead(rec.ta)+s.clockRead(rec.tf))/2 - (rec.tb+rec.te)/2
}

// setRate installs a new global rate estimate, preserving offset
// continuity: the clock is redefined so that it agrees with the old one
// at the current counter value ("Clock Offset Consistency", Section 6.1).
func (s *Sync) setRate(pNew float64, at uint64) {
	if pNew == s.p {
		return
	}
	s.c += float64(at) * (s.p - pNew)
	s.p = pNew
}

// slideTopWindow discards the oldest half of the history once the top
// window is full, then re-derives r̂ and revalidates the rate pair
// (Section 6.1, "Windowing"). With the ring buffer the slide is a head
// advance — no copy, no reallocation — and r̂ over the retained history
// is a deque eviction instead of a full re-scan.
func (s *Sync) slideTopWindow() {
	if s.hist.Len() < s.nTop {
		return
	}
	drop := s.nTop / 2
	s.hist.DropFront(drop)
	s.scan.DropFront(drop)

	// r̂ first: the minimum over the retained history, using only values
	// beyond the last upward shift or server re-base point — a suffix
	// query from lastShiftSeq (the eviction to the new window start
	// only bounds deque memory; it is always at or before every future
	// suffix start, so no later query loses samples).
	s.rMin.EvictBefore(s.hist.Front().seq)
	if m, ok := s.rMin.SuffixMin(s.lastShiftSeq); ok {
		s.rHat = m
	}

	// Then p̂: if the pair's older packet fell out of the window, replace
	// it with the first retained packet of similar or better point
	// quality, and adopt the new pair only if its quality improves.
	if !s.havePair || s.pairI.seq <= s.pairJ.seq || s.pairJ.seq >= s.hist.Front().seq {
		return
	}
	eStar := s.cfg.EStar()
	var newJ *record
	for idx := 0; idx < s.hist.Len(); idx++ {
		cand := s.hist.At(idx)
		if cand.seq >= s.pairI.seq {
			break
		}
		if cand.rtt-s.rHat <= eStar {
			newJ = cand
			break
		}
	}
	if newJ == nil {
		// No packet meets E*; fall back to the best available so the
		// pair always has in-window provenance.
		best := math.Inf(1)
		for idx := 0; idx < s.hist.Len(); idx++ {
			cand := s.hist.At(idx)
			if cand.seq >= s.pairI.seq {
				break
			}
			if e := cand.rtt - s.rHat; e < best {
				best = e
				newJ = cand
			}
		}
	}
	if newJ == nil {
		return
	}
	pNew, qual, ok := s.pairEstimate(newJ, &s.pairI)
	s.pairJ = *newJ
	if ok && qual < s.pQual {
		s.setRate(pNew, s.hist.Back().tf)
		s.pQual = qual
	}
}

// detectUpwardShift derives the local minimum r̂_l over the shift
// window T_s from the r̂ deque (a suffix query: the shift window nests
// inside the deque's window whenever the length guard below holds) and
// reacts to upward level shifts: r̂ jumps to r̂_l and the point errors
// of packets back to the shift point are reassessed. The O(T_s) work
// happens only when a shift is actually detected — a rare event — so
// the per-packet cost is the suffix query on the deque.
func (s *Sync) detectUpwardShift(res *Result) {
	if s.hist.Len() < s.nShift || s.count <= s.nWarm {
		return
	}
	back := s.hist.Back()
	thresh := s.cfg.ShiftThresholdFactor * s.cfg.E()
	// r̂_l is bounded above by the newest RTT (it is in the window), so
	// a shift is only detectable when that RTT itself clears the
	// threshold — which skips the suffix query for almost every packet.
	if back.rtt-s.rHat <= thresh {
		return
	}
	rl, ok := s.rMin.SuffixMin(back.seq - s.nShift + 1)
	if !ok {
		return
	}
	if rl-s.rHat > thresh {
		start := s.hist.Len() - s.nShift
		s.rHat = rl
		s.lastShiftSeq = s.hist.At(start).seq
		s.rMin.EvictBefore(s.lastShiftSeq)
		for i := start; i < s.hist.Len(); i++ {
			h := s.hist.At(i)
			h.pointErr = h.rtt - s.rHat
			s.scan.At(i).pointErr = h.pointErr
		}
		// The revision rewrote point errors the local-rate argmin
		// trackers may have cached; reload them from live history.
		s.rebuildLocalMinima()
		// The pair survives, but its quality is reassessed against the
		// new error level (Section 6.2, "Asymmetry of offset and rate").
		if s.havePair {
			if _, qual, ok := s.pairEstimate(&s.pairJ, &s.pairI); ok {
				s.pQual = qual
			}
		}
		res.UpwardShiftDetected = true
	}
}

package netem

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/timebase"
)

// SideMode is a discrete extra-latency mode of the host receive
// timestamping (interrupt latency quantization): with probability Prob
// the receive stamp is delayed by an additional Offset.
type SideMode struct {
	Offset float64
	Prob   float64
}

// HostStampConfig models the host's driver-level TSC timestamping noise
// as characterized in Section 2.4 of the paper: a dominant mode ~5 µs
// wide, side modes at +10 and +31 µs, and ~1-in-10,000 scheduling errors
// up to ~1 ms.
type HostStampConfig struct {
	// SendLeadMean: the send stamp Ta is taken this long (exponential
	// mean) before the packet actually leaves the interface.
	SendLeadMean float64

	// RecvBase and RecvJitter shape the dominant interrupt-latency mode:
	// latency = RecvBase + |N(0, RecvJitter)|.
	RecvBase   float64
	RecvJitter float64

	// SideModes are the discrete extra interrupt-latency modes.
	SideModes []SideMode

	// SchedProb is the probability of a scheduling error, which adds a
	// Pareto(SchedScale, SchedShape) delay to the receive stamp.
	SchedProb  float64
	SchedScale float64
	SchedShape float64
}

// DefaultHostStamp returns the driver-timestamping noise model fitted to
// the paper's measured histogram (delta = 15 µs worst-case nominal).
func DefaultHostStamp() HostStampConfig {
	return HostStampConfig{
		SendLeadMean: 2 * timebase.Microsecond,
		RecvBase:     1.5 * timebase.Microsecond,
		RecvJitter:   1.2 * timebase.Microsecond,
		SideModes: []SideMode{
			{Offset: 10 * timebase.Microsecond, Prob: 0.02},
			{Offset: 31 * timebase.Microsecond, Prob: 0.008},
		},
		SchedProb:  1e-4,
		SchedScale: 0.3 * timebase.Millisecond,
		SchedShape: 1.8,
	}
}

// UserLevelHostStamp returns a noisier model representative of user-space
// gettimeofday-style timestamping, for the ablation comparing driver vs
// user-level stamping (Section 2.2.1 notes the algorithms still work,
// with higher variance).
func UserLevelHostStamp() HostStampConfig {
	return HostStampConfig{
		SendLeadMean: 15 * timebase.Microsecond,
		RecvBase:     10 * timebase.Microsecond,
		RecvJitter:   12 * timebase.Microsecond,
		SideModes: []SideMode{
			{Offset: 50 * timebase.Microsecond, Prob: 0.05},
			{Offset: 120 * timebase.Microsecond, Prob: 0.02},
		},
		SchedProb:  1e-3,
		SchedScale: 0.5 * timebase.Millisecond,
		SchedShape: 1.6,
	}
}

// Validate reports configuration errors.
func (c HostStampConfig) Validate() error {
	if c.SendLeadMean < 0 || c.RecvBase < 0 || c.RecvJitter < 0 {
		return fmt.Errorf("netem: negative host stamp parameter")
	}
	total := 0.0
	for _, m := range c.SideModes {
		if m.Prob < 0 || m.Offset < 0 {
			return fmt.Errorf("netem: invalid side mode %+v", m)
		}
		total += m.Prob
	}
	if total+c.SchedProb > 1 {
		return fmt.Errorf("netem: side mode + scheduling probabilities exceed 1")
	}
	return nil
}

// HostStamp draws host timestamping latencies.
type HostStamp struct {
	cfg HostStampConfig
	src *rng.Source
}

// NewHostStamp constructs the host timestamping model.
func NewHostStamp(cfg HostStampConfig, src *rng.Source) (*HostStamp, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &HostStamp{cfg: cfg, src: src}, nil
}

// SendLead returns how long before the true departure the send stamp is
// taken (Ta precedes ta; always >= 0).
func (h *HostStamp) SendLead() float64 {
	return h.src.Exponential(h.cfg.SendLeadMean)
}

// RecvLag returns how long after the true arrival the receive stamp is
// taken (Tf follows tf; always >= 0).
func (h *HostStamp) RecvLag() float64 {
	base, extra := h.RecvLagParts()
	return base + extra
}

// RecvLagParts decomposes the receive stamping latency into the
// irreducible base mode and the correctable excess (interrupt-latency
// side modes and scheduling errors). The paper's Section 2.4 shows the
// excess is reliably detectable against the DAG reference and corrects
// it for the stability analysis of Figure 3; the base mode (~5 µs wide)
// remains.
func (h *HostStamp) RecvLagParts() (base, extra float64) {
	base = h.cfg.RecvBase + h.src.TruncNormalPos(0, h.cfg.RecvJitter)
	u := h.src.Float64()
	for _, m := range h.cfg.SideModes {
		if u < m.Prob {
			extra += m.Offset
			break
		}
		u -= m.Prob
	}
	if u < h.cfg.SchedProb && h.cfg.SchedProb > 0 {
		extra += h.src.Pareto(h.cfg.SchedScale, h.cfg.SchedShape)
	}
	return base, extra
}

// FaultWindow is an interval during which the server's clock reads wrong
// by Offset seconds (Figure 11b injects 150 ms for a few minutes).
type FaultWindow struct {
	From, To float64
	Offset   float64
}

// ServerConfig models a stratum-1 NTP server: its processing delay
// (d^ = minimum + noise with rare scheduling spikes), its timestamping
// errors, and its (nominally GPS-disciplined) clock including injectable
// faults.
type ServerConfig struct {
	// MinProc is the minimum processing (turnaround) time d^.
	MinProc float64
	// ProcMean is the mean of the exponential variable component of the
	// turnaround time.
	ProcMean float64
	// SchedProb/SchedScale/SchedShape give rare millisecond-scale
	// scheduling spikes in turnaround time.
	SchedProb  float64
	SchedScale float64
	SchedShape float64

	// StampNoise is the standard deviation of the server's per-stamp
	// timestamping error (it is a PC: gettimeofday-quality stamps).
	StampNoise float64
	// TeOutlierProb/TeOutlierScale model the rare large errors observed
	// in the departure stamps, up to ~1 ms (Section 4.2).
	TeOutlierProb  float64
	TeOutlierScale float64

	// ClockWanderAmp and ClockWanderPeriod describe the small residual
	// wander of the GPS-disciplined server clock (microsecond scale).
	ClockWanderAmp    float64
	ClockWanderPeriod float64

	// Faults is the schedule of injected server clock errors.
	Faults []FaultWindow
}

// DefaultServer returns a GPS-disciplined stratum-1 server model.
func DefaultServer() ServerConfig {
	return ServerConfig{
		MinProc:           18 * timebase.Microsecond,
		ProcMean:          9 * timebase.Microsecond,
		SchedProb:         5e-4,
		SchedScale:        0.25 * timebase.Millisecond,
		SchedShape:        1.7,
		StampNoise:        4 * timebase.Microsecond,
		TeOutlierProb:     2e-4,
		TeOutlierScale:    0.3 * timebase.Millisecond,
		ClockWanderAmp:    1.5 * timebase.Microsecond,
		ClockWanderPeriod: 3 * timebase.Hour,
	}
}

// Validate reports configuration errors.
func (c ServerConfig) Validate() error {
	if c.MinProc < 0 || c.ProcMean < 0 || c.StampNoise < 0 {
		return fmt.Errorf("netem: negative server parameter")
	}
	for _, f := range c.Faults {
		if f.To < f.From {
			return fmt.Errorf("netem: fault window [%v,%v] reversed", f.From, f.To)
		}
	}
	return nil
}

// Server draws server-side delays and timestamp errors.
type Server struct {
	cfg ServerConfig
	src *rng.Source
}

// NewServer constructs the server model.
func NewServer(cfg ServerConfig, src *rng.Source) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, src: src}, nil
}

// Config returns the server's configuration.
func (s *Server) Config() ServerConfig { return s.cfg }

// Turnaround draws the server delay d^(i) = te - tb for one request.
func (s *Server) Turnaround() float64 {
	d := s.cfg.MinProc + s.src.Exponential(s.cfg.ProcMean)
	if s.cfg.SchedProb > 0 && s.src.Bool(s.cfg.SchedProb) {
		d += s.src.Pareto(s.cfg.SchedScale, s.cfg.SchedShape)
	}
	return d
}

// MinTurnaround returns the deterministic minimum server delay d^.
func (s *Server) MinTurnaround() float64 { return s.cfg.MinProc }

// ClockOffset returns the server clock's error at true time t, including
// residual GPS-discipline wander and any active fault window.
func (s *Server) ClockOffset(t float64) float64 {
	off := 0.0
	if s.cfg.ClockWanderAmp > 0 && s.cfg.ClockWanderPeriod > 0 {
		off = s.cfg.ClockWanderAmp * math.Sin(2*math.Pi*t/s.cfg.ClockWanderPeriod)
	}
	for _, f := range s.cfg.Faults {
		if t >= f.From && t < f.To {
			off += f.Offset
		}
	}
	return off
}

// StampArrival returns Tb for a packet truly arriving at tb: the server
// clock reading plus a non-negative stamping latency (the server stamps
// strictly after the packet arrives).
func (s *Server) StampArrival(tb float64) float64 {
	return tb + s.ClockOffset(tb) + s.src.TruncNormalPos(s.cfg.StampNoise, s.cfg.StampNoise/2)
}

// StampDeparture returns Te for a packet truly departing at te. The
// departure stamp is taken just before the send, but rare large positive
// errors occur as observed in the paper's reference data.
func (s *Server) StampDeparture(te float64) float64 {
	e := -s.src.TruncNormalPos(s.cfg.StampNoise/2, s.cfg.StampNoise/2)
	if s.cfg.TeOutlierProb > 0 && s.src.Bool(s.cfg.TeOutlierProb) {
		e += s.src.Pareto(s.cfg.TeOutlierScale, 2.2)
	}
	return te + s.ClockOffset(te) + e
}

// Package netem models the network and end-system effects that corrupt
// the timestamps the synchronization algorithms consume. It implements
// the paper's decomposition (equations 12-15): every delay is a
// deterministic minimum plus a positive random component,
//
//	d>(i) = d> + q>(i)   (forward path)
//	d^(i) = d^ + q^(i)   (server)
//	d<(i) = d< + q<(i)   (backward path)
//
// with queueing produced by a diurnally-modulated light-load process plus
// Markov-modulated congestion episodes with heavy-tailed (Pareto) excess
// delays. Minimum delays can change over time through level shifts (route
// changes), the central robustness challenge of the paper's Section 6.2.
//
// The package also models the paper's measured end-system noise: host
// driver timestamping (~5 µs mode with +10/+31 µs interrupt-latency side
// modes and rare >1 ms scheduling errors), and stratum-1 server
// timestamping errors including the rare ~1 ms Te outliers and injectable
// server clock faults (the 150 ms error event of Figure 11b).
//
//repro:deterministic
package netem

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/timebase"
)

// Shift is a level shift of a path's minimum delay: at time At the
// minimum changes by Delta; if Duration > 0 the shift is temporary and
// reverts at At+Duration, otherwise it is permanent.
type Shift struct {
	At       float64
	Delta    float64
	Duration float64
}

// PathConfig parameterizes one direction of a network path.
type PathConfig struct {
	// MinDelay is the deterministic minimum one-way delay (propagation
	// plus minimum switching), in seconds.
	MinDelay float64

	// Hops is the reported IP hop count (Table 2); it scales nothing by
	// itself but is carried for reporting.
	Hops int

	// BaseQueueMean is the mean of the light-load exponential queueing
	// component at unit utilization.
	BaseQueueMean float64

	// DiurnalAmplitude in [0,1) modulates load over the day; the mean
	// queueing and the episode rate scale by
	// 1 + DiurnalAmplitude*cos(2*pi*(t-DiurnalPeak)/day).
	DiurnalAmplitude float64
	DiurnalPeak      float64

	// Congestion episodes arrive with exponential gaps of mean
	// EpisodeMeanGap (at unit utilization) and last an exponential
	// duration of mean EpisodeMeanDuration. During an episode a packet
	// gains a Pareto(EpisodeScale*severity, EpisodeShape) excess with
	// probability EpisodeHitProb (severity is a per-episode log-normal);
	// otherwise only a lighter exponential excess — queues drain between
	// packets, so even heavy episodes let occasional packets through
	// nearly clean, which is what keeps minimum-based filtering viable.
	EpisodeMeanGap      float64
	EpisodeMeanDuration float64
	EpisodeScale        float64
	EpisodeShape        float64
	// EpisodeHitProb defaults to 0.8 when EpisodeScale > 0 and the
	// field is zero.
	EpisodeHitProb float64

	// Regime switching models week-scale load regimes on top of the
	// diurnal cycle: the path dwells in one regime for an exponential
	// time of mean RegimeMeanDwell (days-scale for the long-horizon
	// scenarios), then jumps uniformly to another entry of
	// RegimeFactors. The factor in force multiplies the utilization —
	// scaling both the light-load queueing mean and the congestion
	// episode rate — so a multi-week trace alternates quiet and busy
	// spells instead of repeating one stationary day. Zero
	// RegimeMeanDwell (the default) disables the process entirely and
	// consumes no random draws, keeping existing scenarios bit-identical.
	RegimeMeanDwell float64
	RegimeFactors   []float64

	// Shifts is the level-shift schedule for this direction.
	Shifts []Shift
}

// Validate reports configuration errors.
func (c PathConfig) Validate() error {
	if c.MinDelay < 0 {
		return fmt.Errorf("netem: negative MinDelay %v", c.MinDelay)
	}
	if c.BaseQueueMean < 0 {
		return fmt.Errorf("netem: negative BaseQueueMean %v", c.BaseQueueMean)
	}
	if c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1 {
		return fmt.Errorf("netem: DiurnalAmplitude %v outside [0,1)", c.DiurnalAmplitude)
	}
	if c.EpisodeScale > 0 {
		if !(c.EpisodeMeanGap > 0) || !(c.EpisodeMeanDuration > 0) {
			return fmt.Errorf("netem: episodes need positive gap and duration")
		}
		if !(c.EpisodeShape > 0) {
			return fmt.Errorf("netem: EpisodeShape must be positive")
		}
	}
	if c.EpisodeHitProb < 0 || c.EpisodeHitProb > 1 {
		return fmt.Errorf("netem: EpisodeHitProb %v outside [0,1]", c.EpisodeHitProb)
	}
	if c.RegimeMeanDwell < 0 {
		return fmt.Errorf("netem: negative RegimeMeanDwell %v", c.RegimeMeanDwell)
	}
	if c.RegimeMeanDwell > 0 {
		if len(c.RegimeFactors) < 2 {
			return fmt.Errorf("netem: regime switching needs at least 2 RegimeFactors")
		}
		for i, f := range c.RegimeFactors {
			if !(f > 0) {
				return fmt.Errorf("netem: RegimeFactors[%d] = %v must be positive", i, f)
			}
		}
	}
	return nil
}

// Path is a stateful realization of one path direction. Delay queries
// must be issued in non-decreasing time order (the congestion episode
// process is sequential); MinAt is pure and may be called at any time.
type Path struct {
	cfg PathConfig
	src *rng.Source

	lastT     float64
	inEpisode bool
	epEnd     float64
	nextStart float64
	severity  float64

	// Load-regime process state (see PathConfig.RegimeMeanDwell).
	regime    int
	regimeEnd float64
}

// NewPath constructs a path from its config and a dedicated random
// stream.
func NewPath(cfg PathConfig, src *rng.Source) (*Path, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Path{cfg: cfg, src: src, lastT: math.Inf(-1)}
	if cfg.EpisodeScale > 0 {
		p.nextStart = src.Exponential(cfg.EpisodeMeanGap)
	} else {
		p.nextStart = math.Inf(1)
	}
	if cfg.RegimeMeanDwell > 0 {
		p.regimeEnd = src.Exponential(cfg.RegimeMeanDwell)
	} else {
		p.regimeEnd = math.Inf(1)
	}
	return p, nil
}

// Config returns the path's configuration.
func (p *Path) Config() PathConfig { return p.cfg }

// utilization returns the load factor at t: the diurnal cycle scaled by
// the regime factor in force. The regime process is advanced by
// advance(); episode catch-up queries during a regime boundary crossing
// use the newly entered regime's factor, an approximation that is
// invisible at days-scale dwell times.
func (p *Path) utilization(t float64) float64 {
	u := 1.0
	if p.cfg.DiurnalAmplitude != 0 {
		u += p.cfg.DiurnalAmplitude * math.Cos(2*math.Pi*(t-p.cfg.DiurnalPeak)/timebase.Day)
	}
	if p.cfg.RegimeMeanDwell > 0 {
		u *= p.cfg.RegimeFactors[p.regime]
	}
	return u
}

// MinAt returns the minimum delay in force at time t, including all level
// shifts scheduled at or before t.
func (p *Path) MinAt(t float64) float64 {
	m := p.cfg.MinDelay
	for _, s := range p.cfg.Shifts {
		if t >= s.At && (s.Duration <= 0 || t < s.At+s.Duration) {
			m += s.Delta
		}
	}
	if m < 0 {
		m = 0
	}
	return m
}

// advance moves the episode process to time t.
func (p *Path) advance(t float64) {
	if t < p.lastT {
		panic(fmt.Sprintf("netem: path queried backwards in time (%v after %v)", t, p.lastT))
	}
	p.lastT = t
	for p.regimeEnd <= t {
		// Jump uniformly to one of the *other* regimes, as documented:
		// re-drawing the current one would silently stretch the
		// effective dwell (2× for two factors).
		next := p.src.Intn(len(p.cfg.RegimeFactors) - 1)
		if next >= p.regime {
			next++
		}
		p.regime = next
		p.regimeEnd += p.src.Exponential(p.cfg.RegimeMeanDwell)
	}
	for {
		if p.inEpisode {
			if t < p.epEnd {
				return
			}
			p.inEpisode = false
			gap := p.cfg.EpisodeMeanGap / p.utilization(p.epEnd)
			p.nextStart = p.epEnd + p.src.Exponential(gap)
		} else {
			if t < p.nextStart {
				return
			}
			p.inEpisode = true
			p.epEnd = p.nextStart + p.src.Exponential(p.cfg.EpisodeMeanDuration)
			p.severity = p.src.LogNormal(0, 0.8)
		}
	}
}

// InEpisode reports whether a congestion episode is active at the last
// queried time; exposed for tests and diagnostics.
func (p *Path) InEpisode() bool { return p.inEpisode }

// Regime returns the index into RegimeFactors of the load regime in
// force at the last queried time; exposed for tests and diagnostics.
func (p *Path) Regime() int { return p.regime }

// Delay draws the total one-way delay experienced by a packet entering
// the path at time t: current minimum plus queueing.
func (p *Path) Delay(t float64) float64 {
	p.advance(t)
	q := p.src.Exponential(p.cfg.BaseQueueMean * p.utilization(t))
	if p.inEpisode && p.cfg.EpisodeScale > 0 {
		hit := p.cfg.EpisodeHitProb
		if hit == 0 {
			hit = 0.8
		}
		scale := p.cfg.EpisodeScale * p.severity
		if p.src.Bool(hit) {
			q += p.src.Pareto(scale, p.cfg.EpisodeShape)
		} else {
			q += p.src.Exponential(scale / 4)
		}
	}
	return p.MinAt(t) + q
}

// SortedShiftTimes returns the times at which the effective minimum of
// the path changes, in increasing order (useful to experiments that must
// locate detection latencies).
func (p *Path) SortedShiftTimes() []float64 {
	var ts []float64
	for _, s := range p.cfg.Shifts {
		ts = append(ts, s.At)
		if s.Duration > 0 {
			ts = append(ts, s.At+s.Duration)
		}
	}
	sort.Float64s(ts)
	return ts
}

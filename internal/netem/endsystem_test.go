package netem

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/timebase"
)

func TestRecvLagPartsDecomposition(t *testing.T) {
	h, err := NewHostStamp(DefaultHostStamp(), rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	sawExtra := false
	for i := 0; i < 50000; i++ {
		base, extra := h.RecvLagParts()
		if base < 0 || extra < 0 {
			t.Fatalf("negative lag component: base=%v extra=%v", base, extra)
		}
		// The base mode is the irreducible few-µs interrupt latency.
		if base > 20*timebase.Microsecond {
			t.Fatalf("base lag %v implausibly large", base)
		}
		if extra > 0 {
			sawExtra = true
			// Extras are side modes (10/31 µs) or scheduling (>scale).
			if extra < 9*timebase.Microsecond {
				t.Fatalf("extra lag %v below the smallest side mode", extra)
			}
		}
	}
	if !sawExtra {
		t.Error("no side-mode/scheduling excursions in 50k draws")
	}
}

func TestUserLevelHostStampValid(t *testing.T) {
	if err := UserLevelHostStamp().Validate(); err != nil {
		t.Errorf("user-level preset invalid: %v", err)
	}
	h, err := NewHostStamp(UserLevelHostStamp(), rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	// User-level stamping must be visibly noisier than driver-level.
	d, err := NewHostStamp(DefaultHostStamp(), rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	var sumU, sumD float64
	const n = 20000
	for i := 0; i < n; i++ {
		sumU += h.RecvLag()
		sumD += d.RecvLag()
	}
	if sumU <= 2*sumD {
		t.Errorf("user-level mean lag %v not clearly above driver-level %v",
			sumU/n, sumD/n)
	}
}

func TestEpisodeHitProbValidation(t *testing.T) {
	cfg := basePath()
	cfg.EpisodeHitProb = 1.5
	if _, err := NewPath(cfg, rng.New(1)); err == nil {
		t.Error("EpisodeHitProb > 1 accepted")
	}
	cfg.EpisodeHitProb = -0.1
	if _, err := NewPath(cfg, rng.New(1)); err == nil {
		t.Error("negative EpisodeHitProb accepted")
	}
}

func TestEpisodeLeakThrough(t *testing.T) {
	// During an episode some packets must still get through with only
	// light excess: the property that keeps minimum-filtering viable and
	// prevents false upward-shift detections on long episodes.
	cfg := basePath()
	cfg.EpisodeMeanGap = time10Min
	cfg.EpisodeMeanDuration = timebase.Hour
	cfg.EpisodeHitProb = 0.8
	p, err := NewPath(cfg, rng.New(24))
	if err != nil {
		t.Fatal(err)
	}
	light, inEp := 0, 0
	for i := 0; i < 20000; i++ {
		d := p.Delay(float64(i) * 16)
		if !p.InEpisode() {
			continue
		}
		inEp++
		if d-p.MinAt(float64(i)*16) < cfg.EpisodeScale/2 {
			light++
		}
	}
	if inEp == 0 {
		t.Fatal("never in episode")
	}
	frac := float64(light) / float64(inEp)
	if frac < 0.05 {
		t.Errorf("only %.1f%% of in-episode packets leak through lightly", frac*100)
	}
}

const time10Min = 10 * timebase.Minute

package netem

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
	"repro/internal/timebase"
)

func basePath() PathConfig {
	return PathConfig{
		MinDelay:            400 * timebase.Microsecond,
		Hops:                5,
		BaseQueueMean:       30 * timebase.Microsecond,
		DiurnalAmplitude:    0.4,
		DiurnalPeak:         14 * timebase.Hour,
		EpisodeMeanGap:      2 * timebase.Hour,
		EpisodeMeanDuration: 5 * timebase.Minute,
		EpisodeScale:        0.5 * timebase.Millisecond,
		EpisodeShape:        1.6,
	}
}

func TestPathValidate(t *testing.T) {
	bad := basePath()
	bad.MinDelay = -1
	if _, err := NewPath(bad, rng.New(1)); err == nil {
		t.Error("negative MinDelay accepted")
	}
	bad = basePath()
	bad.DiurnalAmplitude = 1.5
	if _, err := NewPath(bad, rng.New(1)); err == nil {
		t.Error("DiurnalAmplitude >= 1 accepted")
	}
	bad = basePath()
	bad.EpisodeShape = 0
	if _, err := NewPath(bad, rng.New(1)); err == nil {
		t.Error("zero EpisodeShape accepted")
	}
}

func TestDelayAboveMinimum(t *testing.T) {
	p, err := NewPath(basePath(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		tt := float64(i) * 16
		d := p.Delay(tt)
		if d < p.MinAt(tt) {
			t.Fatalf("delay %v below minimum %v at t=%v", d, p.MinAt(tt), tt)
		}
	}
}

func TestDelayMinimumApproached(t *testing.T) {
	// Over a week of 16 s polling the observed minimum should come very
	// close to the configured minimum (this is what makes the RTT filter
	// viable). "Close" = within a few µs for a 30 µs-mean queue.
	cfg := basePath()
	p, err := NewPath(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	minSeen := math.Inf(1)
	for i := 0; i < int(timebase.Week/16); i++ {
		if d := p.Delay(float64(i) * 16); d < minSeen {
			minSeen = d
		}
	}
	if gap := minSeen - cfg.MinDelay; gap > 3*timebase.Microsecond {
		t.Errorf("weekly observed minimum exceeds true minimum by %v", gap)
	}
}

func TestBackwardsQueryPanics(t *testing.T) {
	p, err := NewPath(basePath(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	p.Delay(100)
	defer func() {
		if recover() == nil {
			t.Error("backwards query did not panic")
		}
	}()
	p.Delay(50)
}

func TestEpisodesOccurAndRaiseDelay(t *testing.T) {
	cfg := basePath()
	cfg.EpisodeMeanGap = 30 * timebase.Minute
	cfg.EpisodeMeanDuration = 10 * timebase.Minute
	p, err := NewPath(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var inEp, outEp []float64
	for i := 0; i < int(2*timebase.Day/16); i++ {
		d := p.Delay(float64(i) * 16)
		if p.InEpisode() {
			inEp = append(inEp, d)
		} else {
			outEp = append(outEp, d)
		}
	}
	if len(inEp) == 0 {
		t.Fatal("no congestion episodes in 2 days with 30 min mean gap")
	}
	if len(outEp) == 0 {
		t.Fatal("always in episode")
	}
	if mean(inEp) < 2*mean(outEp) {
		t.Errorf("episodes do not raise delay: in=%v out=%v", mean(inEp), mean(outEp))
	}
}

func TestDiurnalModulation(t *testing.T) {
	cfg := basePath()
	cfg.EpisodeScale = 0 // isolate the light-load component
	cfg.EpisodeMeanGap = 0
	cfg.EpisodeMeanDuration = 0
	p, err := NewPath(cfg, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	var peak, trough []float64
	for day := 0; day < 60; day++ {
		base := float64(day) * timebase.Day
		for k := 0; k < 50; k++ {
			// Near the configured peak (14 h) vs the trough (2 h + 24 h).
			trough = append(trough, p.Delay(base+2*timebase.Hour+float64(k))-cfg.MinDelay)
		}
		for k := 0; k < 50; k++ {
			peak = append(peak, p.Delay(base+14*timebase.Hour+float64(k))-cfg.MinDelay)
		}
	}
	ratio := mean(peak) / mean(trough)
	want := (1 + cfg.DiurnalAmplitude) / (1 - cfg.DiurnalAmplitude)
	if math.Abs(ratio-want) > 0.35 {
		t.Errorf("peak/trough queueing ratio = %v, want ~%v", ratio, want)
	}
}

func TestLevelShifts(t *testing.T) {
	cfg := basePath()
	cfg.Shifts = []Shift{
		{At: 1000, Delta: 0.9 * timebase.Millisecond, Duration: 500}, // temporary
		{At: 3000, Delta: -0.2 * timebase.Millisecond},               // permanent down
	}
	p, err := NewPath(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	m0 := cfg.MinDelay
	cases := []struct {
		t    float64
		want float64
	}{
		{0, m0},
		{999, m0},
		{1000, m0 + 0.9*timebase.Millisecond},
		{1499, m0 + 0.9*timebase.Millisecond},
		{1500, m0},
		{2999, m0},
		{3000, m0 - 0.2*timebase.Millisecond},
		{1e6, m0 - 0.2*timebase.Millisecond},
	}
	for _, c := range cases {
		if got := p.MinAt(c.t); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("MinAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if got := p.SortedShiftTimes(); len(got) != 3 || got[0] != 1000 || got[1] != 1500 || got[2] != 3000 {
		t.Errorf("SortedShiftTimes = %v", got)
	}
}

func TestMinAtNeverNegative(t *testing.T) {
	cfg := basePath()
	cfg.Shifts = []Shift{{At: 10, Delta: -10}}
	p, err := NewPath(cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.MinAt(20); got != 0 {
		t.Errorf("MinAt after huge downward shift = %v, want clamp to 0", got)
	}
}

func TestHostStampDistribution(t *testing.T) {
	h, err := NewHostStamp(DefaultHostStamp(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	var lags []float64
	big := 0
	for i := 0; i < n; i++ {
		lag := h.RecvLag()
		if lag < 0 {
			t.Fatalf("negative receive lag %v", lag)
		}
		if lag > timebase.Millisecond {
			big++
		}
		lags = append(lags, lag)
	}
	// Dominant mode is a few µs; median must be below 15 µs = delta.
	med := median(lags)
	if med > 15*timebase.Microsecond {
		t.Errorf("median receive lag %v exceeds delta", med)
	}
	// Scheduling errors are ~1e-4; allow [0, 5e-4] of draws beyond 1 ms.
	if frac := float64(big) / n; frac > 5e-4 {
		t.Errorf("too many >1 ms scheduling errors: %v", frac)
	}
	for i := 0; i < 1000; i++ {
		if l := h.SendLead(); l < 0 {
			t.Fatalf("negative send lead %v", l)
		}
	}
}

func TestHostStampValidate(t *testing.T) {
	bad := DefaultHostStamp()
	bad.SideModes = []SideMode{{Offset: 1e-5, Prob: 0.9}, {Offset: 2e-5, Prob: 0.2}}
	if _, err := NewHostStamp(bad, rng.New(1)); err == nil {
		t.Error("probabilities exceeding 1 accepted")
	}
}

func TestServerTurnaround(t *testing.T) {
	s, err := NewServer(DefaultServer(), rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	minSeen := math.Inf(1)
	for i := 0; i < 100000; i++ {
		d := s.Turnaround()
		if d < s.MinTurnaround() {
			t.Fatalf("turnaround %v below minimum %v", d, s.MinTurnaround())
		}
		if d < minSeen {
			minSeen = d
		}
	}
	if minSeen > s.MinTurnaround()+2*timebase.Microsecond {
		t.Errorf("observed min turnaround %v far above configured %v", minSeen, s.MinTurnaround())
	}
}

func TestServerFaultWindow(t *testing.T) {
	cfg := DefaultServer()
	cfg.ClockWanderAmp = 0
	cfg.Faults = []FaultWindow{{From: 100, To: 400, Offset: 150 * timebase.Millisecond}}
	s, err := NewServer(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ClockOffset(50); got != 0 {
		t.Errorf("offset before fault = %v", got)
	}
	if got := s.ClockOffset(250); got != 150*timebase.Millisecond {
		t.Errorf("offset during fault = %v", got)
	}
	if got := s.ClockOffset(400); got != 0 {
		t.Errorf("offset after fault = %v", got)
	}
}

func TestServerStamps(t *testing.T) {
	cfg := DefaultServer()
	cfg.ClockWanderAmp = 0
	cfg.TeOutlierProb = 0
	s, err := NewServer(cfg, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		tb := float64(i)
		if got := s.StampArrival(tb); got < tb {
			t.Fatalf("arrival stamp %v before true arrival %v", got, tb)
		}
		te := float64(i) + 0.5
		if got := s.StampDeparture(te); got > te {
			t.Fatalf("departure stamp %v after true departure %v without outliers", got, te)
		}
	}
}

func TestServerTeOutliers(t *testing.T) {
	cfg := DefaultServer()
	cfg.ClockWanderAmp = 0
	cfg.TeOutlierProb = 0.05 // inflated so the test is fast
	s, err := NewServer(cfg, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	outliers := 0
	for i := 0; i < 20000; i++ {
		te := float64(i)
		if s.StampDeparture(te)-te > 0.1*timebase.Millisecond {
			outliers++
		}
	}
	if outliers == 0 {
		t.Error("no Te outliers observed at 5% injection rate")
	}
}

func TestServerClockWander(t *testing.T) {
	cfg := DefaultServer()
	s, err := NewServer(cfg, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	maxAbs := 0.0
	for tt := 0.0; tt < timebase.Day; tt += 60 {
		if v := math.Abs(s.ClockOffset(tt)); v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		t.Error("server clock wander absent")
	}
	if maxAbs > cfg.ClockWanderAmp*1.001 {
		t.Errorf("wander %v exceeds amplitude %v", maxAbs, cfg.ClockWanderAmp)
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}

func BenchmarkPathDelay(b *testing.B) {
	p, err := NewPath(basePath(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += p.Delay(float64(i) * 16)
	}
	_ = sink
}

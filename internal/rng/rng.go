// Package rng implements the deterministic random number generation used
// by the simulation substrate. Everything in the reproduction must be
// bit-for-bit reproducible from a seed, so the package provides its own
// xoshiro256** generator (seeded via SplitMix64) rather than relying on
// math/rand's unspecified-across-versions sources, together with the
// distributions needed by the oscillator and network models: uniform,
// normal, exponential, Pareto, Weibull and log-normal.
//
//repro:deterministic
package rng

import "math"

// Source is a deterministic xoshiro256** pseudo-random generator.
// The zero value is not usable; construct with New.
type Source struct {
	s [4]uint64

	// Box-Muller spare variate cache for StdNormal.
	haveSpare bool
	spare     float64
}

// New returns a Source seeded deterministically from seed using
// SplitMix64, the initialization recommended by the xoshiro authors.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	// A zero state would be absorbing; SplitMix64 cannot produce four
	// zeros from any seed, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 1
	}
	return &src
}

// Clone returns an exact copy of the generator state: the clone and the
// original produce identical draw sequences from this point on. The
// streaming trace generators use clones to fast-forward one logical
// stream to a later position (draw and discard) without disturbing the
// original, which is what lets a lazily merged multi-server schedule
// reproduce the batch generator's draw order bit for bit.
func (r *Source) Clone() *Source {
	cp := *r
	return &cp
}

// SkipFloat64 advances the generator by n Float64 draws, discarding the
// values. Equivalent to calling Float64 n times.
func (r *Source) SkipFloat64(n int) {
	for i := 0; i < n; i++ {
		r.Float64()
	}
}

// Split derives an independent child generator from the current state.
// It consumes two outputs of the parent, so subsequent parent draws and
// child draws are decorrelated streams. Use it to give each model
// component (oscillator, forward path, backward path, server, ...) its own
// stream so that changing one component's consumption pattern does not
// perturb the others.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ (r.Uint64() << 1) ^ 0xa5a5a5a5a5a5a5a5)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1), never exactly zero,
// suitable for use inside logarithms.
func (r *Source) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	tLo := t & mask
	tHi := t >> 32
	t = aLo*bHi + tLo
	lo |= (t & mask) << 32
	hi = aHi*bHi + tHi + t>>32
	return hi, lo
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// Normal returns a draw from the normal distribution with the given mean
// and standard deviation, generated with the Box-Muller transform. The
// spare variate is cached.
func (r *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.StdNormal()
}

// StdNormal returns a standard normal draw.
func (r *Source) StdNormal() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	u1 := r.Float64Open()
	u2 := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u1))
	r.spare = mag * math.Sin(2*math.Pi*u2)
	r.haveSpare = true
	return mag * math.Cos(2*math.Pi*u2)
}

// Exponential returns an exponential draw with the given mean (not rate).
func (r *Source) Exponential(mean float64) float64 {
	return -mean * math.Log(r.Float64Open())
}

// Pareto returns a draw from the Pareto (type I) distribution with the
// given scale x_m > 0 and shape alpha > 0. Values are >= scale; small
// alpha produces the heavy tails characteristic of congestion episodes.
func (r *Source) Pareto(scale, alpha float64) float64 {
	return scale / math.Pow(r.Float64Open(), 1/alpha)
}

// Weibull returns a draw from the Weibull distribution with the given
// scale lambda and shape k.
func (r *Source) Weibull(scale, shape float64) float64 {
	return scale * math.Pow(-math.Log(r.Float64Open()), 1/shape)
}

// LogNormal returns a draw whose logarithm is normal with parameters mu
// and sigma.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// TruncNormalPos returns a normal draw truncated to be >= 0 by rejection;
// it falls back to the absolute value after a bounded number of attempts
// so the call always terminates even for deeply negative means.
func (r *Source) TruncNormalPos(mean, stddev float64) float64 {
	for i := 0; i < 16; i++ {
		v := r.Normal(mean, stddev)
		if v >= 0 {
			return v
		}
	}
	return math.Abs(r.Normal(mean, stddev))
}

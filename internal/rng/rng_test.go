package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child must not simply replay the parent stream.
	p2 := New(7)
	p2.Uint64()
	p2.Uint64()
	match := 0
	for i := 0; i < 100; i++ {
		if child.Uint64() == p2.Uint64() {
			match++
		}
	}
	if match > 1 {
		t.Errorf("child stream tracks parent stream: %d matches", match)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for b, c := range counts {
		if c < n/7-1000 || c > n/7+1000 {
			t.Errorf("bucket %d count %d far from uniform %d", b, c, n/7)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(6)
	const n = 300000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(3, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.02 {
		t.Errorf("normal mean = %v, want 3", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("normal variance = %v, want 4", variance)
	}
}

func TestExponentialMoments(t *testing.T) {
	r := New(8)
	const n = 300000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exponential(1.5)
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1.5) > 0.02 {
		t.Errorf("exponential mean = %v, want 1.5", mean)
	}
}

func TestParetoProperties(t *testing.T) {
	r := New(9)
	const scale, alpha = 2.0, 3.0
	const n = 300000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Pareto(scale, alpha)
		if v < scale {
			t.Fatalf("Pareto draw %v below scale %v", v, scale)
		}
		sum += v
	}
	// Mean of Pareto(x_m, a) for a > 1 is a*x_m/(a-1) = 3.
	if mean := sum / n; math.Abs(mean-3) > 0.1 {
		t.Errorf("Pareto mean = %v, want 3", mean)
	}
}

func TestWeibullMean(t *testing.T) {
	r := New(10)
	// Weibull(scale=1, shape=1) is Exponential(1): mean 1.
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Weibull(1, 1)
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("Weibull(1,1) mean = %v, want 1", mean)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(11)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(0, 0.5)
	}
	// Median of LogNormal(mu=0) is e^0 = 1; use a cheap order statistic.
	below := 0
	for _, v := range vals {
		if v < 1 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction below median = %v, want ~0.5", frac)
	}
}

func TestTruncNormalPosNonNegative(t *testing.T) {
	r := New(12)
	for i := 0; i < 10000; i++ {
		if v := r.TruncNormalPos(-5, 1); v < 0 {
			t.Fatalf("TruncNormalPos returned %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(13)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bool(0.25) frequency %v", frac)
	}
}

func TestMul64(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify against big-integer-free identity using 32-bit halves.
		wantLo := a * b
		if lo != wantLo {
			return false
		}
		// Spot check hi via float approximation for magnitude sanity.
		approx := float64(a) * float64(b) / math.Pow(2, 64)
		return math.Abs(float64(hi)-approx) <= approx*1e-9+2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(14)
	for i := 0; i < 100000; i++ {
		if r.Float64Open() == 0 {
			t.Fatal("Float64Open returned 0")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.StdNormal()
	}
	_ = sink
}

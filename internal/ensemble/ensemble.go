// Package ensemble combines several independently synchronized TSC-NTP
// engines — one per upstream NTP server — into a single robust software
// clock, the scale-out step beyond the paper: its algorithms make one
// server's congestion, outages and faults survivable, but a single
// upstream is still a single point of failure. Running one core engine
// per server over a shared host counter makes the per-server absolute
// clocks directly comparable (they all map the same counter value to a
// time), and a weighted-median agreement step lets a faulty or shifted
// server be outvoted rather than followed.
//
// Three layers:
//
//   - per-server engines: each upstream server feeds its own core.Sync,
//     so per-server filtering state (r̂, point errors, windows) never
//     mixes across paths with different RTTs and asymmetries;
//   - trust scoring: each server's combining weight is derived from the
//     engine's own quality signals — the point-error level (congestion),
//     the stability of the minimum-RTT floor (route flap), and decaying
//     penalties for sanity triggers, poor-quality fallbacks, detected
//     level shifts and server identity changes;
//   - combining: absolute time and rate are the weighted medians of the
//     per-server estimates (breakdown point 1/2: servers holding less
//     than half the total weight cannot move the result beyond the
//     estimates of the others), with a Marzullo-style agreement count
//     over per-server error intervals as the confidence signal.
//
// The per-packet cost is one engine Process plus O(1) scoring; the
// combination itself is evaluated at read time over the N per-server
// estimates, so sharding across N servers preserves the single-engine
// packet budget (see BenchmarkEnsemble).
package ensemble

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// Config configures an ensemble.
type Config struct {
	// Engines carries one engine configuration per upstream server. At
	// least one is required.
	Engines []core.Config

	// PenaltyDecay in (0,1] is the per-exchange decay factor of a
	// server's accumulated event penalty. Default: 0.9 (an isolated
	// sanity event fades in a few tens of exchanges).
	PenaltyDecay float64

	// ErrAlpha in (0,1] is the EWMA gain of the point-error level and
	// RTT-floor wobble trackers. Default: 1/8.
	ErrAlpha float64

	// AgreementFactor scales the per-server error intervals used by the
	// Marzullo-style agreement count. Default: 4.
	AgreementFactor float64
}

func (c *Config) setDefaults() {
	if c.PenaltyDecay == 0 {
		c.PenaltyDecay = 0.9
	}
	if c.ErrAlpha == 0 {
		c.ErrAlpha = 1.0 / 8
	}
	if c.AgreementFactor == 0 {
		c.AgreementFactor = 4
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Engines) == 0 {
		return fmt.Errorf("ensemble: at least one engine config required")
	}
	// Zero means "take the default"; anything else must lie in range.
	// The inverted comparisons are NaN-safe, like core's validation.
	if c.PenaltyDecay != 0 && !(c.PenaltyDecay > 0 && c.PenaltyDecay <= 1) {
		return fmt.Errorf("ensemble: PenaltyDecay %v outside (0,1]", c.PenaltyDecay)
	}
	if c.ErrAlpha != 0 && !(c.ErrAlpha > 0 && c.ErrAlpha <= 1) {
		return fmt.Errorf("ensemble: ErrAlpha %v outside (0,1]", c.ErrAlpha)
	}
	if c.AgreementFactor != 0 && !(c.AgreementFactor > 0) {
		return fmt.Errorf("ensemble: AgreementFactor must be positive")
	}
	for i, ec := range c.Engines {
		if err := ec.Validate(); err != nil {
			return fmt.Errorf("ensemble: engine %d: %w", i, err)
		}
	}
	return nil
}

// member is the per-server trust state.
type member struct {
	count     int
	ready     bool    // past warmup: the engine's estimates are trusted
	delta     float64 // the engine's δ: the floor of the error scale
	ewmaErr   float64 // EWMA of the point error (congestion level), s
	lastRHat  float64
	rttWobble float64 // EWMA of |Δr̂| (minimum-RTT floor stability), s
	penalty   float64 // decaying event penalty, s
}

// observe folds one engine result into the trust state.
func (m *member) observe(cfg *Config, ec *core.Config, res core.Result) {
	m.count++
	if m.count == 1 {
		m.ewmaErr = res.PointError
		m.lastRHat = res.RTTHat
	}
	m.ewmaErr += cfg.ErrAlpha * (res.PointError - m.ewmaErr)
	d := math.Abs(res.RTTHat - m.lastRHat)
	m.rttWobble += cfg.ErrAlpha * (d - m.rttWobble)
	m.lastRHat = res.RTTHat

	// Event penalties, in seconds on the same scale as the thresholds
	// that fired them. The offset sanity check is the strongest signal —
	// the server's timestamps contradicted its own recent history by
	// more than E_s — so it carries the E_s scale; a detected level
	// shift means the path (and so the asymmetry baked into θ̂) changed.
	m.penalty *= cfg.PenaltyDecay
	if res.PoorQuality {
		m.penalty += ec.E()
	}
	if res.OffsetSanityTriggered || res.RateSanityTriggered {
		m.penalty += ec.OffsetSanity
	}
	if res.UpwardShiftDetected {
		m.penalty += ec.ShiftThresholdFactor * ec.E()
	}
	m.ready = !res.Warmup
}

// errScale is the server's current error scale in seconds: the basis of
// both the combining weight (∝ 1/errScale²) and the agreement interval.
func (m *member) errScale() float64 {
	return m.delta + m.ewmaErr + m.rttWobble + m.penalty
}

// Ensemble runs one synchronization engine per upstream server over a
// shared host counter and combines their clocks. It is not safe for
// concurrent use; the public tscclock.Ensemble wrapper adds locking.
type Ensemble struct {
	cfg     Config
	engines []*core.Sync
	members []member
}

// New constructs an ensemble from one engine configuration per server.
func New(cfg Config) (*Ensemble, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Ensemble{
		cfg:     cfg,
		engines: make([]*core.Sync, len(cfg.Engines)),
		members: make([]member, len(cfg.Engines)),
	}
	for i, ec := range cfg.Engines {
		s, err := core.NewSync(ec)
		if err != nil {
			return nil, fmt.Errorf("ensemble: engine %d: %w", i, err)
		}
		e.engines[i] = s
		e.members[i].delta = ec.Delta
	}
	return e, nil
}

// Size returns the number of servers (engines).
func (e *Ensemble) Size() int { return len(e.engines) }

// Engine returns server k's engine, for per-server inspection.
func (e *Ensemble) Engine(k int) *core.Sync { return e.engines[k] }

// Process feeds one completed exchange with server k to that server's
// engine and updates the server's trust state. Exchanges must arrive in
// order per server; cross-server ordering is unconstrained.
func (e *Ensemble) Process(server int, in core.Input) (core.Result, error) {
	if server < 0 || server >= len(e.engines) {
		return core.Result{}, fmt.Errorf("ensemble: server %d out of range [0,%d)", server, len(e.engines))
	}
	res, err := e.engines[server].Process(in)
	if err != nil {
		return res, err
	}
	e.members[server].observe(&e.cfg, &e.cfg.Engines[server], res)
	return res, nil
}

// ObserveIdentity feeds server k's identity data from the most recent
// exchange (after Process, mirroring core.Sync.ObserveIdentity). A
// detected change re-bases that engine's RTT filter and adds a trust
// penalty: the combined clock leans on the other servers until the new
// path proves itself.
func (e *Ensemble) ObserveIdentity(server int, id core.Identity) (bool, error) {
	if server < 0 || server >= len(e.engines) {
		return false, fmt.Errorf("ensemble: server %d out of range [0,%d)", server, len(e.engines))
	}
	changed := e.engines[server].ObserveIdentity(id)
	if changed {
		e.members[server].penalty += e.cfg.Engines[server].OffsetSanity
	}
	return changed, nil
}

// rawWeights returns the current combining weights (unnormalized).
// Servers still in warmup weigh zero; if no server has graduated yet,
// every server with at least one exchange weighs equally, so the
// combined clock is defined from the first packet (matching the
// single-clock behaviour of reading during warmup).
func (e *Ensemble) rawWeights() []float64 {
	ws := make([]float64, len(e.members))
	any := false
	for k := range e.members {
		if m := &e.members[k]; m.ready {
			es := m.errScale()
			ws[k] = 1 / (es * es)
			any = true
		}
	}
	if !any {
		for k := range e.members {
			if e.members[k].count > 0 {
				ws[k] = 1
			}
		}
	}
	return ws
}

// Weights returns the current per-server combining weights, normalized
// to sum to 1 (all zeros before any exchange).
func (e *Ensemble) Weights() []float64 {
	ws := e.rawWeights()
	total := 0.0
	for _, w := range ws {
		total += w
	}
	if total > 0 {
		for k := range ws {
			ws[k] /= total
		}
	}
	return ws
}

// ServerState is the diagnostic view of one server's trust state.
type ServerState struct {
	Exchanges     int     // exchanges processed
	Ready         bool    // past warmup
	Weight        float64 // normalized combining weight
	ErrScale      float64 // error scale (s) behind the weight
	PointErrLevel float64 // EWMA of the point error (s)
	RTTWobble     float64 // EWMA of |Δr̂| (s)
	Penalty       float64 // current decaying event penalty (s)
}

// ServerStates returns the diagnostic view of every server.
func (e *Ensemble) ServerStates() []ServerState {
	ws := e.Weights()
	out := make([]ServerState, len(e.members))
	for k := range e.members {
		m := &e.members[k]
		out[k] = ServerState{
			Exchanges:     m.count,
			Ready:         m.ready,
			Weight:        ws[k],
			ErrScale:      m.errScale(),
			PointErrLevel: m.ewmaErr,
			RTTWobble:     m.rttWobble,
			Penalty:       m.penalty,
		}
	}
	return out
}

// AbsoluteTime reads the combined absolute clock at a counter value:
// the weighted median of the per-server absolute clocks. With three or
// more comparable servers, one faulty server is outvoted — the median
// lands on (or between) the agreeing servers' readings.
func (e *Ensemble) AbsoluteTime(T uint64) float64 {
	vals := make([]float64, len(e.engines))
	for k, s := range e.engines {
		vals[k] = s.AbsoluteTime(T)
	}
	return weightedMedian(vals, e.rawWeights())
}

// RateHat returns the combined rate estimate (seconds per counter
// cycle): the weighted median of the per-server p̂.
func (e *Ensemble) RateHat() float64 {
	vals := make([]float64, len(e.engines))
	for k, s := range e.engines {
		vals[k], _ = s.Clock()
	}
	return weightedMedian(vals, e.rawWeights())
}

// DifferenceSpan measures the interval between two counter readings
// with the combined difference clock (combined rate only).
func (e *Ensemble) DifferenceSpan(T1, T2 uint64) float64 {
	p := e.RateHat()
	if T2 >= T1 {
		return float64(T2-T1) * p
	}
	return -float64(T1-T2) * p
}

// Agreement counts the servers whose error interval — the per-server
// absolute time ± AgreementFactor·errScale, Marzullo-style — contains
// the combined absolute time at counter value T. len(servers) means
// full agreement; below a majority means the ensemble is running on a
// minority of self-consistent servers and should be treated with
// suspicion.
func (e *Ensemble) Agreement(T uint64) int {
	return e.TakeSnapshot(T).Agreement
}

// Snapshot is the combined state at one counter value, computed with a
// single weight evaluation (the per-exchange status path uses it so
// the combiner runs once per exchange, not once per reported field).
type Snapshot struct {
	Weights      []float64 // normalized per-server combining weights
	Rate         float64   // combined rate estimate (s/cycle)
	AbsoluteTime float64   // combined absolute clock at T (s)
	Agreement    int       // servers whose interval contains AbsoluteTime
}

// TakeSnapshot evaluates the combiner once at counter value T. The
// normalized weights serve the medians directly — weightedMedian is
// invariant under uniform weight scaling.
func (e *Ensemble) TakeSnapshot(T uint64) Snapshot {
	ws := e.Weights()
	abs := make([]float64, len(e.engines))
	rates := make([]float64, len(e.engines))
	for k, s := range e.engines {
		abs[k] = s.AbsoluteTime(T)
		rates[k], _ = s.Clock()
	}
	snap := Snapshot{
		Weights:      ws,
		Rate:         weightedMedian(rates, ws),
		AbsoluteTime: weightedMedian(abs, ws),
	}
	for k := range e.members {
		if e.members[k].count == 0 {
			continue
		}
		bound := e.cfg.AgreementFactor * e.members[k].errScale()
		if math.Abs(abs[k]-snap.AbsoluteTime) <= bound {
			snap.Agreement++
		}
	}
	return snap
}

// Exchanges returns the total number of exchanges processed across all
// servers.
func (e *Ensemble) Exchanges() int {
	n := 0
	for k := range e.members {
		n += e.members[k].count
	}
	return n
}

// weightedMedian returns the smallest value v in vals such that the
// summed weight of values ≤ v reaches half the total weight — the
// classic robust combiner with breakdown point 1/2. Zero-weight entries
// are ignored; with no positive weight the first value is returned (the
// caller's fallback guarantees this only happens before any exchange).
func weightedMedian(vals, ws []float64) float64 {
	type wv struct{ v, w float64 }
	items := make([]wv, 0, len(vals))
	total := 0.0
	for k := range vals {
		if ws[k] > 0 {
			items = append(items, wv{vals[k], ws[k]})
			total += ws[k]
		}
	}
	if len(items) == 0 {
		if len(vals) == 0 {
			return 0
		}
		return vals[0]
	}
	sort.Slice(items, func(a, b int) bool { return items[a].v < items[b].v })
	acc := 0.0
	for _, it := range items {
		acc += it.w
		if acc >= total/2 {
			return it.v
		}
	}
	return items[len(items)-1].v
}

// Package ensemble combines several independently synchronized TSC-NTP
// engines — one per upstream NTP server — into a single robust software
// clock, the scale-out step beyond the paper: its algorithms make one
// server's congestion, outages and faults survivable, but a single
// upstream is still a single point of failure. Running one core engine
// per server over a shared host counter makes the per-server absolute
// clocks directly comparable (they all map the same counter value to a
// time), and an interval-intersection selection stage followed by a
// weighted-median agreement step lets faulty — even mutually agreeing —
// servers be outvoted rather than followed.
//
// Four layers:
//
//   - per-server engines: each upstream server feeds its own core.Sync,
//     so per-server filtering state (r̂, point errors, windows) never
//     mixes across paths with different RTTs and asymmetries;
//   - trust scoring: each server's combining weight is derived from the
//     engine's own quality signals — the point-error level (congestion),
//     the stability of the minimum-RTT floor (route flap), and decaying
//     penalties for sanity triggers, poor-quality fallbacks, detected
//     level shifts and server identity changes;
//   - selection: each server asserts a correctness interval — its
//     absolute clock ± a bound from its error scale — and a
//     Marzullo/NTP-select sweep finds the maximal mutually-intersecting
//     majority. Servers outside it are flagged falsetickers and must
//     re-intersect for several consecutive exchanges before re-admission
//     (hysteresis), so a lying server cannot flap in and out of the
//     vote. The reference region is sticky: the selected set's own
//     intersection keeps defining it while the set still holds a strict
//     majority of the ready servers, so honest intervals that
//     transiently balloon under congestion cannot hand a tight lying
//     minority the vote;
//   - combining: absolute time and rate are the weighted medians of the
//     *selected* servers' estimates (breakdown point 1/2 within the
//     selected set, count-based breakdown ⌈N/2⌉−1 from the selection
//     stage), with a Marzullo-style agreement count over per-server
//     error intervals as the confidence signal.
//
// Selection closes the gap the weighted median alone leaves open: the
// median's breakdown is weight-based, so two colluding servers on clean
// low-jitter paths can accumulate more than half the total weight and
// drag the combined clock without ever being flagged. The intersection
// sweep is count-based — a minority of servers, however trusted, whose
// intervals do not intersect the majority's is excluded outright.
//
// The sweep also yields a first path-asymmetry diagnostic the
// single-server engine cannot observe (paper §2.3): the signed
// disagreement of each server's absolute clock against the selected
// set's interval midpoint. A server that is systematically early or
// late against the ensemble — while healthy by every single-path signal
// — is exactly what an uncalibrated path asymmetry looks like.
//
// The per-packet cost is one engine Process, O(1) scoring, and one
// O(N log N) selection sweep over the N per-server intervals (N is the
// server count — single digits — so the sweep is tens of nanoseconds);
// the combination itself is evaluated at read time over the per-server
// estimates with zero allocations (see BenchmarkEnsemble).
//
//repro:deterministic
package ensemble

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/core"
)

// Config configures an ensemble.
type Config struct {
	// Engines carries one engine configuration per upstream server. At
	// least one is required.
	Engines []core.Config

	// PenaltyDecay in (0,1] is the per-exchange decay factor of a
	// server's accumulated event penalty. Default: 0.9 (an isolated
	// sanity event fades in a few tens of exchanges).
	PenaltyDecay float64

	// ErrAlpha in (0,1] is the EWMA gain of the point-error level and
	// RTT-floor wobble trackers. Default: 1/8.
	ErrAlpha float64

	// AgreementFactor scales the per-server error intervals used by both
	// the selection sweep and the Marzullo-style agreement count.
	// Default: 4.
	AgreementFactor float64

	// ReadmitAfter is the number of consecutive selection sweeps a
	// flagged falseticker must intersect the majority before being
	// re-admitted to the selected set (hysteresis: one lucky overlap
	// does not restore the vote). Default: 8.
	ReadmitAfter int

	// DisableSelection turns the interval-intersection stage off: the
	// weighted median runs over every ready server, as the pre-selection
	// combiner did. For ablation and experiments.
	DisableSelection bool

	// AsymCorrection promotes the per-server asymmetry hints from
	// diagnostics to a damped first-order offset correction (see
	// asym.go): each selected server's absolute clock is shifted by an
	// EWMA of its signed disagreement with the selected-set midpoint
	// before it enters the combining median, pulling systematically
	// early or late servers — what uncalibrated path asymmetry looks
	// like from the outside (paper §2.3) — onto the ensemble consensus.
	// Off by default; the combined clock is bit-identical to the
	// uncorrected combiner while disabled.
	AsymCorrection bool

	// AsymAlpha in (0,1] is the EWMA gain of the asymmetry-correction
	// tracker: the damping that keeps the correction a contraction (one
	// noisy sweep moves it by at most AsymAlpha of the disturbance).
	// Default: 1/64.
	AsymAlpha float64

	// AsymClampFrac bounds the applied correction to this fraction of
	// the server's correctness-interval half-width
	// (AgreementFactor·noiseScale): a correction can re-center a server
	// within its own claim but never push it across it, so a wrong
	// correction degrades accuracy without being able to manufacture a
	// falseticker or flip a vote. Default: 1/2.
	AsymClampFrac float64

	// Degradation ladder (see ladder.go). MinVotingSynced is the voting
	// quorum for StateSynced (default: a strict majority, len/2+1).
	// RecoverAfter is the hysteresis: consecutive exchanges at a better
	// level before an upgrade takes (default 3). StaleAfterPolls is the
	// per-server freshness bound in polling periods — a server whose
	// last exchange is older loses its vote (default 8).
	MinVotingSynced int
	RecoverAfter    int
	StaleAfterPolls int

	// HoldoverAfter and UnsyncedAfter are read-time staleness caps in
	// seconds of combined-readout age: past HoldoverAfter the published
	// state is capped at StateHoldover, past UnsyncedAfter at
	// StateUnsynced. Defaults scale with the largest engine polling
	// period: max(8·poll, 60) and max(128·poll, 3600).
	HoldoverAfter float64
	UnsyncedAfter float64
}

func (c *Config) setDefaults() {
	if c.PenaltyDecay == 0 {
		c.PenaltyDecay = 0.9
	}
	if c.ErrAlpha == 0 {
		c.ErrAlpha = 1.0 / 8
	}
	if c.AgreementFactor == 0 {
		c.AgreementFactor = 4
	}
	if c.ReadmitAfter == 0 {
		c.ReadmitAfter = 8
	}
	if c.AsymAlpha == 0 {
		c.AsymAlpha = 1.0 / 64
	}
	if c.AsymClampFrac == 0 {
		c.AsymClampFrac = 0.5
	}
	if c.MinVotingSynced == 0 {
		c.MinVotingSynced = len(c.Engines)/2 + 1
	}
	if c.RecoverAfter == 0 {
		c.RecoverAfter = 3
	}
	if c.StaleAfterPolls == 0 {
		c.StaleAfterPolls = 8
	}
	maxPoll := 0.0
	for _, ec := range c.Engines {
		if ec.PollPeriod > maxPoll {
			maxPoll = ec.PollPeriod
		}
	}
	if c.HoldoverAfter == 0 {
		c.HoldoverAfter = math.Max(8*maxPoll, 60)
	}
	if c.UnsyncedAfter == 0 {
		c.UnsyncedAfter = math.Max(128*maxPoll, 3600)
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Engines) == 0 {
		return fmt.Errorf("ensemble: at least one engine config required")
	}
	// Zero means "take the default"; anything else must lie in range.
	// The inverted comparisons are NaN-safe, like core's validation.
	if c.PenaltyDecay != 0 && !(c.PenaltyDecay > 0 && c.PenaltyDecay <= 1) {
		return fmt.Errorf("ensemble: PenaltyDecay %v outside (0,1]", c.PenaltyDecay)
	}
	if c.ErrAlpha != 0 && !(c.ErrAlpha > 0 && c.ErrAlpha <= 1) {
		return fmt.Errorf("ensemble: ErrAlpha %v outside (0,1]", c.ErrAlpha)
	}
	if c.AgreementFactor != 0 && !(c.AgreementFactor > 0) {
		return fmt.Errorf("ensemble: AgreementFactor must be positive")
	}
	if c.ReadmitAfter < 0 {
		return fmt.Errorf("ensemble: ReadmitAfter must be non-negative")
	}
	if c.AsymAlpha != 0 && !(c.AsymAlpha > 0 && c.AsymAlpha <= 1) {
		return fmt.Errorf("ensemble: AsymAlpha %v outside (0,1]", c.AsymAlpha)
	}
	if c.AsymClampFrac != 0 && !(c.AsymClampFrac > 0) {
		return fmt.Errorf("ensemble: AsymClampFrac %v must be positive", c.AsymClampFrac)
	}
	if c.MinVotingSynced != 0 && (c.MinVotingSynced < 1 || c.MinVotingSynced > len(c.Engines)) {
		return fmt.Errorf("ensemble: MinVotingSynced %d outside [1,%d]", c.MinVotingSynced, len(c.Engines))
	}
	if c.RecoverAfter < 0 {
		return fmt.Errorf("ensemble: RecoverAfter must be non-negative")
	}
	if c.StaleAfterPolls < 0 {
		return fmt.Errorf("ensemble: StaleAfterPolls must be non-negative")
	}
	if c.HoldoverAfter != 0 && !(c.HoldoverAfter > 0) {
		return fmt.Errorf("ensemble: HoldoverAfter %v must be positive", c.HoldoverAfter)
	}
	if c.UnsyncedAfter != 0 && !(c.UnsyncedAfter > 0) {
		return fmt.Errorf("ensemble: UnsyncedAfter %v must be positive", c.UnsyncedAfter)
	}
	if c.HoldoverAfter > 0 && c.UnsyncedAfter > 0 && c.UnsyncedAfter < c.HoldoverAfter {
		return fmt.Errorf("ensemble: UnsyncedAfter %v below HoldoverAfter %v", c.UnsyncedAfter, c.HoldoverAfter)
	}
	for i, ec := range c.Engines {
		if err := ec.Validate(); err != nil {
			return fmt.Errorf("ensemble: engine %d: %w", i, err)
		}
	}
	return nil
}

// member is the per-server trust and selection state.
type member struct {
	count     int
	ready     bool    // past warmup: the engine's estimates are trusted
	delta     float64 // the engine's δ: the floor of the error scale
	ewmaErr   float64 // EWMA of the point error (congestion level), s
	lastRHat  float64
	rttWobble float64 // EWMA of |Δr̂| (minimum-RTT floor stability), s
	penalty   float64 // decaying event penalty, s

	selected bool    // in the selected (truechimer) set
	streak   int     // consecutive sweeps intersecting the majority
	asym     float64 // signed clock error vs the selected-set midpoint, s

	// Asymmetry correction (see asym.go): corrEwma is the damped
	// tracker of the asymmetry hint, corr the clamped correction the
	// combine paths actually subtract (zero while the gate is closed).
	corrEwma float64
	corr     float64
}

// observe folds one engine result into the trust state.
func (m *member) observe(cfg *Config, ec *core.Config, res core.Result) {
	m.count++
	if m.count == 1 {
		m.ewmaErr = res.PointError
		m.lastRHat = res.RTTHat
	}
	m.ewmaErr += cfg.ErrAlpha * (res.PointError - m.ewmaErr)
	d := math.Abs(res.RTTHat - m.lastRHat)
	m.rttWobble += cfg.ErrAlpha * (d - m.rttWobble)
	m.lastRHat = res.RTTHat

	// Event penalties, in seconds on the same scale as the thresholds
	// that fired them. The offset sanity check is the strongest signal —
	// the server's timestamps contradicted its own recent history by
	// more than E_s — so it carries the E_s scale; a detected level
	// shift means the path (and so the asymmetry baked into θ̂) changed.
	m.penalty *= cfg.PenaltyDecay
	if res.PoorQuality {
		m.penalty += ec.E()
	}
	if res.OffsetSanityTriggered || res.RateSanityTriggered {
		m.penalty += ec.OffsetSanity
	}
	if res.UpwardShiftDetected {
		m.penalty += ec.ShiftThresholdFactor * ec.E()
	}
	if !m.ready && !res.Warmup {
		// Graduation: enter the selected set on trust — the very next
		// sweep evicts the server if its interval misses the majority.
		m.selected = true
		m.streak = 0
	}
	m.ready = !res.Warmup
}

// errScale is the server's current error scale in seconds: the basis of
// the combining weight (∝ 1/errScale²) and the agreement interval.
func (m *member) errScale() float64 {
	return m.delta + m.ewmaErr + m.rttWobble + m.penalty
}

// noiseScale is the error scale without the event penalty: the width of
// the server's correctness claim in the selection sweep. Penalties
// measure distrust, not measurement uncertainty — folding them into the
// interval would let a misbehaving server widen its own claim exactly
// when it should be easiest to convict (its sanity events would balloon
// the interval until it overlaps any majority).
func (m *member) noiseScale() float64 {
	return m.delta + m.ewmaErr + m.rttWobble
}

// endpoint is one interval edge in the selection sweep.
type endpoint struct {
	x float64
	d int8 // +1 interval start, −1 interval end
}

// Ensemble runs one synchronization engine per upstream server over a
// shared host counter and combines their clocks. It is not safe for
// concurrent use; the public tscclock.Ensemble wrapper adds locking.
// Read results that are slices (Snapshot fields) are backed by internal
// scratch buffers reused across calls — copy them to retain them past
// the next call.
type Ensemble struct {
	cfg     Config
	engines []*core.Sync
	members []member

	// Scratch buffers for the zero-allocation read and sweep paths (the
	// type is single-threaded by contract, so one set suffices).
	vals   []float64  // per-server absolute times
	rates  []float64  // per-server rates
	ws     []float64  // per-server weights
	items  []wv       // weighted-median sort scratch
	eps    []endpoint // selection sweep endpoints
	lo     []float64  // per-server interval lower bounds
	hi     []float64  // per-server interval upper bounds
	widths []float64  // interval-width sort scratch (sweep voter filter)
	sel    []bool     // Snapshot.Selected backing
	hint   []float64  // Snapshot.AsymmetryHint backing

	// Degradation ladder state (see ladder.go): the writer-side rung,
	// the recovery hysteresis streak, whether the combine was ever
	// trusted (gates HOLDOVER vs UNSYNCED), the rate frozen at the last
	// trusted combine, the serving health summary, and the voting set.
	base        State
	upStreak    int
	everTrusted bool
	frozenRate  float64
	health      Health
	voting      []bool
	votingCount int

	// Lock-free publication (see readout.go): lastTf anchors the
	// combined readout's staleness, pub holds the published snapshot.
	lastTf uint64
	pub    ensemblePub
}

// New constructs an ensemble from one engine configuration per server.
func New(cfg Config) (*Ensemble, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(cfg.Engines)
	e := &Ensemble{
		cfg:     cfg,
		engines: make([]*core.Sync, n),
		members: make([]member, n),
		vals:    make([]float64, n),
		rates:   make([]float64, n),
		ws:      make([]float64, n),
		items:   make([]wv, 0, n),
		eps:     make([]endpoint, 0, 2*n),
		lo:      make([]float64, n),
		hi:      make([]float64, n),
		widths:  make([]float64, 0, n),
		sel:     make([]bool, n),
		hint:    make([]float64, n),
		voting:  make([]bool, n),
	}
	for i, ec := range cfg.Engines {
		s, err := core.NewSync(ec)
		if err != nil {
			return nil, fmt.Errorf("ensemble: engine %d: %w", i, err)
		}
		e.engines[i] = s
		e.members[i].delta = ec.Delta
	}
	e.publish()
	return e, nil
}

// Size returns the number of servers (engines).
func (e *Ensemble) Size() int { return len(e.engines) }

// Engine returns server k's engine, for per-server inspection.
func (e *Ensemble) Engine(k int) *core.Sync { return e.engines[k] }

// Process feeds one completed exchange with server k to that server's
// engine, updates the server's trust state, and runs one selection
// sweep at the exchange's receive stamp. Exchanges must arrive in
// order per server; cross-server ordering is unconstrained.
//
//repro:hotpath
func (e *Ensemble) Process(server int, in core.Input) (core.Result, error) {
	if server < 0 || server >= len(e.engines) {
		//repro:alloc-ok rejected-input error path: allocates only for out-of-range server indices
		return core.Result{}, fmt.Errorf("ensemble: server %d out of range [0,%d)", server, len(e.engines))
	}
	res, err := e.engines[server].Process(in)
	if err != nil {
		return res, err
	}
	e.members[server].observe(&e.cfg, &e.cfg.Engines[server], res)
	e.updateSelection(in.Tf)
	if e.cfg.AsymCorrection {
		e.updateAsymCorrection()
	}
	e.lastTf = in.Tf
	e.updateLadder()
	e.publish()
	return res, nil
}

// BatchExchange is one completed exchange addressed to its server, the
// unit of ProcessBatch.
type BatchExchange struct {
	Server int
	In     core.Input
}

// ProcessBatch feeds a batch of completed exchanges — e.g. one poll
// round's worth, arriving together from a batched receive loop — and
// runs the combine stages ONCE for the whole batch instead of once per
// exchange. Engine updates are identical to calling Process per
// exchange (same engines, same order, so per-server in-order delivery
// is preserved); only the selection sweep, asymmetry promotion, ladder
// and publication are amortized, evaluated at the latest receive stamp
// in the batch. Cache locality is the other half: the engines' state
// is walked back-to-back while hot, then the member/selection arrays
// once, instead of interleaving the two per exchange.
//
// On an engine error the remaining exchanges are not applied (the
// caller cannot know which inputs a partial batch consumed otherwise),
// but the combine stages still run over what was applied, so the
// published readout never lags the engine state.
func (e *Ensemble) ProcessBatch(batch []BatchExchange) error {
	maxTf, applied := uint64(0), 0
	var procErr error
	for i := range batch {
		b := &batch[i]
		if b.Server < 0 || b.Server >= len(e.engines) {
			procErr = fmt.Errorf("ensemble: server %d out of range [0,%d)", b.Server, len(e.engines))
			break
		}
		res, err := e.engines[b.Server].Process(b.In)
		if err != nil {
			procErr = err
			break
		}
		e.members[b.Server].observe(&e.cfg, &e.cfg.Engines[b.Server], res)
		if b.In.Tf > maxTf {
			maxTf = b.In.Tf
		}
		applied++
	}
	if applied > 0 {
		e.updateSelection(maxTf)
		if e.cfg.AsymCorrection {
			e.updateAsymCorrection()
		}
		e.lastTf = maxTf
		e.updateLadder()
		e.publish()
	}
	return procErr
}

// ObserveIdentity feeds server k's identity data from the most recent
// exchange (after Process, mirroring core.Sync.ObserveIdentity). A
// detected change re-bases that engine's RTT filter and adds a trust
// penalty: the combined clock leans on the other servers until the new
// path proves itself.
func (e *Ensemble) ObserveIdentity(server int, id core.Identity) (bool, error) {
	if server < 0 || server >= len(e.engines) {
		return false, fmt.Errorf("ensemble: server %d out of range [0,%d)", server, len(e.engines))
	}
	before := e.engines[server].Readout()
	changed := e.engines[server].ObserveIdentity(id)
	if changed {
		e.members[server].penalty += e.cfg.Engines[server].OffsetSanity
	}
	// A new identity can change the advertised stratum chain, so the
	// serving health must track it (the voting set itself only moves on
	// Process).
	if e.votingCount > 0 {
		e.refreshHealth()
	}
	// The server's identity is part of the published readout (relay
	// serving derives its advertised stratum from it), so republish
	// when the engine published a new snapshot — a first observation
	// or a change — but not on the common unchanged-identity exchange,
	// which would double the publication cost for nothing.
	if changed || e.engines[server].Readout() != before {
		e.publish()
	}
	return changed, nil
}

// updateSelection runs one Marzullo/NTP-select sweep at counter value T:
// every ready server asserts the correctness interval
// [Ca_k(T) − bound_k, Ca_k(T) + bound_k] with bound_k =
// AgreementFactor·noiseScale_k, a sweep finds the majority region, and
// each server is classified by whether its interval reaches it.
// Falsetickers re-enter only after ReadmitAfter consecutive
// intersecting sweeps.
//
// The region is *sticky*: while the currently selected set's intervals
// still mutually intersect in a region backed by a strict majority of
// the ready servers, that incumbent region is the reference, and
// flagged servers only rebuild their re-admission streaks against it.
// Only when the incumbent set fractures does the full Marzullo sweep
// over every ready server decide afresh. Without stickiness, an honest
// server whose interval transiently balloons (a congestion episode
// inflates its noise scale) intersects everything — and two such wide
// intervals can hand a tight-but-lying minority a spurious maximal
// overlap, evicting the remaining honest servers. A ballooned interval
// widens a claim; it should not move the vote.
func (e *Ensemble) updateSelection(T uint64) {
	if e.cfg.DisableSelection {
		return
	}
	nReady := 0
	for k := range e.members {
		if e.members[k].ready {
			nReady++
		}
	}
	if nReady == 0 {
		return
	}
	if nReady == 1 {
		// A lone calibrated server cannot be outvoted; it is the
		// selected set, and the midpoint is its own clock.
		for k := range e.members {
			if m := &e.members[k]; m.ready {
				m.selected = true
				m.asym = 0
			}
		}
		return
	}

	// Correctness intervals of every ready server.
	for k := range e.members {
		m := &e.members[k]
		if !m.ready {
			continue
		}
		c := e.engines[k].AbsoluteTime(T)
		bound := e.cfg.AgreementFactor * m.noiseScale()
		e.lo[k] = c - bound
		e.hi[k] = c + bound
	}

	// Pass 1: the incumbent region. Pass 2, on fracture: the full sweep.
	bestLo, bestHi, ok := e.sweepRegion(nReady, true)
	if !ok {
		bestLo, bestHi, ok = e.sweepRegion(nReady, false)
	}
	if !ok {
		// No strict majority intersects: there is no evidence to
		// convict anyone, so the classification stands (NTP's select
		// likewise reports no survivors rather than guessing).
		return
	}

	// Classification is asymmetric, and deliberately so.
	//
	// Eviction is interval-based and immediate: a selected server stays
	// only while its correctness interval still reaches the region, so
	// an honest server whose interval widens under congestion keeps its
	// seat (a wide claim still covers the truth it asserts).
	for k := range e.members {
		m := &e.members[k]
		if !m.ready || !m.selected {
			continue
		}
		if e.lo[k] <= bestHi && e.hi[k] >= bestLo {
			m.streak++
		} else {
			m.streak = 0
			m.selected = false
		}
	}

	// The survivors' cluster: the intersection of the still-selected
	// intervals — the tightest range every truechimer agrees contains
	// the truth (the sweep region stands in after a mass eviction).
	iLo, iHi := e.selectedIntersection(bestLo, bestHi)

	// Re-admission is midpoint-based and slow: a flagged server builds
	// its streak only while its clock midpoint lies inside the
	// survivors' cluster, and returns after ReadmitAfter consecutive
	// such sweeps. Mere interval overlap is not evidence here — a lying
	// server whose own noise scale balloons during a congestion episode
	// can widen its claim until it touches any majority, but it cannot
	// move its clock into the cluster without actually agreeing.
	for k := range e.members {
		m := &e.members[k]
		if !m.ready || m.selected {
			continue
		}
		if mid := (e.lo[k] + e.hi[k]) / 2; iLo <= mid && mid <= iHi {
			m.streak++
			if m.streak >= e.cfg.ReadmitAfter {
				m.selected = true
			}
		} else {
			m.streak = 0
		}
	}

	// Selected-set midpoint: the center of the survivors' cluster
	// (recomputed so re-admissions count), the ensemble's best single
	// point of truth. Each ready server's signed disagreement against
	// it is the asymmetry hint: a persistent bias here, on a server
	// healthy by every single-path signal, is what an uncalibrated path
	// asymmetry error looks like from the outside (paper §2.3).
	iLo, iHi = e.selectedIntersection(bestLo, bestHi)
	mid := (iLo + iHi) / 2
	for k := range e.members {
		if m := &e.members[k]; m.ready {
			m.asym = (e.lo[k]+e.hi[k])/2 - mid
		}
	}
}

// selectedIntersection returns the intersection of the ready selected
// servers' intervals, falling back to the given sweep region when no
// selected interval remains or the intersection is empty.
func (e *Ensemble) selectedIntersection(regionLo, regionHi float64) (float64, float64) {
	iLo, iHi := math.Inf(-1), math.Inf(1)
	any := false
	for k := range e.members {
		if m := &e.members[k]; m.ready && m.selected {
			any = true
			iLo = math.Max(iLo, e.lo[k])
			iHi = math.Min(iHi, e.hi[k])
		}
	}
	if !any || iLo > iHi {
		return regionLo, regionHi
	}
	return iLo, iHi
}

// uninformativeWidthFactor disqualifies ballooned intervals from voting
// in the fresh (fallback) sweep: an interval wider than this multiple
// of the median ready interval width spans every camp at the decision
// scale, so counting it only inflates overlap everywhere — including
// around a tight lying minority. Such a server is still classified
// against the region; it just cannot help pick it.
const uninformativeWidthFactor = 4

// sweepRegion runs the Marzullo endpoint sweep over the ready servers'
// intervals (e.lo/e.hi) — restricted to the currently selected set when
// selectedOnly — and returns the maximal-overlap region. ok requires
// that maximal overlap to be a strict majority of ALL nReady ready
// servers, so the selected set defines the region only while it can
// still muster that majority by itself. The fresh sweep (selectedOnly
// false) additionally excludes uninformative ballooned intervals from
// voting.
func (e *Ensemble) sweepRegion(nReady int, selectedOnly bool) (lo, hi float64, ok bool) {
	widthCap := math.Inf(1)
	if !selectedOnly {
		e.widths = e.widths[:0]
		for k := range e.members {
			if e.members[k].ready {
				//repro:alloc-ok append into receiver-held scratch resliced from [:0]; capacity reaches the member count after the first sweep and never grows again
				e.widths = append(e.widths, e.hi[k]-e.lo[k])
			}
		}
		slices.Sort(e.widths)
		widthCap = uninformativeWidthFactor * e.widths[len(e.widths)/2]
	}

	// Interval endpoints, starts before ends at equal positions so
	// touching intervals count as intersecting.
	e.eps = e.eps[:0]
	for k := range e.members {
		m := &e.members[k]
		if !m.ready || (selectedOnly && !m.selected) {
			continue
		}
		if e.hi[k]-e.lo[k] > widthCap {
			continue
		}
		//repro:alloc-ok append into receiver-held scratch resliced from [:0]; capacity reaches 2x the member count after the first sweep and never grows again
		e.eps = append(e.eps, endpoint{x: e.lo[k], d: 1}, endpoint{x: e.hi[k], d: -1})
	}
	//repro:alloc-ok slices.SortFunc does not retain the comparison closure, so it stays on the stack (generic, no interface boxing)
	slices.SortFunc(e.eps, func(a, b endpoint) int {
		switch {
		case a.x < b.x:
			return -1
		case a.x > b.x:
			return 1
		default:
			return int(b.d) - int(a.d)
		}
	})

	// A new maximum can only appear at a start, and a start is never the
	// last endpoint, so eps[i+1] is always valid there.
	cnt, best := 0, 0
	for i := range e.eps {
		if e.eps[i].d > 0 {
			cnt++
			if cnt > best {
				best = cnt
				lo = e.eps[i].x
				hi = e.eps[i+1].x
			}
		} else {
			cnt--
		}
	}
	return lo, hi, best > nReady/2
}

// rawWeights fills the scratch weight buffer with the current combining
// weights (unnormalized) and returns it. Servers still in warmup weigh
// zero, and so do flagged falsetickers while selection is enabled; if
// every ready server is excluded (a transient, e.g. all in readmission
// probation) the ready servers vote as if selection were off, and if no
// server has graduated yet, every server with at least one exchange
// weighs equally, so the combined clock is defined from the first
// packet (matching the single-clock behaviour of reading during
// warmup).
func (e *Ensemble) rawWeights() []float64 {
	ws := e.ws
	anyReady, anySelected := false, false
	for k := range e.members {
		ws[k] = 0
		m := &e.members[k]
		if !m.ready {
			continue
		}
		anyReady = true
		if e.cfg.DisableSelection || m.selected {
			es := m.errScale()
			ws[k] = 1 / (es * es)
			anySelected = true
		}
	}
	switch {
	case anyReady && !anySelected:
		for k := range e.members {
			if m := &e.members[k]; m.ready {
				es := m.errScale()
				ws[k] = 1 / (es * es)
			}
		}
	case !anyReady:
		for k := range e.members {
			if e.members[k].count > 0 {
				ws[k] = 1
			}
		}
	}
	return ws
}

// Weights returns the current per-server combining weights, normalized
// to sum to 1 (all zeros before any exchange). The returned slice is
// freshly allocated.
func (e *Ensemble) Weights() []float64 {
	ws := make([]float64, len(e.members))
	copy(ws, e.rawWeights())
	normalize(ws)
	return ws
}

// normalize scales ws to sum to 1 in place (no-op when the sum is 0).
func normalize(ws []float64) {
	total := 0.0
	for _, w := range ws {
		total += w
	}
	if total > 0 {
		for k := range ws {
			ws[k] /= total
		}
	}
}

// ServerState is the diagnostic view of one server's trust and
// selection state.
type ServerState struct {
	Exchanges     int     // exchanges processed
	Ready         bool    // past warmup
	Weight        float64 // normalized combining weight
	ErrScale      float64 // error scale (s) behind the weight
	PointErrLevel float64 // EWMA of the point error (s)
	RTTWobble     float64 // EWMA of |Δr̂| (s)
	Penalty       float64 // current decaying event penalty (s)

	// Selected reports membership in the selected (truechimer) set;
	// Falseticker is a ready server currently voted out by the
	// interval-intersection stage. IntersectStreak counts consecutive
	// sweeps intersecting the majority (a flagged server re-enters at
	// ReadmitAfter). AsymmetryHint is the signed disagreement of this
	// server's absolute clock against the selected-set midpoint (s) —
	// an estimate of path-asymmetry error no single path can observe.
	Selected        bool
	Falseticker     bool
	IntersectStreak int
	AsymmetryHint   float64

	// AsymCorrection is the damped, clamped asymmetry correction (s)
	// currently subtracted from this server's absolute clock in the
	// combining median (see asym.go); zero unless Config.AsymCorrection
	// is on and the server is selected and unpenalized.
	AsymCorrection float64
}

// ServerStates returns the diagnostic view of every server.
func (e *Ensemble) ServerStates() []ServerState {
	ws := e.Weights()
	out := make([]ServerState, len(e.members))
	for k := range e.members {
		m := &e.members[k]
		out[k] = ServerState{
			Exchanges:       m.count,
			Ready:           m.ready,
			Weight:          ws[k],
			ErrScale:        m.errScale(),
			PointErrLevel:   m.ewmaErr,
			RTTWobble:       m.rttWobble,
			Penalty:         m.penalty,
			Selected:        m.ready && m.selected,
			Falseticker:     m.ready && !m.selected && !e.cfg.DisableSelection,
			IntersectStreak: m.streak,
			AsymmetryHint:   m.asym,
			AsymCorrection:  m.corr,
		}
	}
	return out
}

// AbsoluteTime reads the combined absolute clock at a counter value:
// the weighted median of the selected servers' absolute clocks. With
// three or more comparable servers, a faulty minority — even one whose
// members agree with each other — is excluded by the selection stage
// and outvoted by the median.
func (e *Ensemble) AbsoluteTime(T uint64) float64 {
	for k, s := range e.engines {
		e.vals[k] = s.AbsoluteTime(T) - e.appliedCorrection(k)
	}
	return weightedMedianBuf(e.vals, e.rawWeights(), e.items)
}

// RateHat returns the combined rate estimate (seconds per counter
// cycle): the weighted median of the selected servers' p̂ — frozen at
// the last trusted combine while the ladder sits below DEGRADED
// (coasting on a live median of unfit servers would defeat holdover).
func (e *Ensemble) RateHat() float64 {
	if e.frozenActive() {
		return e.frozenRate
	}
	for k, s := range e.engines {
		e.rates[k], _ = s.Clock()
	}
	return weightedMedianBuf(e.rates, e.rawWeights(), e.items)
}

// DifferenceSpan measures the interval between two counter readings
// with the combined difference clock (combined rate only).
func (e *Ensemble) DifferenceSpan(T1, T2 uint64) float64 {
	p := e.RateHat()
	if T2 >= T1 {
		return float64(T2-T1) * p
	}
	return -float64(T1-T2) * p
}

// Agreement counts the servers whose error interval — the per-server
// absolute time ± AgreementFactor·errScale, Marzullo-style — contains
// the combined absolute time at counter value T. len(servers) means
// full agreement; below a majority means the ensemble is running on a
// minority of self-consistent servers and should be treated with
// suspicion.
func (e *Ensemble) Agreement(T uint64) int {
	return e.TakeSnapshot(T).Agreement
}

// Snapshot is the combined state at one counter value, computed with a
// single weight evaluation (the per-exchange status path uses it so
// the combiner runs once per exchange, not once per reported field).
// The slice fields are backed by scratch buffers owned by the ensemble
// and are overwritten by the next call — copy them to retain them.
type Snapshot struct {
	Weights      []float64 // normalized per-server combining weights
	Rate         float64   // combined rate estimate (s/cycle)
	AbsoluteTime float64   // combined absolute clock at T (s)
	Agreement    int       // servers whose interval contains AbsoluteTime

	// Selected marks the truechimer set: ready servers whose
	// correctness intervals intersect the majority. Falsetickers counts
	// ready servers currently voted out. AsymmetryHint is each server's
	// signed absolute-clock disagreement against the selected-set
	// midpoint (s), a per-path asymmetry-error estimate; zero for
	// servers still in warmup.
	Selected      []bool
	Falsetickers  int
	AsymmetryHint []float64
}

// TakeSnapshot evaluates the combiner once at counter value T. The
// normalized weights serve the medians directly — weightedMedian is
// invariant under uniform weight scaling.
func (e *Ensemble) TakeSnapshot(T uint64) Snapshot {
	ws := e.rawWeights()
	normalize(ws)
	for k, s := range e.engines {
		e.vals[k] = s.AbsoluteTime(T) - e.appliedCorrection(k)
		e.rates[k], _ = s.Clock()
	}
	snap := Snapshot{
		Weights:       ws,
		Rate:          weightedMedianBuf(e.rates, ws, e.items),
		AbsoluteTime:  weightedMedianBuf(e.vals, ws, e.items),
		Selected:      e.sel,
		AsymmetryHint: e.hint,
	}
	if e.frozenActive() {
		snap.Rate = e.frozenRate
	}
	for k := range e.members {
		m := &e.members[k]
		e.sel[k] = m.ready && m.selected
		e.hint[k] = m.asym
		if m.ready && !m.selected && !e.cfg.DisableSelection {
			snap.Falsetickers++
		}
		if m.count == 0 {
			continue
		}
		bound := e.cfg.AgreementFactor * m.errScale()
		if math.Abs(e.vals[k]-snap.AbsoluteTime) <= bound {
			snap.Agreement++
		}
	}
	return snap
}

// Exchanges returns the total number of exchanges processed across all
// servers.
func (e *Ensemble) Exchanges() int {
	n := 0
	for k := range e.members {
		n += e.members[k].count
	}
	return n
}

// wv is one (value, weight) pair of the weighted-median scratch.
type wv struct{ v, w float64 }

// weightedMedian returns the weighted median of vals: the value at
// which the cumulative weight reaches half the total. When the boundary
// is hit exactly — as with two equally weighted servers — the two
// straddling values are averaged, so the combined clock lands between
// them instead of on whichever reads earlier. Zero-weight entries are
// ignored; with no positive weight the first value is returned (the
// caller's fallback guarantees this only happens before any exchange).
// The breakdown point is 1/2: entries holding less than half the total
// weight cannot move the result beyond the others' values.
func weightedMedian(vals, ws []float64) float64 {
	return weightedMedianBuf(vals, ws, nil)
}

// weightedMedianBuf is weightedMedian with a caller-provided scratch
// buffer (content ignored, capacity reused) for allocation-free reads.
func weightedMedianBuf(vals, ws []float64, buf []wv) float64 {
	items := buf[:0]
	total := 0.0
	for k := range vals {
		if ws[k] > 0 {
			items = append(items, wv{vals[k], ws[k]})
			total += ws[k]
		}
	}
	if len(items) == 0 {
		if len(vals) == 0 {
			return 0
		}
		return vals[0]
	}
	return medianOfItems(items, total)
}

// medianOfItems is the shared median walk over positive-weight items:
// the single algorithm behind both the writer-side scratch-buffer reads
// and the lock-free readout reads, so the two paths agree bitwise on
// identical inputs. items must be non-empty with positive weights
// summing to total; it is sorted in place.
func medianOfItems(items []wv, total float64) float64 {
	//repro:alloc-ok slices.SortFunc does not retain the comparison closure, so it stays on the stack (generic, no interface boxing)
	slices.SortFunc(items, func(a, b wv) int {
		switch {
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		default:
			return 0
		}
	})
	half := total / 2
	acc := 0.0
	for i := range items {
		acc += items[i].w
		if acc == half {
			// Exactly at the half-weight boundary: the median lies
			// between this value and the next positive-weight one.
			// i+1 is in range — acc == total/2 < total means weight
			// remains, and every retained item has positive weight.
			return (items[i].v + items[i+1].v) / 2
		}
		if acc > half {
			return items[i].v
		}
	}
	return items[len(items)-1].v
}

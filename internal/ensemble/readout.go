package ensemble

// The published combined readout: the lock-free read side of the
// ensemble, mirroring internal/core's Readout one layer up. The write
// path (Process → trust scoring → selection sweep) publishes an
// immutable snapshot of everything a combined-clock read needs through
// an atomic pointer; readers — the public tscclock.Ensemble/MultiLive
// wrappers, and through them every downstream NTP shard stamping
// replies — load the pointer once and evaluate pure functions, with no
// lock shared with the writer and no possibility of observing a torn
// combine (a half-updated weight/selection set).

import (
	"sync/atomic"

	"repro/internal/core"
)

// ServerReadout is one server's slice of a combined readout: its
// engine's published clock snapshot plus the ensemble-level trust and
// selection view of it.
//
//repro:immutable
type ServerReadout struct {
	// Clock is the server engine's own published readout (affine
	// clock, offset anchor, quality, identity) — shared by pointer,
	// not copied: engine readouts are immutable once published, and
	// sharing keeps the per-packet publication cost flat in the
	// snapshot size (the combine captures whichever engine snapshots
	// were current at publish time; later engine publications swap
	// pointers elsewhere and never mutate these).
	Clock *core.Readout

	// Weight is the normalized combining weight (zero for warmup
	// servers and flagged falsetickers, with the documented mass-
	// eviction and pre-graduation fallbacks already applied). raw is
	// the unnormalized weight the combining medians use — kept
	// separately so readout reads are bitwise identical to the
	// writer-side scratch reads, which consume raw weights.
	Weight float64
	raw    float64

	// Trust and selection diagnostics, as ServerState reports them.
	Ready           bool
	Selected        bool
	Falseticker     bool
	IntersectStreak int
	AsymmetryHint   float64
	AsymCorrection  float64
	ErrScale        float64
	PointErrLevel   float64
	RTTWobble       float64
	Penalty         float64
	Exchanges       int

	// AgreementBound is the half-width of this server's error interval
	// (AgreementFactor × ErrScale): the Agreement count and any
	// downstream dispersion advertisement derive from it.
	AgreementBound float64
}

// Readout is an immutable snapshot of the combined clock: the
// selection result, the per-server states, and the combined rate. It
// is published after every Process (one selection sweep per exchange)
// and after every identity-change penalty; a Readout obtained once
// keeps answering consistently while the ensemble processes further
// exchanges. All methods are pure functions of the snapshot.
//
//repro:immutable
type Readout struct {
	// Servers holds one entry per configured server, in server order.
	Servers []ServerReadout

	// Rate is the combined rate estimate (seconds per counter cycle):
	// the trust-weighted median of the selected servers' p̂,
	// precomputed at publish time (it does not depend on the counter).
	Rate float64

	// Counts over Servers, precomputed for consumers that only gate on
	// health: ready (past warmup), selected (truechimers), and flagged
	// falsetickers.
	ReadyCount    int
	SelectedCount int
	Falsetickers  int

	// Exchanges is the total exchange count across all servers.
	Exchanges int

	// LastTf is the host counter value of the most recent exchange fed
	// to any server: the staleness anchor of the whole combine. Age
	// converts it to seconds.
	LastTf uint64

	// Degradation ladder (see ladder.go). BaseState is the writer-side
	// rung at publish time; State(T) caps it by the readout's age.
	// Health is the serving summary of the voting set (frozen at the
	// last trusted combine while nothing votes); VotingCount is the
	// number of servers behind it. In BaseState < StateDegraded the
	// published Rate is the frozen holdover rate, not a live median.
	BaseState   State
	Health      Health
	VotingCount int

	// HoldoverAfter and UnsyncedAfter are the read-time staleness caps
	// (seconds of readout age), copied from the configuration so State
	// stays a pure function of the snapshot.
	HoldoverAfter float64
	UnsyncedAfter float64
}

// State returns the degradation-ladder state at counter value T: the
// published base state capped by the readout's age. A combine whose
// newest exchange is older than HoldoverAfter cannot claim better than
// HOLDOVER no matter how healthy it looked when it was published —
// this is the only ladder path that works during a *total* outage,
// when no exchange arrives to move the writer-side state at all. Past
// UnsyncedAfter the frozen drift bound itself is stale and the clock
// reports UNSYNCED.
//
//repro:readpath
func (r *Readout) State(T uint64) State {
	if r.BaseState == StateUnsynced {
		return StateUnsynced
	}
	age := r.Age(T)
	switch {
	case age > r.UnsyncedAfter:
		return StateUnsynced
	case age > r.HoldoverAfter && r.BaseState > StateHoldover:
		return StateHoldover
	}
	return r.BaseState
}

// readScratch bounds the stack scratch of the lock-free read path;
// ensembles larger than this still read correctly but the median
// scratch spills to the heap. Real ensembles are single digits.
const readScratch = 16

// AbsoluteTime reads the combined absolute clock at a counter value:
// the weighted median of the positive-weight servers' absolute clocks,
// exactly as the writer-side Ensemble.AbsoluteTime computes it.
//
//repro:readpath
//repro:hotpath
func (r *Readout) AbsoluteTime(T uint64) float64 {
	var buf [readScratch]wv
	items, total := buf[:0], 0.0
	for k := range r.Servers {
		if w := r.Servers[k].raw; w > 0 {
			// AsymCorrection is identically zero while the feature is
			// off, so this stays bit-identical to the uncorrected read.
			//repro:alloc-ok append into the readScratch stack buffer; spills to the heap only past readScratch servers (documented above)
			items = append(items, wv{r.Servers[k].Clock.AbsoluteTime(T) - r.Servers[k].AsymCorrection, w})
			total += w
		}
	}
	if len(items) == 0 {
		if len(r.Servers) == 0 {
			return 0
		}
		return r.Servers[0].Clock.AbsoluteTime(T)
	}
	return medianOfItems(items, total)
}

// RateHat returns the combined rate estimate (seconds per cycle).
//
//repro:readpath
func (r *Readout) RateHat() float64 { return r.Rate }

// DifferenceSpan measures the interval between two counter readings
// with the combined difference clock (combined rate only).
//
//repro:readpath
func (r *Readout) DifferenceSpan(T1, T2 uint64) float64 {
	if T2 >= T1 {
		return float64(T2-T1) * r.Rate
	}
	return -float64(T1-T2) * r.Rate
}

// Agreement counts the servers whose error interval (absolute clock ±
// AgreementBound) contains the combined absolute time at counter value
// T, mirroring Snapshot.Agreement: the normalized weights drive the
// median here, as TakeSnapshot's does.
//
//repro:readpath
//repro:hotpath
func (r *Readout) Agreement(T uint64) int {
	var buf [readScratch]wv
	items, total := buf[:0], 0.0
	var vals [readScratch]float64
	vs := vals[:0]
	for k := range r.Servers {
		v := r.Servers[k].Clock.AbsoluteTime(T) - r.Servers[k].AsymCorrection
		//repro:alloc-ok append into the readScratch stack buffer; spills to the heap only past readScratch servers
		vs = append(vs, v)
		if w := r.Servers[k].Weight; w > 0 {
			//repro:alloc-ok append into the readScratch stack buffer; spills to the heap only past readScratch servers
			items = append(items, wv{v, w})
			total += w
		}
	}
	combined := 0.0
	switch {
	case len(items) > 0:
		combined = medianOfItems(items, total)
	case len(vs) > 0:
		combined = vs[0]
	}
	n := 0
	for k := range r.Servers {
		if r.Servers[k].Exchanges == 0 {
			continue
		}
		d := vs[k] - combined
		if d < 0 {
			d = -d
		}
		if d <= r.Servers[k].AgreementBound {
			n++
		}
	}
	return n
}

// Weights returns the normalized per-server combining weights as a
// fresh slice.
//
//repro:readpath
func (r *Readout) Weights() []float64 {
	ws := make([]float64, len(r.Servers))
	for k := range r.Servers {
		ws[k] = r.Servers[k].Weight
	}
	return ws
}

// Age returns the seconds elapsed (per the combined difference clock)
// since the exchange this readout was published from — the staleness
// bound of the combine. Before any exchange it measures from the
// counter origin.
//
//repro:readpath
func (r *Readout) Age(T uint64) float64 {
	return r.DifferenceSpan(r.LastTf, T)
}

// Synced reports whether the combined clock is calibrated: at least
// one server past warmup holds positive combining weight and an offset
// estimate. Downstream NTP serving advertises unsynchronized until
// this holds.
//
//repro:readpath
func (r *Readout) Synced() bool {
	for k := range r.Servers {
		s := &r.Servers[k]
		if s.Ready && s.Weight > 0 && s.Clock.HaveTheta {
			return true
		}
	}
	return false
}

// ServerStates derives the per-server diagnostic view from the
// snapshot, field-for-field what the writer-side Ensemble.ServerStates
// reports. The returned slice is freshly allocated.
//
//repro:readpath
func (r *Readout) ServerStates() []ServerState {
	out := make([]ServerState, len(r.Servers))
	for k := range r.Servers {
		sr := &r.Servers[k]
		out[k] = ServerState{
			Exchanges:       sr.Exchanges,
			Ready:           sr.Ready,
			Weight:          sr.Weight,
			ErrScale:        sr.ErrScale,
			PointErrLevel:   sr.PointErrLevel,
			RTTWobble:       sr.RTTWobble,
			Penalty:         sr.Penalty,
			Selected:        sr.Selected,
			Falseticker:     sr.Falseticker,
			IntersectStreak: sr.IntersectStreak,
			AsymmetryHint:   sr.AsymmetryHint,
			AsymCorrection:  sr.AsymCorrection,
		}
	}
	return out
}

// publish makes the current combine visible to lock-free readers.
// Called after every Process (post-selection) and after identity
// penalties; also once at construction so Readout is never nil.
//
//repro:builder
func (e *Ensemble) publish() {
	raw := e.rawWeights()
	total := 0.0
	for k := range raw {
		total += raw[k]
	}
	ro := e.pub.nextSlot(len(e.members))
	ro.LastTf = e.lastTf
	ro.BaseState = e.base
	ro.Health = e.health
	ro.VotingCount = e.votingCount
	ro.HoldoverAfter = e.cfg.HoldoverAfter
	ro.UnsyncedAfter = e.cfg.UnsyncedAfter
	for k := range e.members {
		m := &e.members[k]
		sr := &ro.Servers[k]
		sr.Clock = e.engines[k].Readout()
		sr.raw = raw[k]
		if total > 0 {
			sr.Weight = raw[k] / total
		}
		sr.Ready = m.ready
		sr.Selected = m.ready && m.selected
		sr.Falseticker = m.ready && !m.selected && !e.cfg.DisableSelection
		sr.IntersectStreak = m.streak
		sr.AsymmetryHint = m.asym
		sr.AsymCorrection = m.corr
		sr.ErrScale = m.errScale()
		sr.PointErrLevel = m.ewmaErr
		sr.RTTWobble = m.rttWobble
		sr.Penalty = m.penalty
		sr.Exchanges = m.count
		sr.AgreementBound = e.cfg.AgreementFactor * sr.ErrScale
		ro.Exchanges += m.count
		if sr.Ready {
			ro.ReadyCount++
		}
		if sr.Selected {
			ro.SelectedCount++
		}
		if sr.Falseticker {
			ro.Falsetickers++
		}
	}
	// Combined rate: the weighted median of the per-server p̂ under the
	// raw weights — the same items, in the same order, through the same
	// median walk as the writer-side RateHat.
	var buf [readScratch]wv
	items, wTotal := buf[:0], 0.0
	for k := range ro.Servers {
		if w := ro.Servers[k].raw; w > 0 {
			//repro:alloc-ok append into the readScratch stack buffer; spills to the heap only past readScratch servers
			items = append(items, wv{ro.Servers[k].Clock.P, w})
			wTotal += w
		}
	}
	switch {
	case len(items) > 0:
		ro.Rate = medianOfItems(items, wTotal)
	case len(ro.Servers) > 0:
		ro.Rate = ro.Servers[0].Clock.P
	}
	// Holdover rate freeze, applied identically here and in the
	// writer-side RateHat so readout and writer reads stay bitwise
	// equal: below DEGRADED the last trusted rate is served; at or
	// above it the live median becomes the new trusted rate.
	if e.frozenActive() {
		ro.Rate = e.frozenRate
	} else {
		e.frozenRate = ro.Rate
	}
	e.pub.store(ro)
}

// Readout returns the most recently published combined snapshot. It is
// safe to call from any goroutine at any time, including concurrently
// with the writer: the returned value is immutable and never nil.
//
//repro:readpath
func (e *Ensemble) Readout() *Readout { return e.pub.Load() }

// pubSlabSize is how many publication slots one slab allocation hands
// out; see the identically named constant in internal/core. Carving
// slots from writer-owned blocks removes the two per-combine heap
// allocations (the Readout and its Servers slice) in exchange for a
// reader pinning at most one slab's worth of history (~pubSlabSize
// combines) while it holds an old snapshot.
const pubSlabSize = 256

// ensemblePub is the atomic publication slot plus the writer-owned
// slabs publication slots are carved from. nextSlot is called only by
// the combine path (under the ensemble's writer mutex); Load is
// wait-free from any goroutine.
type ensemblePub struct {
	p       atomic.Pointer[Readout]
	roSlab  []Readout
	srvSlab []ServerReadout
}

// Load returns the latest published snapshot.
//
//repro:readpath
func (ep *ensemblePub) Load() *Readout { return ep.p.Load() }

// nextSlot returns a zeroed, never-reused Readout with a Servers slice
// of length nSrv, carved from the slabs. The caller fills it and then
// publishes it with store.
//
//repro:builder
func (ep *ensemblePub) nextSlot(nSrv int) *Readout {
	if len(ep.roSlab) == 0 {
		//repro:alloc-ok amortized slab refill: one allocation per pubSlabSize combines (PERF.md)
		ep.roSlab = make([]Readout, pubSlabSize)
	}
	ro := &ep.roSlab[0]
	ep.roSlab = ep.roSlab[1:]
	if len(ep.srvSlab) < nSrv {
		//repro:alloc-ok amortized slab refill: one allocation per pubSlabSize combines (PERF.md)
		ep.srvSlab = make([]ServerReadout, pubSlabSize*nSrv)
	}
	// Full-capacity reslice so appends by a confused caller could never
	// bleed into the next combine's slots.
	ro.Servers = ep.srvSlab[:nSrv:nSrv]
	ep.srvSlab = ep.srvSlab[nSrv:]
	return ro
}

// store publishes a slot obtained from nextSlot.
func (ep *ensemblePub) store(ro *Readout) { ep.p.Store(ro) }

package ensemble

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// BenchmarkEnsemble measures the fan-out cost of sharding the packet
// stream across N per-server engines: 1M synthetic exchanges (the same
// core.SynthTrace workload as BenchmarkProcess and `cmd/experiments
// -perf`) dealt round-robin to N servers. The per-packet cost must stay
// at the single-engine budget (~420 ns, ~2.4M packets/s/core; PERF.md)
// plus O(1) trust scoring, independent of N — the combination step runs
// at read time, not per packet.
func BenchmarkEnsemble(b *testing.B) {
	const n = 1 << 20
	ins := core.SynthTrace(n)
	for _, servers := range []int{1, 3, 8} {
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			cfgs := make([]core.Config, servers)
			for i := range cfgs {
				cfgs[i] = core.DefaultConfig(2e-9, 16)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				e, err := New(Config{Engines: cfgs})
				if err != nil {
					b.Fatal(err)
				}
				for j, in := range ins {
					if _, err := e.Process(j%servers, in); err != nil {
						b.Fatal(err)
					}
				}
				// One combined read per pass keeps the combiner honest
				// without dominating the per-packet measurement.
				sink += e.AbsoluteTime(ins[n-1].Tf + 1000)
			}
			_ = sink
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/packet")
		})
	}
}

// BenchmarkEnsembleRead measures the read path: a combined absolute
// time over N engines (weighted median, O(N log N) in the server count,
// which is small by construction).
func BenchmarkEnsembleRead(b *testing.B) {
	for _, servers := range []int{3, 8} {
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			cfgs := make([]core.Config, servers)
			for i := range cfgs {
				cfgs[i] = core.DefaultConfig(2e-9, 16)
			}
			e, err := New(Config{Engines: cfgs})
			if err != nil {
				b.Fatal(err)
			}
			ins := core.SynthTrace(4096)
			for j, in := range ins {
				if _, err := e.Process(j%servers, in); err != nil {
					b.Fatal(err)
				}
			}
			T := ins[len(ins)-1].Tf + 1000
			var sink float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += e.AbsoluteTime(T + uint64(i))
			}
			_ = sink
		})
	}
}

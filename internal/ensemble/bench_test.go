package ensemble

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// BenchmarkEnsemble measures the fan-out cost of sharding the packet
// stream across N per-server engines: 1M synthetic exchanges (the same
// core.SynthTrace workload as BenchmarkProcess and `cmd/experiments
// -perf`) dealt round-robin to N servers. The per-packet cost must stay
// at the single-engine budget (~420 ns, ~2.4M packets/s/core; PERF.md)
// plus O(1) trust scoring and one O(N log N) selection sweep over the
// per-server intervals — N is the server count (single digits), so the
// sweep adds tens of nanoseconds. The median combination still runs at
// read time, not per packet.
func BenchmarkEnsemble(b *testing.B) {
	const n = 1 << 20
	ins := core.SynthTrace(n)
	for _, servers := range []int{1, 3, 8} {
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			cfgs := make([]core.Config, servers)
			for i := range cfgs {
				cfgs[i] = core.DefaultConfig(2e-9, 16)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				e, err := New(Config{Engines: cfgs})
				if err != nil {
					b.Fatal(err)
				}
				for j, in := range ins {
					if _, err := e.Process(j%servers, in); err != nil {
						b.Fatal(err)
					}
				}
				// One combined read per pass keeps the combiner honest
				// without dominating the per-packet measurement.
				sink += e.AbsoluteTime(ins[n-1].Tf + 1000)
			}
			_ = sink
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/packet")
		})
	}
	// The batched variant deals the same workload in poll rounds — one
	// exchange per server per ProcessBatch — so the selection sweep,
	// ladder and publication run once per round instead of once per
	// packet, and the engines' state is walked while cache-hot. The gap
	// to the per-packet variant is the amortizable combine cost.
	for _, servers := range []int{3, 8} {
		b.Run(fmt.Sprintf("batched/servers=%d", servers), func(b *testing.B) {
			cfgs := make([]core.Config, servers)
			for i := range cfgs {
				cfgs[i] = core.DefaultConfig(2e-9, 16)
			}
			round := make([]BatchExchange, servers)
			b.ReportAllocs()
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				e, err := New(Config{Engines: cfgs})
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j+servers <= len(ins); j += servers {
					for k := 0; k < servers; k++ {
						round[k] = BatchExchange{Server: k, In: ins[j+k]}
					}
					if err := e.ProcessBatch(round); err != nil {
						b.Fatal(err)
					}
				}
				sink += e.AbsoluteTime(ins[n-1].Tf + 1000)
			}
			_ = sink
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/packet")
		})
	}
}

// BenchmarkEnsembleSelect isolates the per-packet selection sweep: the
// endpoint sort plus the Marzullo scan and classification over N ready
// servers, on a calibrated ensemble. This is the only O(N log N) term
// the selection stage adds to Process; it must stay in the tens of
// nanoseconds at realistic N and allocate nothing.
func BenchmarkEnsembleSelect(b *testing.B) {
	for _, servers := range []int{3, 5, 8} {
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			e := calibrated(b, servers)
			ins := core.SynthTrace(64)
			T := ins[len(ins)-1].Tf + 1000
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.updateSelection(T + uint64(i))
			}
		})
	}
}

// BenchmarkEnsembleRead measures the read path — combined absolute
// time, combined rate, and a full snapshot over N engines (weighted
// median over the selected set, O(N log N) in the server count, which
// is small by construction). Every variant must report 0 allocs/op:
// the read path runs entirely on scratch buffers (TestReadPathZeroAlloc
// pins the same contract as a hard test).
func BenchmarkEnsembleRead(b *testing.B) {
	for _, servers := range []int{3, 8} {
		e := calibrated(b, servers)
		T := uint64(1 << 40)
		b.Run(fmt.Sprintf("AbsoluteTime/servers=%d", servers), func(b *testing.B) {
			var sink float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink += e.AbsoluteTime(T + uint64(i))
			}
			_ = sink
		})
		b.Run(fmt.Sprintf("RateHat/servers=%d", servers), func(b *testing.B) {
			var sink float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink += e.RateHat()
			}
			_ = sink
		})
		b.Run(fmt.Sprintf("TakeSnapshot/servers=%d", servers), func(b *testing.B) {
			var sink int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink += e.TakeSnapshot(T + uint64(i)).Agreement
			}
			_ = sink
		})
	}
}

// calibrated returns an ensemble of n identical engines fed past warmup
// with the synthetic workload, dealt round-robin.
func calibrated(b *testing.B, n int) *Ensemble {
	b.Helper()
	cfgs := make([]core.Config, n)
	for i := range cfgs {
		cfgs[i] = core.DefaultConfig(2e-9, 16)
	}
	e, err := New(Config{Engines: cfgs})
	if err != nil {
		b.Fatal(err)
	}
	ins := core.SynthTrace(4096)
	for j, in := range ins {
		if _, err := e.Process(j%n, in); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

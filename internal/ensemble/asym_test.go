package ensemble

import (
	"math"
	"testing"

	"repro/internal/core"
)

// asymEnsemble builds an n-server ensemble with the asymmetry
// correction enabled (and otherwise default tuning).
func asymEnsemble(t *testing.T, n int, mod func(*Config)) *Ensemble {
	t.Helper()
	cfgs := make([]core.Config, n)
	for i := range cfgs {
		cfgs[i] = core.DefaultConfig(synthP, 16)
	}
	cfg := Config{Engines: cfgs, AsymCorrection: true}
	if mod != nil {
		mod(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// corrOf returns the per-server applied corrections.
func corrOf(e *Ensemble) []float64 {
	states := e.ServerStates()
	out := make([]float64, len(states))
	for k, st := range states {
		out[k] = st.AsymCorrection
	}
	return out
}

// TestAsymCorrectionZeroOnSymmetric: servers with identical (symmetric)
// paths develop no meaningful correction — there is no differential
// asymmetry to redistribute, so the EWMA tracks hints that hover at the
// staggered-schedule noise floor.
func TestAsymCorrectionZeroOnSymmetric(t *testing.T) {
	e := asymEnsemble(t, 3, nil)
	run(t, e, 200, func(_, _ int) float64 { return 0 })
	for k, c := range corrOf(e) {
		if math.Abs(c) > 1e-6 {
			t.Errorf("server %d: symmetric-path correction %v, want ≈ 0", k, c)
		}
	}
}

// TestAsymCorrectionSignMatchesAsymmetry: a server whose clock reads a
// constant bias late (what an extra forward-path delay looks like,
// paper §2.3) earns a positive correction, and the unbiased majority a
// compensating negative one — the selected-set midpoint splits the
// camps, so every correction points from the server's clock toward the
// consensus.
func TestAsymCorrectionSignMatchesAsymmetry(t *testing.T) {
	const bias = 60e-6 // well inside the selection bound: stays selected
	e := asymEnsemble(t, 3, nil)
	last := run(t, e, 300, func(k, _ int) float64 {
		if k == 2 {
			return bias
		}
		return 0
	})
	corr := corrOf(e)
	if !(corr[2] > 0) {
		t.Errorf("late server correction %v, want > 0", corr[2])
	}
	if !(corr[0] < 0 && corr[1] < 0) {
		t.Errorf("unbiased servers corrections %v %v, want < 0 (pulled toward midpoint)", corr[0], corr[1])
	}
	// The correction must have converged to a meaningful fraction of the
	// hint level (the midpoint splits the bias in half across the camps).
	if corr[2] < bias/4 {
		t.Errorf("late server correction %v did not converge (bias %v)", corr[2], bias)
	}
	for k, st := range e.ServerStates() {
		if !st.Selected {
			t.Errorf("server %d evicted: the bias was meant to stay within the selection bound", k)
		}
	}

	// The lock-free readout combine must agree bitwise with the
	// writer-side combine while corrections are applied.
	T := uint64((last + 1) / synthP)
	if w, r := e.AbsoluteTime(T), e.Readout().AbsoluteTime(T); w != r {
		t.Errorf("writer %v vs readout %v combined time with corrections applied", w, r)
	}
}

// TestAsymCorrectionBoundedByClamp: with a deliberately tight clamp
// fraction the correction saturates at AsymClampFrac of the
// correctness-interval half-width instead of following the hint.
func TestAsymCorrectionBoundedByClamp(t *testing.T) {
	const clampFrac = 0.05
	e := asymEnsemble(t, 3, func(c *Config) { c.AsymClampFrac = clampFrac })
	run(t, e, 300, func(k, _ int) float64 {
		if k == 2 {
			return 100e-6
		}
		return 0
	})
	states := e.ServerStates()
	for k, st := range states {
		noise := st.ErrScale - st.Penalty
		clamp := clampFrac * e.cfg.AgreementFactor * noise
		if math.Abs(st.AsymCorrection) > clamp*(1+1e-12) {
			t.Errorf("server %d: |correction| %v exceeds clamp %v", k, st.AsymCorrection, clamp)
		}
	}
	// The biased server's hint is far above the clamp, so the clamp must
	// actually bind there — otherwise this test has no teeth.
	noise2 := states[2].ErrScale - states[2].Penalty
	clamp2 := clampFrac * e.cfg.AgreementFactor * noise2
	if states[2].AsymCorrection < clamp2/2 {
		t.Errorf("late server correction %v vs clamp %v: clamp never engaged", states[2].AsymCorrection, clamp2)
	}
}

// TestAsymCorrectionDisabledBitIdentical: with the ablation switch off
// the combined clock is bit-for-bit the uncorrected combiner's, even
// with the asym tuning knobs set — and the same exchanges with the
// switch on produce a different clock, proving the comparison has
// teeth.
func TestAsymCorrectionDisabledBitIdentical(t *testing.T) {
	mk := func(mod func(*Config)) *Ensemble {
		cfgs := make([]core.Config, 3)
		for i := range cfgs {
			cfgs[i] = core.DefaultConfig(synthP, 16)
		}
		cfg := Config{Engines: cfgs}
		if mod != nil {
			mod(&cfg)
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	base := mk(nil)
	disabled := mk(func(c *Config) { c.AsymAlpha = 0.25; c.AsymClampFrac = 0.3 })
	enabled := mk(func(c *Config) { c.AsymCorrection = true })

	biasOf := func(k, _ int) float64 {
		if k == 2 {
			return 60e-6
		}
		return 0
	}
	var last float64
	for _, e := range []*Ensemble{base, disabled, enabled} {
		last = run(t, e, 200, biasOf)
	}
	for i := 0; i < 8; i++ {
		T := uint64((last+float64(i))/synthP) + uint64(i)
		b, d, en := base.AbsoluteTime(T), disabled.AbsoluteTime(T), enabled.AbsoluteTime(T)
		if b != d {
			t.Fatalf("T=%d: disabled combiner %v differs from baseline %v", T, d, b)
		}
		if rb, rd := base.Readout().AbsoluteTime(T), disabled.Readout().AbsoluteTime(T); rb != rd {
			t.Fatalf("T=%d: disabled readout %v differs from baseline readout %v", T, rd, rb)
		}
		if sb, sd := base.TakeSnapshot(T).AbsoluteTime, disabled.TakeSnapshot(T).AbsoluteTime; sb != sd {
			t.Fatalf("T=%d: disabled snapshot %v differs from baseline snapshot %v", T, sd, sb)
		}
		if i == 0 && b == en {
			t.Errorf("enabled combiner bit-identical to baseline on a biased feed: harness has no teeth")
		}
	}
}

// TestAsymCorrectionZeroWhileUnselected: a falseticker's correction is
// zero — its hint measures its distance from a set it is not part of,
// and correcting by it would launder the lie into the vote.
func TestAsymCorrectionZeroWhileUnselected(t *testing.T) {
	e := asymEnsemble(t, 3, nil)
	run(t, e, 200, func(k, _ int) float64 {
		if k == 2 {
			return 5e-3 // far outside the selection bound
		}
		return 0
	})
	states := e.ServerStates()
	if !states[2].Falseticker {
		t.Fatalf("biased server not flagged: %+v", states[2])
	}
	if states[2].AsymCorrection != 0 {
		t.Errorf("falseticker correction %v, want exactly 0", states[2].AsymCorrection)
	}
	if math.Abs(states[2].AsymmetryHint) < 1e-3 {
		t.Errorf("falseticker hint %v, want ≈ the 5ms lie (gate must ignore it)", states[2].AsymmetryHint)
	}
}

// TestAsymCorrectionZeroInPenalty: an identity change (server
// migration) adds an event penalty that closes the correction gate —
// the server's recent history is not currently evidence of path
// asymmetry — and the correction returns as the penalty decays.
func TestAsymCorrectionZeroInPenalty(t *testing.T) {
	e := asymEnsemble(t, 3, nil)
	bias := func(k, _ int) float64 {
		if k == 2 {
			return 60e-6
		}
		return 0
	}
	last := run(t, e, 300, bias)
	if c := corrOf(e)[2]; c <= 0 {
		t.Fatalf("no correction built before the penalty: %v", c)
	}

	// A reference-ID change on server 2 adds the identity penalty.
	if _, err := e.ObserveIdentity(2, core.Identity{RefID: 1, Stratum: 1}); err != nil {
		t.Fatal(err)
	}
	changed, err := e.ObserveIdentity(2, core.Identity{RefID: 2, Stratum: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("identity change not detected")
	}
	feed(t, e, 2, last+16, 60e-6)
	st := e.ServerStates()[2]
	if st.Penalty == 0 {
		t.Fatal("identity change added no penalty")
	}
	if st.AsymCorrection != 0 {
		t.Errorf("correction %v during penalty, want exactly 0", st.AsymCorrection)
	}

	// The penalty decays; the gate reopens and the correction returns.
	now := last + 32
	for i := 0; i < 200; i++ {
		for k := 0; k < 3; k++ {
			feed(t, e, k, now, bias(k, 0))
			now += 16.0 / 3
		}
	}
	if c := corrOf(e)[2]; c <= 0 {
		t.Errorf("correction %v did not return after the penalty decayed", c)
	}
}

// TestAsymConfigValidation: the asym tuning knobs reject NaN and
// out-of-range values.
func TestAsymConfigValidation(t *testing.T) {
	for _, field := range []func(*Config){
		func(c *Config) { c.AsymAlpha = math.NaN() },
		func(c *Config) { c.AsymAlpha = -0.1 },
		func(c *Config) { c.AsymAlpha = 1.5 },
		func(c *Config) { c.AsymClampFrac = math.NaN() },
		func(c *Config) { c.AsymClampFrac = -1 },
	} {
		cfg := Config{Engines: []core.Config{core.DefaultConfig(synthP, 16)}}
		field(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("invalid asym parameter accepted: %+v", cfg)
		}
	}
}

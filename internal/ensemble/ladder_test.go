package ensemble

import (
	"math"
	"testing"

	"repro/internal/core"
)

// feedAll runs `rounds` staggered all-good rounds starting at round
// `from`, returning the last emission time (run() always starts at
// round 0; ladder tests need to resume mid-timeline).
func feedAll(t *testing.T, e *Ensemble, from, rounds int) float64 {
	t.Helper()
	now := 0.0
	for i := from; i < from+rounds; i++ {
		for k := 0; k < e.Size(); k++ {
			now = float64(i)*16 + float64(k)*16/float64(e.Size()) + 1
			feed(t, e, k, now, 0)
		}
	}
	return now
}

// TestLadderFirstTrust: the base state starts UNSYNCED and jumps to
// SYNCED as soon as a quorum graduates — first trust is immediate, the
// recovery hysteresis only guards later upgrades.
func TestLadderFirstTrust(t *testing.T) {
	e := mustEnsemble(t, 3)
	if e.BaseState() != StateUnsynced {
		t.Fatalf("initial state %v, want UNSYNCED", e.BaseState())
	}
	if r := e.Readout(); r.BaseState != StateUnsynced || r.State(0) != StateUnsynced {
		t.Fatalf("initial readout state %v/%v, want UNSYNCED", r.BaseState, r.State(0))
	}
	last := feedAll(t, e, 0, 40) // past the 32-sample warmup
	if e.BaseState() != StateSynced {
		t.Fatalf("state after calibration %v, want SYNCED", e.BaseState())
	}
	if got := e.VotingCount(); got != 3 {
		t.Errorf("VotingCount = %d, want 3", got)
	}
	r := e.Readout()
	if r.BaseState != StateSynced || r.VotingCount != 3 {
		t.Errorf("readout BaseState=%v VotingCount=%d, want SYNCED/3", r.BaseState, r.VotingCount)
	}
	if st := r.State(uint64((last + 1) / synthP)); st != StateSynced {
		t.Errorf("fresh read-time state %v, want SYNCED", st)
	}
	h := e.Health()
	if h.Stratum != 2 || h.AllDeadChain {
		t.Errorf("health %+v, want stratum 2 (identity-less feeds), live chain", h)
	}
	if h.DriftBound < holdoverDriftFloor {
		t.Errorf("DriftBound %v below the floor %v", h.DriftBound, holdoverDriftFloor)
	}
}

// TestLadderDegradedOnStaleMajority: when all but one server stop
// answering, their engines coast but lose their votes on freshness
// (StaleAfterPolls × poll = 128 s here), and the base state drops to
// DEGRADED immediately — running on one server has no count-based
// breakdown guarantee, and the ladder says so.
func TestLadderDegradedOnStaleMajority(t *testing.T) {
	e := mustEnsemble(t, 3)
	feedAll(t, e, 0, 40)
	if e.BaseState() != StateSynced {
		t.Fatal("setup: ensemble did not reach SYNCED")
	}
	// Only server 0 keeps answering.
	for i := 40; i < 60; i++ {
		feed(t, e, 0, float64(i)*16+1, 0)
	}
	if e.BaseState() != StateDegraded {
		t.Fatalf("state with a lone fresh server %v, want DEGRADED", e.BaseState())
	}
	if got := e.VotingCount(); got != 1 {
		t.Errorf("VotingCount = %d, want 1", got)
	}
	// Rate is NOT frozen in DEGRADED: one live server still informs it.
	if e.frozenActive() {
		t.Error("rate frozen in DEGRADED")
	}
}

// TestLadderHoldoverFreezesRate is the writer-side HOLDOVER path: the
// majority goes stale AND the one server still answering turns
// faulty and is evicted by the selection stage — nothing is left to
// vote, so the ladder drops to HOLDOVER and the published rate freezes
// at the last trusted combine, bitwise, no matter how many faulty
// exchanges keep arriving.
func TestLadderHoldoverFreezesRate(t *testing.T) {
	e := mustEnsemble(t, 3)
	feedAll(t, e, 0, 40)
	trusted := e.RateHat()
	if math.Abs(trusted/synthP-1) > 1e-6 {
		t.Fatalf("setup: trusted rate %v far from %v", trusted, synthP)
	}
	// Servers 1 and 2 go dark; server 0 keeps answering with a 5 ms
	// fault. Its clock midpoint walks away from the (coasting) majority
	// faster than its noise scale balloons, so the sweep evicts it.
	for i := 40; i < 80; i++ {
		feed(t, e, 0, float64(i)*16+1, 5e-3)
	}
	if st := e.ServerStates()[0]; st.Selected {
		t.Fatal("faulty lone server was never evicted — harness lost its teeth")
	}
	if e.BaseState() != StateHoldover {
		t.Fatalf("state %v, want HOLDOVER (voting=%d)", e.BaseState(), e.VotingCount())
	}
	if got := e.VotingCount(); got != 0 {
		t.Errorf("VotingCount = %d, want 0", got)
	}

	// The frozen rate: writer read, snapshot and published readout all
	// serve the same bitwise value, and further faulty exchanges cannot
	// move it.
	frozen := e.RateHat()
	r := e.Readout()
	if r.RateHat() != frozen {
		t.Errorf("readout rate %v != writer rate %v", r.RateHat(), frozen)
	}
	if snap := e.TakeSnapshot(r.LastTf); snap.Rate != frozen {
		t.Errorf("snapshot rate %v != writer rate %v", snap.Rate, frozen)
	}
	if math.Abs(frozen/synthP-1) > 1e-5 {
		t.Errorf("frozen rate %v drifted from the trusted value %v", frozen, synthP)
	}
	feed(t, e, 0, 80*16+1, 5e-3)
	if got := e.RateHat(); got != frozen {
		t.Errorf("rate moved in HOLDOVER: %v → %v", frozen, got)
	}

	// Health is frozen at the last trusted combine: stratum and drift
	// bound stay those of the healthy vote.
	h := e.Health()
	if h.Stratum != 2 || h.ErrScale <= 0 || h.DriftBound < holdoverDriftFloor {
		t.Errorf("holdover health %+v, want the frozen trusted summary", h)
	}
	if r.BaseState != StateHoldover {
		t.Errorf("readout BaseState %v, want HOLDOVER", r.BaseState)
	}
}

// TestLadderReadTimeStaleness: a total outage stops Process entirely,
// so only the read side can degrade — State(T) caps the published base
// by the readout's age: SYNCED while fresh, HOLDOVER past
// HoldoverAfter, UNSYNCED past UnsyncedAfter.
func TestLadderReadTimeStaleness(t *testing.T) {
	cfgs := make([]core.Config, 3)
	for i := range cfgs {
		cfgs[i] = core.DefaultConfig(synthP, 16)
	}
	e, err := New(Config{Engines: cfgs, HoldoverAfter: 100, UnsyncedAfter: 1000})
	if err != nil {
		t.Fatal(err)
	}
	last := feedAll(t, e, 0, 40)
	r := e.Readout()
	if r.HoldoverAfter != 100 || r.UnsyncedAfter != 1000 {
		t.Fatalf("readout staleness caps %v/%v, want 100/1000", r.HoldoverAfter, r.UnsyncedAfter)
	}
	at := func(dt float64) State { return r.State(uint64((last + dt) / synthP)) }
	if st := at(1); st != StateSynced {
		t.Errorf("state at +1s = %v, want SYNCED", st)
	}
	if st := at(99); st != StateSynced {
		t.Errorf("state at +99s = %v, want SYNCED", st)
	}
	if st := at(150); st != StateHoldover {
		t.Errorf("state at +150s = %v, want HOLDOVER", st)
	}
	if st := at(1500); st != StateUnsynced {
		t.Errorf("state at +1500s = %v, want UNSYNCED", st)
	}
}

// TestLadderRecoveryHysteresis: downgrades are immediate, upgrades need
// RecoverAfter consecutive exchanges at the better level — the first
// packet after an outage must not re-advertise full health.
func TestLadderRecoveryHysteresis(t *testing.T) {
	e := mustEnsemble(t, 3) // RecoverAfter default: 3
	feedAll(t, e, 0, 40)
	for i := 40; i < 60; i++ {
		feed(t, e, 0, float64(i)*16+1, 0)
	}
	if e.BaseState() != StateDegraded {
		t.Fatal("setup: majority staleness did not reach DEGRADED")
	}

	// Servers 1 and 2 come back: each exchange sees a SYNCED-worthy
	// vote again, but the upgrade lands only on the third consecutive
	// one.
	now := 60 * 16.0
	feed(t, e, 1, now+1, 0)
	if e.BaseState() != StateDegraded {
		t.Fatalf("state after 1 recovery exchange %v, want still DEGRADED", e.BaseState())
	}
	feed(t, e, 2, now+6, 0)
	if e.BaseState() != StateDegraded {
		t.Fatalf("state after 2 recovery exchanges %v, want still DEGRADED", e.BaseState())
	}
	feed(t, e, 0, now+11, 0)
	if e.BaseState() != StateSynced {
		t.Fatalf("state after 3 recovery exchanges %v, want SYNCED", e.BaseState())
	}
}

// TestLadderHealthTracksIdentity: the advertised stratum follows the
// voting upstreams' identities — one below the best live chain, and
// unsynchronized when every voting chain is dead (stratum ≥ 15).
func TestLadderHealthTracksIdentity(t *testing.T) {
	e := mustEnsemble(t, 2)
	run(t, e, 40, func(_, _ int) float64 { return 0 })
	for k := 0; k < 2; k++ {
		if _, err := e.ObserveIdentity(k, core.Identity{RefID: uint32(10 + k), Stratum: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if h := e.Health(); h.Stratum != 3 || !h.AnyIdent || h.AllDeadChain {
		t.Errorf("health behind stratum-2 upstreams %+v, want stratum 3", h)
	}
	if h := e.Readout().Health; h.Stratum != 3 {
		t.Errorf("readout health stratum %d, want 3", h.Stratum)
	}

	// Both chains die: identity changes re-base the engines and the
	// health must advertise unsynchronized even though the ladder still
	// has a full quorum of mutually consistent servers.
	for k := 0; k < 2; k++ {
		if _, err := e.ObserveIdentity(k, core.Identity{RefID: uint32(10 + k), Stratum: 16}); err != nil {
			t.Fatal(err)
		}
	}
	if h := e.Health(); !h.AllDeadChain || h.Stratum != unsyncedStratum {
		t.Errorf("health behind dead chains %+v, want AllDeadChain/stratum 16", h)
	}
}

// TestLadderConfigValidation: the ladder's knobs reject nonsense and
// zero still means "default".
func TestLadderConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{Engines: []core.Config{
			core.DefaultConfig(synthP, 16), core.DefaultConfig(synthP, 16), core.DefaultConfig(synthP, 16),
		}}
	}
	for name, mut := range map[string]func(*Config){
		"MinVotingSynced above server count": func(c *Config) { c.MinVotingSynced = 4 },
		"negative MinVotingSynced":           func(c *Config) { c.MinVotingSynced = -1 },
		"negative RecoverAfter":              func(c *Config) { c.RecoverAfter = -1 },
		"negative StaleAfterPolls":           func(c *Config) { c.StaleAfterPolls = -2 },
		"negative HoldoverAfter":             func(c *Config) { c.HoldoverAfter = -5 },
		"NaN UnsyncedAfter":                  func(c *Config) { c.UnsyncedAfter = math.NaN() },
		"UnsyncedAfter below HoldoverAfter":  func(c *Config) { c.HoldoverAfter = 100; c.UnsyncedAfter = 50 },
	} {
		cfg := base()
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := New(base()); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

// TestStateString pins the advertised names (logs and stats lines key
// off them).
func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		StateUnsynced: "UNSYNCED",
		StateHoldover: "HOLDOVER",
		StateDegraded: "DEGRADED",
		StateSynced:   "SYNCED",
		State(9):      "State(9)",
	} {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", uint8(st), got, want)
		}
	}
}

package ensemble

// First-order path-asymmetry correction: the promotion of the selection
// sweep's asymmetry hints from diagnostics to an offset correction.
//
// The paper's §2.3 identifies path asymmetry as the irreducible error
// floor of one-way filtering: a single client/server path cannot
// distinguish a clock offset from an asymmetric split of the minimum
// RTT, so every per-server clock carries a constant bias of −Δ_k/2 the
// engine can never see. The ensemble can see it, partially: a server
// that is systematically early or late against the selected set's
// midpoint — while healthy by every single-path quality signal — is
// exactly what an uncalibrated asymmetry looks like from outside
// (G-SINC makes this cross-path comparison its headline precision
// argument). The correction transfers the ensemble consensus onto each
// server: the combined clock stops inheriting whichever member biases
// happen to hold the median and lands on the center of the selected
// set's agreement instead. The common-mode asymmetry shared by every
// path remains unobservable — this is a redistribution of the
// *differential* asymmetry, not a repeal of the error floor.
//
// Stability is the design constraint (HyNTP's evaluation shows
// undamped cross-node corrections oscillating): the tracker is a plain
// EWMA of the raw hint — a contraction with gain AsymAlpha, not an
// integrator on the corrected residual, so it converges to the clamped
// hint level and cannot wind up — and the applied correction is capped
// at AsymClampFrac of the server's correctness-interval half-width, so
// a correction can re-center a server within its own claim but never
// push it across it. Selection itself always runs on raw clocks: the
// correction cannot flip a vote, manufacture a falseticker, or feed
// back into the hint that drives it.
//
// The gate: a server learns and applies its correction only while it
// is selected and carries no meaningful event penalty. An unselected
// server's hint measures its distance from a set it is not part of (a
// falseticker's hint is the lie itself — correcting it would launder
// the lie into the vote), and a penalized server's recent sanity
// events mean its clock, and therefore its hint, is not currently
// evidence of path asymmetry. While the gate is closed the tracker
// freezes and the applied correction is zero.

// asymPenaltyGateFrac closes the correction gate while a server's
// decaying event penalty exceeds this fraction of its noise scale: one
// sanity event freezes that server's correction for the few tens of
// exchanges the penalty takes to decay back under it.
const asymPenaltyGateFrac = 0.5

// updateAsymCorrection advances every server's damped correction after
// one selection sweep. Called from Process (after updateSelection,
// before publish) only while Config.AsymCorrection is set, so the
// disabled path does not even touch the fields.
func (e *Ensemble) updateAsymCorrection() {
	for k := range e.members {
		m := &e.members[k]
		if !m.ready {
			m.corr = 0
			continue
		}
		ns := m.noiseScale()
		open := m.selected && m.penalty <= asymPenaltyGateFrac*ns
		if open {
			m.corrEwma += e.cfg.AsymAlpha * (m.asym - m.corrEwma)
		}
		// Clamp the tracker itself, not just the applied value: a hint
		// transient larger than the clamp must not bank an excess the
		// server would keep serving long after the transient ends.
		clamp := e.cfg.AsymClampFrac * e.cfg.AgreementFactor * ns
		if m.corrEwma > clamp {
			m.corrEwma = clamp
		} else if m.corrEwma < -clamp {
			m.corrEwma = -clamp
		}
		if open {
			m.corr = m.corrEwma
		} else {
			m.corr = 0
		}
	}
}

// appliedCorrection returns the correction the combine paths subtract
// from server k's absolute clock: always zero while the feature is
// disabled, so the corrected and uncorrected combiners are bit-identical
// in that case (x − 0 is the identity for every float, including ±0 and
// NaN).
func (e *Ensemble) appliedCorrection(k int) float64 {
	return e.members[k].corr
}

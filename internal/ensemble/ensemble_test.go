package ensemble

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestWeightedMedian(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		ws   []float64
		want float64
	}{
		{"single", []float64{3}, []float64{1}, 3},
		{"odd-equal", []float64{1, 100, 2}, []float64{1, 1, 1}, 2},
		{"outlier-outvoted", []float64{10, 11, 9999}, []float64{1, 1, 1}, 11},
		{"low-outlier-outvoted", []float64{-9999, 10, 11}, []float64{1, 1, 1}, 10},
		{"weight-dominates", []float64{1, 2, 3}, []float64{10, 1, 1}, 1},
		{"zero-weights-skipped", []float64{5, 7, 9}, []float64{0, 1, 0}, 7},
		{"all-zero-falls-back", []float64{5, 7}, []float64{0, 0}, 5},
		{"even-lower-median", []float64{1, 2, 3, 4}, []float64{1, 1, 1, 1}, 2},
		{"empty", nil, nil, 0},
	}
	for _, c := range cases {
		if got := weightedMedian(c.vals, c.ws); got != c.want {
			t.Errorf("%s: weightedMedian = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	bad := core.DefaultConfig(2e-9, 16)
	bad.Delta = -1
	if _, err := New(Config{Engines: []core.Config{bad}}); err == nil {
		t.Error("invalid engine config accepted")
	}
	if _, err := New(Config{
		Engines:      []core.Config{core.DefaultConfig(2e-9, 16)},
		PenaltyDecay: 2,
	}); err == nil {
		t.Error("PenaltyDecay > 1 accepted")
	}
	for _, field := range []func(*Config){
		func(c *Config) { c.PenaltyDecay = math.NaN() },
		func(c *Config) { c.ErrAlpha = math.NaN() },
		func(c *Config) { c.AgreementFactor = math.NaN() },
		func(c *Config) { c.AgreementFactor = -1 },
	} {
		cfg := Config{Engines: []core.Config{core.DefaultConfig(2e-9, 16)}}
		field(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("invalid trust parameter accepted: %+v", cfg)
		}
	}
}

func TestProcessServerRange(t *testing.T) {
	e := mustEnsemble(t, 2)
	if _, err := e.Process(2, core.Input{Ta: 1, Tf: 2}); err == nil {
		t.Error("out-of-range server accepted")
	}
	if _, err := e.Process(-1, core.Input{Ta: 1, Tf: 2}); err == nil {
		t.Error("negative server accepted")
	}
}

// --- synthetic multi-server harness ---

const synthP = 2e-9 // counter period: 500 MHz

func mustEnsemble(t *testing.T, n int) *Ensemble {
	t.Helper()
	cfgs := make([]core.Config, n)
	for i := range cfgs {
		cfgs[i] = core.DefaultConfig(synthP, 16)
	}
	e, err := New(Config{Engines: cfgs})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// feed sends one clean exchange with server k at true time t; off is
// the server's clock error (a faulty server's timestamps are shifted).
func feed(t *testing.T, e *Ensemble, k int, now, off float64) core.Result {
	t.Helper()
	const rtt = 400e-6
	in := core.Input{
		Ta: uint64(now / synthP),
		Tf: uint64((now + rtt) / synthP),
		Tb: now + rtt/2 + off,
		Te: now + rtt/2 + 20e-6 + off,
	}
	res, err := e.Process(k, in)
	if err != nil {
		t.Fatalf("server %d at %v: %v", k, now, err)
	}
	return res
}

// run feeds n rounds of staggered exchanges to every server; faultOff
// gives each server's clock error as a function of the round.
func run(t *testing.T, e *Ensemble, rounds int, faultOff func(server, round int) float64) float64 {
	t.Helper()
	now := 0.0
	for i := 0; i < rounds; i++ {
		for k := 0; k < e.Size(); k++ {
			now = float64(i)*16 + float64(k)*16/float64(e.Size()) + 1
			feed(t, e, k, now, faultOff(k, i))
		}
	}
	return now
}

// TestFaultyServerOutvoted is the package's reason to exist: one of
// three servers serves timestamps 5 ms off from the start. Each engine
// is internally consistent — the faulty engine syncs happily to its
// faulty server — but the weighted median follows the two that agree.
func TestFaultyServerOutvoted(t *testing.T) {
	const fault = 5e-3
	e := mustEnsemble(t, 3)
	last := run(t, e, 100, func(k, _ int) float64 {
		if k == 2 {
			return fault
		}
		return 0
	})

	T := uint64((last + 1) / synthP)
	truth := last + 1
	combined := e.AbsoluteTime(T) - truth
	faulty := e.Engine(2).AbsoluteTime(T) - truth
	if math.Abs(faulty) < fault/2 {
		t.Fatalf("faulty engine error %v; expected ≈ %v — harness lost its teeth", faulty, fault)
	}
	if math.Abs(combined) > 1e-3*fault+100e-6 {
		t.Errorf("combined clock error %v: the faulty server was not outvoted", combined)
	}
	if ag := e.Agreement(T); ag != 2 {
		t.Errorf("Agreement = %d, want 2 (faulty server outside its interval)", ag)
	}
}

// TestMidRunFaultPenalized: a fault that appears mid-run triggers the
// faulty engine's own sanity checks, which the trust scoring converts
// into a lower combining weight.
func TestMidRunFaultPenalized(t *testing.T) {
	e := mustEnsemble(t, 3)
	run(t, e, 120, func(k, i int) float64 {
		if k == 2 && i >= 60 {
			return 5e-3
		}
		return 0
	})
	ws := e.Weights()
	if !(ws[2] < ws[0] && ws[2] < ws[1]) {
		t.Errorf("faulty server weight %v not below good servers %v, %v", ws[2], ws[0], ws[1])
	}
	sum := ws[0] + ws[1] + ws[2]
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %v", sum)
	}
}

// TestWarmupWeights: before any engine graduates warmup, servers with
// data share weight equally so the combined clock exists immediately.
func TestWarmupWeights(t *testing.T) {
	e := mustEnsemble(t, 3)
	if ws := e.Weights(); ws[0] != 0 || ws[1] != 0 || ws[2] != 0 {
		t.Errorf("weights before any exchange = %v, want zeros", ws)
	}
	feed(t, e, 0, 1, 0)
	feed(t, e, 1, 6, 0)
	ws := e.Weights()
	if ws[0] != 0.5 || ws[1] != 0.5 || ws[2] != 0 {
		t.Errorf("warmup weights = %v, want [0.5 0.5 0]", ws)
	}
	if e.AbsoluteTime(uint64(7/synthP)) == 0 {
		t.Error("combined clock unreadable during warmup")
	}
}

// TestRateCombination: the combined rate is the weighted median of the
// per-server rates, which all converge to the true counter period here.
func TestRateCombination(t *testing.T) {
	e := mustEnsemble(t, 3)
	run(t, e, 80, func(_, _ int) float64 { return 0 })
	if got := e.RateHat(); math.Abs(got/synthP-1) > 1e-6 {
		t.Errorf("combined rate %v, want ≈ %v", got, synthP)
	}
	span := e.DifferenceSpan(0, uint64(1/synthP))
	if math.Abs(span-1) > 1e-6 {
		t.Errorf("DifferenceSpan over 1 s = %v", span)
	}
	if rev := e.DifferenceSpan(uint64(1/synthP), 0); math.Abs(rev+1) > 1e-6 {
		t.Errorf("reverse DifferenceSpan = %v, want ≈ −1", rev)
	}
}

// TestObserveIdentityPenalty: a server identity change re-bases that
// engine and dents its trust.
func TestObserveIdentityPenalty(t *testing.T) {
	e := mustEnsemble(t, 2)
	run(t, e, 50, func(_, _ int) float64 { return 0 })
	if _, err := e.ObserveIdentity(5, core.Identity{RefID: 1, Stratum: 1}); err == nil {
		t.Error("out-of-range server accepted")
	}
	if _, err := e.ObserveIdentity(0, core.Identity{RefID: 1, Stratum: 1}); err != nil {
		t.Fatal(err)
	}
	before := e.Weights()[0]
	if changed, err := e.ObserveIdentity(0, core.Identity{RefID: 2, Stratum: 1}); err != nil || !changed {
		t.Fatalf("identity change not detected (changed=%v, err=%v)", changed, err)
	}
	if after := e.Weights()[0]; !(after < before) {
		t.Errorf("weight after identity change %v, want < %v", after, before)
	}
}

func TestExchangesCount(t *testing.T) {
	e := mustEnsemble(t, 2)
	feed(t, e, 0, 1, 0)
	feed(t, e, 1, 2, 0)
	feed(t, e, 0, 17, 0)
	if got := e.Exchanges(); got != 3 {
		t.Errorf("Exchanges = %d, want 3", got)
	}
}

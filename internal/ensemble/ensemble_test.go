package ensemble

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

func TestWeightedMedian(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		ws   []float64
		want float64
	}{
		{"single", []float64{3}, []float64{1}, 3},
		{"odd-equal", []float64{1, 100, 2}, []float64{1, 1, 1}, 2},
		{"outlier-outvoted", []float64{10, 11, 9999}, []float64{1, 1, 1}, 11},
		{"low-outlier-outvoted", []float64{-9999, 10, 11}, []float64{1, 1, 1}, 10},
		{"weight-dominates", []float64{1, 2, 3}, []float64{10, 1, 1}, 1},
		{"zero-weights-skipped", []float64{5, 7, 9}, []float64{0, 1, 0}, 7},
		{"all-zero-falls-back", []float64{5, 7}, []float64{0, 0}, 5},
		{"even-interpolates", []float64{1, 2, 3, 4}, []float64{1, 1, 1, 1}, 2.5},
		{"two-servers-split", []float64{5, 7}, []float64{1, 1}, 6},
		{"boundary-hit-interpolates", []float64{1, 2, 4}, []float64{1, 1, 2}, 3},
		{"empty", nil, nil, 0},
	}
	for _, c := range cases {
		if got := weightedMedian(c.vals, c.ws); got != c.want {
			t.Errorf("%s: weightedMedian = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	bad := core.DefaultConfig(2e-9, 16)
	bad.Delta = -1
	if _, err := New(Config{Engines: []core.Config{bad}}); err == nil {
		t.Error("invalid engine config accepted")
	}
	if _, err := New(Config{
		Engines:      []core.Config{core.DefaultConfig(2e-9, 16)},
		PenaltyDecay: 2,
	}); err == nil {
		t.Error("PenaltyDecay > 1 accepted")
	}
	for _, field := range []func(*Config){
		func(c *Config) { c.PenaltyDecay = math.NaN() },
		func(c *Config) { c.ErrAlpha = math.NaN() },
		func(c *Config) { c.AgreementFactor = math.NaN() },
		func(c *Config) { c.AgreementFactor = -1 },
	} {
		cfg := Config{Engines: []core.Config{core.DefaultConfig(2e-9, 16)}}
		field(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("invalid trust parameter accepted: %+v", cfg)
		}
	}
}

func TestProcessServerRange(t *testing.T) {
	e := mustEnsemble(t, 2)
	if _, err := e.Process(2, core.Input{Ta: 1, Tf: 2}); err == nil {
		t.Error("out-of-range server accepted")
	}
	if _, err := e.Process(-1, core.Input{Ta: 1, Tf: 2}); err == nil {
		t.Error("negative server accepted")
	}
}

// --- synthetic multi-server harness ---

const synthP = 2e-9 // counter period: 500 MHz

func mustEnsemble(t *testing.T, n int) *Ensemble {
	t.Helper()
	cfgs := make([]core.Config, n)
	for i := range cfgs {
		cfgs[i] = core.DefaultConfig(synthP, 16)
	}
	e, err := New(Config{Engines: cfgs})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// feed sends one clean exchange with server k at true time t; off is
// the server's clock error (a faulty server's timestamps are shifted).
func feed(t *testing.T, e *Ensemble, k int, now, off float64) core.Result {
	t.Helper()
	const rtt = 400e-6
	in := core.Input{
		Ta: uint64(now / synthP),
		Tf: uint64((now + rtt) / synthP),
		Tb: now + rtt/2 + off,
		Te: now + rtt/2 + 20e-6 + off,
	}
	res, err := e.Process(k, in)
	if err != nil {
		t.Fatalf("server %d at %v: %v", k, now, err)
	}
	return res
}

// run feeds n rounds of staggered exchanges to every server; faultOff
// gives each server's clock error as a function of the round.
func run(t *testing.T, e *Ensemble, rounds int, faultOff func(server, round int) float64) float64 {
	t.Helper()
	now := 0.0
	for i := 0; i < rounds; i++ {
		for k := 0; k < e.Size(); k++ {
			now = float64(i)*16 + float64(k)*16/float64(e.Size()) + 1
			feed(t, e, k, now, faultOff(k, i))
		}
	}
	return now
}

// TestFaultyServerOutvoted is the package's reason to exist: one of
// three servers serves timestamps 5 ms off from the start. Each engine
// is internally consistent — the faulty engine syncs happily to its
// faulty server — but the weighted median follows the two that agree.
func TestFaultyServerOutvoted(t *testing.T) {
	const fault = 5e-3
	e := mustEnsemble(t, 3)
	last := run(t, e, 100, func(k, _ int) float64 {
		if k == 2 {
			return fault
		}
		return 0
	})

	T := uint64((last + 1) / synthP)
	truth := last + 1
	combined := e.AbsoluteTime(T) - truth
	faulty := e.Engine(2).AbsoluteTime(T) - truth
	if math.Abs(faulty) < fault/2 {
		t.Fatalf("faulty engine error %v; expected ≈ %v — harness lost its teeth", faulty, fault)
	}
	if math.Abs(combined) > 1e-3*fault+100e-6 {
		t.Errorf("combined clock error %v: the faulty server was not outvoted", combined)
	}
	if ag := e.Agreement(T); ag != 2 {
		t.Errorf("Agreement = %d, want 2 (faulty server outside its interval)", ag)
	}
}

// TestMidRunFaultPenalized: a fault that appears mid-run triggers the
// faulty engine's own sanity checks, which the trust scoring converts
// into a lower combining weight.
func TestMidRunFaultPenalized(t *testing.T) {
	e := mustEnsemble(t, 3)
	run(t, e, 120, func(k, i int) float64 {
		if k == 2 && i >= 60 {
			return 5e-3
		}
		return 0
	})
	ws := e.Weights()
	if !(ws[2] < ws[0] && ws[2] < ws[1]) {
		t.Errorf("faulty server weight %v not below good servers %v, %v", ws[2], ws[0], ws[1])
	}
	sum := ws[0] + ws[1] + ws[2]
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %v", sum)
	}
}

// TestWarmupWeights: before any engine graduates warmup, servers with
// data share weight equally so the combined clock exists immediately.
func TestWarmupWeights(t *testing.T) {
	e := mustEnsemble(t, 3)
	if ws := e.Weights(); ws[0] != 0 || ws[1] != 0 || ws[2] != 0 {
		t.Errorf("weights before any exchange = %v, want zeros", ws)
	}
	feed(t, e, 0, 1, 0)
	feed(t, e, 1, 6, 0)
	ws := e.Weights()
	if ws[0] != 0.5 || ws[1] != 0.5 || ws[2] != 0 {
		t.Errorf("warmup weights = %v, want [0.5 0.5 0]", ws)
	}
	if e.AbsoluteTime(uint64(7/synthP)) == 0 {
		t.Error("combined clock unreadable during warmup")
	}
}

// TestRateCombination: the combined rate is the weighted median of the
// per-server rates, which all converge to the true counter period here.
func TestRateCombination(t *testing.T) {
	e := mustEnsemble(t, 3)
	run(t, e, 80, func(_, _ int) float64 { return 0 })
	if got := e.RateHat(); math.Abs(got/synthP-1) > 1e-6 {
		t.Errorf("combined rate %v, want ≈ %v", got, synthP)
	}
	span := e.DifferenceSpan(0, uint64(1/synthP))
	if math.Abs(span-1) > 1e-6 {
		t.Errorf("DifferenceSpan over 1 s = %v", span)
	}
	if rev := e.DifferenceSpan(uint64(1/synthP), 0); math.Abs(rev+1) > 1e-6 {
		t.Errorf("reverse DifferenceSpan = %v, want ≈ −1", rev)
	}
}

// TestObserveIdentityPenalty: a server identity change re-bases that
// engine and dents its trust.
func TestObserveIdentityPenalty(t *testing.T) {
	e := mustEnsemble(t, 2)
	run(t, e, 50, func(_, _ int) float64 { return 0 })
	if _, err := e.ObserveIdentity(5, core.Identity{RefID: 1, Stratum: 1}); err == nil {
		t.Error("out-of-range server accepted")
	}
	if _, err := e.ObserveIdentity(0, core.Identity{RefID: 1, Stratum: 1}); err != nil {
		t.Fatal(err)
	}
	before := e.Weights()[0]
	if changed, err := e.ObserveIdentity(0, core.Identity{RefID: 2, Stratum: 1}); err != nil || !changed {
		t.Fatalf("identity change not detected (changed=%v, err=%v)", changed, err)
	}
	if after := e.Weights()[0]; !(after < before) {
		t.Errorf("weight after identity change %v, want < %v", after, before)
	}
}

func TestExchangesCount(t *testing.T) {
	e := mustEnsemble(t, 2)
	feed(t, e, 0, 1, 0)
	feed(t, e, 1, 2, 0)
	feed(t, e, 0, 17, 0)
	if got := e.Exchanges(); got != 3 {
		t.Errorf("Exchanges = %d, want 3", got)
	}
}

// --- weighted median properties ---

// TestWeightedMedianProperties checks the combiner's contract over
// random inputs: two equally weighted servers average (symmetry), the
// result is invariant under uniform weight scaling, and the breakdown
// point 1/2 is preserved — a coalition holding strictly less than half
// the total weight cannot push the median outside the range of the
// remaining values.
func TestWeightedMedianProperties(t *testing.T) {
	src := rng.New(42)

	for trial := 0; trial < 200; trial++ {
		a, b := src.Float64()*1e3-500, src.Float64()*1e3-500
		w := src.Float64() + 0.1
		got := weightedMedian([]float64{a, b}, []float64{w, w})
		if want := (a + b) / 2; math.Abs(got-want) > 1e-9 {
			t.Fatalf("2-server symmetry: median(%v,%v) = %v, want %v", a, b, got, want)
		}
	}

	for trial := 0; trial < 200; trial++ {
		n := 2 + int(src.Uint64()%7)
		vals := make([]float64, n)
		ws := make([]float64, n)
		for i := range vals {
			vals[i] = src.Float64()*2e3 - 1e3
			ws[i] = src.Float64() + 0.05
		}
		base := weightedMedian(vals, ws)
		// Powers of two keep the scaled weights exactly representable,
		// so the exact-boundary branch fires identically.
		for _, scale := range []float64{0.25, 2, 1024} {
			scaled := make([]float64, n)
			for i := range ws {
				scaled[i] = ws[i] * scale
			}
			if got := weightedMedian(vals, scaled); got != base {
				t.Fatalf("scale invariance: ×%v changed median %v → %v (vals %v ws %v)",
					scale, base, got, vals, ws)
			}
		}
	}

	for trial := 0; trial < 200; trial++ {
		nGood := 2 + int(src.Uint64()%5)
		nBad := 1 + int(src.Uint64()%4)
		vals := make([]float64, 0, nGood+nBad)
		ws := make([]float64, 0, nGood+nBad)
		lo, hi := math.Inf(1), math.Inf(-1)
		goodW := 0.0
		for i := 0; i < nGood; i++ {
			v := src.Float64()*100 - 50
			w := src.Float64() + 0.1
			vals, ws = append(vals, v), append(ws, w)
			lo, hi = math.Min(lo, v), math.Max(hi, v)
			goodW += w
		}
		// The adversarial coalition agrees on an extreme value and holds
		// strictly less than half the total weight.
		badEach := goodW * 0.99 / float64(nBad)
		badVal := 1e9
		if src.Bool(0.5) {
			badVal = -1e9
		}
		for i := 0; i < nBad; i++ {
			vals, ws = append(vals, badVal), append(ws, badEach)
		}
		got := weightedMedian(vals, ws)
		if got < lo || got > hi {
			t.Fatalf("breakdown: minority coalition at %v dragged median to %v outside [%v,%v]",
				badVal, got, lo, hi)
		}
	}
}

// --- selection ---

// TestColludingMinorityRejected is the selection stage's reason to
// exist: two of five servers agree with each other on a wrong clock.
// The weighted median alone could follow them if their paths earned
// them enough weight; interval intersection excludes them on count —
// the majority's intervals agree, theirs don't reach it.
func TestColludingMinorityRejected(t *testing.T) {
	const fault = 5e-3
	e := mustEnsemble(t, 5)
	bad := func(k int) bool { return k >= 3 }
	last := run(t, e, 100, func(k, _ int) float64 {
		if bad(k) {
			return fault
		}
		return 0
	})

	T := uint64((last + 1) / synthP)
	truth := last + 1
	if err := e.AbsoluteTime(T) - truth; math.Abs(err) > 100e-6 {
		t.Errorf("combined clock error %v despite colluding pair at %v", err, fault)
	}
	snap := e.TakeSnapshot(T)
	if snap.Falsetickers != 2 {
		t.Errorf("Falsetickers = %d, want 2", snap.Falsetickers)
	}
	for k := 0; k < 5; k++ {
		if snap.Selected[k] == bad(k) {
			t.Errorf("Selected[%d] = %v, want %v", k, snap.Selected[k], !bad(k))
		}
		// The asymmetry hint localizes the disagreement: colluders sit
		// ~fault from the selected-set midpoint, truechimers near it.
		if bad(k) && math.Abs(snap.AsymmetryHint[k]-fault) > fault/2 {
			t.Errorf("AsymmetryHint[%d] = %v, want ≈ %v", k, snap.AsymmetryHint[k], fault)
		}
		if !bad(k) && math.Abs(snap.AsymmetryHint[k]) > fault/10 {
			t.Errorf("AsymmetryHint[%d] = %v, want ≈ 0", k, snap.AsymmetryHint[k])
		}
	}
	states := e.ServerStates()
	for k := range states {
		if states[k].Selected != snap.Selected[k] || states[k].Falseticker != !snap.Selected[k] {
			t.Errorf("ServerStates[%d] selection view %+v disagrees with snapshot", k, states[k])
		}
		if bad(k) && states[k].Weight != 0 {
			t.Errorf("falseticker %d holds weight %v", k, states[k].Weight)
		}
	}
}

// TestSelectionDisabledFollowsWeight: with DisableSelection the
// combiner reverts to the pure weighted median, so a colluding pair
// holding the weight majority drags the clock — the vulnerability the
// selection stage closes. The pair's weight dominance is forced through
// per-server Delta (the errScale floor), standing in for the clean
// low-jitter paths that earn real colluders their trust.
func TestSelectionDisabledFollowsWeight(t *testing.T) {
	const fault = 5e-3
	build := func(disable bool) *Ensemble {
		t.Helper()
		cfgs := make([]core.Config, 5)
		for i := range cfgs {
			cfgs[i] = core.DefaultConfig(synthP, 16)
			if i >= 3 {
				cfgs[i].Delta = 5e-6 // colluders: tight error scale, big weight
			} else {
				cfgs[i].Delta = 100e-6 // honest majority: noisy paths
			}
		}
		e, err := New(Config{Engines: cfgs, DisableSelection: disable})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	faultOf := func(k, _ int) float64 {
		if k >= 3 {
			return fault
		}
		return 0
	}

	median := build(true)
	last := run(t, median, 100, faultOf)
	truth := last + 1
	T := uint64(truth / synthP)
	if err := median.AbsoluteTime(T) - truth; math.Abs(err) < fault/2 {
		t.Errorf("median-only error %v; expected the high-weight colluders to drag it ≈ %v", err, fault)
	}

	selecting := build(false)
	run(t, selecting, 100, faultOf)
	if err := selecting.AbsoluteTime(T) - truth; math.Abs(err) > 100e-6 {
		t.Errorf("selection-enabled error %v; the colluders' weight should not matter", err)
	}
}

// TestFalsetickerReadmissionHysteresis: a server that went wrong and
// healed re-enters the selected set only after ReadmitAfter consecutive
// intersecting sweeps — it must be observed on probation (intersecting
// but still excluded) before re-admission.
func TestFalsetickerReadmissionHysteresis(t *testing.T) {
	const readmit = 30
	cfgs := make([]core.Config, 3)
	for i := range cfgs {
		cfgs[i] = core.DefaultConfig(synthP, 16)
	}
	e, err := New(Config{Engines: cfgs, ReadmitAfter: readmit})
	if err != nil {
		t.Fatal(err)
	}

	now, probation, flagged := 0.0, 0, false
	for i := 0; i < 300; i++ {
		off := 0.0
		if i >= 60 && i < 90 {
			off = 1e-3 // server 2 goes wrong for 30 rounds, then heals
		}
		for k := 0; k < 3; k++ {
			now = float64(i)*16 + float64(k)*16/3 + 1
			o := 0.0
			if k == 2 {
				o = off
			}
			feed(t, e, k, now, o)
		}
		st := e.ServerStates()[2]
		if i >= 60 && !st.Selected {
			flagged = true
		}
		if flagged && !st.Selected && st.IntersectStreak > 0 {
			probation++
		}
	}
	if !flagged {
		t.Fatal("faulty server was never deselected — harness lost its teeth")
	}
	st := e.ServerStates()[2]
	if !st.Selected {
		t.Errorf("healed server not re-admitted by round 300: %+v", st)
	}
	// Three sweeps happen per round, so a streak of ReadmitAfter
	// intersections spans ≥ ReadmitAfter/3 rounds of visible probation
	// (intersecting again, still excluded).
	if probation < readmit/3 {
		t.Errorf("observed only %d probation states, want ≥ %d (hysteresis bypassed)", probation, readmit/3)
	}
}

// feedCongested is feed with the round trip inflated by extra queueing
// delay, split symmetrically around the server stamps so the server's
// apparent offset is unchanged: the server's point errors — and so its
// noise scale and correctness-interval width — balloon, but its clock
// does not move.
func feedCongested(t *testing.T, e *Ensemble, k int, now, off, extra float64) core.Result {
	t.Helper()
	rtt := 400e-6 + extra
	in := core.Input{
		Ta: uint64(now / synthP),
		Tf: uint64((now + rtt) / synthP),
		Tb: now + rtt/2 + off,
		Te: now + rtt/2 + 20e-6 + off,
	}
	res, err := e.Process(k, in)
	if err != nil {
		t.Fatalf("server %d at %v: %v", k, now, err)
	}
	return res
}

// TestBalloonedColluderStaysOut: a flagged falseticker cannot ride a
// congestion episode back into the vote. When its path noise balloons,
// its correctness interval widens far past the lie and *overlaps* the
// honest region — but re-admission requires its clock midpoint inside
// the survivors' cluster, and the midpoint still carries the lie. The
// flip side: an honest selected server whose interval balloons the same
// way keeps its seat, because eviction is interval-based and its wide
// claim still covers the truth.
func TestBalloonedColluderStaysOut(t *testing.T) {
	const fault = 5e-3
	e := mustEnsemble(t, 5)
	bad := func(k int) bool { return k >= 3 }
	run(t, e, 60, func(k, _ int) float64 {
		if bad(k) {
			return fault
		}
		return 0
	})
	for k, st := range e.ServerStates() {
		if st.Selected == bad(k) {
			t.Fatalf("setup: ServerStates[%d].Selected = %v", k, st.Selected)
		}
	}

	// A long congestion episode on the colluders' paths: +20 ms of
	// symmetric queueing widens their interval bounds to ~100× the lie,
	// for far longer than the re-admission hysteresis.
	for i := 60; i < 120; i++ {
		for k := 0; k < 5; k++ {
			now := float64(i)*16 + float64(k)*16/5 + 1
			if bad(k) {
				feedCongested(t, e, k, now, fault, 20e-3)
			} else {
				feed(t, e, k, now, 0)
			}
		}
		for k, st := range e.ServerStates() {
			if bad(k) && st.Selected {
				t.Fatalf("round %d: ballooned colluder %d re-admitted", i, k)
			}
			if !bad(k) && !st.Selected {
				t.Fatalf("round %d: honest server %d lost its seat", i, k)
			}
		}
	}

	// Now the episode hits an honest server instead: wide but truthful,
	// it must keep its seat throughout.
	for i := 120; i < 180; i++ {
		for k := 0; k < 5; k++ {
			now := float64(i)*16 + float64(k)*16/5 + 1
			switch {
			case k == 0:
				feedCongested(t, e, k, now, 0, 20e-3)
			case bad(k):
				feed(t, e, k, now, fault)
			default:
				feed(t, e, k, now, 0)
			}
		}
		if st := e.ServerStates()[0]; !st.Selected {
			t.Fatalf("round %d: wide honest server evicted", i)
		}
	}
}

// TestNoQuorumKeepsClassification: with two calibrated servers that
// disagree there is no majority to convict either, so neither is
// flagged and both keep voting (the combiner then averages them — the
// safest answer available).
func TestNoQuorumKeepsClassification(t *testing.T) {
	e := mustEnsemble(t, 2)
	last := run(t, e, 80, func(k, _ int) float64 {
		if k == 1 {
			return 5e-3
		}
		return 0
	})
	snap := e.TakeSnapshot(uint64((last + 1) / synthP))
	if snap.Falsetickers != 0 {
		t.Errorf("Falsetickers = %d with no quorum, want 0", snap.Falsetickers)
	}
	if !snap.Selected[0] || !snap.Selected[1] {
		t.Errorf("Selected = %v with no quorum, want both", snap.Selected)
	}
}

// TestReadmitAfterValidation: negative hysteresis is rejected.
func TestReadmitAfterValidation(t *testing.T) {
	if _, err := New(Config{
		Engines:      []core.Config{core.DefaultConfig(synthP, 16)},
		ReadmitAfter: -1,
	}); err == nil {
		t.Error("negative ReadmitAfter accepted")
	}
}

// --- read-path allocations ---

// TestReadPathZeroAlloc pins the read-path contract: the internal type
// reuses scratch buffers, so combined reads allocate nothing.
func TestReadPathZeroAlloc(t *testing.T) {
	e := mustEnsemble(t, 5)
	last := run(t, e, 60, func(k, _ int) float64 {
		if k == 4 {
			return 5e-3
		}
		return 0
	})
	T := uint64((last + 1) / synthP)
	var sinkF float64
	var sinkS Snapshot
	for name, fn := range map[string]func(){
		"AbsoluteTime":   func() { sinkF = e.AbsoluteTime(T) },
		"RateHat":        func() { sinkF = e.RateHat() },
		"DifferenceSpan": func() { sinkF = e.DifferenceSpan(T, T+1000) },
		"TakeSnapshot":   func() { sinkS = e.TakeSnapshot(T) },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
	_, _ = sinkF, sinkS
}

package ensemble

import (
	"math"
	"testing"

	"repro/internal/core"
)

// checkReadoutMatchesWriter asserts, at one instant, that the published
// readout answers every read identically to the writer-side scratch
// methods (the pre-refactor locked path of the public wrappers).
func checkReadoutMatchesWriter(t *testing.T, e *Ensemble, T uint64) {
	t.Helper()
	r := e.Readout()
	if r == nil {
		t.Fatal("no readout published")
	}
	if len(r.Servers) != e.Size() {
		t.Fatalf("readout has %d servers, want %d", len(r.Servers), e.Size())
	}
	if got, want := r.AbsoluteTime(T), e.AbsoluteTime(T); got != want {
		t.Fatalf("AbsoluteTime(%d): readout %v, writer %v", T, got, want)
	}
	if got, want := r.RateHat(), e.RateHat(); got != want {
		t.Fatalf("RateHat: readout %v, writer %v", got, want)
	}
	if got, want := r.DifferenceSpan(T, T+5000), e.DifferenceSpan(T, T+5000); got != want {
		t.Fatalf("DifferenceSpan: readout %v, writer %v", got, want)
	}
	if got, want := r.Exchanges, e.Exchanges(); got != want {
		t.Fatalf("Exchanges: readout %d, writer %d", got, want)
	}
	snap := e.TakeSnapshot(T)
	if got, want := r.Agreement(T), snap.Agreement; got != want {
		t.Fatalf("Agreement(%d): readout %d, snapshot %d", T, got, want)
	}
	if got, want := r.Falsetickers, snap.Falsetickers; got != want {
		t.Fatalf("Falsetickers: readout %d, snapshot %d", got, want)
	}
	ws := e.Weights()
	states := e.ServerStates()
	for k := range r.Servers {
		sr := &r.Servers[k]
		if sr.Weight != ws[k] {
			t.Fatalf("server %d: readout weight %v, writer %v", k, sr.Weight, ws[k])
		}
		if sr.Selected != snap.Selected[k] {
			t.Fatalf("server %d: readout selected %v, snapshot %v", k, sr.Selected, snap.Selected[k])
		}
		if sr.AsymmetryHint != snap.AsymmetryHint[k] {
			t.Fatalf("server %d: readout hint %v, snapshot %v", k, sr.AsymmetryHint, snap.AsymmetryHint[k])
		}
		st := states[k]
		if sr.Ready != st.Ready || sr.Falseticker != st.Falseticker ||
			sr.IntersectStreak != st.IntersectStreak || sr.Exchanges != st.Exchanges ||
			sr.ErrScale != st.ErrScale || sr.PointErrLevel != st.PointErrLevel ||
			sr.RTTWobble != st.RTTWobble || sr.Penalty != st.Penalty {
			t.Fatalf("server %d: readout diagnostics %+v do not match ServerState %+v", k, sr, st)
		}
	}
}

// TestEnsembleReadoutEquivalence feeds the harness scenarios — all
// good, one faulty from the start, a mid-run fault — and checks after
// every exchange that the published readout is equivalent to the
// writer-side read path.
func TestEnsembleReadoutEquivalence(t *testing.T) {
	scenarios := map[string]func(server, round int) float64{
		"all-good": func(int, int) float64 { return 0 },
		"one-faulty": func(k, _ int) float64 {
			if k == 2 {
				return 5e-3
			}
			return 0
		},
		"midrun-fault": func(k, i int) float64 {
			if k == 2 && i >= 40 {
				return 5e-3
			}
			return 0
		},
	}
	for name, fault := range scenarios {
		t.Run(name, func(t *testing.T) {
			e := mustEnsemble(t, 3)
			checkReadoutMatchesWriter(t, e, 1000) // pre-first-exchange
			now := 0.0
			for i := 0; i < 80; i++ {
				for k := 0; k < e.Size(); k++ {
					now = float64(i)*16 + float64(k)*16/float64(e.Size()) + 1
					feed(t, e, k, now, fault(k, i))
					checkReadoutMatchesWriter(t, e, uint64((now+0.5)/synthP))
				}
			}
		})
	}
}

// TestEnsembleReadoutIdentity: identity observations republish, so the
// readout carries the server identity (the relay derives its advertised
// stratum from it) and the change penalty shows in the weights.
func TestEnsembleReadoutIdentity(t *testing.T) {
	e := mustEnsemble(t, 2)
	feed(t, e, 0, 1, 0)
	if _, err := e.ObserveIdentity(0, core.Identity{RefID: 0x0a000001, Stratum: 1}); err != nil {
		t.Fatal(err)
	}
	r := e.Readout()
	if !r.Servers[0].Clock.IdentKnown || r.Servers[0].Clock.Ident.Stratum != 1 {
		t.Fatalf("identity not published: %+v", r.Servers[0].Clock.Ident)
	}
	feed(t, e, 0, 17, 0)
	changed, err := e.ObserveIdentity(0, core.Identity{RefID: 0x0a000002, Stratum: 2})
	if err != nil || !changed {
		t.Fatalf("change not detected (err %v)", err)
	}
	r = e.Readout()
	if r.Servers[0].Clock.Ident.Stratum != 2 {
		t.Fatalf("changed identity not published: %+v", r.Servers[0].Clock.Ident)
	}
	if r.Servers[0].Penalty == 0 {
		t.Error("identity-change penalty not published")
	}
	checkReadoutMatchesWriter(t, e, uint64(18/synthP))
}

// TestEnsembleReadoutImmutable: a held readout is not changed by
// further processing, and publication swaps the pointer.
func TestEnsembleReadoutImmutable(t *testing.T) {
	e := mustEnsemble(t, 3)
	last := run(t, e, 40, func(int, int) float64 { return 0 })
	r := e.Readout()
	T := uint64((last + 1) / synthP)
	before := r.AbsoluteTime(T)
	for i := 0; i < 40; i++ {
		for k := 0; k < e.Size(); k++ {
			feed(t, e, k, last+2+float64(i)*16+float64(k)*16/3, 0)
		}
	}
	if r.AbsoluteTime(T) != before {
		t.Error("held readout changed its answer after further exchanges")
	}
	if e.Readout() == r {
		t.Error("publication did not swap the snapshot pointer")
	}
}

// TestEnsembleReadoutSynced: unsynced before warmup graduation, synced
// after, and the staleness age grows at the combined rate.
func TestEnsembleReadoutSynced(t *testing.T) {
	e := mustEnsemble(t, 3)
	if e.Readout().Synced() {
		t.Error("Synced before any exchange")
	}
	feed(t, e, 0, 0.5, 0)
	if e.Readout().Synced() {
		t.Error("Synced during warmup")
	}
	last := run(t, e, 80, func(int, int) float64 { return 0 })
	r := e.Readout()
	if !r.Synced() {
		t.Fatal("not Synced after 80 calibrated rounds")
	}
	T := r.LastTf + uint64(10/synthP)
	if age := r.Age(T); math.Abs(age-10) > 0.1 {
		t.Errorf("Age after ~10 s = %v", age)
	}
	_ = last
}

// TestEnsembleReadoutZeroAllocRead: loading the published readout and
// reading through it allocates nothing — the lock-free analogue of
// TestReadPathZeroAlloc.
func TestEnsembleReadoutZeroAllocRead(t *testing.T) {
	e := mustEnsemble(t, 5)
	last := run(t, e, 60, func(k, _ int) float64 {
		if k == 4 {
			return 5e-3
		}
		return 0
	})
	T := uint64((last + 1) / synthP)
	var sinkF float64
	var sinkI int
	for name, fn := range map[string]func(){
		"AbsoluteTime": func() { sinkF = e.Readout().AbsoluteTime(T) },
		"RateHat":      func() { sinkF = e.Readout().RateHat() },
		"Agreement":    func() { sinkI = e.Readout().Agreement(T) },
		"Age":          func() { sinkF = e.Readout().Age(T) },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
	_, _ = sinkF, sinkI
}

package ensemble

import (
	"testing"

	"repro/internal/core"
)

func newTestEnsemble(t *testing.T, servers int) *Ensemble {
	t.Helper()
	cfgs := make([]core.Config, servers)
	for i := range cfgs {
		cfgs[i] = core.DefaultConfig(2e-9, 16)
	}
	e, err := New(Config{Engines: cfgs})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestProcessBatchSingletonEquivalence: a batch of one is Process in
// every observable respect — same engine state, same sweep cadence,
// same published combined readout. This pins ProcessBatch as a strict
// generalization rather than a second code path with its own
// semantics.
func TestProcessBatchSingletonEquivalence(t *testing.T) {
	const servers = 3
	seq := newTestEnsemble(t, servers)
	bat := newTestEnsemble(t, servers)
	ins := core.SynthTrace(2048)
	for j, in := range ins {
		if _, err := seq.Process(j%servers, in); err != nil {
			t.Fatal(err)
		}
		if err := bat.ProcessBatch([]BatchExchange{{Server: j % servers, In: in}}); err != nil {
			t.Fatal(err)
		}
	}
	T := ins[len(ins)-1].Tf
	for _, dt := range []uint64{0, 1000, 1 << 20} {
		if a, b := seq.AbsoluteTime(T+dt), bat.AbsoluteTime(T+dt); a != b {
			t.Errorf("AbsoluteTime(T+%d): sequential %.12g != singleton-batched %.12g", dt, a, b)
		}
	}
	if a, b := seq.RateHat(), bat.RateHat(); a != b {
		t.Errorf("RateHat: %.12g != %.12g", a, b)
	}
	if a, b := seq.Agreement(T), bat.Agreement(T); a != b {
		t.Errorf("Agreement: %d != %d", a, b)
	}
}

// TestProcessBatchEngineEquivalence: batching a whole poll round
// amortizes the combine sweeps but must leave every per-server engine
// bit-identical to sequential processing — the engines never see the
// sweep cadence, only their own in-order exchanges.
func TestProcessBatchEngineEquivalence(t *testing.T) {
	const servers = 4
	seq := newTestEnsemble(t, servers)
	bat := newTestEnsemble(t, servers)
	ins := core.SynthTrace(2048)

	round := make([]BatchExchange, 0, servers)
	for j, in := range ins {
		if _, err := seq.Process(j%servers, in); err != nil {
			t.Fatal(err)
		}
		round = append(round, BatchExchange{Server: j % servers, In: in})
		if len(round) == servers {
			if err := bat.ProcessBatch(round); err != nil {
				t.Fatal(err)
			}
			round = round[:0]
		}
	}
	if err := bat.ProcessBatch(round); err != nil { // tail partial round
		t.Fatal(err)
	}
	for k := 0; k < servers; k++ {
		if a, b := *seq.Engine(k).Readout(), *bat.Engine(k).Readout(); a != b {
			t.Errorf("engine %d readout diverged under round batching:\n  sequential %+v\n  batched    %+v", k, a, b)
		}
	}
	// The combined readout is evaluated at the same final Tf in both;
	// selection streak state may legitimately differ (fewer sweeps),
	// but with identical healthy engines the combined time must agree
	// to well under the engines' own error scale.
	T := ins[len(ins)-1].Tf + 1000
	a, b := seq.AbsoluteTime(T), bat.AbsoluteTime(T)
	if diff := a - b; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("combined AbsoluteTime diverged: %.12g vs %.12g", a, b)
	}
}

// TestProcessBatchError: a bad exchange mid-batch stops application —
// later exchanges must not be consumed — but the combine stages still
// run over the applied prefix so the published readout reflects it.
func TestProcessBatchError(t *testing.T) {
	const servers = 2
	e := newTestEnsemble(t, servers)
	ref := newTestEnsemble(t, servers)
	ins := core.SynthTrace(64)
	warm, tail := ins[:32], ins[32:]
	for j, in := range warm {
		if _, err := e.Process(j%servers, in); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Process(j%servers, in); err != nil {
			t.Fatal(err)
		}
	}
	batch := []BatchExchange{
		{Server: 0, In: tail[0]},
		{Server: servers + 7, In: tail[1]}, // out of range: must stop here
		{Server: 1, In: tail[2]},
	}
	if err := e.ProcessBatch(batch); err == nil {
		t.Fatal("out-of-range server accepted")
	}
	// The reference applies only the prefix the batch should have.
	if _, err := ref.Process(0, tail[0]); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < servers; k++ {
		if a, b := *e.Engine(k).Readout(), *ref.Engine(k).Readout(); a != b {
			t.Errorf("engine %d after failed batch: %+v, want prefix-only %+v", k, a, b)
		}
	}
	if a, b := e.Exchanges(), ref.Exchanges(); a != b {
		t.Errorf("exchange count %d, want %d (nothing past the error applied)", a, b)
	}
}

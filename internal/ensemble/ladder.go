package ensemble

// The degradation ladder: an explicit health state machine for the
// combined clock, driven by how many servers currently back the vote
// and how stale the combine has become. The paper's robustness story is
// that p̂_l stays trustworthy through long reachability gaps (§5–6); the
// ladder is where the ensemble *acts* on that — instead of a binary
// synced/unsynced, the combined clock walks
//
//	SYNCED ── quorum lost ──▶ DEGRADED ── last voter lost ──▶ HOLDOVER
//	                                                            │
//	   ◀───────────── hysteresis recovery ◀───────────  staleness cap
//	                                                            ▼
//	                                                        UNSYNCED
//
// with asymmetric transitions: downgrades are immediate (stale trust is
// dangerous trust), upgrades require RecoverAfter consecutive exchanges
// at the better level (one lucky packet after an outage must not
// re-advertise full health). In HOLDOVER the combined rate is frozen at
// the last trusted value — the whole point of a calibrated p̂_l is that
// coasting on it is sound — and downstream serving grows its advertised
// root dispersion at the frozen DriftBound instead of re-advertising a
// live error estimate it no longer has.
//
// Two paths lead into HOLDOVER and both matter: the writer-side path
// (exchanges still arrive but no server is fit to vote — mass eviction,
// a stale majority) moves the base state itself, while a total outage
// stops Process entirely, so no writer transition can happen; there the
// *read-time* State(T) method caps the published base state by the
// readout's age. Writers freeze the rate, readers apply staleness —
// between them every failure mode lands on the ladder.

import (
	"fmt"
	"math"
)

// State is a rung of the degradation ladder. Order matters: larger is
// healthier, so downgrades are "<" and staleness caps are min().
type State uint8

const (
	// StateUnsynced: no trusted calibration — never synced, or held
	// over so long the frozen rate's drift bound no longer says
	// anything useful. Serving advertises unsynchronized.
	StateUnsynced State = iota
	// StateHoldover: no server currently backs the vote; the combined
	// clock coasts on the frozen rate within its drift bound.
	StateHoldover
	// StateDegraded: at least one voting server, but fewer than the
	// configured quorum — running without the count-based breakdown
	// guarantee of the selection stage.
	StateDegraded
	// StateSynced: a full quorum of fresh, selected servers.
	StateSynced
)

// String returns the conventional all-caps state name.
func (s State) String() string {
	switch s {
	case StateUnsynced:
		return "UNSYNCED"
	case StateHoldover:
		return "HOLDOVER"
	case StateDegraded:
		return "DEGRADED"
	case StateSynced:
		return "SYNCED"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Stratum values mirroring internal/ntp (duplicated rather than
// imported: ensemble must not depend on the wire layer).
const (
	deadChainStratum = 15 // a chain at or above this is unsynchronized
	unsyncedStratum  = 16
)

// holdoverDriftFloor is the minimum advertised drift bound in HOLDOVER,
// seconds per second: even a superbly calibrated p̂_l is one thermal
// event away from ~1 PPM, so the advertised dispersion never grows
// slower than that.
const holdoverDriftFloor = 1e-6

// Health is the serving-facing summary of the voting set, refreshed on
// every exchange that leaves at least one voter and frozen otherwise —
// in HOLDOVER the advertised stratum, root delay and drift bound are
// deliberately those of the last trusted combine.
type Health struct {
	// Stratum is the stratum the combined clock advertises downstream:
	// one below the best voting upstream, 2 when no voter reports an
	// identity (simulated feeds), unsyncedStratum when every voting
	// upstream sits on a dead chain.
	Stratum uint8
	// AnyIdent reports whether any voter has an observed identity.
	AnyIdent bool
	// AllDeadChain: every identified voter advertises stratum ≥ 15 —
	// plausible stamps hanging off unsynchronized chains. The relay
	// must propagate that, whatever the ladder says.
	AllDeadChain bool
	// RootDelay is the minimum r̂ across voters (s).
	RootDelay float64
	// ErrScale is the worst voter error scale (s): the dispersion base.
	ErrScale float64
	// DriftBound is the holdover drift rate (s/s): the worst voting
	// p̂ quality, floored at holdoverDriftFloor. Dispersion grown at
	// this rate bounds the frozen clock's error while coasting.
	DriftBound float64
}

// engineFresh reports whether server k's engine readout is recent
// enough to vote: its last exchange lies within StaleAfterPolls polling
// periods of the ensemble's newest exchange, measured with the engine's
// own rate. A server that stopped answering keeps its last calibration
// (the engine coasts) but loses its vote — voting with week-old
// evidence is how a dead majority masks a live fault.
func (e *Ensemble) engineFresh(k int) bool {
	r := e.engines[k].Readout()
	if r.LastTf >= e.lastTf {
		return true
	}
	age := float64(e.lastTf-r.LastTf) * r.P
	return age <= float64(e.cfg.StaleAfterPolls)*e.cfg.Engines[k].PollPeriod
}

// frozenActive reports whether reads must serve the frozen holdover
// rate instead of the live weighted median.
func (e *Ensemble) frozenActive() bool {
	return e.everTrusted && e.base < StateDegraded
}

// updateLadder reclassifies the combined clock after one exchange.
// Called with e.lastTf already advanced, before publish.
func (e *Ensemble) updateLadder() {
	voting := 0
	for k := range e.members {
		m := &e.members[k]
		v := m.ready &&
			(m.selected || e.cfg.DisableSelection) &&
			e.engines[k].Readout().HaveTheta &&
			e.engineFresh(k)
		e.voting[k] = v
		if v {
			voting++
		}
	}
	e.votingCount = voting

	var candidate State
	switch {
	case voting >= e.cfg.MinVotingSynced:
		candidate = StateSynced
	case voting >= 1:
		candidate = StateDegraded
	case e.everTrusted:
		candidate = StateHoldover
	default:
		candidate = StateUnsynced
	}
	if candidate >= StateDegraded {
		e.refreshHealth()
	}

	switch {
	case !e.everTrusted && candidate >= StateDegraded:
		// First trust is immediate: hysteresis guards recoveries, not
		// the initial calibration (which warmup already gates).
		e.everTrusted = true
		e.base = candidate
		e.upStreak = 0
	case candidate < e.base:
		e.base = candidate
		e.upStreak = 0
	case candidate > e.base:
		e.upStreak++
		if e.upStreak >= e.cfg.RecoverAfter {
			e.base = candidate
			e.upStreak = 0
		}
	default:
		e.upStreak = 0
	}
}

// refreshHealth recomputes the serving summary from the current voting
// set. Only called while at least one server votes; the last value
// survives into HOLDOVER untouched.
func (e *Ensemble) refreshHealth() {
	h := Health{RootDelay: math.Inf(1), AllDeadChain: true}
	minStratum := uint8(unsyncedStratum)
	maxPQ := 0.0
	for k := range e.members {
		if !e.voting[k] {
			continue
		}
		r := e.engines[k].Readout()
		m := &e.members[k]
		if r.IdentKnown {
			h.AnyIdent = true
			if r.Ident.Stratum < deadChainStratum {
				h.AllDeadChain = false
				if r.Ident.Stratum < minStratum {
					minStratum = r.Ident.Stratum
				}
			}
		} else {
			// Unknown identity (simulated feeds): not a dead chain.
			h.AllDeadChain = false
		}
		if r.RTTHat < h.RootDelay {
			h.RootDelay = r.RTTHat
		}
		if es := m.errScale(); es > h.ErrScale {
			h.ErrScale = es
		}
		if r.PQuality > maxPQ {
			maxPQ = r.PQuality
		}
	}
	if math.IsInf(h.RootDelay, 1) {
		h.RootDelay = 0
	}
	switch {
	case h.AllDeadChain:
		h.Stratum = unsyncedStratum
	case h.AnyIdent && minStratum < unsyncedStratum:
		h.Stratum = minStratum + 1
	default:
		h.Stratum = 2 // identity unknown: assume stratum-1 upstreams
	}
	h.DriftBound = math.Max(maxPQ, holdoverDriftFloor)
	e.health = h
}

// BaseState returns the writer-side ladder state — exclusive of
// read-time staleness; readers should prefer Readout().State(T).
func (e *Ensemble) BaseState() State { return e.base }

// Health returns the current serving-facing health summary (frozen at
// the last trusted combine while no server votes).
func (e *Ensemble) Health() Health { return e.health }

// VotingCount returns the number of servers backing the current vote:
// ready, selected, fresh, and holding an offset estimate.
func (e *Ensemble) VotingCount() int { return e.votingCount }

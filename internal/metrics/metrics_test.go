package metrics

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestExpositionFormat(t *testing.T) {
	cases := []struct {
		name  string
		build func(r *Registry)
		want  string
	}{
		{
			"counter",
			func(r *Registry) {
				c := r.Counter("ntp_requests_total", "Requests served.")
				c.Add(41)
				c.Inc()
			},
			"# HELP ntp_requests_total Requests served.\n# TYPE ntp_requests_total counter\nntp_requests_total 42\n",
		},
		{
			"gauge",
			func(r *Registry) { r.Gauge("clock_offset_seconds", "Combined offset.").Set(-1.5e-6) },
			"# HELP clock_offset_seconds Combined offset.\n# TYPE clock_offset_seconds gauge\nclock_offset_seconds -1.5e-06\n",
		},
		{
			"gauge-func",
			func(r *Registry) { r.GaugeFunc("ladder_state", "Rung.", func() float64 { return 3 }) },
			"# HELP ladder_state Rung.\n# TYPE ladder_state gauge\nladder_state 3\n",
		},
		{
			"no-help",
			func(r *Registry) { r.Counter("bare_total", "") },
			"# TYPE bare_total counter\nbare_total 0\n",
		},
		{
			"label-escaping",
			func(r *Registry) {
				r.CounterVec("drops_total", "Drops.", "reason").With("a\\b\"c\nd").Inc()
			},
			"# HELP drops_total Drops.\n# TYPE drops_total counter\ndrops_total{reason=\"a\\\\b\\\"c\\nd\"} 1\n",
		},
		{
			"help-escaping",
			func(r *Registry) { r.Counter("esc_total", "line\\one\ntwo") },
			"# HELP esc_total line\\\\one\\ntwo\n# TYPE esc_total counter\nesc_total 0\n",
		},
		{
			"label-name-order-preserved",
			func(r *Registry) {
				r.GaugeVec("weight", "W.", "shard", "server").With("2", "0").Set(0.25)
			},
			"# HELP weight W.\n# TYPE weight gauge\nweight{shard=\"2\",server=\"0\"} 0.25\n",
		},
		{
			"cells-sorted-by-labels",
			func(r *Registry) {
				cv := r.CounterVec("shard_total", "Per shard.", "shard")
				cv.With("10").Inc()
				cv.With("2").Inc()
				cv.With("1").Inc()
			},
			"# HELP shard_total Per shard.\n# TYPE shard_total counter\n" +
				"shard_total{shard=\"1\"} 1\nshard_total{shard=\"10\"} 1\nshard_total{shard=\"2\"} 1\n",
		},
		{
			"non-finite-gauges",
			func(r *Registry) {
				gv := r.GaugeVec("edge", "", "k")
				gv.With("nan").Set(math.NaN())
				gv.With("pinf").Set(math.Inf(1))
				gv.With("ninf").Set(math.Inf(-1))
			},
			"# TYPE edge gauge\nedge{k=\"nan\"} NaN\nedge{k=\"ninf\"} -Inf\nedge{k=\"pinf\"} +Inf\n",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := NewRegistry()
			c.build(r)
			if got := render(t, r); got != c.want {
				t.Errorf("rendered:\n%q\nwant:\n%q", got, c.want)
			}
		})
	}
}

// TestFamiliesRenderInRegistrationOrder: scrape output is byte-stable
// and ordered by registration, not by name.
func TestFamiliesRenderInRegistrationOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "")
	r.Counter("aaa_total", "")
	got := render(t, r)
	if !(strings.Index(got, "zzz_total") < strings.Index(got, "aaa_total")) {
		t.Errorf("families reordered:\n%s", got)
	}
}

// TestCounterMonotonicAcrossScrapes: scrapes observe a non-decreasing
// counter, and a scrape itself never perturbs the value.
func TestCounterMonotonicAcrossScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono_total", "")
	prev := uint64(0)
	for i := 0; i < 10; i++ {
		c.Add(uint64(i))
		out := render(t, r)
		if v := c.Value(); v < prev {
			t.Fatalf("counter went backwards: %d after %d", v, prev)
		} else {
			prev = v
		}
		want := "mono_total " + utoa(prev) + "\n"
		if !strings.Contains(out, want) {
			t.Fatalf("scrape %d missing %q:\n%s", i, want, out)
		}
	}
}

func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestScrapeHooksRun: OnScrape hooks fold state in before rendering.
func TestScrapeHooksRun(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("hooked", "")
	n := 0.0
	r.OnScrape(func() { n++; g.Set(n) })
	if got := render(t, r); !strings.Contains(got, "hooked 1\n") {
		t.Errorf("first scrape: %q", got)
	}
	if got := render(t, r); !strings.Contains(got, "hooked 2\n") {
		t.Errorf("second scrape: %q", got)
	}
}

// TestRegistrationPanics: invalid and duplicate names are wiring-time
// programmer errors.
func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup_total", "")
	mustPanic("duplicate", func() { r.Gauge("dup_total", "") })
	mustPanic("bad name", func() { r.Counter("9leading", "") })
	mustPanic("bad name chars", func() { r.Counter("has space", "") })
	mustPanic("bad label", func() { r.CounterVec("v_total", "", "bad:label") })
	cv := r.CounterVec("arity_total", "", "a", "b")
	mustPanic("label arity", func() { cv.With("only-one") })
}

// TestMetricsHotPathZeroAlloc: the operations the per-packet serve loop
// performs — counter increments and gauge stores on pre-resolved cells
// — allocate nothing. Vec.With is excluded by design: it is a
// wiring-time call whose result the hot path retains.
func TestMetricsHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "")
	g := r.Gauge("hot_gauge", "")
	vc := r.CounterVec("hot_vec_total", "", "shard").With("0")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		vc.Inc()
		g.Set(1.5)
		g.Add(0.5)
	}); n != 0 {
		t.Errorf("hot-path metric ops allocate %v times per run, want 0", n)
	}
}

// TestHandler: the HTTP endpoint serves the exposition with the
// standard content type.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "").Add(7)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "served_total 7\n") {
		t.Errorf("body:\n%s", body)
	}
}

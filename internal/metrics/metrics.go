// Package metrics is a dependency-free Prometheus-text-exposition
// metrics layer for the serving path. It exists because the relay's hot
// loop — one counter increment per UDP packet, millions of times per
// second across shards — cannot afford a general-purpose metrics
// library: an increment here is a single atomic add on a pre-registered
// cell, with no map lookup, no interface call, and no allocation
// (guarded by TestMetricsHotPathZeroAlloc). All formatting cost is paid
// at scrape time, when WriteText renders every registered family in the
// Prometheus text exposition format (# HELP/# TYPE, escaped label
// values, deterministic order), so a scrape is the only place bytes are
// built.
//
// The shapes mirror the Prometheus client library where that helps the
// reader — Counter/Gauge, *Vec for labeled families, Func for values
// sampled at scrape — and diverge where the hot path demands it:
// Vec.With resolves a label set to its cell once, at wiring time, and
// the returned cell is what the packet loop touches. Scrape hooks
// (OnScrape) let slow-moving state (ladder rung, per-server weights
// from the latest readout snapshot) be folded into gauges only when
// someone is actually looking.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; increments are single atomic adds (zero-alloc).
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
//
//repro:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//repro:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down. The zero value is
// ready to use; Set is a single atomic store (zero-alloc).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
//
//repro:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d.
//
//repro:hotpath
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Buckets are set at
// registration and never change, so an observation is one bounded
// bounds scan plus an atomic add — no map, no lock, no allocation.
// Rendering follows the Prometheus convention: cumulative
// `_bucket{le="…"}` series with an implicit +Inf bucket, plus `_sum`
// and `_count`.
type Histogram struct {
	bounds  []float64       // ascending upper bounds; +Inf implicit
	buckets []atomic.Uint64 // len(bounds)+1, per-bucket (non-cumulative)
	sum     atomic.Uint64   // float64 bits of the observation sum
}

// Observe records one sample.
//
//repro:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.AddSum(v)
}

// AddBucket adds n observations directly to bucket i (0-based; the
// last index is the +Inf bucket) without touching the sum — the fold
// hook for sources that maintain their own bucket counts (ntp.Stats).
func (h *Histogram) AddBucket(i int, n uint64) { h.buckets[i].Add(n) }

// AddSum adds d to the observation sum, for use with AddBucket.
//
//repro:hotpath
func (h *Histogram) AddSum(d float64) {
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// NumBuckets returns the bucket count including the +Inf bucket.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the observation sum.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Histogram registers a histogram with the given ascending bucket
// upper bounds (a trailing +Inf bucket is added automatically).
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s bucket bounds not ascending", name))
		}
	}
	f := r.newFamily(name, help, "histogram", nil)
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	f.hist = h
	return h
}

// cell is one rendered sample: a pre-escaped label suffix plus its
// value source (exactly one of counter, gauge, or fn).
type cell struct {
	labels  string // `{k="v",...}` or ""
	counter *Counter
	gauge   *Gauge
	fn      func() float64
}

// family is one metric family: a # HELP/# TYPE header plus its cells in
// creation order.
type family struct {
	name  string
	help  string
	typ   string // "counter", "gauge" or "histogram"
	mu    sync.Mutex
	cells []*cell
	byKey map[string]*cell // label suffix → cell, for Vec.With caching
	hist  *Histogram       // set instead of cells for histogram families
}

// Registry holds metric families and renders them on scrape. Families
// render in registration order; a scrape never blocks the hot path
// (cells are read with atomic loads).
type Registry struct {
	mu       sync.Mutex
	families []*family
	names    map[string]bool
	hooks    []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

// OnScrape registers fn to run at the start of every WriteText, before
// any family renders: the place to fold slow-moving state (a readout
// snapshot, poller stats) into gauges only when someone is looking.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// validName matches the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*; labels use the same minus ':'.
func validName(s string, label bool) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
		case c == ':' && !label:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// newFamily registers a family, panicking on invalid or duplicate
// names — both are wiring-time programmer errors, not runtime
// conditions.
func (r *Registry) newFamily(name, help, typ string, labelNames []string) *family {
	if !validName(name, false) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !validName(l, true) {
			panic(fmt.Sprintf("metrics: invalid label name %q in %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", name))
	}
	r.names[name] = true
	f := &family{name: name, help: help, typ: typ, byKey: map[string]*cell{}}
	r.families = append(r.families, f)
	return f
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.newFamily(name, help, "counter", nil)
	c := &Counter{}
	f.cells = append(f.cells, &cell{counter: c})
	return c
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.newFamily(name, help, "gauge", nil)
	g := &Gauge{}
	f.cells = append(f.cells, &cell{gauge: g})
	return g
}

// GaugeFunc registers a gauge sampled by fn at every scrape.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.newFamily(name, help, "gauge", nil)
	f.cells = append(f.cells, &cell{fn: fn})
}

// CounterVec is a labeled counter family.
type CounterVec struct {
	f          *family
	labelNames []string
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.newFamily(name, help, "counter", labelNames), labelNames: labelNames}
}

// With resolves one label-value combination to its counter cell,
// creating it on first use. Resolve at wiring time and keep the
// returned *Counter: With itself takes the family lock and allocates on
// first use, the returned cell never does.
func (cv *CounterVec) With(labelValues ...string) *Counter {
	c := cv.f.withCell(cv.labelNames, labelValues)
	if c.counter == nil {
		c.counter = &Counter{}
	}
	return c.counter
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct {
	f          *family
	labelNames []string
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.newFamily(name, help, "gauge", labelNames), labelNames: labelNames}
}

// With resolves one label-value combination to its gauge cell, creating
// it on first use (see CounterVec.With).
func (gv *GaugeVec) With(labelValues ...string) *Gauge {
	c := gv.f.withCell(gv.labelNames, labelValues)
	if c.gauge == nil {
		c.gauge = &Gauge{}
	}
	return c.gauge
}

// withCell returns the cell for one label-value combination, creating
// and caching it under the rendered label suffix.
func (f *family) withCell(names, values []string) *cell {
	if len(values) != len(names) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", f.name, len(names), len(values)))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		escapeLabelValue(&b, values[i])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	key := b.String()
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.byKey[key]
	if !ok {
		c = &cell{labels: key}
		f.byKey[key] = c
		f.cells = append(f.cells, c)
	}
	return c
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabelValue(b *strings.Builder, s string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
}

// escapeHelp escapes a HELP string: backslash and newline only (quotes
// are legal there).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteText renders every family in the Prometheus text exposition
// format, in registration order, cells within a family sorted by label
// suffix (so scrapes are byte-stable regardless of With call order).
// Scrape hooks run first.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	hooks := make([]func(), len(r.hooks))
	copy(hooks, r.hooks)
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, h := range hooks {
		h()
	}

	var b []byte
	for _, f := range fams {
		f.mu.Lock()
		cells := make([]*cell, len(f.cells))
		copy(cells, f.cells)
		f.mu.Unlock()
		sort.Slice(cells, func(i, j int) bool { return cells[i].labels < cells[j].labels })

		b = b[:0]
		if f.help != "" {
			b = append(b, "# HELP "...)
			b = append(b, f.name...)
			b = append(b, ' ')
			b = append(b, escapeHelp(f.help)...)
			b = append(b, '\n')
		}
		b = append(b, "# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.typ...)
		b = append(b, '\n')
		if h := f.hist; h != nil {
			var cum uint64
			for i := range h.buckets {
				cum += h.buckets[i].Load()
				b = append(b, f.name...)
				b = append(b, `_bucket{le="`...)
				if i < len(h.bounds) {
					b = appendFloat(b, h.bounds[i])
				} else {
					b = append(b, "+Inf"...)
				}
				b = append(b, `"} `...)
				b = strconv.AppendUint(b, cum, 10)
				b = append(b, '\n')
			}
			b = append(b, f.name...)
			b = append(b, "_sum "...)
			b = appendFloat(b, h.Sum())
			b = append(b, '\n')
			b = append(b, f.name...)
			b = append(b, "_count "...)
			b = strconv.AppendUint(b, cum, 10)
			b = append(b, '\n')
			if _, err := w.Write(b); err != nil {
				return err
			}
			continue
		}
		for _, c := range cells {
			b = append(b, f.name...)
			b = append(b, c.labels...)
			b = append(b, ' ')
			switch {
			case c.counter != nil:
				b = strconv.AppendUint(b, c.counter.Value(), 10)
			case c.gauge != nil:
				b = appendFloat(b, c.gauge.Value())
			case c.fn != nil:
				b = appendFloat(b, c.fn())
			}
			b = append(b, '\n')
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// appendFloat renders a float sample value, with the exposition
// format's spellings for the non-finite values.
func appendFloat(b []byte, v float64) []byte {
	switch {
	case math.IsNaN(v):
		return append(b, "NaN"...)
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry as a /metrics
// endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The scrape builds into the response writer directly; an error
		// here means the client went away, nothing to do about it.
		_ = r.WriteText(w)
	})
}

package capture

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader: arbitrary bytes must never panic the reader; valid
// captures must round-trip.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Name: "seed", PollPeriod: 16})
	if err != nil {
		f.Fatal(err)
	}
	_ = w.Write(Record{Seq: 0, Ta: 1, Tf: 2, Tb: 3, Te: 4, Tg: 5})
	_ = w.Write(Record{Seq: 1, Lost: true})
	_ = w.Close()
	f.Add(buf.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte("garbage input longer than magic"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			if _, err := r.Next(); err != nil {
				if err != io.EOF && err.Error() == "" {
					t.Fatal("empty error message")
				}
				return
			}
		}
	})
}

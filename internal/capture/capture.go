// Package capture defines a compact binary on-disk format for exchange
// traces, mirroring how the paper's authors collected months of raw
// timestamp data and post-processed it offline. A capture file carries a
// JSON metadata header (scenario description, free-form) followed by
// fixed-width binary exchange records, so multi-month traces stream in
// constant memory and survive partial writes (truncated tails are
// detected).
//
// Format:
//
//	magic   "TSCTRC01"              8 bytes
//	metaLen uint32 little-endian    4 bytes
//	meta    JSON                    metaLen bytes
//	records                         72 bytes each
//
// Record layout (little-endian):
//
//	seq    uint32   flags  uint32 (bit 0: lost)
//	ta     uint64   tf     uint64
//	tb     float64  te     float64
//	tg     float64  trueTa float64  trueTf float64
//
// Reference oracle fields beyond Tg are not stored: captures are meant
// to be replayable through the estimators and scored against Tg, exactly
// like the paper's DAG-verified datasets.
package capture

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/sim"
)

// Magic identifies capture files.
const Magic = "TSCTRC01"

// recordSize is the fixed width of one exchange record.
const recordSize = 4 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 8

const flagLost = 1 << 0

// Meta is the capture header. Fields are free-form but these are the
// ones the bundled tools read and write.
type Meta struct {
	Name       string  `json:"name"`
	PollPeriod float64 `json:"poll_period_s"`
	Duration   float64 `json:"duration_s"`
	Seed       uint64  `json:"seed"`
	NominalHz  float64 `json:"nominal_hz"`
	Comment    string  `json:"comment,omitempty"`
}

// Record is one stored exchange: the raw data plus the DAG reference
// stamp and oracle endpoints needed to score estimators.
type Record struct {
	Seq    uint32
	Lost   bool
	Ta, Tf uint64
	Tb, Te float64
	Tg     float64
	TrueTa float64
	TrueTf float64
}

// FromExchange converts a simulation exchange.
func FromExchange(e sim.Exchange) Record {
	return Record{
		Seq: uint32(e.Seq), Lost: e.Lost,
		Ta: e.Ta, Tf: e.Tf, Tb: e.Tb, Te: e.Te,
		Tg: e.Tg, TrueTa: e.TrueTa, TrueTf: e.TrueTf,
	}
}

// Writer streams records to a capture file.
type Writer struct {
	w   *bufio.Writer
	c   io.Closer
	n   int
	buf [recordSize]byte
}

// NewWriter writes the header to w and returns a record writer. If w is
// also an io.Closer, Close will close it.
func NewWriter(w io.Writer, meta Meta) (*Writer, error) {
	mb, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("capture: marshal meta: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(mb)))
	if _, err := bw.Write(lenBuf[:]); err != nil {
		return nil, err
	}
	if _, err := bw.Write(mb); err != nil {
		return nil, err
	}
	cw := &Writer{w: bw}
	if c, ok := w.(io.Closer); ok {
		cw.c = c
	}
	return cw, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	b := w.buf[:]
	binary.LittleEndian.PutUint32(b[0:], r.Seq)
	var flags uint32
	if r.Lost {
		flags |= flagLost
	}
	binary.LittleEndian.PutUint32(b[4:], flags)
	binary.LittleEndian.PutUint64(b[8:], r.Ta)
	binary.LittleEndian.PutUint64(b[16:], r.Tf)
	binary.LittleEndian.PutUint64(b[24:], math.Float64bits(r.Tb))
	binary.LittleEndian.PutUint64(b[32:], math.Float64bits(r.Te))
	binary.LittleEndian.PutUint64(b[40:], math.Float64bits(r.Tg))
	binary.LittleEndian.PutUint64(b[48:], math.Float64bits(r.TrueTa))
	binary.LittleEndian.PutUint64(b[56:], math.Float64bits(r.TrueTf))
	if _, err := w.w.Write(b); err != nil {
		return err
	}
	w.n++
	return nil
}

// WriteExchange appends one simulation exchange: the streaming entry
// point for trace generation, which converts and writes records one at
// a time so multi-week captures never hold a trace in memory.
func (w *Writer) WriteExchange(e sim.Exchange) error {
	return w.Write(FromExchange(e))
}

// CreateFile opens (creating parent directories) a capture file at path
// and returns a record writer whose Close closes the file.
func CreateFile(path string, meta Meta) (*Writer, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := NewWriter(f, meta)
	if err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.n }

// Close flushes and closes the underlying writer when it is closable.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.c != nil {
		return w.c.Close()
	}
	return nil
}

// Reader streams records from a capture file.
type Reader struct {
	r    *bufio.Reader
	meta Meta
	buf  [recordSize]byte
}

// NewReader validates the header and returns a record reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("capture: read magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("capture: bad magic %q", magic)
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("capture: read meta length: %w", err)
	}
	metaLen := binary.LittleEndian.Uint32(lenBuf[:])
	if metaLen > 1<<20 {
		return nil, fmt.Errorf("capture: implausible meta length %d", metaLen)
	}
	mb := make([]byte, metaLen)
	if _, err := io.ReadFull(br, mb); err != nil {
		return nil, fmt.Errorf("capture: read meta: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(mb, &meta); err != nil {
		return nil, fmt.Errorf("capture: parse meta: %w", err)
	}
	return &Reader{r: br, meta: meta}, nil
}

// Meta returns the capture header.
func (r *Reader) Meta() Meta { return r.meta }

// Next returns the next record, or io.EOF at a clean end of file. A
// truncated trailing record yields io.ErrUnexpectedEOF.
func (r *Reader) Next() (Record, error) {
	b := r.buf[:]
	if _, err := io.ReadFull(r.r, b); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("capture: truncated record: %w", io.ErrUnexpectedEOF)
	}
	flags := binary.LittleEndian.Uint32(b[4:])
	return Record{
		Seq:    binary.LittleEndian.Uint32(b[0:]),
		Lost:   flags&flagLost != 0,
		Ta:     binary.LittleEndian.Uint64(b[8:]),
		Tf:     binary.LittleEndian.Uint64(b[16:]),
		Tb:     math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
		Te:     math.Float64frombits(binary.LittleEndian.Uint64(b[32:])),
		Tg:     math.Float64frombits(binary.LittleEndian.Uint64(b[40:])),
		TrueTa: math.Float64frombits(binary.LittleEndian.Uint64(b[48:])),
		TrueTf: math.Float64frombits(binary.LittleEndian.Uint64(b[56:])),
	}, nil
}

// SaveTrace writes a whole simulation trace to path.
func SaveTrace(path string, tr *sim.Trace, comment string) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	meta := Meta{
		Name:       tr.Scenario.Name,
		PollPeriod: tr.Scenario.PollPeriod,
		Duration:   tr.Scenario.Duration,
		Seed:       tr.Scenario.Seed,
		NominalHz:  tr.Scenario.Oscillator.NominalHz,
		Comment:    comment,
	}
	w, err := NewWriter(f, meta)
	if err != nil {
		f.Close()
		return 0, err
	}
	for _, e := range tr.Exchanges {
		if err := w.Write(FromExchange(e)); err != nil {
			w.Close()
			return 0, err
		}
	}
	return w.Count(), w.Close()
}

// LoadAll reads every record from path.
func LoadAll(path string) (Meta, []Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, nil, err
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return Meta{}, nil, err
	}
	var recs []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return r.Meta(), recs, nil
		}
		if err != nil {
			return r.Meta(), recs, err
		}
		recs = append(recs, rec)
	}
}

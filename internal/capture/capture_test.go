package capture

import (
	"bytes"
	"io"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/timebase"
)

func sampleTrace(t *testing.T) *sim.Trace {
	t.Helper()
	sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, timebase.Hour, 5)
	sc.LossProb = 0.05
	tr, err := sim.Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRoundTripFile(t *testing.T) {
	tr := sampleTrace(t)
	path := filepath.Join(t.TempDir(), "trace.tsctrc")
	n, err := SaveTrace(path, tr, "unit test")
	if err != nil {
		t.Fatal(err)
	}
	if n != len(tr.Exchanges) {
		t.Fatalf("wrote %d records, trace has %d", n, len(tr.Exchanges))
	}
	meta, recs, err := LoadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Name != tr.Scenario.Name || meta.PollPeriod != 16 ||
		meta.Seed != 5 || meta.Comment != "unit test" {
		t.Errorf("meta = %+v", meta)
	}
	if len(recs) != len(tr.Exchanges) {
		t.Fatalf("read %d records", len(recs))
	}
	for i, e := range tr.Exchanges {
		got := recs[i]
		want := FromExchange(e)
		if got != want {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestLostFlagPreserved(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	for _, e := range tr.Exchanges {
		if e.Lost {
			lost++
		}
		if err := w.Write(FromExchange(e)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if lost == 0 {
		t.Fatal("trace has no losses to test")
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gotLost := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Lost {
			gotLost++
		}
	}
	if gotLost != lost {
		t.Errorf("lost flags: %d, want %d", gotLost, lost)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE..."))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestTruncatedRecordDetected(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{Seq: 0, Ta: 1, Tf: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-5]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("truncated record not detected")
	}
}

func TestEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Name: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("empty capture Next = %v, want EOF", err)
	}
}

func TestImplausibleMetaRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // 4 GiB meta
	if _, err := NewReader(&buf); err == nil {
		t.Error("huge meta length accepted")
	}
}

func BenchmarkWrite(b *testing.B) {
	rec := Record{Seq: 1, Ta: 1 << 40, Tf: 1<<40 + 500000, Tb: 1e6, Te: 1e6 + 2e-5,
		Tg: 1e6 + 4e-4, TrueTa: 1e6 - 4e-4, TrueTf: 1e6 + 4e-4}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Name: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
		if buf.Len() > 1<<24 {
			b.StopTimer()
			buf.Reset()
			b.StartTimer()
		}
	}
}

package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriterMatchesTable: the row-streaming writer's output must be
// byte-identical to Table.WriteTSV for the same data.
func TestWriterMatchesTable(t *testing.T) {
	rows := [][]float64{
		{0, -31.2e-6, 0.89e-3},
		{16, 1.8226381e-09, 0.91e-3},
		{32, 123456.789012, -3.1e-05},
	}
	tab := NewTable("t", "offset", "rtt")
	for _, r := range rows {
		if err := tab.Append(r...); err != nil {
			t.Fatal(err)
		}
	}
	var batch bytes.Buffer
	if err := tab.WriteTSV(&batch); err != nil {
		t.Fatal(err)
	}

	var streamed bytes.Buffer
	w, err := NewWriter(&streamed, "t", "offset", "rtt")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := w.Append(r...); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Len() != len(rows) {
		t.Errorf("Len = %d, want %d", w.Len(), len(rows))
	}
	if !bytes.Equal(streamed.Bytes(), batch.Bytes()) {
		t.Errorf("streamed output differs from batch:\n%q\nvs\n%q", streamed.Bytes(), batch.Bytes())
	}
}

func TestWriterArityAndValidation(t *testing.T) {
	if _, err := NewWriter(&bytes.Buffer{}); err == nil {
		t.Error("writer with no columns accepted")
	}
	w, err := NewWriter(&bytes.Buffer{}, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1); err == nil {
		t.Error("short row accepted")
	}
	if err := w.Append(1, 2, 3); err == nil {
		t.Error("long row accepted")
	}
}

// TestCreateStreamsToDisk: Create opens nested directories, rows stream
// through, and the result parses back with ReadTSV.
func TestCreateStreamsToDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "series.tsv")
	w, err := Create(path, "t_s", "err_us")
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	for i := 0; i < n; i++ {
		if err := w.Append(float64(i)*16, float64(i%97)-48); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadTSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != n {
		t.Fatalf("read back %d rows, want %d", got.Len(), n)
	}
	if cols := got.Columns(); cols[0] != "t_s" || cols[1] != "err_us" {
		t.Fatalf("columns = %v", cols)
	}
	if got.Row(n - 1)[0] != float64(n-1)*16 {
		t.Errorf("last row = %v", got.Row(n-1))
	}
}

func TestCreateBadPath(t *testing.T) {
	dir := t.TempDir()
	// A file where a directory is needed.
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(filepath.Join(blocker, "sub", "out.tsv"), "a"); err == nil {
		t.Error("create under a file accepted")
	}
	if !strings.HasSuffix(blocker, "blocker") {
		t.Fatal("sanity")
	}
}

package trace

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableRoundTrip(t *testing.T) {
	tab := NewTable("t", "offset_us", "rtt_ms")
	if err := tab.Append(0, -31.2, 0.89); err != nil {
		t.Fatal(err)
	}
	if err := tab.Append(16, -29.8, 0.91); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("len = %d", got.Len())
	}
	cols := got.Columns()
	if len(cols) != 3 || cols[1] != "offset_us" {
		t.Fatalf("columns = %v", cols)
	}
	for i := 0; i < 2; i++ {
		for j := range cols {
			if math.Abs(got.Row(i)[j]-tab.Row(i)[j]) > 1e-12 {
				t.Errorf("cell (%d,%d) = %v, want %v", i, j, got.Row(i)[j], tab.Row(i)[j])
			}
		}
	}
}

func TestAppendArityChecked(t *testing.T) {
	tab := NewTable("a", "b")
	if err := tab.Append(1); err == nil {
		t.Error("short row accepted")
	}
	if err := tab.Append(1, 2, 3); err == nil {
		t.Error("long row accepted")
	}
}

func TestReadTSVErrors(t *testing.T) {
	if _, err := ReadTSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadTSV(strings.NewReader("a\tb\n1\n")); err == nil {
		t.Error("ragged row accepted")
	}
	if _, err := ReadTSV(strings.NewReader("a\nxyz\n")); err == nil {
		t.Error("non-numeric cell accepted")
	}
}

func TestSaveTSVCreatesDirs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "deep", "out.tsv")
	tab := NewTable("x")
	if err := tab.Append(42); err != nil {
		t.Fatal(err)
	}
	if err := tab.SaveTSV(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "x\n42") {
		t.Errorf("file contents %q", data)
	}
}

func TestPrecisionPreserved(t *testing.T) {
	tab := NewTable("v")
	vals := []float64{-3.1e-05, 1.8226381e-09, 123456.789012}
	for _, v := range vals {
		if err := tab.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tab.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if rel := math.Abs(got.Row(i)[0]-v) / math.Abs(v); rel > 1e-11 {
			t.Errorf("value %v round-tripped to %v", v, got.Row(i)[0])
		}
	}
}

// Package trace provides lightweight tabular export of experiment
// artifacts: every regenerated table and figure series can be written as
// TSV for external plotting, mirroring how the paper's own data products
// (offset error series, Allan curves, sensitivity sweeps) would be
// shared.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// Writer streams rows of float64 columns as TSV: header on creation,
// one line per Append, buffered through to the underlying writer. It
// never buffers rows, so a multi-week series writes in constant memory
// — the streaming counterpart of Table for data too long to hold
// resident. Rows it writes are byte-identical to Table.WriteTSV's.
type Writer struct {
	columns int
	bw      *bufio.Writer
	c       io.Closer
	n       int
}

// NewWriter writes the header line to w and returns a row writer. If w
// is also an io.Closer, Close will close it.
func NewWriter(w io.Writer, columns ...string) (*Writer, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("trace: writer needs at least one column")
	}
	bw := bufio.NewWriter(w)
	if err := writeRowStrings(bw, columns); err != nil {
		return nil, err
	}
	sw := &Writer{columns: len(columns), bw: bw}
	if c, ok := w.(io.Closer); ok {
		sw.c = c
	}
	return sw, nil
}

// Create opens (creating parent directories) a file at path and returns
// a Writer whose Close closes the file.
func Create(path string, columns ...string) (*Writer, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := NewWriter(f, columns...)
	if err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Append writes one row; the value count must match the column count.
func (w *Writer) Append(values ...float64) error {
	if len(values) != w.columns {
		return fmt.Errorf("trace: row has %d values, writer has %d columns", len(values), w.columns)
	}
	if err := writeRowFloats(w.bw, values); err != nil {
		return err
	}
	w.n++
	return nil
}

// Len returns the number of rows written.
func (w *Writer) Len() int { return w.n }

// Close flushes buffered rows and closes the underlying writer when it
// is closable.
func (w *Writer) Close() error {
	if err := w.bw.Flush(); err != nil {
		if w.c != nil {
			w.c.Close()
		}
		return err
	}
	if w.c != nil {
		return w.c.Close()
	}
	return nil
}

// writeRowStrings emits one tab-separated line of strings.
func writeRowStrings(bw *bufio.Writer, fields []string) error {
	for i, f := range fields {
		if i > 0 {
			if err := bw.WriteByte('\t'); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(f); err != nil {
			return err
		}
	}
	return bw.WriteByte('\n')
}

// writeRowFloats emits one tab-separated line of formatted floats.
func writeRowFloats(bw *bufio.Writer, values []float64) error {
	for i, v := range values {
		if i > 0 {
			if err := bw.WriteByte('\t'); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', 12, 64)); err != nil {
			return err
		}
	}
	return bw.WriteByte('\n')
}

// Table is a column-ordered set of float64 series with a shared length.
type Table struct {
	columns []string
	rows    [][]float64
}

// NewTable creates a table with the given column names.
func NewTable(columns ...string) *Table {
	return &Table{columns: append([]string(nil), columns...)}
}

// Columns returns the column names.
func (t *Table) Columns() []string { return append([]string(nil), t.columns...) }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Append adds one row; the value count must match the column count.
func (t *Table) Append(values ...float64) error {
	if len(values) != len(t.columns) {
		return fmt.Errorf("trace: row has %d values, table has %d columns", len(values), len(t.columns))
	}
	t.rows = append(t.rows, append([]float64(nil), values...))
	return nil
}

// Row returns row i (borrowed, do not mutate).
func (t *Table) Row(i int) []float64 { return t.rows[i] }

// WriteTSV streams the table as tab-separated values with a header line.
func (t *Table) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := writeRowStrings(bw, t.columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRowFloats(bw, row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveTSV writes the table to a file, creating parent directories.
func (t *Table) SaveTSV(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteTSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTSV parses a table previously written by WriteTSV.
func ReadTSV(r io.Reader) (*Table, error) {
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 1<<20), 1<<20)
	if !br.Scan() {
		return nil, fmt.Errorf("trace: empty input")
	}
	head := splitTabs(br.Text())
	t := NewTable(head...)
	line := 1
	for br.Scan() {
		line++
		fields := splitTabs(br.Text())
		if len(fields) != len(head) {
			return nil, fmt.Errorf("trace: line %d has %d fields, want %d", line, len(fields), len(head))
		}
		row := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d field %d: %w", line, i, err)
			}
			row[i] = v
		}
		if err := t.Append(row...); err != nil {
			return nil, err
		}
	}
	return t, br.Err()
}

func splitTabs(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\t' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// Package trace provides lightweight tabular export of experiment
// artifacts: every regenerated table and figure series can be written as
// TSV for external plotting, mirroring how the paper's own data products
// (offset error series, Allan curves, sensitivity sweeps) would be
// shared.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// Table is a column-ordered set of float64 series with a shared length.
type Table struct {
	columns []string
	rows    [][]float64
}

// NewTable creates a table with the given column names.
func NewTable(columns ...string) *Table {
	return &Table{columns: append([]string(nil), columns...)}
}

// Columns returns the column names.
func (t *Table) Columns() []string { return append([]string(nil), t.columns...) }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Append adds one row; the value count must match the column count.
func (t *Table) Append(values ...float64) error {
	if len(values) != len(t.columns) {
		return fmt.Errorf("trace: row has %d values, table has %d columns", len(values), len(t.columns))
	}
	t.rows = append(t.rows, append([]float64(nil), values...))
	return nil
}

// Row returns row i (borrowed, do not mutate).
func (t *Table) Row(i int) []float64 { return t.rows[i] }

// WriteTSV streams the table as tab-separated values with a header line.
func (t *Table) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, c := range t.columns {
		if i > 0 {
			if err := bw.WriteByte('\t'); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(c); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	for _, row := range t.rows {
		for i, v := range row {
			if i > 0 {
				if err := bw.WriteByte('\t'); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', 12, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveTSV writes the table to a file, creating parent directories.
func (t *Table) SaveTSV(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteTSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTSV parses a table previously written by WriteTSV.
func ReadTSV(r io.Reader) (*Table, error) {
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 1<<20), 1<<20)
	if !br.Scan() {
		return nil, fmt.Errorf("trace: empty input")
	}
	head := splitTabs(br.Text())
	t := NewTable(head...)
	line := 1
	for br.Scan() {
		line++
		fields := splitTabs(br.Text())
		if len(fields) != len(head) {
			return nil, fmt.Errorf("trace: line %d has %d fields, want %d", line, len(fields), len(head))
		}
		row := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d field %d: %w", line, i, err)
			}
			row[i] = v
		}
		if err := t.Append(row...); err != nil {
			return nil, err
		}
	}
	return t, br.Err()
}

func splitTabs(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\t' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

package sim

// Deterministic fault schedules for multi-server scenarios: the
// injection half of the robustness evaluation. A schedule is plain
// data on the MultiScenario — per-server blackholes (ServerOutage),
// partitions hitting a subset of servers at once (Partition), wholesale
// outages (the existing Gaps), server-clock step events and
// death/restart cycles — so the same seed with the same schedule
// reproduces the same trace bit for bit, and an empty schedule leaves
// the generated trace untouched.
//
// Faults compose with the streaming generators: MultiStream consults
// the schedule per emission, so multi-week chaos scenarios still run in
// constant memory. A blackholed exchange is marked Lost and consumes no
// path/server draws, exactly like ordinary loss — loss, timeouts and
// blackholes are all the same absence of data to the synchronization
// algorithms, which is the paper's robustness premise. Note that
// injecting loss therefore shifts the *shared* host/DAG draw sequence
// of every later exchange: traces with different schedules are not
// comparable exchange-by-exchange (schedules that only lie — server
// steps — are, since every exchange still completes).

import (
	"fmt"
	"math"

	"repro/internal/netem"
	"repro/internal/rng"
)

// ServerOutage blackholes one server's exchanges during [From, To)
// seconds of true time: a server crash, an unreachable route, or — with
// LossProb set — a flaky window in which each exchange is lost with
// that probability instead of surely (request-timeout churn). LossProb
// zero means total blackhole.
type ServerOutage struct {
	Server   int
	From, To float64
	LossProb float64
}

// Partition blackholes a subset of servers at once during [From, To):
// the network split case, in which the surviving majority must carry
// the combined clock while the split lasts.
type Partition struct {
	Servers  []int
	From, To float64
}

// validateFaults checks the fault schedule against the server count.
func (s *MultiScenario) validateFaults() error {
	n := len(s.Servers)
	for i, o := range s.Outages {
		if o.Server < 0 || o.Server >= n {
			return fmt.Errorf("sim: outage %d: server %d out of range [0,%d)", i, o.Server, n)
		}
		if !(o.From < o.To) {
			return fmt.Errorf("sim: outage %d: window [%v,%v) is empty", i, o.From, o.To)
		}
		if !(o.LossProb >= 0 && o.LossProb <= 1) {
			return fmt.Errorf("sim: outage %d: LossProb %v outside [0,1]", i, o.LossProb)
		}
	}
	for i, p := range s.Partitions {
		if len(p.Servers) == 0 {
			return fmt.Errorf("sim: partition %d: no servers", i)
		}
		for _, k := range p.Servers {
			if k < 0 || k >= n {
				return fmt.Errorf("sim: partition %d: server %d out of range [0,%d)", i, k, n)
			}
		}
		if !(p.From < p.To) {
			return fmt.Errorf("sim: partition %d: window [%v,%v) is empty", i, p.From, p.To)
		}
	}
	return nil
}

// faultLost reports whether the fault schedule loses server k's
// exchange emitted at true time t. src is server k's private loss
// stream; it is consulted (one draw) only inside a flaky window, so
// schedules without flaky windows change no random draws.
func (s *MultiScenario) faultLost(k int, t float64, src *rng.Source) bool {
	for i := range s.Outages {
		o := &s.Outages[i]
		if o.Server != k || t < o.From || t >= o.To {
			continue
		}
		if o.LossProb == 0 || src.Bool(o.LossProb) {
			return true
		}
	}
	for i := range s.Partitions {
		p := &s.Partitions[i]
		if t < p.From || t >= p.To {
			continue
		}
		for _, srv := range p.Servers {
			if srv == k {
				return true
			}
		}
	}
	return false
}

// AddOutage blackholes server k during [from, to) seconds.
func (s *MultiScenario) AddOutage(server int, from, to float64) {
	s.Outages = append(s.Outages, ServerOutage{Server: server, From: from, To: to})
}

// AddFlaky makes server k's exchanges in [from, to) time out with the
// given probability each: the request-timeout fault, which at the trace
// level is loss (the reply never arrives before the deadline).
func (s *MultiScenario) AddFlaky(server int, from, to, lossProb float64) {
	s.Outages = append(s.Outages, ServerOutage{Server: server, From: from, To: to, LossProb: lossProb})
}

// AddPartition blackholes the given server subset during [from, to).
func (s *MultiScenario) AddPartition(servers []int, from, to float64) {
	s.Partitions = append(s.Partitions, Partition{Servers: servers, From: from, To: to})
}

// AddTotalOutage blackholes every server during [from, to): the
// total-upstream-outage case the holdover state exists for. It is a
// Gap, so single- and multi-server scenarios treat it identically.
func (s *MultiScenario) AddTotalOutage(from, to float64) {
	s.Gaps = append(s.Gaps, Gap{From: from, To: to})
}

// AddServerStep steps server k's clock by offset seconds during
// [from, to): the mid-run server-fault event (Figure 11b's 150 ms error
// writ arbitrary). Use math.Inf(1) for a permanent step.
func (s *MultiScenario) AddServerStep(server int, from, to, offset float64) {
	s.Servers[server].Server.Faults = append(s.Servers[server].Server.Faults,
		netem.FaultWindow{From: from, To: to, Offset: offset})
}

// AddServerDeathRestart takes server k down at `at` for downFor
// seconds and brings it back with its clock stepped by stepAfter — a
// reboot after which the server answers again but from a clock that
// lost the plot (stepAfter 0 models a clean restart). The step is
// permanent: a rebooted server's error persists until something
// corrects it, and the ensemble must evict, not wait it out.
func (s *MultiScenario) AddServerDeathRestart(server int, at, downFor, stepAfter float64) {
	s.AddOutage(server, at, at+downFor)
	if stepAfter != 0 {
		s.AddServerStep(server, at+downFor, math.Inf(1), stepAfter)
	}
}

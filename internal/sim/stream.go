package sim

// Pull-based trace generation: the streaming half of the evaluation
// pipeline. Generate/GenerateMulti materialize a whole trace in RAM,
// which caps experiments at what fits in memory; Stream and MultiStream
// produce the *bit-identical* exchange sequence one record at a time,
// so multi-week scenarios run in constant memory — the only state is
// the substrate models themselves, and the oscillator's random-walk
// cache is trimmed behind the emission front once trimming is enabled
// (SetTrim). The batch generators are thin collectors over the streams;
// stream_equiv_test.go pins bit-identity against the original batch
// implementations, which survive there as references.

import (
	"fmt"
	"math"

	"repro/internal/netem"
	"repro/internal/oscillator"
	"repro/internal/rng"
)

// trimMargin is how far behind the emission front the oscillator's
// random-walk cache is trimmed. Stamping queries the oscillator only
// between the previous emission and the current one plus a few
// milliseconds of RTT, so ten minutes of slack is vastly conservative
// and still bounds the cache at a few dozen steps.
const trimMargin = 600

// trimEvery is the emission interval between cache trims.
const trimEvery = 256

// Stream generates the exchanges of a single-server scenario one at a
// time. For a given scenario it yields exactly the sequence
// Generate(sc).Exchanges, bit for bit, without ever holding more than
// one exchange; Generate itself is implemented as a collector over it.
// A Stream is single-use and not safe for concurrent use.
type Stream struct {
	sc        Scenario
	osc       *oscillator.Oscillator
	host      *netem.HostStamp
	fwd, back *netem.Path
	srv       *netem.Server
	missSrc   *rng.Source
	dagSrc    *rng.Source
	pollSrc   *rng.Source

	n, i int
	trim bool
}

// NewStream validates the scenario and builds the substrate models,
// consuming the seed exactly as Generate does.
func NewStream(sc Scenario) (*Stream, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(sc.Seed)
	oscSrc := root.Split()
	fwdSrc := root.Split()
	backSrc := root.Split()
	srvSrc := root.Split()
	hostSrc := root.Split()
	missSrc := root.Split()
	dagSrc := root.Split()
	pollSrc := root.Split()

	osc, err := oscillator.New(sc.Oscillator, oscSrc.Uint64())
	if err != nil {
		return nil, err
	}
	fwd, err := netem.NewPath(sc.Server.Forward, fwdSrc)
	if err != nil {
		return nil, fmt.Errorf("sim: forward path: %w", err)
	}
	back, err := netem.NewPath(sc.Server.Backward, backSrc)
	if err != nil {
		return nil, fmt.Errorf("sim: backward path: %w", err)
	}
	srv, err := netem.NewServer(sc.Server.Server, srvSrc)
	if err != nil {
		return nil, err
	}
	host, err := netem.NewHostStamp(sc.Host, hostSrc)
	if err != nil {
		return nil, err
	}
	return &Stream{
		sc: sc, osc: osc, host: host, fwd: fwd, back: back, srv: srv,
		missSrc: missSrc, dagSrc: dagSrc, pollSrc: pollSrc,
		n: int(sc.Duration / sc.PollPeriod),
	}, nil
}

// Len returns the total number of exchanges the stream will emit
// (completed and lost).
func (st *Stream) Len() int { return st.n }

// Osc returns the oscillator realization driving the host stamps, for
// oracle rate references. After SetTrim(true) it only answers queries
// near or after the emission front.
func (st *Stream) Osc() *oscillator.Oscillator { return st.osc }

// SetTrim enables trimming the oscillator's random-walk cache behind
// the emission front: the one internal state that otherwise grows with
// trace duration. Trimming never changes emitted values; it only
// forbids oscillator queries far in the past, so leave it off when the
// caller needs the full Osc() history afterwards (Generate does).
func (st *Stream) SetTrim(on bool) { st.trim = on }

// Next emits the next exchange; ok is false when the stream is done.
func (st *Stream) Next() (ex Exchange, ok bool) {
	if st.i >= st.n {
		return Exchange{}, false
	}
	i := st.i
	st.i++

	sc := st.sc
	jitter := (st.pollSrc.Float64() - 0.5) * sc.PollJitterFrac * sc.PollPeriod
	tStamp := float64(i)*sc.PollPeriod + sc.PollPeriod/2 + jitter

	ex = Exchange{Seq: i}

	// Loss and outage gaps: the exchange never completes. Note the
	// path/server models are still *not* advanced: a lost packet
	// consumes no queueing draws, matching the paper's treatment of
	// loss as absence of data.
	lost := st.missSrc.Bool(sc.LossProb)
	for _, g := range sc.Gaps {
		if tStamp >= g.From && tStamp < g.To {
			lost = true
		}
	}
	if lost {
		ex.Lost = true
		return ex, true
	}

	stampExchange(&ex, tStamp, st.osc, st.host, st.fwd, st.back, st.srv, st.dagSrc, sc.DAGJitter)
	if st.trim && i%trimEvery == 0 {
		st.osc.TrimBefore(tStamp - trimMargin)
	}
	return ex, true
}

// MultiStream generates the exchanges of a multi-server scenario in
// emission order, one at a time: the lazy k-way merge of the per-server
// schedules. For a given scenario it yields exactly the sequence
// GenerateMulti(sc).Exchanges, bit for bit: each server's poll jitters
// are read from a fast-forwarded clone of the shared jitter stream (the
// batch generator draws them server-major before sorting), and every
// other model draw happens in merged emission order, exactly as the
// batch generator's sorted loop performs them. A MultiStream is
// single-use and not safe for concurrent use.
type MultiStream struct {
	sc   MultiScenario
	osc  *oscillator.Oscillator
	host *netem.HostStamp
	fwd  []*netem.Path
	back []*netem.Path
	srv  []*netem.Server
	miss []*rng.Source
	dag  *rng.Source

	// Per-server lazy schedules: jit[k] yields server k's jitters in
	// sequence order, nextT/nextSeq the server's pending emission
	// (nextSeq == perServer means exhausted).
	jit       []*rng.Source
	nextT     []float64
	nextSeq   []int
	perServer int
	emitted   int
	trim      bool
}

// NewMultiStream validates the scenario and builds the substrate
// models, consuming the seed exactly as GenerateMulti does.
func NewMultiStream(sc MultiScenario) (*MultiStream, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(sc.Seed)
	oscSrc := root.Split()
	hostSrc := root.Split()
	dagSrc := root.Split()
	pollSrc := root.Split()

	osc, err := oscillator.New(sc.Oscillator, oscSrc.Uint64())
	if err != nil {
		return nil, err
	}
	host, err := netem.NewHostStamp(sc.Host, hostSrc)
	if err != nil {
		return nil, err
	}

	nSrv := len(sc.Servers)
	st := &MultiStream{
		sc: sc, osc: osc, host: host, dag: dagSrc,
		fwd:  make([]*netem.Path, nSrv),
		back: make([]*netem.Path, nSrv),
		srv:  make([]*netem.Server, nSrv),
		miss: make([]*rng.Source, nSrv),
		jit:  make([]*rng.Source, nSrv),

		nextT:     make([]float64, nSrv),
		nextSeq:   make([]int, nSrv),
		perServer: int(sc.Duration / sc.PollPeriod),
	}
	for k, spec := range sc.Servers {
		if st.fwd[k], err = netem.NewPath(spec.Forward, root.Split()); err != nil {
			return nil, fmt.Errorf("sim: server %d forward path: %w", k, err)
		}
		if st.back[k], err = netem.NewPath(spec.Backward, root.Split()); err != nil {
			return nil, fmt.Errorf("sim: server %d backward path: %w", k, err)
		}
		if st.srv[k], err = netem.NewServer(spec.Server, root.Split()); err != nil {
			return nil, fmt.Errorf("sim: server %d: %w", k, err)
		}
		st.miss[k] = root.Split()
	}
	// The batch generator draws all jitters from one stream in
	// server-major order; server k's draws are positions
	// [k·perServer, (k+1)·perServer). A fast-forwarded clone per server
	// reads the identical subsequence lazily, in constant memory.
	for k := 0; k < nSrv; k++ {
		st.jit[k] = pollSrc.Clone()
		st.jit[k].SkipFloat64(k * st.perServer)
		st.nextSeq[k] = -1
		st.advanceServer(k)
	}
	return st, nil
}

// advanceServer draws server k's next emission slot.
func (st *MultiStream) advanceServer(k int) {
	st.nextSeq[k]++
	if st.nextSeq[k] >= st.perServer {
		st.nextT[k] = math.Inf(1)
		return
	}
	sc := st.sc
	jitter := (st.jit[k].Float64() - 0.5) * sc.PollJitterFrac * sc.PollPeriod
	st.nextT[k] = (float64(st.nextSeq[k])+0.5+float64(k)/float64(len(sc.Servers)))*sc.PollPeriod + jitter
}

// Len returns the total number of exchanges the stream will emit.
func (st *MultiStream) Len() int { return st.perServer * len(st.sc.Servers) }

// Osc returns the shared oscillator realization.
func (st *MultiStream) Osc() *oscillator.Oscillator { return st.osc }

// SetTrim enables oscillator cache trimming behind the emission front;
// see Stream.SetTrim.
func (st *MultiStream) SetTrim(on bool) { st.trim = on }

// Next emits the next exchange in global emission order; ok is false
// when every server's schedule is exhausted.
func (st *MultiStream) Next() (ex MultiExchange, ok bool) {
	// Linear argmin over the per-server pending slots: server counts are
	// single digits, and the deterministic lowest-index tie-break keeps
	// the merge reproducible.
	k, t := -1, math.Inf(1)
	for j := range st.nextT {
		if st.nextT[j] < t {
			k, t = j, st.nextT[j]
		}
	}
	if k < 0 {
		return MultiExchange{}, false
	}
	sc := st.sc
	ex = MultiExchange{Server: k, Exchange: Exchange{Seq: st.nextSeq[k]}}

	lost := st.miss[k].Bool(sc.LossProb)
	for _, g := range sc.Gaps {
		if t >= g.From && t < g.To {
			lost = true
		}
	}
	// The fault schedule (outages, partitions) is consulted only for
	// exchanges still alive, so an all-clear schedule draws nothing and
	// leaves the trace bit-identical.
	if !lost {
		lost = sc.faultLost(k, t, st.miss[k])
	}
	if lost {
		ex.Lost = true
	} else {
		stampExchange(&ex.Exchange, t, st.osc, st.host, st.fwd[k], st.back[k], st.srv[k], st.dag, sc.DAGJitter)
	}
	st.advanceServer(k)
	st.emitted++
	if st.trim && st.emitted%trimEvery == 0 {
		st.osc.TrimBefore(t - trimMargin)
	}
	return ex, true
}

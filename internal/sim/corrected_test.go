package sim

import (
	"testing"

	"repro/internal/timebase"
)

// TestCorrectedStampOrdering: the corrected receive stamp removes only
// the detectable excess latency, so TfCorr is never after Tf and never
// before the true arrival.
func TestCorrectedStampOrdering(t *testing.T) {
	tr, err := Generate(shortScenario(91))
	if err != nil {
		t.Fatal(err)
	}
	p := tr.Osc.MeanPeriod()
	excursions := 0
	for _, e := range tr.Completed() {
		if e.TfCorr > e.Tf {
			t.Fatalf("corrected stamp %d after raw stamp %d", e.TfCorr, e.Tf)
		}
		if e.TfCorr < e.Tf {
			excursions++
		}
		// The corrected stamp still trails the true arrival by the base
		// interrupt latency: a few µs, never more than ~20 µs.
		lag := timebase.CounterSpan(tr.Osc.ReadTSC(e.TrueTf), e.TfCorr, p)
		if lag < -1e-9 || lag > 20*timebase.Microsecond {
			t.Fatalf("corrected stamp lag %v outside the base mode", lag)
		}
	}
	if excursions == 0 {
		t.Error("no correctable excursions in the whole trace")
	}
}

// TestCorrectedStampReducesNoise: the detrended offset series built from
// corrected stamps must have a smaller spread than from raw stamps
// (the paper's reason for the correction, Section 2.4/Figure 3).
func TestCorrectedStampReducesNoise(t *testing.T) {
	tr, err := Generate(NewScenario(MachineRoom, ServerInt(), 16, 12*timebase.Hour, 92))
	if err != nil {
		t.Fatal(err)
	}
	ex := tr.Completed()
	spread := func(corrected bool) float64 {
		stamp := func(e Exchange) uint64 {
			if corrected {
				return e.TfCorr
			}
			return e.Tf
		}
		first, last := ex[0], ex[len(ex)-1]
		pBar := (last.Tg - first.Tg) / float64(stamp(last)-stamp(first))
		var maxDev, minDev float64
		for _, e := range ex {
			th := float64(stamp(e)-stamp(first))*pBar - (e.Tg - first.Tg)
			if th > maxDev {
				maxDev = th
			}
			if th < minDev {
				minDev = th
			}
		}
		return maxDev - minDev
	}
	raw, corr := spread(false), spread(true)
	if corr >= raw {
		t.Errorf("corrected spread %v not below raw %v", corr, raw)
	}
}

package sim

import (
	"math"
	"sort"
	"testing"

	"repro/internal/netem"
	"repro/internal/timebase"
)

func shortScenario(seed uint64) Scenario {
	sc := NewScenario(MachineRoom, ServerInt(), 16, 6*timebase.Hour, seed)
	return sc
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(shortScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(shortScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Exchanges) != len(b.Exchanges) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Exchanges), len(b.Exchanges))
	}
	for i := range a.Exchanges {
		if a.Exchanges[i] != b.Exchanges[i] {
			t.Fatalf("exchange %d differs", i)
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a, _ := Generate(shortScenario(1))
	b, _ := Generate(shortScenario(2))
	same := 0
	for i := range a.Exchanges {
		if a.Exchanges[i] == b.Exchanges[i] {
			same++
		}
	}
	if same > len(a.Exchanges)/10 {
		t.Errorf("seeds 1 and 2 share %d/%d exchanges", same, len(a.Exchanges))
	}
}

func TestEventOrdering(t *testing.T) {
	tr, err := Generate(shortScenario(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Completed() {
		if !(e.TrueTa < e.TrueTb && e.TrueTb < e.TrueTe && e.TrueTe < e.TrueTf) {
			t.Fatalf("event order violated: %+v", e)
		}
		if e.Tf <= e.Ta {
			t.Fatalf("counter stamps not ordered: %+v", e)
		}
		if e.Te < e.Tb {
			t.Fatalf("server stamps reversed: %+v", e)
		}
	}
}

func TestCausalityOfStamps(t *testing.T) {
	// Ta is taken before the true departure; Tf after the true arrival;
	// the DAG stamp is within jitter of the true arrival.
	tr, err := Generate(shortScenario(4))
	if err != nil {
		t.Fatal(err)
	}
	p := tr.Osc.MeanPeriod()
	for _, e := range tr.Completed() {
		if math.Abs(e.Tg-e.TrueTf) > 1e-6 {
			t.Fatalf("DAG stamp %v far from true arrival %v", e.Tg, e.TrueTf)
		}
		// Counter reading order: Ta stamp time < ta, Tf stamp time > tf.
		// We can only verify via reconstructed durations: the measured
		// RTT (counter span) must exceed the DAG-visible span tg - ta
		// minus DAG jitter, because Tf is stamped late.
		measured := timebase.CounterSpan(e.Ta, e.Tf, p)
		oracle := e.TrueTf - e.TrueTa
		if measured < oracle-2e-6 {
			t.Fatalf("measured RTT %v below oracle %v", measured, oracle)
		}
		if measured > oracle+5*timebase.Millisecond {
			t.Fatalf("measured RTT %v wildly above oracle %v", measured, oracle)
		}
	}
}

func TestRTTAboveMinimum(t *testing.T) {
	tr, err := Generate(shortScenario(5))
	if err != nil {
		t.Fatal(err)
	}
	min := tr.Scenario.Server.MinRTT()
	for _, e := range tr.Completed() {
		if e.RTTTrue() < min {
			t.Fatalf("oracle RTT %v below configured minimum %v", e.RTTTrue(), min)
		}
	}
	if got := tr.MinObservedRTT(); got > min+40*timebase.Microsecond {
		t.Errorf("observed min RTT %v far above configured %v over 6 h", got, min)
	}
}

func TestTable2Characteristics(t *testing.T) {
	// The three server presets must reproduce the paper's Table 2.
	cases := []struct {
		spec      ServerSpec
		rtt, asym float64
		hops      int
	}{
		{ServerLoc(), 0.38e-3, 50e-6, 2},
		{ServerInt(), 0.89e-3, 50e-6, 5},
		{ServerExt(), 14.2e-3, 500e-6, 10},
	}
	for _, c := range cases {
		if got := c.spec.MinRTT(); math.Abs(got-c.rtt) > 0.02e-3 {
			t.Errorf("%s: min RTT %v, want ~%v", c.spec.Name, got, c.rtt)
		}
		if got := c.spec.Asymmetry(); math.Abs(got-c.asym) > 5e-6 {
			t.Errorf("%s: asymmetry %v, want ~%v", c.spec.Name, got, c.asym)
		}
		if c.spec.Forward.Hops != c.hops {
			t.Errorf("%s: hops %d, want %d", c.spec.Name, c.spec.Forward.Hops, c.hops)
		}
	}
}

func TestLossAndGaps(t *testing.T) {
	sc := shortScenario(6)
	sc.LossProb = 0.01
	sc.Gaps = []Gap{{From: 3600, To: 7200}}
	tr, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if tr.LossCount() == 0 {
		t.Fatal("no losses at 1% loss probability")
	}
	for _, e := range tr.Exchanges {
		nominal := float64(e.Seq)*sc.PollPeriod + sc.PollPeriod/2
		inGap := nominal >= 3600+1 && nominal < 7200-1
		if inGap && !e.Lost {
			t.Fatalf("exchange %d at ~%v completed inside gap", e.Seq, nominal)
		}
		if e.Lost && (e.Ta != 0 || e.Tf != 0) {
			t.Fatalf("lost exchange %d carries raw data", e.Seq)
		}
	}
	// Completed list must exclude all lost ones.
	if got := len(tr.Completed()) + tr.LossCount(); got != len(tr.Exchanges) {
		t.Errorf("completed+lost = %d, want %d", got, len(tr.Exchanges))
	}
}

func TestServerFaultVisibleInStamps(t *testing.T) {
	sc := shortScenario(7)
	sc.Server.Server.Faults = []netem.FaultWindow{{From: 1000, To: 1300, Offset: 150 * timebase.Millisecond}}
	tr, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	seenFault := false
	for _, e := range tr.Completed() {
		err := e.Tb - e.TrueTb
		if e.TrueTb > 1000 && e.TrueTb < 1300 {
			if err > 0.14 {
				seenFault = true
			}
		} else if math.Abs(err) > timebase.Millisecond {
			t.Fatalf("server stamp error %v outside fault window at t=%v", err, e.TrueTb)
		}
	}
	if !seenFault {
		t.Error("fault window produced no faulty stamps")
	}
}

func TestNaiveOffsetBiasNegative(t *testing.T) {
	// Forward path is more utilised than backward; the naive offset noise
	// (q< - q>)/2 must be biased negative on average (Figure 6).
	sc := NewScenario(MachineRoom, ServerInt(), 16, timebase.Day, 8)
	tr, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	var diffs []float64
	for _, e := range tr.Completed() {
		qf := (e.TrueTb - e.TrueTa) - sc.Server.Forward.MinDelay
		qb := (e.TrueTf - e.TrueTe) - sc.Server.Backward.MinDelay
		diffs = append(diffs, (qb-qf)/2)
	}
	// The episode component is heavy-tailed (infinite variance), so test
	// the median, the robust location statistic the paper itself uses.
	sort.Float64s(diffs)
	if med := diffs[len(diffs)/2]; med >= 0 {
		t.Errorf("median (q< - q>)/2 = %v, want negative", med)
	}
}

func TestScenarioValidate(t *testing.T) {
	sc := shortScenario(1)
	sc.PollPeriod = 0
	if _, err := Generate(sc); err == nil {
		t.Error("zero poll period accepted")
	}
	sc = shortScenario(1)
	sc.LossProb = 1.5
	if _, err := Generate(sc); err == nil {
		t.Error("loss probability > 1 accepted")
	}
	sc = shortScenario(1)
	sc.Duration = -3
	if _, err := Generate(sc); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestEnvironmentString(t *testing.T) {
	if Laboratory.String() != "Lab" || MachineRoom.String() != "MR" {
		t.Error("environment names wrong")
	}
	sc := NewScenario(Laboratory, ServerLoc(), 16, 100, 1)
	if sc.Name != "Lab-ServerLoc" {
		t.Errorf("scenario name = %q", sc.Name)
	}
}

func BenchmarkGenerateDay(b *testing.B) {
	sc := NewScenario(MachineRoom, ServerInt(), 16, timebase.Day, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc.Seed = uint64(i + 1)
		if _, err := Generate(sc); err != nil {
			b.Fatal(err)
		}
	}
}

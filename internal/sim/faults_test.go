package sim

import (
	"math"
	"testing"

	"repro/internal/timebase"
)

// chaosScenario builds a jitter-free, loss-free scenario so fault
// windows map exactly onto emission times: server k's poll i emits at
// (i + 1/2 + k/3)·poll.
func chaosScenario(seed uint64) MultiScenario {
	sc := NewMultiScenario(MachineRoom, threeServers(), 16, 6*timebase.Hour, seed)
	sc.PollJitterFrac = 0
	sc.LossProb = 0
	return sc
}

// emissionTime reconstructs the jitter-free schedule slot of an
// exchange, which Lost records do not carry.
func emissionTime(sc MultiScenario, e MultiExchange) float64 {
	return (float64(e.Seq) + 0.5 + float64(e.Server)/float64(len(sc.Servers))) * sc.PollPeriod
}

func TestFaultScheduleDeterministic(t *testing.T) {
	build := func() MultiScenario {
		sc := NewMultiScenario(MachineRoom, threeServers(), 16, 6*timebase.Hour, 77)
		sc.AddOutage(0, timebase.Hour, 2*timebase.Hour)
		sc.AddFlaky(1, 2*timebase.Hour, 3*timebase.Hour, 0.5)
		sc.AddPartition([]int{1, 2}, 4*timebase.Hour, 5*timebase.Hour)
		sc.AddServerStep(2, 3*timebase.Hour, 4*timebase.Hour, 2*timebase.Millisecond)
		return sc
	}
	a, err := GenerateMulti(build())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateMulti(build())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Exchanges) != len(b.Exchanges) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Exchanges), len(b.Exchanges))
	}
	for i := range a.Exchanges {
		if a.Exchanges[i] != b.Exchanges[i] {
			t.Fatalf("exchange %d differs between identical fault runs", i)
		}
	}
}

func TestOutageBlackholesOneServer(t *testing.T) {
	sc := chaosScenario(5)
	from, to := timebase.Hour, 2*timebase.Hour
	sc.AddOutage(1, from, to)
	tr, err := GenerateMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range tr.Exchanges {
		at := emissionTime(sc, e)
		inWindow := at >= from && at < to
		wantLost := inWindow && e.Server == 1
		if e.Lost != wantLost {
			t.Fatalf("exchange %d (server %d at %v): Lost=%v, want %v",
				i, e.Server, at, e.Lost, wantLost)
		}
	}
}

func TestPartitionBlackholesSubset(t *testing.T) {
	sc := chaosScenario(6)
	from, to := timebase.Hour, 90*timebase.Minute
	sc.AddPartition([]int{0, 2}, from, to)
	tr, err := GenerateMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range tr.Exchanges {
		at := emissionTime(sc, e)
		inWindow := at >= from && at < to
		wantLost := inWindow && (e.Server == 0 || e.Server == 2)
		if e.Lost != wantLost {
			t.Fatalf("exchange %d (server %d at %v): Lost=%v, want %v",
				i, e.Server, at, e.Lost, wantLost)
		}
	}
}

func TestTotalOutageBlackholesEveryone(t *testing.T) {
	sc := chaosScenario(7)
	from, to := 2*timebase.Hour, 3*timebase.Hour
	sc.AddTotalOutage(from, to)
	tr, err := GenerateMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	sawInWindow := 0
	for i, e := range tr.Exchanges {
		at := emissionTime(sc, e)
		inWindow := at >= from && at < to
		if inWindow {
			sawInWindow++
		}
		if e.Lost != inWindow {
			t.Fatalf("exchange %d (server %d at %v): Lost=%v, want %v",
				i, e.Server, at, e.Lost, inWindow)
		}
	}
	if sawInWindow == 0 {
		t.Fatal("no exchanges scheduled inside the outage window")
	}
}

// TestFlakyWindowIsPartial: a 50% flaky window loses some but not all
// exchanges of the flaky server, deterministically, and no one else.
func TestFlakyWindowIsPartial(t *testing.T) {
	sc := chaosScenario(8)
	from, to := timebase.Hour, 3*timebase.Hour
	sc.AddFlaky(2, from, to, 0.5)
	tr, err := GenerateMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	lost, completed := 0, 0
	for i, e := range tr.Exchanges {
		at := emissionTime(sc, e)
		inWindow := at >= from && at < to
		if e.Server == 2 && inWindow {
			if e.Lost {
				lost++
			} else {
				completed++
			}
			continue
		}
		if e.Lost {
			t.Fatalf("exchange %d (server %d at %v) lost outside the flaky window", i, e.Server, at)
		}
	}
	// 450 window polls at p=0.5: both counts far from zero.
	if lost < 100 || completed < 100 {
		t.Errorf("flaky window lost=%d completed=%d, want a genuine mix", lost, completed)
	}
}

// TestStepScheduleShiftsOnlyServerStamps: a fault schedule that only
// lies (no loss) leaves every exchange bit-identical to the no-fault
// control except the faulted server's own stamps inside the window,
// which shift by exactly the injected offset.
func TestStepScheduleShiftsOnlyServerStamps(t *testing.T) {
	const step = 2 * timebase.Millisecond
	from, to := timebase.Hour, 2*timebase.Hour

	control, err := GenerateMulti(chaosScenario(9))
	if err != nil {
		t.Fatal(err)
	}
	sc := chaosScenario(9)
	sc.AddServerStep(1, from, to, step)
	faulted, err := GenerateMulti(sc)
	if err != nil {
		t.Fatal(err)
	}

	if len(control.Exchanges) != len(faulted.Exchanges) {
		t.Fatalf("lengths differ: %d vs %d", len(control.Exchanges), len(faulted.Exchanges))
	}
	shifted := 0
	for i := range control.Exchanges {
		g, f := control.Exchanges[i], faulted.Exchanges[i]
		at := emissionTime(sc, g)
		if g.Server == 1 && at >= from && at < to {
			if math.Abs(f.Tb-g.Tb-step) > 1e-12 || math.Abs(f.Te-g.Te-step) > 1e-12 {
				t.Fatalf("exchange %d: stamps shifted by (%v, %v), want %v",
					i, f.Tb-g.Tb, f.Te-g.Te, step)
			}
			// Host-side stamps and true times must be untouched: the
			// server lies, the network does not change.
			f.Tb, f.Te = g.Tb, g.Te
		}
		if g != f {
			t.Fatalf("exchange %d (server %d at %v) differs beyond the injected step", i, g.Server, at)
		}
		if g.Server == 1 && at >= from && at < to {
			shifted++
		}
	}
	if shifted == 0 {
		t.Fatal("no exchanges inside the step window")
	}
}

// TestDeathRestartComposition: down for the outage, back afterwards
// with a permanently stepped clock.
func TestDeathRestartComposition(t *testing.T) {
	const step = 5 * timebase.Millisecond
	sc := chaosScenario(10)
	at, downFor := 2*timebase.Hour, 30*timebase.Minute
	sc.AddServerDeathRestart(1, at, downFor, step)
	tr, err := GenerateMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	afterRestart := 0
	for i, e := range tr.Exchanges {
		et := emissionTime(sc, e)
		if e.Server != 1 {
			if e.Lost {
				t.Fatalf("exchange %d: healthy server %d lost at %v", i, e.Server, et)
			}
			continue
		}
		switch {
		case et >= at && et < at+downFor:
			if !e.Lost {
				t.Fatalf("exchange %d: dead server answered at %v", i, et)
			}
		case et >= at+downFor:
			if e.Lost {
				t.Fatalf("exchange %d: restarted server lost at %v", i, et)
			}
			// The restarted server's stamps carry the permanent step
			// (clock error dwarfs µs-scale stamp noise and wander).
			if errAt := (e.Tb+e.Te)/2 - (e.TrueTb+e.TrueTe)/2; math.Abs(errAt-step) > timebase.Millisecond {
				t.Fatalf("exchange %d: restarted server clock error %v, want ≈%v", i, errAt, step)
			}
			afterRestart++
		default:
			if e.Lost {
				t.Fatalf("exchange %d: server lost before its death at %v", i, et)
			}
		}
	}
	if afterRestart == 0 {
		t.Fatal("no exchanges after the restart")
	}
}

// TestEmptyScheduleLeavesTraceUntouched: adding no faults must not
// change a single bit relative to the schedule-free generator.
func TestEmptyScheduleLeavesTraceUntouched(t *testing.T) {
	base, err := GenerateMulti(NewMultiScenario(MachineRoom, threeServers(), 16, 6*timebase.Hour, 42))
	if err != nil {
		t.Fatal(err)
	}
	sc := NewMultiScenario(MachineRoom, threeServers(), 16, 6*timebase.Hour, 42)
	sc.Outages = []ServerOutage{}
	sc.Partitions = []Partition{}
	with, err := GenerateMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Exchanges) != len(with.Exchanges) {
		t.Fatalf("lengths differ: %d vs %d", len(base.Exchanges), len(with.Exchanges))
	}
	for i := range base.Exchanges {
		if base.Exchanges[i] != with.Exchanges[i] {
			t.Fatalf("exchange %d differs with an empty fault schedule", i)
		}
	}
}

// TestMultiStreamFaultsMatchBatch: the streaming generator emits the
// identical faulted sequence (GenerateMulti is a collector over it, so
// this pins the trim path too).
func TestMultiStreamFaultsMatchBatch(t *testing.T) {
	sc := NewMultiScenario(MachineRoom, threeServers(), 16, 6*timebase.Hour, 13)
	sc.AddOutage(0, timebase.Hour, 2*timebase.Hour)
	sc.AddFlaky(1, 2*timebase.Hour, 3*timebase.Hour, 0.3)
	batch, err := GenerateMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewMultiStream(sc)
	if err != nil {
		t.Fatal(err)
	}
	st.SetTrim(true)
	for i := 0; ; i++ {
		ex, ok := st.Next()
		if !ok {
			if i != len(batch.Exchanges) {
				t.Fatalf("stream emitted %d exchanges, batch %d", i, len(batch.Exchanges))
			}
			break
		}
		if ex != batch.Exchanges[i] {
			t.Fatalf("exchange %d differs between stream and batch", i)
		}
	}
}

func TestFaultScheduleValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*MultiScenario)
	}{
		{"outage server out of range", func(sc *MultiScenario) { sc.AddOutage(3, 0, 1) }},
		{"outage negative server", func(sc *MultiScenario) { sc.AddOutage(-1, 0, 1) }},
		{"outage empty window", func(sc *MultiScenario) { sc.AddOutage(0, 5, 5) }},
		{"outage reversed window", func(sc *MultiScenario) { sc.AddOutage(0, 5, 4) }},
		{"flaky probability above one", func(sc *MultiScenario) { sc.AddFlaky(0, 0, 1, 1.5) }},
		{"partition without servers", func(sc *MultiScenario) { sc.AddPartition(nil, 0, 1) }},
		{"partition server out of range", func(sc *MultiScenario) { sc.AddPartition([]int{0, 7}, 0, 1) }},
		{"partition empty window", func(sc *MultiScenario) { sc.AddPartition([]int{0}, 2, 2) }},
	}
	for _, tc := range cases {
		sc := chaosScenario(1)
		tc.mut(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	ok := chaosScenario(1)
	ok.AddOutage(0, 0, 1)
	ok.AddFlaky(1, 0, 1, 0.5)
	ok.AddPartition([]int{1, 2}, 0, 1)
	if err := ok.Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

// Package sim composes the substrate models (oscillator, network paths,
// server, host timestamping) into the full measurement setup of the
// paper's Figure 1 and generates deterministic traces of NTP exchanges.
//
// Each exchange record carries two views:
//
//   - the raw data available to the synchronization algorithms — the host
//     counter stamps Ta, Tf and the server payload stamps Tb, Te;
//   - the reference data available only to the evaluation — the
//     DAG-monitor stamp Tg of the returning packet (true time plus
//     ~100 ns jitter, already corrected by the 7.2 µs first-bit offset)
//     and the oracle event times ta, tb, te, tf.
//
// The three stratum-1 servers of the paper's Table 2 (ServerLoc,
// ServerInt, ServerExt) and the two temperature environments (laboratory,
// machine room) are provided as presets, so every experiment names its
// setup the way the paper does (e.g. "MR-Int").
//
//repro:deterministic
package sim

import (
	"fmt"
	"math"

	"repro/internal/netem"
	"repro/internal/oscillator"
	"repro/internal/rng"
	"repro/internal/timebase"
)

// ServerSpec bundles the two path directions and the server model that
// together realize one host-server environment.
type ServerSpec struct {
	Name           string
	Reference      string // "GPS" or "Atomic"
	DistanceMeters float64
	Forward        netem.PathConfig
	Backward       netem.PathConfig
	Server         netem.ServerConfig
}

// MinRTT returns the deterministic minimum round-trip time
// r = d> + d^ + d< implied by the spec (before any level shifts).
func (s ServerSpec) MinRTT() float64 {
	return s.Forward.MinDelay + s.Server.MinProc + s.Backward.MinDelay
}

// Asymmetry returns the path asymmetry Delta = d> - d<.
func (s ServerSpec) Asymmetry() float64 {
	return s.Forward.MinDelay - s.Backward.MinDelay
}

// ServerLoc models the laboratory-local stratum-1 server: 3 m away, two
// hops, 0.38 ms minimum RTT, ~50 µs path asymmetry (Table 2).
func ServerLoc() ServerSpec {
	return ServerSpec{
		Name:           "ServerLoc",
		Reference:      "GPS",
		DistanceMeters: 3,
		Forward: netem.PathConfig{
			MinDelay:            206 * timebase.Microsecond,
			Hops:                2,
			BaseQueueMean:       10 * timebase.Microsecond,
			DiurnalAmplitude:    0.3,
			DiurnalPeak:         15 * timebase.Hour,
			EpisodeMeanGap:      4 * timebase.Hour,
			EpisodeMeanDuration: 4 * timebase.Minute,
			EpisodeScale:        0.4 * timebase.Millisecond,
			EpisodeShape:        1.7,
		},
		Backward: netem.PathConfig{
			MinDelay:            156 * timebase.Microsecond,
			Hops:                2,
			BaseQueueMean:       8 * timebase.Microsecond,
			DiurnalAmplitude:    0.25,
			DiurnalPeak:         15 * timebase.Hour,
			EpisodeMeanGap:      5 * timebase.Hour,
			EpisodeMeanDuration: 4 * timebase.Minute,
			EpisodeScale:        0.35 * timebase.Millisecond,
			EpisodeShape:        1.7,
		},
		Server: netem.DefaultServer(),
	}
}

// ServerInt models the organization-internal stratum-1 server: 300 m,
// five hops, 0.89 ms minimum RTT, ~50 µs asymmetry, verifiably symmetric
// route (Table 2). The forward path is more heavily utilised than the
// backward one, which biases naive offset estimates negative (Figure 6).
func ServerInt() ServerSpec {
	return ServerSpec{
		Name:           "ServerInt",
		Reference:      "GPS",
		DistanceMeters: 300,
		Forward: netem.PathConfig{
			MinDelay:            461 * timebase.Microsecond,
			Hops:                5,
			BaseQueueMean:       28 * timebase.Microsecond,
			DiurnalAmplitude:    0.4,
			DiurnalPeak:         14 * timebase.Hour,
			EpisodeMeanGap:      2.5 * timebase.Hour,
			EpisodeMeanDuration: 5 * timebase.Minute,
			EpisodeScale:        0.8 * timebase.Millisecond,
			EpisodeShape:        1.6,
		},
		Backward: netem.PathConfig{
			MinDelay:            411 * timebase.Microsecond,
			Hops:                5,
			BaseQueueMean:       16 * timebase.Microsecond,
			DiurnalAmplitude:    0.3,
			DiurnalPeak:         14 * timebase.Hour,
			EpisodeMeanGap:      3.5 * timebase.Hour,
			EpisodeMeanDuration: 5 * timebase.Minute,
			EpisodeScale:        0.6 * timebase.Millisecond,
			EpisodeShape:        1.6,
		},
		Server: netem.DefaultServer(),
	}
}

// ServerExt models the remote stratum-1 server: ~1000 km, ~10 hops,
// 14.2 ms minimum RTT, ~500 µs asymmetry, atomic-clock reference
// (Table 2). Congestion is heavier and quality packets rarer.
func ServerExt() ServerSpec {
	spec := ServerSpec{
		Name:           "ServerExt",
		Reference:      "Atomic",
		DistanceMeters: 1e6,
		Forward: netem.PathConfig{
			MinDelay:            7341 * timebase.Microsecond,
			Hops:                10,
			BaseQueueMean:       110 * timebase.Microsecond,
			DiurnalAmplitude:    0.5,
			DiurnalPeak:         14 * timebase.Hour,
			EpisodeMeanGap:      70 * timebase.Minute,
			EpisodeMeanDuration: 8 * timebase.Minute,
			EpisodeScale:        2.2 * timebase.Millisecond,
			EpisodeShape:        1.5,
		},
		Backward: netem.PathConfig{
			MinDelay:            6841 * timebase.Microsecond,
			Hops:                10,
			BaseQueueMean:       85 * timebase.Microsecond,
			DiurnalAmplitude:    0.45,
			DiurnalPeak:         14 * timebase.Hour,
			EpisodeMeanGap:      90 * timebase.Minute,
			EpisodeMeanDuration: 8 * timebase.Minute,
			EpisodeScale:        1.8 * timebase.Millisecond,
			EpisodeShape:        1.5,
		},
		Server: netem.DefaultServer(),
	}
	// The atomic reference has slightly different residual wander.
	spec.Server.ClockWanderAmp = 1 * timebase.Microsecond
	return spec
}

// Gap is an interval during which no exchanges complete (loss of
// connectivity, trace-collection outage).
type Gap struct {
	From, To float64
}

// Scenario fully describes a trace to generate.
type Scenario struct {
	Name       string
	Oscillator oscillator.Config
	Host       netem.HostStampConfig
	Server     ServerSpec

	// PollPeriod is the NTP polling period in seconds (the paper uses
	// 16 for dense data and 64-256 as standard defaults).
	PollPeriod float64
	// PollJitterFrac dithers emission times by +-frac/2 of the period so
	// the trace does not beat against periodic model components.
	PollJitterFrac float64

	// Duration of the trace in seconds.
	Duration float64

	// LossProb is the per-exchange loss probability; Gaps are wholesale
	// outage windows.
	LossProb float64
	Gaps     []Gap

	// DAGJitter is the reference monitor's timestamping noise (1 sigma).
	DAGJitter float64

	Seed uint64
}

// Validate reports scenario configuration errors.
func (s Scenario) Validate() error {
	if !(s.PollPeriod > 0) {
		return fmt.Errorf("sim: PollPeriod must be positive")
	}
	if !(s.Duration > 0) {
		return fmt.Errorf("sim: Duration must be positive")
	}
	if s.LossProb < 0 || s.LossProb >= 1 {
		return fmt.Errorf("sim: LossProb %v outside [0,1)", s.LossProb)
	}
	if s.PollJitterFrac < 0 || s.PollJitterFrac >= 1 {
		return fmt.Errorf("sim: PollJitterFrac %v outside [0,1)", s.PollJitterFrac)
	}
	return nil
}

// Environment selects the temperature environment preset.
type Environment int

// Environments of the paper's Section 3.1.
const (
	Laboratory Environment = iota
	MachineRoom
)

// String implements fmt.Stringer using the paper's abbreviations.
func (e Environment) String() string {
	switch e {
	case Laboratory:
		return "Lab"
	case MachineRoom:
		return "MR"
	default:
		return fmt.Sprintf("Environment(%d)", int(e))
	}
}

// NewScenario assembles a standard scenario in the paper's terms, e.g.
// NewScenario(MachineRoom, ServerInt(), 16, 3*timebase.Week, seed) is the
// "MR-Int" dataset behind Figures 8, 9 and 12.
func NewScenario(env Environment, server ServerSpec, poll, duration float64, seed uint64) Scenario {
	var osc oscillator.Config
	switch env {
	case Laboratory:
		osc = oscillator.Laboratory()
	default:
		osc = oscillator.MachineRoom()
	}
	return Scenario{
		Name:           fmt.Sprintf("%s-%s", env, server.Name),
		Oscillator:     osc,
		Host:           netem.DefaultHostStamp(),
		Server:         server,
		PollPeriod:     poll,
		PollJitterFrac: 0.02,
		Duration:       duration,
		LossProb:       0.0015,
		DAGJitter:      100 * timebase.Nanosecond,
		Seed:           seed,
	}
}

// Exchange is one completed (or lost) NTP request/response.
type Exchange struct {
	Seq int

	// Raw data visible to the synchronization algorithm.
	Ta, Tf uint64  // host counter stamps
	Tb, Te float64 // server payload stamps, seconds

	// Reference data visible only to the evaluation.
	Tg                             float64 // corrected DAG stamp of the response arrival
	TrueTa, TrueTb, TrueTe, TrueTf float64 // oracle event times
	// TfCorr is the "corrected Tf" of the paper's Section 2.4: the
	// receive stamp with the DAG-detectable interrupt-latency side modes
	// and scheduling excursions removed, leaving only the irreducible
	// ~5 µs mode. Used by the stability analysis (Figure 3).
	TfCorr uint64

	// Lost marks exchanges that never completed; their raw fields are
	// zero and must not be consumed by the algorithms.
	Lost bool
}

// RTTTrue returns the oracle round-trip time r_i = tf - ta.
func (e Exchange) RTTTrue() float64 { return e.TrueTf - e.TrueTa }

// Trace is a generated dataset plus everything needed to evaluate
// estimators against ground truth.
type Trace struct {
	Scenario  Scenario
	Exchanges []Exchange

	// Osc is the oscillator realization that produced the host stamps;
	// experiments use it for oracle rate references.
	Osc *oscillator.Oscillator
}

// Generate produces the deterministic trace described by the scenario,
// materialized in memory: a collector over the pull-based Stream, which
// emits the identical exchange sequence one record at a time for
// workloads too long to hold resident.
func Generate(sc Scenario) (*Trace, error) {
	st, err := NewStream(sc)
	if err != nil {
		return nil, err
	}
	exchanges := make([]Exchange, 0, st.Len())
	for {
		ex, ok := st.Next()
		if !ok {
			break
		}
		exchanges = append(exchanges, ex)
	}
	return &Trace{Scenario: sc, Exchanges: exchanges, Osc: st.Osc()}, nil
}

// stampExchange realizes one completed exchange emitted at tStamp
// through the given path and server models, stamping with the shared
// oscillator, host model and DAG monitor. Both generators (Generate
// and GenerateMulti) run this exact sequence, so single-server and
// multi-server traces always model stamping identically — the
// ensemble experiments compare clocks across the two.
func stampExchange(ex *Exchange, tStamp float64, osc *oscillator.Oscillator,
	host *netem.HostStamp, fwd, back *netem.Path, srv *netem.Server,
	dagSrc *rng.Source, dagJitter float64) {
	// Host stamps Ta slightly before the true departure.
	ta := tStamp + host.SendLead()
	ex.Ta = osc.ReadTSC(tStamp)
	ex.TrueTa = ta

	tb := ta + fwd.Delay(ta)
	ex.TrueTb = tb
	ex.Tb = srv.StampArrival(tb)

	te := tb + srv.Turnaround()
	ex.TrueTe = te
	ex.Te = srv.StampDeparture(te)

	tf := te + back.Delay(te)
	ex.TrueTf = tf
	// The DAG taps the wire just before the host interface; its
	// corrected stamp is true arrival plus reference jitter.
	ex.Tg = tf + dagSrc.Normal(0, dagJitter)
	// The host's driver stamp follows the arrival by the interrupt
	// latency (plus rare scheduling excursions); the corrected stamp
	// keeps only the irreducible base latency.
	lagBase, lagExtra := host.RecvLagParts()
	ex.TfCorr = osc.ReadTSC(tf + lagBase)
	ex.Tf = osc.ReadTSC(tf + lagBase + lagExtra)
}

// Completed returns the non-lost exchanges.
func (tr *Trace) Completed() []Exchange {
	out := make([]Exchange, 0, len(tr.Exchanges))
	for _, e := range tr.Exchanges {
		if !e.Lost {
			out = append(out, e)
		}
	}
	return out
}

// LossCount returns the number of lost exchanges.
func (tr *Trace) LossCount() int {
	n := 0
	for _, e := range tr.Exchanges {
		if e.Lost {
			n++
		}
	}
	return n
}

// MinObservedRTT returns the smallest oracle RTT among completed
// exchanges, used to validate Table 2 style characterizations.
func (tr *Trace) MinObservedRTT() float64 {
	m := math.Inf(1)
	for _, e := range tr.Exchanges {
		if !e.Lost && e.RTTTrue() < m {
			m = e.RTTTrue()
		}
	}
	return m
}

package sim

import (
	"fmt"
	"math"

	"repro/internal/netem"
	"repro/internal/oscillator"
)

// MultiScenario describes a multi-server trace: ONE host (one
// oscillator, one timestamping model) polling several NTP servers over
// independent network paths. Sharing the oscillator is the point — the
// per-server engines of an ensemble then calibrate the same counter,
// making their clocks comparable, exactly as on a real host.
//
// Each server is polled every PollPeriod with its schedule staggered by
// k·PollPeriod/N, the interleaving a MultiLive deployment produces.
type MultiScenario struct {
	Name       string
	Oscillator oscillator.Config
	Host       netem.HostStampConfig
	Servers    []ServerSpec

	// PollPeriod is the per-server polling period in seconds;
	// PollJitterFrac dithers each emission by ±frac/2 of the period.
	PollPeriod     float64
	PollJitterFrac float64

	// Duration of the trace in seconds.
	Duration float64

	// LossProb is the per-exchange loss probability (independent per
	// server); Gaps are wholesale outage windows affecting every server.
	LossProb float64
	Gaps     []Gap

	// Outages and Partitions are the fault schedule: per-server
	// blackhole/flaky windows and subset-wide splits (see faults.go).
	// Empty schedules leave the trace untouched.
	Outages    []ServerOutage
	Partitions []Partition

	// DAGJitter is the reference monitor's timestamping noise (1 sigma).
	DAGJitter float64

	Seed uint64
}

// Validate reports scenario configuration errors.
func (s MultiScenario) Validate() error {
	if len(s.Servers) == 0 {
		return fmt.Errorf("sim: MultiScenario needs at least one server")
	}
	single := Scenario{
		PollPeriod:     s.PollPeriod,
		PollJitterFrac: s.PollJitterFrac,
		Duration:       s.Duration,
		LossProb:       s.LossProb,
	}
	if err := single.Validate(); err != nil {
		return err
	}
	return s.validateFaults()
}

// NewMultiScenario assembles a standard multi-server scenario, e.g.
// three ServerInt-class upstreams polled every 16 s from a machine-room
// host.
func NewMultiScenario(env Environment, servers []ServerSpec, poll, duration float64, seed uint64) MultiScenario {
	base := NewScenario(env, ServerSpec{}, poll, duration, seed)
	name := fmt.Sprintf("%s-ensemble%d", env, len(servers))
	return MultiScenario{
		Name:           name,
		Oscillator:     base.Oscillator,
		Host:           base.Host,
		Servers:        servers,
		PollPeriod:     poll,
		PollJitterFrac: base.PollJitterFrac,
		Duration:       duration,
		LossProb:       base.LossProb,
		DAGJitter:      base.DAGJitter,
		Seed:           seed,
	}
}

// ColludingHonest is the number of honest servers in a colluding
// scenario: servers [0, ColludingHonest) are truthful, servers
// [ColludingHonest, len(Servers)) collude on the injected offset.
const ColludingHonest = 3

// serverNearQuiet models an exceptionally clean nearby stratum-1
// server: ServerLoc's two-hop machine-room paths with a quarter of the
// queueing noise and congestion episodes four times rarer. Its point
// errors sit near the timestamping floor, so a trust scorer driven by
// path quality hands it the highest combining weight — which is
// exactly what makes it the right disguise for a colluding server.
func serverNearQuiet() ServerSpec {
	spec := ServerLoc()
	spec.Name = "ServerNearQuiet"
	for _, p := range []*netem.PathConfig{&spec.Forward, &spec.Backward} {
		p.BaseQueueMean /= 4
		p.EpisodeScale /= 4
		p.EpisodeMeanGap *= 4
	}
	return spec
}

// NewColludingScenario builds the selection stage's adversarial case:
// five upstream servers, of which the last two collude — their server
// clocks agree on the same wrong offset for the entire trace, and they
// sit on unusually clean near-host paths, so a quality-driven trust
// scorer hands the pair more than half the total combining weight. A
// weighted median alone then follows the lie (its breakdown point is
// weight-based); interval-intersection selection rejects the pair on
// count, because their correctness intervals never reach the honest
// majority's. The honest servers are ColludingHonest ServerInt-class
// upstreams; offset 0 yields the all-good control with identical
// random draws.
func NewColludingScenario(env Environment, offset, poll, duration float64, seed uint64) MultiScenario {
	servers := []ServerSpec{
		ServerInt(), ServerInt(), ServerInt(),
		serverNearQuiet(), serverNearQuiet(),
	}
	for k := ColludingHonest; k < len(servers); k++ {
		servers[k].Server.Faults = []netem.FaultWindow{
			// Unbounded: the tail emissions overrun Duration by up to a
			// polling period, and the lie must cover them too.
			{From: 0, To: math.Inf(1), Offset: offset},
		}
	}
	sc := NewMultiScenario(env, servers, poll, duration, seed)
	sc.Name = fmt.Sprintf("%s-collude%dof%d", env, len(servers)-ColludingHonest, len(servers))
	return sc
}

// NewAsymmetricScenario builds the path-asymmetry correction's test
// case: one ServerInt-class upstream per entry of extraForward, with
// entry k added to server k's forward-path minimum delay. An extra
// forward delay is invisible to any single-path filter — the engine
// splits the minimum RTT evenly, so server k's clock silently gains a
// bias of −extraForward[k]/2 (paper §2.3) while staying healthy by
// every quality signal. Differential entries make the per-server biases
// disagree, which is exactly what the ensemble's asymmetry hints can
// see and the damped correction can remove; a uniform extraForward is
// the common-mode control no client-side algorithm can detect. All
// zeros yields the symmetric control with identical random draws.
func NewAsymmetricScenario(env Environment, extraForward []float64, poll, duration float64, seed uint64) MultiScenario {
	servers := make([]ServerSpec, len(extraForward))
	for k := range servers {
		servers[k] = ServerInt()
		servers[k].Forward.MinDelay += extraForward[k]
	}
	sc := NewMultiScenario(env, servers, poll, duration, seed)
	sc.Name = fmt.Sprintf("%s-asym%d", env, len(servers))
	return sc
}

// MultiExchange is one exchange of a multi-server trace: the exchange
// data plus the index of the server that served it.
type MultiExchange struct {
	Server int
	Exchange
}

// MultiTrace is a generated multi-server dataset. Exchanges are in
// emission order across servers (the order a single host would perform
// them), so feeding them to an ensemble in slice order satisfies the
// per-server arrival-order requirement.
type MultiTrace struct {
	Scenario  MultiScenario
	Exchanges []MultiExchange
	Osc       *oscillator.Oscillator
}

// GenerateMulti produces the deterministic multi-server trace described
// by the scenario, materialized in memory: a collector over the
// pull-based MultiStream, which lazily merges the per-server schedules
// into the identical emission-ordered sequence. Every server gets its
// own independent path, server and loss random streams; the oscillator,
// host model and DAG monitor are shared, as on a real host. The
// schedule places server k's poll i at (i + 1/2 + k/N)·PollPeriod plus
// jitter; the half-period base offset (as in the single-server
// generator) keeps the first emission positive for any valid jitter
// fraction.
func GenerateMulti(sc MultiScenario) (*MultiTrace, error) {
	st, err := NewMultiStream(sc)
	if err != nil {
		return nil, err
	}
	exchanges := make([]MultiExchange, 0, st.Len())
	for {
		ex, ok := st.Next()
		if !ok {
			break
		}
		exchanges = append(exchanges, ex)
	}
	return &MultiTrace{Scenario: sc, Exchanges: exchanges, Osc: st.Osc()}, nil
}

// Completed returns the non-lost exchanges, in emission order.
func (tr *MultiTrace) Completed() []MultiExchange {
	out := make([]MultiExchange, 0, len(tr.Exchanges))
	for _, e := range tr.Exchanges {
		if !e.Lost {
			out = append(out, e)
		}
	}
	return out
}

// CompletedFor returns the non-lost exchanges of one server, the feed a
// single-server clock pointed at it would see.
func (tr *MultiTrace) CompletedFor(server int) []Exchange {
	var out []Exchange
	for _, e := range tr.Exchanges {
		if !e.Lost && e.Server == server {
			out = append(out, e.Exchange)
		}
	}
	return out
}

package sim

// The original batch generators survive here verbatim as references:
// Generate/GenerateMulti are now collectors over Stream/MultiStream,
// and these tests pin the streams bit-identical to the independent
// batch implementations (same seed → same draws in the same order),
// including the lazily merged multi-server schedule and oscillator
// cache trimming.

import (
	"math"
	"sort"
	"testing"

	"repro/internal/netem"
	"repro/internal/oscillator"
	"repro/internal/rng"
	"repro/internal/timebase"
)

// generateRef is the pre-streaming batch implementation of Generate,
// kept as the golden reference.
func generateRef(sc Scenario) (*Trace, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(sc.Seed)
	oscSrc := root.Split()
	fwdSrc := root.Split()
	backSrc := root.Split()
	srvSrc := root.Split()
	hostSrc := root.Split()
	missSrc := root.Split()
	dagSrc := root.Split()
	pollSrc := root.Split()

	osc, err := oscillator.New(sc.Oscillator, oscSrc.Uint64())
	if err != nil {
		return nil, err
	}
	fwd, err := netem.NewPath(sc.Server.Forward, fwdSrc)
	if err != nil {
		return nil, err
	}
	back, err := netem.NewPath(sc.Server.Backward, backSrc)
	if err != nil {
		return nil, err
	}
	srv, err := netem.NewServer(sc.Server.Server, srvSrc)
	if err != nil {
		return nil, err
	}
	host, err := netem.NewHostStamp(sc.Host, hostSrc)
	if err != nil {
		return nil, err
	}

	n := int(sc.Duration / sc.PollPeriod)
	exchanges := make([]Exchange, 0, n)
	for i := 0; i < n; i++ {
		jitter := (pollSrc.Float64() - 0.5) * sc.PollJitterFrac * sc.PollPeriod
		tStamp := float64(i)*sc.PollPeriod + sc.PollPeriod/2 + jitter

		ex := Exchange{Seq: i}
		lost := missSrc.Bool(sc.LossProb)
		for _, g := range sc.Gaps {
			if tStamp >= g.From && tStamp < g.To {
				lost = true
			}
		}
		if lost {
			ex.Lost = true
			exchanges = append(exchanges, ex)
			continue
		}
		stampExchange(&ex, tStamp, osc, host, fwd, back, srv, dagSrc, sc.DAGJitter)
		exchanges = append(exchanges, ex)
	}
	return &Trace{Scenario: sc, Exchanges: exchanges, Osc: osc}, nil
}

// generateMultiRef is the pre-streaming batch implementation of
// GenerateMulti (eager server-major jitter draws, sorted schedule),
// kept as the golden reference for the lazy merge.
func generateMultiRef(sc MultiScenario) (*MultiTrace, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(sc.Seed)
	oscSrc := root.Split()
	hostSrc := root.Split()
	dagSrc := root.Split()
	pollSrc := root.Split()

	osc, err := oscillator.New(sc.Oscillator, oscSrc.Uint64())
	if err != nil {
		return nil, err
	}
	host, err := netem.NewHostStamp(sc.Host, hostSrc)
	if err != nil {
		return nil, err
	}

	nSrv := len(sc.Servers)
	fwd := make([]*netem.Path, nSrv)
	back := make([]*netem.Path, nSrv)
	srv := make([]*netem.Server, nSrv)
	miss := make([]*rng.Source, nSrv)
	for k, spec := range sc.Servers {
		if fwd[k], err = netem.NewPath(spec.Forward, root.Split()); err != nil {
			return nil, err
		}
		if back[k], err = netem.NewPath(spec.Backward, root.Split()); err != nil {
			return nil, err
		}
		if srv[k], err = netem.NewServer(spec.Server, root.Split()); err != nil {
			return nil, err
		}
		miss[k] = root.Split()
	}

	type slot struct {
		t      float64
		server int
		seq    int
	}
	perServer := int(sc.Duration / sc.PollPeriod)
	slots := make([]slot, 0, perServer*nSrv)
	for k := 0; k < nSrv; k++ {
		for i := 0; i < perServer; i++ {
			jitter := (pollSrc.Float64() - 0.5) * sc.PollJitterFrac * sc.PollPeriod
			t := (float64(i)+0.5+float64(k)/float64(nSrv))*sc.PollPeriod + jitter
			slots = append(slots, slot{t: t, server: k, seq: i})
		}
	}
	sort.Slice(slots, func(a, b int) bool { return slots[a].t < slots[b].t })

	exchanges := make([]MultiExchange, 0, len(slots))
	for _, sl := range slots {
		k := sl.server
		ex := MultiExchange{Server: k, Exchange: Exchange{Seq: sl.seq}}
		lost := miss[k].Bool(sc.LossProb)
		for _, g := range sc.Gaps {
			if sl.t >= g.From && sl.t < g.To {
				lost = true
			}
		}
		if lost {
			ex.Lost = true
			exchanges = append(exchanges, ex)
			continue
		}
		stampExchange(&ex.Exchange, sl.t, osc, host, fwd[k], back[k], srv[k], dagSrc, sc.DAGJitter)
		exchanges = append(exchanges, ex)
	}
	return &MultiTrace{Scenario: sc, Exchanges: exchanges, Osc: osc}, nil
}

// streamScenarios are the single-server cases the bit-identity tests
// sweep: steady state, loss+gap, server fault, level shift, and the new
// long-horizon ingredients (oscillator temperature cycle, path load
// regimes).
func streamScenarios() map[string]Scenario {
	steady := NewScenario(MachineRoom, ServerInt(), 16, 6*timebase.Hour, 101)

	lossy := NewScenario(Laboratory, ServerLoc(), 64, 12*timebase.Hour, 102)
	lossy.LossProb = 0.05
	lossy.Gaps = []Gap{{From: 2 * timebase.Hour, To: 3 * timebase.Hour}}

	faulty := NewScenario(MachineRoom, ServerExt(), 16, 4*timebase.Hour, 103)
	faulty.Server.Server.Faults = []netem.FaultWindow{
		{From: 1000, To: 2000, Offset: 150 * timebase.Millisecond},
	}

	shifted := NewScenario(MachineRoom, ServerInt(), 16, 8*timebase.Hour, 104)
	shifted.Server.Forward.Shifts = []netem.Shift{{At: 4 * timebase.Hour, Delta: 0.9 * timebase.Millisecond}}

	longrun := NewScenario(MachineRoom, ServerInt(), 64, timebase.Day, 105)
	longrun.Oscillator.Temp = oscillator.TempCycle{
		AmplitudePPM: 0.02, Phase: 1.1, Harmonic2: 0.3, WeeklyMod: 0.4,
	}
	for _, p := range []*netem.PathConfig{&longrun.Server.Forward, &longrun.Server.Backward} {
		p.RegimeMeanDwell = 4 * timebase.Hour
		p.RegimeFactors = []float64{1, 2.5}
	}

	return map[string]Scenario{
		"steady": steady, "lossy": lossy, "faulty": faulty,
		"shifted": shifted, "longrun": longrun,
	}
}

func TestStreamBitIdenticalToBatchReference(t *testing.T) {
	for name, sc := range streamScenarios() {
		t.Run(name, func(t *testing.T) {
			want, err := generateRef(sc)
			if err != nil {
				t.Fatal(err)
			}
			st, err := NewStream(sc)
			if err != nil {
				t.Fatal(err)
			}
			if st.Len() != len(want.Exchanges) {
				t.Fatalf("stream Len %d, batch %d", st.Len(), len(want.Exchanges))
			}
			for i := range want.Exchanges {
				got, ok := st.Next()
				if !ok {
					t.Fatalf("stream ended at %d of %d", i, len(want.Exchanges))
				}
				if got != want.Exchanges[i] {
					t.Fatalf("exchange %d differs:\n stream %+v\n batch  %+v", i, got, want.Exchanges[i])
				}
			}
			if _, ok := st.Next(); ok {
				t.Fatal("stream emitted past the batch length")
			}
		})
	}
}

// TestGenerateIsStreamCollector: the public batch entry point must
// agree with the reference too (it is now a collector over the stream).
func TestGenerateIsStreamCollector(t *testing.T) {
	sc := NewScenario(MachineRoom, ServerInt(), 16, 6*timebase.Hour, 77)
	want, err := generateRef(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Exchanges) != len(want.Exchanges) {
		t.Fatalf("lengths differ: %d vs %d", len(got.Exchanges), len(want.Exchanges))
	}
	for i := range want.Exchanges {
		if got.Exchanges[i] != want.Exchanges[i] {
			t.Fatalf("exchange %d differs", i)
		}
	}
}

// TestStreamTrimBitIdentical: trimming the oscillator cache behind the
// emission front must not change a single emitted bit.
func TestStreamTrimBitIdentical(t *testing.T) {
	sc := NewScenario(MachineRoom, ServerInt(), 16, timebase.Day, 33)
	plain, err := NewStream(sc)
	if err != nil {
		t.Fatal(err)
	}
	trimmed, err := NewStream(sc)
	if err != nil {
		t.Fatal(err)
	}
	trimmed.SetTrim(true)
	for i := 0; ; i++ {
		a, okA := plain.Next()
		b, okB := trimmed.Next()
		if okA != okB {
			t.Fatalf("streams end at different lengths near %d", i)
		}
		if !okA {
			break
		}
		if a != b {
			t.Fatalf("exchange %d differs under trimming", i)
		}
	}
	// And the cache really is bounded: a day at 60 s steps is 1440
	// entries untrimmed.
	if n := trimmed.Osc().RandomWalkCacheLen(); n > 2*trimMargin/60+trimEvery {
		t.Errorf("trimmed oscillator cache holds %d steps", n)
	}
}

func TestMultiStreamBitIdenticalToBatchReference(t *testing.T) {
	cases := map[string]MultiScenario{
		"ensemble3": NewMultiScenario(MachineRoom, []ServerSpec{ServerLoc(), ServerInt(), ServerExt()},
			16, 6*timebase.Hour, 42),
		"collude": NewColludingScenario(MachineRoom, 1.5*timebase.Millisecond, 16, 3*timebase.Hour, 11),
	}
	withGaps := NewMultiScenario(MachineRoom, []ServerSpec{ServerInt(), ServerInt()}, 64, 12*timebase.Hour, 9)
	withGaps.LossProb = 0.03
	withGaps.Gaps = []Gap{{From: timebase.Hour, To: 2 * timebase.Hour}}
	cases["gaps"] = withGaps

	for name, sc := range cases {
		t.Run(name, func(t *testing.T) {
			want, err := generateMultiRef(sc)
			if err != nil {
				t.Fatal(err)
			}
			st, err := NewMultiStream(sc)
			if err != nil {
				t.Fatal(err)
			}
			st.SetTrim(true) // trim must be invisible here too
			if st.Len() != len(want.Exchanges) {
				t.Fatalf("stream Len %d, batch %d", st.Len(), len(want.Exchanges))
			}
			for i := range want.Exchanges {
				got, ok := st.Next()
				if !ok {
					t.Fatalf("stream ended at %d of %d", i, len(want.Exchanges))
				}
				if got != want.Exchanges[i] {
					t.Fatalf("exchange %d differs:\n stream %+v\n batch  %+v", i, got, want.Exchanges[i])
				}
			}
			if _, ok := st.Next(); ok {
				t.Fatal("stream emitted past the batch length")
			}
		})
	}
}

func TestGenerateMultiIsStreamCollector(t *testing.T) {
	sc := NewMultiScenario(MachineRoom, []ServerSpec{ServerLoc(), ServerInt(), ServerExt()},
		16, 3*timebase.Hour, 5)
	want, err := generateMultiRef(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GenerateMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Exchanges) != len(want.Exchanges) {
		t.Fatalf("lengths differ: %d vs %d", len(got.Exchanges), len(want.Exchanges))
	}
	for i := range want.Exchanges {
		if got.Exchanges[i] != want.Exchanges[i] {
			t.Fatalf("exchange %d differs", i)
		}
	}
}

// TestRegimeSwitchingShape: with regimes enabled the path actually
// alternates regimes, the trace stays causally ordered, and disabling
// regimes (the default) is bit-identical to the pre-regime model.
func TestRegimeSwitchingShape(t *testing.T) {
	sc := NewScenario(MachineRoom, ServerInt(), 16, 2*timebase.Day, 55)
	for _, p := range []*netem.PathConfig{&sc.Server.Forward, &sc.Server.Backward} {
		p.RegimeMeanDwell = 5 * timebase.Hour
		p.RegimeFactors = []float64{1, 3}
	}
	tr, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Completed() {
		if !(e.TrueTa < e.TrueTb && e.TrueTb < e.TrueTe && e.TrueTe < e.TrueTf) {
			t.Fatalf("event order violated: %+v", e)
		}
	}
	if m := tr.MinObservedRTT(); m < sc.Server.MinRTT() {
		t.Fatalf("min RTT %v below configured %v", m, sc.Server.MinRTT())
	}
}

// TestTempCycleShape: the temperature cycle stays within its configured
// amplitude budget and preserves the 0.1 PPM global stability cone.
func TestTempCycleShape(t *testing.T) {
	cfg := oscillator.MachineRoom()
	cfg.Temp = oscillator.TempCycle{AmplitudePPM: 0.02, Phase: 0.7, Harmonic2: 0.4, WeeklyMod: 0.3}
	o, err := oscillator.New(cfg, 19)
	if err != nil {
		t.Fatal(err)
	}
	base, err := oscillator.New(oscillator.MachineRoom(), 19)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed: the random-walk path is shared, so the rate difference
	// is exactly the temperature cycle — bounded by the sum of its
	// component amplitudes.
	budget := timebase.FromPPM(0.02 * (1 + 0.4 + 0.3))
	varied := false
	for tt := 0.0; tt < 2*timebase.Week; tt += 977 {
		d := o.Rate(tt) - base.Rate(tt)
		if math.Abs(d) > budget*(1+1e-9) {
			t.Fatalf("temp cycle contribution %v beyond budget %v at t=%v", d, budget, tt)
		}
		if math.Abs(d) > budget/4 {
			varied = true
		}
	}
	if !varied {
		t.Error("temperature cycle never reached a quarter of its amplitude budget")
	}
}

package sim

import (
	"math"
	"testing"

	"repro/internal/timebase"
)

func threeServers() []ServerSpec {
	return []ServerSpec{ServerLoc(), ServerInt(), ServerExt()}
}

func TestGenerateMultiDeterministic(t *testing.T) {
	sc := NewMultiScenario(MachineRoom, threeServers(), 16, 6*timebase.Hour, 42)
	a, err := GenerateMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Exchanges) != len(b.Exchanges) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Exchanges), len(b.Exchanges))
	}
	for i := range a.Exchanges {
		if a.Exchanges[i] != b.Exchanges[i] {
			t.Fatalf("exchange %d differs between identical runs", i)
		}
	}
}

func TestGenerateMultiShape(t *testing.T) {
	servers := threeServers()
	sc := NewMultiScenario(MachineRoom, servers, 16, timebase.Day, 7)
	tr, err := GenerateMulti(sc)
	if err != nil {
		t.Fatal(err)
	}

	// Roughly N per-server schedules' worth of exchanges.
	perServer := int(timebase.Day / 16)
	if got, want := len(tr.Exchanges), perServer*len(servers); got != want {
		t.Errorf("total exchanges %d, want %d", got, want)
	}

	// Emission order globally, per-server Tf strictly increasing (the
	// engines' feeding requirement), and every server represented.
	lastTrueTa := math.Inf(-1)
	lastTf := map[int]uint64{}
	counts := map[int]int{}
	for i, e := range tr.Completed() {
		if e.TrueTa < lastTrueTa-1 { // tolerate sub-second RTT overlap
			t.Fatalf("exchange %d out of emission order", i)
		}
		lastTrueTa = e.TrueTa
		if prev, ok := lastTf[e.Server]; ok && e.Tf <= prev {
			t.Fatalf("server %d: Tf not increasing at exchange %d", e.Server, i)
		}
		lastTf[e.Server] = e.Tf
		counts[e.Server]++
	}
	for k := range servers {
		if counts[k] < perServer/2 {
			t.Errorf("server %d only has %d completed exchanges", k, counts[k])
		}
	}

	// Each server's minimum observed RTT approaches its spec minimum.
	for k, spec := range servers {
		minRTT := math.Inf(1)
		for _, e := range tr.CompletedFor(k) {
			if r := e.RTTTrue(); r < minRTT {
				minRTT = r
			}
		}
		if minRTT < spec.MinRTT() || minRTT > spec.MinRTT()*1.5 {
			t.Errorf("server %d min RTT %v, spec minimum %v", k, minRTT, spec.MinRTT())
		}
	}
}

// TestGenerateMultiHighJitter: a jitter fraction larger than the 1/N
// stagger spacing must not push server 0's first emission before the
// time origin (the half-period base offset guarantees the margin, as
// in the single-server generator).
func TestGenerateMultiHighJitter(t *testing.T) {
	sc := NewMultiScenario(MachineRoom, threeServers(), 16, timebase.Hour, 3)
	sc.PollJitterFrac = 0.9
	tr, err := GenerateMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Completed() {
		if e.TrueTa < 0 {
			t.Fatalf("emission before the origin at %v", e.TrueTa)
		}
	}
}

// TestColludingScenario pins the adversarial trace's construction: the
// colluding pair's server stamps carry the injected lie for the whole
// trace, the honest majority's stamps stay truthful, and the colluders
// sit on cleaner, shorter paths than the honest servers (the disguise
// that earns them trust weight).
func TestColludingScenario(t *testing.T) {
	const lie = 1.5 * timebase.Millisecond
	sc := NewColludingScenario(MachineRoom, lie, 16, 6*timebase.Hour, 11)
	if n := len(sc.Servers); n != 5 {
		t.Fatalf("servers = %d, want 5", n)
	}
	tr, err := GenerateMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	for k := range sc.Servers {
		worst := 0.0
		for _, e := range tr.CompletedFor(k) {
			// The server clock error as the stamps expose it, net of
			// µs-scale stamp noise and wander.
			err := (e.Tb+e.Te)/2 - (e.TrueTb+e.TrueTe)/2
			want := 0.0
			if k >= ColludingHonest {
				want = lie
			}
			if d := math.Abs(err - want); d > worst {
				worst = d
			}
		}
		// Stamp noise is ~4 µs with rare sub-ms Te outliers; 1 ms margin
		// separates cleanly from the 1.5 ms lie.
		if worst > timebase.Millisecond {
			t.Errorf("server %d stamp error off nominal by up to %v", k, worst)
		}
	}
	// The colluders' paths are quieter and shorter than the honest ones.
	if h, c := sc.Servers[0].MinRTT(), sc.Servers[ColludingHonest].MinRTT(); c >= h {
		t.Errorf("colluder min RTT %v not below honest %v", c, h)
	}
	if h, c := sc.Servers[0].Forward.BaseQueueMean, sc.Servers[ColludingHonest].Forward.BaseQueueMean; c >= h {
		t.Errorf("colluder queueing %v not below honest %v", c, h)
	}

	// Offset 0 is the all-good control: identical draws, no lie.
	good, err := GenerateMulti(NewColludingScenario(MachineRoom, 0, 16, 6*timebase.Hour, 11))
	if err != nil {
		t.Fatal(err)
	}
	if len(good.Exchanges) != len(tr.Exchanges) {
		t.Fatalf("control trace has %d exchanges, adversarial %d", len(good.Exchanges), len(tr.Exchanges))
	}
	for i := range good.Exchanges {
		g, b := good.Exchanges[i], tr.Exchanges[i]
		if g.Server != b.Server || g.Lost != b.Lost || g.TrueTa != b.TrueTa {
			t.Fatalf("exchange %d: control and adversarial schedules diverge", i)
		}
		if !g.Lost && b.Server >= ColludingHonest && math.Abs(b.Tb-g.Tb-lie) > 1e-9 {
			t.Fatalf("exchange %d: colluder Tb differs from control by %v, want the lie %v",
				i, b.Tb-g.Tb, lie)
		}
	}
}

func TestGenerateMultiGapsAndValidation(t *testing.T) {
	sc := NewMultiScenario(MachineRoom, threeServers(), 16, 6*timebase.Hour, 9)
	sc.Gaps = []Gap{{From: timebase.Hour, To: 2 * timebase.Hour}}
	tr, err := GenerateMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Completed() {
		if e.TrueTa >= timebase.Hour && e.TrueTa < 2*timebase.Hour {
			t.Fatalf("completed exchange inside the gap at %v", e.TrueTa)
		}
	}

	if _, err := GenerateMulti(MultiScenario{}); err == nil {
		t.Error("empty scenario accepted")
	}
	bad := NewMultiScenario(MachineRoom, nil, 16, timebase.Hour, 1)
	if _, err := GenerateMulti(bad); err == nil {
		t.Error("scenario without servers accepted")
	}
}

// Package ratelimit is the serving path's abuse shield: per-client-
// prefix token buckets sized so one hostile subnet exhausts its own
// budget instead of a shard. Keying by prefix (/24 for IPv4, /48 for
// IPv6 — the standard allocation units) rather than by address closes
// the obvious dodge of rotating source addresses within a subnet, and
// an attacker spreading across MANY prefixes has to spread its packet
// rate too, which is the point of a per-prefix budget.
//
// The design serves the shard hot loop: a lookup is one hash-sharded
// mutex, one map probe on an integer key derived from the address bytes
// (no parsing, no per-packet allocation), and a float refill. The
// bucket table is bounded: when a shard fills, idle buckets (no packet
// for IdleTTL) are swept out, and if a churn attack keeps the table
// full anyway, NEW prefixes are admitted untracked (fail open) — a
// table-exhaustion attack must not become a tool to deny honest
// clients, it merely degrades enforcement back to pre-limiter
// behaviour while the Untracked counter makes the condition visible.
package ratelimit

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a Limiter.
type Config struct {
	// Rate is the sustained budget in requests per second per client
	// prefix. Default: 64 (far above any sane NTP client — even burst
	// polling is a few per minute — while three orders of magnitude
	// below what a flood needs).
	Rate float64
	// Burst is the bucket capacity: how many back-to-back requests a
	// prefix may issue from cold before pacing applies. Default: 128.
	Burst float64
	// MaxEntries bounds the total tracked prefixes across all table
	// shards. Default: 65536 (a few MB at the bucket size).
	MaxEntries int
	// IdleTTL is how long a prefix's bucket survives without traffic
	// before it is evictable. Default: 60s.
	IdleTTL time.Duration
	// Now, when non-nil, replaces the limiter's time source: a
	// monotonic clock in nanoseconds, read once per Allow. The default
	// reads the runtime's monotonic clock. Injecting a virtual clock
	// makes refill behaviour fully deterministic in tests and lets the
	// simulator drive a limiter on simulated time.
	Now func() int64
}

func (c *Config) setDefaults() {
	if c.Rate == 0 {
		c.Rate = 64
	}
	if c.Burst == 0 {
		c.Burst = 128
	}
	if c.MaxEntries == 0 {
		c.MaxEntries = 65536
	}
	if c.IdleTTL == 0 {
		c.IdleTTL = 60 * time.Second
	}
}

// tableShards is the lock-sharding factor of the bucket table: enough
// that the SO_REUSEPORT serve shards (one per core, single digits)
// rarely contend on a table shard even under uniform traffic.
const tableShards = 16

// bucket is one prefix's token state; guarded by its table shard's
// mutex.
type bucket struct {
	tokens float64
	last   int64 // monotonic nanoseconds of the last refill
}

type tableShard struct {
	mu sync.Mutex
	m  map[uint64]bucket
}

// Limiter is a sharded per-prefix token-bucket limiter. Safe for
// concurrent use from every serve shard.
type Limiter struct {
	cfg       Config
	ratePerNs float64
	maxShard  int // per-table-shard entry bound
	shards    [tableShards]tableShard

	// now is the time source in monotonic nanoseconds; Config.Now or
	// the runtime monotonic clock.
	now func() int64

	denied    atomic.Uint64
	untracked atomic.Uint64
}

// New constructs a limiter; zero config fields take defaults.
func New(cfg Config) *Limiter {
	cfg.setDefaults()
	now := cfg.Now
	if now == nil {
		start := time.Now()
		now = func() int64 { return int64(time.Since(start)) }
	}
	l := &Limiter{
		cfg:       cfg,
		ratePerNs: cfg.Rate / 1e9,
		maxShard:  (cfg.MaxEntries + tableShards - 1) / tableShards,
		now:       now,
	}
	for i := range l.shards {
		l.shards[i].m = make(map[uint64]bucket)
	}
	return l
}

// v4PrefixBits and v6PrefixBits are the client-aggregation prefix
// lengths: /24 and /48, the common end-site allocation units.
const (
	v4PrefixBits = 24
	v6PrefixBits = 48
)

// PrefixKey reduces an IP to its rate-limiting prefix as an integer
// key: the top v4PrefixBits of an IPv4 address (tagged to its own key
// space) or the top v6PrefixBits of an IPv6 address. ok is false for
// addresses with no usable IP (the caller should fail open: a packet
// whose source the stack could not type is not evidence of abuse).
//
//repro:hotpath
func PrefixKey(ip net.IP) (key uint64, ok bool) {
	if v4 := ip.To4(); v4 != nil {
		return 1<<63 | uint64(v4[0])<<16 | uint64(v4[1])<<8 | uint64(v4[2]), true
	}
	if len(ip) != net.IPv6len {
		return 0, false
	}
	return uint64(ip[0])<<40 | uint64(ip[1])<<32 | uint64(ip[2])<<24 |
		uint64(ip[3])<<16 | uint64(ip[4])<<8 | uint64(ip[5]), true
}

// PrefixKey4 is PrefixKey for a raw IPv4 address already in hand as 4
// bytes (e.g. a RawSockaddrInet4.Addr from a batched receive): the /24
// prefix tagged into the IPv4 key space, with no net.IP boxing and no
// failure mode.
//
//repro:hotpath
func PrefixKey4(a [4]byte) uint64 {
	return 1<<63 | uint64(a[0])<<16 | uint64(a[1])<<8 | uint64(a[2])
}

// PrefixKey16 is PrefixKey for a raw 16-byte address (e.g. a
// RawSockaddrInet6.Addr): IPv4-mapped addresses (::ffff:a.b.c.d, which
// is how an AF_INET6 socket presents IPv4 traffic) key into the IPv4
// space so a client is budgeted identically over either socket family;
// everything else keys by its /48.
//
//repro:hotpath
func PrefixKey16(a *[16]byte) uint64 {
	if a[0] == 0 && a[1] == 0 && a[2] == 0 && a[3] == 0 &&
		a[4] == 0 && a[5] == 0 && a[6] == 0 && a[7] == 0 &&
		a[8] == 0 && a[9] == 0 && a[10] == 0xff && a[11] == 0xff {
		return PrefixKey4([4]byte{a[12], a[13], a[14], a[15]})
	}
	return uint64(a[0])<<40 | uint64(a[1])<<32 | uint64(a[2])<<24 |
		uint64(a[3])<<16 | uint64(a[4])<<8 | uint64(a[5])
}

// AllowAddr applies Allow to a packet source as the serve loop sees it
// (fail open on non-UDP or unparseable sources).
//
//repro:hotpath
func (l *Limiter) AllowAddr(addr net.Addr) bool {
	ua, ok := addr.(*net.UDPAddr)
	if !ok {
		return true
	}
	key, ok := PrefixKey(ua.IP)
	if !ok {
		return true
	}
	return l.Allow(key)
}

// Allow spends one token from the key's bucket, reporting whether the
// request is within budget. New prefixes start at Burst capacity; when
// the table is full and idle-sweeping frees nothing, new prefixes are
// admitted untracked.
//
//repro:hotpath
func (l *Limiter) Allow(key uint64) bool {
	// Fibonacci mixing spreads sequential prefixes across table shards.
	sh := &l.shards[(key*0x9e3779b97f4a7c15)>>59&(tableShards-1)]
	now := l.now()
	sh.mu.Lock()
	b, ok := sh.m[key]
	if !ok {
		if len(sh.m) >= l.maxShard {
			l.sweepLocked(sh, now)
		}
		if len(sh.m) >= l.maxShard {
			sh.mu.Unlock()
			l.untracked.Add(1)
			return true
		}
		sh.m[key] = bucket{tokens: l.cfg.Burst - 1, last: now}
		sh.mu.Unlock()
		return true
	}
	b.tokens += float64(now-b.last) * l.ratePerNs
	if b.tokens > l.cfg.Burst {
		b.tokens = l.cfg.Burst
	}
	b.last = now
	allowed := b.tokens >= 1
	if allowed {
		b.tokens--
	}
	sh.m[key] = b
	sh.mu.Unlock()
	if !allowed {
		l.denied.Add(1)
	}
	return allowed
}

// sweepLocked evicts buckets idle past IdleTTL from one table shard.
// Called with the shard lock held, only on the insert-into-full-shard
// path, so steady-state packets never pay for a sweep.
func (l *Limiter) sweepLocked(sh *tableShard, now int64) {
	ttl := l.cfg.IdleTTL.Nanoseconds()
	for k, b := range sh.m {
		if now-b.last > ttl {
			delete(sh.m, k)
		}
	}
}

// Len returns the number of tracked prefixes across all table shards.
func (l *Limiter) Len() int {
	n := 0
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Denied returns the total requests rejected over budget.
func (l *Limiter) Denied() uint64 { return l.denied.Load() }

// Untracked returns the requests admitted without tracking because the
// bucket table was full of live entries — the signature of a prefix-
// churn attack outliving the table bound.
func (l *Limiter) Untracked() uint64 { return l.untracked.Load() }

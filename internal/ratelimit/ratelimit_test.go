package ratelimit

import (
	"net"
	"testing"
	"time"
)

// testLimiter builds a limiter on a manually advanced virtual clock,
// injected through the public Config.Now hook.
func testLimiter(cfg Config) (*Limiter, *int64) {
	now := new(int64)
	cfg.Now = func() int64 { return *now }
	return New(cfg), now
}

func TestBurstHonored(t *testing.T) {
	l, _ := testLimiter(Config{Rate: 10, Burst: 5})
	const key = 42
	for i := 0; i < 5; i++ {
		if !l.Allow(key) {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	if l.Allow(key) {
		t.Error("request past burst allowed with no time elapsed")
	}
	if l.Denied() != 1 {
		t.Errorf("Denied = %d, want 1", l.Denied())
	}
}

// TestSteadyStateRate: after the burst is spent, throughput converges
// to Rate tokens per second.
func TestSteadyStateRate(t *testing.T) {
	l, now := testLimiter(Config{Rate: 50, Burst: 10})
	const key = 7
	for i := 0; i < 10; i++ {
		l.Allow(key)
	}
	// Offer 10x the budget over 2 simulated seconds.
	allowed := 0
	const step = int64(time.Second / 500) // 2ms per offer, 1000 offers
	for i := 0; i < 1000; i++ {
		*now += step
		if l.Allow(key) {
			allowed++
		}
	}
	// 2s at 50/s = 100 tokens, ±1 for boundary effects.
	if allowed < 99 || allowed > 101 {
		t.Errorf("steady state passed %d of 1000 offers over 2s, want ≈ 100 (Rate 50/s)", allowed)
	}
}

// TestRefillCapsAtBurst: idle time banks at most Burst tokens.
func TestRefillCapsAtBurst(t *testing.T) {
	l, now := testLimiter(Config{Rate: 100, Burst: 4})
	const key = 9
	l.Allow(key) // create the bucket
	*now += int64(time.Hour)
	allowed := 0
	for i := 0; i < 50; i++ {
		if l.Allow(key) {
			allowed++
		}
	}
	if allowed != 4 {
		t.Errorf("after a long idle, %d back-to-back requests allowed, want Burst = 4", allowed)
	}
}

// TestPerPrefixIsolation: one prefix exhausting its budget does not
// touch another's.
func TestPerPrefixIsolation(t *testing.T) {
	l, _ := testLimiter(Config{Rate: 10, Burst: 3})
	for i := 0; i < 100; i++ {
		l.Allow(1)
	}
	if l.Allow(1) {
		t.Fatal("abusive prefix still allowed")
	}
	for i := 0; i < 3; i++ {
		if !l.Allow(2) {
			t.Fatalf("victim prefix denied (request %d) by neighbour's abuse", i)
		}
	}
}

// TestEvictionUnderChurn: address churn cannot grow the table past its
// bound — idle buckets are swept when a shard fills, and live ones
// survive the sweep.
func TestEvictionUnderChurn(t *testing.T) {
	l, now := testLimiter(Config{MaxEntries: tableShards * 8, IdleTTL: time.Second})
	// Fill the table with distinct prefixes.
	for k := uint64(0); k < 1000; k++ {
		l.Allow(k)
	}
	if n := l.Len(); n > tableShards*8 {
		t.Fatalf("table grew to %d entries, bound %d", n, tableShards*8)
	}
	// Keep one prefix hot across the idle horizon, then churn again:
	// the hot bucket must survive, the idle ones must make room.
	const hot = 123456
	l.Allow(hot)
	for i := 0; i < 20; i++ {
		*now += int64(100 * time.Millisecond)
		l.Allow(hot)
	}
	before := l.Denied()
	for k := uint64(2000); k < 3000; k++ {
		l.Allow(k)
	}
	if n := l.Len(); n > tableShards*8 {
		t.Errorf("table grew to %d entries under churn, bound %d", n, tableShards*8)
	}
	// The hot prefix's bucket kept draining through all of this; the
	// churn keys were all fresh, so any denials here would be the hot
	// bucket's (there must be none — it stayed within rate).
	if l.Denied() != before {
		t.Errorf("churn caused %d denials of in-budget traffic", l.Denied()-before)
	}
}

// TestTableFullFailsOpen: when every bucket is live (nothing idle to
// sweep), new prefixes are admitted untracked rather than denied.
func TestTableFullFailsOpen(t *testing.T) {
	l, _ := testLimiter(Config{MaxEntries: tableShards, IdleTTL: time.Hour})
	for k := uint64(0); k < 10000; k++ {
		if !l.Allow(k) {
			t.Fatalf("first packet of fresh prefix %d denied (table pressure must fail open)", k)
		}
	}
	if l.Untracked() == 0 {
		t.Error("no untracked admissions despite a full table: the fail-open path never engaged")
	}
}

func TestPrefixKey(t *testing.T) {
	k := func(s string) uint64 {
		key, ok := PrefixKey(net.ParseIP(s))
		if !ok {
			t.Fatalf("PrefixKey(%s) not ok", s)
		}
		return key
	}
	// Same /24 → same key; different /24 → different key.
	if k("192.0.2.1") != k("192.0.2.254") {
		t.Error("IPv4 addresses in one /24 got different keys")
	}
	if k("192.0.2.1") == k("192.0.3.1") {
		t.Error("IPv4 addresses in different /24s share a key")
	}
	// Same /48 → same key; different /48 → different key.
	if k("2001:db8:1::1") != k("2001:db8:1:ffff::1") {
		t.Error("IPv6 addresses in one /48 got different keys")
	}
	if k("2001:db8:1::1") == k("2001:db8:2::1") {
		t.Error("IPv6 addresses in different /48s share a key")
	}
	// v4 and v6 key spaces must not collide (the tag bit).
	if k("1.2.3.4") == k("::102:300") {
		t.Error("IPv4 and IPv6 key spaces collide")
	}
	if _, ok := PrefixKey(net.IP{1, 2}); ok {
		t.Error("malformed IP accepted")
	}
}

func TestAllowAddrFailsOpen(t *testing.T) {
	l, _ := testLimiter(Config{Rate: 1, Burst: 1})
	// Non-UDP and IP-less sources are not evidence of abuse.
	if !l.AllowAddr(&net.TCPAddr{IP: net.ParseIP("192.0.2.1")}) {
		t.Error("non-UDP addr denied")
	}
	for i := 0; i < 10; i++ {
		if !l.AllowAddr(&net.UDPAddr{}) {
			t.Error("IP-less UDP addr denied")
		}
	}
}

// TestLimiterConcurrency: shards hammered from many goroutines — run
// under -race in CI.
func TestLimiterConcurrency(t *testing.T) {
	l := New(Config{Rate: 1e6, Burst: 1e6})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 2000; i++ {
				l.Allow(uint64(g*1000 + i%100))
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if l.Len() == 0 {
		t.Error("no buckets tracked")
	}
}

// TestPrefixKeyRawEquivalence: the raw-sockaddr key functions the
// batched serving loop uses must agree bit-for-bit with PrefixKey's
// net.IP classification — same keys, same budgets, whichever loop or
// socket family a client arrives through.
func TestPrefixKeyRawEquivalence(t *testing.T) {
	v4s := [][4]byte{
		{0, 0, 0, 0}, {127, 0, 0, 1}, {192, 0, 2, 17}, {192, 0, 2, 200},
		{10, 1, 2, 3}, {255, 255, 255, 255},
	}
	for _, a := range v4s {
		want, ok := PrefixKey(net.IPv4(a[0], a[1], a[2], a[3]))
		if !ok {
			t.Fatalf("PrefixKey rejected v4 %v", a)
		}
		if got := PrefixKey4(a); got != want {
			t.Errorf("PrefixKey4(%v) = %#x, want %#x", a, got, want)
		}
		// The same client over an AF_INET6 socket arrives v4-mapped and
		// must land in the same bucket.
		mapped := [16]byte{10: 0xff, 11: 0xff}
		copy(mapped[12:], a[:])
		if got := PrefixKey16(&mapped); got != want {
			t.Errorf("PrefixKey16(mapped %v) = %#x, want %#x", a, got, want)
		}
	}
	v6s := [][16]byte{
		{0x20, 0x01, 0x0d, 0xb8, 0, 1, 0, 2, 0, 0, 0, 0, 0, 0, 0, 1},
		{0xfe, 0x80, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 9},
		{15: 1}, // ::1
	}
	for _, a := range v6s {
		ip := make(net.IP, net.IPv6len)
		copy(ip, a[:])
		want, ok := PrefixKey(ip)
		if !ok {
			t.Fatalf("PrefixKey rejected v6 %v", a)
		}
		if got := PrefixKey16(&a); got != want {
			t.Errorf("PrefixKey16(%v) = %#x, want %#x", a, got, want)
		}
	}
	// Same /24 (or /48) must collide; different must not.
	if PrefixKey4([4]byte{192, 0, 2, 1}) != PrefixKey4([4]byte{192, 0, 2, 254}) {
		t.Error("same /24 produced different keys")
	}
	if PrefixKey4([4]byte{192, 0, 2, 1}) == PrefixKey4([4]byte{192, 0, 3, 1}) {
		t.Error("different /24s collided")
	}
}

// TestPrefixKeyRawZeroAlloc: the raw key derivations and Allow are the
// batched loop's whole per-packet rate-limit cost; none may allocate.
func TestPrefixKeyRawZeroAlloc(t *testing.T) {
	l := New(Config{Rate: 1e12, Burst: 1e12})
	a4 := [4]byte{192, 0, 2, 1}
	a16 := [16]byte{0x20, 0x01, 0x0d, 0xb8, 15: 1}
	allocs := testing.AllocsPerRun(200, func() {
		if !l.Allow(PrefixKey4(a4)) || !l.Allow(PrefixKey16(&a16)) {
			t.Fatal("allow denied under infinite budget")
		}
	})
	if allocs != 0 {
		t.Errorf("raw-key Allow path allocates %.1f per packet, want 0", allocs)
	}
}

package stats

// Online accumulators: the streaming half of the package. The batch
// order statistics above need the full sample resident and a sort; the
// types here fold one observation at a time in O(1) memory, which is
// what lets multi-week experiment reports run at constant memory. The
// quantile accumulators implement the P² algorithm (Jain & Chlamtac,
// CACM 1985): five markers track the target quantile and its
// neighborhood, adjusted parabolically as observations arrive. P² is an
// approximation; stream_test.go documents and enforces its tolerance
// against the exact Sorted results on random and adversarial inputs.

import (
	"fmt"
	"math"
)

// Moments accumulates running count, mean, variance (Welford) and
// extrema in O(1) memory. The zero value is ready to use.
type Moments struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation.
func (m *Moments) Add(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of observations folded.
func (m *Moments) N() int { return m.n }

// Mean returns the running mean; it panics on an empty accumulator,
// like the batch Mean.
func (m *Moments) Mean() float64 {
	if m.n == 0 {
		panic("stats: Moments.Mean of empty accumulator")
	}
	return m.mean
}

// Std returns the running sample standard deviation (n−1 denominator);
// it panics with fewer than 2 observations, like the batch Std.
func (m *Moments) Std() float64 {
	if m.n < 2 {
		panic("stats: Moments.Std needs at least 2 samples")
	}
	return math.Sqrt(m.m2 / float64(m.n-1))
}

// Min returns the smallest observation; it panics on empty input.
func (m *Moments) Min() float64 {
	if m.n == 0 {
		panic("stats: Moments.Min of empty accumulator")
	}
	return m.min
}

// Max returns the largest observation; it panics on empty input.
func (m *Moments) Max() float64 {
	if m.n == 0 {
		panic("stats: Moments.Max of empty accumulator")
	}
	return m.max
}

// P2Quantile estimates a single quantile online with the P² algorithm:
// five markers whose heights converge to the p-quantile and its
// bracketing positions, O(1) memory and O(1) per observation. Until
// five observations have arrived the estimate is exact (computed from
// the stored observations with the package's interpolation).
type P2Quantile struct {
	p   float64
	n   int
	q   [5]float64 // marker heights
	pos [5]float64 // marker positions (1-based)
	des [5]float64 // desired marker positions
	inc [5]float64 // desired position increments per observation
}

// NewP2Quantile returns an estimator for the quantile p in (0, 1),
// e.g. 0.5 for the median. It panics on out-of-range p.
func NewP2Quantile(p float64) *P2Quantile {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("stats: P2 quantile %v outside (0,1)", p))
	}
	return &P2Quantile{p: p}
}

// P returns the target quantile.
func (s *P2Quantile) P() float64 { return s.p }

// N returns the number of observations folded.
func (s *P2Quantile) N() int { return s.n }

// Add folds one observation.
func (s *P2Quantile) Add(x float64) {
	if s.n < 5 {
		// Insertion into the sorted prefix.
		i := s.n
		for i > 0 && s.q[i-1] > x {
			s.q[i] = s.q[i-1]
			i--
		}
		s.q[i] = x
		s.n++
		if s.n == 5 {
			p := s.p
			s.pos = [5]float64{1, 2, 3, 4, 5}
			s.des = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			s.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
		}
		return
	}
	s.n++

	// Locate the cell and update the extreme markers.
	var k int
	switch {
	case x < s.q[0]:
		s.q[0] = x
		k = 0
	case x >= s.q[4]:
		if x > s.q[4] {
			s.q[4] = x
		}
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < s.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		s.pos[i]++
	}
	for i := range s.des {
		s.des[i] += s.inc[i]
	}

	// Adjust the interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := s.des[i] - s.pos[i]
		if !((d >= 1 && s.pos[i+1]-s.pos[i] > 1) || (d <= -1 && s.pos[i-1]-s.pos[i] < -1)) {
			continue
		}
		sign := 1.0
		if d < 0 {
			sign = -1
		}
		// Piecewise-parabolic prediction; fall back to linear when it
		// would leave the bracketing heights.
		qi := s.parabolic(i, sign)
		if !(s.q[i-1] < qi && qi < s.q[i+1]) {
			qi = s.linear(i, sign)
		}
		s.q[i] = qi
		s.pos[i] += sign
	}
}

func (s *P2Quantile) parabolic(i int, d float64) float64 {
	q, n := &s.q, &s.pos
	return q[i] + d/(n[i+1]-n[i-1])*
		((n[i]-n[i-1]+d)*(q[i+1]-q[i])/(n[i+1]-n[i])+
			(n[i+1]-n[i]-d)*(q[i]-q[i-1])/(n[i]-n[i-1]))
}

func (s *P2Quantile) linear(i int, d float64) float64 {
	q, n := &s.q, &s.pos
	j := i + int(d)
	return q[i] + d*(q[j]-q[i])/(n[j]-n[i])
}

// Value returns the current quantile estimate. It panics on an empty
// accumulator; with fewer than five observations it is exact.
func (s *P2Quantile) Value() float64 {
	if s.n == 0 {
		panic("stats: P2Quantile.Value of empty accumulator")
	}
	if s.n < 5 {
		return Sorted(s.q[:s.n]).Percentile(s.p * 100)
	}
	return s.q[2]
}

// WarmStart initializes the estimator from a sorted sample, as if its
// observations had been folded already: the markers are placed on the
// exact order statistics at their desired positions. Folding a bounded
// exact prefix and warm-starting P² from it removes the algorithm's
// cold-start error on autocorrelated series — the hybrid the
// StreamingQuantiles type packages. The receiver must be empty and the
// sample at least five observations.
func (s *P2Quantile) WarmStart(sorted Sorted) {
	if s.n != 0 {
		panic("stats: WarmStart on a non-empty estimator")
	}
	n := len(sorted)
	if n < 5 {
		panic("stats: WarmStart needs at least 5 observations")
	}
	p := s.p
	s.n = n
	s.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	for i, d := range s.inc {
		want := 1 + float64(n-1)*d
		s.des[i] = want
		pos := int(math.Round(want))
		// Clamp to strict monotonicity with the ends pinned.
		if lo := i + 1; pos < lo {
			pos = lo
		}
		if hi := n - (4 - i); pos > hi {
			pos = hi
		}
		if i > 0 && float64(pos) <= s.pos[i-1] {
			pos = int(s.pos[i-1]) + 1
		}
		s.pos[i] = float64(pos)
		s.q[i] = sorted[pos-1]
	}
}

// DefaultExactPrefix is the exact-prefix budget of StreamingQuantiles:
// 32k float64s, 256 KiB — a fixed constant independent of stream
// length. Experiment report series below it (every quick-mode run, and
// every windowed accumulator) are summarized exactly; longer streams
// pay P²'s documented approximation only past this horizon, warm-
// started from an already-converged marker placement.
const DefaultExactPrefix = 32768

// StreamingQuantiles estimates several quantiles of one stream in
// bounded memory with a hybrid scheme: observations are buffered
// exactly up to a fixed prefix budget; if the stream outgrows it, the
// buffer is sorted once, each level's P² estimator is warm-started
// from the exact order statistics, the buffer is released, and
// subsequent observations fold in O(1). Short streams (the common case
// for report summaries) therefore get *exact* answers, and long
// streams get P² without its cold-start error on autocorrelated
// series — at a memory ceiling that never depends on the stream.
type StreamingQuantiles struct {
	levels []float64
	limit  int

	buf    []float64 // exact prefix; nil once switched to P²
	sorted bool      // buf is currently sorted
	ests   []*P2Quantile
	n      int
}

// NewStreamingQuantiles returns an empty accumulator for the given
// quantile levels in (0, 1), with the DefaultExactPrefix budget. It
// panics on out-of-range levels, like NewP2Quantile.
func NewStreamingQuantiles(levels ...float64) *StreamingQuantiles {
	s := &StreamingQuantiles{
		levels: append([]float64(nil), levels...),
		limit:  DefaultExactPrefix,
	}
	for _, p := range levels {
		if !(p > 0 && p < 1) {
			panic(fmt.Sprintf("stats: quantile level %v outside (0,1)", p))
		}
	}
	return s
}

// SetExactPrefix overrides the exact-prefix budget (at least 5, the P²
// marker count). It must be called before the first Add.
func (s *StreamingQuantiles) SetExactPrefix(n int) {
	if s.n != 0 {
		panic("stats: SetExactPrefix after observations were folded")
	}
	if n < 5 {
		panic("stats: exact prefix must hold at least 5 observations")
	}
	s.limit = n
}

// Add folds one observation.
func (s *StreamingQuantiles) Add(x float64) {
	s.n++
	if s.ests != nil {
		for _, e := range s.ests {
			e.Add(x)
		}
		return
	}
	s.buf = append(s.buf, x)
	s.sorted = false
	if len(s.buf) < s.limit {
		return
	}
	// Switch regimes: one sort, then exact warm starts.
	sorted := NewSorted(s.buf)
	s.ests = make([]*P2Quantile, len(s.levels))
	for i, p := range s.levels {
		s.ests[i] = NewP2Quantile(p)
		s.ests[i].WarmStart(sorted)
	}
	s.buf, s.sorted = nil, false
}

// N returns the number of observations folded.
func (s *StreamingQuantiles) N() int { return s.n }

// Exact reports whether the accumulator is still in the exact-prefix
// regime (every Value is an exact order statistic).
func (s *StreamingQuantiles) Exact() bool { return s.ests == nil }

// Value returns the current estimate of level i (indexing the levels
// passed at construction). It panics on an empty accumulator.
func (s *StreamingQuantiles) Value(i int) float64 {
	if s.n == 0 {
		panic("stats: StreamingQuantiles.Value of empty accumulator")
	}
	if s.ests != nil {
		return s.ests[i].Value()
	}
	if !s.sorted {
		s.buf = []float64(NewSorted(s.buf))
		s.sorted = true
	}
	return Sorted(s.buf).Percentile(s.levels[i] * 100)
}

// StreamingFiveNum folds the paper's five percentile curves online: a
// StreamingQuantiles over the levels of PaperPercentiles.
type StreamingFiveNum struct {
	qs *StreamingQuantiles
}

// NewStreamingFiveNum returns an empty accumulator.
func NewStreamingFiveNum() *StreamingFiveNum {
	levels := make([]float64, len(PaperPercentiles))
	for i, p := range PaperPercentiles {
		levels[i] = p / 100
	}
	return &StreamingFiveNum{qs: NewStreamingQuantiles(levels...)}
}

// Add folds one observation into all five estimators.
func (f *StreamingFiveNum) Add(x float64) { f.qs.Add(x) }

// N returns the number of observations folded.
func (f *StreamingFiveNum) N() int { return f.qs.N() }

// FiveNum returns the current five-number estimate. It panics on an
// empty accumulator, like the batch FiveNumOf.
func (f *StreamingFiveNum) FiveNum() FiveNum {
	if f.qs.N() == 0 {
		panic("stats: StreamingFiveNum of empty accumulator")
	}
	return FiveNum{
		P99: f.qs.Value(0), P75: f.qs.Value(1), P50: f.qs.Value(2),
		P25: f.qs.Value(3), P01: f.qs.Value(4),
	}
}

// Median returns the current median estimate.
func (f *StreamingFiveNum) Median() float64 { return f.qs.Value(2) }

// IQR returns the current inter-quartile range estimate.
func (f *StreamingFiveNum) IQR() float64 { return f.qs.Value(1) - f.qs.Value(3) }

// MedianAbs estimates the median of |x| online: the robust error scale
// the experiment reports summarize series by.
type MedianAbs struct {
	q *StreamingQuantiles
}

// NewMedianAbs returns an empty accumulator.
func NewMedianAbs() *MedianAbs { return &MedianAbs{q: NewStreamingQuantiles(0.5)} }

// Add folds one observation (its absolute value is accumulated).
func (m *MedianAbs) Add(x float64) { m.q.Add(math.Abs(x)) }

// N returns the number of observations folded.
func (m *MedianAbs) N() int { return m.q.N() }

// Value returns the current median-|x| estimate; it panics on an empty
// accumulator.
func (m *MedianAbs) Value() float64 { return m.q.Value(0) }

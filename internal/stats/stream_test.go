package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// P² error budget, documented per input shape as a fraction of the
// sample's inter-quartile range (plus an absolute floor for degenerate
// spreads). These are the bounds the experiment rewiring relies on —
// the shape checks in internal/experiments sit an order of magnitude
// above the well-behaved rows:
//
//   - random (the shape experiment error series actually have):
//     0.05·IQR at interior levels, 0.35·IQR at the 1/99 tails;
//   - monotone sorted/reversed (the adversarial worst case — P²'s
//     markers trail a drifting distribution): 0.3·IQR at the median,
//     1.2·IQR elsewhere. Genuinely drifting inputs should be windowed,
//     as the longrun experiment does;
//   - constant: exact to 1e-12;
//   - heavy-tailed (Pareto α=1.3, infinite variance): interior levels
//     as random; tails within 50% relative.
const (
	p2TolIQRFrac     = 0.05
	p2TolIQRTail     = 0.35
	p2TolMonoMedian  = 0.3
	p2TolMonoOther   = 1.2
	p2TolHeavyTailed = 0.5 // relative, tail levels only
	p2TolAbs         = 1e-12
)

// p2Tol returns the documented absolute tolerance for one shape/level
// pair, or a negative value when the relative heavy-tail bound applies.
func p2Tol(shape string, p, iqr float64) float64 {
	tail := p <= 0.01 || p >= 0.99
	switch shape {
	case "sorted", "reversed":
		if p == 0.5 {
			return p2TolMonoMedian*iqr + p2TolAbs
		}
		return p2TolMonoOther*iqr + p2TolAbs
	case "heavy":
		if tail {
			return -1
		}
	}
	if tail {
		return p2TolIQRTail*iqr + p2TolAbs
	}
	return p2TolIQRFrac*iqr + p2TolAbs
}

// inputShapes generates the test corpus: random, sorted (adversarial
// for P² marker movement), reverse-sorted, constant, and heavy-tailed.
func inputShapes(n int) map[string][]float64 {
	src := rng.New(20041025)
	random := make([]float64, n)
	for i := range random {
		random[i] = src.Normal(-30e-6, 20e-6)
	}
	sortedCopy := NewSorted(random)
	reverse := make([]float64, n)
	for i := range reverse {
		reverse[i] = sortedCopy[len(sortedCopy)-1-i]
	}
	constant := make([]float64, n)
	for i := range constant {
		constant[i] = 42.5e-6
	}
	heavy := make([]float64, n)
	for i := range heavy {
		heavy[i] = src.Pareto(1e-5, 1.3)
		if src.Bool(0.5) {
			heavy[i] = -heavy[i]
		}
	}
	return map[string][]float64{
		"random":   random,
		"sorted":   []float64(sortedCopy),
		"reversed": reverse,
		"constant": constant,
		"heavy":    heavy,
	}
}

func TestP2QuantileConvergesToSorted(t *testing.T) {
	levels := []float64{0.01, 0.25, 0.5, 0.75, 0.99}
	for name, xs := range inputShapes(50000) {
		sorted := NewSorted(xs)
		iqr := sorted.IQR()
		for _, p := range levels {
			est := NewP2Quantile(p)
			for _, x := range xs {
				est.Add(x)
			}
			want := sorted.Percentile(p * 100)
			tol := p2Tol(name, p, iqr)
			if tol < 0 {
				// Pareto(α=1.3) tails have infinite variance; the
				// documented bound there is relative.
				if rel := math.Abs(est.Value()-want) / math.Abs(want); rel > p2TolHeavyTailed {
					t.Errorf("%s p=%.2f: P² %.3g vs exact %.3g (rel %.2f)",
						name, p, est.Value(), want, rel)
				}
				continue
			}
			if d := math.Abs(est.Value() - want); d > tol {
				t.Errorf("%s p=%.2f: P² %.6g vs exact %.6g (|Δ|=%.3g > tol %.3g)",
					name, p, est.Value(), want, d, tol)
			}
		}
	}
}

func TestP2QuantileSmallSamplesExact(t *testing.T) {
	xs := []float64{5, 1, 4, 2}
	for _, p := range []float64{0.25, 0.5, 0.9} {
		est := NewP2Quantile(p)
		for i, x := range xs {
			est.Add(x)
			want := Percentile(xs[:i+1], p*100)
			if est.Value() != want {
				t.Errorf("n=%d p=%v: got %v, want exact %v", i+1, p, est.Value(), want)
			}
		}
	}
}

func TestP2QuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2Quantile(%v) did not panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("empty Value did not panic")
		}
	}()
	NewP2Quantile(0.5).Value()
}

// TestStreamingQuantilesExactBelowPrefix pins the hybrid's headline
// property: any stream shorter than the exact-prefix budget — every
// quick-mode experiment series — is summarized *exactly*, adversarial
// shapes included.
func TestStreamingQuantilesExactBelowPrefix(t *testing.T) {
	levels := []float64{0.01, 0.25, 0.5, 0.75, 0.99}
	for name, xs := range inputShapes(20000) {
		s := NewStreamingQuantiles(levels...)
		for _, x := range xs {
			s.Add(x)
		}
		if !s.Exact() {
			t.Fatalf("%s: %d observations left the exact regime (budget %d)",
				name, len(xs), DefaultExactPrefix)
		}
		sorted := NewSorted(xs)
		for i, p := range levels {
			if got, want := s.Value(i), sorted.Percentile(p*100); got != want {
				t.Errorf("%s p=%.2f: got %v, want exact %v", name, p, got, want)
			}
		}
		if s.N() != len(xs) {
			t.Errorf("%s: N=%d, want %d", name, s.N(), len(xs))
		}
	}
}

// TestStreamingQuantilesWarmStarted forces the regime switch with a
// small prefix budget and holds the warm-started tail to the documented
// P² tolerances — on random and heavy-tailed inputs tighter than the
// cold-start bounds, because the markers begin on converged positions.
func TestStreamingQuantilesWarmStarted(t *testing.T) {
	levels := []float64{0.01, 0.25, 0.5, 0.75, 0.99}
	for name, xs := range inputShapes(50000) {
		s := NewStreamingQuantiles(levels...)
		s.SetExactPrefix(4096)
		for _, x := range xs {
			s.Add(x)
		}
		if s.Exact() {
			t.Fatalf("%s: did not switch regimes past the prefix", name)
		}
		sorted := NewSorted(xs)
		iqr := sorted.IQR()
		for i, p := range levels {
			if name == "heavy" && p == 0.5 {
				// The ±Pareto mixture has zero density in (−x_m, x_m):
				// its median is sign-ambiguous and any estimator may land
				// on either edge of the gap, a property of the input, not
				// the estimator.
				continue
			}
			got, want := s.Value(i), sorted.Percentile(p*100)
			tol := p2Tol(name, p, iqr)
			if tol < 0 {
				if rel := math.Abs(got-want) / math.Abs(want); rel > p2TolHeavyTailed {
					t.Errorf("%s p=%.2f: hybrid %.3g vs exact %.3g (rel %.2f)",
						name, p, got, want, rel)
				}
				continue
			}
			if d := math.Abs(got - want); d > tol {
				t.Errorf("%s p=%.2f: hybrid %.6g vs exact %.6g (|Δ|=%.3g > tol %.3g)",
					name, p, got, want, d, tol)
			}
		}
	}
}

func TestStreamingQuantilesValidation(t *testing.T) {
	s := NewStreamingQuantiles(0.5)
	s.Add(1)
	for _, fn := range []func(){
		func() { NewStreamingQuantiles(0.5).Value(0) },
		func() { NewStreamingQuantiles(1.5) },
		func() { s.SetExactPrefix(64) },
		func() { NewStreamingQuantiles(0.5).SetExactPrefix(3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestStreamingFiveNumMatchesBatch(t *testing.T) {
	for name, xs := range inputShapes(20000) {
		f := NewStreamingFiveNum()
		for _, x := range xs {
			f.Add(x)
		}
		// 20000 < DefaultExactPrefix: the hybrid must be exact here.
		got, want := f.FiveNum(), FiveNumOf(xs)
		if got != want {
			t.Errorf("%s: streaming %+v vs batch %+v", name, got, want)
		}
		if f.N() != len(xs) {
			t.Errorf("%s: N=%d, want %d", name, f.N(), len(xs))
		}
		if f.Median() != want.P50 || f.IQR() != want.P75-want.P25 {
			t.Errorf("%s: Median/IQR disagree with FiveNum", name)
		}
	}
}

func TestMomentsMatchBatch(t *testing.T) {
	for name, xs := range inputShapes(10000) {
		var m Moments
		for _, x := range xs {
			m.Add(x)
		}
		if got, want := m.Mean(), Mean(xs); math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Errorf("%s mean: %v vs %v", name, got, want)
		}
		if got, want := m.Std(), Std(xs); math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("%s std: %v vs %v", name, got, want)
		}
		lo, hi := MinMax(xs)
		if m.Min() != lo || m.Max() != hi {
			t.Errorf("%s extrema: (%v,%v) vs (%v,%v)", name, m.Min(), m.Max(), lo, hi)
		}
	}
}

func TestMedianAbsMatchesBatch(t *testing.T) {
	for name, xs := range inputShapes(20000) {
		m := NewMedianAbs()
		abs := make([]float64, len(xs))
		for i, x := range xs {
			m.Add(x)
			abs[i] = math.Abs(x)
		}
		// Below the exact-prefix budget the hybrid is exact.
		if got, want := m.Value(), NewSorted(abs).Median(); got != want {
			t.Errorf("%s: streaming median|x| %.6g vs batch %.6g", name, got, want)
		}
	}
}

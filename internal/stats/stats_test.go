package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPercentileBasics(t *testing.T) {
	xs := []float64{3, 1, 2, 5, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("P25 = %v", got)
	}
	// Interpolation: P10 of [1..5] is 1.4.
	if got := Percentile(xs, 10); math.Abs(got-1.4) > 1e-12 {
		t.Errorf("P10 = %v, want 1.4", got)
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
		func() { Mean(nil) },
		func() { Std([]float64{1}) },
		func() { MinMax(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPercentileOrderingQuick(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q := Quantiles(xs, 1, 25, 50, 75, 99)
		return sort.Float64sAreSorted(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianIQRGaussian(t *testing.T) {
	src := rng.New(7)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = src.Normal(10, 2)
	}
	if med := Median(xs); math.Abs(med-10) > 0.05 {
		t.Errorf("median = %v", med)
	}
	// IQR of a Gaussian is 1.349σ.
	if iqr := IQR(xs); math.Abs(iqr-1.349*2) > 0.05 {
		t.Errorf("IQR = %v, want ~%v", iqr, 1.349*2)
	}
}

func TestFiveNumOf(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	fn := FiveNumOf(xs)
	if !(fn.P01 < fn.P25 && fn.P25 < fn.P50 && fn.P50 < fn.P75 && fn.P75 < fn.P99) {
		t.Errorf("five-number summary not ordered: %+v", fn)
	}
	if math.Abs(fn.P50-499.5) > 1 {
		t.Errorf("P50 = %v", fn.P50)
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v", m)
	}
	if s := Std(xs); math.Abs(s-2.138) > 0.01 {
		t.Errorf("std = %v", s)
	}
	lo, hi := MinMax(xs)
	if lo != 2 || hi != 9 {
		t.Errorf("minmax = %v, %v", lo, hi)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{-1, 0, 0.5, 0.999, 1, 5}, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 1 || h.Counts[2] != 1 || h.Counts[3] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.N != 6 {
		t.Errorf("N = %d", h.N)
	}
	if c := h.BinCenter(0); math.Abs(c-0.125) > 1e-12 {
		t.Errorf("bin 0 center = %v", c)
	}
	if f := h.Fraction(0); math.Abs(f-1.0/6) > 1e-12 {
		t.Errorf("fraction = %v", f)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(nil, 1, 1, 4); err == nil {
		t.Error("empty range accepted")
	}
}

func TestHistogramEdgeValue(t *testing.T) {
	// A value infinitesimally below Hi must land in the last bin, not
	// out of range, even under float rounding.
	h, err := NewHistogram(nil, 0, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(math.Nextafter(0.3, 0))
	if h.Counts[2] != 1 || h.Over != 0 {
		t.Errorf("edge value: counts=%v over=%d", h.Counts, h.Over)
	}
}

func TestCoverageBounds(t *testing.T) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64(i)
	}
	lo, hi := CoverageBounds(xs, 0.99)
	if lo > 100 || lo < 0 {
		t.Errorf("lo = %v", lo)
	}
	if hi < 9899 || hi > 9999 {
		t.Errorf("hi = %v", hi)
	}
	inside := 0
	for _, x := range xs {
		if x >= lo && x <= hi {
			inside++
		}
	}
	if frac := float64(inside) / float64(len(xs)); math.Abs(frac-0.99) > 0.005 {
		t.Errorf("coverage = %v", frac)
	}
}

func TestQuantilesSingleSortConsistent(t *testing.T) {
	src := rng.New(8)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = src.Float64()
	}
	q := Quantiles(xs, 1, 50, 99)
	if q[0] != Percentile(xs, 1) || q[1] != Percentile(xs, 50) || q[2] != Percentile(xs, 99) {
		t.Error("Quantiles disagrees with Percentile")
	}
}

func TestSortedMatchesSliceAPI(t *testing.T) {
	src := rng.New(21)
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = src.Float64() - 0.5
	}
	s := NewSorted(xs)
	if got, want := s.Median(), Median(xs); got != want {
		t.Errorf("Sorted.Median = %v, Median = %v", got, want)
	}
	if got, want := s.IQR(), IQR(xs); got != want {
		t.Errorf("Sorted.IQR = %v, IQR = %v", got, want)
	}
	for _, p := range []float64{0, 1, 25, 50, 75, 99, 100} {
		if got, want := s.Percentile(p), Percentile(xs, p); got != want {
			t.Errorf("Sorted.Percentile(%v) = %v, Percentile = %v", p, got, want)
		}
	}
	q := s.Quantiles(PaperPercentiles...)
	for i, want := range Quantiles(xs, PaperPercentiles...) {
		if q[i] != want {
			t.Errorf("Sorted.Quantiles[%d] = %v, want %v", i, q[i], want)
		}
	}
	// NewSorted copies: the caller's slice is untouched, and the sorted
	// view is stable across queries.
	if sort.Float64sAreSorted(xs) {
		t.Error("input slice was sorted in place")
	}
	single := NewSorted([]float64{7})
	if single.Percentile(3) != 7 || single.Median() != 7 {
		t.Error("single-element Sorted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-range percentile")
			}
		}()
		s.Percentile(101)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for empty NewSorted")
			}
		}()
		NewSorted(nil)
	}()
}

func BenchmarkQuantiles(b *testing.B) {
	src := rng.New(1)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Quantiles(xs, PaperPercentiles...)
	}
}

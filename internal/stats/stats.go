// Package stats provides the robust summary statistics the paper's
// evaluation reports. The paper deliberately summarizes error series
// with order statistics rather than moments — congestion makes the
// tails heavy, and a mean would be dominated by the rare excursions
// the algorithms are designed to ignore — so the package centers on:
//
//   - Percentile/Quantiles/FiveNum: the 1/25/50/75/99-percentile
//     curves of Figures 9 and 10 (linear interpolation between order
//     statistics);
//   - Median and IQR: the location/spread pair of Figure 12;
//   - CoverageBounds: the tightest interval holding a given fraction
//     of the data, used to frame the 99%-coverage histograms;
//   - Histogram: fixed-bin counts with fractional normalization;
//   - Mean/Std/MinMax: the conventional moments, for the few places
//     the paper does use them (oscillator characterization).
//
// Inputs are plain []float64; functions panic on empty input or
// out-of-range parameters — callers own validation, these are
// evaluation-path helpers, not a public API.
//
//repro:deterministic
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sorted is a sorted copy of a sample: the single-sort entry point
// behind every order statistic in this package. Callers that evaluate
// several percentiles of one slice should build a Sorted once and
// query it — each query is O(1) against the one O(n log n) sort —
// instead of paying a fresh copy+sort per call through the
// slice-taking convenience wrappers.
type Sorted []float64

// NewSorted returns a sorted copy of xs. It panics on empty input;
// callers own validation, like the rest of the package.
func NewSorted(xs []float64) Sorted {
	if len(xs) == 0 {
		panic("stats: NewSorted of empty slice")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return Sorted(cp)
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between order statistics. It panics on out-of-range p.
func (s Sorted) Percentile(p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	if len(s) == 1 {
		return s[0]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 50th percentile.
func (s Sorted) Median() float64 { return s.Percentile(50) }

// IQR returns the inter-quartile range (75th − 25th percentile).
func (s Sorted) IQR() float64 { return s.Percentile(75) - s.Percentile(25) }

// Quantiles evaluates several percentiles against the one sort.
func (s Sorted) Quantiles(ps ...float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = s.Percentile(p)
	}
	return out
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using
// linear interpolation between order statistics. It panics on empty
// input or out-of-range p; callers own input validation. Evaluating
// several percentiles of the same slice? Build one NewSorted instead.
func Percentile(xs []float64, p float64) float64 {
	return NewSorted(xs).Percentile(p)
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// IQR returns the inter-quartile range (75th − 25th percentile).
func IQR(xs []float64) float64 { return NewSorted(xs).IQR() }

// Quantiles evaluates several percentiles with a single sort.
func Quantiles(xs []float64, ps ...float64) []float64 {
	return NewSorted(xs).Quantiles(ps...)
}

// PaperPercentiles are the five percentile levels plotted throughout the
// paper's sensitivity figures, top curve to bottom curve.
var PaperPercentiles = []float64{99, 75, 50, 25, 1}

// FiveNum reports the paper's five percentile curves for one sample.
type FiveNum struct {
	P99, P75, P50, P25, P01 float64
}

// FiveNumOf computes the paper's five percentiles.
func FiveNumOf(xs []float64) FiveNum {
	q := Quantiles(xs, PaperPercentiles...)
	return FiveNum{P99: q[0], P75: q[1], P50: q[2], P25: q[3], P01: q[4]}
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty slice")
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation (n−1 denominator).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		panic("stats: Std needs at least 2 samples")
	}
	m := Mean(xs)
	var acc float64
	for _, x := range xs {
		d := x - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(xs)-1))
}

// MinMax returns the extrema of xs.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Histogram is a fixed-bin histogram over [Lo, Hi); values outside the
// range are counted in Under/Over.
type Histogram struct {
	Lo, Hi      float64
	Counts      []int
	Under, Over int
	N           int
}

// NewHistogram builds a histogram of xs with the given number of bins.
func NewHistogram(xs []float64, lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: bins must be >= 1")
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: invalid range [%v, %v)", lo, hi)
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	for _, x := range xs {
		h.Add(x)
	}
	return h, nil
}

// Add accumulates one value.
func (h *Histogram) Add(x float64) {
	h.N++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if idx >= len(h.Counts) { // guard float edge
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns the fraction of all added values that landed in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// CoverageBounds returns the narrowest [lo, hi] interval that contains
// the central frac (e.g. 0.99) of the sample, as used for Figure 12's
// "exactly 99% of all values" histograms.
func CoverageBounds(xs []float64, frac float64) (lo, hi float64) {
	if frac <= 0 || frac > 1 {
		panic("stats: coverage fraction out of (0, 1]")
	}
	tail := (1 - frac) / 2 * 100
	q := Quantiles(xs, tail, 100-tail)
	return q[0], q[1]
}

//go:build linux && amd64

package ntp

// sysSendmmsg is __NR_sendmmsg on linux/amd64 (307). The stdlib
// syscall package was frozen before kernel 3.0 introduced sendmmsg, so
// the number is carried here rather than pulling in x/sys/unix (this
// repository deliberately has no dependencies outside the standard
// library; see reuseport_linux.go for the same trade on SO_REUSEPORT).
// SYS_RECVMMSG predates the freeze and comes from package syscall.
const sysSendmmsg = 307

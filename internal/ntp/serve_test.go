package ntp

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// rawQuery sends raw bytes to addr and returns the reply (or times out).
func rawQuery(t *testing.T, addr net.Addr, req []byte, want bool) []byte {
	t.Helper()
	conn, err := net.Dial("udp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(req); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	if err != nil {
		if want {
			t.Fatalf("no reply: %v", err)
		}
		return nil
	}
	if !want {
		t.Fatalf("got a %d-byte reply to a packet that must be dropped", n)
	}
	return buf[:n]
}

// clientPacket builds a client-mode request with the given version.
func clientPacket(version uint8) []byte {
	p := Packet{Version: 4, Mode: ModeClient, Transmit: Time64FromTime(time.Now())}
	b := p.Marshal()
	b[0] = b[0]&^(0x7<<3) | (version&0x7)<<3 // set raw version bits
	return b[:]
}

// TestServerVersionClamp: v1–v4 requests are answered with the
// request's version echoed; a v5+ request is answered with the reply
// version clamped to 4; a version-0 packet is dropped as malformed.
func TestServerVersionClamp(t *testing.T) {
	addr, stop := startTestServer(t, SystemServerClock())
	defer stop()

	for _, v := range []uint8{1, 2, 3, 4} {
		reply := rawQuery(t, addr, clientPacket(v), true)
		var resp Packet
		if err := resp.Unmarshal(reply); err != nil {
			t.Fatalf("v%d: bad reply: %v", v, err)
		}
		if resp.Version != v {
			t.Errorf("v%d request answered with version %d", v, resp.Version)
		}
		if resp.Mode != ModeServer {
			t.Errorf("v%d: mode = %v", v, resp.Mode)
		}
	}
	for _, v := range []uint8{5, 6, 7} {
		reply := rawQuery(t, addr, clientPacket(v), true)
		var resp Packet
		if err := resp.Unmarshal(reply); err != nil {
			t.Fatalf("v%d: bad reply: %v", v, err)
		}
		if resp.Version != 4 {
			t.Errorf("v%d request answered with version %d, want clamp to 4", v, resp.Version)
		}
	}
	rawQuery(t, addr, clientPacket(0), false)
}

// TestServerDropsShortAndCounts: packets shorter than the 48-byte v4
// header are dropped without a reply, and every outcome is counted.
func TestServerDropsShortAndCounts(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Clock: SystemServerClock()})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(pc) }()
	defer func() { pc.Close(); <-done }()

	rawQuery(t, pc.LocalAddr(), make([]byte, 20), false) // short
	rawQuery(t, pc.LocalAddr(), clientPacket(0), false)  // version 0
	srvMode := Packet{Version: 4, Mode: ModeServer}      // non-client
	b := srvMode.Marshal()
	rawQuery(t, pc.LocalAddr(), b[:], false)
	rawQuery(t, pc.LocalAddr(), clientPacket(4), true) // served

	deadline := time.Now().Add(time.Second)
	for {
		st := srv.Stats()
		if st.Requests >= 4 && st.Replied == 1 {
			if st.Short != 1 || st.Malformed != 1 || st.NonClient != 1 {
				t.Fatalf("stats = %+v", st)
			}
			if st.Dropped() != 3 {
				t.Fatalf("Dropped() = %d, want 3", st.Dropped())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("counters never settled: %+v", srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerSampleClockHealth: a dynamic SampleClock drives the
// advertised stratum, leap, precision, refid and root fields of every
// reply — the mechanism the stratum-2 relay serves through.
func TestServerSampleClockHealth(t *testing.T) {
	sample := ClockSample{
		Time:      Time64FromTime(time.Now()),
		Leap:      LeapNotSynced,
		Stratum:   2,
		Precision: -29,
		RefID:     RefIDFromString("TSCC"),
		RootDelay: Short32FromSeconds(0.001),
		RootDisp:  Short32FromSeconds(0.002),
	}
	srv, err := NewServer(ServerConfig{Sample: func() ClockSample { return sample }})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(pc) }()
	defer func() { pc.Close(); <-done }()

	reply := rawQuery(t, pc.LocalAddr(), clientPacket(4), true)
	var resp Packet
	if err := resp.Unmarshal(reply); err != nil {
		t.Fatal(err)
	}
	if resp.Leap != LeapNotSynced || resp.Stratum != 2 || resp.Precision != -29 ||
		resp.RefID != sample.RefID || resp.RootDelay != sample.RootDelay ||
		resp.RootDisp != sample.RootDisp {
		t.Errorf("reply health = %+v, want the sampled values", resp)
	}
	if resp.Transmit != sample.Time {
		t.Errorf("Transmit = %v, want the sample clock value %v", resp.Transmit, sample.Time)
	}
	// Receive is the sample time backdated by the kernel-measured
	// dwell when the batch loop has RX timestamps (bounded by its 1 s
	// staleness clamp), or exactly the sample time without them.
	if dwell := sample.Time.Seconds() - resp.Receive.Seconds(); dwell < 0 || dwell > 1 {
		t.Errorf("Receive = %v, want sample clock %v backdated by at most 1s", resp.Receive, sample.Time)
	}
}

// failingConn is a PacketConn stub whose reads fail with a genuine
// (non-timeout) error; blockingConn blocks until closed, like an idle
// UDP socket.
type failingConn struct {
	net.PacketConn
	err error
}

func (c *failingConn) ReadFrom([]byte) (int, net.Addr, error) { return 0, nil, c.err }
func (c *failingConn) Close() error                           { return nil }

type blockingConn struct {
	net.PacketConn
	closed chan struct{}
	once   sync.Once
}

func (c *blockingConn) ReadFrom([]byte) (int, net.Addr, error) {
	<-c.closed
	return 0, nil, net.ErrClosed
}
func (c *blockingConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// scriptedConn feeds Serve a fixed sequence of request packets and
// fails reply writes with writeErr until it is cleared; after the
// script is exhausted, reads block until Close.
type scriptedConn struct {
	net.PacketConn
	reqs     [][]byte
	writeErr error
	wrote    int
	closed   chan struct{}
	once     sync.Once
}

func (c *scriptedConn) ReadFrom(b []byte) (int, net.Addr, error) {
	if len(c.reqs) == 0 {
		<-c.closed
		return 0, nil, net.ErrClosed
	}
	req := c.reqs[0]
	c.reqs = c.reqs[1:]
	copy(b, req)
	return len(req), &net.UDPAddr{IP: net.IPv4bcast, Port: 123}, nil
}

func (c *scriptedConn) WriteTo([]byte, net.Addr) (int, error) {
	if c.writeErr != nil {
		err := c.writeErr
		c.writeErr = nil // fail once, like a spoofed-source EACCES
		return 0, err
	}
	c.wrote++
	return PacketSize, nil
}

func (c *scriptedConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// TestServeSurvivesWriteError: one failed reply write (e.g. EACCES for
// a spoofed broadcast source) is counted and skipped — it must not
// kill the shard, which with fail-fast shards would take down the
// whole relay.
func TestServeSurvivesWriteError(t *testing.T) {
	srv, err := NewServer(ServerConfig{Clock: SystemServerClock()})
	if err != nil {
		t.Fatal(err)
	}
	pc := &scriptedConn{
		reqs:     [][]byte{clientPacket(4), clientPacket(4)},
		writeErr: errors.New("sendto: permission denied"),
		closed:   make(chan struct{}),
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(pc) }()

	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().Replied < 1 {
		select {
		case err := <-done:
			t.Fatalf("Serve died on a per-packet write error: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("second request never served: %+v", srv.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := srv.Stats()
	if st.WriteErrors != 1 || st.Replied != 1 || st.Requests != 2 {
		t.Errorf("stats = %+v, want 2 requests, 1 write error, 1 replied", st)
	}
	pc.Close()
	if err := <-done; !errors.Is(err, net.ErrClosed) {
		t.Errorf("Serve after close = %v, want net.ErrClosed", err)
	}
}

// TestShardsPoisonPill: a shard that keeps dying without a healthy
// stint exhausts its restart budget; Serve must then close the
// remaining shards and report the error — not silently keep serving on
// a partial shard set until the context ends.
func TestShardsPoisonPill(t *testing.T) {
	srv, err := NewServer(ServerConfig{Clock: SystemServerClock()})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("fd fell over")
	sh := &Shards{srv: srv, reuseport: true,
		backoffMin: time.Millisecond,
		restartMax: 3,
		rebindFn: func() (net.PacketConn, error) {
			return &failingConn{err: boom}, nil
		},
		pcs: []net.PacketConn{
			&blockingConn{closed: make(chan struct{})},
			&failingConn{err: boom},
			&blockingConn{closed: make(chan struct{})},
		}}
	done := make(chan error, 1)
	go func() { done <- sh.Serve(context.Background()) }()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("Serve = %v, want the shard's error wrapped", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not fail on a poisoned shard")
	}
	st := sh.Stats()
	if st[1].Restarts != 4 || !errors.Is(st[1].LastError, boom) {
		t.Errorf("poisoned shard stats = %+v, want 4 failures ending in the error", st[1])
	}
	if st[0].Restarts != 0 || st[2].Restarts != 0 {
		t.Errorf("healthy shards restarted: %+v", st)
	}
}

// TestShardsRestartRecovers: a shard whose socket dies transiently is
// restarted on a freshly bound socket and serves again — counted in
// Stats, with no error surfaced to Serve.
func TestShardsRestartRecovers(t *testing.T) {
	srv, err := NewServer(ServerConfig{Clock: SystemServerClock()})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("fd fell over")
	replacement, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rebinds := 0
	sh := &Shards{srv: srv, reuseport: true,
		backoffMin: time.Millisecond,
		rebindFn: func() (net.PacketConn, error) {
			rebinds++
			if rebinds == 1 {
				return &failingConn{err: boom}, nil
			}
			return replacement, nil
		},
		pcs: []net.PacketConn{&failingConn{err: boom}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sh.Serve(ctx) }()

	// Two failures (the initial socket and the first rebind), then the
	// real replacement socket must answer queries.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := sh.Stats(); st[0].Restarts >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard never restarted twice: %+v", sh.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	rawQuery(t, replacement.LocalAddr(), clientPacket(4), true)
	st := sh.Stats()
	if st[0].Restarts != 2 || !errors.Is(st[0].LastError, boom) {
		t.Errorf("stats after recovery = %+v, want exactly 2 failures", st[0])
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve after recovery and cancel = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not drain after cancellation")
	}
}

// TestShardsServeShutdown: N shards answer on one address, drain on
// context cancellation, and share one set of counters.
func TestShardsServeShutdown(t *testing.T) {
	srv, err := NewServer(ServerConfig{Clock: SystemServerClock()})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := srv.ListenShards("udp", "127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Size() != 4 {
		t.Fatalf("Size = %d", sh.Size())
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- sh.Serve(ctx) }()

	// Several concurrent clients, each its own flow (SO_REUSEPORT
	// hashes per flow, so distinct sockets spread across shards).
	const clients, rounds = 8, 5
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("udp", sh.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			counter, _ := MonotonicCounter()
			cl := NewClient(conn, counter, 2*time.Second)
			for i := 0; i < rounds; i++ {
				if _, err := cl.Exchange(); err != nil {
					t.Errorf("exchange: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve after cancel = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not drain after cancellation")
	}
	st := srv.Stats()
	if st.Replied != clients*rounds {
		t.Errorf("Replied = %d, want %d", st.Replied, clients*rounds)
	}
	if st.Requests < st.Replied {
		t.Errorf("Requests %d < Replied %d", st.Requests, st.Replied)
	}
}

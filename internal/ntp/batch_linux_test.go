//go:build linux && (amd64 || arm64)

package ntp

import (
	"encoding/binary"
	"net"
	"syscall"
	"testing"
	"time"
	"unsafe"

	"repro/internal/ratelimit"
)

// tsCmsg builds a well-formed SCM_TIMESTAMPING control message: 16-byte
// cmsghdr followed by three timespecs, software stamp in ts[0].
func tsCmsg(sec, nsec int64) []byte {
	b := make([]byte, 64)
	binary.LittleEndian.PutUint64(b[0:8], 64)
	binary.LittleEndian.PutUint32(b[8:12], uint32(syscall.SOL_SOCKET))
	binary.LittleEndian.PutUint32(b[12:16], scmTimestamping)
	binary.LittleEndian.PutUint64(b[16:24], uint64(sec))
	binary.LittleEndian.PutUint64(b[24:32], uint64(nsec))
	return b
}

// TestParseRxTimestamp drives the OOB walker over real, absent,
// truncated and hostile control-message buffers: every shape the
// kernel can hand the hot loop, plus shapes only a bug could.
func TestParseRxTimestamp(t *testing.T) {
	// A realistic foreign cmsg to precede the timestamp: SO_RXQ_OVFL
	// (level SOL_SOCKET, type 40) carrying a uint32, padded to 24.
	other := make([]byte, 24)
	binary.LittleEndian.PutUint64(other[0:8], 20)
	binary.LittleEndian.PutUint32(other[8:12], uint32(syscall.SOL_SOCKET))
	binary.LittleEndian.PutUint32(other[12:16], 40)

	cases := []struct {
		name     string
		oob      []byte
		wantSec  int64
		wantNsec int64
		wantOK   bool
	}{
		{"real", tsCmsg(1700000000, 123456789), 1700000000, 123456789, true},
		{"empty", nil, 0, 0, false},
		{"absent", other, 0, 0, false},
		{"after other cmsg", append(append([]byte{}, other...), tsCmsg(42, 7)...), 42, 7, true},
		{"truncated header", tsCmsg(1, 2)[:12], 0, 0, false},
		{"truncated payload", tsCmsg(1, 2)[:24], 0, 0, false},
		{"header only", tsCmsg(1, 2)[:16], 0, 0, false},
		{"zero stamp", tsCmsg(0, 0), 0, 0, false},
		{"negative nsec", tsCmsg(5, -1), 0, 0, false},
		{"nsec overflow", tsCmsg(5, 2e9), 0, 0, false},
		{"negative sec", tsCmsg(-5, 0), 0, 0, false},
		{"len zero", func() []byte { b := tsCmsg(1, 2); binary.LittleEndian.PutUint64(b[0:8], 0); return b }(), 0, 0, false},
		{"len beyond buffer", func() []byte { b := tsCmsg(1, 2); binary.LittleEndian.PutUint64(b[0:8], 1<<40); return b }(), 0, 0, false},
		{"wrong level", func() []byte { b := tsCmsg(1, 2); binary.LittleEndian.PutUint32(b[8:12], 41); return b }(), 0, 0, false},
		{"wrong type", func() []byte { b := tsCmsg(1, 2); binary.LittleEndian.PutUint32(b[12:16], 29); return b }(), 0, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sec, nsec, ok := parseRxTimestamp(tc.oob)
			if sec != tc.wantSec || nsec != tc.wantNsec || ok != tc.wantOK {
				t.Errorf("parseRxTimestamp = (%d, %d, %v), want (%d, %d, %v)",
					sec, nsec, ok, tc.wantSec, tc.wantNsec, tc.wantOK)
			}
		})
	}
}

// FuzzParseRxTimestamp: no byte sequence may panic the OOB walker or
// yield an out-of-range timestamp. The loop trusts the kernel; the
// fuzzer does not.
func FuzzParseRxTimestamp(f *testing.F) {
	f.Add(tsCmsg(1700000000, 123456789))
	f.Add([]byte{})
	f.Add(make([]byte, 15))
	f.Add(tsCmsg(0, 0)[:24])
	hostile := tsCmsg(1, 2)
	binary.LittleEndian.PutUint64(hostile[0:8], ^uint64(0))
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, oob []byte) {
		sec, nsec, ok := parseRxTimestamp(oob)
		if ok && (sec < 0 || nsec < 0 || nsec >= 1e9) {
			t.Errorf("accepted out-of-range stamp (%d, %d)", sec, nsec)
		}
		if !ok && (sec != 0 || nsec != 0) {
			t.Errorf("ok=false with nonzero stamp (%d, %d)", sec, nsec)
		}
	})
}

// newTestBatchLoop hand-assembles a batchLoop with filled slabs, as if
// recvmmsg had just returned n valid client requests from distinct v4
// sources, each carrying a fresh kernel RX stamp.
func newTestBatchLoop(t *testing.T, s *Server, n int) *batchLoop {
	t.Helper()
	bl := &batchLoop{
		srv:    s,
		batch:  n,
		pktIn:  make([]byte, n*rxBufSize),
		pktOut: make([]byte, n*PacketSize),
		names:  make([]syscall.RawSockaddrAny, n),
		oob:    make([]byte, n*oobSize),
		riovs:  make([]syscall.Iovec, n),
		rmsgs:  make([]mmsghdr, n),
		siovs:  make([]syscall.Iovec, n),
		smsgs:  make([]mmsghdr, n),
	}
	now := time.Now()
	cmsg := tsCmsg(now.Unix(), int64(now.Nanosecond()))
	for i := 0; i < n; i++ {
		copy(bl.pktIn[i*rxBufSize:], clientPacket(4))
		bl.rmsgs[i].nrecv = PacketSize
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&bl.names[i]))
		sa.Family = syscall.AF_INET
		sa.Addr = [4]byte{192, 0, 2, byte(i)}
		copy(bl.oob[i*oobSize:], cmsg)
		bl.rmsgs[i].hdr.Controllen = uint64(len(cmsg))
	}
	return bl
}

// TestBatchProcessZeroAlloc is the steady-state allocation gate for the
// batched hot path: process() over a full batch — rate limiting by raw
// sockaddr, kernel-stamp parsing, validation, stamping, marshalling —
// must not allocate. This is the runtime check backing the reprolint
// //repro:hotpath static gate, and the satellite assertion that the
// batched rate-limit path has shed the per-packet net.Addr boxing.
func TestBatchProcessZeroAlloc(t *testing.T) {
	lim := ratelimit.New(ratelimit.Config{Rate: 1e12, Burst: 1e12})
	srv, err := NewServer(ServerConfig{Clock: SystemServerClock(), Limit: lim})
	if err != nil {
		t.Fatal(err)
	}
	bl := newTestBatchLoop(t, srv, 16)
	allocs := testing.AllocsPerRun(200, func() {
		if got := bl.process(bl.batch); got != bl.batch {
			t.Fatalf("process replied to %d of %d", got, bl.batch)
		}
		bl.resetHeaders(bl.batch)
	})
	if allocs != 0 {
		t.Errorf("batch process allocates %.1f times per batch, want 0", allocs)
	}
}

// TestBatchProcessReplies checks the pipeline output of a hand-built
// batch: replies are compacted into the out slab in order, carry
// server mode, and each send header is aimed back at its source.
func TestBatchProcessReplies(t *testing.T) {
	srv, err := NewServer(ServerConfig{Clock: SystemServerClock()})
	if err != nil {
		t.Fatal(err)
	}
	bl := newTestBatchLoop(t, srv, 8)
	// Slot 3: too short. Slot 5: wrong mode. Both must be dropped and
	// the replies around them compacted.
	bl.rmsgs[3].nrecv = 12
	bl.pktIn[5*rxBufSize] = bl.pktIn[5*rxBufSize]&^0x7 | byte(ModeServer)

	nOut := bl.process(8)
	if nOut != 6 {
		t.Fatalf("process kept %d replies, want 6", nOut)
	}
	wantSrc := []byte{0, 1, 2, 4, 6, 7} // last octet of each replied-to source
	for k := 0; k < nOut; k++ {
		var resp Packet
		if err := resp.Unmarshal(bl.pktOut[k*PacketSize : (k+1)*PacketSize]); err != nil {
			t.Fatalf("reply %d: %v", k, err)
		}
		if resp.Mode != ModeServer {
			t.Errorf("reply %d: mode = %v", k, resp.Mode)
		}
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(bl.smsgs[k].hdr.Name))
		if sa.Addr[3] != wantSrc[k] {
			t.Errorf("reply %d aimed at .%d, want .%d", k, sa.Addr[3], wantSrc[k])
		}
	}
	st := srv.Stats()
	if st.Short != 1 || st.NonClient != 1 {
		t.Errorf("drop counters = %+v, want Short=1 NonClient=1", st)
	}
	if st.KernelRx != 8 {
		t.Errorf("KernelRx = %d, want 8 (stamps are counted per received datagram, before validation drops)", st.KernelRx)
	}
}

// TestBatchSyscallReduction is the measured acceptance check for the
// batching itself: with a batch's worth of requests queued in the
// socket before the loop starts, serving them all must cost at least
// 8× fewer syscalls than the per-packet loop's two per reply. This is
// deterministic even on a single-core runner, where a closed-loop
// client would never build queue depth.
func TestBatchSyscallReduction(t *testing.T) {
	const queued = 64
	srv, err := NewServer(ServerConfig{Clock: SystemServerClock(), Batch: batchMax})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Queue the whole load in the kernel receive buffer first, so the
	// loop's first recvmmsg sees real depth.
	for i := 0; i < queued; i++ {
		if _, err := cli.Write(clientPacket(4)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(10 * time.Millisecond)

	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(pc) }()
	defer func() { pc.Close(); <-done }()

	cli.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 512)
	for i := 0; i < queued; i++ {
		if _, err := cli.Read(buf); err != nil {
			t.Fatalf("reply %d/%d never arrived: %v", i+1, queued, err)
		}
	}
	// The reply counter is bumped after sendmmsg returns, so the last
	// datagram can reach the client a beat before the counter does:
	// poll for settling like the other counter tests.
	var st Stats
	for deadline := time.Now().Add(2 * time.Second); ; {
		st = srv.Stats()
		if st.Replied == queued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replied = %d, want %d", st.Replied, queued)
		}
		time.Sleep(time.Millisecond)
	}
	sys := st.RecvCalls + st.SendCalls
	// Per-packet cost would be 2*queued syscalls; require ≥8× less.
	if sys*8 > 2*st.Replied {
		t.Errorf("served %d replies in %d syscalls (%d recv + %d send): less than an 8x reduction over the per-packet loop's %d",
			st.Replied, sys, st.RecvCalls, st.SendCalls, 2*st.Replied)
	}
	if st.KernelRx+st.KernelRxMissing != st.Replied {
		t.Errorf("kernel stamp accounting: KernelRx=%d + KernelRxMissing=%d != Replied=%d",
			st.KernelRx, st.KernelRxMissing, st.Replied)
	}
}

// TestBatchKernelStamps: over a real loopback socket the kernel's RX
// stamps must be observed and must backdate Receive, never past
// Transmit (Tb ≤ Te is what downstream clients rely on).
func TestBatchKernelStamps(t *testing.T) {
	srv, err := NewServer(ServerConfig{Clock: SystemServerClock()})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(pc) }()
	defer func() { pc.Close(); <-done }()

	for i := 0; i < 4; i++ {
		reply := rawQuery(t, pc.LocalAddr(), clientPacket(4), true)
		var resp Packet
		if err := resp.Unmarshal(reply); err != nil {
			t.Fatal(err)
		}
		if tb, te := resp.Receive.Seconds(), resp.Transmit.Seconds(); tb > te {
			t.Errorf("exchange %d: Tb %.9f > Te %.9f", i, tb, te)
		}
	}
	st := srv.Stats()
	if st.KernelRx == 0 {
		if st.KernelRxMissing > 0 {
			t.Skipf("kernel provided no RX timestamps here (%d missing); loop fell back to sample stamps", st.KernelRxMissing)
		}
		t.Errorf("neither KernelRx nor KernelRxMissing counted over a batched socket: %+v", st)
	}
}

// TestBatchServeIPv6 exercises the AF_INET6 arm of the raw-sockaddr
// path end to end over ::1.
func TestBatchServeIPv6(t *testing.T) {
	lim := ratelimit.New(ratelimit.Config{})
	srv, err := NewServer(ServerConfig{Clock: SystemServerClock(), Limit: lim})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp6", "[::1]:0")
	if err != nil {
		t.Skipf("no IPv6 loopback: %v", err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(pc) }()
	defer func() { pc.Close(); <-done }()

	reply := rawQuery(t, pc.LocalAddr(), clientPacket(4), true)
	var resp Packet
	if err := resp.Unmarshal(reply); err != nil {
		t.Fatal(err)
	}
	if resp.Mode != ModeServer {
		t.Errorf("mode = %v, want server", resp.Mode)
	}
	if lim.Len() == 0 {
		t.Errorf("limiter tracked no prefixes: the v6 raw-sockaddr key path was not taken")
	}
}

// TestBatchForcedOff: Batch=1 must route even a *net.UDPConn through
// the portable per-packet loop (one recv and one send syscall per
// reply — the syscall counters tell the loops apart).
func TestBatchForcedOff(t *testing.T) {
	srv, err := NewServer(ServerConfig{Clock: SystemServerClock(), Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(pc) }()
	defer func() { pc.Close(); <-done }()

	rawQuery(t, pc.LocalAddr(), clientPacket(4), true)
	st := srv.Stats()
	if st.Replied != 1 || st.RecvCalls != 1 || st.SendCalls != 1 {
		t.Errorf("Batch=1 stats = %+v, want the per-packet loop's 1 recv + 1 send for 1 reply", st)
	}
	if st.KernelRx+st.KernelRxMissing != 0 {
		t.Errorf("per-packet loop counted kernel stamps: %+v", st)
	}
}

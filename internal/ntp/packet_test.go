package ntp

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{
		Leap:      LeapAddOne,
		Version:   4,
		Mode:      ModeServer,
		Stratum:   1,
		Poll:      6,
		Precision: -20,
		RootDelay: Short32FromSeconds(0.015),
		RootDisp:  Short32FromSeconds(0.002),
		RefID:     RefIDFromString("GPS"),
		RefTime:   Time64FromSeconds(3_900_000_000.25),
		Origin:    Time64FromSeconds(3_900_000_001.5),
		Receive:   Time64FromSeconds(3_900_000_001.75),
		Transmit:  Time64FromSeconds(3_900_000_001.875),
	}
	buf := p.Marshal()
	var q Packet
	if err := q.Unmarshal(buf[:]); err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", q, p)
	}
}

func TestPacketRoundTripQuick(t *testing.T) {
	f := func(leap, mode, stratum uint8, poll, prec int8, rd, rdisp, refid uint32, ts [4]uint64) bool {
		p := Packet{
			Leap:      LeapIndicator(leap & 3),
			Version:   4,
			Mode:      Mode(mode & 7),
			Stratum:   stratum,
			Poll:      poll,
			Precision: prec,
			RootDelay: Short32(rd),
			RootDisp:  Short32(rdisp),
			RefID:     refid,
			RefTime:   Time64(ts[0]),
			Origin:    Time64(ts[1]),
			Receive:   Time64(ts[2]),
			Transmit:  Time64(ts[3]),
		}
		buf := p.Marshal()
		var q Packet
		if err := q.Unmarshal(buf[:]); err != nil {
			return false
		}
		return q == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalShort(t *testing.T) {
	var p Packet
	if err := p.Unmarshal(make([]byte, 40)); err == nil {
		t.Error("short packet accepted")
	}
}

func TestUnmarshalBadVersion(t *testing.T) {
	good := Packet{Version: 4, Mode: ModeClient}
	buf := good.Marshal()
	buf[0] = 0 // version 0
	var p Packet
	if err := p.Unmarshal(buf[:]); err == nil {
		t.Error("version 0 accepted")
	}
}

func TestUnmarshalIgnoresTrailing(t *testing.T) {
	good := Packet{Version: 4, Mode: ModeServer, Stratum: 2}
	buf := good.Marshal()
	extended := append(buf[:], make([]byte, 20)...) // MAC / extension
	var p Packet
	if err := p.Unmarshal(extended); err != nil {
		t.Errorf("extended packet rejected: %v", err)
	}
	if p.Stratum != 2 {
		t.Errorf("stratum = %d", p.Stratum)
	}
}

func TestTime64SecondsRoundTrip(t *testing.T) {
	for _, sec := range []float64{0.5, 1, 1e6 + 0.125, 3_900_000_000.2,
		4294967295.5} {
		got := Time64FromSeconds(sec).Seconds()
		if math.Abs(got-sec) > 1e-9*math.Max(1, sec) {
			t.Errorf("Time64 seconds round trip: %v -> %v", sec, got)
		}
	}
}

func TestTime64Resolution(t *testing.T) {
	// The 32-bit fraction resolves ~233 ps; 1 µs steps must be distinct.
	a := Time64FromSeconds(1000.000001)
	b := Time64FromSeconds(1000.000002)
	if a == b {
		t.Error("1 µs not resolvable in Time64")
	}
}

func TestTime64TimeRoundTrip(t *testing.T) {
	pivot := time.Date(2026, 6, 11, 12, 0, 0, 0, time.UTC)
	for _, tt := range []time.Time{
		time.Date(2004, 10, 25, 9, 30, 0, 123456789, time.UTC),
		time.Date(2026, 6, 11, 0, 0, 0, 1000, time.UTC),
		time.Date(2035, 12, 31, 23, 59, 59, 999999000, time.UTC),
	} {
		got := Time64FromTime(tt).Time(pivot)
		if d := got.Sub(tt); d > time.Microsecond || d < -time.Microsecond {
			t.Errorf("time round trip %v -> %v (d=%v)", tt, got, d)
		}
	}
}

func TestTime64EraUnfolding(t *testing.T) {
	// A time just past the 2036 era rollover must unfold correctly when
	// the pivot is also past the rollover.
	post := time.Date(2036, 2, 8, 0, 0, 0, 0, time.UTC) // era 1
	pivot := time.Date(2036, 3, 1, 0, 0, 0, 0, time.UTC)
	got := Time64FromTime(post).Time(pivot)
	if d := got.Sub(post); d > time.Microsecond || d < -time.Microsecond {
		t.Errorf("era unfolding failed: %v -> %v", post, got)
	}
}

func TestTime64Add(t *testing.T) {
	base := Time64FromSeconds(100)
	got := base.Add(1500 * time.Millisecond).Seconds()
	if math.Abs(got-101.5) > 1e-6 {
		t.Errorf("Add(1.5s) = %v", got)
	}
	got = base.Add(-250 * time.Millisecond).Seconds()
	if math.Abs(got-99.75) > 1e-6 {
		t.Errorf("Add(-0.25s) = %v", got)
	}
}

func TestShort32(t *testing.T) {
	cases := []struct{ sec float64 }{{0}, {0.001}, {0.015}, {1.5}, {30000}}
	for _, c := range cases {
		got := Short32FromSeconds(c.sec).Seconds()
		if math.Abs(got-c.sec) > 1.0/65536+1e-12 {
			t.Errorf("Short32 round trip %v -> %v", c.sec, got)
		}
	}
	if Short32FromSeconds(-1) != 0 {
		t.Error("negative short not clamped")
	}
	if Short32FromSeconds(1e9) != math.MaxUint32 {
		t.Error("overflow short not saturated")
	}
}

func TestRefIDString(t *testing.T) {
	p := Packet{Stratum: 1, RefID: RefIDFromString("GPS")}
	if got := p.RefIDString(); got != "GPS" {
		t.Errorf("stratum-1 refid = %q", got)
	}
	p = Packet{Stratum: 2, RefID: 0xC0A80001}
	if got := p.RefIDString(); got != "192.168.0.1" {
		t.Errorf("stratum-2 refid = %q", got)
	}
}

func TestTime64FromSecondsNaN(t *testing.T) {
	if Time64FromSeconds(math.NaN()) != 0 {
		t.Error("NaN not mapped to zero timestamp")
	}
	if Time64FromSeconds(math.Inf(1)) != 0 {
		t.Error("Inf not mapped to zero timestamp")
	}
}

func BenchmarkMarshal(b *testing.B) {
	p := Packet{Version: 4, Mode: ModeServer, Stratum: 1,
		Receive: Time64FromSeconds(1e9), Transmit: Time64FromSeconds(1e9 + 1e-5)}
	for i := 0; i < b.N; i++ {
		_ = p.Marshal()
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	p := Packet{Version: 4, Mode: ModeServer, Stratum: 1}
	buf := p.Marshal()
	var q Packet
	for i := 0; i < b.N; i++ {
		if err := q.Unmarshal(buf[:]); err != nil {
			b.Fatal(err)
		}
	}
}

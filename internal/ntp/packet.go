// Package ntp implements the subset of the Network Time Protocol needed
// by the TSC-NTP clock: the 48-byte NTP packet wire format (RFC 1305 /
// RFC 5905 compatible), 64-bit era-aware timestamp conversions, a UDP
// client that performs the four-timestamp exchange of the paper's
// Figure 1, and a minimal stratum-1 server.
//
// The synchronization algorithms never interpret the server timestamps
// beyond reading Tb (receive) and Te (transmit); the other payload fields
// (root delay/dispersion, reference identifier) are carried faithfully so
// the implementation interoperates with standard NTP daemons, and so the
// reference identifier is available to the future route-change detection
// the paper mentions in Section 2.3.
package ntp

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// PacketSize is the size of an NTP packet without extensions.
const PacketSize = 48

// StratumUnsynced is the stratum a server advertises while it has no
// synchronized clock to serve (RFC 5905 calls 16 "unsynchronized");
// clients must not adopt such a server.
const StratumUnsynced = 16

// DispersionRate is the standard NTP clock-drift allowance PHI
// (15 PPM): root dispersion grows by this rate times the seconds since
// the last synchronization update.
const DispersionRate = 15e-6

// LeapIndicator is the 2-bit leap second warning field.
type LeapIndicator uint8

// Leap indicator values.
const (
	LeapNone      LeapIndicator = 0
	LeapAddOne    LeapIndicator = 1
	LeapDelOne    LeapIndicator = 2
	LeapNotSynced LeapIndicator = 3
)

// Mode is the 3-bit association mode field.
type Mode uint8

// Association modes.
const (
	ModeReserved   Mode = 0
	ModeSymActive  Mode = 1
	ModeSymPassive Mode = 2
	ModeClient     Mode = 3
	ModeServer     Mode = 4
	ModeBroadcast  Mode = 5
	ModeControl    Mode = 6
	ModePrivate    Mode = 7
)

// Time64 is the NTP 64-bit timestamp: 32 bits of seconds since the NTP
// epoch (1900-01-01T00:00:00Z) and 32 bits of binary fraction
// (resolution 2^-32 s ~ 233 ps). The zero value means "unset" on the
// wire.
type Time64 uint64

// ntpEpochOffset is the number of seconds between the NTP epoch (1900)
// and the UNIX epoch (1970): 70 years incl. 17 leap days.
const ntpEpochOffset = 2208988800

// fracScale is 2^32 as a float64.
const fracScale = 4294967296.0

// Time64FromSeconds converts a float64 count of seconds since the NTP
// epoch into wire representation. Values outside [0, 2^32) wrap, which is
// the era behaviour mandated by the protocol.
func Time64FromSeconds(sec float64) Time64 {
	if math.IsNaN(sec) || math.IsInf(sec, 0) {
		return 0
	}
	whole, frac := math.Modf(sec)
	if frac < 0 {
		whole--
		frac++
	}
	s := uint64(int64(whole)) & 0xffffffff
	f := uint64(frac*fracScale) & 0xffffffff
	return Time64(s<<32 | f)
}

// Seconds returns the timestamp as float64 seconds since the NTP epoch
// of its own era. Precision is ~2^-21 s at the end of an era, which is
// why the simulation keeps its own origin at zero; this conversion is
// used on the live-UDP path only, where monotonic raw counters carry the
// precision-critical information.
func (t Time64) Seconds() float64 {
	return float64(t>>32) + float64(t&0xffffffff)/fracScale
}

// Time64FromTime converts a wall-clock time.Time to wire representation.
func Time64FromTime(tt time.Time) Time64 {
	sec := uint64(tt.Unix()+ntpEpochOffset) & 0xffffffff
	frac := uint64(float64(tt.Nanosecond()) / 1e9 * fracScale)
	return Time64(sec<<32 | frac&0xffffffff)
}

// Time returns the timestamp as a time.Time, resolving the era ambiguity
// with the pivot: the returned time is the representable instant closest
// to pivot. This implements the standard NTP era-unfolding rule.
func (t Time64) Time(pivot time.Time) time.Time {
	secs := int64(t >> 32)
	frac := int64(t & 0xffffffff)
	ns := (frac*1e9 + 1<<31) >> 32
	base := secs - ntpEpochOffset
	// Unfold to the era nearest the pivot.
	const era = int64(1) << 32
	p := pivot.Unix()
	for base < p-era/2 {
		base += era
	}
	for base > p+era/2 {
		base -= era
	}
	return time.Unix(base, ns).UTC()
}

// Add returns the timestamp advanced by d (which may be negative).
func (t Time64) Add(d time.Duration) Time64 {
	sec := float64(d) / float64(time.Second)
	return Time64(uint64(t) + uint64(int64(sec*fracScale)))
}

// IsZero reports whether the timestamp is the wire "unset" value.
func (t Time64) IsZero() bool { return t == 0 }

// Short32 is the NTP 32-bit short format (16.16 fixed point seconds)
// used for root delay and root dispersion.
type Short32 uint32

// Short32FromSeconds converts seconds to 16.16 fixed point, saturating.
func Short32FromSeconds(sec float64) Short32 {
	if sec <= 0 {
		return 0
	}
	v := sec * 65536
	if v >= math.MaxUint32 {
		return math.MaxUint32
	}
	return Short32(v)
}

// Seconds returns the short value in seconds.
func (s Short32) Seconds() float64 { return float64(s) / 65536 }

// Packet is a decoded NTP header.
type Packet struct {
	Leap      LeapIndicator
	Version   uint8
	Mode      Mode
	Stratum   uint8
	Poll      int8 // log2 seconds
	Precision int8 // log2 seconds
	RootDelay Short32
	RootDisp  Short32
	RefID     uint32

	// The four timestamps. In the paper's notation for a client
	// exchange: Origin = Ta (client send), Receive = Tb (server
	// receive), Transmit = Te (server send); the client's receive stamp
	// Tf never travels on the wire.
	RefTime  Time64
	Origin   Time64
	Receive  Time64
	Transmit Time64
}

// Marshal encodes the packet into the canonical 48-byte wire form.
func (p *Packet) Marshal() [PacketSize]byte {
	var b [PacketSize]byte
	b[0] = byte(p.Leap)<<6 | (p.Version&0x7)<<3 | byte(p.Mode)&0x7
	b[1] = p.Stratum
	b[2] = byte(p.Poll)
	b[3] = byte(p.Precision)
	binary.BigEndian.PutUint32(b[4:], uint32(p.RootDelay))
	binary.BigEndian.PutUint32(b[8:], uint32(p.RootDisp))
	binary.BigEndian.PutUint32(b[12:], p.RefID)
	binary.BigEndian.PutUint64(b[16:], uint64(p.RefTime))
	binary.BigEndian.PutUint64(b[24:], uint64(p.Origin))
	binary.BigEndian.PutUint64(b[32:], uint64(p.Receive))
	binary.BigEndian.PutUint64(b[40:], uint64(p.Transmit))
	return b
}

// Unmarshal decodes a wire packet. Extension fields and MACs after the
// first 48 bytes are ignored, as the algorithms do not use them.
func (p *Packet) Unmarshal(b []byte) error {
	if len(b) < PacketSize {
		//repro:alloc-ok rejected-input error path: allocates only for packets the server refuses to answer
		return fmt.Errorf("ntp: short packet: %d bytes", len(b))
	}
	p.Leap = LeapIndicator(b[0] >> 6)
	p.Version = (b[0] >> 3) & 0x7
	p.Mode = Mode(b[0] & 0x7)
	p.Stratum = b[1]
	p.Poll = int8(b[2])
	p.Precision = int8(b[3])
	p.RootDelay = Short32(binary.BigEndian.Uint32(b[4:]))
	p.RootDisp = Short32(binary.BigEndian.Uint32(b[8:]))
	p.RefID = binary.BigEndian.Uint32(b[12:])
	p.RefTime = Time64(binary.BigEndian.Uint64(b[16:]))
	p.Origin = Time64(binary.BigEndian.Uint64(b[24:]))
	p.Receive = Time64(binary.BigEndian.Uint64(b[32:]))
	p.Transmit = Time64(binary.BigEndian.Uint64(b[40:]))
	if p.Version < 1 || p.Version > 4 {
		//repro:alloc-ok rejected-input error path: allocates only for packets the server refuses to answer
		return fmt.Errorf("ntp: unsupported version %d", p.Version)
	}
	return nil
}

// RefIDString renders the reference identifier: for stratum 0/1 it is a
// four-character ASCII code (e.g. "GPS"), otherwise an IPv4 address.
func (p *Packet) RefIDString() string {
	b := [4]byte{byte(p.RefID >> 24), byte(p.RefID >> 16), byte(p.RefID >> 8), byte(p.RefID)}
	if p.Stratum <= 1 {
		out := make([]byte, 0, 4)
		for _, c := range b {
			if c == 0 {
				break
			}
			if c < 0x20 || c > 0x7e {
				c = '?'
			}
			out = append(out, c)
		}
		return string(out)
	}
	return fmt.Sprintf("%d.%d.%d.%d", b[0], b[1], b[2], b[3])
}

// RefIDFromString packs a short ASCII code (e.g. "GPS", "PPS", "ATOM")
// into a reference identifier.
func RefIDFromString(s string) uint32 {
	var b [4]byte
	copy(b[:], s)
	return binary.BigEndian.Uint32(b[:])
}

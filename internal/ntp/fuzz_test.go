package ntp

import (
	"bytes"
	"testing"
	"time"
)

// FuzzUnmarshal: arbitrary bytes must never panic, and anything that
// decodes must re-encode to the identical 48-byte prefix (the codec is
// a bijection on valid headers).
func FuzzUnmarshal(f *testing.F) {
	good := Packet{Version: 4, Mode: ModeServer, Stratum: 1,
		Receive: Time64FromSeconds(3.9e9), Transmit: Time64FromSeconds(3.9e9 + 1e-5)}
	gb := good.Marshal()
	f.Add(gb[:])
	f.Add(make([]byte, PacketSize))
	f.Add([]byte("short"))
	f.Add(append(gb[:], 0xde, 0xad, 0xbe, 0xef))

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		if err := p.Unmarshal(data); err != nil {
			return
		}
		out := p.Marshal()
		if !bytes.Equal(out[:], data[:PacketSize]) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data[:PacketSize], out)
		}
		_ = p.RefIDString() // must not panic on any refid/stratum combo
	})
}

// FuzzTime64Era: era unfolding must always land within half an era of
// the pivot and round-trip wall times near the pivot.
func FuzzTime64Era(f *testing.F) {
	f.Add(uint64(0), int64(1_750_000_000))
	f.Add(uint64(1)<<63, int64(2_085_978_496)) // near era rollover
	f.Fuzz(func(t *testing.T, raw uint64, pivotUnix int64) {
		if pivotUnix < 0 || pivotUnix > 1<<40 {
			return
		}
		pivot := time.Unix(pivotUnix, 0)
		got := Time64(raw).Time(pivot)
		d := got.Sub(pivot)
		const halfEra = time.Duration(1<<31) * time.Second
		if d > halfEra+time.Second || d < -halfEra-time.Second {
			t.Fatalf("unfolded %v is %v from pivot %v", got, d, pivot)
		}
	})
}

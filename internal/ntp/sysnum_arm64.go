//go:build linux && arm64

package ntp

import "syscall"

// linux/arm64's syscall table was generated after sendmmsg existed, so
// the stdlib constant is present there (unlike amd64, where the number
// is carried locally in sysnum_amd64.go).
const sysSendmmsg = syscall.SYS_SENDMMSG

//go:build linux && (amd64 || arm64)

// Batched serving hot loop: recvmmsg/sendmmsg syscall batching plus
// SO_TIMESTAMPING kernel RX stamps.
//
// The per-packet loop pays two syscalls per reply and stamps Receive
// from a user-space clock read, so every reply carries the scheduler's
// wakeup latency as apparent network delay. This loop drains up to
// Batch datagrams per recvmmsg into preallocated slabs, runs the same
// per-packet pipeline (limit → validate → stamp → marshal) over the
// batch in place, and answers with one sendmmsg — ~2/Batch syscalls
// per reply — while parsing each datagram's SCM_TIMESTAMPING control
// message so the reply's Receive stamp can be backdated to the
// kernel's arrival time. Every buffer the kernel writes into (packet
// slab, sockaddr slab, control slab, iovec and mmsghdr arrays) is
// allocated once per shard at setup; the steady state allocates
// nothing (//repro:hotpath on process, gated by reprolint and
// TestBatchProcessZeroAlloc).
//
// The loop integrates with the Go netpoller through syscall.RawConn:
// recvmmsg runs with MSG_DONTWAIT inside RawConn.Read, returning false
// on EAGAIN so the goroutine parks until the socket is readable
// instead of spinning. A closed socket surfaces as net.ErrClosed from
// RawConn.Read/Write, which is the same shutdown signal the per-packet
// loop and the shard supervisor already speak.
//
// The syscall package is used directly (this repository deliberately
// avoids x/sys/unix); SO_TIMESTAMPING and the sendmmsg syscall number
// (frozen out of package syscall before kernel 3.0) are defined
// locally for the two supported architectures.

package ntp

import (
	"encoding/binary"
	"errors"
	"net"
	"os"
	"syscall"
	"time"
	"unsafe"

	"repro/internal/ratelimit"
)

const (
	// batchDefault and batchMax bound ServerConfig.Batch: 32 packets
	// per syscall already cuts the syscall budget 16×; past 64 the
	// slab footprint grows faster than the amortization shrinks.
	batchDefault = 32
	batchMax     = 64

	// rxBufSize matches the per-packet loop's read buffer: large
	// enough for any NTP packet with extensions, truncation beyond it
	// is harmless (only the first 48 bytes are parsed).
	rxBufSize = 512

	// oobSize holds one scm_timestamping control message (16-byte
	// cmsghdr + three timespecs = 64 bytes) with room for one more
	// cmsg (e.g. SO_RXQ_OVFL) before truncation.
	oobSize = 128

	// soTimestamping is SO_TIMESTAMPING from asm-generic/socket.h (37
	// on amd64 and arm64; the value differs only on parisc and sparc,
	// which the build tag excludes). The same value is the
	// SCM_TIMESTAMPING control-message type.
	soTimestamping  = 37
	scmTimestamping = 37

	// SOF_TIMESTAMPING flags: generate software RX timestamps and
	// report them. Hardware stamps are deliberately not requested —
	// they come from the NIC's PHC, a clock not comparable with
	// CLOCK_REALTIME, so an age computed against them would be
	// garbage.
	sofTimestampingRxSoftware = 1 << 3
	sofTimestampingSoftware   = 1 << 4

	// maxStampAge bounds how stale a kernel RX stamp may be before it
	// is distrusted (a clock step between the kernel stamp and our
	// wall read would otherwise backdate Receive by the step).
	maxStampAge = time.Second
)

// mmsghdr mirrors struct mmsghdr from <sys/socket.h>: one msghdr plus
// the kernel-written datagram length. The trailing pad keeps the
// 64-bit layout the kernel expects when given an array of these.
type mmsghdr struct {
	hdr   syscall.Msghdr
	nrecv uint32
	_     [4]byte
}

// Compile-time layout guards: the kernel ABI expects 64-byte mmsghdr
// entries (56-byte msghdr + length + pad) on both supported
// architectures; a negative array length here breaks the build if the
// struct drifts.
var (
	_ [unsafe.Sizeof(mmsghdr{}) - 64]byte
	_ [64 - unsafe.Sizeof(mmsghdr{})]byte
)

// serveBatch runs the batched loop when the transport and
// configuration allow it: a *net.UDPConn (raw fd access) and an
// effective batch size above 1. handled=false means the caller should
// fall back to the per-packet loop.
func (s *Server) serveBatch(pc net.PacketConn) (handled bool, err error) {
	batch := s.batch
	if batch == 0 {
		batch = batchDefault
	}
	if batch > batchMax {
		batch = batchMax
	}
	if batch <= 1 {
		return false, nil
	}
	uc, ok := pc.(*net.UDPConn)
	if !ok {
		return false, nil
	}
	rc, err := uc.SyscallConn()
	if err != nil {
		// No raw fd access (wrapped or already-closed conn): the
		// per-packet loop will surface whatever is wrong.
		return false, nil
	}
	bl := newBatchLoop(s, rc, batch)
	return true, bl.run()
}

// batchLoop is one shard's batched serving state: the slabs the kernel
// reads and writes, the mmsghdr arrays wired into them once at setup,
// and the RawConn callbacks (created once — a closure per batch would
// be a steady-state allocation).
type batchLoop struct {
	srv      *Server
	rc       syscall.RawConn
	batch    int
	stamping bool // SO_TIMESTAMPING armed on the socket

	pktIn  []byte                   // batch × rxBufSize receive slab
	pktOut []byte                   // batch × PacketSize reply slab
	names  []syscall.RawSockaddrAny // kernel-written packet sources
	oob    []byte                   // batch × oobSize control slab
	riovs  []syscall.Iovec
	rmsgs  []mmsghdr
	siovs  []syscall.Iovec
	smsgs  []mmsghdr

	// Syscall results, carried out of the RawConn callbacks.
	recvN   int
	recvErr syscall.Errno
	sentN   int
	sendErr syscall.Errno
	sendOff int // first unsent smsgs entry of the current flush
	sendCnt int // smsgs entries in the current flush

	readFn  func(fd uintptr) bool
	writeFn func(fd uintptr) bool
}

// newBatchLoop allocates and wires the slabs. Receive-side mmsghdrs
// point at fixed per-slot buffers; send-side mmsghdrs have fixed
// iovecs into the reply slab (reply k always lands in out slot k) and
// only their Name/Namelen vary per batch, set during process.
func newBatchLoop(s *Server, rc syscall.RawConn, batch int) *batchLoop {
	bl := &batchLoop{
		srv:    s,
		rc:     rc,
		batch:  batch,
		pktIn:  make([]byte, batch*rxBufSize),
		pktOut: make([]byte, batch*PacketSize),
		names:  make([]syscall.RawSockaddrAny, batch),
		oob:    make([]byte, batch*oobSize),
		riovs:  make([]syscall.Iovec, batch),
		rmsgs:  make([]mmsghdr, batch),
		siovs:  make([]syscall.Iovec, batch),
		smsgs:  make([]mmsghdr, batch),
	}
	for i := 0; i < batch; i++ {
		bl.riovs[i].Base = &bl.pktIn[i*rxBufSize]
		bl.riovs[i].Len = rxBufSize
		bl.rmsgs[i].hdr.Name = (*byte)(unsafe.Pointer(&bl.names[i]))
		bl.rmsgs[i].hdr.Iov = &bl.riovs[i]
		bl.rmsgs[i].hdr.Iovlen = 1
		bl.rmsgs[i].hdr.Control = &bl.oob[i*oobSize]

		bl.siovs[i].Base = &bl.pktOut[i*PacketSize]
		bl.siovs[i].Len = PacketSize
		bl.smsgs[i].hdr.Iov = &bl.siovs[i]
		bl.smsgs[i].hdr.Iovlen = 1
	}
	bl.resetHeaders(batch)
	bl.stamping = enableTimestamping(rc)

	bl.readFn = func(fd uintptr) bool {
		n, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&bl.rmsgs[0])), uintptr(bl.batch),
			syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN {
			return false // park on the netpoller until readable
		}
		bl.srv.stats.recvCalls.Add(1)
		if e != 0 {
			bl.recvN, bl.recvErr = 0, e
		} else {
			bl.recvN, bl.recvErr = int(n), 0
		}
		return true
	}
	bl.writeFn = func(fd uintptr) bool {
		n, _, e := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&bl.smsgs[bl.sendOff])), uintptr(bl.sendCnt-bl.sendOff),
			syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN {
			return false // park until writable (rare for UDP)
		}
		bl.srv.stats.sendCalls.Add(1)
		if e != 0 {
			bl.sentN, bl.sendErr = 0, e
		} else {
			bl.sentN, bl.sendErr = int(n), 0
		}
		return true
	}
	return bl
}

// enableTimestamping arms software RX timestamping on the socket;
// failure (old kernel, exotic socket) just means every packet counts
// as KernelRxMissing and Receive stamps fall back to sample time.
func enableTimestamping(rc syscall.RawConn) bool {
	var serr error
	err := rc.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soTimestamping,
			sofTimestampingRxSoftware|sofTimestampingSoftware)
	})
	return err == nil && serr == nil
}

// run is the shard loop: drain a batch, process it in place, flush the
// replies, reset the kernel-written header fields, repeat. Error
// semantics match the per-packet loop: timeouts continue, a closed
// socket (or genuine socket failure) returns and lets the shard
// supervisor decide.
func (bl *batchLoop) run() error {
	for {
		if err := bl.rc.Read(bl.readFn); err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			return err
		}
		if bl.recvErr != 0 {
			if bl.recvErr == syscall.EINTR {
				continue
			}
			return os.NewSyscallError("recvmmsg", bl.recvErr)
		}
		n := bl.recvN
		if n <= 0 {
			continue
		}
		nOut := bl.process(n)
		if nOut > 0 {
			if err := bl.flush(nOut); err != nil {
				return err
			}
		}
		bl.resetHeaders(n)
	}
}

// process runs the per-packet pipeline over one received batch and
// compacts the replies into the send slots, returning how many replies
// to flush. Reply k's payload is already in out slot k (fixed iovec);
// only its destination sockaddr is wired here, pointing at the
// receive-side name slot the kernel filled.
//
//repro:hotpath
func (bl *batchLoop) process(n int) int {
	s := bl.srv
	s.stats.requests.Add(uint64(n))
	// One wall read ages every kernel stamp in the batch: the spread
	// within a batch is microseconds, far below maxStampAge.
	now := time.Now()
	kStamped, kMissing := uint64(0), uint64(0)
	nOut := 0
	for i := 0; i < n; i++ {
		if s.limit != nil {
			// The batched rate-limit path keys straight off the raw
			// sockaddr bytes the kernel wrote — no net.Addr boxing, no
			// net.IP allocation (see Limiter.AllowAddr for the
			// per-packet loop's boxed equivalent).
			if key, ok := bl.prefixKey(i); ok && !s.limit.Allow(key) {
				s.stats.rateLimited.Add(1)
				continue
			}
		}
		var rxAge time.Duration
		if sec, nsec, ok := parseRxTimestamp(bl.oob[i*oobSize : i*oobSize+int(bl.rmsgs[i].hdr.Controllen)]); ok {
			rxAge = now.Sub(time.Unix(sec, nsec))
			if rxAge >= 0 && rxAge <= maxStampAge {
				kStamped++
			} else if rxAge > -time.Millisecond && rxAge < 0 {
				// Sub-millisecond negative age is wall-clock jitter
				// between the kernel stamp and our read, not a lie.
				rxAge = 0
				kStamped++
			} else {
				rxAge = 0 // a clock step; the sample time is safer
				kMissing++
			}
		} else {
			kMissing++
		}
		in := bl.pktIn[i*rxBufSize : i*rxBufSize+int(bl.rmsgs[i].nrecv)]
		out := (*[PacketSize]byte)(bl.pktOut[nOut*PacketSize:])
		if !s.handlePacket(in, out, rxAge) {
			continue
		}
		bl.smsgs[nOut].hdr.Name = (*byte)(unsafe.Pointer(&bl.names[i]))
		bl.smsgs[nOut].hdr.Namelen = bl.rmsgs[i].hdr.Namelen
		nOut++
	}
	s.stats.kernelRx.Add(kStamped)
	s.stats.kernelRxMissing.Add(kMissing)
	return nOut
}

// flush sends the first n compacted replies with as few sendmmsg
// calls as the kernel allows. Partial sends resume at the first
// unsent message; a per-message failure (spoofed unroutable source,
// transient ENOBUFS) is counted and skipped, exactly like the
// per-packet loop's WriteTo error path. Only a closed socket aborts.
func (bl *batchLoop) flush(n int) error {
	bl.sendOff, bl.sendCnt = 0, n
	for bl.sendOff < bl.sendCnt {
		if err := bl.rc.Write(bl.writeFn); err != nil {
			return err
		}
		if bl.sendErr != 0 {
			if bl.sendErr == syscall.EINTR {
				continue
			}
			// sendmmsg failed on the head message without sending
			// anything: charge that one message and move past it.
			bl.srv.stats.writeErrors.Add(1)
			bl.sendOff++
			continue
		}
		bl.srv.stats.replied.Add(uint64(bl.sentN))
		bl.sendOff += bl.sentN
	}
	return nil
}

// resetHeaders restores the kernel-written in/out header fields of the
// first n receive slots before the next recvmmsg: the kernel shrinks
// Namelen/Controllen to the actual lengths and sets Flags, and would
// otherwise truncate the next batch's sockaddrs and control messages.
//
//repro:hotpath
func (bl *batchLoop) resetHeaders(n int) {
	for i := 0; i < n; i++ {
		bl.rmsgs[i].hdr.Namelen = syscall.SizeofSockaddrAny
		bl.rmsgs[i].hdr.Controllen = oobSize
		bl.rmsgs[i].hdr.Flags = 0
	}
}

// prefixKey derives the rate-limiter key for packet i straight from
// the raw sockaddr the kernel wrote, mirroring ratelimit.PrefixKey's
// classification (v4 and v4-mapped addresses share the v4 key space).
// ok=false (unknown family) fails open, like AllowAddr.
//
//repro:hotpath
func (bl *batchLoop) prefixKey(i int) (uint64, bool) {
	sa := &bl.names[i]
	switch sa.Addr.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		return ratelimit.PrefixKey4(sa4.Addr), true
	case syscall.AF_INET6:
		sa6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(sa))
		return ratelimit.PrefixKey16(&sa6.Addr), true
	}
	return 0, false
}

// parseRxTimestamp walks a received control-message buffer for the
// kernel's SCM_TIMESTAMPING message and returns the software receive
// timestamp (CLOCK_REALTIME seconds/nanoseconds). ok=false when the
// message is absent, truncated, malformed, or carries an all-zero
// software slot (hardware-only stamping). The walk is defensive —
// oob comes from the kernel, but the fuzz target feeds it garbage to
// guarantee no slice of bytes can panic the hot loop.
//
//repro:hotpath
func parseRxTimestamp(oob []byte) (sec, nsec int64, ok bool) {
	const cmsgHdr = 16 // 64-bit cmsghdr: Len uint64, Level int32, Type int32
	for len(oob) >= cmsgHdr {
		l := binary.LittleEndian.Uint64(oob[0:8])
		level := int32(binary.LittleEndian.Uint32(oob[8:12]))
		typ := int32(binary.LittleEndian.Uint32(oob[12:16]))
		if l < cmsgHdr || l > uint64(len(oob)) {
			return 0, 0, false
		}
		if level == syscall.SOL_SOCKET && typ == scmTimestamping {
			// scm_timestamping is three timespecs; ts[0] is the
			// software stamp. A shorter payload is a truncated cmsg.
			if l < cmsgHdr+16 {
				return 0, 0, false
			}
			sec = int64(binary.LittleEndian.Uint64(oob[16:24]))
			nsec = int64(binary.LittleEndian.Uint64(oob[24:32]))
			if sec == 0 && nsec == 0 {
				return 0, 0, false
			}
			if nsec < 0 || nsec >= 1e9 || sec < 0 {
				return 0, 0, false
			}
			return sec, nsec, true
		}
		adv := (l + 7) &^ 7 // CMSG_ALIGN
		if adv >= uint64(len(oob)) {
			return 0, 0, false
		}
		oob = oob[adv:]
	}
	return 0, 0, false
}

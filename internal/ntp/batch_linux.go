//go:build linux && (amd64 || arm64)

// Batched serving hot loop: recvmmsg/sendmmsg syscall batching plus
// SO_TIMESTAMPING kernel RX stamps.
//
// The per-packet loop pays two syscalls per reply and stamps Receive
// from a user-space clock read, so every reply carries the scheduler's
// wakeup latency as apparent network delay. This loop drains up to
// Batch datagrams per recvmmsg into preallocated slabs, runs the same
// per-packet pipeline (limit → validate → stamp → marshal) over the
// batch in place, and answers with one sendmmsg — ~2/Batch syscalls
// per reply — while parsing each datagram's SCM_TIMESTAMPING control
// message so the reply's Receive stamp can be backdated to the
// kernel's arrival time. Every buffer the kernel writes into (packet
// slab, sockaddr slab, control slab, iovec and mmsghdr arrays) is
// allocated once per shard at setup; the steady state allocates
// nothing (//repro:hotpath on process, gated by reprolint and
// TestBatchProcessZeroAlloc).
//
// The loop integrates with the Go netpoller through syscall.RawConn:
// recvmmsg runs with MSG_DONTWAIT inside RawConn.Read, returning false
// on EAGAIN so the goroutine parks until the socket is readable
// instead of spinning. A closed socket surfaces as net.ErrClosed from
// RawConn.Read/Write, which is the same shutdown signal the per-packet
// loop and the shard supervisor already speak.
//
// The syscall package is used directly (this repository deliberately
// avoids x/sys/unix); SO_TIMESTAMPING and the sendmmsg syscall number
// (frozen out of package syscall before kernel 3.0) are defined
// locally for the two supported architectures.

package ntp

import (
	"encoding/binary"
	"errors"
	"net"
	"os"
	"syscall"
	"time"
	"unsafe"

	"repro/internal/ratelimit"
)

const (
	// batchDefault and batchMax bound ServerConfig.Batch: 32 packets
	// per syscall already cuts the syscall budget 16×; past 64 the
	// slab footprint grows faster than the amortization shrinks.
	batchDefault = 32
	batchMax     = 64

	// rxBufSize matches the per-packet loop's read buffer: large
	// enough for any NTP packet with extensions, truncation beyond it
	// is harmless (only the first 48 bytes are parsed).
	rxBufSize = 512

	// oobSize holds one scm_timestamping control message (16-byte
	// cmsghdr + three timespecs = 64 bytes) with room for one more
	// cmsg (e.g. SO_RXQ_OVFL) before truncation.
	oobSize = 128

	// errBatch and errBufSize size the TX error-queue drain slabs: one
	// recvmmsg drains up to errBatch looped-back replies, each at most
	// IPv6+UDP headers plus the 48-byte payload (96 bytes) — errBufSize
	// leaves headroom for options. The drain runs after every flush, so
	// the queue depth tracks the send batch.
	errBatch   = 16
	errBufSize = 128

	// txRingSize is the reply→send-time correlation ring (open
	// addressed by a hash of the Transmit cookie, txRingProbe-way
	// set-associative). A full probe window evicts the oldest entry —
	// that stamp is counted as KernelTxMissing, never wrong. Sized so
	// a full sendmmsg batch of distinct cookies correlates with
	// negligible collision loss.
	txRingSize  = 512
	txRingProbe = 4
)

// mmsghdr mirrors struct mmsghdr from <sys/socket.h>: one msghdr plus
// the kernel-written datagram length. The trailing pad keeps the
// 64-bit layout the kernel expects when given an array of these.
type mmsghdr struct {
	hdr   syscall.Msghdr
	nrecv uint32
	_     [4]byte
}

// Compile-time layout guards: the kernel ABI expects 64-byte mmsghdr
// entries (56-byte msghdr + length + pad) on both supported
// architectures; a negative array length here breaks the build if the
// struct drifts.
var (
	_ [unsafe.Sizeof(mmsghdr{}) - 64]byte
	_ [64 - unsafe.Sizeof(mmsghdr{})]byte
)

// serveBatch runs the batched loop when the transport and
// configuration allow it: a *net.UDPConn (raw fd access) and an
// effective batch size above 1. handled=false means the caller should
// fall back to the per-packet loop.
func (s *Server) serveBatch(pc net.PacketConn) (handled bool, err error) {
	batch := s.batch
	if batch == 0 {
		batch = batchDefault
	}
	if batch > batchMax {
		batch = batchMax
	}
	if batch <= 1 {
		return false, nil
	}
	uc, ok := pc.(*net.UDPConn)
	if !ok {
		return false, nil
	}
	rc, err := uc.SyscallConn()
	if err != nil {
		// No raw fd access (wrapped or already-closed conn): the
		// per-packet loop will surface whatever is wrong.
		return false, nil
	}
	bl := newBatchLoop(s, rc, batch)
	return true, bl.run()
}

// batchLoop is one shard's batched serving state: the slabs the kernel
// reads and writes, the mmsghdr arrays wired into them once at setup,
// and the RawConn callbacks (created once — a closure per batch would
// be a steady-state allocation).
type batchLoop struct {
	srv        *Server
	rc         syscall.RawConn
	batch      int
	stamping   bool // SO_TIMESTAMPING RX armed on the socket
	txStamping bool // SOF_TIMESTAMPING_TX_SOFTWARE armed (ServerConfig.TxStamp)

	pktIn  []byte                   // batch × rxBufSize receive slab
	pktOut []byte                   // batch × PacketSize reply slab
	names  []syscall.RawSockaddrAny // kernel-written packet sources
	oob    []byte                   // batch × oobSize control slab
	riovs  []syscall.Iovec
	rmsgs  []mmsghdr
	siovs  []syscall.Iovec
	smsgs  []mmsghdr

	// TX error-queue drain slabs (allocated only when txStamping) and
	// the cookie→send-time correlation ring. procWall is the wall time
	// the current batch was processed at, recorded so flush can stamp
	// every sent reply's ring entry without re-reading the clock.
	errPkt   []byte // errBatch × errBufSize looped-packet slab
	errOob   []byte // errBatch × oobSize control slab
	erriovs  []syscall.Iovec
	errmsgs  []mmsghdr
	txRing   []txRingEntry
	procWall int64

	// Syscall results, carried out of the RawConn callbacks.
	recvN   int
	recvErr syscall.Errno
	sentN   int
	sendErr syscall.Errno
	sendOff int // first unsent smsgs entry of the current flush
	sendCnt int // smsgs entries in the current flush

	readFn  func(fd uintptr) bool
	writeFn func(fd uintptr) bool
	drainFn func(fd uintptr)
}

// txRingEntry correlates one sent reply (by its Transmit cookie) with
// the wall time its batch was processed, so the error-queue stamp can
// be turned into a userspace→kernel dwell.
type txRingEntry struct {
	cookie uint64
	sent   int64 // procWall nanos at handlePacket time
}

// txRingIdx hashes a Transmit cookie to its home slot in the
// correlation ring (Fibonacci hashing; the cookie's low bits are
// fractional-second noise, the multiply spreads them across the
// table).
//
//repro:hotpath
func txRingIdx(cookie uint64) int {
	return int((cookie * 0x9E3779B97F4A7C15) >> (64 - 9)) // log2(txRingSize) bits
}

// txRingInsert records a sent reply in the correlation ring: take the
// first free (or same-cookie) slot in the probe window, else evict the
// oldest entry — whose stamp, if it ever loops back, is simply counted
// missing. A cookie of zero marks a free slot; Marshal never emits a
// zero Transmit for a served reply.
//
//repro:hotpath
func (bl *batchLoop) txRingInsert(cookie uint64, sent int64) {
	base := txRingIdx(cookie)
	victim := base
	oldest := int64(1<<63 - 1)
	for p := 0; p < txRingProbe; p++ {
		i := (base + p) & (txRingSize - 1)
		ent := &bl.txRing[i]
		if ent.cookie == 0 || ent.cookie == cookie {
			ent.cookie, ent.sent = cookie, sent
			return
		}
		if ent.sent < oldest {
			oldest, victim = ent.sent, i
		}
	}
	bl.txRing[victim] = txRingEntry{cookie: cookie, sent: sent}
}

// txRingTake looks a looped-back cookie up in the probe window and
// frees the slot on a hit, keeping ring occupancy proportional to the
// stamps still in flight.
//
//repro:hotpath
func (bl *batchLoop) txRingTake(cookie uint64) (int64, bool) {
	base := txRingIdx(cookie)
	for p := 0; p < txRingProbe; p++ {
		ent := &bl.txRing[(base+p)&(txRingSize-1)]
		if ent.cookie == cookie {
			ent.cookie = 0
			return ent.sent, true
		}
	}
	return 0, false
}

// newBatchLoop allocates and wires the slabs. Receive-side mmsghdrs
// point at fixed per-slot buffers; send-side mmsghdrs have fixed
// iovecs into the reply slab (reply k always lands in out slot k) and
// only their Name/Namelen vary per batch, set during process.
func newBatchLoop(s *Server, rc syscall.RawConn, batch int) *batchLoop {
	bl := &batchLoop{
		srv:    s,
		rc:     rc,
		batch:  batch,
		pktIn:  make([]byte, batch*rxBufSize),
		pktOut: make([]byte, batch*PacketSize),
		names:  make([]syscall.RawSockaddrAny, batch),
		oob:    make([]byte, batch*oobSize),
		riovs:  make([]syscall.Iovec, batch),
		rmsgs:  make([]mmsghdr, batch),
		siovs:  make([]syscall.Iovec, batch),
		smsgs:  make([]mmsghdr, batch),
	}
	for i := 0; i < batch; i++ {
		bl.riovs[i].Base = &bl.pktIn[i*rxBufSize]
		bl.riovs[i].Len = rxBufSize
		bl.rmsgs[i].hdr.Name = (*byte)(unsafe.Pointer(&bl.names[i]))
		bl.rmsgs[i].hdr.Iov = &bl.riovs[i]
		bl.rmsgs[i].hdr.Iovlen = 1
		bl.rmsgs[i].hdr.Control = &bl.oob[i*oobSize]

		bl.siovs[i].Base = &bl.pktOut[i*PacketSize]
		bl.siovs[i].Len = PacketSize
		bl.smsgs[i].hdr.Iov = &bl.siovs[i]
		bl.smsgs[i].hdr.Iovlen = 1
	}
	bl.resetHeaders(batch)

	// Arm RX stamps always; add TX stamps when configured. A kernel
	// that rejects the combined flags (no TX loopback support) falls
	// back to RX-only rather than losing both.
	rxFlags := sofTimestampingRxSoftware | sofTimestampingSoftware
	if s.txStamp && armTimestamping(rc, rxFlags|sofTimestampingTxSoftware) {
		bl.stamping, bl.txStamping = true, true
	} else {
		bl.stamping = armTimestamping(rc, rxFlags)
	}
	if bl.txStamping {
		bl.errPkt = make([]byte, errBatch*errBufSize)
		bl.errOob = make([]byte, errBatch*oobSize)
		bl.erriovs = make([]syscall.Iovec, errBatch)
		bl.errmsgs = make([]mmsghdr, errBatch)
		bl.txRing = make([]txRingEntry, txRingSize)
		for i := 0; i < errBatch; i++ {
			bl.erriovs[i].Base = &bl.errPkt[i*errBufSize]
			bl.erriovs[i].Len = errBufSize
			bl.errmsgs[i].hdr.Iov = &bl.erriovs[i]
			bl.errmsgs[i].hdr.Iovlen = 1
			bl.errmsgs[i].hdr.Control = &bl.errOob[i*oobSize]
		}
		bl.drainFn = func(fd uintptr) { bl.drainErrqueue(fd) }
	}

	bl.readFn = func(fd uintptr) bool {
		n, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&bl.rmsgs[0])), uintptr(bl.batch),
			syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN {
			// A pending error-queue entry raises POLLERR, which wakes
			// this read without making the receive queue readable;
			// draining here both harvests the TX stamps and clears the
			// condition so the park is not a spin.
			if bl.txStamping {
				bl.drainErrqueue(fd)
			}
			return false // park on the netpoller until readable
		}
		bl.srv.stats.recvCalls.Add(1)
		if e != 0 {
			bl.recvN, bl.recvErr = 0, e
		} else {
			bl.recvN, bl.recvErr = int(n), 0
		}
		return true
	}
	bl.writeFn = func(fd uintptr) bool {
		n, _, e := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&bl.smsgs[bl.sendOff])), uintptr(bl.sendCnt-bl.sendOff),
			syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN {
			return false // park until writable (rare for UDP)
		}
		bl.srv.stats.sendCalls.Add(1)
		if e != 0 {
			bl.sentN, bl.sendErr = 0, e
		} else {
			bl.sentN, bl.sendErr = int(n), 0
		}
		return true
	}
	return bl
}

// run is the shard loop: drain a batch, process it in place, flush the
// replies, reset the kernel-written header fields, repeat. Error
// semantics match the per-packet loop: timeouts continue, a closed
// socket (or genuine socket failure) returns and lets the shard
// supervisor decide.
func (bl *batchLoop) run() error {
	for {
		if err := bl.rc.Read(bl.readFn); err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			return err
		}
		if bl.recvErr != 0 {
			if bl.recvErr == syscall.EINTR {
				continue
			}
			return os.NewSyscallError("recvmmsg", bl.recvErr)
		}
		n := bl.recvN
		if n <= 0 {
			continue
		}
		nOut := bl.process(n)
		if nOut > 0 {
			if err := bl.flush(nOut); err != nil {
				return err
			}
			if bl.txStamping {
				// Harvest the TX stamps the kernel queued while (and
				// right after) the flush; anything not yet looped back
				// is picked up by the next drain or the POLLERR wake.
				_ = bl.rc.Control(bl.drainFn)
			}
		}
		bl.resetHeaders(n)
	}
}

// process runs the per-packet pipeline over one received batch and
// compacts the replies into the send slots, returning how many replies
// to flush. Reply k's payload is already in out slot k (fixed iovec);
// only its destination sockaddr is wired here, pointing at the
// receive-side name slot the kernel filled.
//
//repro:hotpath
func (bl *batchLoop) process(n int) int {
	s := bl.srv
	s.stats.requests.Add(uint64(n))
	// One wall read ages every kernel stamp in the batch: the spread
	// within a batch is microseconds, far below stampMaxAge. The same
	// read anchors the TX correlation ring (procWall) and one
	// txAdvance lookup forward-dates every reply in the batch.
	now := time.Now()
	bl.procWall = now.UnixNano()
	var txAdv time.Duration
	if bl.txStamping {
		txAdv = s.txAdvance()
	}
	kStamped, kMissing, kClamped := uint64(0), uint64(0), uint64(0)
	nOut := 0
	for i := 0; i < n; i++ {
		if s.limit != nil {
			// The batched rate-limit path keys straight off the raw
			// sockaddr bytes the kernel wrote — no net.Addr boxing, no
			// net.IP allocation (see Limiter.AllowAddr for the
			// per-packet loop's boxed equivalent).
			if key, ok := bl.prefixKey(i); ok && !s.limit.Allow(key) {
				s.stats.rateLimited.Add(1)
				continue
			}
		}
		var rxAge time.Duration
		if sec, nsec, ok := parseRxTimestamp(bl.oob[i*oobSize : i*oobSize+int(bl.rmsgs[i].hdr.Controllen)]); ok {
			rxAge = now.Sub(time.Unix(sec, nsec))
			if rxAge >= 0 && rxAge <= stampMaxAge {
				kStamped++
			} else if rxAge >= -stampSlack && rxAge < 0 {
				// Sub-millisecond negative age is wall-clock jitter
				// between the kernel stamp and our read, not a lie.
				rxAge = 0
				kStamped++
				kClamped++
			} else {
				rxAge = 0 // a clock step; the sample time is safer
				kMissing++
				kClamped++
			}
		} else {
			kMissing++
		}
		in := bl.pktIn[i*rxBufSize : i*rxBufSize+int(bl.rmsgs[i].nrecv)]
		out := (*[PacketSize]byte)(bl.pktOut[nOut*PacketSize:])
		if !s.handlePacket(in, out, rxAge, txAdv) {
			continue
		}
		bl.smsgs[nOut].hdr.Name = (*byte)(unsafe.Pointer(&bl.names[i]))
		bl.smsgs[nOut].hdr.Namelen = bl.rmsgs[i].hdr.Namelen
		nOut++
	}
	s.stats.kernelRx.Add(kStamped)
	s.stats.kernelRxMissing.Add(kMissing)
	if kClamped > 0 {
		s.stats.stampClamped.Add(kClamped)
	}
	return nOut
}

// flush sends the first n compacted replies with as few sendmmsg
// calls as the kernel allows. Partial sends resume at the first
// unsent message; a per-message failure (spoofed unroutable source,
// transient ENOBUFS) is counted and skipped, exactly like the
// per-packet loop's WriteTo error path. Only a closed socket aborts.
func (bl *batchLoop) flush(n int) error {
	bl.sendOff, bl.sendCnt = 0, n
	for bl.sendOff < bl.sendCnt {
		if err := bl.rc.Write(bl.writeFn); err != nil {
			return err
		}
		if bl.sendErr != 0 {
			if bl.sendErr == syscall.EINTR {
				continue
			}
			// sendmmsg failed on the head message without sending
			// anything: charge that one message and move past it.
			bl.srv.stats.writeErrors.Add(1)
			bl.sendOff++
			continue
		}
		bl.srv.stats.replied.Add(uint64(bl.sentN))
		if bl.txStamping {
			// Record every sent reply's Transmit cookie against the
			// batch's process time so the looped-back error-queue copy
			// can be correlated into a userspace→kernel dwell.
			for k := bl.sendOff; k < bl.sendOff+bl.sentN; k++ {
				ck := binary.BigEndian.Uint64(bl.pktOut[k*PacketSize+40:])
				bl.txRingInsert(ck, bl.procWall)
			}
		}
		bl.sendOff += bl.sentN
	}
	return nil
}

// drainErrqueue empties the socket error queue of looped-back TX
// copies: each recvmmsg with MSG_ERRQUEUE drains up to errBatch
// entries into the preallocated slabs, processTxStamps correlates them
// to sent replies, and the loop stops when a drain comes back short
// (queue empty). Runs inside a RawConn callback (fd is valid for the
// duration); never blocks.
//
//repro:hotpath
func (bl *batchLoop) drainErrqueue(fd uintptr) {
	for {
		bl.resetErrHeaders()
		n, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&bl.errmsgs[0])), uintptr(errBatch),
			syscall.MSG_ERRQUEUE|syscall.MSG_DONTWAIT, 0, 0)
		if e != 0 || n == 0 {
			return
		}
		bl.processTxStamps(int(n))
		if int(n) < errBatch {
			return
		}
	}
}

// processTxStamps turns n drained error-queue entries into TX dwell
// samples: parse the SCM_TIMESTAMPING cmsg, read the Transmit cookie
// off the looped payload's tail, look up the send time in the
// correlation ring, and feed the clamp-checked dwell into the server's
// EWMA and histogram. Split from drainErrqueue so the deterministic
// correlation test and the zero-alloc gate can drive it with
// hand-built slabs.
//
//repro:hotpath
func (bl *batchLoop) processTxStamps(n int) {
	s := bl.srv
	var stamped, missing, clamped uint64
	for i := 0; i < n; i++ {
		oob := bl.errOob[i*oobSize : i*oobSize+int(bl.errmsgs[i].hdr.Controllen)]
		sec, nsec, ok := parseTxTimestamp(oob)
		if !ok {
			missing++
			continue
		}
		ck, ok := txPayloadCookie(bl.errPkt[i*errBufSize : i*errBufSize+int(bl.errmsgs[i].nrecv)])
		if !ok {
			missing++
			continue
		}
		sent, ok := bl.txRingTake(ck)
		if !ok {
			// Evicted by a colliding cookie (or a stamp for a reply
			// sent before this loop started): uncorrelatable.
			missing++
			continue
		}
		dwell := sec*1e9 + nsec - sent
		if dwell < -int64(stampSlack) || dwell > int64(stampMaxAge) {
			// A clock step between process time and the kernel stamp;
			// the dwell would poison the EWMA.
			clamped++
			missing++
			continue
		}
		if dwell < 0 {
			clamped++
			dwell = 0
		}
		s.recordTxDwell(dwell)
		stamped++
	}
	if stamped > 0 {
		s.stats.kernelTx.Add(stamped)
	}
	if missing > 0 {
		s.stats.kernelTxMissing.Add(missing)
	}
	if clamped > 0 {
		s.stats.stampClamped.Add(clamped)
	}
}

// resetErrHeaders restores the kernel-written header fields of the
// error-queue receive slots before the next drain.
//
//repro:hotpath
func (bl *batchLoop) resetErrHeaders() {
	for i := 0; i < errBatch; i++ {
		bl.errmsgs[i].hdr.Controllen = oobSize
		bl.errmsgs[i].hdr.Flags = 0
		bl.errmsgs[i].nrecv = 0
	}
}

// resetHeaders restores the kernel-written in/out header fields of the
// first n receive slots before the next recvmmsg: the kernel shrinks
// Namelen/Controllen to the actual lengths and sets Flags, and would
// otherwise truncate the next batch's sockaddrs and control messages.
//
//repro:hotpath
func (bl *batchLoop) resetHeaders(n int) {
	for i := 0; i < n; i++ {
		bl.rmsgs[i].hdr.Namelen = syscall.SizeofSockaddrAny
		bl.rmsgs[i].hdr.Controllen = oobSize
		bl.rmsgs[i].hdr.Flags = 0
	}
}

// prefixKey derives the rate-limiter key for packet i straight from
// the raw sockaddr the kernel wrote, mirroring ratelimit.PrefixKey's
// classification (v4 and v4-mapped addresses share the v4 key space).
// ok=false (unknown family) fails open, like AllowAddr.
//
//repro:hotpath
func (bl *batchLoop) prefixKey(i int) (uint64, bool) {
	sa := &bl.names[i]
	switch sa.Addr.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		return ratelimit.PrefixKey4(sa4.Addr), true
	case syscall.AF_INET6:
		sa6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(sa))
		return ratelimit.PrefixKey16(&sa6.Addr), true
	}
	return 0, false
}

package ntp

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/ratelimit"
)

// BenchmarkServeLoopback measures downstream serving throughput over
// real loopback UDP: N shard listeners on one address (SO_REUSEPORT on
// Linux), hammered by concurrent clients that keep a bounded window of
// requests in flight (batched ping-pong: the window stays far below
// the socket buffers, so loopback UDP does not drop). b.N counts
// replies; ns/op is the per-reply budget at that shard count, and the
// shards=4 / shards=1 throughput ratio is the sharding win recorded in
// PERF.md.
// The batch dimension selects the serving loop: batch=1 forces the
// portable per-packet loop (two syscalls per reply), batch=32 runs the
// Linux recvmmsg/sendmmsg loop. The reported sys/reply metric is the
// measured (RecvCalls+SendCalls)/Replied from the server's own
// counters — on a single-core runner the closed-loop clients rarely
// build real queue depth, so replies/s understates the batching win
// while sys/reply still shows how much of the load arrived batched.
func BenchmarkServeLoopback(b *testing.B) {
	for _, dim := range []struct {
		shards, batch int
		txstamp       bool
	}{
		{1, 1, false}, {1, 32, false}, {2, 32, false}, {4, 32, false}, {1, 32, true},
	} {
		name := fmt.Sprintf("shards=%d/batch=%d", dim.shards, dim.batch)
		if dim.txstamp {
			name += "/txstamp"
		}
		b.Run(name, func(b *testing.B) {
			benchServeLoopback(b, ServerConfig{Clock: SystemServerClock(), Batch: dim.batch, TxStamp: dim.txstamp}, dim.shards)
		})
	}
}

// BenchmarkServeLoopbackLimited is BenchmarkServeLoopback with the
// per-prefix rate limiter attached — the only per-packet cost the
// observability layer adds (metric counters are bare atomics and the
// exposition work all happens at scrape time). The delta against the
// bare benchmark at the same shard count is the instrumentation tax
// recorded in PERF.md; the budget is generous enough (Rate 1e9) that
// no benchmark packet is ever denied, so both benchmarks count the
// same work per reply.
func BenchmarkServeLoopbackLimited(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			limit := ratelimit.New(ratelimit.Config{Rate: 1e9, Burst: 1e9})
			benchServeLoopback(b, ServerConfig{Clock: SystemServerClock(), Limit: limit, Batch: 1}, shards)
		})
	}
}

func benchServeLoopback(b *testing.B, cfg ServerConfig, shards int) {
	srv, err := NewServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sh, err := srv.ListenShards("udp", "127.0.0.1:0", shards)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- sh.Serve(ctx) }()
	defer func() {
		cancel()
		<-served
	}()

	// One flow per client socket: the kernel hashes flows across
	// the reuseport set, so distinct sockets land on distinct
	// shards. The in-flight window is sized against the socket
	// buffer's per-packet truesize accounting (~1 KB per tiny
	// datagram), and rare overflow drops are resent rather than
	// failed — this is a throughput benchmark, not a loss test.
	const clients = 8
	const window = 16
	req := Packet{Version: 4, Mode: ModeClient, Transmit: Time64FromTime(time.Now())}
	wire := req.Marshal()
	per := b.N / clients
	var wg sync.WaitGroup
	b.ResetTimer()
	for c := 0; c < clients; c++ {
		n := per
		if c == 0 {
			n += b.N % clients
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			conn, err := net.Dial("udp", sh.Addr().String())
			if err != nil {
				b.Error(err)
				return
			}
			defer conn.Close()
			var rbuf [512]byte
			retries := 0
			for done := 0; done < n; {
				batch := window
				if n-done < batch {
					batch = n - done
				}
				for i := 0; i < batch; i++ {
					if _, err := conn.Write(wire[:]); err != nil {
						b.Error(err)
						return
					}
				}
				for got := 0; got < batch; {
					conn.SetReadDeadline(time.Now().Add(time.Second))
					if _, err := conn.Read(rbuf[:]); err != nil {
						// Dropped under buffer pressure: resend
						// the outstanding remainder of the batch.
						retries++
						if retries > 100 {
							b.Errorf("server unresponsive after %d retries (%d/%d replies)", retries, done+got, n)
							return
						}
						for i := got; i < batch; i++ {
							if _, err := conn.Write(wire[:]); err != nil {
								b.Error(err)
								return
							}
						}
						continue
					}
					got++
				}
				done += batch
			}
		}(n)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "replies/s")
	if st := srv.Stats(); st.Replied > 0 {
		b.ReportMetric(float64(st.RecvCalls+st.SendCalls)/float64(st.Replied), "sys/reply")
		if rx := st.KernelRx + st.KernelRxMissing; rx > 0 {
			b.ReportMetric(float64(st.KernelRx)/float64(rx), "rxcov")
		}
		if cfg.TxStamp {
			// Coverage against all replies: an error-queue stamp the
			// ring failed to correlate counts against coverage just
			// like one the kernel never looped.
			b.ReportMetric(float64(st.KernelTx)/float64(st.Replied), "txcov")
		}
	}
}

//go:build !linux || (!amd64 && !arm64)

package ntp

import "net"

// serveBatch on platforms without the batched loop (no recvmmsg/
// sendmmsg, or an architecture whose syscall numbers and cmsg layout
// this package does not carry): never handled, so Serve always takes
// the portable per-packet loop.
func (s *Server) serveBatch(pc net.PacketConn) (bool, error) {
	return false, nil
}

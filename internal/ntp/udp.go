package ntp

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/ratelimit"
)

// Counter abstracts the host's raw timestamp source. On the live path it
// is a monotonic nanosecond counter; in the simulation it is the modelled
// TSC register. Reads must be cheap and monotonic non-decreasing.
type Counter func() uint64

// PrecisionFromPeriod converts a counter period in seconds to the NTP
// precision field (log2 seconds, rounded up): 1 ns → −29.
func PrecisionFromPeriod(period float64) int8 {
	if period <= 0 {
		return -20
	}
	return int8(math.Ceil(math.Log2(period)))
}

// MonotonicCounter returns a Counter reading nanoseconds of monotonic
// time since the call, together with its nominal period in seconds
// (1 ns). This is the live-path stand-in for the TSC register: Go exposes
// no portable cycle counter, but the runtime's monotonic clock is driven
// by the same underlying hardware oscillator, so the paper's calibration
// algorithms apply unchanged with p ~ 1e-9.
func MonotonicCounter() (Counter, float64) {
	start := time.Now()
	return func() uint64 {
		return uint64(time.Since(start))
	}, 1e-9
}

// RawExchange is the result of one NTP client exchange in raw form: the
// host counter readings bracketing the exchange and the two server
// timestamps from the payload. This is exactly the per-packet input of
// the synchronization algorithms.
type RawExchange struct {
	// Ta and Tf are host counter readings: Ta just before the request
	// was passed to the network stack, Tf just after the response
	// arrived. With kernel stamping armed (EnableKernelStamps), Ta is
	// advanced to the kernel's error-queue TX stamp and Tf backdated to
	// the kernel's RX cmsg stamp, so both readings reflect the wire
	// rather than the syscall boundary.
	Ta, Tf uint64
	// Tb and Te are the server receive and transmit timestamps in
	// seconds (since the NTP epoch of the current era on the live path;
	// since the simulation origin on the simulated path).
	Tb, Te float64
	// Stratum and RefID identify the server's synchronization source;
	// RefID changes are a route/server-change signal.
	Stratum uint8
	RefID   uint32

	// KernelTa and KernelTf report whether Ta/Tf were corrected to
	// kernel timestamps; when false the corresponding stamp is the
	// userspace fallback. TaDelta and TfDelta are the measured
	// kernel-vs-userspace deltas in seconds (>= 0; zero when the stamp
	// was missing): TaDelta is the send-side dwell between the
	// userspace write stamp and the kernel's transmit stamp, TfDelta
	// the receive-side dwell between the kernel's arrival stamp and the
	// userspace read-return stamp. These deltas ARE the host stamping
	// noise the paper's filtering machinery otherwise has to absorb.
	KernelTa, KernelTf bool
	TaDelta, TfDelta   float64
}

// rxStampInfo carries the kernel RX stamp (if any) of one received
// datagram together with the userspace wall time bracketing the read,
// so the Tf adjustment can be computed after reply matching.
type rxStampInfo struct {
	kernel time.Time // kernel software RX stamp; zero when absent
	wall   time.Time // userspace wall clock just after the read returned
}

// Client performs NTP exchanges over a PacketConn-style transport.
type Client struct {
	conn    net.Conn
	counter Counter
	timeout time.Duration
	version uint8
	ks      *kernelStamps // kernel SO_TIMESTAMPING state; nil = userspace stamps
	sc      clientStampCounters
}

// NewClient returns a client that exchanges NTP packets on conn (already
// connected to the server address) and stamps with counter. A zero
// timeout defaults to 4 seconds.
func NewClient(conn net.Conn, counter Counter, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 4 * time.Second
	}
	return &Client{conn: conn, counter: counter, timeout: timeout, version: 4}
}

// Shared kernel-stamp trust clamp, used identically by the serving RX
// backdate, the serving TX dwell, and both client-side corrections
// (one constant set, per the stamping contract in ARCHITECTURE.md):
//
//   - stampMaxAge bounds how far in the past a kernel stamp may claim
//     to be before it is distrusted — a clock step between the kernel
//     stamp and the userspace wall read would otherwise smear the step
//     into a timestamp correction;
//   - stampSlack is the tolerated negative age (the kernel stamp
//     apparently in the future of the wall read): sub-millisecond
//     skew is wall-clock jitter and is clamped to zero, anything
//     larger is a step and the stamp is distrusted;
//   - txAdvanceMax bounds the Transmit forward-dating applied from the
//     measured TX-dwell EWMA — the dwell is a *prediction* for the
//     packet being stamped (unlike the RX backdate, which is measured
//     per packet), so it gets a far tighter cap.
//
// Every clamp hit is counted (Stats.StampClamped on the serving path,
// ClientStampStats.Clamped on the client path) and surfaced as the
// ntp_stamp_clamped_total metric — a clamping host has a stepping or
// badly skewed clock, which is worth an alert, not a silent counter.
const (
	stampMaxAge  = time.Second
	stampSlack   = time.Millisecond
	txAdvanceMax = time.Millisecond
)

// clientStampCounters is the atomic backing of ClientStampStats. The
// exchange path is single-goroutine per client, but stats are read by
// metric scrapes, so every field is atomic.
type clientStampCounters struct {
	txStamped atomic.Uint64
	txMissing atomic.Uint64
	rxStamped atomic.Uint64
	rxMissing atomic.Uint64
	clamped   atomic.Uint64
	taDelta   atomic.Uint64 // float64 bits of the Ta-delta EWMA (seconds)
	tfDelta   atomic.Uint64 // float64 bits of the Tf-delta EWMA (seconds)
}

// ClientStampStats is a snapshot of a client's kernel-stamp coverage:
// how many exchanges got their Ta from the error-queue TX stamp and
// their Tf from the RX cmsg stamp, how many fell back to userspace
// stamps, and the EWMA of the kernel-vs-userspace deltas (the measured
// host stamping noise, in seconds).
type ClientStampStats struct {
	TxStamped uint64 // exchanges with Ta from the kernel TX stamp
	TxMissing uint64 // exchanges that fell back to the userspace Ta
	RxStamped uint64 // exchanges with Tf from the kernel RX stamp
	RxMissing uint64 // exchanges that fell back to the userspace Tf
	Clamped   uint64 // kernel stamps rejected or clipped by the trust clamp
	TaDelta   float64
	TfDelta   float64
}

// StampStats returns the client's kernel-stamp coverage counters. All
// zeros when kernel stamping was never armed.
func (c *Client) StampStats() ClientStampStats {
	return ClientStampStats{
		TxStamped: c.sc.txStamped.Load(),
		TxMissing: c.sc.txMissing.Load(),
		RxStamped: c.sc.rxStamped.Load(),
		RxMissing: c.sc.rxMissing.Load(),
		Clamped:   c.sc.clamped.Load(),
		TaDelta:   math.Float64frombits(c.sc.taDelta.Load()),
		TfDelta:   math.Float64frombits(c.sc.tfDelta.Load()),
	}
}

// ewmaUpdate folds one sample into a float64-bits EWMA cell with
// alpha 1/8, seeding from the first sample.
func ewmaUpdate(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := v
		if old != 0 {
			cur := math.Float64frombits(old)
			next = cur + (v-cur)/8
		}
		if bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// EnableKernelStamps arms kernel SO_TIMESTAMPING on the client socket
// (Linux, *net.UDPConn transports): software TX stamps read back from
// the socket error queue move Ta to the kernel's transmit instant, and
// software RX stamps from the receive cmsg move Tf to the kernel's
// arrival instant — both stamps shed the scheduler-wakeup dwell the
// paper models as host noise. period is the counter's nominal period
// in seconds per unit (needed to convert wall-time deltas into counter
// units). Returns whether stamping was armed; false (other platforms,
// non-UDP transports, old kernels) leaves the userspace stamps in
// place, and even when armed every exchange falls back per-stamp when
// the kernel omits one (counted in StampStats).
func (c *Client) EnableKernelStamps(period float64) bool {
	return c.armKernelStamps(period)
}

// errShortWrite is returned when the transport accepts a partial packet.
var errShortWrite = errors.New("ntp: short write")

// Exchange sends one client-mode request and waits for the matching
// server reply, returning the raw four-tuple. The counter is read as
// close to the send and receive as user space allows; any residual
// latency appears to the algorithms as network delay and is filtered like
// any other positive noise, per the paper's Section 2.2.1.
func (c *Client) Exchange() (RawExchange, error) {
	var raw RawExchange

	req := Packet{
		Version: c.version,
		Mode:    ModeClient,
		Poll:    6,
		// Transmit is set to a sentinel so the reply can be matched; we
		// deliberately do not leak the host clock reading, the raw
		// counter is what matters.
		Transmit: Time64FromTime(time.Now()),
	}
	buf := req.Marshal()

	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return raw, fmt.Errorf("ntp: set deadline: %w", err)
	}

	// taWall brackets the write on the wall clock so the kernel TX stamp
	// (CLOCK_REALTIME) can be compared against it; it is only read when
	// kernel stamping is armed, keeping the userspace-only path at one
	// counter read around the syscall.
	taWall := c.stampWall()
	raw.Ta = c.counter()
	n, err := c.conn.Write(buf[:])
	if err != nil {
		return raw, fmt.Errorf("ntp: send: %w", err)
	}
	if n != len(buf) {
		return raw, errShortWrite
	}

	var rbuf [512]byte
	for {
		n, rx, err := c.readReply(rbuf[:])
		tf := c.counter()
		if err != nil {
			return raw, fmt.Errorf("ntp: receive: %w", err)
		}
		var resp Packet
		if err := resp.Unmarshal(rbuf[:n]); err != nil {
			continue // not an NTP packet; keep waiting until deadline
		}
		if resp.Mode != ModeServer || resp.Origin != req.Transmit {
			continue // stray or stale reply
		}
		if resp.Stratum == 0 { // kiss-of-death
			return raw, fmt.Errorf("ntp: kiss-of-death from server (refid %q)", resp.RefIDString())
		}
		raw.Tf = tf
		raw.Tb = resp.Receive.Seconds()
		raw.Te = resp.Transmit.Seconds()
		raw.Stratum = resp.Stratum
		raw.RefID = resp.RefID
		c.applyKernelStamps(&raw, req.Transmit, taWall, rx)
		return raw, nil
	}
}

// ServerClock supplies the server's notion of current time for stamping.
type ServerClock func() Time64

// SystemServerClock stamps from the OS wall clock.
func SystemServerClock() ServerClock {
	return func() Time64 { return Time64FromTime(time.Now()) }
}

// ClockSample is one reading of a serving clock together with the
// health the server should advertise for it. A stratum-2 relay derives
// Leap/Stratum/RootDelay/RootDisp from the upstream ensemble's
// published readout; the bundled stratum-1 server uses static values.
type ClockSample struct {
	Time      Time64
	Leap      LeapIndicator
	Stratum   uint8
	Precision int8
	RefID     uint32
	RootDelay Short32
	RootDisp  Short32
}

// SampleClock supplies dynamic stamping plus advertised health for
// every request. It must be safe for concurrent use: the sharded
// serving path calls it from every shard goroutine (reads of a
// published clock readout satisfy this for free).
type SampleClock func() ClockSample

// ServerConfig configures the bundled NTP server.
type ServerConfig struct {
	// Sample supplies stamping and per-request health. When nil, a
	// static SampleClock is assembled from the legacy fields below.
	Sample SampleClock

	// Clock stamps replies when Sample is nil.
	Clock     ServerClock
	RefID     uint32 // defaults to "GPS"
	Stratum   uint8  // defaults to 1
	Precision int8   // defaults to -20 (~1 µs)

	// Limit, when non-nil, rate-limits requests by client prefix on
	// every shard: over-budget packets are dropped before parsing and
	// counted in Stats.RateLimited, so one abusive subnet spends its
	// own bucket instead of a shard's cycles. Nil serves unlimited.
	Limit *ratelimit.Limiter

	// Batch is the serving loop's syscall batching factor on platforms
	// with recvmmsg/sendmmsg (Linux amd64/arm64): each receive syscall
	// drains up to Batch datagrams off the socket and each send syscall
	// answers a whole batch, so the per-reply syscall cost is ~2/Batch
	// instead of 2. Batched sockets also arm SO_TIMESTAMPING, so the
	// Receive stamp of every reply reflects the kernel's NIC-adjacent
	// arrival time rather than the scheduler wakeup that dequeued it.
	// 0 takes the default (32); 1 forces the per-packet loop; values
	// above 64 are clamped. Platforms without recvmmsg — and transports
	// that are not *net.UDPConn — always serve per-packet.
	Batch int

	// TxStamp arms SOF_TIMESTAMPING_TX_SOFTWARE on batched sockets: the
	// kernel loops a software transmit stamp for every reply back on the
	// socket error queue, the serving loop drains it (batched, non-
	// blocking, allocation-free) and correlates stamps to replies by the
	// embedded Transmit cookie, measuring the userspace→kernel TX dwell
	// distribution (Stats.TxDwell*). The serving loop then forward-dates
	// each reply's Transmit field by the clamped dwell EWMA, so clients
	// see NIC-adjacent departure the way RX stamps give them NIC-
	// adjacent arrival. Off by default: unlike the RX backdate — a
	// per-packet measurement — the TX advance is a prediction, and
	// operators should opt in after looking at the dwell distribution.
	// Ignored by the per-packet fallback loop.
	TxStamp bool
}

// Stats is a point-in-time snapshot of a server's request counters,
// aggregated across every shard serving through the same Server.
type Stats struct {
	Requests    uint64 // packets read off the sockets
	Replied     uint64 // server-mode replies sent
	Short       uint64 // dropped: shorter than the 48-byte v4 header
	Malformed   uint64 // dropped: unparseable or version 0
	NonClient   uint64 // dropped: not a client-mode request
	RateLimited uint64 // dropped: client prefix over its token budget
	WriteErrors uint64 // reply writes that failed

	// RecvCalls and SendCalls count the receive and send syscalls the
	// serving loops issued. The per-packet loop pays one of each per
	// reply; the batched loop amortizes each across up to Batch
	// packets, so (RecvCalls+SendCalls)/Replied is the measured
	// syscalls-per-reply figure the batching exists to shrink.
	RecvCalls uint64
	SendCalls uint64

	// KernelRx counts batched datagrams that arrived with a usable
	// kernel SO_TIMESTAMPING RX timestamp (their replies, if any, have
	// Receive backdated to kernel arrival); KernelRxMissing counts
	// batched datagrams without one (option unsupported, cmsg omitted
	// by the kernel, or a stamp too stale/garbled to trust).
	// Rate-limited packets are dropped before stamp parsing, and the
	// per-packet fallback loop never attempts kernel stamping, so
	// neither counts under these.
	KernelRx        uint64
	KernelRxMissing uint64

	// KernelTx counts replies whose kernel TX stamp came back on the
	// error queue and correlated to a recorded send (their dwell fed the
	// EWMA); KernelTxMissing counts error-queue packets that could not
	// be used (no cmsg stamp, uncorrelatable cookie, or a dwell outside
	// the trust clamp). Both stay zero unless ServerConfig.TxStamp armed
	// TX stamping on a batched socket.
	KernelTx        uint64
	KernelTxMissing uint64

	// StampClamped counts kernel timestamps (RX and TX alike) rejected
	// or clipped by the shared trust clamp [−stampSlack, stampMaxAge].
	// A steadily increasing value means the host clock is stepping or
	// badly skewed relative to the kernel's stamping clock.
	StampClamped uint64

	// TxDwellEWMA is the current userspace→kernel TX dwell estimate
	// (EWMA, alpha 1/16): how long after the serving loop stamped
	// Transmit the kernel actually handed the reply to the driver. This
	// is the amount by which TxStamp forward-dates Transmit, before the
	// txAdvanceMax clamp. TxDwell is the dwell histogram as cumulative
	// counts per TxDwellBounds bucket (the last bucket is +Inf), and
	// TxDwellSum the total observed dwell in seconds.
	TxDwellEWMA time.Duration
	TxDwell     [len(TxDwellBounds) + 1]uint64
	TxDwellSum  float64
}

// TxDwellBounds are the upper bounds, in seconds, of the TX dwell
// histogram buckets (a final +Inf bucket is implicit): 1 µs to 1 s in
// decades, matching the range between a hot send path and the
// stampMaxAge trust bound.
var TxDwellBounds = [7]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// Dropped is the total of all protocol drop reasons (rate-limited
// packets are counted separately: they may be perfectly well-formed).
func (s Stats) Dropped() uint64 { return s.Short + s.Malformed + s.NonClient }

// counters is the atomic backing of Stats; one instance is shared by
// every shard goroutine of a Server.
type counters struct {
	requests        atomic.Uint64
	replied         atomic.Uint64
	short           atomic.Uint64
	malformed       atomic.Uint64
	nonClient       atomic.Uint64
	rateLimited     atomic.Uint64
	writeErrors     atomic.Uint64
	recvCalls       atomic.Uint64
	sendCalls       atomic.Uint64
	kernelRx        atomic.Uint64
	kernelRxMissing atomic.Uint64
	kernelTx        atomic.Uint64
	kernelTxMissing atomic.Uint64
	stampClamped    atomic.Uint64

	// txDwellEWMA holds the dwell EWMA in nanoseconds; txDwellSum the
	// float64 bits of the cumulative dwell in seconds; txDwellBuckets
	// the non-cumulative histogram counts (bucket i covers dwell ≤
	// TxDwellBounds[i]; the last is the overflow bucket).
	txDwellEWMA    atomic.Int64
	txDwellSum     atomic.Uint64
	txDwellBuckets [len(TxDwellBounds) + 1]atomic.Uint64
}

// recordTxDwell folds one measured userspace→kernel TX dwell (in
// nanoseconds, already clamp-checked by the caller) into the EWMA and
// the histogram.
func (s *Server) recordTxDwell(nanos int64) {
	for {
		old := s.stats.txDwellEWMA.Load()
		next := nanos
		if old != 0 {
			next = old + (nanos-old)/16
		}
		if s.stats.txDwellEWMA.CompareAndSwap(old, next) {
			break
		}
	}
	sec := float64(nanos) / 1e9
	for {
		old := s.stats.txDwellSum.Load()
		next := math.Float64bits(math.Float64frombits(old) + sec)
		if s.stats.txDwellSum.CompareAndSwap(old, next) {
			break
		}
	}
	i := 0
	for i < len(TxDwellBounds) && sec > TxDwellBounds[i] {
		i++
	}
	s.stats.txDwellBuckets[i].Add(1)
}

// txAdvance returns the Transmit forward-dating the serving loop should
// apply: the dwell EWMA clamped to [0, txAdvanceMax]. Zero until the
// first TX stamp correlates (and always zero when TxStamp is off — the
// EWMA never moves).
func (s *Server) txAdvance() time.Duration {
	d := time.Duration(s.stats.txDwellEWMA.Load())
	if d <= 0 {
		return 0
	}
	if d > txAdvanceMax {
		return txAdvanceMax
	}
	return d
}

// Server is a minimal NTP responder. It answers client-mode requests
// with server-mode replies carrying receive and transmit stamps —
// all the TSC-NTP calibration consumes — stamping every reply from a
// SampleClock (the OS clock for the bundled stratum-1 server, a
// synchronized ensemble readout for the stratum-2 relay). One Server
// may serve many sockets concurrently (see ListenShards); the counters
// are shared and atomic.
type Server struct {
	sample  SampleClock
	limit   *ratelimit.Limiter
	batch   int
	txStamp bool
	stats   counters
}

// NewServer constructs a server; nil or zero fields take defaults.
func NewServer(cfg ServerConfig) (*Server, error) {
	sample := cfg.Sample
	if sample == nil {
		if cfg.Clock == nil {
			return nil, errors.New("ntp: server requires a clock")
		}
		if cfg.RefID == 0 {
			cfg.RefID = RefIDFromString("GPS")
		}
		if cfg.Stratum == 0 {
			cfg.Stratum = 1
		}
		if cfg.Precision == 0 {
			cfg.Precision = -20
		}
		clock := cfg.Clock
		static := ClockSample{
			Leap:      LeapNone,
			Stratum:   cfg.Stratum,
			Precision: cfg.Precision,
			RefID:     cfg.RefID,
		}
		sample = func() ClockSample {
			s := static
			s.Time = clock()
			return s
		}
	}
	return &Server{sample: sample, limit: cfg.Limit, batch: cfg.Batch, txStamp: cfg.TxStamp}, nil
}

// Stats returns a snapshot of the request counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:        s.stats.requests.Load(),
		Replied:         s.stats.replied.Load(),
		Short:           s.stats.short.Load(),
		Malformed:       s.stats.malformed.Load(),
		NonClient:       s.stats.nonClient.Load(),
		RateLimited:     s.stats.rateLimited.Load(),
		WriteErrors:     s.stats.writeErrors.Load(),
		RecvCalls:       s.stats.recvCalls.Load(),
		SendCalls:       s.stats.sendCalls.Load(),
		KernelRx:        s.stats.kernelRx.Load(),
		KernelRxMissing: s.stats.kernelRxMissing.Load(),
		KernelTx:        s.stats.kernelTx.Load(),
		KernelTxMissing: s.stats.kernelTxMissing.Load(),
		StampClamped:    s.stats.stampClamped.Load(),
		TxDwellEWMA:     time.Duration(s.stats.txDwellEWMA.Load()),
		TxDwellSum:      math.Float64frombits(s.stats.txDwellSum.Load()),
	}
	var cum uint64
	for i := range st.TxDwell {
		cum += s.stats.txDwellBuckets[i].Load()
		st.TxDwell[i] = cum
	}
	return st
}

// Serve answers requests on pc until the connection is closed or a
// non-timeout read error occurs; reply WRITE failures are per-packet
// (a spoofed unroutable source must not cost the shard) — counted in
// Stats and skipped. Requests on one socket are processed
// sequentially, which keeps that socket's receive/transmit stamps
// ordered; run several Serve loops (ListenShards) to scale across
// cores.
//
// On Linux amd64/arm64 with a *net.UDPConn transport and Batch > 1,
// Serve runs the batched hot loop: recvmmsg drains up to Batch
// datagrams per syscall, the per-packet pipeline runs over the batch
// in place, and one sendmmsg answers it, with kernel SO_TIMESTAMPING
// RX stamps backdating each reply's Receive field to NIC-adjacent
// arrival. Everywhere else (other platforms, non-UDP transports,
// Batch = 1) the per-packet fallback loop serves with identical
// validation, counting and reply semantics.
func (s *Server) Serve(pc net.PacketConn) error {
	if handled, err := s.serveBatch(pc); handled {
		return err
	}
	return s.servePacket(pc)
}

// servePacket is the portable per-packet serving loop: one ReadFrom
// and one WriteTo syscall per reply.
//
//repro:hotpath
func (s *Server) servePacket(pc net.PacketConn) error {
	var buf [512]byte
	var out [PacketSize]byte
	for {
		n, addr, err := pc.ReadFrom(buf[:])
		if err != nil {
			var nerr net.Error
			//repro:alloc-ok read-error path: errors.As boxes its target only when ReadFrom fails, never per served packet
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			return err
		}
		s.stats.recvCalls.Add(1)
		s.stats.requests.Add(1)
		// The rate limiter runs before any parsing: an over-budget
		// prefix must not buy header validation, let alone a clock
		// sample. A nil limiter costs one predictable branch.
		if s.limit != nil && !s.limit.AllowAddr(addr) {
			s.stats.rateLimited.Add(1)
			continue
		}
		if !s.handlePacket(buf[:n], &out, 0, 0) {
			continue
		}
		s.stats.sendCalls.Add(1)
		if _, err := pc.WriteTo(out[:], addr); err != nil {
			// Reply write failures are per-packet, not per-server: a
			// request from a spoofed broadcast source (EACCES) or a
			// transient ENOBUFS must cost one counted drop, not the
			// shard — and with fail-fast shards, not the whole relay.
			// Only a closed socket ends the loop.
			s.stats.writeErrors.Add(1)
			if errors.Is(err, net.ErrClosed) {
				return err
			}
			continue
		}
		s.stats.replied.Add(1)
	}
}

// handlePacket is the per-packet serving pipeline over caller-owned
// buffers: validate the datagram in `in` (mutated in place for the
// v5+ version clamp), stamp one clock sample, and marshal the reply
// into out. It returns true when out holds a reply to send; drops are
// counted internally (short, malformed, non-client). The caller owns
// the surrounding concerns — counting the request, rate limiting,
// sending the reply and counting its outcome — because those differ
// between the per-packet and batched loops while this pipeline must
// not.
//
// Input validation is explicit rather than delegated to Unmarshal:
// packets shorter than the 48-byte v4 header and version-0 packets are
// dropped and counted, and a request with a version above 4 is served
// with the reply version clamped to 4 (RFC 5905 §7.3 behaviour: answer
// with the highest version the server speaks) instead of dropped.
//
// rxAge is how long ago the kernel stamped the datagram's arrival
// (zero when unknown): the reply's Receive stamp is backdated by it,
// so clients measure from NIC-adjacent arrival rather than from the
// scheduler wakeup that dequeued the packet — the paper's point that
// stamps taken closer to the wire carry less host noise, applied to
// the serving side. Symmetrically, txAdvance is the predicted
// userspace→kernel send dwell (zero when TX stamping is off or not
// yet converged): the reply's Transmit stamp is forward-dated by it,
// so the visible Receive→Transmit dwell brackets the true
// wire-to-wire residence instead of the stamp-to-stamp one.
//
//repro:hotpath
func (s *Server) handlePacket(in []byte, out *[PacketSize]byte, rxAge, txAdvance time.Duration) bool {
	if len(in) < PacketSize {
		s.stats.short.Add(1)
		return false
	}
	ver := (in[0] >> 3) & 0x7
	if ver == 0 {
		s.stats.malformed.Add(1)
		return false
	}
	if ver > 4 {
		// Clamp to the newest version we speak, both for parsing
		// (the codec rejects unknown versions) and for the reply.
		ver = 4
		in[0] = in[0]&^(0x7<<3) | ver<<3
	}
	var req Packet
	if err := req.Unmarshal(in); err != nil {
		s.stats.malformed.Add(1)
		return false
	}
	if req.Mode != ModeClient {
		s.stats.nonClient.Add(1)
		return false
	}
	// One sample stamps the whole reply. Sampling only for packets
	// that will be answered keeps a garbage flood from buying
	// combined-readout evaluations, and using the SAME sample for
	// Receive and Transmit keeps the stamps mutually consistent —
	// two samples could straddle a publication and step Transmit
	// before Receive. Without a kernel RX stamp the sub-microsecond
	// dwell this hides is far below the clock's error scale; with one,
	// Receive is backdated by the measured age instead.
	rx := s.sample()
	recv := rx.Time
	if rxAge > 0 {
		recv = recv.Add(-rxAge)
	}
	xmt := rx.Time
	if txAdvance > 0 {
		xmt = xmt.Add(txAdvance)
	}
	resp := Packet{
		Leap:      rx.Leap,
		Version:   ver,
		Mode:      ModeServer,
		Stratum:   rx.Stratum,
		Poll:      req.Poll,
		Precision: rx.Precision,
		RootDelay: rx.RootDelay,
		RootDisp:  rx.RootDisp,
		RefID:     rx.RefID,
		RefTime:   rx.Time,
		Origin:    req.Transmit,
		Receive:   recv,
		Transmit:  xmt,
	}
	*out = resp.Marshal()
	return true
}

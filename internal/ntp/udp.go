package ntp

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// Counter abstracts the host's raw timestamp source. On the live path it
// is a monotonic nanosecond counter; in the simulation it is the modelled
// TSC register. Reads must be cheap and monotonic non-decreasing.
type Counter func() uint64

// MonotonicCounter returns a Counter reading nanoseconds of monotonic
// time since the call, together with its nominal period in seconds
// (1 ns). This is the live-path stand-in for the TSC register: Go exposes
// no portable cycle counter, but the runtime's monotonic clock is driven
// by the same underlying hardware oscillator, so the paper's calibration
// algorithms apply unchanged with p ~ 1e-9.
func MonotonicCounter() (Counter, float64) {
	start := time.Now()
	return func() uint64 {
		return uint64(time.Since(start))
	}, 1e-9
}

// RawExchange is the result of one NTP client exchange in raw form: the
// host counter readings bracketing the exchange and the two server
// timestamps from the payload. This is exactly the per-packet input of
// the synchronization algorithms.
type RawExchange struct {
	// Ta and Tf are host counter readings: Ta just before the request
	// was passed to the network stack, Tf just after the response
	// arrived.
	Ta, Tf uint64
	// Tb and Te are the server receive and transmit timestamps in
	// seconds (since the NTP epoch of the current era on the live path;
	// since the simulation origin on the simulated path).
	Tb, Te float64
	// Stratum and RefID identify the server's synchronization source;
	// RefID changes are a route/server-change signal.
	Stratum uint8
	RefID   uint32
}

// Client performs NTP exchanges over a PacketConn-style transport.
type Client struct {
	conn    net.Conn
	counter Counter
	timeout time.Duration
	version uint8
}

// NewClient returns a client that exchanges NTP packets on conn (already
// connected to the server address) and stamps with counter. A zero
// timeout defaults to 4 seconds.
func NewClient(conn net.Conn, counter Counter, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 4 * time.Second
	}
	return &Client{conn: conn, counter: counter, timeout: timeout, version: 4}
}

// errShortWrite is returned when the transport accepts a partial packet.
var errShortWrite = errors.New("ntp: short write")

// Exchange sends one client-mode request and waits for the matching
// server reply, returning the raw four-tuple. The counter is read as
// close to the send and receive as user space allows; any residual
// latency appears to the algorithms as network delay and is filtered like
// any other positive noise, per the paper's Section 2.2.1.
func (c *Client) Exchange() (RawExchange, error) {
	var raw RawExchange

	req := Packet{
		Version: c.version,
		Mode:    ModeClient,
		Poll:    6,
		// Transmit is set to a sentinel so the reply can be matched; we
		// deliberately do not leak the host clock reading, the raw
		// counter is what matters.
		Transmit: Time64FromTime(time.Now()),
	}
	buf := req.Marshal()

	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return raw, fmt.Errorf("ntp: set deadline: %w", err)
	}

	raw.Ta = c.counter()
	n, err := c.conn.Write(buf[:])
	if err != nil {
		return raw, fmt.Errorf("ntp: send: %w", err)
	}
	if n != len(buf) {
		return raw, errShortWrite
	}

	var rbuf [512]byte
	for {
		n, err := c.conn.Read(rbuf[:])
		tf := c.counter()
		if err != nil {
			return raw, fmt.Errorf("ntp: receive: %w", err)
		}
		var resp Packet
		if err := resp.Unmarshal(rbuf[:n]); err != nil {
			continue // not an NTP packet; keep waiting until deadline
		}
		if resp.Mode != ModeServer || resp.Origin != req.Transmit {
			continue // stray or stale reply
		}
		if resp.Stratum == 0 { // kiss-of-death
			return raw, fmt.Errorf("ntp: kiss-of-death from server (refid %q)", resp.RefIDString())
		}
		raw.Tf = tf
		raw.Tb = resp.Receive.Seconds()
		raw.Te = resp.Transmit.Seconds()
		raw.Stratum = resp.Stratum
		raw.RefID = resp.RefID
		return raw, nil
	}
}

// ServerClock supplies the server's notion of current time for stamping.
type ServerClock func() Time64

// SystemServerClock stamps from the OS wall clock.
func SystemServerClock() ServerClock {
	return func() Time64 { return Time64FromTime(time.Now()) }
}

// ServerConfig configures the bundled stratum-1 server.
type ServerConfig struct {
	Clock     ServerClock
	RefID     uint32 // defaults to "GPS"
	Stratum   uint8  // defaults to 1
	Precision int8   // defaults to -20 (~1 µs)
}

// Server is a minimal stratum-1 NTP responder. It answers client-mode
// requests with server-mode replies carrying receive and transmit
// stamps, which is all the TSC-NTP calibration consumes.
type Server struct {
	cfg ServerConfig
}

// NewServer constructs a server; nil or zero fields take defaults.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Clock == nil {
		return nil, errors.New("ntp: server requires a clock")
	}
	if cfg.RefID == 0 {
		cfg.RefID = RefIDFromString("GPS")
	}
	if cfg.Stratum == 0 {
		cfg.Stratum = 1
	}
	if cfg.Precision == 0 {
		cfg.Precision = -20
	}
	return &Server{cfg: cfg}, nil
}

// Serve answers requests on pc until the connection is closed or a
// non-timeout error occurs. It processes requests sequentially: NTP
// server load is negligible at sane polling rates and sequencing keeps
// receive/transmit stamps ordered.
func (s *Server) Serve(pc net.PacketConn) error {
	var buf [512]byte
	for {
		n, addr, err := pc.ReadFrom(buf[:])
		rx := s.cfg.Clock()
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			return err
		}
		var req Packet
		if err := req.Unmarshal(buf[:n]); err != nil {
			continue
		}
		if req.Mode != ModeClient {
			continue
		}
		resp := Packet{
			Leap:      LeapNone,
			Version:   req.Version,
			Mode:      ModeServer,
			Stratum:   s.cfg.Stratum,
			Poll:      req.Poll,
			Precision: s.cfg.Precision,
			RefID:     s.cfg.RefID,
			RefTime:   rx,
			Origin:    req.Transmit,
			Receive:   rx,
		}
		resp.Transmit = s.cfg.Clock()
		out := resp.Marshal()
		if _, err := pc.WriteTo(out[:], addr); err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			return err
		}
	}
}

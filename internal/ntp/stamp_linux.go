//go:build linux && (amd64 || arm64)

// Kernel timestamping primitives shared by the batched serving loop
// and the client exchange path: SO_TIMESTAMPING arming, the defensive
// SCM_TIMESTAMPING control-message walker (one walker for the RX cmsg
// and the TX error-queue cmsg — the kernel uses the same message type
// for both), error-queue payload↔reply correlation by the embedded
// Transmit cookie, and the client-side state that moves Ta to the
// kernel's transmit instant and Tf to the kernel's arrival instant.
//
// The syscall package is used directly (this repository deliberately
// avoids x/sys/unix); SO_TIMESTAMPING is defined locally for the two
// supported architectures.

package ntp

import (
	"encoding/binary"
	"net"
	"syscall"
	"time"
	"unsafe"
)

const (
	// soTimestamping is SO_TIMESTAMPING from asm-generic/socket.h (37
	// on amd64 and arm64; the value differs only on parisc and sparc,
	// which the build tag excludes). The same value is the
	// SCM_TIMESTAMPING control-message type.
	soTimestamping  = 37
	scmTimestamping = 37

	// SOF_TIMESTAMPING flags: generate software RX and/or TX
	// timestamps and report them. Hardware stamps are deliberately not
	// requested — they come from the NIC's PHC, a clock not comparable
	// with CLOCK_REALTIME, so an age computed against them would be
	// garbage. TX stamps loop the sent packet back on the socket error
	// queue with the stamp attached as an SCM_TIMESTAMPING cmsg.
	sofTimestampingTxSoftware = 1 << 1
	sofTimestampingRxSoftware = 1 << 3
	sofTimestampingSoftware   = 1 << 4
)

// armTimestamping sets the SO_TIMESTAMPING flags on the socket;
// failure (old kernel, exotic socket) just means stamps never arrive
// and every consumer falls back to userspace time, counted per path.
func armTimestamping(rc syscall.RawConn, flags int) bool {
	var serr error
	err := rc.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soTimestamping, flags)
	})
	return err == nil && serr == nil
}

// parseStampCmsg walks a control-message buffer for the kernel's
// SCM_TIMESTAMPING message and returns the software timestamp
// (CLOCK_REALTIME seconds/nanoseconds) from ts[0]. ok=false when the
// message is absent, truncated, malformed, or carries an all-zero
// software slot (hardware-only stamping). The walk is defensive — oob
// comes from the kernel, but the fuzz targets feed it garbage to
// guarantee no slice of bytes can panic the hot loop. Non-matching
// cmsgs (e.g. the sock_extended_err that accompanies every error-queue
// read, or SO_RXQ_OVFL) are skipped, which is what makes one walker
// serve both the RX path and the TX error-queue path.
//
//repro:hotpath
func parseStampCmsg(oob []byte) (sec, nsec int64, ok bool) {
	const cmsgHdr = 16 // 64-bit cmsghdr: Len uint64, Level int32, Type int32
	for len(oob) >= cmsgHdr {
		l := binary.LittleEndian.Uint64(oob[0:8])
		level := int32(binary.LittleEndian.Uint32(oob[8:12]))
		typ := int32(binary.LittleEndian.Uint32(oob[12:16]))
		if l < cmsgHdr || l > uint64(len(oob)) {
			return 0, 0, false
		}
		if level == syscall.SOL_SOCKET && typ == scmTimestamping {
			// scm_timestamping is three timespecs; ts[0] is the
			// software stamp. A shorter payload is a truncated cmsg.
			if l < cmsgHdr+16 {
				return 0, 0, false
			}
			sec = int64(binary.LittleEndian.Uint64(oob[16:24]))
			nsec = int64(binary.LittleEndian.Uint64(oob[24:32]))
			if sec == 0 && nsec == 0 {
				return 0, 0, false
			}
			if nsec < 0 || nsec >= 1e9 || sec < 0 {
				return 0, 0, false
			}
			return sec, nsec, true
		}
		adv := (l + 7) &^ 7 // CMSG_ALIGN
		if adv >= uint64(len(oob)) {
			return 0, 0, false
		}
		oob = oob[adv:]
	}
	return 0, 0, false
}

// parseRxTimestamp extracts the kernel's software receive timestamp
// from a received datagram's control messages.
//
//repro:hotpath
func parseRxTimestamp(oob []byte) (sec, nsec int64, ok bool) {
	return parseStampCmsg(oob)
}

// parseTxTimestamp extracts the kernel's software transmit timestamp
// from an error-queue read's control messages. The wire format is the
// same SCM_TIMESTAMPING cmsg the RX path carries; the difference is
// the company it keeps (a sock_extended_err cmsg rides along, which
// the walker skips) and that the datagram body is the looped-back sent
// packet rather than a received one.
//
//repro:hotpath
func parseTxTimestamp(oob []byte) (sec, nsec int64, ok bool) {
	return parseStampCmsg(oob)
}

// txPayloadCookie extracts the Transmit-field correlation cookie from
// an error-queue payload. The looped-back packet is the reply exactly
// as the kernel sent it, prefixed by whatever headers the family
// prepends (28 bytes of IP+UDP on IPv4, 48 on IPv6, none when the
// kernel loops payload only) — but the NTP packet is always the
// trailing PacketSize bytes, so the cookie is read relative to the
// tail rather than by guessing the header length.
//
//repro:hotpath
func txPayloadCookie(pkt []byte) (uint64, bool) {
	if len(pkt) < PacketSize {
		return 0, false
	}
	off := len(pkt) - PacketSize
	return binary.BigEndian.Uint64(pkt[off+40 : off+48]), true
}

// EnableRxTimestamping arms software RX timestamping on a UDP socket
// for callers outside the serving loop (cmd/loadgen measures reply
// latency from kernel arrival stamps). Returns whether the option was
// accepted.
func EnableRxTimestamping(uc *net.UDPConn) bool {
	rc, err := uc.SyscallConn()
	if err != nil {
		return false
	}
	return armTimestamping(rc, sofTimestampingRxSoftware|sofTimestampingSoftware)
}

// RxTimestampFromOOB returns the kernel software RX stamp from the
// control bytes of a ReadMsgUDP, if one is present.
func RxTimestampFromOOB(oob []byte) (time.Time, bool) {
	sec, nsec, ok := parseRxTimestamp(oob)
	if !ok {
		return time.Time{}, false
	}
	return time.Unix(sec, nsec), true
}

// errOobSize holds the error-queue control messages of one looped-back
// packet: the SCM_TIMESTAMPING cmsg (64 bytes) plus the
// sock_extended_err cmsg that accompanies every MSG_ERRQUEUE read.
const errOobSize = 256

// kernelStamps is a client's kernel-timestamping state: the raw socket
// handle, the counter period for wall→counter conversions, and the
// preallocated buffers the RX reads and error-queue drains run over
// (allocated once at arming; the exchange path reuses them).
type kernelStamps struct {
	uc     *net.UDPConn
	rc     syscall.RawConn
	period float64 // counter seconds per unit

	oob [oobSize]byte // RX control buffer for ReadMsgUDP

	// Error-queue drain state: one preallocated msghdr reading into
	// fixed buffers, plus the closure passed to RawConn.Control
	// (created once — a closure per exchange would allocate). Inputs
	// and results cross the Control callback through the struct.
	epkt  [rxBufSize]byte
	eoob  [errOobSize]byte
	eiov  syscall.Iovec
	emsg  syscall.Msghdr
	drain func(fd uintptr)

	wantCookie uint64
	gotSec     int64
	gotNsec    int64
	got        bool
}

// armKernelStamps arms SO_TIMESTAMPING RX+TX on the client transport.
// Only *net.UDPConn transports qualify (the simulated and injected
// transports of the test suites fall through to userspace stamps).
func (c *Client) armKernelStamps(period float64) bool {
	uc, ok := c.conn.(*net.UDPConn)
	if !ok || period <= 0 {
		return false
	}
	rc, err := uc.SyscallConn()
	if err != nil {
		return false
	}
	if !armTimestamping(rc, sofTimestampingRxSoftware|sofTimestampingTxSoftware|sofTimestampingSoftware) {
		return false
	}
	ks := &kernelStamps{uc: uc, rc: rc, period: period}
	ks.eiov.Base = &ks.epkt[0]
	ks.eiov.Len = uint64(len(ks.epkt))
	ks.emsg.Iov = &ks.eiov
	ks.emsg.Iovlen = 1
	ks.drain = func(fd uintptr) {
		// Bounded drain: stamps for requests that were never matched
		// (timeouts, retries) sit ahead of ours in the queue; skip
		// them, stop when the queue empties or our cookie surfaces.
		for tries := 0; tries < 16; tries++ {
			ks.emsg.Control = &ks.eoob[0]
			ks.emsg.Controllen = uint64(len(ks.eoob))
			ks.emsg.Flags = 0
			n, _, e := syscall.Syscall(syscall.SYS_RECVMSG, fd,
				uintptr(unsafe.Pointer(&ks.emsg)),
				syscall.MSG_ERRQUEUE|syscall.MSG_DONTWAIT)
			if e != 0 {
				return // queue empty (EAGAIN) or unreadable: stamp missing
			}
			sec, nsec, ok := parseTxTimestamp(ks.eoob[:ks.emsg.Controllen])
			if !ok {
				continue
			}
			ck, ok := txPayloadCookie(ks.epkt[:n])
			if !ok || ck != ks.wantCookie {
				continue // an older request's stamp; keep draining
			}
			ks.gotSec, ks.gotNsec, ks.got = sec, nsec, true
			return
		}
	}
	c.ks = ks
	return true
}

// stampWall brackets a send on the wall clock when kernel stamping is
// armed (the kernel's stamps are CLOCK_REALTIME, so the dwell is
// measured wall-to-wall and converted to counter units by the period).
// Zero — and free — when stamping is off.
func (c *Client) stampWall() time.Time {
	if c.ks == nil {
		return time.Time{}
	}
	return time.Now()
}

// readReply reads one datagram, capturing the kernel RX stamp from the
// control messages when stamping is armed. Without stamping it is
// exactly the plain conn.Read the exchange always did.
func (c *Client) readReply(b []byte) (int, rxStampInfo, error) {
	ks := c.ks
	if ks == nil {
		n, err := c.conn.Read(b)
		return n, rxStampInfo{}, err
	}
	n, oobn, _, _, err := ks.uc.ReadMsgUDP(b, ks.oob[:])
	if err != nil {
		return n, rxStampInfo{}, err
	}
	info := rxStampInfo{wall: time.Now()}
	if sec, nsec, ok := parseRxTimestamp(ks.oob[:oobn]); ok {
		info.kernel = time.Unix(sec, nsec)
	}
	return n, info, nil
}

// applyKernelStamps corrects a matched exchange's Ta/Tf to the kernel's
// transmit/arrival stamps: Tf is backdated by the measured
// kernel-arrival→read-return dwell, and Ta advanced by the measured
// write→kernel-transmit dwell drained from the error queue (correlated
// to this request by the Transmit cookie). Either stamp missing — or
// outside the shared trust clamp — leaves the userspace stamp in place
// and is counted, so coverage is observable per client.
func (c *Client) applyKernelStamps(raw *RawExchange, cookie Time64, taWall time.Time, rx rxStampInfo) {
	ks := c.ks
	if ks == nil {
		return
	}

	if !rx.kernel.IsZero() && !rx.wall.IsZero() {
		age := rx.wall.Sub(rx.kernel)
		usable := true
		switch {
		case age >= 0 && age <= stampMaxAge:
		case age < 0 && age >= -stampSlack:
			c.sc.clamped.Add(1)
			age = 0
		default:
			c.sc.clamped.Add(1)
			usable = false
		}
		if usable {
			units := uint64(age.Seconds() / ks.period)
			if units <= raw.Tf {
				raw.Tf -= units
				raw.KernelTf = true
				raw.TfDelta = age.Seconds()
				c.sc.rxStamped.Add(1)
				ewmaUpdate(&c.sc.tfDelta, raw.TfDelta)
			} else {
				usable = false
			}
		}
		if !usable {
			c.sc.rxMissing.Add(1)
		}
	} else {
		c.sc.rxMissing.Add(1)
	}

	ks.wantCookie = uint64(cookie)
	ks.got = false
	if err := ks.rc.Control(ks.drain); err == nil && ks.got {
		dwell := time.Unix(ks.gotSec, ks.gotNsec).Sub(taWall)
		usable := true
		switch {
		case dwell >= 0 && dwell <= stampMaxAge:
		case dwell < 0 && dwell >= -stampSlack:
			c.sc.clamped.Add(1)
			dwell = 0
		default:
			c.sc.clamped.Add(1)
			usable = false
		}
		if usable {
			raw.Ta += uint64(dwell.Seconds() / ks.period)
			raw.KernelTa = true
			raw.TaDelta = dwell.Seconds()
			c.sc.txStamped.Add(1)
			ewmaUpdate(&c.sc.taDelta, raw.TaDelta)
			return
		}
	}
	c.sc.txMissing.Add(1)
}

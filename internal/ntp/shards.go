package ntp

// Sharded serving: fan one UDP listen address out across N reader
// goroutines so reply stamping scales across cores. On Linux the
// shards are N independent SO_REUSEPORT sockets — the kernel hashes
// each client flow to one socket, so shards share nothing, not even a
// socket lock. Elsewhere the shards are N readers draining a single
// shared socket (net.PacketConn is safe for concurrent use); the
// kernel socket becomes the serialization point, but stamping and
// marshalling still parallelize.
//
// The serving clock must be lock-free for this to pay off: with the
// published-readout read path every shard stamps from an atomic
// pointer load, so adding shards adds throughput instead of contention
// (see BenchmarkServeLoopback and PERF.md).
//
// Shards are supervised: a shard whose serving loop dies with a
// genuine error (a socket-level failure, not the cancellation-induced
// close) is restarted under exponential backoff — on Linux with a
// freshly bound SO_REUSEPORT socket, since the dead fd is what failed.
// A shard that keeps dying without ever serving a healthy stint is a
// poison pill (a config or environment problem restarts cannot fix):
// after restartMax consecutive failures the shard gives up, and Serve
// closes the remaining shards and reports the error rather than limp
// along on a partial shard set.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ShardStats is the supervision view of one shard's serving loop.
type ShardStats struct {
	// Restarts counts serving-loop failures so far (each one is
	// followed by a backoff and restart, until the poison-pill cap).
	Restarts uint64
	// LastError is the most recent serving-loop failure, nil if the
	// shard has never failed.
	LastError error
}

// Shards is a set of sockets answering NTP on one address through one
// Server (shared clock, shared counters). Create with ListenShards,
// run with Serve, stop by cancelling the context (or Close).
type Shards struct {
	srv       *Server
	reuseport bool

	// Rebinding address for restarted reuseport shards; empty when the
	// shards were not created by ListenShards (tests), which disables
	// rebinding.
	network  string
	concrete string

	mu     sync.Mutex
	pcs    []net.PacketConn
	closed bool
	stats  []ShardStats

	// Supervision tuning; zero values take the defaults at Serve time.
	backoffMin time.Duration // first restart delay (default 10 ms)
	backoffMax time.Duration // backoff cap (default 1 s)
	goodStint  time.Duration // serving this long resets the failure run (default 1 s)
	restartMax int           // consecutive failures before giving up (default 8)

	// Test hooks: serveFn replaces srv.Serve, rebindFn replaces the
	// listen call for restarted shards.
	serveFn  func(net.PacketConn) error
	rebindFn func() (net.PacketConn, error)
}

// ListenShards binds n serving sockets for address on network
// ("udp", "udp4", "udp6"). On Linux the n sockets share the port via
// SO_REUSEPORT; elsewhere one socket is bound and shared by n reader
// goroutines. n < 1 is treated as 1.
func (s *Server) ListenShards(network, address string, n int) (*Shards, error) {
	if n < 1 {
		n = 1
	}
	sh := &Shards{srv: s, reuseport: reusePortAvailable, network: network}

	first, err := listenReusable(network, address)
	if err != nil {
		return nil, fmt.Errorf("ntp: listen %s: %w", address, err)
	}
	sh.pcs = append(sh.pcs, first)
	// The concrete address the first socket got (resolves the ":0"
	// ephemeral-port case) — used for the remaining shards and for
	// rebinding restarted ones.
	sh.concrete = first.LocalAddr().String()

	if !reusePortAvailable {
		// Single shared socket: Serve goroutines drain it together.
		for i := 1; i < n; i++ {
			sh.pcs = append(sh.pcs, first)
		}
		return sh, nil
	}
	for i := 1; i < n; i++ {
		pc, err := listenReusable(network, sh.concrete)
		if err != nil {
			sh.Close()
			return nil, fmt.Errorf("ntp: listen shard %d on %s: %w", i, sh.concrete, err)
		}
		sh.pcs = append(sh.pcs, pc)
	}
	return sh, nil
}

// Addr returns the bound address (useful with ":0").
func (sh *Shards) Addr() net.Addr {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, pc := range sh.pcs {
		if pc != nil {
			return pc.LocalAddr()
		}
	}
	return nil
}

// Size returns the number of shard serving loops.
func (sh *Shards) Size() int { return len(sh.pcs) }

// ReusePort reports whether the shards hold independent SO_REUSEPORT
// sockets (true on Linux) or share one socket.
func (sh *Shards) ReusePort() bool { return sh.reuseport }

// Stats returns a snapshot of per-shard supervision counters, in shard
// order.
func (sh *Shards) Stats() []ShardStats {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]ShardStats, len(sh.pcs))
	copy(out, sh.stats)
	return out
}

func (sh *Shards) defaults() {
	if sh.backoffMin <= 0 {
		sh.backoffMin = 10 * time.Millisecond
	}
	if sh.backoffMax <= 0 {
		sh.backoffMax = time.Second
	}
	if sh.goodStint <= 0 {
		sh.goodStint = time.Second
	}
	if sh.restartMax == 0 {
		sh.restartMax = 8
	}
}

func (sh *Shards) serve(pc net.PacketConn) error {
	if sh.serveFn != nil {
		return sh.serveFn(pc)
	}
	return sh.srv.Serve(pc)
}

func (sh *Shards) isClosed() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.closed
}

func (sh *Shards) conn(i int) net.PacketConn {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.pcs[i]
}

// condemn forgets shard i's socket (already closed by the caller) so
// the next supervision round rebinds a fresh one.
func (sh *Shards) condemn(i int, pc net.PacketConn) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.pcs[i] == pc {
		sh.pcs[i] = nil
	}
}

func (sh *Shards) recordFailure(i int, err error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.stats == nil {
		sh.stats = make([]ShardStats, len(sh.pcs))
	}
	sh.stats[i].Restarts++
	sh.stats[i].LastError = err
}

// rebindShard binds a replacement socket for a condemned reuseport
// shard, re-listening on the concrete address the shard set bound.
func (sh *Shards) rebindShard(i int) (net.PacketConn, error) {
	var pc net.PacketConn
	var err error
	switch {
	case sh.rebindFn != nil:
		pc, err = sh.rebindFn()
	case sh.network != "":
		pc, err = listenReusable(sh.network, sh.concrete)
	default:
		err = errors.New("no listen address to rebind")
	}
	if err != nil {
		return nil, fmt.Errorf("ntp: rebind shard %d: %w", i, err)
	}
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		pc.Close()
		return nil, net.ErrClosed
	}
	sh.pcs[i] = pc
	sh.mu.Unlock()
	return pc, nil
}

// runShard supervises one shard: serve, and on a genuine failure
// restart under exponential backoff — with a freshly bound socket when
// the shards are independent SO_REUSEPORT sockets (the failed fd is
// the suspect), on the shared socket otherwise. A healthy stint resets
// the failure run; restartMax consecutive failures mean the problem is
// not transient, and the shard returns the final error (the poison
// pill that makes Serve shut the whole set down).
func (sh *Shards) runShard(ctx context.Context, i int) error {
	backoff := sh.backoffMin
	consec := 0
	for {
		pc := sh.conn(i)
		var err error
		if pc == nil {
			pc, err = sh.rebindShard(i)
		}
		if err == nil {
			start := time.Now()
			err = sh.serve(pc)
			if err == nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			if time.Since(start) >= sh.goodStint {
				consec, backoff = 0, sh.backoffMin
			}
		}
		if sh.isClosed() || ctx.Err() != nil {
			return nil
		}
		sh.recordFailure(i, err)
		consec++
		if consec > sh.restartMax {
			return fmt.Errorf("ntp: shard %d gave up after %d consecutive failures: %w", i, consec, err)
		}
		if pc != nil && sh.reuseport {
			pc.Close()
			sh.condemn(i, pc)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > sh.backoffMax {
			backoff = sh.backoffMax
		}
	}
}

// Serve runs one supervised serving loop per shard and blocks until
// the context is cancelled or a shard gives up. On cancellation the
// sockets are closed, every shard drains, and the return value is nil.
// Transient shard failures are restarted in place (see runShard and
// Stats); a shard that exhausts its restart budget poisons the set —
// the remaining shards are closed and Serve reports the error instead
// of silently serving on a partial shard set.
func (sh *Shards) Serve(ctx context.Context) error {
	sh.defaults()
	errc := make(chan error, len(sh.pcs))
	for i := range sh.pcs {
		go func(i int) { errc <- sh.runShard(ctx, i) }(i)
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			sh.Close()
		case <-done:
		}
	}()
	var first error
	for range sh.pcs {
		if err := <-errc; err != nil && !errors.Is(err, net.ErrClosed) && first == nil {
			first = err
			sh.Close()
		}
	}
	return first
}

// Close closes every shard socket and stops future restarts. Safe to
// call more than once and concurrently with Serve (which then drains
// and returns).
func (sh *Shards) Close() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.closed = true
	var first error
	for i, pc := range sh.pcs {
		if !sh.reuseport && i > 0 {
			break // one shared socket, close once
		}
		if pc == nil {
			continue // condemned mid-restart; nothing bound
		}
		if err := pc.Close(); err != nil && !errors.Is(err, net.ErrClosed) && first == nil {
			first = err
		}
	}
	return first
}

package ntp

// Sharded serving: fan one UDP listen address out across N reader
// goroutines so reply stamping scales across cores. On Linux the
// shards are N independent SO_REUSEPORT sockets — the kernel hashes
// each client flow to one socket, so shards share nothing, not even a
// socket lock. Elsewhere the shards are N readers draining a single
// shared socket (net.PacketConn is safe for concurrent use); the
// kernel socket becomes the serialization point, but stamping and
// marshalling still parallelize.
//
// The serving clock must be lock-free for this to pay off: with the
// published-readout read path every shard stamps from an atomic
// pointer load, so adding shards adds throughput instead of contention
// (see BenchmarkServeLoopback and PERF.md).

import (
	"context"
	"errors"
	"fmt"
	"net"
)

// Shards is a set of sockets answering NTP on one address through one
// Server (shared clock, shared counters). Create with ListenShards,
// run with Serve, stop by cancelling the context (or Close).
type Shards struct {
	srv       *Server
	pcs       []net.PacketConn
	reuseport bool
}

// ListenShards binds n serving sockets for address on network
// ("udp", "udp4", "udp6"). On Linux the n sockets share the port via
// SO_REUSEPORT; elsewhere one socket is bound and shared by n reader
// goroutines. n < 1 is treated as 1.
func (s *Server) ListenShards(network, address string, n int) (*Shards, error) {
	if n < 1 {
		n = 1
	}
	sh := &Shards{srv: s, reuseport: reusePortAvailable}

	first, err := listenReusable(network, address)
	if err != nil {
		return nil, fmt.Errorf("ntp: listen %s: %w", address, err)
	}
	sh.pcs = append(sh.pcs, first)

	if !reusePortAvailable {
		// Single shared socket: Serve goroutines drain it together.
		for i := 1; i < n; i++ {
			sh.pcs = append(sh.pcs, first)
		}
		return sh, nil
	}
	// Re-bind the concrete address the first socket got (resolves the
	// ":0" ephemeral-port case) for the remaining shards.
	concrete := first.LocalAddr().String()
	for i := 1; i < n; i++ {
		pc, err := listenReusable(network, concrete)
		if err != nil {
			sh.Close()
			return nil, fmt.Errorf("ntp: listen shard %d on %s: %w", i, concrete, err)
		}
		sh.pcs = append(sh.pcs, pc)
	}
	return sh, nil
}

// Addr returns the bound address (useful with ":0").
func (sh *Shards) Addr() net.Addr { return sh.pcs[0].LocalAddr() }

// Size returns the number of shard serving loops.
func (sh *Shards) Size() int { return len(sh.pcs) }

// ReusePort reports whether the shards hold independent SO_REUSEPORT
// sockets (true on Linux) or share one socket.
func (sh *Shards) ReusePort() bool { return sh.reuseport }

// Serve runs one serving loop per shard and blocks until the context
// is cancelled or a shard fails. On cancellation the sockets are
// closed, every shard drains, and the return value is nil; a genuine
// serving error (not the cancellation-induced close) is returned
// instead.
func (sh *Shards) Serve(ctx context.Context) error {
	errc := make(chan error, len(sh.pcs))
	for _, pc := range sh.pcs {
		go func(pc net.PacketConn) { errc <- sh.srv.Serve(pc) }(pc)
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			sh.Close()
		case <-done:
		}
	}()
	var first error
	for range sh.pcs {
		if err := <-errc; err != nil && !errors.Is(err, net.ErrClosed) && first == nil {
			first = err
			// One shard died for real: close the rest immediately so
			// Serve reports the failure instead of silently serving on
			// a partial shard set until someone cancels the context.
			sh.Close()
		}
	}
	return first
}

// Close closes every shard socket. Safe to call more than once and
// concurrently with Serve (which then drains and returns).
func (sh *Shards) Close() error {
	var first error
	for i, pc := range sh.pcs {
		if !sh.reuseport && i > 0 {
			break // one shared socket, close once
		}
		if err := pc.Close(); err != nil && !errors.Is(err, net.ErrClosed) && first == nil {
			first = err
		}
	}
	return first
}

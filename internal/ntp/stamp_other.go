//go:build !linux || (!amd64 && !arm64)

// Portable no-op kernel-timestamping stubs: platforms without
// SO_TIMESTAMPING (or without the 64-bit little-endian cmsg layout the
// Linux walker assumes) keep the userspace stamps everywhere. The
// client exchange compiles against the same method set; coverage
// counters simply never move.

package ntp

import (
	"net"
	"time"
)

// kernelStamps has no state on platforms without SO_TIMESTAMPING.
type kernelStamps struct{}

// armKernelStamps reports that kernel stamping is unavailable.
func (c *Client) armKernelStamps(period float64) bool { return false }

// stampWall is zero when kernel stamping is unavailable: the exchange
// never pays a wall-clock read it cannot use.
func (c *Client) stampWall() time.Time { return time.Time{} }

// readReply is the plain transport read.
func (c *Client) readReply(b []byte) (int, rxStampInfo, error) {
	n, err := c.conn.Read(b)
	return n, rxStampInfo{}, err
}

// applyKernelStamps leaves the userspace stamps untouched.
func (c *Client) applyKernelStamps(raw *RawExchange, cookie Time64, taWall time.Time, rx rxStampInfo) {
}

// EnableRxTimestamping reports that kernel RX stamps are unavailable.
func EnableRxTimestamping(uc *net.UDPConn) bool { return false }

// RxTimestampFromOOB never finds a stamp on platforms without
// SO_TIMESTAMPING.
func RxTimestampFromOOB(oob []byte) (time.Time, bool) { return time.Time{}, false }

//go:build !linux || mips || mipsle || mips64 || mips64le

package ntp

import "net"

// reusePortAvailable: without SO_REUSEPORT semantics the shards share
// one socket (concurrent readers are safe on net.PacketConn); the
// socket serializes receives but stamping still parallelizes.
const reusePortAvailable = false

// listenReusable binds a plain UDP socket.
func listenReusable(network, address string) (net.PacketConn, error) {
	return net.ListenPacket(network, address)
}

package ntp

import (
	"net"
	"testing"
	"time"
)

// startTestServer runs a stratum-1 server on a loopback UDP socket and
// returns its address and a shutdown func.
func startTestServer(t *testing.T, clock ServerClock) (net.Addr, func()) {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(pc)
	}()
	return pc.LocalAddr(), func() {
		pc.Close()
		<-done
	}
}

func dial(t *testing.T, addr net.Addr) net.Conn {
	t.Helper()
	conn, err := net.Dial("udp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestClientServerExchange(t *testing.T) {
	addr, stop := startTestServer(t, SystemServerClock())
	defer stop()

	counter, period := MonotonicCounter()
	c := NewClient(dial(t, addr), counter, 2*time.Second)

	raw, err := c.Exchange()
	if err != nil {
		t.Fatal(err)
	}
	if raw.Tf <= raw.Ta {
		t.Errorf("Tf (%d) not after Ta (%d)", raw.Tf, raw.Ta)
	}
	rtt := float64(raw.Tf-raw.Ta) * period
	if rtt <= 0 || rtt > 1 {
		t.Errorf("loopback RTT %v implausible", rtt)
	}
	if raw.Te < raw.Tb {
		t.Errorf("server transmit %v before receive %v", raw.Te, raw.Tb)
	}
	if raw.Stratum != 1 {
		t.Errorf("stratum = %d", raw.Stratum)
	}
	if raw.RefID != RefIDFromString("GPS") {
		t.Errorf("refid = %x", raw.RefID)
	}
}

func TestClientRepeatedExchanges(t *testing.T) {
	addr, stop := startTestServer(t, SystemServerClock())
	defer stop()

	counter, _ := MonotonicCounter()
	c := NewClient(dial(t, addr), counter, 2*time.Second)

	var prevTf uint64
	for i := 0; i < 10; i++ {
		raw, err := c.Exchange()
		if err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
		if raw.Tf <= prevTf {
			t.Errorf("counter not monotonic across exchanges: %d <= %d", raw.Tf, prevTf)
		}
		prevTf = raw.Tf
	}
}

func TestClientTimeout(t *testing.T) {
	// A socket with no server behind it must produce a timeout error.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := pc.LocalAddr()
	pc.Close() // nothing listening anymore

	counter, _ := MonotonicCounter()
	c := NewClient(dial(t, addr), counter, 200*time.Millisecond)
	if _, err := c.Exchange(); err == nil {
		t.Error("exchange against dead server succeeded")
	}
}

func TestServerIgnoresNonClientPackets(t *testing.T) {
	addr, stop := startTestServer(t, SystemServerClock())
	defer stop()

	conn := dial(t, addr)
	// A server-mode packet must be ignored, then a real request served.
	bogus := Packet{Version: 4, Mode: ModeServer}
	bb := bogus.Marshal()
	if _, err := conn.Write(bb[:]); err != nil {
		t.Fatal(err)
	}
	counter, _ := MonotonicCounter()
	c := NewClient(conn, counter, 2*time.Second)
	if _, err := c.Exchange(); err != nil {
		t.Fatalf("exchange after bogus packet: %v", err)
	}
}

func TestServerKissOfDeathSurfaced(t *testing.T) {
	// A stratum-0 reply must surface as an error, not as data.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() {
		var buf [512]byte
		n, addr, err := pc.ReadFrom(buf[:])
		if err != nil {
			return
		}
		var req Packet
		if err := req.Unmarshal(buf[:n]); err != nil {
			return
		}
		resp := Packet{Version: 4, Mode: ModeServer, Stratum: 0,
			RefID: RefIDFromString("RATE"), Origin: req.Transmit}
		out := resp.Marshal()
		pc.WriteTo(out[:], addr)
	}()

	counter, _ := MonotonicCounter()
	c := NewClient(dial(t, pc.LocalAddr()), counter, 2*time.Second)
	if _, err := c.Exchange(); err == nil {
		t.Error("kiss-of-death not surfaced as error")
	}
}

func TestMonotonicCounter(t *testing.T) {
	counter, period := MonotonicCounter()
	if period != 1e-9 {
		t.Errorf("period = %v", period)
	}
	a := counter()
	time.Sleep(2 * time.Millisecond)
	b := counter()
	if b <= a {
		t.Error("monotonic counter did not advance")
	}
	if d := float64(b-a) * period; d < 1e-3 || d > 1 {
		t.Errorf("2 ms sleep measured as %v s", d)
	}
}

package ntp

import (
	"net"
	"testing"
	"time"

	"repro/internal/ratelimit"
)

// dialFrom opens a UDP socket bound to a specific loopback source
// address — the flood test puts the honest client and the abuser in
// different /24s (127.0.1.0/24 vs 127.0.2.0/24; all of 127/8 is
// loopback on Linux) so the limiter sees two distinct prefixes.
func dialFrom(t *testing.T, src string, dst net.Addr) *net.UDPConn {
	t.Helper()
	laddr := &net.UDPAddr{IP: net.ParseIP(src)}
	raddr, err := net.ResolveUDPAddr("udp", dst.String())
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", laddr, raddr)
	if err != nil {
		t.Skipf("cannot bind %s (loopback /8 aliasing unavailable): %v", src, err)
	}
	return conn
}

// TestServerFloodRateLimited: a flood from one client prefix is dropped
// and counted while an honest client in another prefix keeps getting
// answers — the per-prefix token bucket contains the abuse instead of
// letting it starve the shard.
func TestServerFloodRateLimited(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	limit := ratelimit.New(ratelimit.Config{Rate: 50, Burst: 16})
	srv, err := NewServer(ServerConfig{Clock: SystemServerClock(), Limit: limit})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(pc) }()
	defer func() { pc.Close(); <-done }()

	abuser := dialFrom(t, "127.0.2.1", pc.LocalAddr())
	defer abuser.Close()
	honest := dialFrom(t, "127.0.1.1", pc.LocalAddr())
	defer honest.Close()

	// The flood: far past the 16-token burst, as fast as the socket
	// takes them. No reads — a flooder doesn't wait for answers.
	const floodN = 400
	for i := 0; i < floodN; i++ {
		if _, err := abuser.Write(clientPacket(4)); err != nil {
			t.Fatal(err)
		}
	}

	// The honest client, interleaved with the tail of the flood: its
	// prefix's bucket is untouched, so every request that reaches the
	// server must be answered. The flood can still overflow the shared
	// kernel receive queue — that loss is upstream of anything a
	// limiter can do — so the client retries on timeout, as any real
	// NTP client does; what the limiter guarantees is that retries
	// succeed as the queue drains instead of a starved shard never
	// answering.
	buf := make([]byte, 512)
	for i := 0; i < 8; i++ {
		answered := false
		for attempt := 0; attempt < 10 && !answered; attempt++ {
			if _, err := honest.Write(clientPacket(4)); err != nil {
				t.Fatal(err)
			}
			honest.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
			n, err := honest.Read(buf)
			if err != nil {
				continue // lost in the flooded kernel queue; retry
			}
			var resp Packet
			if err := resp.Unmarshal(buf[:n]); err != nil {
				t.Fatalf("honest request %d: bad reply: %v", i, err)
			}
			if resp.Mode != ModeServer {
				t.Fatalf("honest request %d: mode %v", i, resp.Mode)
			}
			answered = true
		}
		if !answered {
			t.Fatalf("honest request %d starved out by the flood despite retries", i)
		}
	}

	// The flood must have been mostly dropped and visibly counted. UDP
	// may lose some flood packets before the server reads them, so gate
	// on proportions, not exact counts.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := srv.Stats()
		if st.RateLimited >= floodN/2 {
			if limit.Denied() != st.RateLimited {
				t.Fatalf("limiter denied %d but server counted %d", limit.Denied(), st.RateLimited)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rate-limited count never rose: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

//go:build linux && !mips && !mipsle && !mips64 && !mips64le

package ntp

import (
	"context"
	"net"
	"syscall"
)

// reusePortAvailable reports that this platform can bind several
// sockets to one UDP port and have the kernel spread load across them.
const reusePortAvailable = true

// soReusePort is SO_REUSEPORT from Linux's asm-generic socket.h. The
// standard syscall package does not export it (it lives in x/sys/unix,
// which this repository deliberately does not depend on); the value is
// 15 on every Linux port except MIPS, which the build tag excludes —
// MIPS hosts take the shared-socket fallback.
const soReusePort = 0xf

// listenReusable binds a UDP socket with SO_REUSEPORT set, so further
// shards can bind the same port and the kernel hashes client flows
// across the set.
func listenReusable(network, address string) (net.PacketConn, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			})
			if err != nil {
				return err
			}
			return serr
		},
	}
	return lc.ListenPacket(context.Background(), network, address)
}

//go:build linux && (amd64 || arm64)

package ntp

import (
	"encoding/binary"
	"net"
	"sort"
	"syscall"
	"testing"
	"time"
)

// extErrCmsg builds a plausible IP_RECVERR companion control message
// (level IPPROTO_IP, type 11, sock_extended_err payload) — the cmsg
// that precedes the timestamp on every real error-queue read and that
// the walker must skip.
func extErrCmsg() []byte {
	b := make([]byte, 32)
	binary.LittleEndian.PutUint64(b[0:8], 32)
	binary.LittleEndian.PutUint32(b[8:12], uint32(syscall.IPPROTO_IP))
	binary.LittleEndian.PutUint32(b[12:16], 11) // IP_RECVERR
	binary.LittleEndian.PutUint32(b[16:20], uint32(syscall.ENOMSG))
	b[20] = 4 // SO_EE_ORIGIN_TIMESTAMPING
	return b
}

// TestParseTxTimestamp drives the shared walker over the control-message
// shapes specific to error-queue reads: the SCM_TIMESTAMPING cmsg in
// the company of the sock_extended_err it always travels with, plus
// the same hostile/truncated shapes the RX table covers.
func TestParseTxTimestamp(t *testing.T) {
	cases := []struct {
		name     string
		oob      []byte
		wantSec  int64
		wantNsec int64
		wantOK   bool
	}{
		{"stamp alone", tsCmsg(1700000000, 42), 1700000000, 42, true},
		{"after sock_extended_err", append(extErrCmsg(), tsCmsg(99, 7)...), 99, 7, true},
		{"before sock_extended_err", append(tsCmsg(99, 7), extErrCmsg()...), 99, 7, true},
		{"sock_extended_err only", extErrCmsg(), 0, 0, false},
		{"empty", nil, 0, 0, false},
		{"truncated stamp after err", append(extErrCmsg(), tsCmsg(1, 2)[:20]...), 0, 0, false},
		{"zero stamp", tsCmsg(0, 0), 0, 0, false},
		{"nsec overflow", tsCmsg(5, 2e9), 0, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sec, nsec, ok := parseTxTimestamp(tc.oob)
			if sec != tc.wantSec || nsec != tc.wantNsec || ok != tc.wantOK {
				t.Errorf("parseTxTimestamp = (%d, %d, %v), want (%d, %d, %v)",
					sec, nsec, ok, tc.wantSec, tc.wantNsec, tc.wantOK)
			}
		})
	}
}

// FuzzParseTxTimestamp: the error-queue walker has the same hostile
// environment as the RX walker — no byte sequence may panic it or
// yield an out-of-range stamp.
func FuzzParseTxTimestamp(f *testing.F) {
	f.Add(append(extErrCmsg(), tsCmsg(1700000000, 123456789)...))
	f.Add(extErrCmsg())
	f.Add([]byte{})
	f.Add(make([]byte, 15))
	hostile := append(extErrCmsg(), tsCmsg(1, 2)...)
	binary.LittleEndian.PutUint64(hostile[0:8], ^uint64(0))
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, oob []byte) {
		sec, nsec, ok := parseTxTimestamp(oob)
		if ok && (sec < 0 || nsec < 0 || nsec >= 1e9) {
			t.Errorf("accepted out-of-range stamp (%d, %d)", sec, nsec)
		}
		if !ok && (sec != 0 || nsec != 0) {
			t.Errorf("ok=false with nonzero stamp (%d, %d)", sec, nsec)
		}
	})
}

// replyBytes marshals a server reply whose Transmit field carries the
// given correlation cookie.
func replyBytes(cookie uint64) [PacketSize]byte {
	p := Packet{Version: 4, Mode: ModeServer, Transmit: Time64(cookie)}
	return p.Marshal()
}

// TestTxPayloadCookie covers the tail-relative cookie read across the
// header prefixes the kernel may loop back: none, IPv4+UDP (28 bytes),
// IPv6+UDP (48 bytes), and short garbage.
func TestTxPayloadCookie(t *testing.T) {
	const want = 0xDEADBEEFCAFE0123
	reply := replyBytes(want)
	for _, tc := range []struct {
		name   string
		prefix int
	}{
		{"bare payload", 0},
		{"ipv4+udp prefix", 28},
		{"ipv6+udp prefix", 48},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pkt := make([]byte, tc.prefix+PacketSize)
			copy(pkt[tc.prefix:], reply[:])
			got, ok := txPayloadCookie(pkt)
			if !ok || got != want {
				t.Errorf("txPayloadCookie = (%#x, %v), want (%#x, true)", got, ok, uint64(want))
			}
		})
	}
	if _, ok := txPayloadCookie(reply[:PacketSize-1]); ok {
		t.Error("txPayloadCookie accepted a short payload")
	}
	if _, ok := txPayloadCookie(nil); ok {
		t.Error("txPayloadCookie accepted nil")
	}
}

// newTestTxLoop hand-assembles the error-queue half of a batchLoop, as
// if TX stamping had been armed on a live socket.
func newTestTxLoop(t *testing.T, s *Server) *batchLoop {
	t.Helper()
	return &batchLoop{
		srv:        s,
		txStamping: true,
		errPkt:     make([]byte, errBatch*errBufSize),
		errOob:     make([]byte, errBatch*oobSize),
		erriovs:    make([]syscall.Iovec, errBatch),
		errmsgs:    make([]mmsghdr, errBatch),
		txRing:     make([]txRingEntry, txRingSize),
	}
}

// queueTxStamp plants one looped-back packet in error-queue slot i: a
// fake IP/UDP header prefix, the reply payload carrying the cookie,
// and an SCM_TIMESTAMPING cmsg (preceded by the sock_extended_err a
// real read carries) stamping the given instant.
func queueTxStamp(bl *batchLoop, slot, prefix int, cookie uint64, stamp time.Time) {
	reply := replyBytes(cookie)
	off := slot * errBufSize
	for i := 0; i < prefix; i++ {
		bl.errPkt[off+i] = 0xAA
	}
	copy(bl.errPkt[off+prefix:], reply[:])
	bl.errmsgs[slot].nrecv = uint32(prefix + PacketSize)
	oob := append(extErrCmsg(), tsCmsg(stamp.Unix(), int64(stamp.Nanosecond()))...)
	copy(bl.errOob[slot*oobSize:], oob)
	bl.errmsgs[slot].hdr.Controllen = uint64(len(oob))
}

// recordSent plants a sent-reply record in the correlation ring, as
// flush does after a successful sendmmsg.
func recordSent(bl *batchLoop, cookie uint64, sent int64) {
	bl.txRingInsert(cookie, sent)
}

// TestTxStampCorrelation is the deterministic end-to-end check of the
// error-queue pipeline with pre-queued packets: correlated stamps feed
// the dwell EWMA and the histogram, uncorrelatable cookies and stamps
// outside the trust clamp are counted and kept out of it.
func TestTxStampCorrelation(t *testing.T) {
	srv, err := NewServer(ServerConfig{Clock: SystemServerClock(), TxStamp: true})
	if err != nil {
		t.Fatal(err)
	}
	bl := newTestTxLoop(t, srv)
	proc := time.Now()
	bl.procWall = proc.UnixNano()

	const dwell = 250 * time.Microsecond
	recordSent(bl, 0x1111, bl.procWall)
	recordSent(bl, 0x2222, bl.procWall)
	recordSent(bl, 0x3333, bl.procWall)
	queueTxStamp(bl, 0, 28, 0x1111, proc.Add(dwell))         // IPv4-shaped, correlates
	queueTxStamp(bl, 1, 48, 0x2222, proc.Add(dwell))         // IPv6-shaped, correlates
	queueTxStamp(bl, 2, 28, 0x9999, proc.Add(dwell))         // never sent: uncorrelatable
	queueTxStamp(bl, 3, 28, 0x3333, proc.Add(2*time.Second)) // clock step: outside clamp

	bl.processTxStamps(4)
	st := srv.Stats()
	if st.KernelTx != 2 {
		t.Errorf("KernelTx = %d, want 2", st.KernelTx)
	}
	if st.KernelTxMissing != 2 {
		t.Errorf("KernelTxMissing = %d, want 2 (one uncorrelatable, one clamped)", st.KernelTxMissing)
	}
	if st.StampClamped != 1 {
		t.Errorf("StampClamped = %d, want 1", st.StampClamped)
	}
	if st.TxDwellEWMA != dwell {
		t.Errorf("TxDwellEWMA = %v, want %v (two equal samples)", st.TxDwellEWMA, dwell)
	}
	if adv := srv.txAdvance(); adv != dwell {
		t.Errorf("txAdvance = %v, want %v", adv, dwell)
	}
	// 250 µs falls in the (1e-4, 1e-3] bucket; cumulative counts mean
	// every later bucket (and the total) sees both samples.
	if st.TxDwell[2] != 0 || st.TxDwell[3] != 2 || st.TxDwell[len(st.TxDwell)-1] != 2 {
		t.Errorf("TxDwell cumulative buckets = %v, want both samples first at index 3", st.TxDwell)
	}
	if st.TxDwellSum <= 0 {
		t.Errorf("TxDwellSum = %v, want > 0", st.TxDwellSum)
	}
}

// TestTxAdvanceClamp: the applied forward-dating is the EWMA clamped
// to [0, txAdvanceMax], and zero before any stamp correlates.
func TestTxAdvanceClamp(t *testing.T) {
	srv, err := NewServer(ServerConfig{Clock: SystemServerClock(), TxStamp: true})
	if err != nil {
		t.Fatal(err)
	}
	if adv := srv.txAdvance(); adv != 0 {
		t.Errorf("txAdvance before any stamp = %v, want 0", adv)
	}
	srv.recordTxDwell(int64(5 * time.Millisecond)) // pathological dwell
	if ewma := srv.Stats().TxDwellEWMA; ewma != 5*time.Millisecond {
		t.Errorf("TxDwellEWMA = %v, want 5ms seed", ewma)
	}
	if adv := srv.txAdvance(); adv != txAdvanceMax {
		t.Errorf("txAdvance = %v, want clamped to %v", adv, txAdvanceMax)
	}
}

// TestTxDrainZeroAlloc is the steady-state allocation gate for the
// error-queue pipeline: correlating and recording a full drain batch
// must not allocate (AllocsPerRun=0, backing the //repro:hotpath
// static gate on processTxStamps).
func TestTxDrainZeroAlloc(t *testing.T) {
	srv, err := NewServer(ServerConfig{Clock: SystemServerClock(), TxStamp: true})
	if err != nil {
		t.Fatal(err)
	}
	bl := newTestTxLoop(t, srv)
	proc := time.Now()
	bl.procWall = proc.UnixNano()
	for i := 0; i < errBatch; i++ {
		ck := uint64(0x4000 + i)
		recordSent(bl, ck, bl.procWall)
		queueTxStamp(bl, i, 28, ck, proc.Add(100*time.Microsecond))
	}
	allocs := testing.AllocsPerRun(200, func() {
		bl.processTxStamps(errBatch)
		bl.resetErrHeaders()
	})
	if allocs != 0 {
		t.Errorf("error-queue processing allocates %.1f times per drain, want 0", allocs)
	}
}

// TestBatchTxStampCoverage drives a real loopback socket with TxStamp
// armed: the error-queue pipeline must correlate a kernel TX stamp for
// ≥99% of replies, and the measured dwell must start forward-dating
// Transmit without ever violating Tb ≤ Te ordering for clients.
func TestBatchTxStampCoverage(t *testing.T) {
	const queued = 64
	srv, err := NewServer(ServerConfig{Clock: SystemServerClock(), TxStamp: true, Batch: batchMax})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < queued; i++ {
		if _, err := cli.Write(clientPacket(4)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(10 * time.Millisecond)

	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(pc) }()
	defer func() { pc.Close(); <-done }()

	cli.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 512)
	for i := 0; i < queued; i++ {
		if _, err := cli.Read(buf); err != nil {
			t.Fatalf("reply %d/%d never arrived: %v", i+1, queued, err)
		}
	}
	// TX stamps loop back asynchronously: the drain after flush catches
	// most, the POLLERR wake catches stragglers. Poke the socket while
	// polling so the parked loop keeps waking to drain.
	var st Stats
	deadline := time.Now().Add(2 * time.Second)
	for {
		st = srv.Stats()
		if st.KernelTx+st.KernelTxMissing >= st.Replied && st.Replied >= queued {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		cli.Write(clientPacket(4))
		cli.Read(buf)
		time.Sleep(5 * time.Millisecond)
	}
	if st.KernelTx == 0 {
		if st.KernelTxMissing > 0 {
			t.Skipf("kernel provided no correlatable TX timestamps here (%d missing)", st.KernelTxMissing)
		}
		t.Skipf("kernel looped no TX timestamps on this socket (replied=%d)", st.Replied)
	}
	if cov := float64(st.KernelTx) / float64(st.Replied); cov < 0.99 {
		t.Errorf("TX stamp coverage = %.3f (%d/%d replies), want >= 0.99", cov, st.KernelTx, st.Replied)
	}
	if st.TxDwellEWMA <= 0 || st.TxDwellEWMA > stampMaxAge {
		t.Errorf("TxDwellEWMA = %v, want a positive dwell within the trust clamp", st.TxDwellEWMA)
	}
	t.Logf("TX stamps: %d/%d replies correlated, dwell EWMA %v, clamped %d",
		st.KernelTx, st.Replied, st.TxDwellEWMA, st.StampClamped)
}

// quantile returns the p-quantile of xs (sorted copy, nearest rank).
func quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p * float64(len(s)-1))
	return s[i]
}

// TestClientKernelStampAB is the loopback A/B the tentpole is gated
// on: against the same in-process batched server, a kernel-stamped
// client must report nonzero kernel-vs-userspace Ta/Tf delta medians —
// the measured host stamping noise the correction sheds — while a
// control client without kernel stamps reports none.
func TestClientKernelStampAB(t *testing.T) {
	srv, err := NewServer(ServerConfig{Clock: SystemServerClock(), TxStamp: true})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(pc) }()
	defer func() { pc.Close(); <-done }()

	counter, period := MonotonicCounter()
	exchange := func(c *Client, n int) (taDeltas, tfDeltas []float64) {
		t.Helper()
		for i := 0; i < n; i++ {
			raw, err := c.Exchange()
			if err != nil {
				t.Fatalf("exchange %d: %v", i, err)
			}
			if raw.KernelTa {
				taDeltas = append(taDeltas, raw.TaDelta)
			}
			if raw.KernelTf {
				tfDeltas = append(tfDeltas, raw.TfDelta)
			}
		}
		return
	}

	// Control arm: userspace stamps only.
	connB, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer connB.Close()
	ctrl := NewClient(connB, counter, 2*time.Second)
	taB, tfB := exchange(ctrl, 5)
	if len(taB) != 0 || len(tfB) != 0 {
		t.Fatalf("control client reported kernel stamps without arming: ta=%d tf=%d", len(taB), len(tfB))
	}
	if ss := ctrl.StampStats(); ss.TxStamped != 0 || ss.RxStamped != 0 {
		t.Fatalf("control client stamp stats moved: %+v", ss)
	}

	// Kernel arm.
	connA, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close()
	kc := NewClient(connA, counter, 2*time.Second)
	if !kc.EnableKernelStamps(period) {
		t.Skip("kernel stamping not armable on this socket")
	}
	const rounds = 20
	taA, tfA := exchange(kc, rounds)
	ss := kc.StampStats()
	if ss.TxStamped+ss.TxMissing != rounds || ss.RxStamped+ss.RxMissing != rounds {
		t.Errorf("stamp accounting: %+v does not cover %d exchanges", ss, rounds)
	}
	if len(taA) == 0 && len(tfA) == 0 {
		t.Skipf("kernel provided no client stamps here: %+v", ss)
	}
	taP50, tfP50 := quantile(taA, 0.5), quantile(tfA, 0.5)
	t.Logf("client stamp noise over %d exchanges: Ta delta p50=%.1fµs p90=%.1fµs (n=%d), Tf delta p50=%.1fµs p90=%.1fµs (n=%d), EWMA ta=%.1fµs tf=%.1fµs",
		rounds, taP50*1e6, quantile(taA, 0.9)*1e6, len(taA),
		tfP50*1e6, quantile(tfA, 0.9)*1e6, len(tfA),
		ss.TaDelta*1e6, ss.TfDelta*1e6)
	if len(taA) > 0 && taP50 <= 0 {
		t.Errorf("Ta kernel-vs-userspace delta p50 = %v, want > 0 (the TX dwell the stamp sheds)", taP50)
	}
	if len(tfA) > 0 && tfP50 <= 0 {
		t.Errorf("Tf kernel-vs-userspace delta p50 = %v, want > 0 (the RX dwell the stamp sheds)", tfP50)
	}
}

// Package render draws experiment series as Unicode terminal plots, so
// the regenerated figures are inspectable without leaving the shell:
// scatter/line charts for time series (Figures 2, 4-8, 11), log-log
// charts for stability curves (Figure 3), and bar histograms
// (Figure 12). It deliberately depends only on the trace table type.
package render

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/trace"
)

// Options control chart geometry.
type Options struct {
	Width  int // plot columns (default 72)
	Height int // plot rows (default 16)
	LogX   bool
	LogY   bool
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 16
	}
	return o
}

// markers used for successive series.
var markers = []rune{'·', '+', 'x', 'o', '*'}

// Chart plots the table's first column as x against every other column
// as a separate series.
func Chart(t *trace.Table, title string, opts Options) (string, error) {
	opts = opts.withDefaults()
	cols := t.Columns()
	if len(cols) < 2 {
		return "", fmt.Errorf("render: need at least 2 columns, have %d", len(cols))
	}
	if t.Len() == 0 {
		return "", fmt.Errorf("render: empty table")
	}

	tx := func(v float64) (float64, bool) { return v, true }
	ty := tx
	if opts.LogX {
		tx = logT
	}
	if opts.LogY {
		ty = logT
	}

	// Data ranges after transform.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		x, okx := tx(row[0])
		if !okx {
			continue
		}
		xmin = math.Min(xmin, x)
		xmax = math.Max(xmax, x)
		for _, v := range row[1:] {
			if y, ok := ty(v); ok {
				ymin = math.Min(ymin, y)
				ymax = math.Max(ymax, y)
			}
		}
	}
	if math.IsInf(xmin, 1) || math.IsInf(ymin, 1) {
		return "", fmt.Errorf("render: no plottable points (log of non-positive data?)")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, opts.Height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", opts.Width))
	}
	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		x, okx := tx(row[0])
		if !okx {
			continue
		}
		cx := int((x - xmin) / (xmax - xmin) * float64(opts.Width-1))
		for s, v := range row[1:] {
			y, ok := ty(v)
			if !ok {
				continue
			}
			cy := opts.Height - 1 - int((y-ymin)/(ymax-ymin)*float64(opts.Height-1))
			m := markers[s%len(markers)]
			if cur := grid[cy][cx]; cur != ' ' && cur != m {
				grid[cy][cx] = '#' // overlapping series
			} else {
				grid[cy][cx] = m
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	yLab := func(v float64) string {
		if opts.LogY {
			return fmt.Sprintf("%11.3g", math.Pow(10, v))
		}
		return fmt.Sprintf("%11.3g", v)
	}
	for r, line := range grid {
		lab := strings.Repeat(" ", 11)
		switch r {
		case 0:
			lab = yLab(ymax)
		case opts.Height - 1:
			lab = yLab(ymin)
		case (opts.Height - 1) / 2:
			lab = yLab((ymin + ymax) / 2)
		}
		fmt.Fprintf(&b, "%s |%s|\n", lab, string(line))
	}
	xLab := func(v float64) string {
		if opts.LogX {
			return fmt.Sprintf("%.3g", math.Pow(10, v))
		}
		return fmt.Sprintf("%.3g", v)
	}
	left, right := xLab(xmin), xLab(xmax)
	pad := opts.Width - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s   (x: %s)\n", strings.Repeat(" ", 10),
		left, strings.Repeat(" ", pad), right, cols[0])
	var legend []string
	for s, c := range cols[1:] {
		legend = append(legend, fmt.Sprintf("%c %s", markers[s%len(markers)], c))
	}
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", 10), strings.Join(legend, "   "))
	return b.String(), nil
}

// logT maps to log10, rejecting non-positive values.
func logT(v float64) (float64, bool) {
	if v <= 0 {
		return 0, false
	}
	return math.Log10(v), true
}

// Histogram renders a two-column (bin center, fraction) table as a
// horizontal bar chart, the Figure-12 presentation.
func Histogram(t *trace.Table, title string, width int) (string, error) {
	if len(t.Columns()) != 2 {
		return "", fmt.Errorf("render: histogram needs exactly 2 columns")
	}
	if t.Len() == 0 {
		return "", fmt.Errorf("render: empty table")
	}
	if width <= 0 {
		width = 50
	}
	maxFrac := 0.0
	for i := 0; i < t.Len(); i++ {
		if f := t.Row(i)[1]; f > maxFrac {
			maxFrac = f
		}
	}
	if maxFrac == 0 {
		maxFrac = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		n := int(row[1] / maxFrac * float64(width))
		fmt.Fprintf(&b, "%10.3g |%s %0.2f%%\n", row[0], strings.Repeat("█", n), row[1]*100)
	}
	return b.String(), nil
}

package render

import (
	"math"
	"strings"
	"testing"

	"repro/internal/trace"
)

func lineTable(t *testing.T) *trace.Table {
	t.Helper()
	tab := trace.NewTable("t_s", "a", "b")
	for i := 0; i < 50; i++ {
		x := float64(i)
		if err := tab.Append(x, math.Sin(x/8), math.Cos(x/8)); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestChartBasics(t *testing.T) {
	out, err := Chart(lineTable(t), "two waves", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "two waves") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "·") || !strings.Contains(out, "+") {
		t.Error("series markers missing")
	}
	if !strings.Contains(out, "(x: t_s)") {
		t.Error("x axis label missing")
	}
	if !strings.Contains(out, "· a") || !strings.Contains(out, "+ b") {
		t.Error("legend missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + legend
	if len(lines) != 1+16+1+1 {
		t.Errorf("chart has %d lines", len(lines))
	}
}

func TestChartErrors(t *testing.T) {
	one := trace.NewTable("only")
	if _, err := Chart(one, "t", Options{}); err == nil {
		t.Error("single-column table accepted")
	}
	empty := trace.NewTable("x", "y")
	if _, err := Chart(empty, "t", Options{}); err == nil {
		t.Error("empty table accepted")
	}
}

func TestChartLogLog(t *testing.T) {
	tab := trace.NewTable("tau", "dev")
	for m := 1; m <= 1024; m *= 2 {
		if err := tab.Append(float64(m)*16, 1e-7/float64(m)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := Chart(tab, "allan", Options{LogX: true, LogY: true, Height: 10})
	if err != nil {
		t.Fatal(err)
	}
	// A 1/tau law is a straight diagonal in log-log: the marker must
	// appear in both the top and bottom rows.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "·") {
		t.Error("top row empty for log-log diagonal")
	}
	if !strings.Contains(lines[10], "·") {
		t.Error("bottom row empty for log-log diagonal")
	}
}

func TestChartLogRejectsNonPositive(t *testing.T) {
	tab := trace.NewTable("x", "y")
	if err := tab.Append(-1, -2); err != nil {
		t.Fatal(err)
	}
	if _, err := Chart(tab, "t", Options{LogX: true, LogY: true}); err == nil {
		t.Error("all-negative log chart accepted")
	}
}

func TestChartConstantSeries(t *testing.T) {
	tab := trace.NewTable("x", "y")
	for i := 0; i < 5; i++ {
		if err := tab.Append(float64(i), 42); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Chart(tab, "const", Options{}); err != nil {
		t.Errorf("constant series rejected: %v", err)
	}
}

func TestHistogram(t *testing.T) {
	tab := trace.NewTable("center", "fraction")
	for i, f := range []float64{0.05, 0.3, 0.5, 0.15} {
		if err := tab.Append(float64(i), f); err != nil {
			t.Fatal(err)
		}
	}
	out, err := Histogram(tab, "dist", 20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "dist") {
		t.Error("title missing")
	}
	// The 0.5 bin must have the longest bar (20 chars).
	if !strings.Contains(out, strings.Repeat("█", 20)) {
		t.Error("max bin bar wrong length")
	}
	if !strings.Contains(out, "50.00%") {
		t.Error("percent label missing")
	}
}

func TestHistogramErrors(t *testing.T) {
	bad := trace.NewTable("a", "b", "c")
	if _, err := Histogram(bad, "t", 10); err == nil {
		t.Error("3-column histogram accepted")
	}
	empty := trace.NewTable("a", "b")
	if _, err := Histogram(empty, "t", 10); err == nil {
		t.Error("empty histogram accepted")
	}
}

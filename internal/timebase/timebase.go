// Package timebase provides the elementary time and rate quantities used
// throughout the TSC-NTP clock reproduction: simulation time, counter
// values, rate errors in parts per million (PPM), and the conversions
// between them.
//
// Conventions:
//
//   - True (simulated) time is a float64 number of seconds since the
//     simulation origin t = 0. Keeping the origin at zero (rather than the
//     UNIX epoch) preserves sub-nanosecond float64 resolution over
//     multi-month runs: at t = 10^7 s the ulp is ~2 ns, far below the 100 ns
//     reference accuracy of the simulated DAG monitor.
//
//   - Counter (TSC) values are uint64 cycle counts.
//
//   - Rates and rate errors are dimensionless; the PPM helpers exist only
//     for presentation and parameter entry.
package timebase

import (
	"fmt"
	"math"
)

// Seconds is a true-time instant or interval in seconds since the
// simulation origin. It is a distinct type so that counter values and
// seconds cannot be confused at call sites.
type Seconds = float64

// Common interval constants, in seconds.
const (
	Millisecond = 1e-3
	Microsecond = 1e-6
	Nanosecond  = 1e-9

	Minute = 60.0
	Hour   = 3600.0
	Day    = 86400.0
	Week   = 7 * Day
)

// PPM converts a dimensionless rate error to parts per million.
func PPM(rate float64) float64 { return rate * 1e6 }

// FromPPM converts a parts-per-million value to a dimensionless rate error.
func FromPPM(ppm float64) float64 { return ppm * 1e-6 }

// RateError reports the dimensionless relative error of an estimated
// period pHat with respect to the true period p: pHat/p - 1.
func RateError(pHat, p float64) float64 { return pHat/p - 1 }

// OffsetAtRate returns the absolute time error accumulated over an
// interval dt at a constant rate error (Table 1 of the paper):
// delta(offset) = delta(t) * rateError.
func OffsetAtRate(dt Seconds, rateError float64) Seconds { return dt * rateError }

// CounterSpan converts a span of counter cycles to seconds using the
// period estimate p (seconds per cycle). The subtraction is performed in
// uint64 space first to avoid losing precision for large counts.
func CounterSpan(from, to uint64, p float64) Seconds {
	if to >= from {
		return float64(to-from) * p
	}
	return -float64(from-to) * p
}

// CyclesIn returns the (floating point) number of cycles of period p that
// fit in dt seconds.
func CyclesIn(dt Seconds, p float64) float64 { return dt / p }

// FormatDuration renders a duration in seconds using the most readable
// engineering unit. It is intended for experiment output, mirroring the
// paper's mixed µs/ms/s axes.
func FormatDuration(dt Seconds) string {
	ad := math.Abs(dt)
	switch {
	case ad == 0:
		return "0s"
	case ad < Microsecond:
		return fmt.Sprintf("%.3gns", dt/Nanosecond)
	case ad < Millisecond:
		return fmt.Sprintf("%.3gµs", dt/Microsecond)
	case ad < 1:
		return fmt.Sprintf("%.3gms", dt/Millisecond)
	case ad < Minute:
		return fmt.Sprintf("%.3gs", dt)
	case ad < Hour:
		return fmt.Sprintf("%.3gmin", dt/Minute)
	case ad < Day:
		return fmt.Sprintf("%.3gh", dt/Hour)
	default:
		return fmt.Sprintf("%.3gd", dt/Day)
	}
}

package timebase

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPPMRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1e-9, 5e-5, -3.2e-7, 1} {
		if got := FromPPM(PPM(v)); math.Abs(got-v) > 1e-18 {
			t.Errorf("FromPPM(PPM(%g)) = %g", v, got)
		}
	}
}

func TestPPMRoundTripQuick(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e300 {
			return true // *1e6 would overflow; out of physical range anyway
		}
		got := FromPPM(PPM(v))
		return got == v || math.Abs(got-v) <= 1e-12*math.Abs(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRateError(t *testing.T) {
	p := 1.82263812e-9
	if got := RateError(p, p); got != 0 {
		t.Errorf("RateError(p, p) = %g, want 0", got)
	}
	// A +0.1 PPM period error should read as +0.1 PPM rate error.
	pHat := p * (1 + FromPPM(0.1))
	if got := PPM(RateError(pHat, p)); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("RateError at +0.1 PPM = %g PPM", got)
	}
}

func TestOffsetAtRateTable1(t *testing.T) {
	// Reproduces the bold entries of Table 1: at 0.1 PPM the error over
	// the SKM scale (1000 s) is 0.1 ms, and over 1 s it is 0.1 µs.
	cases := []struct {
		dt, ppm, want Seconds
	}{
		{1e-3, 0.02, 0.02e-9},
		{1e-3, 0.1, 0.1e-9},
		{0.1, 0.1, 10e-9},
		{1, 0.02, 20e-9},
		{1, 0.1, 0.1e-6},
		{1000, 0.02, 20e-6},
		{1000, 0.1, 0.1e-3},
		{Day, 0.02, 1.728e-3},
		{Day, 0.1, 8.64e-3},
		{Week, 0.1, 60.48e-3},
	}
	for _, c := range cases {
		got := OffsetAtRate(c.dt, FromPPM(c.ppm))
		if math.Abs(got-c.want) > 1e-9*math.Abs(c.want)+1e-18 {
			t.Errorf("OffsetAtRate(%g s, %g PPM) = %g, want %g", c.dt, c.ppm, got, c.want)
		}
	}
}

func TestCounterSpan(t *testing.T) {
	p := 2e-9 // 500 MHz
	if got := CounterSpan(0, 500_000_000, p); math.Abs(got-1) > 1e-12 {
		t.Errorf("1 s span = %g", got)
	}
	if got := CounterSpan(500_000_000, 0, p); math.Abs(got+1) > 1e-12 {
		t.Errorf("reverse span = %g, want -1", got)
	}
	// Large counts: 3 months at 548 MHz must not lose precision beyond ns.
	const f = 548_655_270.0
	from := uint64(12345)
	to := from + uint64(f*90*Day)
	got := CounterSpan(from, to, 1/f)
	if math.Abs(got-90*Day) > 1e-5 {
		t.Errorf("90-day span = %.9g, want %.9g", got, 90*Day)
	}
}

func TestCounterSpanAntisymmetric(t *testing.T) {
	f := func(a, b uint64, pScaled uint32) bool {
		p := 1e-9 * (1 + float64(pScaled)/float64(math.MaxUint32))
		return CounterSpan(a, b, p) == -CounterSpan(b, a, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCyclesIn(t *testing.T) {
	if got := CyclesIn(1, 1e-9); math.Abs(got-1e9) > 1 {
		t.Errorf("CyclesIn(1s, 1ns) = %g", got)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		dt   Seconds
		want string
	}{
		{0, "0s"},
		{1.5e-9, "1.5ns"},
		{30e-6, "30µs"},
		{-31e-6, "-31µs"},
		{0.38e-3, "380µs"},
		{1.2e-3, "1.2ms"},
		{14.2e-3, "14.2ms"},
		{16, "16s"},
		{120, "2min"},
		{7200, "2h"},
		{3.8 * Day, "3.8d"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.dt); got != c.want {
			t.Errorf("FormatDuration(%g) = %q, want %q", c.dt, got, c.want)
		}
	}
}

func TestFormatDurationNonEmpty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		s := FormatDuration(v)
		return s != "" && !strings.Contains(s, "NaN")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timebase"
	"repro/internal/trace"
)

// oneDayTrace generates the first-day dataset behind Figures 5 and 6:
// machine room, ServerInt, 16 s polling.
func oneDayTrace(opts Options) (*sim.Trace, error) {
	sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, timebase.Day, opts.seed())
	return sim.Generate(sc)
}

// runFig5 regenerates Figure 5: naive per-packet rate estimates against
// the DAG reference, with the growing baseline Δ(TSC) damping errors at
// rate 1/Δ(t) but congested packets still producing poor estimates.
func runFig5(opts Options) (*Report, error) {
	r := newReport("fig5", Title("fig5"))
	tr, err := oneDayTrace(opts)
	if err != nil {
		return nil, err
	}
	ex := tr.Completed()
	first := ex[0]
	// Reference rate over the whole trace from DAG stamps (the paper's
	// p̄ used for normalization).
	last := ex[len(ex)-1]
	pBar := (last.Tg - first.Tg) / float64(last.Tf-first.Tf)

	tab := trace.NewTable("te_day", "naive_rel_ppm", "ref_rel_ppm")
	var relErrsLate []float64 // |naive − reference| after 0.2 day
	withinEarly, totalEarly := 0, 0
	for _, e := range ex[1:] {
		_, back, _, err := core.NaiveRatePair(
			core.Input{Ta: first.Ta, Tf: first.Tf, Tb: first.Tb, Te: first.Te},
			core.Input{Ta: e.Ta, Tf: e.Tf, Tb: e.Tb, Te: e.Te})
		if err != nil {
			continue
		}
		ref := (e.Tg - first.Tg) / float64(e.Tf-first.Tf)
		day := e.Te / timebase.Day
		if err := tab.Append(day, timebase.PPM(back/pBar-1), timebase.PPM(ref/pBar-1)); err != nil {
			return nil, err
		}
		rel := math.Abs(back/ref - 1)
		if day > 0.2 {
			relErrsLate = append(relErrsLate, rel)
		}
		if day > 0.05 && day < 0.2 {
			totalEarly++
			if rel < timebase.FromPPM(0.1) {
				withinEarly++
			}
		}
	}
	if err := r.save(opts, "series", tab); err != nil {
		return nil, err
	}

	frac := float64(withinEarly) / float64(totalEarly)
	med := stats.Median(relErrsLate)
	worst := stats.Percentile(relErrsLate, 100)
	r.addLine("bulk within 0.1 PPM (0.05–0.2 day): %.1f%%", frac*100)
	r.addLine("after 0.2 day: median |rel err| %.4f PPM, worst %.3f PPM",
		timebase.PPM(med), timebase.PPM(worst))

	r.addCheck("bulk quickly within 0.1 PPM of reference", "≥80%",
		fmt.Sprintf("%.1f%%", frac*100), frac >= 0.8)
	r.addCheck("median damps to ≪0.1 PPM after 0.2 day", "≤0.05 PPM",
		fmt.Sprintf("%.4f PPM", timebase.PPM(med)), med <= timebase.FromPPM(0.05))
	r.addCheck("congested packets remain unreliable (worst > median ×5)",
		"worst/median > 5", fmt.Sprintf("%.0f", worst/med), worst > 5*med)
	return r, nil
}

// runFig6 regenerates Figure 6: naive per-packet offset estimates θ̂_i
// against reference, showing undamped network-delay noise biased to
// negative values by the more heavily utilised forward path.
func runFig6(opts Options) (*Report, error) {
	r := newReport("fig6", Title("fig6"))
	tr, err := oneDayTrace(opts)
	if err != nil {
		return nil, err
	}
	ex := tr.Completed()
	first, last := ex[0], ex[len(ex)-1]
	// Fixed whole-trace clock: p̄ from DAG endpoints, origin aligned at
	// the first exchange (the paper uses a constant rate estimate made
	// over the entire trace for this figure).
	pBar := (last.Tg - first.Tg) / float64(last.Tf-first.Tf)
	cBar := first.Tb - float64(first.Ta)*pBar

	tab := trace.NewTable("te_day", "naive_offset_s", "ref_offset_s")
	var devs []float64
	for _, e := range ex {
		in := core.Input{Ta: e.Ta, Tf: e.Tf, Tb: e.Tb, Te: e.Te}
		naive := core.NaiveTheta(in, pBar, cBar)
		ref := float64(e.Tf)*pBar + cBar - e.Tg
		if err := tab.Append(e.Te/timebase.Day, naive, ref); err != nil {
			return nil, err
		}
		devs = append(devs, naive-ref)
	}
	if err := r.save(opts, "series", tab); err != nil {
		return nil, err
	}

	med := stats.Median(devs)
	iqr := stats.IQR(devs)
	neg := 0
	for _, d := range devs {
		if d < 0 {
			neg++
		}
	}
	negFrac := float64(neg) / float64(len(devs))
	r.addLine("naive − reference: median %s, IQR %s, %.0f%% negative",
		timebase.FormatDuration(med), timebase.FormatDuration(iqr), negFrac*100)

	// The deviation distribution is (q← − q→)/2 plus the −Δ/2 ambiguity.
	r.addCheck("deviations biased negative (forward more utilised)",
		">60% negative", fmt.Sprintf("%.0f%%", negFrac*100), negFrac > 0.6)
	r.addCheck("undamped noise ≫ filtered scale", "IQR > 10µs",
		timebase.FormatDuration(iqr), iqr > 10*timebase.Microsecond)
	r.addCheck("median reflects −Δ/2 ambiguity ≈ −25µs", "−80µs…0",
		timebase.FormatDuration(med), med > -80e-6 && med < 0)
	return r, nil
}

// runFig7 regenerates Figure 7: relative error of the robust rate
// estimate for E* = 20δ and 5δ against the expected bound 2E*/Δ(t);
// errors fall below 0.1 PPM and remain there, insensitive to E*.
func runFig7(opts Options) (*Report, error) {
	r := newReport("fig7", Title("fig7"))
	tr, err := oneDayTrace(opts)
	if err != nil {
		return nil, err
	}
	ex := tr.Completed()
	first, last := ex[0], ex[len(ex)-1]
	pRef := (last.Tg - first.Tg) / float64(last.Tf-first.Tf)

	for _, eStarFactor := range []float64{20, 5} {
		cfg := defaultCfg(16)
		cfg.EStarFactor = eStarFactor
		results, exs, err := engineRun(tr, cfg)
		if err != nil {
			return nil, err
		}

		tab := trace.NewTable("te_day", "rel_err", "bound")
		accepted := 0
		crossed := math.Inf(1) // first time the error goes below 0.1 PPM for good
		var maxAfter float64
		for k, res := range results {
			day := exs[k].Te / timebase.Day
			rel := math.Abs(res.PHat/pRef - 1)
			if err := tab.Append(day, rel, 2*res.PQuality); err != nil {
				return nil, err
			}
			if res.Accepted {
				accepted++
			}
			if day > 0.1 {
				if rel > maxAfter {
					maxAfter = rel
				}
				if math.IsInf(crossed, 1) {
					crossed = day
				}
			}
		}
		name := fmt.Sprintf("Estar%.0fdelta", eStarFactor)
		if err := r.save(opts, name, tab); err != nil {
			return nil, err
		}
		fracAcc := float64(accepted) / float64(len(results))
		r.addLine("E*=%2.0fδ: accepted %.1f%% of packets; max |rel err| after 0.1 day = %.4f PPM",
			eStarFactor, fracAcc*100, timebase.PPM(maxAfter))
		r.addCheck(fmt.Sprintf("E*=%.0fδ error below 0.1 PPM and stays", eStarFactor),
			"max ≤ 0.1 PPM after 0.1d", fmt.Sprintf("%.4f PPM", timebase.PPM(maxAfter)),
			maxAfter <= timebase.FromPPM(0.1))
	}

	// Selectivity ordering: the tight threshold accepts far fewer
	// packets but the result barely changes (insensitivity to E*).
	cfg20, cfg5 := defaultCfg(16), defaultCfg(16)
	cfg20.EStarFactor, cfg5.EStarFactor = 20, 5
	res20, _, err := engineRun(tr, cfg20)
	if err != nil {
		return nil, err
	}
	res5, _, err := engineRun(tr, cfg5)
	if err != nil {
		return nil, err
	}
	acc := func(rs []core.Result) float64 {
		n := 0
		for _, res := range rs {
			if res.Accepted {
				n++
			}
		}
		return float64(n) / float64(len(rs))
	}
	a20, a5 := acc(res20), acc(res5)
	// The paper saw 72% vs 3.9%; our synthetic queueing is lighter than
	// their campus path, so the gap is smaller — the shape claim is that
	// 5δ is markedly more selective yet the estimate is unaffected.
	r.addCheck("5δ markedly more selective than 20δ", "acc(5δ) ≤ acc(20δ) − 10pp",
		fmt.Sprintf("%.1f%% vs %.1f%%", a5*100, a20*100), a5 <= a20-0.10)
	d20 := math.Abs(res20[len(res20)-1].PHat/pRef - 1)
	d5 := math.Abs(res5[len(res5)-1].PHat/pRef - 1)
	r.addCheck("final estimates agree across E* (insensitivity)",
		"both ≤ 0.05 PPM", fmt.Sprintf("%.4f / %.4f PPM", timebase.PPM(d20), timebase.PPM(d5)),
		d20 <= timebase.FromPPM(0.05) && d5 <= timebase.FromPPM(0.05))
	return r, nil
}

// runFig8 regenerates Figure 8: the offset algorithm's estimates against
// naive estimates and the DAG reference over the 3-week machine-room
// ServerInt trace; the algorithm stays ~30 µs from reference.
func runFig8(opts Options) (*Report, error) {
	r := newReport("fig8", Title("fig8"))
	dur := opts.scale(3 * timebase.Week)
	sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, dur, opts.seed())
	tr, err := sim.Generate(sc)
	if err != nil {
		return nil, err
	}
	results, ex, err := engineRun(tr, defaultCfg(16))
	if err != nil {
		return nil, err
	}
	errs := offsetErrors(results, ex)

	tab := trace.NewTable("tb_day", "theta_hat_s", "theta_naive_s", "theta_ref_s")
	for k, res := range results {
		if k%4 != 0 {
			continue
		}
		thetaG := float64(ex[k].Tf)*res.ClockP + res.ClockC - ex[k].Tg
		if err := tab.Append(ex[k].Tb/timebase.Day, res.ThetaHat, res.ThetaNaive, thetaG); err != nil {
			return nil, err
		}
	}
	if err := r.save(opts, "series", tab); err != nil {
		return nil, err
	}

	settled := afterWarmup(errs, ex, timebase.Hour)
	med := stats.Median(settled)
	iqr := stats.IQR(settled)
	medAbs := medianAbs(settled)
	r.addLine("θ̂ − θ_ref after 1h: median %s, IQR %s, median |err| %s",
		timebase.FormatDuration(med), timebase.FormatDuration(iqr), timebase.FormatDuration(medAbs))

	// Naive comparison at the 90th percentile of |error|.
	var naiveAbs []float64
	for k, res := range results {
		if ex[k].TrueTf <= timebase.Hour {
			continue
		}
		thetaG := float64(ex[k].Tf)*res.ClockP + res.ClockC - ex[k].Tg
		naiveAbs = append(naiveAbs, math.Abs(res.ThetaNaive-thetaG))
	}
	var algAbs []float64
	for _, e := range settled {
		algAbs = append(algAbs, math.Abs(e))
	}
	a90 := stats.Percentile(algAbs, 90)
	n90 := stats.Percentile(naiveAbs, 90)
	r.addLine("90th pct |err|: algorithm %s vs naive %s",
		timebase.FormatDuration(a90), timebase.FormatDuration(n90))

	r.addCheck("median |error| at the tens-of-µs scale", "≤ 60µs",
		timebase.FormatDuration(medAbs), medAbs <= 60*timebase.Microsecond)
	r.addCheck("IQR small", "≤ 60µs", timebase.FormatDuration(iqr),
		iqr <= 60*timebase.Microsecond)
	r.addCheck("algorithm beats naive at 90th pct", "alg < naive",
		fmt.Sprintf("%s vs %s", timebase.FormatDuration(a90), timebase.FormatDuration(n90)),
		a90 < n90)
	r.addCheck("median shows −Δ/2 ambiguity", "−80µs…+10µs",
		timebase.FormatDuration(med), med > -80e-6 && med < 10e-6)
	return r, nil
}

package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/ensemble"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/timebase"
	"repro/internal/trace"
)

// runEnsemble demonstrates the multi-server ensemble clock beyond the
// paper: one host polls three statistically identical stratum-1 servers
// (staggered schedules, shared oscillator), and partway through the
// trace one server's clock goes wrong by several milliseconds,
// permanently. A single-server clock pointed at the faulty server
// resists through its sanity check but — by design, to avoid lock-out
// (Section 6.1) — eventually swallows a persistent server error as the
// aged sanity envelope reopens. The ensemble never does: the weighted
// median follows the two servers that agree, and the faulty server's
// sanity events dent its combining weight while the trouble lasts.
func runEnsemble(opts Options) (*Report, error) {
	r := newReport("ensemble", Title("ensemble"))
	dur := opts.scale(2 * timebase.Day)
	faultAt := 0.4 * dur
	const faultOff = 1.5 * timebase.Millisecond
	const faulty = 2 // index of the faulty server

	servers := []sim.ServerSpec{sim.ServerInt(), sim.ServerInt(), sim.ServerInt()}
	servers[faulty].Server.Faults = []netem.FaultWindow{
		{From: faultAt, To: dur + 1, Offset: faultOff},
	}
	sc := sim.NewMultiScenario(sim.MachineRoom, servers, 16, dur, opts.seed())
	tr, err := sim.GenerateMulti(sc)
	if err != nil {
		return nil, err
	}

	// Single-server references: the same engine configuration fed only
	// one server's exchanges (what a Clock pointed at it would see).
	single := func(k int) ([]float64, []sim.Exchange, error) {
		s, err := core.NewSync(defaultCfg(16))
		if err != nil {
			return nil, nil, err
		}
		ex := tr.CompletedFor(k)
		errs := make([]float64, len(ex))
		for i, e := range ex {
			res, err := s.Process(core.Input{Ta: e.Ta, Tf: e.Tf, Tb: e.Tb, Te: e.Te})
			if err != nil {
				return nil, nil, fmt.Errorf("server %d seq %d: %w", k, e.Seq, err)
			}
			errs[i] = float64(e.Tf)*res.ClockP + res.ClockC - res.ThetaHat - e.Tg
		}
		return errs, ex, nil
	}
	goodErrs, goodEx, err := single(0)
	if err != nil {
		return nil, err
	}
	faultyErrs, faultyEx, err := single(faulty)
	if err != nil {
		return nil, err
	}

	// The ensemble over all three, fed in emission order.
	cfgs := []core.Config{defaultCfg(16), defaultCfg(16), defaultCfg(16)}
	ens, err := ensemble.New(ensemble.Config{Engines: cfgs})
	if err != nil {
		return nil, err
	}
	all := tr.Completed()
	ensErrs := make([]float64, len(all))
	minFaultyWeight := math.Inf(1)
	tab := trace.NewTable("t_day", "ens_err_us", "faulty_weight")
	for i, e := range all {
		if _, err := ens.Process(e.Server, core.Input{Ta: e.Ta, Tf: e.Tf, Tb: e.Tb, Te: e.Te}); err != nil {
			return nil, fmt.Errorf("ensemble server %d seq %d: %w", e.Server, e.Seq, err)
		}
		snap := ens.TakeSnapshot(e.Tf)
		ensErrs[i] = snap.AbsoluteTime - e.Tg
		w := snap.Weights[faulty]
		if e.TrueTf > faultAt && w < minFaultyWeight {
			minFaultyWeight = w
		}
		if err := tab.Append(e.TrueTf/timebase.Day, ensErrs[i]/1e-6, w); err != nil {
			return nil, err
		}
	}
	if err := r.save(opts, "series", tab); err != nil {
		return nil, err
	}

	// Score over the settled tail (last quarter): well past the fault
	// onset AND past the single faulty clock's sanity lock-out window,
	// so "diverged" means diverged for good, not merely briefly.
	tailFrom := 0.75 * dur
	tail := func(errs []float64, at func(int) float64) []float64 {
		var out []float64
		for i := range errs {
			if at(i) > tailFrom {
				out = append(out, errs[i])
			}
		}
		return out
	}
	goodMed := medianAbs(tail(goodErrs, func(i int) float64 { return goodEx[i].TrueTf }))
	faultyMed := medianAbs(tail(faultyErrs, func(i int) float64 { return faultyEx[i].TrueTf }))
	ensMed := medianAbs(tail(ensErrs, func(i int) float64 { return all[i].TrueTf }))
	agreement := ens.Agreement(all[len(all)-1].Tf)

	r.addLine("fault: server %d off by %s from %.2f days; tail medians |err|: good single %s, faulty single %s, ensemble %s",
		faulty, timebase.FormatDuration(faultOff), faultAt/timebase.Day,
		timebase.FormatDuration(goodMed), timebase.FormatDuration(faultyMed),
		timebase.FormatDuration(ensMed))
	r.addLine("faulty server: min weight after onset %.3f (nominal 0.333); final agreement %d/3",
		minFaultyWeight, agreement)

	r.addCheck("single clock on the faulty server diverges", "≥10× good baseline",
		fmt.Sprintf("%.0fx", faultyMed/goodMed), faultyMed >= 10*goodMed)
	r.addCheck("ensemble outvotes the faulty server", "tail median ≤ 2× good baseline",
		fmt.Sprintf("%.2fx", ensMed/goodMed), ensMed <= 2*goodMed)
	r.addCheck("trust scoring dents the faulty server's weight", "min < 0.20 after onset",
		fmt.Sprintf("%.3f", minFaultyWeight), minFaultyWeight < 0.20)
	r.addCheck("faulty server excluded from final agreement", "2 of 3",
		fmt.Sprint(agreement), agreement == 2)
	return r, nil
}

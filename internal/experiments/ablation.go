package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timebase"
	"repro/internal/trace"
)

// runAblation quantifies the design choices DESIGN.md calls out by
// re-running the engine with one mechanism changed at a time. Errors are
// scored against the best-achievable target −Δ(t)/2 (the asymmetry
// ambiguity), so tracking a route change correctly is rewarded rather
// than penalized.
func runAblation(opts Options) (*Report, error) {
	r := newReport("ablation", Title("ablation"))
	dur := opts.scale(timebase.Day)

	plain := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, dur, opts.seed()+77)
	shifted := plain
	shifted.Server.Forward.Shifts = []netem.Shift{
		{At: dur / 3, Delta: 0.9 * timebase.Millisecond},
	}
	userStamps := plain
	userStamps.Host = netem.UserLevelHostStamp()

	base := defaultCfg(16)

	variants := []struct {
		name     string
		scenario sim.Scenario
		cfg      func() core.Config
	}{
		{"full algorithm", plain, func() core.Config { return base }},
		{"with local rate", plain, func() core.Config {
			c := base
			c.UseLocalRate = true
			return c
		}},
		{"window of 1 (no weighting)", plain, func() core.Config {
			c := base
			c.OffsetWindow = c.PollPeriod
			return c
		}},
		{"no aging", plain, func() core.Config {
			c := base
			c.AgingRate = 0
			return c
		}},
		{"shift detector OFF + route change", shifted, func() core.Config {
			c := base
			c.ShiftThresholdFactor = 1e9
			return c
		}},
		{"shift detector ON + route change", shifted, func() core.Config { return base }},
		{"user-level timestamps", userStamps, func() core.Config {
			c := base
			c.Delta = 50 * timebase.Microsecond
			return c
		}},
	}

	asymAt := func(sc sim.Scenario, t float64) float64 {
		minOf := func(cfg netem.PathConfig) float64 {
			m := cfg.MinDelay
			for _, s := range cfg.Shifts {
				if t >= s.At && (s.Duration <= 0 || t < s.At+s.Duration) {
					m += s.Delta
				}
			}
			return math.Max(m, 0)
		}
		return minOf(sc.Server.Forward) - minOf(sc.Server.Backward)
	}

	tab := trace.NewTable("variant", "median_us", "p99_us")
	results := map[string][2]float64{}
	for i, v := range variants {
		tr, err := sim.Generate(v.scenario)
		if err != nil {
			return nil, err
		}
		res, ex, err := engineRun(tr, v.cfg())
		if err != nil {
			return nil, fmt.Errorf("ablation %q: %w", v.name, err)
		}
		var absErrs []float64
		for k := range res {
			if ex[k].TrueTf <= timebase.Hour {
				continue
			}
			thetaG := float64(ex[k].Tf)*res[k].ClockP + res[k].ClockC - ex[k].Tg
			target := -asymAt(v.scenario, ex[k].TrueTf) / 2
			absErrs = append(absErrs, math.Abs(res[k].ThetaHat-thetaG-target))
		}
		sorted := stats.NewSorted(absErrs) // one sort for both quantiles
		med := sorted.Median()
		p99 := sorted.Percentile(99)
		results[v.name] = [2]float64{med, p99}
		if err := tab.Append(float64(i), med/1e-6, p99/1e-6); err != nil {
			return nil, err
		}
		r.addLine("%-36s median %-10s p99 %s", v.name,
			timebase.FormatDuration(med), timebase.FormatDuration(p99))
	}
	if err := r.save(opts, "variants", tab); err != nil {
		return nil, err
	}

	full := results["full algorithm"]
	noW := results["window of 1 (no weighting)"]
	detOff := results["shift detector OFF + route change"]
	detOn := results["shift detector ON + route change"]
	user := results["user-level timestamps"]

	r.addCheck("weighted window improves tails", "p99(full) < p99(window=1)",
		fmt.Sprintf("%s vs %s", timebase.FormatDuration(full[1]), timebase.FormatDuration(noW[1])),
		full[1] < noW[1])
	r.addCheck("shift detector essential under route change", "median ≥ 10x better",
		fmt.Sprintf("%s vs %s", timebase.FormatDuration(detOn[0]), timebase.FormatDuration(detOff[0])),
		detOff[0] >= 10*detOn[0])
	r.addCheck("user-level stamping works at higher variance",
		"median within 10x of driver-level",
		fmt.Sprintf("%s vs %s", timebase.FormatDuration(user[0]), timebase.FormatDuration(full[0])),
		user[0] < 10*full[0])
	return r, nil
}

package experiments

import (
	"runtime"
	"testing"
)

// runLongRunDays runs the longrun experiment at the given trace length
// with a GC fence before it, asserting every shape check, and returns
// the sampled peak-heap watermark.
func runLongRunDays(t *testing.T, days float64) uint64 {
	t.Helper()
	runtime.GC()
	rep, err := Run("longrun", Options{LongRunDays: days})
	if err != nil {
		t.Fatalf("longrun %gd: %v", days, err)
	}
	for _, c := range rep.Checks {
		if !c.Pass {
			t.Errorf("longrun %gd check %q: want %s, got %s", days, c.Name, c.Want, c.Got)
		}
	}
	if rep.PeakHeap == 0 {
		t.Fatalf("longrun %gd did not sample its heap watermark", days)
	}
	return rep.PeakHeap
}

// TestLongRunConstantMemory is the CI gate on the streaming pipeline's
// reason to exist: peak heap must not grow with trace length. It
// compares runs 4× apart in packet count (12 vs 48 days of simulated
// ServerInt polling, 64 800 vs 259 200 packets end to end through
// generation, the engine, the online statistics and the windowed
// series), both past the watermark's plateau: by ~day 10 the bounded
// accumulators (the 32k exact-prefix quantile buffer, the one-day Allan
// ring, the decimated previews) have reached their fixed ceilings and
// the watermark sits at the GC overshoot over a ~0.25 MB live set, flat
// in further length. Materializing either the trace (~100 B/exchange)
// or the error series for sorting would scale the 48-day run by the
// extra ~194 000 packets (tens of MB) and trip the bound; watermark
// noise stays well inside the slack.
func TestLongRunConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-week streaming runs take a few seconds")
	}
	peakShort := runLongRunDays(t, 12)
	peakLong := runLongRunDays(t, 48)
	const slack = 8 << 20
	t.Logf("peak heap: 12 days %.2f MB, 48 days %.2f MB",
		float64(peakShort)/(1<<20), float64(peakLong)/(1<<20))
	if peakLong > peakShort+slack {
		t.Errorf("peak heap grew with trace length: 12d %d B vs 48d %d B (slack %d B)",
			peakShort, peakLong, slack)
	}
}

package experiments

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timebase"
)

// TestSeedRobustness verifies the headline accuracy claim is not an
// artifact of one random realization: across independent seeds, the
// median offset error stays in the tens-of-µs band and the rate estimate
// within the hardware bound.
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range []uint64{3, 1009, 77777, 424243, 998877} {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, timebase.Day, seed)
			tr, err := sim.Generate(sc)
			if err != nil {
				t.Fatal(err)
			}
			results, ex, err := engineRun(tr, defaultCfg(16))
			if err != nil {
				t.Fatal(err)
			}
			settled := afterWarmup(offsetErrors(results, ex), ex, timebase.Hour)
			med := stats.Median(settled)
			if med < -100e-6 || med > 10e-6 {
				t.Errorf("seed %d: median offset error %v outside the band", seed, med)
			}
			if iqr := stats.IQR(settled); iqr > 80e-6 {
				t.Errorf("seed %d: IQR %v", seed, iqr)
			}
			trueP := tr.Osc.MeanPeriod()
			if e := math.Abs(results[len(results)-1].PHat/trueP - 1); e > timebase.FromPPM(0.1) {
				t.Errorf("seed %d: rate error %v PPM", seed, timebase.PPM(e))
			}
		})
	}
}

// TestEnvironmentRobustness runs the engine across all six
// environment-server combinations on one seed and requires calibrated
// operation everywhere (medians bounded by each path's asymmetry plus a
// noise allowance).
func TestEnvironmentRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("environment sweep")
	}
	for _, env := range []sim.Environment{sim.Laboratory, sim.MachineRoom} {
		for _, spec := range []sim.ServerSpec{sim.ServerLoc(), sim.ServerInt(), sim.ServerExt()} {
			env, spec := env, spec
			t.Run(env.String()+"-"+spec.Name, func(t *testing.T) {
				t.Parallel()
				sc := sim.NewScenario(env, spec, 64, timebase.Day, 55)
				tr, err := sim.Generate(sc)
				if err != nil {
					t.Fatal(err)
				}
				results, ex, err := engineRun(tr, defaultCfg(64))
				if err != nil {
					t.Fatal(err)
				}
				settled := afterWarmup(offsetErrors(results, ex), ex, 2*timebase.Hour)
				med := stats.Median(settled)
				bound := spec.Asymmetry()/2 + 60e-6
				if math.Abs(med) > bound {
					t.Errorf("median %v exceeds asymmetry+noise bound %v", med, bound)
				}
			})
		}
	}
}

package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/ensemble"
	"repro/internal/sim"
	"repro/internal/timebase"
	"repro/internal/trace"
)

// asymExtra is the differential forward-path delay injected into the
// asym experiment's first two servers. Its one-way bias, asymExtra/2
// (the engine splits the extra minimum RTT evenly, so the extra forward
// delay pushes the calibrated clock late), is invisible to any
// single-path filter (paper §2.3) but large against the machine-room
// noise floor, so the combined clock's tail error is dominated by where
// the median lands among the biased clocks.
const asymExtra = 200 * timebase.Microsecond

// runAsym proves the damped path-asymmetry correction on the scenario
// it exists for: three ServerInt-class upstreams of which TWO share an
// extra forward-path delay. Each biased server's clock silently reads
// asymExtra/2 late while staying healthy by every single-path quality
// signal, so the biased pair holds the weighted median and the
// uncorrected combined clock inherits nearly the full bias. The
// selection sweep's interval intersection still spans all three
// servers, and its midpoint splits the camps — exactly the consensus
// the correction transfers onto each clock: corrected, all three
// converge toward the midpoint and the combined clock gives back about
// half the differential bias. The experiment runs the identical trace
// corrected and uncorrected (the ablation switch), plus a symmetric
// control where the correction must do no harm.
func runAsym(opts Options) (*Report, error) {
	r := newReport("asym", Title("asym"))
	dur := opts.scale(2 * timebase.Day)
	tailFrom := 0.75 * dur

	gen := func(extra []float64) (*sim.MultiTrace, error) {
		sc := sim.NewAsymmetricScenario(sim.MachineRoom, extra, 16, dur, opts.seed())
		return sim.GenerateMulti(sc)
	}
	biased, err := gen([]float64{asymExtra, asymExtra, 0})
	if err != nil {
		return nil, err
	}
	// The symmetric control: identical draws, no differential asymmetry.
	symm, err := gen([]float64{0, 0, 0})
	if err != nil {
		return nil, err
	}
	nSrv := 3

	type runOut struct {
		errs []float64 // combined absolute-clock error per exchange
		ex   []sim.MultiExchange
		ens  *ensemble.Ensemble
	}
	run := func(tr *sim.MultiTrace, corrected bool) (*runOut, error) {
		cfgs := make([]core.Config, nSrv)
		for i := range cfgs {
			cfgs[i] = defaultCfg(16)
		}
		ens, err := ensemble.New(ensemble.Config{Engines: cfgs, AsymCorrection: corrected})
		if err != nil {
			return nil, err
		}
		out := &runOut{ens: ens, ex: tr.Completed()}
		out.errs = make([]float64, len(out.ex))
		for i, e := range out.ex {
			if _, err := ens.Process(e.Server, core.Input{Ta: e.Ta, Tf: e.Tf, Tb: e.Tb, Te: e.Te}); err != nil {
				return nil, fmt.Errorf("server %d seq %d: %w", e.Server, e.Seq, err)
			}
			out.errs[i] = ens.TakeSnapshot(e.Tf).AbsoluteTime - e.Tg
		}
		return out, nil
	}

	corr, err := run(biased, true)
	if err != nil {
		return nil, err
	}
	uncorr, err := run(biased, false)
	if err != nil {
		return nil, err
	}
	symmCorr, err := run(symm, true)
	if err != nil {
		return nil, err
	}
	symmUncorr, err := run(symm, false)
	if err != nil {
		return nil, err
	}

	// Series artifact: corrected vs uncorrected on the identical biased
	// trace, exchange-aligned.
	tab := trace.NewTable("t_day", "corr_err_us", "uncorr_err_us")
	for i, e := range corr.ex {
		if err := tab.Append(e.TrueTf/timebase.Day,
			corr.errs[i]/timebase.Microsecond, uncorr.errs[i]/timebase.Microsecond); err != nil {
			return nil, err
		}
	}
	if err := r.save(opts, "series", tab); err != nil {
		return nil, err
	}

	tail := func(o *runOut) []float64 {
		var out []float64
		for i := range o.errs {
			if o.ex[i].TrueTf > tailFrom {
				out = append(out, o.errs[i])
			}
		}
		return out
	}
	corrMed := medianAbs(tail(corr))
	uncorrMed := medianAbs(tail(uncorr))
	symmCorrMed := medianAbs(tail(symmCorr))
	symmUncorrMed := medianAbs(tail(symmUncorr))

	// Steady-state per-server view of the corrected run: applied
	// corrections, their clamps, and the selection result.
	states := corr.ens.ServerStates()
	worstSymmCorr := 0.0
	for _, st := range symmCorr.ens.ServerStates() {
		if c := math.Abs(st.AsymCorrection); c > worstSymmCorr {
			worstSymmCorr = c
		}
	}
	r.addLine("servers 0,1 carry %s extra forward delay (one-way bias %s); server 2 symmetric",
		timebase.FormatDuration(asymExtra), timebase.FormatDuration(asymExtra/2))
	r.addLine("tail medians |err|: corrected %s, uncorrected %s (%.2fx); symmetric control %s vs %s",
		timebase.FormatDuration(corrMed), timebase.FormatDuration(uncorrMed), corrMed/uncorrMed,
		timebase.FormatDuration(symmCorrMed), timebase.FormatDuration(symmUncorrMed))
	for k, st := range states {
		r.addLine("server %d: correction %s (hint %s), selected %v",
			k, timebase.FormatDuration(st.AsymCorrection), timebase.FormatDuration(st.AsymmetryHint), st.Selected)
	}

	// The CI gate: the corrected combined clock is strictly tighter on
	// the asymmetric trace. The biased pair holds the median, so the
	// correction recovers about half the differential bias; 0.8x leaves
	// headroom for noise while rejecting a correction that does nothing.
	r.addCheck("correction tightens the asymmetric-path clock", "corrected tail median ≤ 0.8× uncorrected",
		fmt.Sprintf("%.2fx", corrMed/uncorrMed), corrMed <= 0.8*uncorrMed)
	r.addCheck("correction is harmless on symmetric paths", "symmetric tail median ≤ 1.1× uncorrected",
		fmt.Sprintf("%.2fx", symmCorrMed/symmUncorrMed), symmCorrMed <= 1.1*symmUncorrMed)
	r.addCheck("correction signs match the injected asymmetry", "servers 0,1 positive (late), server 2 negative",
		fmt.Sprintf("%s %s %s", timebase.FormatDuration(states[0].AsymCorrection),
			timebase.FormatDuration(states[1].AsymCorrection), timebase.FormatDuration(states[2].AsymCorrection)),
		states[0].AsymCorrection > 0 && states[1].AsymCorrection > 0 && states[2].AsymCorrection < 0)
	r.addCheck("symmetric corrections stay near zero", "max |correction| < bias/4 on the control",
		timebase.FormatDuration(worstSymmCorr), worstSymmCorr < asymExtra/8)
	allSelected := true
	for _, st := range states {
		if !st.Selected {
			allSelected = false
		}
	}
	r.addCheck("no server is convicted for its asymmetry", "all three selected at steady state",
		fmt.Sprintf("selected=%v", allSelected), allSelected)
	return r, nil
}

package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/ensemble"
	"repro/internal/sim"
	"repro/internal/timebase"
	"repro/internal/trace"
)

// runSelect demonstrates why the ensemble's interval-intersection
// selection stage exists: the trust-weighted median alone has a
// *weight*-based breakdown point, so two colluding servers on clean
// low-jitter paths — which the quality-driven trust scorer rewards with
// more than half the total weight — can drag the combined clock by
// their full lie without ever tripping a single-path quality signal.
// The selection sweep is *count*-based: each server asserts a
// correctness interval, only the largest mutually-intersecting majority
// keeps its vote, and the colluding pair's intervals never reach the
// honest majority's. The same sweep yields the asymmetry diagnostic:
// each server's signed disagreement against the selected-set midpoint,
// which localizes the lie on the pair (and, for honest servers, the
// path-asymmetry error no single path can observe about itself,
// paper §2.3).
func runSelect(opts Options) (*Report, error) {
	r := newReport("select", Title("select"))
	dur := opts.scale(2 * timebase.Day)
	const lie = 1.5 * timebase.Millisecond

	gen := func(offset float64) (*sim.MultiTrace, error) {
		sc := sim.NewColludingScenario(sim.MachineRoom, offset, 16, dur, opts.seed())
		return sim.GenerateMulti(sc)
	}
	adv, err := gen(lie)
	if err != nil {
		return nil, err
	}
	// The all-good control: identical scenario, identical draws, no lie.
	good, err := gen(0)
	if err != nil {
		return nil, err
	}
	nSrv := len(adv.Scenario.Servers)
	colluder := func(k int) bool { return k >= sim.ColludingHonest }

	// One run of the combined clock over a trace: per-exchange absolute
	// errors plus the tail-steady-state selection diagnostics.
	type runOut struct {
		errs      []float64 // combined absolute-clock error per exchange
		fticks    []int     // falseticker count per exchange
		collW     []float64 // summed colluder weight per exchange
		ex        []sim.MultiExchange
		ens       *ensemble.Ensemble
		tailSnaps int // snapshots in the tail window
		tailBoth  int // ... with both colluders excluded
		maxCollW  float64
	}
	tailFrom := 0.75 * dur
	run := func(tr *sim.MultiTrace, disable bool) (*runOut, error) {
		cfgs := make([]core.Config, nSrv)
		for i := range cfgs {
			cfgs[i] = defaultCfg(16)
		}
		ens, err := ensemble.New(ensemble.Config{Engines: cfgs, DisableSelection: disable})
		if err != nil {
			return nil, err
		}
		out := &runOut{ens: ens, ex: tr.Completed()}
		out.errs = make([]float64, len(out.ex))
		out.fticks = make([]int, len(out.ex))
		out.collW = make([]float64, len(out.ex))
		for i, e := range out.ex {
			if _, err := ens.Process(e.Server, core.Input{Ta: e.Ta, Tf: e.Tf, Tb: e.Tb, Te: e.Te}); err != nil {
				return nil, fmt.Errorf("server %d seq %d: %w", e.Server, e.Seq, err)
			}
			snap := ens.TakeSnapshot(e.Tf)
			out.errs[i] = snap.AbsoluteTime - e.Tg
			out.fticks[i] = snap.Falsetickers
			both := true
			for k := 0; k < nSrv; k++ {
				if !colluder(k) {
					continue
				}
				out.collW[i] += snap.Weights[k]
				if snap.Selected[k] {
					both = false
				}
			}
			if e.TrueTf <= tailFrom {
				continue
			}
			out.tailSnaps++
			if out.collW[i] > out.maxCollW {
				out.maxCollW = out.collW[i]
			}
			if both {
				out.tailBoth++
			}
		}
		return out, nil
	}

	base, err := run(good, false)
	if err != nil {
		return nil, err
	}
	sel, err := run(adv, false)
	if err != nil {
		return nil, err
	}
	med, err := run(adv, true)
	if err != nil {
		return nil, err
	}

	// The series artifact: selection vs median-only on the adversarial
	// trace, exchange-aligned (same trace, same completions).
	tab := trace.NewTable("t_day", "sel_err_us", "med_err_us", "falsetickers", "colluder_w")
	for i, e := range sel.ex {
		if err := tab.Append(e.TrueTf/timebase.Day, sel.errs[i]/1e-6, med.errs[i]/1e-6,
			float64(sel.fticks[i]), sel.collW[i]); err != nil {
			return nil, err
		}
	}
	if err := r.save(opts, "series", tab); err != nil {
		return nil, err
	}

	tail := func(o *runOut) []float64 {
		var out []float64
		for i := range o.errs {
			if o.ex[i].TrueTf > tailFrom {
				out = append(out, o.errs[i])
			}
		}
		return out
	}
	goodMed := medianAbs(tail(base))
	selMed := medianAbs(tail(sel))
	medMed := medianAbs(tail(med))

	// Final steady-state view of the selection run.
	last := sel.ens.TakeSnapshot(sel.ex[len(sel.ex)-1].Tf)
	worstHonestHint, minCollHint := 0.0, math.Inf(1)
	for k := 0; k < nSrv; k++ {
		h := math.Abs(last.AsymmetryHint[k])
		if colluder(k) {
			if h < minCollHint {
				minCollHint = h
			}
		} else if h > worstHonestHint {
			worstHonestHint = h
		}
	}

	r.addLine("colluding pair (servers %d,%d) lies by %s over clean paths; tail medians |err|: all-good baseline %s, selection %s, median-only %s",
		sim.ColludingHonest, nSrv-1, timebase.FormatDuration(lie),
		timebase.FormatDuration(goodMed), timebase.FormatDuration(selMed), timebase.FormatDuration(medMed))
	r.addLine("steady state: colluders excluded in %d/%d tail snapshots, max colluder weight %.4f, falsetickers %d/%d",
		sel.tailBoth, sel.tailSnaps, sel.maxCollW, last.Falsetickers, nSrv)
	r.addLine("asymmetry hints: colluders ≥ %s (the lie localized), honest ≤ %s",
		timebase.FormatDuration(minCollHint), timebase.FormatDuration(worstHonestHint))

	r.addCheck("selection holds the all-good baseline", "tail median ≤ 1.5× baseline",
		fmt.Sprintf("%.2fx", selMed/goodMed), selMed <= 1.5*goodMed)
	r.addCheck("median-only combiner degrades", "tail median ≥ 5× baseline",
		fmt.Sprintf("%.0fx", medMed/goodMed), medMed >= 5*goodMed)
	r.addCheck("colluders are falsetickers at steady state", "excluded in every tail snapshot",
		fmt.Sprintf("%d/%d", sel.tailBoth, sel.tailSnaps), sel.tailSnaps > 0 && sel.tailBoth == sel.tailSnaps)
	r.addCheck("falsetickers hold zero weight", "max colluder weight 0",
		fmt.Sprintf("%.4f", sel.maxCollW), sel.maxCollW == 0)
	r.addCheck("asymmetry hint localizes the lie", "colluders ≥ lie/2, honest < lie/5",
		fmt.Sprintf("%s vs %s", timebase.FormatDuration(minCollHint), timebase.FormatDuration(worstHonestHint)),
		minCollHint >= lie/2 && worstHonestHint < lie/5)
	return r, nil
}

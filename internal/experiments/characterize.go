package experiments

import (
	"fmt"
	"math"

	"repro/internal/allan"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timebase"
	"repro/internal/trace"
)

// The detrended offset series of Section 3.1 — θ(t_i) = Tf_i·p̄ − Tg_i
// with p̄ chosen so first and last offsets agree (forced to zero) — is
// computed in two streaming passes: the anchors pass finds the first
// and last completed exchange (p̄ needs both ends), then the emit pass
// regenerates the identical stream and folds one (Tg, θ) pair at a
// time. Nothing is materialized, so a multi-week characterization runs
// at constant memory; the arithmetic is the one the old batch helper
// performed, term for term. With corrected=true the paper's corrected
// receive stamps are used (Figure 3); otherwise the raw ones (Figure 2,
// whose µs-scale irregularities the paper attributes to exactly this).

func detrendStamp(e sim.Exchange, corrected bool) uint64 {
	if corrected {
		return e.TfCorr
	}
	return e.Tf
}

// detrendAnchors streams the scenario once and returns its first and
// last completed exchanges plus the detrending period p̄.
func detrendAnchors(sc sim.Scenario, corrected bool) (first, last sim.Exchange, pBar float64, err error) {
	st, err := sim.NewStream(sc)
	if err != nil {
		return sim.Exchange{}, sim.Exchange{}, 0, err
	}
	st.SetTrim(true)
	n := 0
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		if e.Lost {
			continue
		}
		if n == 0 {
			first = e
		}
		last = e
		n++
	}
	if n < 2 {
		return sim.Exchange{}, sim.Exchange{}, 0, fmt.Errorf("experiments: %s: %d completed exchanges, need 2", sc.Name, n)
	}
	pBar = (last.Tg - first.Tg) / float64(detrendStamp(last, corrected)-detrendStamp(first, corrected))
	return first, last, pBar, nil
}

// detrendStream streams the scenario a second time and emits each
// completed exchange's (Tg, θ) to fn in order.
func detrendStream(sc sim.Scenario, corrected bool, fn func(tg, theta float64) error) error {
	first, _, pBar, err := detrendAnchors(sc, corrected)
	if err != nil {
		return err
	}
	return detrendEmit(sc, corrected, first, pBar, fn)
}

// detrendEmit is detrendStream's second pass with the anchors already
// known, for callers that needed them to size downstream folds.
func detrendEmit(sc sim.Scenario, corrected bool, first sim.Exchange, pBar float64, fn func(tg, theta float64) error) error {
	st, err := sim.NewStream(sc)
	if err != nil {
		return err
	}
	st.SetTrim(true)
	for {
		e, ok := st.Next()
		if !ok {
			return nil
		}
		if e.Lost {
			continue
		}
		theta := float64(detrendStamp(e, corrected)-detrendStamp(first, corrected))*pBar - (e.Tg - first.Tg)
		if err := fn(e.Tg, theta); err != nil {
			return err
		}
	}
}

// runFig2 regenerates Figure 2: offset drift of the uncorrected TSC
// clock in the laboratory and machine-room environments, over a 1000 s
// zoom and the full trace, with the ±0.1 PPM cone as the bound.
func runFig2(opts Options) (*Report, error) {
	r := newReport("fig2", Title("fig2"))
	dur := opts.scale(timebase.Week)

	for _, env := range []sim.Environment{sim.Laboratory, sim.MachineRoom} {
		sc := sim.NewScenario(env, sim.ServerInt(), 16, dur, opts.seed())
		sink, err := r.newSeries(opts, env.String(), "t_s", "offset_s")
		if err != nil {
			return nil, err
		}

		// The cone check: from the detrended origin, |θ(t)| must stay
		// within 0.1 PPM · elapsed (plus timestamping noise floor). The
		// 1000 s SKM head is the one bounded buffer (its size is set by
		// the poll period, not the trace length); everything else folds.
		cone := timebase.FromPPM(0.1)
		floor := 25 * timebase.Microsecond
		worstRatio := 0.0
		maxAbs := 0.0
		var t0 float64
		var headTs, headTh []float64
		i := 0
		err = detrendStream(sc, false, func(tg, theta float64) error {
			if i == 0 {
				t0 = tg
			}
			if i%8 == 0 {
				if err := sink.Append(tg, theta); err != nil {
					return err
				}
			}
			i++
			el := tg - t0
			if el < 1000 {
				headTs = append(headTs, tg)
				headTh = append(headTh, theta)
				return nil
			}
			if a := math.Abs(theta); a > maxAbs {
				maxAbs = a
			}
			if ratio := math.Abs(theta) / (cone*el + floor); ratio > worstRatio {
				worstRatio = ratio
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if err := sink.Close(); err != nil {
			return nil, err
		}
		r.addLine("%-4s max |offset drift| %s over %s (worst cone ratio %.2f)",
			env, timebase.FormatDuration(maxAbs), timebase.FormatDuration(dur), worstRatio)
		r.addCheck(fmt.Sprintf("%s drift inside 0.1 PPM cone", env),
			"ratio <= 1", fmt.Sprintf("%.2f", worstRatio), worstRatio <= 1)

		// Over the first 1000 s the SKM holds: the residual after the
		// best local linear fit is dominated by µs timestamping noise.
		res := maxResidualAfterLinearFit(headTs, headTh)
		r.addLine("%-4s SKM residual over first 1000s: %s", env, timebase.FormatDuration(res))
		r.addCheck(fmt.Sprintf("%s SKM residual (1000s) < 30µs", env),
			"< 30µs", timebase.FormatDuration(res), res < 30*timebase.Microsecond)
	}
	return r, nil
}

// maxResidualAfterLinearFit returns the maximum absolute residual of ys
// about their least-squares line in ts.
func maxResidualAfterLinearFit(ts, ys []float64) float64 {
	n := float64(len(ts))
	if n < 2 {
		return 0
	}
	var st, sy, stt, sty float64
	for i := range ts {
		st += ts[i]
		sy += ys[i]
		stt += ts[i] * ts[i]
		sty += ts[i] * ys[i]
	}
	den := n*stt - st*st
	if den == 0 {
		return 0
	}
	b := (n*sty - st*sy) / den
	a := (sy - b*st) / n
	worst := 0.0
	for i := range ts {
		if r := math.Abs(ys[i] - (a + b*ts[i])); r > worst {
			worst = r
		}
	}
	return worst
}

// runFig3 regenerates Figure 3: Allan deviation curves for the four
// host-server environments. The shape checks are the paper's hardware
// characterization: a 1/τ small-scale zone, a minimum near 0.01 PPM
// around τ* = 1000 s, and a large-scale rise bounded by 0.1 PPM with the
// laboratory above the machine room.
func runFig3(opts Options) (*Report, error) {
	r := newReport("fig3", Title("fig3"))
	dur := opts.scale(timebase.Week)

	type envCase struct {
		name string
		env  sim.Environment
		spec sim.ServerSpec
	}
	cases := []envCase{
		{"Lab-Int", sim.Laboratory, sim.ServerInt()},
		{"MR-Int", sim.MachineRoom, sim.ServerInt()},
		{"MR-Loc", sim.MachineRoom, sim.ServerLoc()},
		{"MR-Ext", sim.MachineRoom, sim.ServerExt()},
	}

	curves := map[string][]allan.Point{}
	for i, c := range cases {
		sc := sim.NewScenario(c.env, c.spec, 16, dur, opts.seed()+uint64(100+i))
		// Streaming stability analysis: the anchors pass sizes the
		// batch-identical scale grid from the trace's time span, then the
		// emit pass pushes each detrended offset through the resampler
		// straight into the online Allan fold — the series is never
		// resident, and the fold's ring is bounded by the largest scale.
		first, last, pBar, err := detrendAnchors(sc, true)
		if err != nil {
			return nil, err
		}
		nUniform := int((last.Tg-first.Tg)/sc.PollPeriod) + 1
		grid, err := allan.CurveGrid(nUniform, 4)
		if err != nil {
			return nil, err
		}
		fold, err := allan.NewFold(sc.PollPeriod, grid)
		if err != nil {
			return nil, err
		}
		res, err := allan.NewResampler(sc.PollPeriod, func(v float64) error {
			fold.Add(v)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if err := detrendEmit(sc, true, first, pBar, res.Push); err != nil {
			return nil, err
		}
		if err := res.Finish(); err != nil {
			return nil, err
		}
		pts := fold.Points()
		curves[c.name] = pts

		tab := trace.NewTable("tau_s", "allan_dev")
		for _, p := range pts {
			if err := tab.Append(p.Tau, p.Deviation); err != nil {
				return nil, err
			}
		}
		if err := r.save(opts, c.name, tab); err != nil {
			return nil, err
		}
		r.addLine("%-8s min deviation %.4f PPM at τ=%s; max %.4f PPM",
			c.name, timebase.PPM(minDev(pts)), timebase.FormatDuration(minDevTau(pts)),
			timebase.PPM(maxDevAbove(pts, 100)))
	}

	for name, pts := range curves {
		// 1/τ zone: deviation at τ≈256 s about 8x below τ≈32 s.
		d32, d256 := devNear(pts, 32), devNear(pts, 256)
		ratio := d32 / d256
		r.addCheck(name+" small-scale 1/τ slope", "ratio ∈ [4,16]",
			fmt.Sprintf("%.1f", ratio), ratio > 4 && ratio < 16)
		// Precision achievable near τ*: of the order of 0.01 PPM.
		dTauStar := devNear(pts, 1000)
		r.addCheck(name+" precision near τ* ≈0.01 PPM", "≤0.04 PPM",
			fmt.Sprintf("%.3f PPM", timebase.PPM(dTauStar)),
			dTauStar <= timebase.FromPPM(0.04))
		// SKM fails past τ*: the curve turns up as wander enters.
		dPast := devNear(pts, 4000)
		r.addCheck(name+" curve rises past τ* (SKM fails)", "dev(4000s) ≥ 0.8·dev(1000s)",
			fmt.Sprintf("%.3f vs %.3f PPM", timebase.PPM(dPast), timebase.PPM(dTauStar)),
			dPast >= 0.8*dTauStar)
		// Global stability bound.
		maxD := maxDevAbove(pts, 500)
		r.addCheck(name+" bounded by 0.1 PPM (τ>500s)", "≤0.1 PPM",
			fmt.Sprintf("%.3f PPM", timebase.PPM(maxD)), maxD <= timebase.FromPPM(0.1))
	}
	// Laboratory above machine room at large scales.
	lab, mr := curves["Lab-Int"], curves["MR-Int"]
	tauBig := math.Min(lab[len(lab)-1].Tau, mr[len(mr)-1].Tau) / 2
	labD, mrD := devNear(lab, tauBig), devNear(mr, tauBig)
	r.addCheck("laboratory above machine room at large τ",
		"Lab ≥ MR", fmt.Sprintf("%.3f vs %.3f PPM", timebase.PPM(labD), timebase.PPM(mrD)),
		labD >= mrD*0.95)
	return r, nil
}

func minDev(pts []allan.Point) float64 {
	m := math.Inf(1)
	for _, p := range pts {
		if p.Deviation < m {
			m = p.Deviation
		}
	}
	return m
}

func minDevTau(pts []allan.Point) float64 {
	m, tau := math.Inf(1), 0.0
	for _, p := range pts {
		if p.Deviation < m {
			m = p.Deviation
			tau = p.Tau
		}
	}
	return tau
}

func maxDevAbove(pts []allan.Point, tauMin float64) float64 {
	m := 0.0
	for _, p := range pts {
		if p.Tau >= tauMin && p.Deviation > m {
			m = p.Deviation
		}
	}
	return m
}

func devNear(pts []allan.Point, tau float64) float64 {
	best, bestDist := 0.0, math.Inf(1)
	for _, p := range pts {
		if d := math.Abs(math.Log(p.Tau / tau)); d < bestDist {
			bestDist = d
			best = p.Deviation
		}
	}
	return best
}

// runFig4 regenerates Figure 4: representative backward network delay
// and server delay series (1000 successive packets, machine room with
// the local server), computed exactly as the paper computes them:
// d←(i) = Tg_i − Te_i and d↑(i) = Te_i − Tb_i.
func runFig4(opts Options) (*Report, error) {
	r := newReport("fig4", Title("fig4"))
	sc := sim.NewScenario(sim.MachineRoom, sim.ServerLoc(), 16, 1100*16, opts.seed())
	// The figure wants exactly 1000 successive packets: pull them from
	// the stream and stop — the bounded sample is the working set, and
	// the generator never runs past what the figure consumes.
	st, err := sim.NewStream(sc)
	if err != nil {
		return nil, err
	}
	st.SetTrim(true)

	var back, srv []float64
	tab := trace.NewTable("te_s", "backward_delay_s", "server_delay_s")
	for len(back) < 1000 {
		e, ok := st.Next()
		if !ok {
			break
		}
		if e.Lost {
			continue
		}
		b := e.Tg - e.Te
		s := e.Te - e.Tb
		back = append(back, b)
		srv = append(srv, s)
		if err := tab.Append(e.Te, b, s); err != nil {
			return nil, err
		}
	}
	if err := r.save(opts, "series", tab); err != nil {
		return nil, err
	}

	bMin, bMax := stats.MinMax(back)
	sMin, sMax := stats.MinMax(srv)
	bSorted, sSorted := stats.NewSorted(back), stats.NewSorted(srv) // one sort each
	b05, bMed, sMed := bSorted.Percentile(5), bSorted.Median(), sSorted.Median()
	r.addLine("backward delay: min %s p05 %s median %s max %s",
		timebase.FormatDuration(bMin), timebase.FormatDuration(b05),
		timebase.FormatDuration(bMed), timebase.FormatDuration(bMax))
	r.addLine("server delay:   min %s median %s max %s",
		timebase.FormatDuration(sMin), timebase.FormatDuration(sMed), timebase.FormatDuration(sMax))

	// Note: Tg − Te can go *negative* on rare packets — the paper's own
	// observation that server departure stamps Te can exceed true
	// departure by up to ~1 ms (Section 4.2) — so the deterministic
	// minimum is probed with a low percentile, not the raw minimum.
	r.addCheck("backward delay p05 near d< (~156µs)", "130–250µs",
		timebase.FormatDuration(b05), b05 > 130e-6 && b05 < 250e-6)
	r.addCheck("Te outliers bounded (paper: up to ~1ms)", "min ≥ −1.5ms",
		timebase.FormatDuration(bMin), bMin >= -1.5e-3)
	r.addCheck("server delay min in µs range", "2–50µs",
		timebase.FormatDuration(sMin), sMin > 2e-6 && sMin < 50e-6)
	r.addCheck("server delays ≪ network delays (medians)", "ratio > 3",
		fmt.Sprintf("%.1f", bMed/sMed), bMed > 3*sMed)
	return r, nil
}

// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment builds its workload with internal/sim,
// runs the algorithms of internal/core (and internal/swntp for the
// baseline), and reports the same rows or series the paper reports,
// together with shape checks: who wins, by roughly what factor, where
// the crossovers fall. Absolute numbers differ from the paper's testbed;
// EXPERIMENTS.md records paper-vs-measured for each item.
//
// Run from the command line with `go run ./cmd/experiments -run fig12`,
// or through the benchmark harness in the repository root.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timebase"
	"repro/internal/trace"
)

// Options control experiment execution.
type Options struct {
	// Seed selects the deterministic realization; 0 means the default.
	Seed uint64
	// Quick shrinks trace durations ~8x for CI and benchmark use. The
	// shapes under test survive; the statistics get noisier.
	Quick bool
	// OutputDir, when non-empty, receives TSV artifacts of each series.
	// Streamed series write row by row as the experiment runs; only a
	// bounded decimated preview is kept in memory for plotting.
	OutputDir string
	// LongRunDays overrides the longrun experiment's trace length in
	// days (0 = the default 21; Quick scaling still applies).
	LongRunDays float64
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 20041025 // the paper's presentation date at IMC'04
	}
	return o.Seed
}

// scale shrinks a duration in Quick mode, with a floor to keep windows
// meaningful.
func (o Options) scale(d float64) float64 {
	if !o.Quick {
		return d
	}
	s := d / 8
	if s < 6*timebase.Hour {
		s = 6 * timebase.Hour
	}
	if s > d {
		s = d
	}
	return s
}

// Check is one shape assertion: a property of the paper's result that
// the reproduction must preserve.
type Check struct {
	Name string
	Want string
	Got  string
	Pass bool
}

// Report is the output of one experiment.
type Report struct {
	ID     string
	Title  string
	Lines  []string
	Checks []Check
	Tables map[string]*trace.Table

	// PeakHeap is the peak live-heap watermark (bytes) sampled while
	// the experiment ran. Only streaming experiments that sample it set
	// it (longrun); the constant-memory regression gates read it.
	PeakHeap uint64
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Tables: map[string]*trace.Table{}}
}

func (r *Report) addLine(format string, args ...interface{}) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Report) addCheck(name, want, got string, pass bool) {
	r.Checks = append(r.Checks, Check{Name: name, Want: want, Got: got, Pass: pass})
}

// Passed reports whether every check passed.
func (r *Report) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Render formats the report for terminal output.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		fmt.Fprintf(&b, "%s\n", l)
	}
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %-40s want %-28s got %s\n", mark, c.Name, c.Want, c.Got)
	}
	return b.String()
}

// save writes a table artifact when an output directory is configured.
func (r *Report) save(opts Options, name string, t *trace.Table) error {
	r.Tables[name] = t
	if opts.OutputDir == "" {
		return nil
	}
	return t.SaveTSV(fmt.Sprintf("%s/%s_%s.tsv", opts.OutputDir, r.ID, name))
}

// runner is the signature of one experiment.
type runner func(Options) (*Report, error)

// registry maps experiment IDs to implementations, in presentation
// order. It is populated in init to avoid an initialization cycle
// (experiments look their own titles up through Title).
var registry []registryEntry

type registryEntry struct {
	id    string
	title string
	run   runner
}

func init() {
	registry = []registryEntry{
		{"table1", "Absolute errors at key error rates and intervals", runTable1},
		{"table2", "Characteristics of the stratum-1 NTP servers", runTable2},
		{"fig2", "Offset drift of the uncorrected clock in two environments", runFig2},
		{"fig3", "Allan deviation plots across four environments", runFig3},
		{"fig4", "Backward network delay and server delay time series", runFig4},
		{"fig5", "Naive per-packet rate estimates vs reference", runFig5},
		{"fig6", "Naive per-packet offset estimates vs reference", runFig6},
		{"fig7", "Robust rate estimation error for E*=20δ and 5δ", runFig7},
		{"fig8", "Offset algorithm vs naive vs reference time series", runFig8},
		{"fig9a", "Offset error sensitivity to window size τ'", runFig9a},
		{"fig9b", "Offset error sensitivity to quality parameter E", runFig9b},
		{"fig9c", "Offset error sensitivity to polling period", runFig9c},
		{"fig10", "Performance over four host-server environments", runFig10},
		{"fig11a", "Recovery after a multi-day data gap", runFig11a},
		{"fig11b", "150 ms server clock error contained by sanity check", runFig11b},
		{"fig11c", "Artificial upward level shifts (temporary and permanent)", runFig11c},
		{"fig11d", "Natural symmetric downward level shift", runFig11d},
		{"fig12", "Offset error over 3 months at polling 64 and 256", runFig12},
		{"baseline", "SW-NTP baseline on identical traces", runBaseline},
		{"ablation", "Contribution of each design mechanism", runAblation},
		{"ensemble", "Faulty-server containment by the multi-server ensemble clock", runEnsemble},
		{"select", "Colluding-minority rejection by interval-intersection selection", runSelect},
		{"asym", "Path-asymmetry correction: damped ensemble consensus transfer", runAsym},
		{"longrun", "Multi-week streaming run: windowed error and online Allan series", runLongRun},
		{"chaos", "Fault-schedule survival: degradation ladder, holdover bound, recovery", runChaos},
	}
}

// IDs returns all experiment identifiers in presentation order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.id
	}
	return ids
}

// Title returns the human title of an experiment.
func Title(id string) string {
	for _, e := range registry {
		if e.id == id {
			return e.title
		}
	}
	return ""
}

// Run executes one experiment by ID.
func Run(id string, opts Options) (*Report, error) {
	for _, e := range registry {
		if e.id == id {
			return e.run(opts)
		}
	}
	return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
}

// --- shared helpers ---

// engineRun feeds a trace's completed exchanges through a fresh engine.
func engineRun(tr *sim.Trace, cfg core.Config) ([]core.Result, []sim.Exchange, error) {
	s, err := core.NewSync(cfg)
	if err != nil {
		return nil, nil, err
	}
	ex := tr.Completed()
	results := make([]core.Result, 0, len(ex))
	for _, e := range ex {
		res, err := s.Process(core.Input{Ta: e.Ta, Tf: e.Tf, Tb: e.Tb, Te: e.Te})
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: process seq %d: %w", e.Seq, err)
		}
		results = append(results, res)
	}
	return results, ex, nil
}

// offsetErrors computes θ̂ − θ_g per packet: the error of the estimated
// offset against the DAG-derived reference under the engine's own clock.
func offsetErrors(results []core.Result, ex []sim.Exchange) []float64 {
	errs := make([]float64, len(results))
	for k, res := range results {
		thetaG := float64(ex[k].Tf)*res.ClockP + res.ClockC - ex[k].Tg
		errs[k] = res.ThetaHat - thetaG
	}
	return errs
}

// afterWarmup filters errors to exchanges after a settling time.
func afterWarmup(errs []float64, ex []sim.Exchange, settle float64) []float64 {
	var out []float64
	for k, e := range errs {
		if ex[k].TrueTf > settle {
			out = append(out, e)
		}
	}
	return out
}

// defaultCfg builds the paper's default engine configuration with the
// nominal counter period (~49 PPM off true, as a real spec value is).
func defaultCfg(poll float64) core.Config {
	return core.DefaultConfig(1.0/548655270, poll)
}

// fiveNumLine renders a five-number summary in µs, matching the
// percentile curves of Figures 9 and 10.
func fiveNumLine(label string, errs []float64) string {
	return fiveNumFmt(label, stats.FiveNumOf(errs))
}

// medianAbs returns the median of |xs| via stats — one sort, and the
// package's *interpolating* median (the mean of the two central order
// statistics for even n), replacing this helper's original upper-order-
// statistic pick. The experiments' ratio checks sit orders of magnitude
// away from the half-gap this can move a median by.
func medianAbs(xs []float64) float64 {
	cp := make([]float64, len(xs))
	for i, x := range xs {
		cp[i] = math.Abs(x)
	}
	return stats.NewSorted(cp).Median()
}

// --- streaming harness ---
//
// The helpers below are the streaming counterparts of engineRun and
// friends: experiments built on them never materialize a trace or a
// result slice. A scenario is generated as a pull stream (bit-identical
// to sim.Generate, with the oscillator cache trimmed behind the
// emission front), each completed exchange is pushed through a fresh
// engine, and the per-packet callback folds whatever the report needs
// into online accumulators (internal/stats) and row-streamed TSV sinks.
// Peak memory is set by the engine's windows and the accumulators —
// independent of trace length.

// streamRun generates sc as a stream and feeds every completed exchange
// through a fresh engine built from cfg, invoking fn per packet. It
// returns the stream (for oracle references such as Osc().MeanPeriod())
// after the full pass.
func streamRun(sc sim.Scenario, cfg core.Config, fn func(e sim.Exchange, res core.Result) error) (*sim.Stream, error) {
	st, err := sim.NewStream(sc)
	if err != nil {
		return nil, err
	}
	st.SetTrim(true)
	s, err := core.NewSync(cfg)
	if err != nil {
		return nil, err
	}
	for {
		e, ok := st.Next()
		if !ok {
			return st, nil
		}
		if e.Lost {
			continue
		}
		res, err := s.Process(core.Input{Ta: e.Ta, Tf: e.Tf, Tb: e.Tb, Te: e.Te})
		if err != nil {
			return nil, fmt.Errorf("experiments: process seq %d: %w", e.Seq, err)
		}
		if err := fn(e, res); err != nil {
			return nil, err
		}
	}
}

// offsetErrOf computes θ̂ − θ_g for one packet: the single-exchange form
// of offsetErrors.
func offsetErrOf(res core.Result, e sim.Exchange) float64 {
	thetaG := float64(e.Tf)*res.ClockP + res.ClockC - e.Tg
	return res.ThetaHat - thetaG
}

// fiveNumFmt renders a five-number summary in µs; fiveNumLine is its
// batch-slice wrapper.
func fiveNumFmt(label string, fn stats.FiveNum) string {
	toUs := func(v float64) float64 { return v / timebase.Microsecond }
	return fmt.Sprintf("%-14s p01=%8.1fµs p25=%8.1fµs p50=%8.1fµs p75=%8.1fµs p99=%8.1fµs",
		label, toUs(fn.P01), toUs(fn.P25), toUs(fn.P50), toUs(fn.P75), toUs(fn.P99))
}

// previewCap bounds the in-memory preview of a streamed series: when a
// series outgrows it, every other retained row is dropped and the keep
// stride doubles, so plotting sees a uniform decimation at bounded
// memory no matter how long the series runs.
const previewCap = 4096

// seriesSink streams a per-packet series: rows go to a TSV file as they
// are appended (when an output directory is configured) and to a
// bounded decimated preview table registered with the report on Close,
// so `-plot` keeps working without the series ever being resident.
type seriesSink struct {
	rep     *Report
	name    string
	file    *trace.Writer
	preview *trace.Table
	cols    []string
	stride  int
	seen    int
}

// newSeries opens a streamed series artifact on the report.
func (r *Report) newSeries(opts Options, name string, cols ...string) (*seriesSink, error) {
	s := &seriesSink{
		rep: r, name: name, cols: cols,
		preview: trace.NewTable(cols...), stride: 1,
	}
	if opts.OutputDir != "" {
		w, err := trace.Create(fmt.Sprintf("%s/%s_%s.tsv", opts.OutputDir, r.ID, name), cols...)
		if err != nil {
			return nil, err
		}
		s.file = w
	}
	return s, nil
}

// Append adds one row to the streamed file and (subsampled) preview.
func (s *seriesSink) Append(vals ...float64) error {
	if s.file != nil {
		if err := s.file.Append(vals...); err != nil {
			return err
		}
	}
	if s.seen%s.stride == 0 {
		if s.preview.Len() >= previewCap {
			compact := trace.NewTable(s.cols...)
			for i := 0; i < s.preview.Len(); i += 2 {
				if err := compact.Append(s.preview.Row(i)...); err != nil {
					return err
				}
			}
			s.preview = compact
			s.stride *= 2
		}
		if err := s.preview.Append(vals...); err != nil {
			return err
		}
	}
	s.seen++
	return nil
}

// Close flushes the file and registers the preview with the report.
func (s *seriesSink) Close() error {
	s.rep.Tables[s.name] = s.preview
	if s.file != nil {
		return s.file.Close()
	}
	return nil
}

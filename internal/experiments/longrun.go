package experiments

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/allan"
	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/oscillator"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timebase"
	"repro/internal/trace"
)

// The longrun experiment is the streaming pipeline's reason to exist:
// the regime the paper's methodology actually targets — weeks of
// continuous operation — run end to end at constant memory. The
// scenario extends MR-Int with the long-horizon ingredients (a diurnal
// temperature drift cycle on the oscillator with day/night asymmetry
// and week-scale amplitude modulation, and week-scale congestion load
// regimes on both paths), streams every exchange through the default
// engine, and folds three products without ever materializing a
// series: a windowed five-number error series, an online Allan
// deviation of the error, and the full per-packet error series row-
// streamed to TSV when an output directory is configured.

// longRunDefaultDays is the trace length the acceptance criterion
// names; -days / Options.LongRunDays override it.
const longRunDefaultDays = 21.0

// longRunWindow is the reporting window of the error series.
const longRunWindow = 6 * timebase.Hour

// longRunClip winsorizes the Allan fold's input: the error series has a
// ~1-in-10⁵ single-packet mode (a deep congestion excursion the offset
// filter follows for one poll before recovering — present in the plain
// MR-Int scenario, not introduced by the long-horizon ingredients)
// whose square would otherwise dominate the deviation at every τ. The
// excursions are counted and checked separately; the fold characterizes
// the sustained error process, the robust-statistics stance the paper
// takes throughout.
const longRunClip = timebase.Millisecond

// NewLongRunScenario builds the long-horizon scenario: MR-Int at the
// given polling period plus the temperature cycle and load regimes.
// The regime dwell adapts to very short (quick-mode) durations so every
// run exercises at least a few regime switches. Shared with the
// memory-ceiling benchmark and the CI heap smoke test, which must
// measure exactly the pipeline the experiment runs.
func NewLongRunScenario(days, poll float64, seed uint64) sim.Scenario {
	sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), poll, days*timebase.Day, seed)
	sc.Name = fmt.Sprintf("MR-Int-longrun%.3gd", days)
	sc.Oscillator.Temp = oscillator.TempCycle{
		AmplitudePPM: 0.02, Phase: 1.3, Harmonic2: 0.35, WeeklyMod: 0.3,
	}
	dwell := math.Min(2.5*timebase.Day, sc.Duration/6)
	for _, p := range []*netem.PathConfig{&sc.Server.Forward, &sc.Server.Backward} {
		p.RegimeMeanDwell = dwell
		p.RegimeFactors = []float64{1, 2.2}
	}
	return sc
}

func runLongRun(opts Options) (*Report, error) {
	r := newReport("longrun", Title("longrun"))
	days := opts.LongRunDays
	if days == 0 {
		days = longRunDefaultDays
	}
	const poll = 16.0
	dur := opts.scale(days * timebase.Day)
	sc := NewLongRunScenario(dur/timebase.Day, poll, opts.seed())
	settle := 3 * timebase.Hour

	// Streamed per-packet error series: rows go to disk as they happen.
	sink, err := r.newSeries(opts, "errors", "tb_day", "offset_err_us")
	if err != nil {
		return nil, err
	}

	// Online Allan fold of the settled offset error (the warmup
	// transient would dominate the squared differences), on the batch
	// grid capped at one day of averaging scale — the ring stays
	// ~2·5400 floats no matter how many weeks stream through.
	nUniform := int((dur - settle) / poll)
	grid, err := allan.CurveGrid(nUniform, 4)
	if err != nil {
		return nil, err
	}
	maxM := int(timebase.Day / poll)
	for len(grid) > 0 && grid[len(grid)-1] > maxM {
		grid = grid[:len(grid)-1]
	}
	fold, err := allan.NewFold(poll, grid)
	if err != nil {
		return nil, err
	}
	resampler, err := allan.NewResampler(poll, func(v float64) error {
		fold.Add(v)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Windowed five-number series plus whole-run accumulators.
	winTab := trace.NewTable("window_end_day", "p01_us", "p25_us", "p50_us", "p75_us", "p99_us", "n")
	overall := stats.NewStreamingFiveNum()
	win := stats.NewStreamingFiveNum()
	var winMedians []float64
	winEnd := settle + longRunWindow

	flushWindow := func(endDay float64) error {
		if win.N() == 0 {
			return nil
		}
		fn := win.FiveNum()
		winMedians = append(winMedians, fn.P50)
		err := winTab.Append(endDay, fn.P01/1e-6, fn.P25/1e-6, fn.P50/1e-6,
			fn.P75/1e-6, fn.P99/1e-6, float64(win.N()))
		win = stats.NewStreamingFiveNum()
		return err
	}

	// Peak-heap watermark, sampled during the run: the number that must
	// stay flat as -days grows.
	var ms runtime.MemStats
	peakHeap := uint64(0)
	sampleHeap := func() {
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peakHeap {
			peakHeap = ms.HeapAlloc
		}
	}
	sampleHeap()

	var last sim.Exchange
	var lastPHat float64
	count, excursions := 0, 0
	worstExcursion := 0.0
	st, err := streamRun(sc, defaultCfg(poll), func(e sim.Exchange, res core.Result) error {
		errV := offsetErrOf(res, e)
		if err := sink.Append(e.Tb/timebase.Day, errV/1e-6); err != nil {
			return err
		}
		t := e.TrueTf
		if t > settle {
			clipped := errV
			if a := math.Abs(errV); a > longRunClip {
				excursions++
				if a > worstExcursion {
					worstExcursion = a
				}
				clipped = math.Copysign(longRunClip, errV)
			}
			if err := resampler.Push(e.Tg, clipped); err != nil {
				return err
			}
			overall.Add(errV)
			for t > winEnd {
				if err := flushWindow(winEnd / timebase.Day); err != nil {
					return err
				}
				winEnd += longRunWindow
			}
			win.Add(errV)
		}
		last = e
		lastPHat = res.PHat
		count++
		if count%8192 == 0 {
			sampleHeap()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := resampler.Finish(); err != nil {
		return nil, err
	}
	if err := flushWindow(last.TrueTf / timebase.Day); err != nil {
		return nil, err
	}
	if err := sink.Close(); err != nil {
		return nil, err
	}
	if err := r.save(opts, "windows", winTab); err != nil {
		return nil, err
	}
	sampleHeap()

	pts := fold.Points()
	allanTab := trace.NewTable("tau_s", "allan_dev")
	for _, p := range pts {
		if err := allanTab.Append(p.Tau, p.Deviation); err != nil {
			return nil, err
		}
	}
	if err := r.save(opts, "allan", allanTab); err != nil {
		return nil, err
	}

	fn := overall.FiveNum()
	r.addLine("%s over %.1f days (%d packets, %d windows of %s)", sc.Name,
		dur/timebase.Day, count, len(winMedians), timebase.FormatDuration(longRunWindow))
	r.addLine("%s", fiveNumFmt("error", fn))
	medLo, medHi := stats.MinMax(winMedians)
	r.addLine("windowed medians in [%s, %s]; peak heap %.1f MB; oscillator cache %d steps",
		timebase.FormatDuration(medLo), timebase.FormatDuration(medHi),
		float64(peakHeap)/(1<<20), st.Osc().RandomWalkCacheLen())
	r.addLine("single-packet excursions beyond %s: %d of %d (worst %s; clipped from the Allan fold)",
		timebase.FormatDuration(longRunClip), excursions, count,
		timebase.FormatDuration(worstExcursion))

	// Shape checks: multi-week stability despite temperature cycles and
	// load regimes, and the constant-memory machinery actually engaged.
	wantWindows := int((dur - settle) / longRunWindow)
	r.addCheck("windowed series covers the run",
		fmt.Sprintf("≥ %d windows", wantWindows), fmt.Sprint(len(winMedians)),
		len(winMedians) >= wantWindows)
	r.addCheck("every window median in the −Δ/2 band", "−120µs…+20µs",
		fmt.Sprintf("[%s, %s]", timebase.FormatDuration(medLo), timebase.FormatDuration(medHi)),
		medLo > -120e-6 && medHi < 20e-6)
	r.addCheck("median stable across regimes/weeks", "spread ≤ 80µs",
		timebase.FormatDuration(medHi-medLo), medHi-medLo <= 80e-6)
	r.addCheck("overall p99 bounded through congestion regimes", "≤ 1ms",
		timebase.FormatDuration(fn.P99), fn.P99 <= timebase.Millisecond)
	r.addCheck("single-packet excursions rare", "≤ 0.02% of packets",
		fmt.Sprintf("%d/%d", excursions, count),
		float64(excursions) <= 0.0002*float64(count))

	devAt := func(tau float64) float64 {
		best, bestDist := 0.0, math.Inf(1)
		for _, p := range pts {
			if d := math.Abs(math.Log(p.Tau / tau)); d < bestDist {
				bestDist, best = d, p.Deviation
			}
		}
		return best
	}
	r.addCheck("error Allan bounded at τ ≥ 1000s", "≤ 0.1 PPM",
		fmt.Sprintf("%.4f PPM", timebase.PPM(devAt(1000))),
		devAt(1000) <= timebase.FromPPM(0.1))
	r.addCheck("error Allan falls toward large τ (no drift regime)",
		"dev(τmax) ≤ dev(1000s)",
		fmt.Sprintf("%.5f vs %.5f PPM", timebase.PPM(pts[len(pts)-1].Deviation), timebase.PPM(devAt(1000))),
		pts[len(pts)-1].Deviation <= devAt(1000))

	r.PeakHeap = peakHeap

	trueP := st.Osc().MeanPeriod()
	rateErr := math.Abs(lastPHat/trueP - 1)
	r.addCheck("rate estimate within hardware stability bound", "≤ 0.1 PPM",
		fmt.Sprintf("%.4f PPM", timebase.PPM(rateErr)), rateErr <= timebase.FromPPM(0.1))
	r.addCheck("oscillator cache trimmed behind the emission front",
		"≤ 512 steps", fmt.Sprint(st.Osc().RandomWalkCacheLen()),
		st.Osc().RandomWalkCacheLen() <= 512)
	return r, nil
}
